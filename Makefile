# Convenience targets; `make check` is the tier-1 gate (build + tests).

.PHONY: all build test check check-fault bench-json clean

all: build

build:
	dune build

test:
	dune runtest

# Fault-injection suite at three different fault-plan seeds (the suite
# derives its plans from FAULT_SEED, so each run exercises different
# injected fault sequences).
check-fault: build
	FAULT_SEED=1 dune exec test/test_main.exe -- test faults
	FAULT_SEED=7 dune exec test/test_main.exe -- test faults
	FAULT_SEED=23 dune exec test/test_main.exe -- test faults

check: build test check-fault

# Machine-readable perf snapshot for the current tree (see README
# "Observability"): runs the quick benchmark sweep and dumps the
# metrics registry.
bench-json:
	dune exec bench/main.exe -- --quick --json BENCH_obs.json

clean:
	dune clean
