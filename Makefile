# Convenience targets; `make check` is the tier-1 gate (build + tests).

.PHONY: all build test check check-fault check-validate check-par check-cache \
  check-journal check-serve check-servert check-spool check-compact \
  check-fleet check-bench bench-json bench-baseline clean

all: build

build:
	dune build

test:
	dune runtest

# Fault-injection suite at three different fault-plan seeds (the suite
# derives its plans from FAULT_SEED, so each run exercises different
# injected fault sequences).
check-fault: build
	FAULT_SEED=1 dune exec test/test_main.exe -- test faults
	FAULT_SEED=7 dune exec test/test_main.exe -- test faults
	FAULT_SEED=23 dune exec test/test_main.exe -- test faults

# Static TIR sanitizer over every Table-2 workload x template at two
# different config-sampling seeds (the suite samples template configs
# from VALIDATE_SEED, so each run validates different lowered programs).
check-validate: build
	VALIDATE_SEED=3 dune exec test/test_main.exe -- test validate
	VALIDATE_SEED=11 dune exec test/test_main.exe -- test validate

# Multicore determinism gate: the par test suite, plus byte-identical
# tvmc tuning logs at -j1 vs -j8 for two Table-2 workloads (one of
# them on a 20% faulty fleet), plus the partune throughput comparison
# at -j1 and -j4 (metrics land in _build/, not the committed baseline).
check-par: build
	dune exec test/test_main.exe -- test par
	mkdir -p _build/check-par
	dune exec bin/tvmc.exe -- tune C7 --trials 40 --seed 5 --devices 4 \
	  -j 1 --tune-log _build/check-par/c7_j1.log
	dune exec bin/tvmc.exe -- tune C7 --trials 40 --seed 5 --devices 4 \
	  -j 8 --tune-log _build/check-par/c7_j8.log
	cmp _build/check-par/c7_j1.log _build/check-par/c7_j8.log
	dune exec bin/tvmc.exe -- tune D1 --trials 40 --seed 5 --devices 4 \
	  --fault-rate 0.2 -j 1 --tune-log _build/check-par/d1_j1.log
	dune exec bin/tvmc.exe -- tune D1 --trials 40 --seed 5 --devices 4 \
	  --fault-rate 0.2 -j 8 --tune-log _build/check-par/d1_j8.log
	cmp _build/check-par/d1_j1.log _build/check-par/d1_j8.log
	dune exec bench/main.exe -- --quick -j 4 --json _build/check-par/obs.json partune

# Compile-cache equivalence gate: the cache suite, plus byte-identical
# tvmc tuning logs with the cross-trial compile cache on vs off at a
# fixed seed — one clean fleet (C7) and one 20% faulty fleet (D1). The
# cache may only change how fast trials prepare, never what they
# measure.
check-cache: build
	dune exec test/test_main.exe -- test cache
	mkdir -p _build/check-cache
	dune exec bin/tvmc.exe -- tune C7 --trials 40 --seed 5 --devices 4 \
	  -j 4 --tune-log _build/check-cache/c7_on.log
	dune exec bin/tvmc.exe -- tune C7 --trials 40 --seed 5 --devices 4 \
	  -j 4 --no-compile-cache --tune-log _build/check-cache/c7_off.log
	cmp _build/check-cache/c7_on.log _build/check-cache/c7_off.log
	dune exec bin/tvmc.exe -- tune D1 --trials 40 --seed 5 --devices 4 \
	  --fault-rate 0.2 -j 4 --tune-log _build/check-cache/d1_on.log
	dune exec bin/tvmc.exe -- tune D1 --trials 40 --seed 5 --devices 4 \
	  --fault-rate 0.2 -j 4 --no-compile-cache \
	  --tune-log _build/check-cache/d1_off.log
	cmp _build/check-cache/d1_on.log _build/check-cache/d1_off.log

# Flight-recorder gate: the per-trial provenance journal must be
# byte-identical at -j1 vs -j8 (clean C7 fleet and 20% faulty D1
# fleet) and with the compile cache on vs off, and `tvmc report` must
# identify a device injected as a straggler (dev 2 gets 35% timeouts /
# 15% crashes / 10% corruption on an otherwise clean fleet; the 1 s
# timeout budget keeps the flaky board receiving jobs instead of
# hiding behind one 10 s timeout in least-loaded assignment).
check-journal: build
	mkdir -p _build/check-journal
	dune exec bin/tvmc.exe -- tune C7 --trials 40 --seed 5 --devices 4 \
	  -j 1 --journal-out _build/check-journal/c7_j1.jsonl
	dune exec bin/tvmc.exe -- tune C7 --trials 40 --seed 5 --devices 4 \
	  -j 8 --journal-out _build/check-journal/c7_j8.jsonl
	cmp _build/check-journal/c7_j1.jsonl _build/check-journal/c7_j8.jsonl
	dune exec bin/tvmc.exe -- tune D1 --trials 40 --seed 5 --devices 4 \
	  --fault-rate 0.2 -j 1 --journal-out _build/check-journal/d1_j1.jsonl
	dune exec bin/tvmc.exe -- tune D1 --trials 40 --seed 5 --devices 4 \
	  --fault-rate 0.2 -j 8 --journal-out _build/check-journal/d1_j8.jsonl
	cmp _build/check-journal/d1_j1.jsonl _build/check-journal/d1_j8.jsonl
	dune exec bin/tvmc.exe -- tune D1 --trials 40 --seed 5 --devices 4 \
	  --fault-rate 0.2 -j 8 --no-compile-cache \
	  --journal-out _build/check-journal/d1_nocache.jsonl
	cmp _build/check-journal/d1_j1.jsonl _build/check-journal/d1_nocache.jsonl
	dune exec bin/tvmc.exe -- tune C7 --trials 60 --seed 5 --devices 4 \
	  --fault-rate 0 --straggler 2 --timeout-ms 1000 -j 4 \
	  --journal-out _build/check-journal/straggler.jsonl
	dune exec bin/tvmc.exe -- report _build/check-journal/straggler.jsonl \
	  | tee _build/check-journal/straggler.report
	grep -q "straggler dev 2" _build/check-journal/straggler.report

# tvmd service gate: a three-tenant jobs file through `tvmc serve`.
# One uninterrupted cold run, then a kill/restart pair (--max-jobs 2
# simulates the daemon dying after two jobs; the restart resumes from
# the durable store), then a fully warm rerun — all three results
# files must be byte-identical, and the warm rerun must execute
# nothing live (everything answered from the store). Explicit -j 2 in
# the specs keeps the jobs file machine-independent.
check-serve: build
	mkdir -p _build/check-serve
	dune exec bin/tvmc.exe -- submit tune C1 --trials 24 --seed 5 -j 2 \
	  --tenant alpha --weight 2 > _build/check-serve/jobs.txt
	dune exec bin/tvmc.exe -- submit tune C1 --trials 24 --seed 5 -j 2 \
	  --tenant alpha --weight 2 --at 0.5 >> _build/check-serve/jobs.txt
	dune exec bin/tvmc.exe -- submit tune C2 --trials 24 --seed 5 -j 2 \
	  --tenant beta >> _build/check-serve/jobs.txt
	dune exec bin/tvmc.exe -- submit tune D1 --trials 24 --seed 5 -j 2 \
	  --tenant gamma --priority 1 >> _build/check-serve/jobs.txt
	rm -f _build/check-serve/s1 _build/check-serve/s2
	dune exec bin/tvmc.exe -- serve --jobs-file _build/check-serve/jobs.txt \
	  --store _build/check-serve/s1 --results _build/check-serve/r_full
	dune exec bin/tvmc.exe -- serve --jobs-file _build/check-serve/jobs.txt \
	  --store _build/check-serve/s2 --max-jobs 2 \
	  --results _build/check-serve/r_partial
	dune exec bin/tvmc.exe -- serve --jobs-file _build/check-serve/jobs.txt \
	  --store _build/check-serve/s2 --results _build/check-serve/r_resumed
	cmp _build/check-serve/r_full _build/check-serve/r_resumed
	dune exec bin/tvmc.exe -- serve --jobs-file _build/check-serve/jobs.txt \
	  --store _build/check-serve/s1 --results _build/check-serve/r_warm \
	  2> _build/check-serve/warm.stderr
	cmp _build/check-serve/r_full _build/check-serve/r_warm
	grep -q "4 restored from store" _build/check-serve/warm.stderr

# Serving-executor gate: a deterministic trace from `tvmc traffic`
# served by `tvmc serve-rt` at two model-load lane counts — the
# results files must be byte-identical and every request must meet its
# 50 ms SLO (--require-slo exits nonzero on any miss), then the
# serving journal must round-trip through the `tvmc report` digest.
check-servert: build
	mkdir -p _build/check-servert
	dune exec bin/tvmc.exe -- traffic --seed 5 --horizon 0.2 --tenants 8 \
	  --rate 1200 --slo-ms 50 --out _build/check-servert/trace.txt
	dune exec bin/tvmc.exe -- serve-rt --trace _build/check-servert/trace.txt \
	  -j 1 --require-slo --results _build/check-servert/r_j1 \
	  --journal-out _build/check-servert/journal.jsonl
	dune exec bin/tvmc.exe -- serve-rt --trace _build/check-servert/trace.txt \
	  -j 4 --require-slo --results _build/check-servert/r_j4
	cmp _build/check-servert/r_j1 _build/check-servert/r_j4
	dune exec bin/tvmc.exe -- report _build/check-servert/journal.jsonl \
	  | tee _build/check-servert/digest.txt
	grep -q "per-model latency" _build/check-servert/digest.txt

# Streaming-spool gate: the same envelopes served from a spool
# directory (stop file pre-armed, so the daemon drains one batch and
# exits) and from a one-shot jobs file must produce byte-identical
# results, and consumed envelopes must land in the archive.
check-spool: build
	rm -rf _build/check-spool
	mkdir -p _build/check-spool/spool
	dune exec bin/tvmc.exe -- submit tune C1 --trials 8 -j 2 \
	  --tenant alpha --weight 2 > _build/check-spool/spool/00-alpha.req
	dune exec bin/tvmc.exe -- submit tune C2 --trials 8 -j 2 \
	  --tenant beta --at 0.1 > _build/check-spool/spool/01-beta.req
	cat _build/check-spool/spool/*.req > _build/check-spool/jobs.txt
	touch _build/check-spool/spool/stop
	dune exec bin/tvmc.exe -- serve --spool _build/check-spool/spool \
	  --results _build/check-spool/r_spool
	dune exec bin/tvmc.exe -- serve --jobs-file _build/check-spool/jobs.txt \
	  --results _build/check-spool/r_file
	cmp _build/check-spool/r_spool _build/check-spool/r_file
	test -f _build/check-spool/spool/archive/00-alpha.req
	test -f _build/check-spool/spool/archive/01-beta.req

# Compaction gate: a restart-churned store (cold run + three warm
# restarts, each refreshing every done record) must shrink by at least
# 40% under `tvmc store compact`, and a warm run over the compacted
# store must reproduce the cold results byte for byte.
check-compact: build
	rm -rf _build/check-compact
	mkdir -p _build/check-compact
	dune exec bin/tvmc.exe -- submit compile dqn --trials 2 -j 2 \
	  --tenant alpha > _build/check-compact/jobs.txt
	dune exec bin/tvmc.exe -- submit profile dqn --trials 0 -j 2 \
	  --tenant alpha --at 0.1 >> _build/check-compact/jobs.txt
	dune exec bin/tvmc.exe -- submit profile dcgan --trials 0 -j 2 \
	  --tenant beta >> _build/check-compact/jobs.txt
	dune exec bin/tvmc.exe -- submit profile lstm --trials 0 -j 2 \
	  --tenant gamma --at 0.2 >> _build/check-compact/jobs.txt
	dune exec bin/tvmc.exe -- submit profile dqn --trials 0 -j 2 \
	  --tenant alpha --at 0.3 >> _build/check-compact/jobs.txt
	dune exec bin/tvmc.exe -- submit profile dcgan --trials 0 -j 2 \
	  --tenant beta --at 0.4 >> _build/check-compact/jobs.txt
	dune exec bin/tvmc.exe -- submit profile lstm --trials 0 -j 2 \
	  --tenant gamma --at 0.5 >> _build/check-compact/jobs.txt
	dune exec bin/tvmc.exe -- serve --jobs-file _build/check-compact/jobs.txt \
	  --store _build/check-compact/st --results _build/check-compact/r_cold
	for i in 1 2 3; do \
	  dune exec bin/tvmc.exe -- serve \
	    --jobs-file _build/check-compact/jobs.txt \
	    --store _build/check-compact/st \
	    --results _build/check-compact/r_warm || exit 1; \
	done
	before=$$(wc -c < _build/check-compact/st); \
	dune exec bin/tvmc.exe -- store compact _build/check-compact/st; \
	after=$$(wc -c < _build/check-compact/st); \
	echo "store: $$before -> $$after bytes"; \
	test $$((after * 10)) -le $$((before * 6))
	dune exec bin/tvmc.exe -- serve --jobs-file _build/check-compact/jobs.txt \
	  --store _build/check-compact/st \
	  --results _build/check-compact/r_compacted
	cmp _build/check-compact/r_cold _build/check-compact/r_compacted

# Sharded-fleet gate: the fleet test suite, then tvmc on a 1000-device
# 20%-faulty fleet with speculation. The tuning log AND the journal
# must be byte-identical at -j1 vs -j8; the log must additionally be
# byte-identical across shard counts (4 vs 16) and with speculation
# off (placement-invariant results — only the journal's placement
# fields may differ across those).
check-fleet: build
	dune exec test/test_main.exe -- test fleet
	mkdir -p _build/check-fleet
	dune exec bin/tvmc.exe -- tune C7 --trials 40 --seed 5 --fleet 1000 \
	  --shards 16 --fault-rate 0.2 --speculate -j 1 \
	  --tune-log _build/check-fleet/j1.log \
	  --journal-out _build/check-fleet/j1.jsonl
	dune exec bin/tvmc.exe -- tune C7 --trials 40 --seed 5 --fleet 1000 \
	  --shards 16 --fault-rate 0.2 --speculate -j 8 \
	  --tune-log _build/check-fleet/j8.log \
	  --journal-out _build/check-fleet/j8.jsonl
	cmp _build/check-fleet/j1.log _build/check-fleet/j8.log
	cmp _build/check-fleet/j1.jsonl _build/check-fleet/j8.jsonl
	dune exec bin/tvmc.exe -- tune C7 --trials 40 --seed 5 --fleet 1000 \
	  --shards 4 --fault-rate 0.2 --speculate -j 4 \
	  --tune-log _build/check-fleet/shards4.log
	cmp _build/check-fleet/j1.log _build/check-fleet/shards4.log
	dune exec bin/tvmc.exe -- tune C7 --trials 40 --seed 5 --fleet 1000 \
	  --shards 16 --fault-rate 0.2 -j 4 \
	  --tune-log _build/check-fleet/nospec.log
	cmp _build/check-fleet/j1.log _build/check-fleet/nospec.log
	dune exec bench/main.exe -- --quick --json _build/check-fleet/obs.json \
	  fleet

# Benchmark regression gate: rerun the gated scopes and compare the
# metrics dump against the committed BENCH_obs.json baseline under
# Bench_gate.default_rules (exits nonzero on regression). When a
# change legitimately moves the numbers, regenerate the baseline with
# `make bench-baseline` and commit the diff.
check-bench: build
	mkdir -p _build/check-bench
	dune exec bench/main.exe -- --quick -j 4 \
	  --json _build/check-bench/obs.json --baseline BENCH_obs.json \
	  partune lower cache serve serve_rt fleet

check: build test check-fault check-validate check-par check-cache \
  check-journal check-serve check-servert check-spool check-compact \
  check-fleet check-bench

# Machine-readable perf snapshot for the current tree (see README
# "Observability"): runs the quick benchmark sweep and dumps the
# metrics registry.
bench-json:
	dune exec bench/main.exe -- --quick --json BENCH_obs.json

# Regenerate the committed check-bench baseline (same scope and -j as
# the gate itself, so the comparison is apples to apples).
bench-baseline:
	dune exec bench/main.exe -- --quick -j 4 --json BENCH_obs.json \
	  partune lower cache serve serve_rt fleet

clean:
	dune clean
