# Convenience targets; `make check` is the tier-1 gate (build + tests).

.PHONY: all build test check bench-json clean

all: build

build:
	dune build

test:
	dune runtest

check: build test

# Machine-readable perf snapshot for the current tree (see README
# "Observability"): runs the quick benchmark sweep and dumps the
# metrics registry.
bench-json:
	dune exec bench/main.exe -- --quick --json BENCH_obs.json

clean:
	dune clean
