# Convenience targets; `make check` is the tier-1 gate (build + tests).

.PHONY: all build test check check-fault check-validate bench-json clean

all: build

build:
	dune build

test:
	dune runtest

# Fault-injection suite at three different fault-plan seeds (the suite
# derives its plans from FAULT_SEED, so each run exercises different
# injected fault sequences).
check-fault: build
	FAULT_SEED=1 dune exec test/test_main.exe -- test faults
	FAULT_SEED=7 dune exec test/test_main.exe -- test faults
	FAULT_SEED=23 dune exec test/test_main.exe -- test faults

# Static TIR sanitizer over every Table-2 workload x template at two
# different config-sampling seeds (the suite samples template configs
# from VALIDATE_SEED, so each run validates different lowered programs).
check-validate: build
	VALIDATE_SEED=3 dune exec test/test_main.exe -- test validate
	VALIDATE_SEED=11 dune exec test/test_main.exe -- test validate

check: build test check-fault check-validate

# Machine-readable perf snapshot for the current tree (see README
# "Observability"): runs the quick benchmark sweep and dumps the
# metrics registry.
bench-json:
	dune exec bench/main.exe -- --quick --json BENCH_obs.json

clean:
	dune clean
