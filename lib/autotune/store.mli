(** Durable on-disk store for tuning state — what makes [tvmd]'s warm
    restarts real. Three kinds of state round-trip through one
    append-only block format:

    - [db] blocks: {!Tuner.Db} trial records, so an interrupted tuning
      run resumes from its measurement log ([spec.replay]);
    - [tuned] blocks: the compiler's tuned-configuration cache
      ({!Compiler.tuned_entries}), so repeat compiles skip tuning
      wholesale;
    - [cache] blocks: {!Compile_cache} feature entries (programs are
      never serialized — they re-lower on demand; features are the
      expensive part of prediction).

    {2 Format}

    A store file is a sequence of self-describing blocks:

    {v
    #tvmstore v1 kind=<kind> records=<n> checksum=<16-hex FNV-1a 64>
    <record line 1>
    ...
    <record line n>
    v}

    The checksum covers the record lines joined by ['\n']. Floats are
    serialized as ["%h"] hex literals, so every round trip is
    bit-exact and the determinism contracts (byte-identical journals
    at any [-j]) survive a restart.

    {2 Corruption policy}

    Loads never raise on bad data: a block with an unknown version, a
    short record count, a checksum mismatch, or an unparseable record
    is skipped whole, with a [stderr] warning and a
    [cache.load_rejected] metric increment. A truncated tail (the
    process died mid-flush) therefore costs exactly the unflushed
    block. Missing files load as empty. *)

type block = { b_kind : string; b_records : string list }

(** FNV-1a 64-bit hash of a string, as the 16-hex-digit checksum the
    block headers carry. *)
val checksum : string -> string

(** Append one block ([kind] must have no spaces; records no
    newlines). Creates the file if needed; flushes before returning. *)
val append_block : string -> kind:string -> string list -> unit

(** Every valid block in file order; invalid blocks are skipped with a
    warning and a [cache.load_rejected] metric bump. Missing file →
    []. *)
val load_blocks : string -> block list

(** {2 Trial logs (kind ["db"])} *)

(** Append [Db] records with index >= [from] (a previous flush's
    return) as one block; returns the new high-water mark. No block is
    written when nothing is new. *)
val flush_db : string -> from:int -> Tuner.Db.t -> int

(** Replay every valid [db] block into [into]; returns the number of
    records loaded. *)
val load_db : string -> into:Tuner.Db.t -> int

(** {2 Tuned-configuration cache (kind ["tuned"])} *)

(** Append tuned-cache entries (see {!Compiler.tuned_entries}) as one
    block. Tuned entries sort by signature, not arrival, so the caller
    tracks which signatures are already on disk and passes only the
    delta; duplicate entries are harmless (first-wins on load). No
    block is written for an empty delta. *)
val append_tuned : string -> (string * Cfg_space.config * float) list -> unit

(** All tuned entries from every valid [tuned] block, file order. *)
val load_tuned : string -> (string * Cfg_space.config * float) list

(** {2 Compile caches (kind ["cache"])} *)

(** Serialize a cache's entries (features and invalid verdicts;
    programs are dropped) as one block tagged with [scope], skipping
    the first [from] entries (a previous save's return — entries are
    insertion-ordered, so this is the incremental-flush protocol).
    Returns the cache's current entry count. No block is written when
    nothing is new. *)
val save_cache : string -> scope:string -> ?from:int -> Compile_cache.t -> int

(** Merge every valid [cache] block whose tag is [scope] into [into];
    returns entries added. *)
val load_cache : string -> scope:string -> into:Compile_cache.t -> int
