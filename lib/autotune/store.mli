(** Durable on-disk store for tuning state — what makes [tvmd]'s warm
    restarts real. Three kinds of state round-trip through one
    append-only block format:

    - [db] blocks: {!Tuner.Db} trial records, so an interrupted tuning
      run resumes from its measurement log ([spec.replay]) —
      [db.scoped] is the same record format tagged with an isolation
      scope ([tvmd]'s per-tenant private logs);
    - [tuned] blocks: the compiler's tuned-configuration cache
      ({!Compiler.tuned_entries}), so repeat compiles skip tuning
      wholesale — [tuned.scoped] is the per-scope variant;
    - [cache] blocks: {!Compile_cache} feature entries (programs are
      never serialized — they re-lower on demand; features are the
      expensive part of prediction).

    {2 Format}

    A store file is a sequence of self-describing blocks:

    {v
    #tvmstore v1 kind=<kind> records=<n> checksum=<16-hex FNV-1a 64>
    <record line 1>
    ...
    <record line n>
    v}

    The checksum covers the record lines joined by ['\n']. Floats are
    serialized as ["%h"] hex literals, so every round trip is
    bit-exact and the determinism contracts (byte-identical journals
    at any [-j]) survive a restart.

    {2 Corruption policy}

    Loads never raise on bad data: a block with an unknown version, a
    short record count, a checksum mismatch, or an unparseable record
    is skipped whole, with a [stderr] warning and a
    [cache.load_rejected] metric increment. A truncated tail (the
    process died mid-flush) therefore costs exactly the unflushed
    block. Missing files load as empty. *)

type block = { b_kind : string; b_records : string list }

(** FNV-1a 64-bit hash of a string, as the 16-hex-digit checksum the
    block headers carry. *)
val checksum : string -> string

(** Append one block ([kind] must have no spaces; records no
    newlines). Creates the file if needed; flushes before returning. *)
val append_block : string -> kind:string -> string list -> unit

(** Every valid block in file order; invalid blocks are skipped with a
    warning and a [cache.load_rejected] metric bump. Missing file →
    []. *)
val load_blocks : string -> block list

(** {2 Trial logs (kind ["db"])} *)

(** Append [Db] records with index >= [from] (a previous flush's
    return) as one block; returns the new high-water mark. No block is
    written when nothing is new. *)
val flush_db : string -> from:int -> Tuner.Db.t -> int

(** Replay every valid [db] block into [into]; returns the number of
    records loaded. *)
val load_db : string -> into:Tuner.Db.t -> int

(** {2 Scoped trial logs (kind ["db.scoped"])}

    Same records as ["db"] blocks, but the block's first record is an
    escaped scope tag — the unit of [tvmd]'s per-tenant isolation. A
    legacy untagged ["db"] block reads as the shared scope. *)

(** [flush_db] for one scope's private log. *)
val flush_db_scope : string -> scope:string -> from:int -> Tuner.Db.t -> int

(** Replay every valid ["db.scoped"] block tagged [scope] into
    [into]; returns the number of records loaded. *)
val load_db_scope : string -> scope:string -> into:Tuner.Db.t -> int

(** {2 Tuned-configuration cache (kind ["tuned"])} *)

(** Append tuned-cache entries (see {!Compiler.tuned_entries}) as one
    block. Tuned entries sort by signature, not arrival, so the caller
    tracks which signatures are already on disk and passes only the
    delta; duplicate entries are harmless (first-wins on load). No
    block is written for an empty delta. *)
val append_tuned : string -> (string * Cfg_space.config * float) list -> unit

(** All tuned entries from every valid [tuned] block, file order. *)
val load_tuned : string -> (string * Cfg_space.config * float) list

(** {2 Scoped tuned caches (kind ["tuned.scoped"])} *)

(** [append_tuned] for one scope's private tuned cache (first record
    is the escaped scope tag). *)
val append_tuned_scope :
  string -> scope:string -> (string * Cfg_space.config * float) list -> unit

(** All tuned entries from every valid ["tuned.scoped"] block tagged
    [scope], file order. *)
val load_tuned_scope :
  string -> scope:string -> (string * Cfg_space.config * float) list

(** {2 Compile caches (kind ["cache"])} *)

(** Serialize a cache's entries (features and invalid verdicts;
    programs are dropped) as one block tagged with [scope], skipping
    the first [from] entries (a previous save's return — entries are
    insertion-ordered, so this is the incremental-flush protocol).
    Returns the cache's current entry count. No block is written when
    nothing is new. *)
val save_cache : string -> scope:string -> ?from:int -> Compile_cache.t -> int

(** Merge every valid [cache] block whose tag is [scope] into [into];
    returns entries added. *)
val load_cache : string -> scope:string -> into:Compile_cache.t -> int

(** {2 Compaction}

    An append-only store accumulates superseded records: refreshed
    [done] envelopes, duplicate tuned entries, cache entries re-saved
    across restarts. [compact] rewrites the live contents to a
    temporary file and atomically renames it over the original, so a
    crash at any instant leaves either the old file or the new one —
    never a half-written store.

    What "live" means is per record kind, supplied as rules: keep
    every record (trial logs are replay history), the first record per
    key (first-wins loaders: tuned entries, cache entries) or the last
    (last-wins loaders: [tvmd]'s [done] records). A record's key is
    its first tab-separated field; scoped kinds dedupe within their
    scope tag. Blocks of the same kind (and scope) coalesce into one,
    preserving record order, and corrupt blocks are dropped — loading
    the compacted file yields exactly what loading the original did. *)

type keep =
  | Keep_all  (** coalesce only; every record survives *)
  | First_per_key  (** first-wins loaders *)
  | Last_per_key  (** last-wins loaders *)

type rule = { rl_kind : string; rl_scoped : bool; rl_keep : keep }

(** Rules for the kinds this module owns: [db]/[db.scoped] keep all,
    [tuned]/[tuned.scoped] and [cache] keep first per key. Kinds
    without a rule (a caller's private blocks) keep every record. *)
val default_rules : rule list

exception Injected_crash
(** Raised by {!compact} at the requested fault-injection point
    (test-only). *)

(** [compact path] rewrites the store; returns [Some (before_bytes,
    after_bytes)] or [None] when the file is missing or smaller than
    [threshold_bytes]. [crash_after_bytes n] dies (raises
    {!Injected_crash}) after writing [n] bytes of the temporary file;
    [crash_before_rename] dies after the full write but before the
    atomic rename — both leave the original untouched, and a later
    compact overwrites the stale temporary. *)
val compact :
  ?rules:rule list ->
  ?threshold_bytes:int ->
  ?crash_after_bytes:int ->
  ?crash_before_rename:bool ->
  string ->
  (int * int) option
