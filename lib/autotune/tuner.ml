(** The automated optimization loop (§5, Fig 11).

    In each iteration the explorer proposes a batch of candidate
    configurations using the cost model's predictions; the batch is
    measured on the (simulated) device via the measurement callback —
    in the full system this goes through the RPC device pool — and the
    collected data retrains the model. Exploration state persists
    across model updates, as in the paper.

    Measurements come back as structured [Measure_result.t] values:
    failed trials (timeouts, crashes, invalid configurations, pool
    errors) are recorded in the history and database with their
    failure category, but never pollute the cost model's training
    set. *)

module Obs_trace = Tvm_obs.Trace
module Obs_metrics = Tvm_obs.Metrics

type template = {
  tpl_name : string;
  tpl_space : Cfg_space.t;
  tpl_instantiate : Cfg_space.config -> Tvm_tir.Stmt.t;
      (** lowered program for a configuration *)
}

type method_ = Ml_model | Random_search | Genetic_algorithm

let method_to_string = function
  | Ml_model -> "ml-based"
  | Random_search -> "random"
  | Genetic_algorithm -> "genetic"

type trial = {
  trial_index : int;
  config : Cfg_space.config;
  result : Measure_result.t;
  best_so_far : float;
}

type result = {
  best_config : Cfg_space.config;
  best_time : float;
  history : trial list;  (** in measurement order *)
  model_accuracy : float;  (** final rank accuracy on collected data *)
}

type measure_fn = Cfg_space.config -> Tvm_tir.Stmt.t -> Measure_result.t
(** Measure one instantiated configuration; failure is expressed only
    through [Measure_result.status], never as a sentinel float. *)

(** A database of measurement records (§5.4's log), shared across tuning
    jobs so related workloads benefit from history. The full record log
    is kept for history/training; best-per-key lookups go through a
    hash index so [best] is O(1) instead of a scan of every record.
    Failure categories are tallied per status so fleet health is
    visible from the log alone. *)
module Db = struct
  type record = {
    db_key : string;
    db_config : Cfg_space.config;
    db_result : Measure_result.t;
  }

  type t = {
    mutable records : record list;  (** complete log, newest first *)
    best_by_key : (string, record) Hashtbl.t;
    mutable n_records : int;
    status_tally : (string, int) Hashtbl.t;  (** status name → count *)
  }

  let create () =
    {
      records = [];
      best_by_key = Hashtbl.create 64;
      n_records = 0;
      status_tally = Hashtbl.create 8;
    }

  let add t key config (result : Measure_result.t) =
    let r = { db_key = key; db_config = config; db_result = result } in
    t.records <- r :: t.records;
    t.n_records <- t.n_records + 1;
    let sname = Measure_result.status_name result.Measure_result.status in
    Hashtbl.replace t.status_tally sname
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.status_tally sname));
    match result.Measure_result.time_s with
    | None -> ()  (* failed trials never enter the best index *)
    | Some time -> (
        match Hashtbl.find_opt t.best_by_key key with
        | Some { db_result = { Measure_result.time_s = Some bt; _ }; _ }
          when bt <= time ->
            ()
        | _ -> Hashtbl.replace t.best_by_key key r)

  (** Best successful record for [key], O(1). *)
  let best t key = Hashtbl.find_opt t.best_by_key key

  let size t = t.n_records

  (** Count of records with the given status name (see
      [Measure_result.status_name]). *)
  let status_count t name =
    Option.value ~default:0 (Hashtbl.find_opt t.status_tally name)

  (** All (status name, count) pairs, sorted by name. *)
  let status_counts t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.status_tally []
    |> List.sort compare
end

(** Knobs of the tuning loop, consolidated so adding one stops
    rippling through every call site. Override what you need:
    [{ Options.default with seed = 7 }]. *)
module Options = struct
  type t = {
    seed : int;
    batch : int;  (** configurations measured per model update *)
    sa_steps : int;  (** simulated-annealing walk length (§5.3) *)
    n_chains : int;  (** parallel annealing chains *)
    db : Db.t option;  (** shared measurement log, if any *)
  }

  let default = { seed = 42; batch = 16; sa_steps = 60; n_chains = 16; db = None }
end

let tune ?(options = Options.default) ~(method_ : method_)
    ~(measure : measure_fn) ~(n_trials : int) (template : template) : result =
  Obs_trace.with_span "tune"
    ~attrs:
      [
        ("template", template.tpl_name);
        ("method", method_to_string method_);
        ("trials", string_of_int n_trials);
      ]
  @@ fun () ->
  let { Options.seed; batch; sa_steps; n_chains; db } = options in
  let rng = Random.State.make [| seed; Hashtbl.hash template.tpl_name |] in
  let visited = Hashtbl.create 256 in
  let xs = ref [] and ys = ref [] in
  let history = ref [] in
  let best_time = ref Float.max_float in
  let best_config = ref None in
  let trial_index = ref 0 in
  (* Measure one configuration and return its structured result
     directly ([None] once the trial budget is spent) — callers such
     as the genetic-algorithm branch read the trial time from the
     return value instead of re-fetching the head of [history]. *)
  let measure_config cfg : Measure_result.t option =
    if !trial_index >= n_trials then None
    else begin
      Hashtbl.replace visited (Cfg_space.hash cfg) ();
      let stmt = try Some (template.tpl_instantiate cfg) with _ -> None in
      let result =
        match stmt with
        | None -> Measure_result.invalid_config
        | Some s -> (
            try measure cfg s
            with e ->
              (* Pool exhaustion and other infrastructure failures
                 become trials with a pool_error category; the loop
                 keeps going on whatever budget remains. *)
              Measure_result.fail (Measure_result.Pool_error (Printexc.to_string e)))
      in
      (match (stmt, result.Measure_result.time_s) with
      | Some s, Some time ->
          (* Only successful measurements train the cost model. *)
          xs := Feature.extract s :: !xs;
          ys := -.Float.log time :: !ys
      | _ -> ());
      (match result.Measure_result.time_s with
      | Some time when time < !best_time ->
          best_time := time;
          best_config := Some cfg
      | _ -> ());
      incr trial_index;
      (match db with
      | Some db -> Db.add db template.tpl_name cfg result
      | None -> ());
      history :=
        { trial_index = !trial_index; config = cfg; result;
          best_so_far = !best_time }
        :: !history;
      Obs_metrics.incr "tuner.trials";
      Obs_metrics.incr
        ("tuner.status." ^ Measure_result.status_name result.Measure_result.status);
      (match result.Measure_result.time_s with
      | Some time -> Obs_metrics.observe "tuner.trial_time_s" time
      | None -> Obs_metrics.incr "tuner.failed_trials");
      if !best_config <> None then
        Obs_metrics.set_gauge "tuner.best_time_s" !best_time;
      (* Guarded so the attribute strings are never built when tracing
         is off — this is the tuner's innermost loop. *)
      if Obs_trace.enabled () then
        Obs_trace.instant "tuner.trial"
          ~attrs:
            [
              ("template", template.tpl_name);
              ("trial", string_of_int !trial_index);
              ("status", Measure_result.status_name result.Measure_result.status);
              ( "time_ms",
                match result.Measure_result.time_s with
                | Some t -> Printf.sprintf "%.6f" (1e3 *. t)
                | None -> "-" );
              ( "best_ms",
                if !best_config = None then "-"
                else Printf.sprintf "%.6f" (1e3 *. !best_time) );
            ];
      Some result
    end
  in
  let feature_memo : (int, float array option) Hashtbl.t = Hashtbl.create 1024 in
  (* Seed the search with one known-valid configuration: heavily
     constrained spaces (odd shapes) can otherwise yield all-invalid
     random batches. A cheap instantiation check suffices. *)
  (let seed_attempts = min 4000 (4 * Cfg_space.size template.tpl_space) in
   let rec seek i =
     if i < seed_attempts && !trial_index = 0 then begin
       let cfg = Cfg_space.random_config template.tpl_space rng in
       (match (try Some (template.tpl_instantiate cfg) with _ -> None) with
       | Some _ -> ignore (measure_config cfg)
       | None -> ());
       seek (i + 1)
     end
   in
   seek 0);
  let sa_state = Explorers.sa_init template.tpl_space rng ~n_chains in
  let ga_state = Explorers.Genetic.init template.tpl_space rng ~pop_size:batch in
  let model = ref None in
  let exhausted = ref false in
  while (not !exhausted) && !trial_index < n_trials do
    let remaining = n_trials - !trial_index in
    let batch_now = min batch remaining in
    let before = !trial_index in
    (match method_ with
    | Random_search ->
        let cfgs = Explorers.random_batch template.tpl_space rng ~visited ~batch:batch_now in
        List.iter (fun cfg -> ignore (measure_config cfg)) cfgs
    | Genetic_algorithm ->
        let cfgs =
          if !trial_index = 0 then
            List.map (fun ind -> ind.Explorers.Genetic.cfg) ga_state.Explorers.Genetic.population
          else Explorers.Genetic.next_generation template.tpl_space rng ga_state ~mutation_rate:0.3
        in
        let cfgs = List.filteri (fun i _ -> i < batch_now) cfgs in
        let results = List.map measure_config cfgs in
        let fitness =
          List.map
            (fun r ->
              match Option.bind r Measure_result.time with
              | Some t -> -.Float.log t
              | None -> -1e9  (* failed or unmeasured: minimal fitness *))
            results
        in
        (* Population and measured prefix may differ on the last round. *)
        if List.length fitness = List.length ga_state.Explorers.Genetic.population then
          Explorers.Genetic.record_fitness ga_state fitness
    | Ml_model ->
        let cfgs =
          match !model with
          | None ->
              (* No training data yet: random candidates (§5.3). *)
              Explorers.random_batch template.tpl_space rng ~visited ~batch:batch_now
          | Some m ->
              let predict cfg =
                (* Memoize lowering + feature extraction per config: the
                   SA explorer revisits configurations frequently, and
                   model prediction must stay thousands of times cheaper
                   than measurement (§5.2). *)
                let h = Cfg_space.hash cfg in
                let feats =
                  match Hashtbl.find_opt feature_memo h with
                  | Some f -> f
                  | None ->
                      let f =
                        match (try Some (template.tpl_instantiate cfg) with _ -> None) with
                        | Some s -> Some (Feature.extract s)
                        | None -> None
                      in
                      Hashtbl.replace feature_memo h f;
                      f
                in
                match feats with
                | Some f -> Gbt.predict m f
                | None -> neg_infinity
              in
              (* ε-greedy: reserve part of the batch for uniform random
                 exploration so the model keeps seeing fresh regions. *)
              let n_random = max 1 (batch_now / 4) in
              let proposed =
                Explorers.simulated_annealing template.tpl_space rng sa_state ~predict
                  ~visited ~n_steps:sa_steps ~temp:1.0
                  ~batch:(max 0 (batch_now - n_random))
              in
              let filler =
                Explorers.random_batch template.tpl_space rng ~visited
                  ~batch:(batch_now - List.length proposed)
              in
              if proposed = [] && filler = [] then
                Explorers.random_batch template.tpl_space rng ~visited ~batch:batch_now
              else proposed @ filler
        in
        List.iter (fun cfg -> ignore (measure_config cfg)) cfgs;
        if !xs <> [] then
          model := Some (Gbt.fit (Array.of_list !xs) (Array.of_list !ys)));
    (* A round with no new measurements means the space is exhausted. *)
    if !trial_index = before then exhausted := true
  done;
  let model_accuracy =
    match !model with
    | Some m when List.length !xs > 4 ->
        Gbt.rank_accuracy m (Array.of_list !xs) (Array.of_list !ys)
    | _ -> ( match method_ with Ml_model -> 0.5 | _ -> Float.nan)
  in
  if Float.is_finite model_accuracy then
    Obs_metrics.set_gauge "tuner.model_accuracy" model_accuracy;
  match !best_config with
  | Some cfg ->
      { best_config = cfg; best_time = !best_time; history = List.rev !history;
        model_accuracy }
  | None ->
      invalid_arg
        (Printf.sprintf "tune(%s): no valid configuration found in %d trials"
           template.tpl_name n_trials)
