(** The automated optimization loop (§5, Fig 11).

    In each iteration the explorer proposes a batch of candidate
    configurations using the cost model's predictions; the batch is
    measured on the (simulated) device via the measurement callback —
    in the full system this goes through the RPC device pool — and the
    collected data retrains the model. Exploration state persists
    across model updates, as in the paper.

    Measurements come back as structured [Measure_result.t] values:
    failed trials (timeouts, crashes, invalid configurations, pool
    errors) are recorded in the history and database with their
    failure category, but never pollute the cost model's training
    set.

    The loop is multicore (§5.3): candidate lowering + feature
    extraction, the simulated-annealing chains, and the GBT split
    search all fan out over a {!Tvm_par.Pool.t} of [Options.jobs]
    domains. Every parallel section merges its results in a fixed
    input order, so the tuning log and the best configuration are
    bit-identical for a given seed at any [jobs] count. *)

module Obs_trace = Tvm_obs.Trace
module Obs_metrics = Tvm_obs.Metrics
module Journal = Tvm_obs.Journal

(** Provenance of a proposed configuration, journaled by the flight
    recorder: which explorer emitted it ([seed] for the initial
    known-valid probe, [random], [sa], [ga], [compiler] for the final
    lowering job), which SA chain found it ([-1] elsewhere), and the
    cost model's predicted score ([nan] when there was no model). *)
type origin = { og_kind : string; og_chain : int; og_score : float }

let origin ?(chain = -1) ?(score = Float.nan) kind =
  { og_kind = kind; og_chain = chain; og_score = score }

type template = {
  tpl_name : string;
  tpl_space : Cfg_space.t;
  tpl_instantiate : Cfg_space.config -> Tvm_tir.Stmt.t;
      (** lowered program for a configuration *)
}

type method_ = Ml_model | Random_search | Genetic_algorithm

let method_to_string = function
  | Ml_model -> "ml-based"
  | Random_search -> "random"
  | Genetic_algorithm -> "genetic"

let method_of_name = function
  | "ml" | "ml-based" -> Ml_model
  | "random" -> Random_search
  | "genetic" | "ga" -> Genetic_algorithm
  | s -> invalid_arg ("tuner: unknown method " ^ s ^ " (ml|random|genetic)")

type trial = {
  trial_index : int;
  config : Cfg_space.config;
  result : Measure_result.t;
  best_so_far : float;
}

type result = {
  best_config : Cfg_space.config;
  best_time : float;
  history : trial list;  (** in measurement order *)
  model_accuracy : float;  (** final rank accuracy on collected data *)
}

type measure_fn = Cfg_space.config -> Tvm_tir.Stmt.t -> Measure_result.t
(** Measure one instantiated configuration; failure is expressed only
    through [Measure_result.status], never as a sentinel float. *)

type batch_measure_fn =
  (Cfg_space.config * Tvm_tir.Stmt.t) array -> Measure_result.t array
(** Measure a whole batch at once (the device pool overlaps jobs on
    free devices); result [i] belongs to job [i]. *)

(** A database of measurement records (§5.4's log), shared across tuning
    jobs so related workloads benefit from history. The full record log
    is kept for history/training; best-per-key lookups go through a
    hash index so [best] is O(1) instead of a scan of every record.
    Failure categories are tallied per status so fleet health is
    visible from the log alone.

    Domain-safe: every operation takes the database's mutex, so
    concurrent [add]s from tuning jobs running on different domains
    keep the log, the best index and the tallies consistent. *)
module Db = struct
  type record = {
    db_key : string;
    db_config : Cfg_space.config;
    db_result : Measure_result.t;
  }

  type t = {
    mutable records : record list;  (** complete log, newest first *)
    best_by_key : (string, record) Hashtbl.t;
    by_cfg : (string * Cfg_space.config, Measure_result.t) Hashtbl.t;
        (** (key, canonical config) → first recorded result — the
            replay index *)
    mutable n_records : int;
    status_tally : (string, int) Hashtbl.t;  (** status name → count *)
    lock : Mutex.t;
  }

  let create () =
    {
      records = [];
      best_by_key = Hashtbl.create 64;
      by_cfg = Hashtbl.create 256;
      n_records = 0;
      status_tally = Hashtbl.create 8;
      lock = Mutex.create ();
    }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let add t key config (result : Measure_result.t) =
    locked t @@ fun () ->
    let r = { db_key = key; db_config = config; db_result = result } in
    t.records <- r :: t.records;
    t.n_records <- t.n_records + 1;
    let ck = (key, Cfg_space.canonical config) in
    (* First record wins: a deterministic re-run measures the same
       configuration to the same result, so replay wants the original. *)
    if not (Hashtbl.mem t.by_cfg ck) then Hashtbl.add t.by_cfg ck result;
    let sname = Measure_result.status_name result.Measure_result.status in
    Hashtbl.replace t.status_tally sname
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.status_tally sname));
    match result.Measure_result.time_s with
    | None -> ()  (* failed trials never enter the best index *)
    | Some time -> (
        match Hashtbl.find_opt t.best_by_key key with
        | Some { db_result = { Measure_result.time_s = Some bt; _ }; _ }
          when bt <= time ->
            ()
        | _ -> Hashtbl.replace t.best_by_key key r)

  (** Best successful record for [key], O(1). *)
  let best t key = locked t @@ fun () -> Hashtbl.find_opt t.best_by_key key

  (** First result recorded for (key, config), O(1) — replay resume. *)
  let find t key cfg =
    locked t @@ fun () ->
    Hashtbl.find_opt t.by_cfg (key, Cfg_space.canonical cfg)

  let size t = locked t @@ fun () -> t.n_records

  (** Complete log, oldest first — the persistence order. *)
  let records t = locked t @@ fun () -> List.rev t.records

  (** Count of records with the given status name (see
      [Measure_result.status_name]). *)
  let status_count t name =
    locked t @@ fun () ->
    Option.value ~default:0 (Hashtbl.find_opt t.status_tally name)

  (** All (status name, count) pairs, sorted by name. *)
  let status_counts t =
    locked t @@ fun () ->
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.status_tally []
    |> List.sort compare
end

let now_s () = Int64.to_float (Obs_trace.now_ns ()) /. 1e9

(** Accumulate wall-clock spent in a tuning phase into a
    [tune.phase.*_s] counter, so per-phase speedups are visible from
    the metrics dump alone. *)
let timed_phase name f =
  let t0 = now_s () in
  Fun.protect
    ~finally:(fun () -> Obs_metrics.incr ~by:(now_s () -. t0) ("tune.phase." ^ name ^ "_s"))
    f

let tune ?(spec = Tvm_spec.Job_spec.default) ?db ?cache ?measure_batch
    ~(method_ : method_) ~(measure : measure_fn) ~(n_trials : int)
    (template : template) : result =
  Obs_trace.with_span "tune"
    ~attrs:
      [
        ("template", template.tpl_name);
        ("method", method_to_string method_);
        ("trials", string_of_int n_trials);
      ]
  @@ fun () ->
  let { Tvm_spec.Job_spec.seed; batch; sa_steps; n_chains; jobs;
        use_compile_cache; replay; _ } =
    spec
  in
  Journal.run ~name:template.tpl_name ~method_:(method_to_string method_)
    ~trials:n_trials;
  let par = Tvm_par.Pool.create ~domains:jobs () in
  let rng = Random.State.make [| seed; Hashtbl.hash template.tpl_name |] in
  let visited : (Cfg_space.config, unit) Hashtbl.t = Hashtbl.create 256 in
  (* Configurations this run has compiled (or deliberately touched) so
     far, by canonical key. The journal's prepare verdict is membership
     here — run-local by construction, so a cache preloaded from the
     persistent store (or shared with an earlier search) cannot flip a
     cold run's "miss" into "hit" and break warm/cold journal
     byte-identity. Mirrors exactly the points where the memo gains
     entries during this run: the seek phase, the post-prepare merge,
     and the SA chains (each chain notes every configuration it
     queried, merged back in chain order). *)
  let known : (Cfg_space.config, unit) Hashtbl.t = Hashtbl.create 256 in
  let note_known cfg = Hashtbl.replace known (Cfg_space.canonical cfg) () in
  let xs = ref [] and ys = ref [] in
  let history = ref [] in
  let best_time = ref Float.max_float in
  let best_config = ref None in
  let trial_index = ref 0 in
  (* Shared compile cache (lowered program + features + validity),
     keyed by canonical config value so distinct configurations can
     never collide (structural equality, not int hash). Written only
     between parallel sections; during SA it is read-only and each
     chain gets its own overflow cache. *)
  let memo =
    match cache with
    | Some c -> c
    | None ->
        Compile_cache.create ~size:1024 ~keep_stmts:use_compile_cache
          ~name:template.tpl_name ()
  in
  let compile cfg =
    match (try Some (template.tpl_instantiate cfg) with _ -> None) with
    | Some s -> Compile_cache.Valid { feats = Feature.extract s; stmt = Some s }
    | None -> Compile_cache.Invalid
  in
  (* Record one measured configuration: training set, incumbent, db,
     history, metrics. Sequential bookkeeping — always called on the
     coordinator, in batch order. *)
  let record_trial ~replayed uid cfg (feats : float array option)
      (result : Measure_result.t) =
    (match (feats, result.Measure_result.time_s) with
    | Some f, Some time ->
        (* Only successful measurements train the cost model. *)
        xs := f :: !xs;
        ys := -.Float.log time :: !ys
    | _ -> ());
    (match result.Measure_result.time_s with
    | Some time when time < !best_time ->
        best_time := time;
        best_config := Some cfg
    | _ -> ());
    incr trial_index;
    (match db with
    | Some db when not replayed -> Db.add db template.tpl_name cfg result
    | _ -> ());
    if replayed then Obs_metrics.incr "tuner.replayed";
    history :=
      { trial_index = !trial_index; config = cfg; result;
        best_so_far = !best_time }
      :: !history;
    Journal.measure ~uid
      ~status:(Measure_result.status_name result.Measure_result.status)
      ~time_s:result.Measure_result.time_s
      ~attempts:result.Measure_result.attempts;
    if Obs_trace.enabled () then Obs_trace.flow ~id:uid Obs_trace.Flow_end "trial";
    Obs_metrics.incr "tuner.trials";
    Obs_metrics.incr
      ("tuner.status." ^ Measure_result.status_name result.Measure_result.status);
    (match result.Measure_result.time_s with
    | Some time -> Obs_metrics.observe "tuner.trial_time_s" time
    | None -> Obs_metrics.incr "tuner.failed_trials");
    if !best_config <> None then
      Obs_metrics.set_gauge "tuner.best_time_s" !best_time;
    (* Guarded so the attribute strings are never built when tracing
       is off — this is the tuner's innermost loop. *)
    if Obs_trace.enabled () then
      Obs_trace.instant "tuner.trial"
        ~attrs:
          [
            ("template", template.tpl_name);
            ("trial", string_of_int !trial_index);
            ("status", Measure_result.status_name result.Measure_result.status);
            ( "time_ms",
              match result.Measure_result.time_s with
              | Some t -> Printf.sprintf "%.6f" (1e3 *. t)
              | None -> "-" );
            ( "best_ms",
              if !best_config = None then "-"
              else Printf.sprintf "%.6f" (1e3 *. !best_time) );
          ]
  in
  (* Measure a batch of configurations (each with its provenance) and
     return each one's result in input order ([None] past the trial
     budget). Three stages: prepare (lowering + feature extraction,
     fanned out over the domain pool), measure (the batch callback
     overlaps jobs on free devices, or the per-config callback runs
     them one by one), record (sequential bookkeeping in input order).
     Results are independent of the domain count: prepared values land
     in per-index slots and every later stage walks them in input
     order. The flight recorder writes happen only in the sequential
     stages — uids, proposals and the feature-level cache verdict
     before the parallel prepare, prepare/dispatch/measure records
     after it — which is what keeps the journal byte-identical at any
     [-j] and with the compile cache on or off. *)
  let run_batch (cfgs : (Cfg_space.config * origin) list) :
      Measure_result.t option list =
    let take = max 0 (min (List.length cfgs) (n_trials - !trial_index)) in
    let taken = List.filteri (fun i _ -> i < take) cfgs in
    List.iter
      (fun (cfg, _) -> Hashtbl.replace visited (Cfg_space.canonical cfg) ())
      taken;
    let tagged = Array.of_list taken in
    let uids = Array.map (fun _ -> Journal.fresh_uid ()) tagged in
    (* The journal's cache verdict is feature-level and run-local (had
       THIS run compiled the config before this batch?): the stmt-level
       hit kind differs between cache on/off modes and a preloaded
       cache would differ from a cold one, the run-local feature-level
       verdict does not. *)
    let cache_state =
      Array.map
        (fun (cfg, _) ->
          if Hashtbl.mem known (Cfg_space.canonical cfg) then "hit" else "miss")
        tagged
    in
    (* Replay resume: a configuration already measured in a persisted
       [db] (with its features preloaded in the cache) skips both
       instantiation and the pool dispatch, reusing the recorded
       result. Feats must come from the cache so the cost model trains
       on the same trajectory; without them we fall through to a live
       measurement. *)
    let replay_hit =
      Array.map
        (fun (cfg, _) ->
          if not replay then None
          else
            Option.bind db (fun db ->
                match Db.find db template.tpl_name cfg with
                | None -> None
                | Some r -> (
                    match Compile_cache.find ~record:false memo cfg with
                    | Some (Compile_cache.Valid { feats; _ }) -> Some (r, feats)
                    | Some Compile_cache.Invalid | None -> None)))
        tagged
    in
    if Journal.enabled () || Obs_trace.enabled () then
      Array.iteri
        (fun i (cfg, og) ->
          Journal.propose ~uid:uids.(i) ~origin:og.og_kind ~chain:og.og_chain
            ~score:og.og_score ~config:(Cfg_space.to_string cfg);
          if Obs_trace.enabled () then
            Obs_trace.flow ~id:uids.(i) Obs_trace.Flow_start "trial")
        tagged;
    let prepared =
      timed_phase "prepare" @@ fun () ->
      Tvm_par.Pool.parallel_map par
        (fun i ->
          let cfg = fst tagged.(i) in
          match replay_hit.(i) with
          | Some (_, feats) -> (cfg, None, Some feats)
          | None -> (
              match Compile_cache.find memo cfg with
              | Some Compile_cache.Invalid -> (cfg, None, None)  (* skip *)
              | Some (Compile_cache.Valid { feats; stmt = Some s }) ->
                  (* full hit: the propose phase (or an earlier search
                     over this workload) already lowered this program *)
                  (cfg, Some s, Some feats)
              | Some (Compile_cache.Valid { feats; stmt = None }) ->
                  (* features cached, program evicted or never retained;
                     measurement still needs the program *)
                  let stmt =
                    try Some (template.tpl_instantiate cfg) with _ -> None
                  in
                  (cfg, stmt, Some feats)
              | None -> (
                  match
                    (try Some (template.tpl_instantiate cfg) with _ -> None)
                  with
                  | Some s -> (cfg, Some s, Some (Feature.extract s))
                  | None -> (cfg, None, None))))
        (Array.init (Array.length tagged) Fun.id)
    in
    (* Merge fresh compilations into the shared memo, in input order
       (all cache writes happen here on the coordinator). Replay hits
       are already present in the preloaded memo. *)
    Array.iteri
      (fun i (cfg, stmt, feats) ->
        if replay_hit.(i) = None then
          match (stmt, feats) with
          | Some s, Some f ->
              Compile_cache.add memo cfg
                (Compile_cache.Valid { feats = f; stmt = Some s })
          | None, _ -> Compile_cache.add memo cfg Compile_cache.Invalid
          | Some _, None -> ())
      prepared;
    Array.iter (fun (cfg, _, _) -> note_known cfg) prepared;
    Array.iteri
      (fun i (_, _, feats) ->
        Journal.prepare ~uid:uids.(i) ~cache:cache_state.(i)
          ~valid:(feats <> None))
      prepared;
    (* A job is dispatched to the pool iff it has a program: invalid
       configurations and replay hits never leave the coordinator. *)
    let results =
      timed_phase "measure" @@ fun () ->
      Fun.protect ~finally:Journal.clear_job_tags @@ fun () ->
      match measure_batch with
      | Some mb -> (
          let jobs =
            Array.of_list
              (List.filter_map
                 (fun (cfg, stmt, _) ->
                   Option.map (fun s -> (cfg, s)) stmt)
                 (Array.to_list prepared))
          in
          (* Tag pool job [j] with its trial uid so the pool's dispatch
             records attribute device attempts to the right trial. *)
          Journal.set_job_tags
            (Array.to_list prepared
            |> List.mapi (fun i (_, stmt, _) -> (i, stmt))
            |> List.filter_map (fun (i, stmt) ->
                   Option.map (fun _ -> uids.(i)) stmt)
            |> Array.of_list);
          let measured =
            if Array.length jobs = 0 then [||]
            else
              try mb jobs
              with e ->
                (* A wholesale batch failure degrades to per-job pool
                   errors, like the per-config path would. *)
                Array.map
                  (fun _ ->
                    Measure_result.fail
                      (Measure_result.Pool_error (Printexc.to_string e)))
                  jobs
          in
          let next = ref 0 in
          Array.mapi
            (fun i (_, stmt, _) ->
              match replay_hit.(i) with
              | Some (r, _) -> r
              | None -> (
                  match stmt with
                  | None -> Measure_result.invalid_config
                  | Some _ ->
                      let r = measured.(!next) in
                      incr next;
                      r))
            prepared)
      | None ->
          Array.mapi
            (fun i (cfg, stmt, _) ->
              match replay_hit.(i) with
              | Some (r, _) -> r
              | None -> (
                  match stmt with
                  | None -> Measure_result.invalid_config
                  | Some s -> (
                      Journal.set_job_tags [| uids.(i) |];
                      try measure cfg s
                      with e ->
                        (* Pool exhaustion and other infrastructure
                           failures become trials with a pool_error
                           category; the loop keeps going on whatever
                           budget remains. *)
                        Measure_result.fail
                          (Measure_result.Pool_error (Printexc.to_string e)))))
            prepared
    in
    Array.iteri
      (fun i (cfg, _, feats) ->
        record_trial ~replayed:(replay_hit.(i) <> None) uids.(i) cfg feats
          results.(i))
      prepared;
    List.mapi
      (fun i _ -> if i < take then Some results.(i) else None)
      cfgs
  in
  let measure_config cfg =
    match run_batch [ (cfg, origin "seed") ] with [ r ] -> r | _ -> None
  in
  (* Seed the search with one known-valid configuration: heavily
     constrained spaces (odd shapes) can otherwise yield all-invalid
     random batches. A cheap instantiation check suffices. *)
  (let seed_attempts = min 4000 (4 * Cfg_space.size template.tpl_space) in
   let rec seek i =
     if i < seed_attempts && !trial_index = 0 then begin
       let cfg = Cfg_space.random_config template.tpl_space rng in
       let entry = Compile_cache.find_or_compile memo cfg ~compile in
       note_known cfg;
       (match entry with
       | Compile_cache.Valid _ -> ignore (measure_config cfg)
       | Compile_cache.Invalid -> ());
       seek (i + 1)
     end
   in
   seek 0);
  let sa_state = Explorers.sa_init template.tpl_space rng ~n_chains in
  let ga_state = Explorers.Genetic.init template.tpl_space rng ~pop_size:batch in
  let model = ref None in
  let exhausted = ref false in
  while (not !exhausted) && !trial_index < n_trials do
    let remaining = n_trials - !trial_index in
    let batch_now = min batch remaining in
    let before = !trial_index in
    (match method_ with
    | Random_search ->
        let cfgs = Explorers.random_batch template.tpl_space rng ~visited ~batch:batch_now in
        ignore (run_batch (List.map (fun c -> (c, origin "random")) cfgs))
    | Genetic_algorithm ->
        let cfgs =
          if !trial_index = 0 then
            List.map (fun ind -> ind.Explorers.Genetic.cfg) ga_state.Explorers.Genetic.population
          else Explorers.Genetic.next_generation template.tpl_space rng ga_state ~mutation_rate:0.3
        in
        let cfgs = List.filteri (fun i _ -> i < batch_now) cfgs in
        let results = run_batch (List.map (fun c -> (c, origin "ga")) cfgs) in
        let fitness =
          List.map
            (fun r ->
              match Option.bind r Measure_result.time with
              | Some t -> -.Float.log t
              | None -> -1e9  (* failed or unmeasured: minimal fitness *))
            results
        in
        (* Population and measured prefix may differ on the last round. *)
        if List.length fitness = List.length ga_state.Explorers.Genetic.population then
          Explorers.Genetic.record_fitness ga_state fitness
    | Ml_model ->
        let cfgs =
          match !model with
          | None ->
              (* No training data yet: random candidates (§5.3). *)
              List.map
                (fun c -> (c, origin "random"))
                (Explorers.random_batch template.tpl_space rng ~visited
                   ~batch:batch_now)
          | Some m ->
              (* Each SA chain gets its own overflow memo; the shared
                 one is read-only while the chains run. Afterwards the
                 chain caches merge back in chain-index order, so the
                 memo's contents never depend on the domain count. *)
              let locals =
                Array.init n_chains (fun _ -> Compile_cache.create_local memo)
              in
              (* Every configuration a chain queries, canonical-keyed.
                 Merged into [known] after the walk so the journal's
                 run-local verdict does not depend on whether a query
                 hit the (possibly preloaded) shared tier or compiled
                 into the chain-local cache. One table per chain, only
                 ever written by that chain's domain. *)
              let touched =
                Array.init n_chains (fun _ -> Hashtbl.create 64)
              in
              let predict_for_chain ci =
                let local = locals.(ci) in
                let seen = touched.(ci) in
                fun cfg ->
                  Hashtbl.replace seen (Cfg_space.canonical cfg) ();
                  (* Two-tier lookup: the shared memo first (probed
                     with [record:false], the hit counted explicitly),
                     then the chain-local cache, compiling on a double
                     miss — [find_or_compile] records the local
                     verdict, so each logical query counts exactly
                     once. Chain winners keep their lowered program, so
                     if this config is measured later the prepare phase
                     skips instantiation entirely. *)
                  let entry =
                    match Compile_cache.find ~record:false memo cfg with
                    | Some e ->
                        Compile_cache.record_hit memo;
                        e
                    | None -> Compile_cache.find_or_compile local cfg ~compile
                  in
                  match Compile_cache.feats entry with
                  | Some f -> Gbt.predict m f
                  | None -> neg_infinity
              in
              (* ε-greedy: reserve part of the batch for uniform random
                 exploration so the model keeps seeing fresh regions. *)
              let n_random = max 1 (batch_now / 4) in
              let proposed =
                timed_phase "propose" @@ fun () ->
                Explorers.simulated_annealing ~pool:par template.tpl_space rng
                  sa_state ~predict_for_chain ~visited ~n_steps:sa_steps
                  ~temp:1.0
                  ~batch:(max 0 (batch_now - n_random))
                |> List.map (fun (c, chain, score) ->
                       (c, origin ~chain ~score "sa"))
              in
              Array.iter (fun l -> Compile_cache.merge ~into:memo l) locals;
              Array.iter
                (fun seen -> Hashtbl.iter (fun k () -> Hashtbl.replace known k ()) seen)
                touched;
              let filler =
                Explorers.random_batch template.tpl_space rng ~visited
                  ~batch:(batch_now - List.length proposed)
                |> List.map (fun c -> (c, origin "random"))
              in
              if proposed = [] && filler = [] then
                List.map
                  (fun c -> (c, origin "random"))
                  (Explorers.random_batch template.tpl_space rng ~visited
                     ~batch:batch_now)
              else proposed @ filler
        in
        ignore (run_batch cfgs);
        if !xs <> [] then
          model :=
            Some
              (timed_phase "fit" @@ fun () ->
               Gbt.fit ~pool:par (Array.of_list !xs) (Array.of_list !ys)));
    (* A round with no new measurements means the space is exhausted. *)
    if !trial_index = before then exhausted := true
  done;
  let model_accuracy =
    match !model with
    | Some m when List.length !xs > 4 ->
        Gbt.rank_accuracy ~pool:par m (Array.of_list !xs) (Array.of_list !ys)
    | _ -> ( match method_ with Ml_model -> 0.5 | _ -> Float.nan)
  in
  if Float.is_finite model_accuracy then
    Obs_metrics.set_gauge "tuner.model_accuracy" model_accuracy;
  match !best_config with
  | Some cfg ->
      { best_config = cfg; best_time = !best_time; history = List.rev !history;
        model_accuracy }
  | None ->
      invalid_arg
        (Printf.sprintf "tune(%s): no valid configuration found in %d trials"
           template.tpl_name n_trials)
