(** The automated optimization loop (§5, Fig 11).

    [tune] alternates between proposing candidate configurations
    (random search, a genetic algorithm, or the paper's ML-guided
    simulated annealing) and measuring them through a [measure_fn] —
    in the full system the RPC device pool. Measurements come back as
    structured {!Measure_result.t} values; failed trials are recorded
    with their failure category and never train the cost model. *)

type template = {
  tpl_name : string;
  tpl_space : Cfg_space.t;
  tpl_instantiate : Cfg_space.config -> Tvm_tir.Stmt.t;
      (** lowered program for a configuration; raises on invalid ones *)
}

type method_ = Ml_model | Random_search | Genetic_algorithm

val method_to_string : method_ -> string

(** [Job_spec.method_name] → method: accepts ["ml"]/["ml-based"],
    ["random"], ["genetic"]/["ga"]; raises [Invalid_argument]
    otherwise. *)
val method_of_name : string -> method_

type trial = {
  trial_index : int;  (** 1-based position in measurement order *)
  config : Cfg_space.config;
  result : Measure_result.t;
  best_so_far : float;  (** best successful time up to this trial *)
}

type result = {
  best_config : Cfg_space.config;
  best_time : float;  (** always finite: [tune] raises if no trial succeeded *)
  history : trial list;  (** in measurement order *)
  model_accuracy : float;  (** final rank accuracy on collected data *)
}

type measure_fn = Cfg_space.config -> Tvm_tir.Stmt.t -> Measure_result.t
(** Measure one instantiated configuration; failure is expressed only
    through [Measure_result.status], never as a sentinel float. *)

type batch_measure_fn =
  (Cfg_space.config * Tvm_tir.Stmt.t) array -> Measure_result.t array
(** Measure a whole batch at once — the device pool overlaps jobs on
    free devices (§5.4) — returning result [i] for job [i]. *)

(** A database of measurement records (§5.4's log), shared across
    tuning jobs so related workloads benefit from history. Keeps the
    complete record log, an O(1) best-per-key index over successful
    trials, an O(1) first-measurement-per-configuration index (the
    replay resume path), and a per-status tally of failure categories.
    Domain-safe: every operation takes the database's mutex, so
    concurrent [add]s from different domains stay consistent. *)
module Db : sig
  type record = {
    db_key : string;
    db_config : Cfg_space.config;
    db_result : Measure_result.t;
  }

  type t

  val create : unit -> t
  val add : t -> string -> Cfg_space.config -> Measure_result.t -> unit

  (** Best successful record for a key, O(1). *)
  val best : t -> string -> record option

  (** First result ever recorded for (key, configuration) — the record
      a replaying tune run reuses instead of re-dispatching the
      measurement. Keyed on {!Cfg_space.canonical}, O(1). *)
  val find : t -> string -> Cfg_space.config -> Measure_result.t option

  val size : t -> int

  (** The complete log in chronological (oldest-first) order — what the
      persistent store serializes. *)
  val records : t -> record list

  (** Count of records with the given status name (see
      [Measure_result.status_name]). *)
  val status_count : t -> string -> int

  (** All (status name, count) pairs, sorted by name. *)
  val status_counts : t -> (string * int) list
end

(** Run the optimization loop for [n_trials] measurements (failed
    trials consume budget too). When [measure_batch] is given it is
    preferred over [measure]: each batch of valid candidates is handed
    to it whole, so the device pool can overlap jobs on free devices.

    [spec] supplies the loop knobs — [seed], [batch], [sa_steps],
    [n_chains], [jobs], [use_compile_cache], [replay]; [method_] and
    [n_trials] stay explicit because callers split budgets and sweep
    methods independently of one spec ([Job_spec.trials] and
    [Job_spec.method_name] are for those callers to interpret).

    [db] is the shared measurement log; [cache] a shared compile cache
    (e.g. the compiler's per-workload scope) — [None] = a private cache
    per [tune] call; neither changes results.

    With [spec.replay] set, configurations whose measurement is already
    recorded in [db] (for this template, with cached features) reuse
    the recorded result instead of dispatching to the device pool — the
    warm-restart resume path. On a clean fleet the trial history is
    byte-identical to an uninterrupted run; replayed trials skip the
    duplicate [Db.add] and count the [tuner.replayed] metric.

    Raises [Invalid_argument] if no configuration ever measured
    successfully. *)
val tune :
  ?spec:Tvm_spec.Job_spec.t ->
  ?db:Db.t ->
  ?cache:Compile_cache.t ->
  ?measure_batch:batch_measure_fn ->
  method_:method_ ->
  measure:measure_fn ->
  n_trials:int ->
  template ->
  result
