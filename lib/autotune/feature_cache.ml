(* See feature_cache.mli. *)

type key = Cfg_space.config

type t = (key, float array option) Hashtbl.t

let create ?(size = 256) () : t = Hashtbl.create size

(* Configs are assoc lists whose order is arbitrary; sorting gives one
   canonical representative so structural equality on keys is exact.
   This is what fixes the old int-hash keying: two distinct configs
   whose [Cfg_space.hash] collide now occupy separate entries. *)
let canonical (cfg : Cfg_space.config) : key = List.sort compare cfg

let find (t : t) cfg = Hashtbl.find_opt t (canonical cfg)

let add (t : t) cfg feats =
  let k = canonical cfg in
  if not (Hashtbl.mem t k) then Hashtbl.add t k feats

let find_or_extract (t : t) cfg ~extract =
  let k = canonical cfg in
  match Hashtbl.find_opt t k with
  | Some feats -> feats
  | None ->
      let feats = extract cfg in
      Hashtbl.replace t k feats;
      feats

let size (t : t) = Hashtbl.length t

let merge ~(into : t) (src : t) =
  Hashtbl.iter (fun k v -> if not (Hashtbl.mem into k) then Hashtbl.add into k v) src
