(** Structured measurement results.

    Every measurement of a candidate configuration is reported as a
    [Measure_result.t] instead of a bare float: the status says *why*
    a trial produced no number, and [attempts] says how many tries
    (retries included) the device pool spent on it. No caller should
    ever encode measurement failure as [infinity] again. *)

type status =
  | Ok  (** measurement succeeded; [time_s] holds the run time *)
  | Timeout  (** the job exceeded its per-job budget (or hung) *)
  | Crash  (** the remote run died before reporting a time *)
  | Invalid_config  (** the configuration failed lowering/validation *)
  | Pool_error of string
      (** infrastructure failure: unstable measurements that never
          stabilised, a pool with no healthy device left, ... *)

type t = {
  time_s : float option;  (** [Some t] iff [status = Ok] *)
  status : status;
  attempts : int;  (** measurement attempts consumed, retries included *)
}

val ok : ?attempts:int -> float -> t
val fail : ?attempts:int -> status -> t

(** A configuration that failed template instantiation ([attempts = 0]). *)
val invalid_config : t

val is_ok : t -> bool

(** The measured time, present only for successful trials. *)
val time : t -> float option

(** Stable short name for a status ("ok", "timeout", "crash",
    "invalid_config", "pool_error") — used as metric and Db keys. *)
val status_name : status -> string

(** Inverse of {!status_name}; [msg] fills the [Pool_error] payload.
    Raises [Invalid_argument] on an unknown name. *)
val status_of_name : ?msg:string -> string -> status

val to_string : t -> string
