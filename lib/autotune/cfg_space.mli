(** Schedule-space specification (§5.1).

    A template declares knobs; a configuration assigns each knob one of
    its choices. The generic master templates extract knobs (tile
    sizes, thread counts, unroll/vectorize toggles) automatically from
    the computation description. *)

type knob = { k_name : string; k_choices : int array }
type t = { knobs : knob list }

type config = (string * int) list
(** knob name → chosen value *)

(** [knob name choices]; raises on an empty choice list. *)
val knob : string -> int list -> knob

(** All divisors of [n], ascending — the tiling-factor choice sets. *)
val divisors : int -> int list

(** Divisors of [n] no larger than [cap]. *)
val divisors_upto : int -> int -> int list

val space : knob list -> t

(** Number of configurations in the space (product of choice counts). *)
val size : t -> int

(** Value of a knob; raises [Invalid_argument] if absent. *)
val get : config -> string -> int

val get_opt : config -> string -> int option

(** Dense mixed-radix bijection between [0, size) and configurations. *)
val config_at : t -> int -> config

val index_of : t -> config -> int
val random_config : t -> Random.State.t -> config

(** One-knob mutation — the random-walk step of the SA explorer. *)
val mutate : t -> Random.State.t -> config -> config

(** Uniform crossover, for the genetic-algorithm baseline. *)
val crossover : Random.State.t -> config -> config -> config

val to_string : config -> string

(** Inverse of {!to_string} ("name=val,name=val"; empty string → empty
    config) — the persistent store's wire format. Raises
    [Invalid_argument] on malformed input. *)
val of_string : string -> config

(** Canonical representative (knobs sorted by name): the structural key
    for every table over configurations — exact equality, no collision
    class. *)
val canonical : config -> config

(** Order-insensitive hash of {!canonical}. Not an identity (int hashes
    collide): only for seeding deterministic measurement noise; lookups
    must key on {!canonical} itself. *)
val hash : config -> int
