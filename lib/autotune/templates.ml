(** Generic master schedule templates (§5.1).

    "We also created a generic master template for each hardware
    back-end that automatically extracts possible knobs based on the
    computation description" — these are those templates. Each template
    builds a fresh schedule from the output tensor of a (possibly
    fused) tensor-expression group, applies a configuration's knob
    values, and lowers it for the target.

    Invalid knob combinations (non-dividing tiles where cache stages
    need exactness, oversubscribed threads) raise; the tuner records
    them as failed measurements, exactly as real on-device builds fail. *)

open Tvm_tir
module Tensor = Tvm_te.Tensor
module Sched = Tvm_schedule.Sched
module Iter_var = Tvm_schedule.Iter_var
module Lower = Tvm_lower.Lower

exception Invalid_config of string

let reject fmt = Printf.ksprintf (fun s -> raise (Invalid_config s)) fmt

let require_divides a b = if b mod a <> 0 then reject "%d does not divide %d" a b

(** Region inference is exact only when a fused-axis chunk maps to a
    rectangular region of the original tensor for *every* chunk, i.e.
    when the chunk size nests with the shape's suffix products. Reject
    misaligned chunks (the moral equivalent of a failed build). *)
let require_aligned_chunk chunk shape =
  let rec suffixes = function
    | [] | [ _ ] -> []
    | _ :: rest -> List.fold_left ( * ) 1 rest :: suffixes rest
  in
  List.iter
    (fun s ->
      if not (chunk mod s = 0 || s mod chunk = 0) then
        reject "chunk %d misaligned with suffix %d" chunk s)
    (suffixes shape)

(* ------------------------------------------------------------------ *)
(* Schedule helpers shared by the templates                             *)
(* ------------------------------------------------------------------ *)

(** Reduce axes of a stage before any splitting (for alignment checks
    the original extents are what matter; cache_write moved them). *)
let st_reduce_shape_of (st : Sched.stage) = st.Sched.s_reduce_axes

(** The reduction stage nearest the output — the group anchor the
    template concentrates effort on. *)
let find_anchor sched =
  List.fold_left
    (fun acc st -> if st.Sched.s_reduce_axes <> [] then Some st else acc)
    None (Sched.stages sched)

(** Inline every injective intermediate except [keep]. *)
let inline_intermediates sched ~keep =
  List.iter
    (fun st ->
      let kept = List.exists (fun k -> k == st) keep in
      let injective =
        match st.Sched.s_body with Tensor.Value _ -> true | Tensor.Reduce _ -> false
      in
      if injective && (not kept) && not st.Sched.s_is_output then
        Sched.compute_inline st)
    (Sched.stages sched)

(** Give a leftover root compute stage a basic GPU binding so it does
    not execute single-threaded. *)
let default_gpu_root st =
  let data = List.filter (fun iv -> not (Iter_var.is_reduce iv)) st.Sched.s_leaf in
  match data with
  | [] -> ()
  | first :: _ ->
      let fused = Sched.fuse_list st data in
      ignore first;
      let threads = min 64 fused.Iter_var.extent in
      if fused.Iter_var.extent mod threads = 0 then begin
        let bx, tx = Sched.split st fused ~factor:threads in
        Sched.bind st bx "blockIdx.x";
        Sched.bind st tx "threadIdx.x"
      end

let default_cpu_root st =
  let data = List.filter (fun iv -> not (Iter_var.is_reduce iv)) st.Sched.s_leaf in
  match data with
  | [] -> ()
  | [ only ] -> Sched.parallel st only
  | first :: _ ->
      ignore first;
      let fused = Sched.fuse_list st data in
      Sched.parallel st fused

(** Direct producer stages of [anchor] (whose buffers its body reads). *)
let producers_of sched st =
  Sched.read_buffers st
  |> List.filter_map (fun b -> Sched.find_by_buffer sched b)

(* ------------------------------------------------------------------ *)
(* GPU flat template                                                    *)
(* ------------------------------------------------------------------ *)

(* Knob space of the flat GPU template: an output of [n] elements with
   reduction depth [k]. *)
(** Chunk sizes nesting with the suffix chain of every shape in
    [shapes] (the alignment precondition of exact region inference).
    Both the fused output's shape and the anchor's shape matter: a
    chunk of the flattened output must map to a rectangular region of
    the anchor tensor too (a reshaping epilogue such as flatten makes
    them differ). *)
let aligned_divisors n shapes cap =
  let rec suffixes = function
    | [] | [ _ ] -> []
    | _ :: rest -> List.fold_left ( * ) 1 rest :: suffixes rest
  in
  let sfx = List.concat_map suffixes shapes in
  List.filter
    (fun d -> d <= cap && List.for_all (fun s -> d mod s = 0 || s mod d = 0) sfx)
    (Cfg_space.divisors n)

(** Shape of the stage region inference anchors on (the reduction
    nearest the output); the output's own shape when there is none. *)
let anchor_shape (output : Tensor.t) =
  let sched = Sched.create [ output ] in
  match find_anchor sched with
  | Some st -> Expr.Buffer.const_shape st.Sched.s_out
  | None -> Tensor.const_shape output

let gpu_flat_space ~n ~k ~shapes =
  let threads = List.filter (fun t -> t >= 8 && t <= 1024) (Cfg_space.divisors n) in
  let threads = if threads = [] then [ 1 ] else threads in
  let items =
    if k > 1 then aligned_divisors n shapes 256
    else List.filter (fun i -> i <= 256) (Cfg_space.divisors n)
  in
  let items = if items = [] then [ 1 ] else items in
  let rc = if k <= 1 then [ 1 ] else Cfg_space.divisors_upto k 256 in
  Cfg_space.space
    ([
       Cfg_space.knob "threads" threads;
       Cfg_space.knob "items" items;
       Cfg_space.knob "rc" rc;
       Cfg_space.knob "unroll" [ 0; 1 ];
       Cfg_space.knob "vec" [ 0; 1 ];
     ]
    @ if k > 1 then [ Cfg_space.knob "use_shared" [ 0; 1 ] ] else [])

(** Instantiate the flat GPU template. *)
let gpu_flat_instantiate ?(target = Lower.Gpu) (output : Tensor.t) cfg : Stmt.t =
  let n = List.fold_left ( * ) 1 (Tensor.const_shape output) in
  let threads = Cfg_space.get cfg "threads" in
  let items = Cfg_space.get cfg "items" in
  let rc = Cfg_space.get cfg "rc" in
  let unroll = Cfg_space.get cfg "unroll" = 1 in
  let vec = match Cfg_space.get_opt cfg "vec" with Some 1 -> true | _ -> false in
  let use_shared =
    match Cfg_space.get_opt cfg "use_shared" with Some 1 -> true | _ -> false
  in
  require_divides (threads * items) n;
  let out_shape = Tensor.const_shape output in
  let sched = Sched.create [ output ] in
  let out_st = Sched.find sched output in
  (* Anchor: reduction stage; if the output itself reduces, accumulate
     through a register cache first. *)
  let anchor =
    match find_anchor sched with
    | Some st when st == out_st -> Some (Sched.cache_write sched out_st Expr.Local)
    | other -> other
  in
  (* Alignment is only required where region inference runs: around an
     attached anchor (per-thread chunks) and for cooperative staging
     (block-wide chunks). Injective-only kernels take any factors. *)
  (match anchor with
  | None -> ()
  | Some a ->
      let a_shape = Expr.Buffer.const_shape a.Sched.s_out in
      require_aligned_chunk items out_shape;
      require_aligned_chunk items a_shape;
      if use_shared then begin
        require_aligned_chunk (threads * items) out_shape;
        require_aligned_chunk (threads * items) a_shape
      end);
  let keep =
    match anchor with
    | None -> [ out_st ]
    | Some a ->
        (* With cooperative staging the anchor's producers stay
           materialized so the shared copies read non-negative indices. *)
        let prods = if use_shared then producers_of sched a else [] in
        (out_st :: a :: prods)
  in
  inline_intermediates sched ~keep;
  (* Output loop structure: [block, thread, per-thread items]. *)
  let data = List.filter (fun iv -> not (Iter_var.is_reduce iv)) out_st.Sched.s_leaf in
  let fused = Sched.fuse_list out_st data in
  let bx, rest = Sched.split out_st fused ~factor:(threads * items) in
  let tx, xi = Sched.split out_st rest ~factor:items in
  Sched.bind out_st bx "blockIdx.x";
  Sched.bind out_st tx "threadIdx.x";
  if vec && items mod 4 = 0 && items > 1 then begin
    let _xo, xv = Sched.split out_st xi ~factor:4 in
    Sched.vectorize out_st xv
  end
  else if unroll then Sched.unroll out_st xi;
  (match anchor with
  | None -> ()
  | Some a ->
      if a.Sched.s_out.Expr.bscope = Expr.Global then Sched.set_scope sched a Expr.Local;
      Sched.compute_at a ~target:out_st ~level:tx;
      let reduce_leaves = List.filter Iter_var.is_reduce a.Sched.s_leaf in
      let rfused = Sched.fuse_list a reduce_leaves in
      let k_total = rfused.Iter_var.extent in
      let rc = min rc k_total in
      require_divides rc k_total;
      let ko, ki = Sched.split a rfused ~factor:rc in
      Sched.reorder a ((ko :: a.Sched.s_root_axes) @ [ ki ]);
      if unroll then Sched.unroll a ki;
      if use_shared then begin
        (* Mod-wrapping reduce chunks make cooperative-cache offsets
           non-minimal; require the chunk to nest with the fused reduce
           axes' suffix products. *)
        require_aligned_chunk rc
          (List.map (fun iv -> iv.Iter_var.extent)
             (List.filter Iter_var.is_reduce
                (st_reduce_shape_of a)));
        List.iter
          (fun (b : Expr.buffer) ->
            let cache = Sched.cache_read sched b Expr.Shared [ a ] in
            Sched.compute_at cache ~target:a ~level:ko;
            let cfused = Sched.fuse_list cache cache.Sched.s_leaf in
            let _co, ct = Sched.split cache cfused ~factor:threads in
            Sched.bind cache ct "threadIdx.x")
          (Sched.read_buffers a)
      end);
  (* Any remaining root stages (pads kept for shared staging, extra
     reductions in opaque chains) get a default binding. *)
  List.iter
    (fun st ->
      if Sched.is_root_stage st && (not (st == out_st)) && st.Sched.s_ann = [] then
        default_gpu_root st)
    (Sched.stages sched);
  Lower.lower ~target sched

let reduce_depth (output : Tensor.t) =
  (* Product of reduce extents of the reduction stage nearest output. *)
  let sched = Sched.create [ output ] in
  match find_anchor sched with
  | None -> 1
  | Some st ->
      List.fold_left (fun acc iv -> acc * iv.Iter_var.extent) 1 st.Sched.s_reduce_axes

let gpu_flat ~name (output : Tensor.t) : Tuner.template =
  let shape = Tensor.const_shape output in
  let n = List.fold_left ( * ) 1 shape in
  let k = reduce_depth output in
  {
    Tuner.tpl_name = name;
    tpl_space = gpu_flat_space ~n ~k ~shapes:[ shape; anchor_shape output ];
    tpl_instantiate = (fun cfg -> gpu_flat_instantiate output cfg);
  }

(* ------------------------------------------------------------------ *)
(* CPU flat template                                                    *)
(* ------------------------------------------------------------------ *)

let cpu_flat_space ~n ~k ~shapes =
  let items =
    if k > 1 then aligned_divisors n shapes 4096
    else List.filter (fun i -> i <= 4096) (Cfg_space.divisors n)
  in
  let items = if items = [] then [ 1 ] else items in
  let rc = if k <= 1 then [ 1 ] else Cfg_space.divisors_upto k 256 in
  Cfg_space.space
    [
      Cfg_space.knob "items" items;
      Cfg_space.knob "rc" rc;
      Cfg_space.knob "vec" [ 0; 1 ];
      Cfg_space.knob "unroll" [ 0; 1 ];
    ]

let cpu_flat_instantiate (output : Tensor.t) cfg : Stmt.t =
  let n = List.fold_left ( * ) 1 (Tensor.const_shape output) in
  let items = Cfg_space.get cfg "items" in
  let rc = Cfg_space.get cfg "rc" in
  let vec = Cfg_space.get cfg "vec" = 1 in
  let unroll = Cfg_space.get cfg "unroll" = 1 in
  require_divides items n;
  let sched = Sched.create [ output ] in
  let out_st = Sched.find sched output in
  let anchor =
    match find_anchor sched with
    | Some st when st == out_st -> Some (Sched.cache_write sched out_st Expr.Local)
    | other -> other
  in
  (match anchor with
  | None -> ()
  | Some a ->
      require_aligned_chunk items (Tensor.const_shape output);
      require_aligned_chunk items (Expr.Buffer.const_shape a.Sched.s_out));
  inline_intermediates sched
    ~keep:(match anchor with None -> [ out_st ] | Some a -> [ out_st; a ]);
  let data = List.filter (fun iv -> not (Iter_var.is_reduce iv)) out_st.Sched.s_leaf in
  let fused = Sched.fuse_list out_st data in
  let po, xi = Sched.split out_st fused ~factor:items in
  Sched.parallel out_st po;
  let vec_tail, xi =
    if vec && items >= 4 then begin
      let xo, xv = Sched.split out_st xi ~factor:(min 8 items) in
      Sched.vectorize out_st xv;
      (Some xv, xo)
    end
    else (None, xi)
  in
  ignore vec_tail;
  if unroll then Sched.unroll out_st xi;
  (match anchor with
  | None -> ()
  | Some a ->
      if a.Sched.s_out.Expr.bscope = Expr.Global then Sched.set_scope sched a Expr.Local;
      Sched.compute_at a ~target:out_st ~level:po;
      let reduce_leaves = List.filter Iter_var.is_reduce a.Sched.s_leaf in
      let rfused = Sched.fuse_list a reduce_leaves in
      let k_total = rfused.Iter_var.extent in
      let rc = min rc k_total in
      require_divides rc k_total;
      let ko, ki = Sched.split a rfused ~factor:rc in
      (* SIMD over the innermost spatial axis of the accumulation: the
         reduction stays innermost-but-one so the MACs vectorize. Axes
         that do not split evenly by the lane count are vectorized
         whole (the model prices the remainder). *)
      let data_axes, vec_axis =
        match (vec, List.rev a.Sched.s_root_axes) with
        | true, last :: _ when last.Iter_var.extent mod 4 = 0 && last.Iter_var.extent > 4 ->
            let lo, li = Sched.split a last ~factor:4 in
            Sched.vectorize a li;
            let axes =
              List.concat_map
                (fun iv -> if Iter_var.equal iv last then [ lo ] else [ iv ])
                a.Sched.s_root_axes
            in
            (axes, Some li)
        | true, last :: _ when last.Iter_var.extent >= 4 ->
            Sched.vectorize a last;
            let axes =
              List.filter (fun iv -> not (Iter_var.equal iv last)) a.Sched.s_root_axes
            in
            (axes, Some last)
        | _ -> (a.Sched.s_root_axes, None)
      in
      (match vec_axis with
      | Some li -> Sched.reorder a ((ko :: data_axes) @ [ ki; li ])
      | None -> Sched.reorder a ((ko :: data_axes) @ [ ki ]));
      if unroll then Sched.unroll a ki);
  List.iter
    (fun st ->
      if Sched.is_root_stage st && (not (st == out_st)) && st.Sched.s_ann = [] then
        default_cpu_root st)
    (Sched.stages sched);
  Lower.lower ~target:Lower.Cpu sched

let cpu_flat ~name (output : Tensor.t) : Tuner.template =
  let shape = Tensor.const_shape output in
  let n = List.fold_left ( * ) 1 shape in
  let k = reduce_depth output in
  {
    Tuner.tpl_name = name;
    tpl_space = cpu_flat_space ~n ~k ~shapes:[ shape; anchor_shape output ];
    tpl_instantiate = (fun cfg -> cpu_flat_instantiate output cfg);
  }

(* ------------------------------------------------------------------ *)
(* Structured GPU matmul template (Fig 7's workload)                    *)
(* ------------------------------------------------------------------ *)

(** 2-D tiled matmul with optional cooperative shared-memory fetching —
    the schedule of §4.2's code example. Expects a 2-D reduction
    output C[y,x] = sum_k. *)
let gpu_matmul_space ~m ~n ~k =
  Cfg_space.space
    [
      Cfg_space.knob "tile_y" (Cfg_space.divisors_upto m 128);
      Cfg_space.knob "tile_x" (Cfg_space.divisors_upto n 128);
      Cfg_space.knob "wy" (Cfg_space.divisors_upto m 32);
      Cfg_space.knob "wx" (Cfg_space.divisors_upto n 32);
      Cfg_space.knob "kf" (Cfg_space.divisors_upto k 64);
      Cfg_space.knob "coop" [ 0; 1 ];
      Cfg_space.knob "unroll" [ 0; 1 ];
    ]

let gpu_matmul_instantiate (c : Tensor.t) cfg : Stmt.t =
  let m, n =
    match Tensor.const_shape c with
    | [ m; n ] -> (m, n)
    | _ -> reject "gpu_matmul: output must be 2-D"
  in
  let ty = Cfg_space.get cfg "tile_y" and tx = Cfg_space.get cfg "tile_x" in
  let wy = Cfg_space.get cfg "wy" and wx = Cfg_space.get cfg "wx" in
  let kf = Cfg_space.get cfg "kf" in
  let coop = Cfg_space.get cfg "coop" = 1 in
  let unroll = Cfg_space.get cfg "unroll" = 1 in
  require_divides ty m;
  require_divides tx n;
  require_divides wy ty;
  require_divides wx tx;
  let sched = Sched.create [ c ] in
  let out_st = Sched.find sched c in
  let cl = Sched.cache_write sched out_st Expr.Local in
  let k_total =
    List.fold_left (fun acc iv -> acc * iv.Iter_var.extent) 1 cl.Sched.s_reduce_axes
  in
  require_divides kf k_total;
  inline_intermediates sched ~keep:[ out_st; cl ];
  let y = Sched.axis out_st 0 and x = Sched.axis out_st 1 in
  let by, ty_i = Sched.split out_st y ~factor:ty in
  let bx, tx_i = Sched.split out_st x ~factor:tx in
  let tyv, yi = Sched.split out_st ty_i ~factor:(ty / wy) in
  let txv, xi = Sched.split out_st tx_i ~factor:(tx / wx) in
  Sched.reorder out_st [ by; bx; tyv; txv; yi; xi ];
  Sched.bind out_st by "blockIdx.y";
  Sched.bind out_st bx "blockIdx.x";
  Sched.bind out_st tyv "threadIdx.y";
  Sched.bind out_st txv "threadIdx.x";
  if unroll then begin
    Sched.unroll out_st yi;
    Sched.unroll out_st xi
  end;
  Sched.compute_at cl ~target:out_st ~level:txv;
  let rfused = Sched.fuse_list cl (List.filter Iter_var.is_reduce cl.Sched.s_leaf) in
  let ko, ki = Sched.split cl rfused ~factor:kf in
  Sched.reorder cl ((ko :: cl.Sched.s_root_axes) @ [ ki ]);
  if unroll then Sched.unroll cl ki;
  if coop then
    List.iter
      (fun (b : Expr.buffer) ->
        let cache = Sched.cache_read sched b Expr.Shared [ cl ] in
        Sched.compute_at cache ~target:cl ~level:ko;
        let cfused = Sched.fuse_list cache cache.Sched.s_leaf in
        (* Distribute the copy over the 2-D thread grid. *)
        let rest, ct_x = Sched.split cache cfused ~factor:wx in
        let _co, ct_y = Sched.split cache rest ~factor:wy in
        Sched.bind cache ct_x "threadIdx.x";
        Sched.bind cache ct_y "threadIdx.y")
      (Sched.read_buffers cl);
  Lower.lower ~target:Lower.Gpu sched

let gpu_matmul ~name (c : Tensor.t) : Tuner.template =
  let m, n =
    match Tensor.const_shape c with [ m; n ] -> (m, n) | _ -> invalid_arg "gpu_matmul"
  in
  let k = reduce_depth c in
  {
    Tuner.tpl_name = name;
    tpl_space = gpu_matmul_space ~m ~n ~k;
    tpl_instantiate = (fun cfg -> gpu_matmul_instantiate c cfg);
  }
