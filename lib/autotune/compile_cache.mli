(** Cross-trial compile cache: per-configuration lowering, feature
    extraction and validation verdicts — the cost-model hot path
    (§5.2) generalized from the old feature-only memo. Prediction must
    stay thousands of times cheaper than measurement, and a measured
    batch must not re-lower programs the propose phase already built,
    so the SA explorer's revisits and the tuner's prepare phase both
    hit here.

    Keys are the {e canonical} configuration value
    ({!Cfg_space.canonical}: knobs sorted by name) compared
    structurally, so two distinct configurations can never share an
    entry — unlike an int-hash key, where a collision silently shares
    features and programs between different schedules.

    [Invalid] entries record configurations whose instantiation failed,
    so invalid points are not retried either. [Valid] entries always
    carry the feature vector and, when [keep_stmts] is set and the
    budget allows, the lowered program itself.

    Memory: programs dominate the footprint, so the [stmt_cap] bound
    applies to retained stmts only — oldest-first (FIFO) eviction drops
    a program but keeps its features (metric [cache.evict]). Eviction
    never changes results, only what must be re-lowered.

    Determinism: compilation is pure, so entries for equal keys carry
    equal values; [add] is first-wins (plus a stmt-fill upgrade), and
    {!merge} walks the source in its insertion order, so merged
    contents — including stmt-eviction age — are independent of the
    domain count. Results are bit-identical cache on or off.

    Domain-safety follows the tuner's convention: one coordinator owns
    all writes between parallel sections; worker domains only read the
    shared cache (plain [Hashtbl] reads race-free without writers), and
    each SA chain fills its own {!create_local} cache that the
    coordinator later {!merge}s in chain-index order. Lookup metrics
    ([cache.hit]/[cache.miss]) and [cache.lookup] trace instants flow
    through [Tvm_obs], which buffers per-domain counters exactly. *)

type key = Cfg_space.config
(** Canonical configuration. *)

type entry =
  | Invalid  (** instantiation raised; do not retry *)
  | Valid of { feats : float array; stmt : Tvm_tir.Stmt.t option }

type t

(** [stmt_cap] bounds retained programs (default 1024); [keep_stmts]
    false stores features only (the pre-cache behavior, used as the
    cache-off baseline). *)
val create :
  ?size:int -> ?stmt_cap:int -> ?keep_stmts:bool -> ?name:string -> unit -> t

(** An empty cache inheriting [t]'s policy, for per-chain overflow. *)
val create_local : t -> t

val keeps_stmts : t -> bool

(** Lookup by canonical key. Records [cache.hit]/[cache.miss] metrics
    and a [cache.lookup] trace instant unless [record:false] (used for
    the shared tier of two-tier lookups, so each logical query counts
    once). *)
val find : ?record:bool -> t -> Cfg_space.config -> entry option

(** Count a hit against [t] for a lookup that was made with
    [record:false] — the two-tier pattern probes the shared tier
    silently and then must either count the hit here or fall through
    to {!find_or_compile} on the local tier (which records its own
    verdict), so each logical query counts exactly once. Without this
    the metrics invert as the shared tier warms up: the steady state
    where almost every query is answered by the shared memo shows up
    as a ~0% hit rate, because only the local-tier fallbacks (cold
    misses) were ever counted. *)
val record_hit : t -> unit

(** Insert, first-wins; an entry holding a program upgrades an existing
    stmt-less entry in place (features untouched). *)
val add : t -> Cfg_space.config -> entry -> unit

(** Cached entry, or [compile]'s result after storing it (post-strip:
    callers never see a stmt the cache would not reproduce). Records
    hit/miss. *)
val find_or_compile :
  t -> Cfg_space.config -> compile:(Cfg_space.config -> entry) -> entry

val feats : entry -> float array option
val stmt : entry -> Tvm_tir.Stmt.t option

(** Validation-verdict side table (first-wins, never evicted — one
    verdict per built kernel). *)
val find_validation :
  t -> Cfg_space.config -> Tvm_tir.Validate.violation list option

val add_validation :
  t -> Cfg_space.config -> Tvm_tir.Validate.violation list -> unit

(** [merge ~into src] adds [src]'s entries absent from [into], in
    [src]'s insertion order. *)
val merge : into:t -> t -> unit

(** Every entry in insertion order — the persistent store's walk
    (programs are not serialized; features and verdicts are). *)
val iter_entries : t -> (key -> entry -> unit) -> unit

val size : t -> int
val stmts_held : t -> int

(** Process-global registry of caches by scope string (the compiler
    keys it by workload signature + fusion mode + target, making
    repeated signatures and the two half-budget tuning runs share one
    cache). Mutex-protected; [keep_stmts] applies on first creation. *)
val for_scope : ?keep_stmts:bool -> string -> t

(** Drop every registered scope (test hygiene; [Compiler.clear_cache]
    calls this). *)
val clear_scopes : unit -> unit
