(* See store.mli. *)

module Obs_metrics = Tvm_obs.Metrics

type block = { b_kind : string; b_records : string list }

(* ------------------------------------------------------------------ *)
(* Checksum                                                            *)
(* ------------------------------------------------------------------ *)

let fnv1a64 (s : string) : int64 =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let checksum s = Printf.sprintf "%016Lx" (fnv1a64 s)

(* ------------------------------------------------------------------ *)
(* Raw blocks                                                          *)
(* ------------------------------------------------------------------ *)

let header_prefix = "#tvmstore "

let reject path reason =
  Printf.eprintf "[tvm] store %s: skipping block: %s\n%!" path reason;
  Obs_metrics.incr "cache.load_rejected"

let append_block path ~kind records =
  if String.exists (fun c -> c = ' ' || c = '\n') kind then
    invalid_arg ("Store.append_block: kind with separator: " ^ kind);
  List.iter
    (fun r ->
      if String.contains r '\n' then
        invalid_arg "Store.append_block: record with newline")
    records;
  let body = String.concat "\n" records in
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  Printf.fprintf oc "%sv1 kind=%s records=%d checksum=%s\n" header_prefix kind
    (List.length records) (checksum body);
  List.iter (fun r -> output_string oc (r ^ "\n")) records;
  flush oc

let parse_header line =
  try
    Scanf.sscanf line "#tvmstore v%d kind=%s records=%d checksum=%s%!"
      (fun v kind n sum -> Some (v, kind, n, sum))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let read_lines path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let load_blocks path =
  if not (Sys.file_exists path) then []
  else begin
    let lines = Array.of_list (read_lines path) in
    let n = Array.length lines in
    let blocks = ref [] in
    let i = ref 0 in
    while !i < n do
      let line = lines.(!i) in
      if String.starts_with ~prefix:header_prefix line then begin
        match parse_header line with
        | None ->
            reject path "malformed header";
            incr i
        | Some (v, _, _, _) when v <> 1 ->
            reject path (Printf.sprintf "unknown version v%d" v);
            incr i
        | Some (_, kind, count, sum) ->
            if count < 0 || !i + count > n - 1 then begin
              reject path "truncated block";
              i := n
            end
            else begin
              let records =
                Array.to_list (Array.sub lines (!i + 1) count)
              in
              if checksum (String.concat "\n" records) <> sum then begin
                reject path "checksum mismatch";
                (* Resync at the next header line: the block body is not
                   trustworthy, so don't skip by its claimed length. *)
                incr i
              end
              else begin
                blocks := { b_kind = kind; b_records = records } :: !blocks;
                i := !i + 1 + count
              end
            end
      end
      else incr i
    done;
    List.rev !blocks
  end

(* ------------------------------------------------------------------ *)
(* Field encoding                                                      *)
(* ------------------------------------------------------------------ *)

(* Fields are tab-separated; free-form strings (Db keys, scope tags,
   pool-error messages) travel [String.escaped] so they can never
   collide with the separators, and floats travel as "%h" hex literals
   so every round trip is bit-exact. *)

let float_out = function
  | None -> "-"
  | Some t -> Printf.sprintf "%h" t

let float_in = function
  | "-" -> None
  | s -> (
      match float_of_string_opt s with
      | Some t -> Some t
      | None -> failwith ("bad float " ^ s))

let fields line = String.split_on_char '\t' line

(* ------------------------------------------------------------------ *)
(* Trial logs                                                          *)
(* ------------------------------------------------------------------ *)

let db_kind = "db"

let db_record_out (r : Tuner.Db.record) =
  let { Measure_result.time_s; status; attempts } = r.Tuner.Db.db_result in
  let msg = match status with Measure_result.Pool_error m -> m | _ -> "" in
  Printf.sprintf "%s\t%s\t%s\t%s\t%d\t%s"
    (String.escaped r.Tuner.Db.db_key)
    (Cfg_space.to_string r.Tuner.Db.db_config)
    (Measure_result.status_name status)
    (float_out time_s) attempts (String.escaped msg)

let db_record_in line =
  match fields line with
  | [ key; cfg; status; time; attempts; msg ] ->
      let status =
        Measure_result.status_of_name ~msg:(Scanf.unescaped msg) status
      in
      ( Scanf.unescaped key,
        Cfg_space.of_string cfg,
        {
          Measure_result.time_s = float_in time;
          status;
          attempts = int_of_string attempts;
        } )
  | _ -> failwith ("bad db record: " ^ line)

let flush_db path ~from db =
  let records = Tuner.Db.records db in
  let total = List.length records in
  if total > from then begin
    let fresh = List.filteri (fun i _ -> i >= from) records in
    append_block path ~kind:db_kind (List.map db_record_out fresh)
  end;
  total

let load_db path ~into =
  let loaded = ref 0 in
  List.iter
    (fun b ->
      if b.b_kind = db_kind then
        match List.map db_record_in b.b_records with
        | parsed ->
            List.iter
              (fun (key, cfg, result) ->
                Tuner.Db.add into key cfg result;
                incr loaded)
              parsed
        | exception e ->
            reject path ("bad db record (" ^ Printexc.to_string e ^ ")"))
    (load_blocks path);
  !loaded

(* ------------------------------------------------------------------ *)
(* Scoped trial logs                                                   *)
(* ------------------------------------------------------------------ *)

let db_scoped_kind = "db.scoped"

let flush_db_scope path ~scope ~from db =
  let records = Tuner.Db.records db in
  let total = List.length records in
  if total > from then begin
    let fresh = List.filteri (fun i _ -> i >= from) records in
    append_block path ~kind:db_scoped_kind
      (String.escaped scope :: List.map db_record_out fresh)
  end;
  total

let load_db_scope path ~scope ~into =
  let loaded = ref 0 in
  List.iter
    (fun b ->
      if b.b_kind = db_scoped_kind then
        match b.b_records with
        | tag :: records when Scanf.unescaped tag = scope -> (
            match List.map db_record_in records with
            | parsed ->
                List.iter
                  (fun (key, cfg, result) ->
                    Tuner.Db.add into key cfg result;
                    incr loaded)
                  parsed
            | exception e ->
                reject path ("bad db record (" ^ Printexc.to_string e ^ ")"))
        | _ -> ())
    (load_blocks path);
  !loaded

(* ------------------------------------------------------------------ *)
(* Tuned-configuration cache                                           *)
(* ------------------------------------------------------------------ *)

let tuned_kind = "tuned"

let tuned_out (sig_, cfg, t) =
  Printf.sprintf "%s\t%s\t%s" (String.escaped sig_) (Cfg_space.to_string cfg)
    (Printf.sprintf "%h" t)

let tuned_in line =
  match fields line with
  | [ sig_; cfg; t ] -> (
      match float_of_string_opt t with
      | Some t -> (Scanf.unescaped sig_, Cfg_space.of_string cfg, t)
      | None -> failwith ("bad tuned record: " ^ line))
  | _ -> failwith ("bad tuned record: " ^ line)

let append_tuned path entries =
  if entries <> [] then
    append_block path ~kind:tuned_kind (List.map tuned_out entries)

let load_tuned path =
  List.concat_map
    (fun b ->
      if b.b_kind <> tuned_kind then []
      else
        match List.map tuned_in b.b_records with
        | parsed -> parsed
        | exception e ->
            reject path ("bad tuned record (" ^ Printexc.to_string e ^ ")");
            [])
    (load_blocks path)

let tuned_scoped_kind = "tuned.scoped"

let append_tuned_scope path ~scope entries =
  if entries <> [] then
    append_block path ~kind:tuned_scoped_kind
      (String.escaped scope :: List.map tuned_out entries)

let load_tuned_scope path ~scope =
  List.concat_map
    (fun b ->
      if b.b_kind <> tuned_scoped_kind then []
      else
        match b.b_records with
        | tag :: records when Scanf.unescaped tag = scope -> (
            match List.map tuned_in records with
            | parsed -> parsed
            | exception e ->
                reject path
                  ("bad tuned record (" ^ Printexc.to_string e ^ ")");
                [])
        | _ -> [])
    (load_blocks path)

(* ------------------------------------------------------------------ *)
(* Compile caches                                                      *)
(* ------------------------------------------------------------------ *)

let cache_kind = "cache"

(* First record of a cache block is the escaped scope tag; the rest are
   entries. Programs are never serialized: a restored entry re-lowers
   on demand, features (the expensive part of prediction) persist. *)

let cache_entry_out key (entry : Compile_cache.entry) =
  match entry with
  | Compile_cache.Invalid ->
      Printf.sprintf "%s\tinvalid" (Cfg_space.to_string key)
  | Compile_cache.Valid { feats; _ } ->
      Printf.sprintf "%s\tvalid\t%s" (Cfg_space.to_string key)
        (String.concat " "
           (List.map (Printf.sprintf "%h") (Array.to_list feats)))

let cache_entry_in line =
  match fields line with
  | [ cfg; "invalid" ] -> (Cfg_space.of_string cfg, Compile_cache.Invalid)
  | [ cfg; "valid"; feats ] ->
      let feats =
        if feats = "" then [||]
        else
          Array.of_list
            (List.map
               (fun s ->
                 match float_of_string_opt s with
                 | Some f -> f
                 | None -> failwith ("bad feature " ^ s))
               (String.split_on_char ' ' feats))
      in
      (Cfg_space.of_string cfg, Compile_cache.Valid { feats; stmt = None })
  | _ -> failwith ("bad cache record: " ^ line)

let save_cache path ~scope ?(from = 0) cache =
  let entries = ref [] and total = ref 0 in
  Compile_cache.iter_entries cache (fun k e ->
      if !total >= from then entries := cache_entry_out k e :: !entries;
      incr total);
  if !entries <> [] then
    append_block path ~kind:cache_kind
      (String.escaped scope :: List.rev !entries);
  !total

let load_cache path ~scope ~into =
  let added = ref 0 in
  List.iter
    (fun b ->
      if b.b_kind = cache_kind then
        match b.b_records with
        | tag :: records when Scanf.unescaped tag = scope -> (
            match List.map cache_entry_in records with
            | parsed ->
                List.iter
                  (fun (k, e) ->
                    Compile_cache.add into k e;
                    incr added)
                  parsed
            | exception e ->
                reject path ("bad cache record (" ^ Printexc.to_string e ^ ")"))
        | _ -> ())
    (load_blocks path);
  !added

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)
(* ------------------------------------------------------------------ *)

type keep = Keep_all | First_per_key | Last_per_key

type rule = { rl_kind : string; rl_scoped : bool; rl_keep : keep }

let default_rules =
  [
    { rl_kind = db_kind; rl_scoped = false; rl_keep = Keep_all };
    { rl_kind = db_scoped_kind; rl_scoped = true; rl_keep = Keep_all };
    { rl_kind = tuned_kind; rl_scoped = false; rl_keep = First_per_key };
    { rl_kind = tuned_scoped_kind; rl_scoped = true; rl_keep = First_per_key };
    { rl_kind = cache_kind; rl_scoped = true; rl_keep = First_per_key };
  ]

exception Injected_crash

(* A record's dedup key is its first tab-separated field. *)
let record_key line =
  match String.index_opt line '\t' with
  | Some i -> String.sub line 0 i
  | None -> line

let dedup_records keep records =
  match keep with
  | Keep_all -> records
  | First_per_key ->
      let seen = Hashtbl.create 64 in
      List.filter
        (fun r ->
          let k = record_key r in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        records
  | Last_per_key ->
      let seen = Hashtbl.create 64 in
      List.rev
        (List.filter
           (fun r ->
             let k = record_key r in
             if Hashtbl.mem seen k then false
             else begin
               Hashtbl.add seen k ();
               true
             end)
           (List.rev records))

let block_to_string ~kind records =
  let body = String.concat "\n" records in
  Printf.sprintf "%sv1 kind=%s records=%d checksum=%s\n%s" header_prefix kind
    (List.length records) (checksum body)
    (if records = [] then "" else body ^ "\n")

let file_size path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  in_channel_length ic

let compact ?(rules = default_rules) ?(threshold_bytes = 0)
    ?crash_after_bytes ?(crash_before_rename = false) path =
  if not (Sys.file_exists path) then None
  else begin
    let before = file_size path in
    if before < threshold_bytes then None
    else begin
      let rule_for kind =
        match List.find_opt (fun r -> r.rl_kind = kind) rules with
        | Some r -> r
        | None -> { rl_kind = kind; rl_scoped = false; rl_keep = Keep_all }
      in
      (* Group live records by (kind, scope tag), preserving both the
         groups' first-appearance order and record order within a
         group — every loader is order-sensitive only within its own
         (kind, scope). Unruled kinds keep every record. *)
      let groups : (string * string option, string list ref) Hashtbl.t =
        Hashtbl.create 16
      in
      let order = ref [] in
      let add_group key records =
        match Hashtbl.find_opt groups key with
        | Some acc -> acc := List.rev_append records !acc
        | None ->
            Hashtbl.add groups key (ref (List.rev records));
            order := key :: !order
      in
      List.iter
        (fun b ->
          let rule = rule_for b.b_kind in
          if rule.rl_scoped then
            match b.b_records with
            | tag :: records -> add_group (b.b_kind, Some tag) records
            | [] -> ()
          else add_group (b.b_kind, None) b.b_records)
        (load_blocks path);
      let buf = Buffer.create (before / 2) in
      List.iter
        (fun (kind, tag) ->
          let records =
            List.rev !(Hashtbl.find groups (kind, tag))
            |> dedup_records (rule_for kind).rl_keep
          in
          let records =
            match tag with Some t -> t :: records | None -> records
          in
          if records <> [] then
            Buffer.add_string buf (block_to_string ~kind records))
        (List.rev !order);
      let out = Buffer.contents buf in
      let tmp = path ^ ".compact.tmp" in
      let write n =
        let oc = open_out_bin tmp in
        Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
        output_string oc (String.sub out 0 n);
        flush oc
      in
      (match crash_after_bytes with
      | Some n when n < String.length out ->
          write n;
          raise Injected_crash
      | _ -> ());
      write (String.length out);
      if crash_before_rename then raise Injected_crash;
      Sys.rename tmp path;
      Obs_metrics.incr "store.compactions";
      Obs_metrics.incr "store.compacted_bytes"
        ~by:(float_of_int (max 0 (before - String.length out)));
      Some (before, String.length out)
    end
  end
