(** Gradient-boosted regression trees — the default cost model (§5.2).

    A from-scratch stand-in for XGBoost [8]: depth-bounded regression
    trees grown greedily on variance reduction with quantile candidate
    thresholds, combined by shrinkage. Supports the paper's two
    objectives: plain regression on the score, and a rank objective that
    fits within-dataset rank positions — the explorer "selects the top
    candidates based only on the relative order of the prediction". *)

type objective = Regression | Rank

type tree =
  | Leaf of float
  | Node of { feature : int; threshold : float; left : tree; right : tree }

type t = {
  trees : tree list;  (** applied in order, already scaled by shrinkage *)
  base : float;
  objective : objective;
}

type params = {
  n_trees : int;
  max_depth : int;
  learning_rate : float;
  min_samples : int;  (** minimum samples to attempt a split *)
  obj : objective;
}

let default_params =
  { n_trees = 40; max_depth = 5; learning_rate = 0.3; min_samples = 4; obj = Rank }

let rec predict_tree tree (x : float array) =
  match tree with
  | Leaf v -> v
  | Node n ->
      if x.(n.feature) <= n.threshold then predict_tree n.left x
      else predict_tree n.right x

let predict model x =
  List.fold_left (fun acc tree -> acc +. predict_tree tree x) model.base model.trees

(* ------------------------------------------------------------------ *)
(* Tree growing                                                        *)
(* ------------------------------------------------------------------ *)

let mean arr idxs =
  if idxs = [] then 0.
  else List.fold_left (fun acc i -> acc +. arr.(i)) 0. idxs /. float_of_int (List.length idxs)

let sse arr idxs m =
  List.fold_left (fun acc i -> acc +. ((arr.(i) -. m) ** 2.)) 0. idxs

(** Candidate thresholds: up to 16 midpoints between quantiles. *)
let candidates (xs : float array array) feature idxs =
  let values =
    List.map (fun i -> xs.(i).(feature)) idxs |> List.sort_uniq compare
  in
  match values with
  | [] | [ _ ] -> []
  | values ->
      let arr = Array.of_list values in
      let n = Array.length arr in
      let num = min 16 (n - 1) in
      List.init num (fun q ->
          let pos = (q + 1) * n / (num + 1) in
          let pos = max 1 (min (n - 1) pos) in
          (arr.(pos - 1) +. arr.(pos)) /. 2.)
      |> List.sort_uniq compare

(* Best split within one feature column: scan thresholds ascending,
   keep the first strictly-best gain — the same tie-break the old
   sequential double loop applied within a column. *)
let column_best xs residuals idxs total_sse f =
  let best = ref None in
  List.iter
    (fun threshold ->
      let left, right = List.partition (fun i -> xs.(i).(f) <= threshold) idxs in
      if left <> [] && right <> [] then begin
        let ml = mean residuals left and mr = mean residuals right in
        let gain = total_sse -. sse residuals left ml -. sse residuals right mr in
        match !best with
        | Some (g, _, _, _, _) when g >= gain -> ()
        | _ -> best := Some (gain, f, threshold, left, right)
      end)
    (candidates xs f idxs);
  !best

(* Combine per-column winners in ascending feature order with the same
   strictly-greater rule, which reproduces the sequential loop's result
   exactly — so split search parallelizes over feature columns (§5.2's
   training hot loop) without changing a single tree. *)
let pick_best acc cand =
  match (acc, cand) with
  | _, None -> acc
  | None, c -> c
  | Some (g0, _, _, _, _), Some (g, _, _, _, _) -> if g0 >= g then acc else cand

let best_split ?(pool = Tvm_par.Pool.sequential) xs residuals idxs =
  let n_features = Array.length xs.(List.hd idxs) in
  let total_mean = mean residuals idxs in
  let total_sse = sse residuals idxs total_mean in
  (* Fan out only when the node is big enough for the split search to
     dwarf the fork-join overhead; the guard depends only on data
     sizes, so results are identical either way. *)
  if Tvm_par.Pool.domains pool > 1 && n_features > 1 && List.length idxs >= 64
  then
    Tvm_par.Pool.parallel_reduce pool
      ~map:(column_best xs residuals idxs total_sse)
      ~combine:pick_best ~init:None
      (Array.init n_features Fun.id)
  else begin
    let best = ref None in
    for f = 0 to n_features - 1 do
      best := pick_best !best (column_best xs residuals idxs total_sse f)
    done;
    !best
  end

let rec grow_tree ?pool params xs residuals idxs depth =
  let m = mean residuals idxs in
  if depth >= params.max_depth || List.length idxs < params.min_samples then Leaf m
  else
    match best_split ?pool xs residuals idxs with
    | Some (gain, feature, threshold, left, right) when gain > 1e-12 ->
        Node
          {
            feature;
            threshold;
            left = grow_tree ?pool params xs residuals left (depth + 1);
            right = grow_tree ?pool params xs residuals right (depth + 1);
          }
    | Some _ | None -> Leaf m

let rec scale_tree factor = function
  | Leaf v -> Leaf (v *. factor)
  | Node n ->
      Node { n with left = scale_tree factor n.left; right = scale_tree factor n.right }

(** Transform raw targets according to the objective. Rank maps each
    target to its normalized rank in [0,1] (1 = best/lowest cost is up
    to the caller's sign convention; we preserve ordering). *)
let transform_targets obj (ys : float array) =
  match obj with
  | Regression -> Array.copy ys
  | Rank ->
      let n = Array.length ys in
      let order = Array.init n Fun.id in
      Array.sort (fun a b -> compare ys.(a) ys.(b)) order;
      let out = Array.make n 0. in
      Array.iteri
        (fun rank i -> out.(i) <- float_of_int rank /. float_of_int (max 1 (n - 1)))
        order;
      out

(** Fit a boosted ensemble on [(xs, ys)]. Callers typically pass
    [ys = score] where higher is better (e.g. -log time). *)
let fit ?(params = default_params) ?pool (xs : float array array)
    (ys : float array) : t =
  let n = Array.length xs in
  if n = 0 then { trees = []; base = 0.; objective = params.obj }
  else begin
    let targets = transform_targets params.obj ys in
    let base = Array.fold_left ( +. ) 0. targets /. float_of_int n in
    let preds = Array.make n base in
    let idxs = List.init n Fun.id in
    let trees = ref [] in
    (* Boosting is sequential by construction (each tree fits the
       previous ensemble's residuals); the parallelism lives inside
       [best_split]'s per-column search. *)
    for _ = 1 to params.n_trees do
      let residuals = Array.init n (fun i -> targets.(i) -. preds.(i)) in
      let tree = grow_tree ?pool params xs residuals idxs 0 in
      let tree = scale_tree params.learning_rate tree in
      Array.iteri (fun i x -> preds.(i) <- preds.(i) +. predict_tree tree x) xs;
      trees := tree :: !trees
    done;
    { trees = List.rev !trees; base; objective = params.obj }
  end

(** Kendall-style pairwise ordering accuracy on held-out data; the
    quantity that matters for explorer quality. Rows fan out over
    [pool]; per-row pair counts are exact integers, so the summed
    accuracy is independent of domain count. *)
let rank_accuracy ?(pool = Tvm_par.Pool.sequential) model xs ys =
  let n = Array.length xs in
  let row i =
    let correct = ref 0 and total = ref 0 in
    let pi = predict model xs.(i) in
    for j = i + 1 to n - 1 do
      if ys.(i) <> ys.(j) then begin
        incr total;
        let pj = predict model xs.(j) in
        if (ys.(i) < ys.(j)) = (pi < pj) then incr correct
      end
    done;
    (!correct, !total)
  in
  let correct, total =
    if Tvm_par.Pool.domains pool > 1 && n >= 64 then
      Tvm_par.Pool.parallel_reduce pool ~map:row
        ~combine:(fun (c, t) (c', t') -> (c + c', t + t'))
        ~init:(0, 0) (Array.init n Fun.id)
    else begin
      let c = ref 0 and t = ref 0 in
      for i = 0 to n - 1 do
        let c', t' = row i in
        c := !c + c';
        t := !t + t'
      done;
      (!c, !t)
    end
  in
  if total = 0 then 1. else float_of_int correct /. float_of_int total
