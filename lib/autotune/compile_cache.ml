(* See compile_cache.mli. *)

module Obs_trace = Tvm_obs.Trace
module Obs_metrics = Tvm_obs.Metrics

type key = Cfg_space.config

type entry =
  | Invalid
  | Valid of { feats : float array; stmt : Tvm_tir.Stmt.t option }

type t = {
  table : (key, entry) Hashtbl.t;
  order : key Queue.t;  (** entry insertion order — deterministic merge *)
  stmt_order : key Queue.t;  (** stmt-holding keys, oldest first *)
  mutable stmts_held : int;
  stmt_cap : int;
  keep_stmts : bool;
  validated : (key, Tvm_tir.Validate.violation list) Hashtbl.t;
  name : string;
}

let create ?(size = 256) ?(stmt_cap = 1024) ?(keep_stmts = true)
    ?(name = "tuner") () =
  {
    table = Hashtbl.create size;
    order = Queue.create ();
    stmt_order = Queue.create ();
    stmts_held = 0;
    stmt_cap = max 1 stmt_cap;
    keep_stmts;
    validated = Hashtbl.create 16;
    name;
  }

let create_local t =
  create ~size:64 ~stmt_cap:t.stmt_cap ~keep_stmts:t.keep_stmts
    ~name:(t.name ^ ".local") ()

let keeps_stmts t = t.keep_stmts
let size t = Hashtbl.length t.table
let stmts_held t = t.stmts_held
let feats = function Invalid -> None | Valid { feats; _ } -> Some feats
let stmt = function Invalid -> None | Valid { stmt; _ } -> stmt

let record_lookup t hit =
  Obs_metrics.incr (if hit then "cache.hit" else "cache.miss");
  if Obs_trace.enabled () then
    Obs_trace.instant "cache.lookup"
      ~attrs:[ ("cache", t.name); ("hit", if hit then "1" else "0") ]

let find ?(record = true) t cfg =
  let found = Hashtbl.find_opt t.table (Cfg_space.canonical cfg) in
  if record then record_lookup t (Option.is_some found);
  found

let record_hit t = record_lookup t true

(* Drop the stmt of the oldest stmt-holding entry until the budget
   holds: programs dominate the cache's footprint, so the FIFO bound
   applies to retained stmts only — features stay (re-deriving them is
   the expensive part of prediction, and they are small). Evicting
   never changes results, only what must be re-lowered. *)
let rec enforce_stmt_cap t =
  if t.stmts_held > t.stmt_cap then begin
    let k = Queue.pop t.stmt_order in
    (match Hashtbl.find_opt t.table k with
    | Some (Valid { feats; stmt = Some _ }) ->
        Hashtbl.replace t.table k (Valid { feats; stmt = None })
    | _ -> assert false (* invariant: queued keys hold a stmt *));
    t.stmts_held <- t.stmts_held - 1;
    Obs_metrics.incr "cache.evict";
    enforce_stmt_cap t
  end

let note_stmt t k =
  Queue.push k t.stmt_order;
  t.stmts_held <- t.stmts_held + 1;
  enforce_stmt_cap t

let strip t entry =
  match entry with
  | Valid { feats; stmt = Some _ } when not t.keep_stmts ->
      Valid { feats; stmt = None }
  | e -> e

let add t cfg entry =
  let k = Cfg_space.canonical cfg in
  let entry = strip t entry in
  match Hashtbl.find_opt t.table k with
  | None ->
      Hashtbl.add t.table k entry;
      Queue.push k t.order;
      (match entry with Valid { stmt = Some _; _ } -> note_stmt t k | _ -> ())
  | Some Invalid | Some (Valid { stmt = Some _; _ }) ->
      (* First entry wins: compilation is deterministic, so a duplicate
         carries equal values and dropping it keeps merges
         order-insensitive in everything but eviction age. *)
      ()
  | Some (Valid { feats; stmt = None }) -> (
      (* Stmt-fill upgrade: the one non-first-wins case — an entry that
         lost (or never had) its program gains one without touching the
         features already stored. *)
      match entry with
      | Valid { stmt = Some s; _ } ->
          Hashtbl.replace t.table k (Valid { feats; stmt = Some s });
          note_stmt t k
      | _ -> ())

let find_or_compile t cfg ~compile =
  let k = Cfg_space.canonical cfg in
  match Hashtbl.find_opt t.table k with
  | Some e ->
      record_lookup t true;
      e
  | None ->
      record_lookup t false;
      add t cfg (compile cfg);
      (* Return what was stored (post-strip), so callers never see a
         stmt the cache would not reproduce. *)
      Hashtbl.find t.table k

(** Entries in insertion order — the persistence walk. *)
let iter_entries t f =
  Queue.iter (fun k -> f k (Hashtbl.find t.table k)) t.order

let find_validation t cfg =
  Hashtbl.find_opt t.validated (Cfg_space.canonical cfg)

let add_validation t cfg violations =
  let k = Cfg_space.canonical cfg in
  if not (Hashtbl.mem t.validated k) then Hashtbl.add t.validated k violations

let merge ~into src =
  (* Source insertion order: the only order-sensitive state downstream
     is stmt-eviction age, and chain caches are themselves filled in a
     seed-deterministic order. *)
  Queue.iter (fun k -> add into k (Hashtbl.find src.table k)) src.order;
  Hashtbl.iter
    (fun k v ->
      if not (Hashtbl.mem into.validated k) then Hashtbl.add into.validated k v)
    src.validated

(* ------------------------------------------------------------------ *)
(* Scope registry                                                       *)
(* ------------------------------------------------------------------ *)

let scopes : (string, t) Hashtbl.t = Hashtbl.create 16
let scopes_lock = Mutex.create ()

let for_scope ?keep_stmts:(keep = true) scope =
  Mutex.lock scopes_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock scopes_lock) @@ fun () ->
  match Hashtbl.find_opt scopes scope with
  | Some c -> c
  | None ->
      let c = create ~keep_stmts:keep ~name:scope () in
      Hashtbl.add scopes scope c;
      c

let clear_scopes () =
  Mutex.lock scopes_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock scopes_lock) @@ fun () ->
  Hashtbl.reset scopes
