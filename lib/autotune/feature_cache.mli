(** Memo table for per-configuration lowering + feature extraction —
    the cost-model hot path (§5.2): prediction must stay thousands of
    times cheaper than measurement, so the SA explorer's revisits must
    never re-lower.

    Keys are the {e canonical} configuration value (knobs sorted by
    name) compared structurally, so two distinct configurations can
    never share an entry — unlike the old [Cfg_space.hash]-keyed memo,
    where an int-hash collision silently shared features and
    predictions between different schedules.

    [None] entries record configurations whose instantiation failed,
    so invalid points are not retried either.

    Not domain-safe by design: the tuner gives each SA chain its own
    cache and merges them on the coordinator afterwards ([merge] in
    chain-index order — first entry wins, and since extraction is
    deterministic, duplicated keys carry equal values, making the
    merged table independent of domain count). *)

type t

val create : ?size:int -> unit -> t

(** [find t cfg] — [None]: never seen; [Some None]: known-invalid;
    [Some (Some f)]: cached feature vector. *)
val find : t -> Cfg_space.config -> float array option option

(** Insert without overwriting an existing entry. *)
val add : t -> Cfg_space.config -> float array option -> unit

val find_or_extract :
  t -> Cfg_space.config -> extract:(Cfg_space.config -> float array option) ->
  float array option

val size : t -> int

(** [merge ~into src] adds [src]'s entries absent from [into]. *)
val merge : into:t -> t -> unit
