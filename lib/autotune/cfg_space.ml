(** Schedule-space specification (§5.1).

    A template declares knobs; a configuration assigns each knob one of
    its choices. The generic master templates extract knobs (tile
    sizes, thread counts, unroll/vectorize toggles) automatically from
    the computation description, so spaces routinely contain 10³–10⁶
    points per operator (billions across a network, §5.1). *)

type knob = { k_name : string; k_choices : int array }

type t = { knobs : knob list }

type config = (string * int) list  (** knob name → chosen value *)

let knob name choices =
  if choices = [] then invalid_arg ("knob " ^ name ^ ": empty choices");
  { k_name = name; k_choices = Array.of_list choices }

(** All divisors of [n], ascending — the tiling-factor choice sets. *)
let divisors n =
  let rec go d acc = if d > n then List.rev acc else go (d + 1) (if n mod d = 0 then d :: acc else acc) in
  go 1 []

(** Divisors of [n] no larger than [cap]. *)
let divisors_upto n cap = List.filter (fun d -> d <= cap) (divisors n)

let space knobs = { knobs }

let size t =
  List.fold_left (fun acc k -> acc * Array.length k.k_choices) 1 t.knobs

let get (config : config) name =
  match List.assoc_opt name config with
  | Some v -> v
  | None -> invalid_arg ("config: missing knob " ^ name)

let get_opt (config : config) name = List.assoc_opt name config

(** Dense index <-> config bijection (mixed-radix). *)
let config_at t index =
  if index < 0 || index >= size t then invalid_arg "config_at: out of range";
  let rec go knobs index acc =
    match knobs with
    | [] -> List.rev acc
    | k :: rest ->
        let radix = Array.length k.k_choices in
        go rest (index / radix) ((k.k_name, k.k_choices.(index mod radix)) :: acc)
  in
  go t.knobs index []

let index_of t (config : config) =
  let rec go knobs mult acc =
    match knobs with
    | [] -> acc
    | k :: rest ->
        let v = get config k.k_name in
        let pos = ref (-1) in
        Array.iteri (fun i c -> if c = v then pos := i) k.k_choices;
        if !pos < 0 then invalid_arg ("index_of: bad value for " ^ k.k_name);
        go rest (mult * Array.length k.k_choices) (acc + (mult * !pos))
  in
  go t.knobs 1 0

let random_config t rng =
  List.map
    (fun k -> (k.k_name, k.k_choices.(Random.State.int rng (Array.length k.k_choices))))
    t.knobs

(** One-knob mutation: the random-walk step of the SA explorer. *)
let mutate t rng (config : config) =
  match t.knobs with
  | [] -> config
  | knobs ->
      let k = List.nth knobs (Random.State.int rng (List.length knobs)) in
      let v = k.k_choices.(Random.State.int rng (Array.length k.k_choices)) in
      List.map (fun (name, old) -> if name = k.k_name then (name, v) else (name, old)) config

(** Uniform crossover, for the genetic-algorithm baseline. *)
let crossover rng (a : config) (b : config) =
  List.map2
    (fun (n1, v1) (_n2, v2) -> if Random.State.bool rng then (n1, v1) else (n1, v2))
    a b

let to_string (config : config) =
  String.concat ","
    (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) config)

(** Inverse of {!to_string} — the persistent store's wire format for
    configurations. Raises [Invalid_argument] on malformed input. *)
let of_string (s : string) : config =
  if s = "" then []
  else
    List.map
      (fun kv ->
        match String.index_opt kv '=' with
        | Some i -> (
            let name = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            match int_of_string_opt v with
            | Some n when name <> "" -> (name, n)
            | _ -> invalid_arg ("Cfg_space.of_string: bad binding " ^ kv))
        | None -> invalid_arg ("Cfg_space.of_string: bad binding " ^ kv))
      (String.split_on_char ',' s)

(** Canonical representative of a configuration: knobs sorted by name.
    Configs are assoc lists whose order is arbitrary; canonicalizing
    gives one structural value per configuration, so tables keyed by it
    ([Compile_cache], the tuner's visited set, the explorers' dedup)
    get exact equality — two distinct configurations can never share an
    entry the way int-hash keys could collide. *)
let canonical (config : config) : config = List.sort compare config

(** Stable order-insensitive hash of the canonical key. An int hash
    always has collisions, so this must never be used as an identity:
    lookups key on {!canonical} itself (equality-checked). The one
    sanctioned hash-only use is seeding [Device_pool]'s deterministic
    measurement noise, where a collision merely replays a noise draw. *)
let hash (config : config) = Hashtbl.hash (canonical config)
