(** Structured measurement results.

    Every measurement of a candidate configuration — whether it ran on
    a device, timed out, crashed, or never lowered — is reported as a
    [Measure_result.t]. This replaces the old convention of signalling
    failure in-band as [infinity]: the status says *why* a trial
    produced no number, and [attempts] says how hard the pool worked
    for it (retries included). *)

type status =
  | Ok  (** measurement succeeded; [time_s] holds the run time *)
  | Timeout  (** the job exceeded its per-job budget (or hung) *)
  | Crash  (** the remote run died before reporting a time *)
  | Invalid_config  (** the configuration failed lowering/validation *)
  | Pool_error of string
      (** infrastructure failure: unstable measurements that never
          stabilised, a pool with no healthy device left, ... *)

type t = {
  time_s : float option;  (** [Some t] iff [status = Ok] *)
  status : status;
  attempts : int;  (** measurement attempts consumed, retries included *)
}

let ok ?(attempts = 1) time_s = { time_s = Some time_s; status = Ok; attempts }
let fail ?(attempts = 1) status = { time_s = None; status; attempts }
let invalid_config = { time_s = None; status = Invalid_config; attempts = 0 }
let is_ok r = match r.status with Ok -> true | _ -> false

(** The measured time, present only for successful trials. *)
let time r = r.time_s

let status_name = function
  | Ok -> "ok"
  | Timeout -> "timeout"
  | Crash -> "crash"
  | Invalid_config -> "invalid_config"
  | Pool_error _ -> "pool_error"

(** Inverse of {!status_name}; [msg] fills the [Pool_error] payload.
    Raises [Invalid_argument] on an unknown name. *)
let status_of_name ?(msg = "") = function
  | "ok" -> Ok
  | "timeout" -> Timeout
  | "crash" -> Crash
  | "invalid_config" -> Invalid_config
  | "pool_error" -> Pool_error msg
  | s -> invalid_arg ("Measure_result.status_of_name: " ^ s)

let to_string r =
  match r.status with
  | Ok ->
      Printf.sprintf "ok(%.6gs, %d attempt%s)"
        (match r.time_s with Some t -> t | None -> Float.nan)
        r.attempts
        (if r.attempts = 1 then "" else "s")
  | Pool_error msg -> Printf.sprintf "pool_error(%s, %d attempts)" msg r.attempts
  | s -> Printf.sprintf "%s(%d attempts)" (status_name s) r.attempts
