(** Schedule explorers (§5.3).

    {!simulated_annealing} is TVM's explorer: parallel random-walk
    chains over the configuration space, guided by the cost model's
    predictions; exploration state persists across model updates.
    {!random_batch} and {!Genetic} are the blackbox baselines of
    Fig 12. *)

type predictor = Cfg_space.config -> float
(** Higher predicted score = better (e.g. -log predicted time). *)

type sa_state = { mutable chains : Cfg_space.config list }

let sa_init space rng ~n_chains =
  { chains = List.init n_chains (fun _ -> Cfg_space.random_config space) |> List.map (fun f -> f rng) }

(** One batch of parallel simulated annealing: walk each chain
    [n_steps] proposals; accept improving moves, accept worsening moves
    with Metropolis probability under [temp]. Returns the top [batch]
    distinct configs seen (excluding [visited]) with their provenance:
    [(config, chain index, predicted score)] — the flight recorder
    journals both so per-chain yield is visible after the fact.

    Chains genuinely run in parallel on [pool] (§5.3's "parallel
    simulated annealing"), and the result is bit-identical for any
    domain count: each chain walks with its own [Random.State] split
    from [rng] up front, [predict_for_chain i] gives chain [i] its own
    predictor (so memo tables are chain-local — the tuner merges them
    afterwards), candidates merge in chain-index order with first-wins
    dedup, and the final ranking is a stable sort on the predicted
    score. [visited] is only read during the walk; callers must not
    mutate it concurrently. *)
let simulated_annealing ?(pool = Tvm_par.Pool.sequential) space rng
    (state : sa_state) ~(predict_for_chain : int -> predictor)
    ~(visited : (Cfg_space.config, unit) Hashtbl.t) ~n_steps ~temp ~batch =
  let chains = Array.of_list state.chains in
  (* Split per-chain streams from the caller's rng before fanning out,
     so the caller's stream advances the same way at every -j. *)
  let seeds = Array.map (fun _ -> Random.State.bits rng) chains in
  let walk ci =
    let crng = Random.State.make [| seeds.(ci); ci |] in
    let predict = predict_for_chain ci in
    let seen_scores : (Cfg_space.config * Cfg_space.config * float) list ref =
      ref []
    in
    (* A walk re-proposes configs constantly (a rejected move leaves
       [cur] in place, so [mutate] keeps drawing from the same
       neighbourhood), and canonicalization + prediction dominate the
       propose phase. Memo both per chain, keyed by the canonical
       config: the predictor is pure within a batch, so a cache hit
       returns the identical score, and only the *first* sighting per
       chain is recorded — exactly the entry the first-wins dedup at
       the merge would have kept anyway. Chain-local tables keep the
       fan-out race-free. *)
    let score_memo : (Cfg_space.config, float) Hashtbl.t =
      Hashtbl.create 256
    in
    let eval cfg =
      let k = Cfg_space.canonical cfg in
      match Hashtbl.find_opt score_memo k with
      | Some s -> s
      | None ->
          let s = predict cfg in
          Hashtbl.replace score_memo k s;
          (* Non-finite predictions (NaN from an untrained model, -inf
             for rejected configs) must not enter the candidate pool:
             NaN breaks the final sort and either would surface junk
             configs. Keys are the canonical configuration (structural,
             collision-free) — an int-hash key here once let distinct
             configs shadow each other. *)
          if Float.is_finite s && not (Hashtbl.mem visited k) then
            seen_scores := (k, cfg, s) :: !seen_scores;
          s
    in
    let cur = ref chains.(ci) in
    let cur_score = ref (eval !cur) in
    let stuck = ref 0 in
    for step = 1 to n_steps do
      let t = temp *. (1. -. (float_of_int step /. float_of_int (n_steps + 1))) in
      let cand =
        (* teleport a chain that keeps proposing invalid neighbours
           (sparse-validity spaces strand single-knob walks) *)
        if !stuck > 8 then begin
          stuck := 0;
          Cfg_space.random_config space crng
        end
        else Cfg_space.mutate space crng !cur
      in
      let score = eval cand in
      let accept =
        score > !cur_score
        || Random.State.float crng 1.
           < Float.exp ((score -. !cur_score) /. Float.max 1e-9 t)
      in
      if accept && Float.is_finite score then begin
        cur := cand;
        cur_score := score;
        stuck := 0
      end
      else incr stuck
    done;
    (!cur, List.rev !seen_scores)
  in
  let walked =
    Tvm_par.Pool.parallel_map pool walk (Array.init (Array.length chains) Fun.id)
  in
  state.chains <- Array.to_list (Array.map fst walked);
  (* Deterministic ordered merge: concatenate per-chain candidates in
     chain-index order, dedup first-wins, then a *stable* sort by score
     so ties keep that order. Top-[batch] distinct survive. *)
  let dedup : (Cfg_space.config, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.mapi
    (fun ci (_, seen) -> List.map (fun (k, cfg, s) -> (k, cfg, ci, s)) seen)
    walked
  |> Array.to_list |> List.concat
  |> List.filter (fun (k, _, _, _) ->
         if Hashtbl.mem dedup k then false
         else begin
           Hashtbl.replace dedup k ();
           true
         end)
  |> List.stable_sort (fun (_, _, _, a) (_, _, _, b) -> compare b a)
  |> List.filteri (fun i _ -> i < batch)
  |> List.map (fun (_, cfg, ci, s) -> (cfg, ci, s))

(** Uniform random batch, deduplicated against [visited] (keyed by the
    canonical configuration). *)
let random_batch space rng ~(visited : (Cfg_space.config, unit) Hashtbl.t)
    ~batch =
  let out = ref [] in
  let attempts = ref 0 in
  while List.length !out < batch && !attempts < batch * 50 do
    incr attempts;
    let cfg = Cfg_space.random_config space rng in
    let k = Cfg_space.canonical cfg in
    if not (Hashtbl.mem visited k) then begin
      Hashtbl.replace visited k ();
      out := cfg :: !out
    end
  done;
  !out

module Genetic = struct
  (** Blackbox genetic algorithm: tournament selection over measured
      fitness, uniform crossover, one-knob mutation. No cost model —
      every candidate costs a real measurement, which is why it
      converges slowly in Fig 12. *)

  type individual = { cfg : Cfg_space.config; mutable fitness : float }

  type state = { mutable population : individual list }

  let init space rng ~pop_size =
    { population = List.init pop_size (fun _ -> { cfg = Cfg_space.random_config space rng; fitness = neg_infinity }) }

  let tournament rng pop =
    let pick () = List.nth pop (Random.State.int rng (List.length pop)) in
    let a = pick () and b = pick () in
    if a.fitness >= b.fitness then a else b

  (** Produce the next generation to measure. Parents without a single
      valid measurement between them contribute a fresh random
      individual instead (keeps the blackbox search alive when much of
      the space is invalid). *)
  let next_generation space rng state ~mutation_rate =
    let pop = state.population in
    let children =
      List.map
        (fun _ ->
          let pa = tournament rng pop and pb = tournament rng pop in
          let child =
            if pa.fitness <= -1e8 && pb.fitness <= -1e8 then
              Cfg_space.random_config space rng
            else Cfg_space.crossover rng pa.cfg pb.cfg
          in
          let child =
            if Random.State.float rng 1. < mutation_rate then
              Cfg_space.mutate space rng child
            else child
          in
          { cfg = child; fitness = neg_infinity })
        pop
    in
    state.population <- children;
    List.map (fun ind -> ind.cfg) children

  let record_fitness state fitnesses =
    List.iter2 (fun ind f -> ind.fitness <- f) state.population fitnesses
end
