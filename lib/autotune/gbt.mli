(** Gradient-boosted regression trees — the default cost model (§5.2).

    A from-scratch stand-in for XGBoost: depth-bounded regression trees
    grown greedily on variance reduction with quantile candidate
    thresholds, combined by shrinkage. Supports both plain regression
    and the paper's rank objective ("the explorer selects the top
    candidates based only on the relative order of the prediction"). *)

type objective = Regression | Rank

type tree =
  | Leaf of float
  | Node of { feature : int; threshold : float; left : tree; right : tree }

type t = {
  trees : tree list;  (** applied in order, already scaled by shrinkage *)
  base : float;
  objective : objective;
}

type params = {
  n_trees : int;
  max_depth : int;
  learning_rate : float;
  min_samples : int;  (** minimum samples to attempt a split *)
  obj : objective;
}

val default_params : params

val predict : t -> float array -> float

(** Map raw targets to the training targets of the objective; [Rank]
    replaces each value with its normalized rank in [0, 1]. *)
val transform_targets : objective -> float array -> float array

(** Fit a boosted ensemble on [(xs, ys)]; callers typically pass
    [ys = -log time] so that higher is better. With [pool], each
    node's split search fans out over feature columns; the combined
    winner is chosen in column order with the sequential loop's exact
    tie-break, so the fitted model is bit-identical at any domain
    count. *)
val fit : ?params:params -> ?pool:Tvm_par.Pool.t -> float array array -> float array -> t

(** Pairwise ordering accuracy on held-out data — the quantity that
    matters for explorer quality (1.0 = perfect ranking). Rows fan out
    over [pool]; exact integer tallies keep the result independent of
    domain count. *)
val rank_accuracy : ?pool:Tvm_par.Pool.t -> t -> float array array -> float array -> float
