(** The end-to-end compiler (§2): graph in, deployable module out.

    Pipeline: high-level graph rewriting (operator fusion, §3) →
    per-fused-group tensor-expression construction → schedule-template
    instantiation → ML-based automated optimization (§5) over the RPC
    device pool → lowered kernels packaged with their I/O signature.

    Every knob comes in through one {!Tvm_spec.Job_spec.t}; tuned
    configurations are cached by workload signature (anchor op + shapes
    + target), so the twelve distinct ResNet convolutions are tuned
    once each however many times they repeat — and the cache contents
    round-trip through {!tuned_entries}/{!restore_tuned} so a service
    restart keeps them. *)

exception Validation_failed of string * Tvm_tir.Validate.violation list
(** Raised by {!build} when [spec.validate] is set and the named
    kernel's lowered program has provable defects. *)

type build_result = {
  module_ : Tvm_runtime.Rt_module.t;
  groups : Tvm_graph.Fusion.group list;
  graph : Tvm_graph.Graph_ir.t;
  tuning_trials_run : int;
}

type tuned_cache
(** A tuned-configuration cache: workload signature → (best config,
    best model time). [build] defaults to one process-global instance
    — the paper's shared history database; a caller needing isolation
    ([tvmd]'s private-by-default tenants) creates its own. *)

val create_tuned_cache : unit -> tuned_cache

(** Compile a graph for a target: the paper's
    [graph, lib, params = t.compiler.build (graph, target, params)].

    [spec] supplies every knob — fusion mode, tuning budget and method,
    seed, host domains, device fleet and fault/retry policy, cache
    policy ({!Tvm_spec.Job_spec.t}). [db] is a shared measurement log
    the per-kernel tuning runs record into and, with [spec.replay],
    resume from. [tuned] selects the tuned-configuration cache
    consulted and filled (default: the process-global one).
    Deterministic: a fixed spec gives bit-identical results at any
    [spec.jobs]. *)
val build :
  ?spec:Tvm_spec.Job_spec.t ->
  ?db:Tvm_autotune.Tuner.Db.t ->
  ?tuned:tuned_cache ->
  Tvm_graph.Graph_ir.t ->
  Target.t ->
  build_result

(** {!build} + wrap in a graph executor ([runtime.create] of §2). *)
val build_executor :
  ?spec:Tvm_spec.Job_spec.t ->
  ?db:Tvm_autotune.Tuner.Db.t ->
  ?tuned:tuned_cache ->
  Tvm_graph.Graph_ir.t ->
  Target.t ->
  build_result * Tvm_runtime.Graph_executor.t

(** Drop the tuned-configuration cache and every compile-cache scope
    (test hygiene, or to force a full re-tune). *)
val clear_cache : unit -> unit

(** Tuned-cache contents — (workload signature, best configuration,
    best model time), sorted by signature — what the persistent store
    serializes so a warm restart skips repeat tuning. [cache] defaults
    to the process-global instance. *)
val tuned_entries :
  ?cache:tuned_cache ->
  unit ->
  (string * Tvm_autotune.Cfg_space.config * float) list

(** Preload a tuned cache (a store load on daemon startup). Existing
    in-process entries win: they were tuned live by this process. *)
val restore_tuned :
  ?cache:tuned_cache ->
  (string * Tvm_autotune.Cfg_space.config * float) list ->
  unit
