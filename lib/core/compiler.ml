(** The end-to-end compiler (§2): graph in, deployable module out.

    Pipeline: high-level graph rewriting (operator fusion, §3) →
    per-fused-group tensor-expression construction → schedule-template
    instantiation → ML-based automated optimization (§5) over the RPC
    device pool → lowered kernels packaged with their I/O signature.

    Tuned configurations are cached by workload signature (anchor op +
    shapes + target), so the twelve distinct ResNet convolutions are
    tuned once each however many times they repeat — and so related
    graphs benefit from history, as the paper's database does. *)

module G = Tvm_graph.Graph_ir
module Fusion = Tvm_graph.Fusion
module Tensor = Tvm_te.Tensor
module Tuner = Tvm_autotune.Tuner
module Templates = Tvm_autotune.Templates
module Cfg_space = Tvm_autotune.Cfg_space
module Compile_cache = Tvm_autotune.Compile_cache
module Pool = Tvm_rpc.Device_pool
module Rt_module = Tvm_runtime.Rt_module
module Trace = Tvm_obs.Trace
module Metrics = Tvm_obs.Metrics
module Job_spec = Tvm_spec.Job_spec

let () = Tvm_graph.Std_ops.register_all ()

exception Validation_failed of string * Tvm_tir.Validate.violation list
(** Raised by {!build} when [spec.validate] is set and the named
    kernel's lowered program has provable defects. *)

(** Tuning cache: workload signature → (best config, best noise-free
    time). The default instance is process-global (the paper's shared
    database); callers needing isolation — [tvmd]'s private-by-default
    tenants — pass their own instance to {!build}. *)
type tuned_cache = (string, Cfg_space.config * float) Hashtbl.t

let create_tuned_cache () : tuned_cache = Hashtbl.create 64
let tuned_cache : tuned_cache = create_tuned_cache ()

let clear_cache () =
  Hashtbl.reset tuned_cache;
  Compile_cache.clear_scopes ()

(** Tuned-cache contents, sorted by signature — what the persistent
    store serializes so a warm restart skips repeat tuning. *)
let tuned_entries ?(cache = tuned_cache) () =
  Hashtbl.fold (fun sig_ (cfg, t) acc -> (sig_, cfg, t) :: acc) cache []
  |> List.sort compare

(** Preload the tuned cache (a store load on daemon startup). Existing
    in-process entries win: they were tuned live by this process. *)
let restore_tuned ?(cache = tuned_cache) entries =
  List.iter
    (fun (sig_, cfg, t) ->
      if not (Hashtbl.mem cache sig_) then Hashtbl.add cache sig_ (cfg, t))
    entries

let workload_signature (graph : G.t) (g : Fusion.group) target =
  let anchor = G.node graph g.Fusion.g_anchor in
  let op = match anchor.G.kind with G.Op op -> op | _ -> "copy" in
  let shapes =
    List.map
      (fun i ->
        String.concat "x" (List.map string_of_int (G.node graph i).G.shape))
      anchor.G.inputs
  in
  let epilogue =
    match List.length g.Fusion.g_nodes - 1 with 0 -> "" | n -> Printf.sprintf "+%d" n
  in
  Printf.sprintf "%s(%s)->%s%s@%s" op (String.concat "," shapes)
    (String.concat "x" (List.map string_of_int anchor.G.shape))
    epilogue (Target.name target)

(** Template for a fused group on a target. *)
let template_for ~name target (out_tensor : Tensor.t) : Tuner.template =
  match target with
  | Target.Cuda _ | Target.Opencl_mali _ -> (
      (* Dense 2-D reductions get the richer structured matmul space. *)
      match Tensor.const_shape out_tensor with
      | [ m; n ] when m > 1 && n >= 16 && Templates.reduce_depth out_tensor > 1 ->
          Templates.gpu_matmul ~name out_tensor
      | _ -> Templates.gpu_flat ~name out_tensor)
  | Target.Llvm _ -> Templates.cpu_flat ~name out_tensor

(** Find a reasonable untuned configuration: sample a few and keep the
    best under the target's model (what a hand-written default schedule
    would give). *)
let default_config ?(samples = 12) ~seed target (tpl : Tuner.template) =
  let rng = Random.State.make [| seed; 17 |] in
  let best = ref None in
  for _ = 1 to samples do
    let cfg = Cfg_space.random_config tpl.Tuner.tpl_space rng in
    match (try Some (tpl.Tuner.tpl_instantiate cfg) with _ -> None) with
    | Some stmt ->
        let t = Target.time_s target stmt in
        if Float.is_finite t then begin
          match !best with
          | Some (_, _, bt) when bt <= t -> ()
          | _ -> best := Some (cfg, stmt, t)
        end
    | None -> ()
  done;
  !best

type build_result = {
  module_ : Rt_module.t;
  groups : Fusion.group list;
  graph : G.t;
  tuning_trials_run : int;
}

(** Compile [graph] for [target]: the paper's
    [graph, lib, params = t.compiler.build (graph, target, params)].
    [spec] supplies every knob ({!Job_spec.t}); [db] is a shared
    measurement log the tuning runs record into (and, with
    [spec.replay], resume from). *)
let build ?(spec = Job_spec.default) ?db ?(tuned = tuned_cache) (graph : G.t)
    (target : Target.t) : build_result =
  Trace.with_span "compile" ~attrs:[ ("target", Target.name target) ] @@ fun () ->
  let groups =
    Trace.with_span "phase.fusion" (fun () ->
        if spec.Job_spec.fusion then Fusion.fuse graph else Fusion.no_fusion graph)
  in
  Metrics.set_gauge "fusion.groups" (Float.of_int (List.length groups));
  Metrics.incr "compiler.builds";
  let pool = Pool.of_spec ~kind:(Target.device_kind target) spec in
  let par = Tvm_par.Pool.create ~domains:spec.Job_spec.jobs () in
  let kind_pred (_ : Pool.device_kind) = true in
  let trials_run = ref 0 in
  let kernels =
    List.map
      (fun g ->
        let signature = workload_signature graph g target in
        Trace.with_span "group" ~attrs:[ ("workload", signature) ] @@ fun () ->
        let (out_tensor, input_placeholders), tpl =
          Trace.with_span "phase.template" (fun () ->
              let te = Fusion.build_group_te graph g in
              (te, template_for ~name:signature target (fst te)))
        in
        (* One compile cache per template instance: the scope pins the
           signature, fusion mode AND this group's output buffer, because
           a lowered stmt refers to the placeholder buffers of the
           template that built it — two groups with equal signatures
           have equal-shaped but distinct buffers, so sharing stmts
           across them would break binding. Within the instance, both
           half-budget tuner runs, the final lowering and validation
           all share the cache (repeated signatures already skip tuning
           wholesale via [tuned_cache]). *)
        let ccache =
          if spec.Job_spec.use_compile_cache then
            Some
              (Compile_cache.for_scope
                 (Printf.sprintf "%s|fusion=%b#%d" signature
                    spec.Job_spec.fusion
                    (Tensor.buffer out_tensor).Tvm_tir.Expr.bid))
          else None
        in
        let best_cfg, _best_time =
          match Hashtbl.find_opt tuned signature with
          | Some hit ->
              Metrics.incr "compiler.cache_hits";
              hit
          | None ->
              Trace.with_span "phase.tuning" @@ fun () ->
              let result =
                if spec.Job_spec.trials > 0 then begin
                  let measure = Pool.measure_fn pool ~kind_pred in
                  let measure_batch =
                    Pool.batch_measure_fn ~par pool ~kind_pred
                  in
                  (* Two independent half-budget searches, keep the
                     better: guards against a seed-stranded run. *)
                  let half = max 8 (spec.Job_spec.trials / 2) in
                  let run seed =
                    Tuner.tune
                      ~spec:{ spec with Job_spec.seed }
                      ?db ?cache:ccache ~measure_batch
                      ~method_:(Tuner.method_of_name spec.Job_spec.method_name)
                      ~measure ~n_trials:half tpl
                  in
                  let r1 = run spec.Job_spec.seed in
                  let r2 = run (spec.Job_spec.seed + 1000) in
                  trials_run := !trials_run + (2 * half);
                  let best = if r1.Tuner.best_time <= r2.Tuner.best_time then r1 else r2 in
                  (best.Tuner.best_config, best.Tuner.best_time)
                end
                else
                  match default_config ~seed:spec.Job_spec.seed target tpl with
                  | Some (cfg, _, t) -> (cfg, t)
                  | None ->
                      invalid_arg
                        ("compiler: no valid default configuration for " ^ signature)
              in
              Hashtbl.replace tuned signature result;
              result
        in
        let stmt, time_s, lowering_hit =
          Trace.with_span "phase.lowering" (fun () ->
              (* The tuner retained the winner's lowered program in the
                 scope cache, so this is normally a hit. *)
              let stmt, hit =
                match
                  Option.bind ccache (fun c ->
                      Option.bind (Compile_cache.find c best_cfg)
                        Compile_cache.stmt)
                with
                | Some s -> (s, true)
                | None ->
                    let s = tpl.Tuner.tpl_instantiate best_cfg in
                    Option.iter
                      (fun c ->
                        Compile_cache.add c best_cfg
                          (Compile_cache.Valid
                             { feats = Tvm_autotune.Feature.extract s;
                               stmt = Some s }))
                      ccache;
                    (s, false)
              in
              (stmt, Target.time_s target stmt, hit))
        in
        let validation_ok =
          Trace.with_span "phase.validate" @@ fun () ->
          let violations =
            match
              Option.bind ccache (fun c ->
                  Compile_cache.find_validation c best_cfg)
            with
            | Some v -> v
            | None ->
                let v = Tvm_tir.Validate.check stmt in
                Option.iter
                  (fun c -> Compile_cache.add_validation c best_cfg v)
                  ccache;
                v
          in
          let errs = Tvm_tir.Validate.errors violations in
          Metrics.incr "validate.errors" ~by:(Float.of_int (List.length errs));
          Metrics.incr "validate.warnings"
            ~by:(Float.of_int (List.length (Tvm_tir.Validate.warnings violations)));
          if spec.Job_spec.verbose then
            List.iter
              (fun v ->
                Printf.printf "[tvm] validate %s: %s\n%!" signature
                  (Tvm_tir.Validate.to_string v))
              violations;
          if spec.Job_spec.validate && errs <> [] then
            raise (Validation_failed (signature, errs));
          errs = []
        in
        (* Journal the compile job itself: the winning configuration's
           final lowering is a trial with origin [compiler] — cache says
           whether the scope cache still held the winner's program,
           time is the target model's estimate. *)
        if Tvm_obs.Journal.enabled () then begin
          let uid = Tvm_obs.Journal.fresh_uid () in
          Tvm_obs.Journal.run ~name:("compile:" ^ signature) ~method_:"compiler"
            ~trials:1;
          Tvm_obs.Journal.propose ~uid ~origin:"compiler" ~chain:(-1)
            ~score:Float.nan ~config:(Cfg_space.to_string best_cfg);
          Tvm_obs.Journal.prepare ~uid
            ~cache:(if lowering_hit then "hit" else "miss")
            ~valid:validation_ok;
          Tvm_obs.Journal.measure ~uid ~status:"ok" ~time_s:(Some time_s)
            ~attempts:0
        end;
        if spec.Job_spec.verbose then
          Printf.printf "[tvm] %-60s %.3f ms\n%!" signature (1e3 *. time_s);
        {
          Rt_module.k_name = signature;
          k_group = g.Fusion.g_id;
          k_stmt = stmt;
          k_input_buffers = List.map Tensor.buffer input_placeholders;
          k_output_buffer = Tensor.buffer out_tensor;
          k_time_s = time_s;
          k_flops = Fusion.group_flops graph g;
        })
      groups
  in
  Metrics.incr "compiler.trials_run" ~by:(Float.of_int !trials_run);
  Trace.with_span "phase.packaging" @@ fun () ->
  {
    module_ = Rt_module.create ~target_name:(Target.name target) kernels;
    groups;
    graph;
    tuning_trials_run = !trials_run;
  }

(** Build + wrap in a graph executor ([runtime.create] of §2). *)
let build_executor ?spec ?db ?tuned graph target =
  let result = build ?spec ?db ?tuned graph target in
  let exec =
    Tvm_runtime.Graph_executor.create ~graph:result.graph ~groups:result.groups
      ~module_:result.module_ ()
  in
  (result, exec)
