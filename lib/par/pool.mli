(** A small reusable domain pool over stdlib [Domain] (§5.3's parallel
    exploration / §5.4's parallel measurement need host-side
    parallelism; Domainslib is deliberately not a dependency).

    The pool is fork-join: each [parallel_map] call fans its tasks out
    over [domains t] domains (the caller participates as one worker)
    with atomic index stealing, and writes results into a slot per
    input index — so the output order, and therefore every downstream
    merge, is identical for any domain count. A pool with one domain
    runs everything in the caller, making [domains = 1] the exact
    sequential semantics.

    Exceptions raised by tasks are collected and the one from the
    {e lowest} input index is re-raised after all tasks have run, so
    failure behaviour is deterministic too.

    Nesting is rejected: calling [parallel_map] (or friends) from
    inside a task raises {!Nested_parallelism} — at every domain
    count, so a nest bug cannot hide at [-j 1].

    {!run_lanes} is the one sanctioned two-level shape: coarse lanes
    (e.g. [tvmd] executing independent job streams) whose tasks may
    themselves call [parallel_map] — but only through a {e sequential}
    pool. A multi-domain [parallel_map] from inside a lane still
    raises {!Nested_parallelism}, at every lane width, so true nested
    fan-out remains impossible.

    Metrics: [par.domains] (gauge, last pool created), [par.tasks]
    (counter), [par.lane_tasks] (counter), [par.steal_idle_s]
    (histogram of the time the caller waited on straggler domains
    after finishing its own share). *)

exception Nested_parallelism

type t

(** [create ?domains ()] — [domains] defaults to
    [Domain.recommended_domain_count ()] and is clamped to at least 1. *)
val create : ?domains:int -> unit -> t

(** A pool that runs everything in the caller (one domain). *)
val sequential : t

val domains : t -> int

(** [parallel_map t f xs] = [Array.map f xs], order preserved. *)
val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [map_list t f xs] = [List.map f xs], order preserved. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_init_chunked ?chunk t n f] = [Array.init n f] with the
    indices fanned out in contiguous chunks of [chunk] (default 64) —
    one steal per chunk instead of one per element, for workloads of
    many tiny pure tasks (the fleet's model-time precompute over
    thousands of (job × kind) pairs). Same ordering, exception and
    nesting semantics as {!parallel_map}. *)
val parallel_init_chunked : ?chunk:int -> t -> int -> (int -> 'b) -> 'b array

(** [run_lanes t f xs] = [Array.map f xs] with the tasks spread over
    [min (domains t) (Array.length xs)] lane domains by index
    stealing. Unlike {!parallel_map} tasks, a lane task is allowed to
    call [parallel_map] on a {e sequential} pool (the semantics are
    plain [Array.map], so no nested fan-out happens); a multi-domain
    pool inside a lane raises {!Nested_parallelism} as usual, and so
    does [run_lanes] itself from inside any task or lane. Result
    order, and the lowest-index exception rule, match
    {!parallel_map}. *)
val run_lanes : t -> ('a -> 'b) -> 'a array -> 'b array

(** [parallel_reduce t ~map ~combine ~init xs] maps in parallel, then
    folds [combine] over the mapped values {e in input-index order} on
    the caller — the deterministic ordered merge. *)
val parallel_reduce :
  t -> map:('a -> 'b) -> combine:('acc -> 'b -> 'acc) -> init:'acc -> 'a array -> 'acc
