(* See pool.mli. Fork-join with atomic index stealing: spawn cost
   (~tens of µs per domain) is negligible against the coarse tasks the
   tuner hands us (lowering, feature extraction, cost-model runs), and
   avoiding a resident worker/condvar loop keeps the pool impossible
   to deadlock. *)

exception Nested_parallelism

type t = { n_domains : int }

(* True while this domain is executing pool tasks; checked on entry so
   nested fan-out is rejected identically at every domain count. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* True while this domain is executing a lane task ([run_lanes]):
   sequential-pool [parallel_map] is permitted there, multi-domain
   pools and further lane nesting are not. *)
let in_lane : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let create ?domains () =
  let n =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  Tvm_obs.Metrics.set_gauge "par.domains" (float_of_int n);
  { n_domains = n }

let sequential = { n_domains = 1 }

let domains t = t.n_domains

let now_ns () = Tvm_obs.Trace.now_ns ()

(* The fork-join engine shared by [parallel_map] and [run_lanes]: fan
   [f] over [xs] on [width] domains with atomic index stealing,
   marking every participating domain with [flag] for the duration. *)
let fan_out ~flag ~lane_label ~width f (xs : 'a array) : 'b array =
  let n = Array.length xs in
  let results = Array.make n None in
  (* Lowest-index exception, so the raised failure is independent
     of scheduling. Every task still runs exactly once. *)
  let first_error : (int * exn) option Atomic.t = Atomic.make None in
  let next = Atomic.make 0 in
  let work () =
    Domain.DLS.set flag true;
    Tvm_obs.Metrics.with_local_counters @@ fun () ->
    let continue_ = ref true in
    while !continue_ do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then continue_ := false
      else
        match f xs.(i) with
        | y -> results.(i) <- Some y
        | exception e ->
            let rec record () =
              match Atomic.get first_error with
              | Some (j, _) when j <= i -> ()
              | cur ->
                  if not (Atomic.compare_and_set first_error cur (Some (i, e)))
                  then record ()
            in
            record ()
    done;
    Domain.DLS.set flag false
  in
  let workers =
    Array.init (width - 1) (fun w ->
        (* Worker w+1 gets its own trace lane (the coordinator is
           the host lane), so spans/events it records show up as a
           separate named track in the Chrome export. *)
        let lane = Tvm_obs.Trace.domain_lane (w + 1) in
        Tvm_obs.Trace.name_thread ~lane
          (Printf.sprintf "%s %d" lane_label (w + 1));
        Domain.spawn (fun () ->
            Tvm_obs.Trace.set_lane lane;
            work ()))
  in
  work ();
  let local_done = now_ns () in
  Array.iter Domain.join workers;
  Tvm_obs.Metrics.observe "par.steal_idle_s"
    (Int64.to_float (Int64.sub (now_ns ()) local_done) /. 1e9);
  match Atomic.get first_error with
  | Some (_, e) -> raise e
  | None -> Array.map (function Some y -> y | None -> assert false) results

let parallel_map t f (xs : 'a array) : 'b array =
  if Domain.DLS.get in_task then raise Nested_parallelism;
  (* Inside a lane only the sequential shape is sanctioned. *)
  if Domain.DLS.get in_lane && t.n_domains > 1 then raise Nested_parallelism;
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    Tvm_obs.Metrics.incr ~by:(float_of_int n) "par.tasks";
    if t.n_domains <= 1 || n = 1 then begin
      Domain.DLS.set in_task true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set in_task false)
        (fun () -> Array.map f xs)
    end
    else
      fan_out ~flag:in_task ~lane_label:"worker" ~width:(min t.n_domains n) f
        xs
  end

let run_lanes t f (xs : 'a array) : 'b array =
  if Domain.DLS.get in_task || Domain.DLS.get in_lane then
    raise Nested_parallelism;
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    Tvm_obs.Metrics.incr ~by:(float_of_int n) "par.lane_tasks";
    let width = min t.n_domains n in
    if width <= 1 then begin
      Domain.DLS.set in_lane true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set in_lane false)
        (fun () -> Array.map f xs)
    end
    else fan_out ~flag:in_lane ~lane_label:"lane" ~width f xs
  end

let map_list t f xs = Array.to_list (parallel_map t f (Array.of_list xs))

let parallel_init_chunked ?(chunk = 64) t n (f : int -> 'b) : 'b array =
  if n < 0 then invalid_arg "Pool.parallel_init_chunked";
  if n = 0 then [||]
  else begin
    let chunk = max 1 chunk in
    let n_chunks = (n + chunk - 1) / chunk in
    if n_chunks <= 1 || t.n_domains <= 1 then parallel_map t f (Array.init n Fun.id)
    else begin
      (* One steal per chunk, not per element: with fleet-sized inputs
         (thousands of sub-millisecond model evaluations) the atomic
         fetch-and-add and slot write per element would dominate. Each
         chunk task fills a contiguous slice of the one result array,
         so output order — and the lowest-index exception rule, because
         chunk index order is element index order — is unchanged. *)
      let results = Array.make n None in
      let fill c =
        let lo = c * chunk in
        let hi = min n (lo + chunk) in
        for i = lo to hi - 1 do
          results.(i) <- Some (f i)
        done
      in
      ignore (parallel_map t fill (Array.init n_chunks Fun.id));
      Array.map (function Some y -> y | None -> assert false) results
    end
  end

let parallel_reduce t ~map ~combine ~init xs =
  Array.fold_left combine init (parallel_map t map xs)
