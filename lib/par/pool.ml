(* See pool.mli. Fork-join with atomic index stealing: spawn cost
   (~tens of µs per domain) is negligible against the coarse tasks the
   tuner hands us (lowering, feature extraction, cost-model runs), and
   avoiding a resident worker/condvar loop keeps the pool impossible
   to deadlock. *)

exception Nested_parallelism

type t = { n_domains : int }

(* True while this domain is executing pool tasks; checked on entry so
   nested fan-out is rejected identically at every domain count. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let create ?domains () =
  let n =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  Tvm_obs.Metrics.set_gauge "par.domains" (float_of_int n);
  { n_domains = n }

let sequential = { n_domains = 1 }

let domains t = t.n_domains

let now_ns () = Tvm_obs.Trace.now_ns ()

let parallel_map t f (xs : 'a array) : 'b array =
  if Domain.DLS.get in_task then raise Nested_parallelism;
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    Tvm_obs.Metrics.incr ~by:(float_of_int n) "par.tasks";
    if t.n_domains <= 1 || n = 1 then begin
      Domain.DLS.set in_task true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set in_task false)
        (fun () -> Array.map f xs)
    end
    else begin
      let results = Array.make n None in
      (* Lowest-index exception, so the raised failure is independent
         of scheduling. Every task still runs exactly once. *)
      let first_error : (int * exn) option Atomic.t = Atomic.make None in
      let next = Atomic.make 0 in
      let work () =
        Domain.DLS.set in_task true;
        Tvm_obs.Metrics.with_local_counters @@ fun () ->
        let continue_ = ref true in
        while !continue_ do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue_ := false
          else
            match f xs.(i) with
            | y -> results.(i) <- Some y
            | exception e ->
                let rec record () =
                  match Atomic.get first_error with
                  | Some (j, _) when j <= i -> ()
                  | cur ->
                      if not (Atomic.compare_and_set first_error cur (Some (i, e)))
                      then record ()
                in
                record ()
        done;
        Domain.DLS.set in_task false
      in
      let workers =
        Array.init
          (min t.n_domains n - 1)
          (fun w ->
            (* Worker w+1 gets its own trace lane (the coordinator is
               the host lane), so spans/events it records show up as a
               separate named track in the Chrome export. *)
            let lane = Tvm_obs.Trace.domain_lane (w + 1) in
            Tvm_obs.Trace.name_thread ~lane (Printf.sprintf "worker %d" (w + 1));
            Domain.spawn (fun () ->
                Tvm_obs.Trace.set_lane lane;
                work ()))
      in
      work ();
      let local_done = now_ns () in
      Array.iter Domain.join workers;
      Tvm_obs.Metrics.observe "par.steal_idle_s"
        (Int64.to_float (Int64.sub (now_ns ()) local_done) /. 1e9);
      match Atomic.get first_error with
      | Some (_, e) -> raise e
      | None ->
          Array.map (function Some y -> y | None -> assert false) results
    end
  end

let map_list t f xs = Array.to_list (parallel_map t f (Array.of_list xs))

let parallel_reduce t ~map ~combine ~init xs =
  Array.fold_left combine init (parallel_map t map xs)
