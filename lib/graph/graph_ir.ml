(** Computational-graph IR (§3, Fig 3).

    A node is an operation on tensors or a program input; edges are data
    dependencies. Shapes are inferred eagerly — the paper exploits
    "shape specificity in common DL workloads to optimize for a fixed
    set of input shapes". *)

open Tvm_tir

type node_kind =
  | Input  (** runtime-fed activation *)
  | Param  (** weight/constant, known at compile time *)
  | Op of string  (** operator instance; name keys {!Op_registry} *)

type node = {
  id : int;
  kind : node_kind;
  name : string;
  inputs : int list;  (** producing node ids *)
  attrs : Attrs.t;
  shape : int list;
  dtype : Dtype.t;
}

type t = {
  nodes : node array;  (** topologically ordered: inputs before users *)
  outputs : int list;
  input_ids : int list;
  param_ids : int list;
  consumers_of : int list array;
      (** consumer node ids per producer id, ascending — precomputed at
          construction so [consumers] is O(1) per query instead of a
          scan of every node's input list *)
  output_set : (int, unit) Hashtbl.t;  (** members of [outputs] *)
}

(* The adjacency indexes behind [consumers]/[is_output], built once by
   the two constructors below. A consumer reading the same producer
   through several inputs is listed once, like the original scan. *)
let index_adjacency nodes outputs =
  let consumers_of = Array.make (Array.length nodes) [] in
  Array.iter
    (fun n ->
      List.iter
        (fun inp -> consumers_of.(inp) <- n.id :: consumers_of.(inp))
        (List.sort_uniq compare n.inputs))
    nodes;
  Array.iteri (fun i l -> consumers_of.(i) <- List.rev l) consumers_of;
  let output_set = Hashtbl.create (max 4 (List.length outputs)) in
  List.iter (fun id -> Hashtbl.replace output_set id ()) outputs;
  (consumers_of, output_set)

let node g id = g.nodes.(id)
let num_nodes g = Array.length g.nodes
let consumers g id = g.consumers_of.(id)
let is_output g id = Hashtbl.mem g.output_set id

let iter_ops g f =
  Array.iter (fun n -> match n.kind with Op op -> f n op | Input | Param -> ()) g.nodes

let op_count g =
  let c = ref 0 in
  iter_ops g (fun _ _ -> incr c);
  !c

let total_param_elems g =
  List.fold_left
    (fun acc id -> acc + List.fold_left ( * ) 1 (node g id).shape)
    0 g.param_ids

let pp fmt g =
  Array.iter
    (fun n ->
      let kind =
        match n.kind with
        | Input -> "input"
        | Param -> "param"
        | Op op -> op
      in
      Format.fprintf fmt "%3d %-18s %-24s [%s] <- %s%s@."
        n.id kind n.name
        (String.concat "x" (List.map string_of_int n.shape))
        (String.concat "," (List.map string_of_int n.inputs))
        (if n.attrs = [] then "" else "  {" ^ Attrs.to_string n.attrs ^ "}"))
    g.nodes

let to_string g = Format.asprintf "%a" pp g

(* ------------------------------------------------------------------ *)
(* Builder                                                              *)
(* ------------------------------------------------------------------ *)

(** Shape-inference hook filled by {!Op_registry} at link time, so the
    IR does not depend on the operator implementations. *)
let shape_infer_hook :
    (string -> int list list -> Attrs.t -> int list) ref =
  ref (fun op _ _ -> invalid_arg ("shape inference not registered for " ^ op))

type builder = {
  mutable rev_nodes : node list;
  mutable next_id : int;
  mutable b_inputs : int list;
  mutable b_params : int list;
}

type noderef = int

let builder () = { rev_nodes = []; next_id = 0; b_inputs = []; b_params = [] }

let add_node b kind name inputs attrs shape dtype =
  let id = b.next_id in
  b.next_id <- id + 1;
  b.rev_nodes <- { id; kind; name; inputs; attrs; shape; dtype } :: b.rev_nodes;
  id

let input ?(dtype = Dtype.Float32) b name shape =
  let id = add_node b Input name [] Attrs.empty shape dtype in
  b.b_inputs <- b.b_inputs @ [ id ];
  id

let param ?(dtype = Dtype.Float32) b name shape =
  let id = add_node b Param name [] Attrs.empty shape dtype in
  b.b_params <- b.b_params @ [ id ];
  id

let node_shape b id =
  (List.find (fun n -> n.id = id) b.rev_nodes).shape

let node_dtype b id = (List.find (fun n -> n.id = id) b.rev_nodes).dtype

let op ?(attrs = Attrs.empty) ?name ?dtype b op_name inputs =
  let in_shapes = List.map (node_shape b) inputs in
  let shape = !shape_infer_hook op_name in_shapes attrs in
  let dtype =
    match (dtype, inputs) with
    | Some d, _ -> d
    | None, i :: _ -> node_dtype b i
    | None, [] -> Dtype.Float32
  in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s_%d" op_name b.next_id
  in
  add_node b (Op op_name) name inputs attrs shape dtype

let finalize b outputs =
  let nodes = Array.of_list (List.rev b.rev_nodes) in
  let consumers_of, output_set = index_adjacency nodes outputs in
  {
    nodes;
    outputs;
    input_ids = b.b_inputs;
    param_ids = b.b_params;
    consumers_of;
    output_set;
  }

(** Rebuild a graph from an explicit node list (used by passes). Node
    ids must be dense and topologically ordered. *)
let of_nodes nodes ~outputs =
  let nodes = Array.of_list nodes in
  Array.iteri
    (fun i n ->
      if n.id <> i then invalid_arg "Graph_ir.of_nodes: ids must be dense and ordered";
      List.iter
        (fun inp -> if inp >= i then invalid_arg "Graph_ir.of_nodes: not topological")
        n.inputs)
    nodes;
  let input_ids =
    Array.to_list nodes |> List.filter (fun n -> n.kind = Input) |> List.map (fun n -> n.id)
  in
  let param_ids =
    Array.to_list nodes |> List.filter (fun n -> n.kind = Param) |> List.map (fun n -> n.id)
  in
  let consumers_of, output_set = index_adjacency nodes outputs in
  { nodes; outputs; input_ids; param_ids; consumers_of; output_set }
