(** Operator fusion (§3).

    Implements the paper's generic rules over the four operator
    categories: injective operators fuse with one another; reduction
    operators fuse their injective inputs; complex-out-fusable operators
    (e.g. conv2d) fuse elementwise operators at their output; opaque
    operators stand alone. A producer may only be absorbed when it has
    a single consumer (its intermediate result would otherwise still be
    needed in memory, defeating the point of fusion). *)

type group = {
  g_id : int;
  g_nodes : int list;  (** member op-node ids, topological, last = output *)
  g_anchor : int;  (** the node whose master schedule template is used *)
  g_inputs : int list;  (** external node ids the group reads *)
  g_output : int;
}

let group_output g = g.g_output
let group_size g = List.length g.g_nodes

(** External inputs of a node set: inputs not produced inside. The
    membership test goes through a set, not [List.mem] — long fused
    chains made the filter quadratic in the group size. *)
let external_inputs (graph : Graph_ir.t) nodes =
  let inside = Hashtbl.create (2 * List.length nodes) in
  List.iter (fun id -> Hashtbl.replace inside id ()) nodes;
  List.concat_map (fun id -> (Graph_ir.node graph id).Graph_ir.inputs) nodes
  |> List.filter (fun id -> not (Hashtbl.mem inside id))
  |> List.sort_uniq compare

let anchor_of (graph : Graph_ir.t) nodes =
  let is_heavy id =
    match (Graph_ir.node graph id).Graph_ir.kind with
    | Graph_ir.Op op -> (
        match Op_registry.pattern op with
        | Op_registry.Complex_out_fusable | Op_registry.Reduction | Op_registry.Opaque ->
            true
        | Op_registry.Injective -> false)
    | Graph_ir.Input | Graph_ir.Param -> false
  in
  match List.find_opt is_heavy nodes with
  | Some id -> id
  | None -> List.hd nodes

let make_group graph gid nodes =
  {
    g_id = gid;
    g_nodes = nodes;
    g_anchor = anchor_of graph nodes;
    g_inputs = external_inputs graph nodes;
    g_output = List.nth nodes (List.length nodes - 1);
  }

(** One group per operator — the "w/o fusion" baseline of Fig 4/14. *)
let no_fusion (graph : Graph_ir.t) : group list =
  let gid = ref 0 in
  Array.to_list graph.Graph_ir.nodes
  |> List.filter_map (fun n ->
         match n.Graph_ir.kind with
         | Graph_ir.Op _ ->
             incr gid;
             Some (make_group graph !gid [ n.Graph_ir.id ])
         | Graph_ir.Input | Graph_ir.Param -> None)

(** Order groups so every group runs after the producers of its
    inputs. Needed because absorbing a multi-input consumer (e.g. a
    residual add) can make a group depend on a group formed later. *)
let topo_sort_groups (groups : group list) : group list =
  let by_output = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace by_output g.g_output g) groups;
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit g =
    if not (Hashtbl.mem visited g.g_id) then begin
      Hashtbl.replace visited g.g_id ();
      List.iter
        (fun input ->
          match Hashtbl.find_opt by_output input with
          | Some producer -> visit producer
          | None -> ())
        g.g_inputs;
      order := g :: !order
    end
  in
  List.iter visit groups;
  List.rev !order

(** Fused partition: greedy absorption of single-consumer injective
    chains into the group of their producer. *)
let fuse (graph : Graph_ir.t) : group list =
  let grouped = Hashtbl.create 16 in
  let gid = ref 0 in
  let op_pattern id =
    match (Graph_ir.node graph id).Graph_ir.kind with
    | Graph_ir.Op op -> Some (Op_registry.pattern op)
    | Graph_ir.Input | Graph_ir.Param -> None
  in
  let groups = ref [] in
  Array.iter
    (fun n ->
      match n.Graph_ir.kind with
      | Graph_ir.Input | Graph_ir.Param -> ()
      | Graph_ir.Op op ->
          if not (Hashtbl.mem grouped n.Graph_ir.id) then begin
            let nodes = ref [ n.Graph_ir.id ] in
            Hashtbl.replace grouped n.Graph_ir.id ();
            (if Op_registry.pattern op <> Op_registry.Opaque then
               (* Grow an epilogue chain of single-consumer injectives. *)
               let rec grow out =
                 if Graph_ir.is_output graph out then ()
                 else
                   match Graph_ir.consumers graph out with
                   | [ c ] when not (Hashtbl.mem grouped c) -> (
                       match op_pattern c with
                       | Some Op_registry.Injective ->
                           nodes := !nodes @ [ c ];
                           Hashtbl.replace grouped c ();
                           grow c
                       | Some _ | None -> ())
                   | _ -> ()
               in
               grow n.Graph_ir.id);
            incr gid;
            groups := make_group graph !gid !nodes :: !groups
          end)
    graph.Graph_ir.nodes;
  topo_sort_groups (List.rev !groups)

(** Build the fused tensor-expression DAG for a group: placeholders for
    external inputs, then each member op applied in order. Returns the
    output tensor and the placeholder list (in [g_inputs] order). *)
let build_group_te (graph : Graph_ir.t) (g : group) =
  let placeholders =
    List.map
      (fun id ->
        let n = Graph_ir.node graph id in
        ( id,
          Tvm_te.Tensor.placeholder ~dtype:n.Graph_ir.dtype n.Graph_ir.name
            (List.map Tvm_tir.Expr.int n.Graph_ir.shape) ))
      g.g_inputs
  in
  let produced = Hashtbl.create 8 in
  List.iter (fun (id, t) -> Hashtbl.replace produced id t) placeholders;
  let out =
    List.fold_left
      (fun _ id ->
        let n = Graph_ir.node graph id in
        match n.Graph_ir.kind with
        | Graph_ir.Op op ->
            let impl = Op_registry.find op in
            let ins =
              List.map
                (fun i ->
                  match Hashtbl.find_opt produced i with
                  | Some t -> t
                  | None -> invalid_arg "build_group_te: input not materialized")
                n.Graph_ir.inputs
            in
            let t = impl.Op_registry.build_te ins n.Graph_ir.attrs in
            Hashtbl.replace produced id t;
            Some t
        | Graph_ir.Input | Graph_ir.Param -> None)
      None g.g_nodes
  in
  match out with
  | Some t -> (t, List.map snd placeholders)
  | None -> invalid_arg "build_group_te: empty group"

(** Total FLOPs of a group at its anchor's granularity. *)
let group_flops (graph : Graph_ir.t) (g : group) =
  List.fold_left
    (fun acc id ->
      let n = Graph_ir.node graph id in
      match n.Graph_ir.kind with
      | Graph_ir.Op op ->
          let impl = Op_registry.find op in
          let in_shapes =
            List.map (fun i -> (Graph_ir.node graph i).Graph_ir.shape) n.Graph_ir.inputs
          in
          acc +. impl.Op_registry.op_flops in_shapes n.Graph_ir.attrs
      | Graph_ir.Input | Graph_ir.Param -> acc)
    0. g.g_nodes
