(** Static memory planning (§3): pre-allocate storage for every
    intermediate tensor, sharing buffers between values whose live
    ranges do not overlap. *)

open Tvm_tir

type slot = { slot_id : int; mutable bytes : float; mutable free_after : int }

type plan = {
  assignments : (int * int) list;  (** group-output node id → slot id *)
  slots : (int * float) list;  (** slot id → bytes *)
  total_bytes : float;  (** pooled allocation *)
  naive_bytes : float;  (** one private buffer per intermediate *)
}

let node_bytes (graph : Graph_ir.t) id =
  let n = Graph_ir.node graph id in
  float_of_int (List.fold_left ( * ) 1 n.Graph_ir.shape)
  *. Dtype.bytes n.Graph_ir.dtype

(** Plan storage for the outputs of [groups] executed in list order.
    A group output is live from its producing step until the last step
    that reads it; graph outputs are pinned (never shared). *)
let plan (graph : Graph_ir.t) (groups : Fusion.group list) : plan =
  let order = List.mapi (fun i g -> (g.Fusion.g_output, i)) groups in
  let step_of id = List.assoc_opt id order in
  (* Last step reading each produced value. *)
  let last_use = Hashtbl.create 16 in
  List.iteri
    (fun step g ->
      List.iter
        (fun input ->
          match step_of input with
          | Some _ -> Hashtbl.replace last_use input step
          | None -> ())
        g.Fusion.g_inputs)
    groups;
  let slots = ref [] in
  let next_slot = ref 0 in
  let assignments = ref [] in
  let naive = ref 0. in
  List.iteri
    (fun step g ->
      let id = g.Fusion.g_output in
      let bytes = node_bytes graph id in
      naive := !naive +. bytes;
      let lu =
        if Graph_ir.is_output graph id then max_int
        else match Hashtbl.find_opt last_use id with Some s -> s | None -> step
      in
      (* First fit: smallest free slot large enough, else grow one, else new. *)
      let free = List.filter (fun s -> s.free_after < step) !slots in
      let candidate =
        List.sort (fun a b -> compare a.bytes b.bytes) free
        |> List.find_opt (fun s -> s.bytes >= bytes)
      in
      let slot =
        match candidate with
        | Some s -> s
        | None -> (
            match List.sort (fun a b -> compare b.bytes a.bytes) free with
            | s :: _ ->
                s.bytes <- Float.max s.bytes bytes;
                s
            | [] ->
                incr next_slot;
                let s = { slot_id = !next_slot; bytes; free_after = -1 } in
                slots := s :: !slots;
                s)
      in
      slot.free_after <- lu;
      assignments := (id, slot.slot_id) :: !assignments)
    groups;
  let slots = List.map (fun s -> (s.slot_id, s.bytes)) !slots in
  {
    assignments = List.rev !assignments;
    slots;
    total_bytes = List.fold_left (fun acc (_, b) -> acc +. b) 0. slots;
    naive_bytes = !naive;
  }

(** Cross-request slab arena: the serving-time generalization of the
    per-graph plan above. Each in-flight request acquires one slab per
    plan slot for the interval [dispatch, completion) on the virtual
    clock and releases them on completion; released slabs are reused
    by later (or concurrently staggered) requests of any model.

    Slabs come in geometric size classes (4 KB × 1.25^c) and a request
    is served from its own class or a bounded number of classes above
    it (a borrowed slab is ≤ 1.25⁴ ≈ 2.4× the request) — never from an
    arbitrarily bigger free slab. Bounded-fit prevents the capture pathology of
    best-fit under mixed-model traffic, where large slabs get pinned
    under small slots and the footprint ratchets past even the naive
    peak, while still letting batch-size-scaled slots (whose sizes
    churn with the coalescing) share slabs instead of minting a class
    per batch size. The footprint is therefore close to the high-water
    mark of simultaneously live bytes, not the sum over requests. Free
    lists are LIFO per class: the arena is deterministic given the
    acquire / release sequence, which itself is a pure function of the
    virtual schedule. *)
module Arena = struct
  type slab = { sb_id : int; sb_class : int; sb_bytes : float }

  type t = {
    ar_free : (int, slab list) Hashtbl.t;  (** class → released slabs *)
    mutable ar_next : int;
    mutable ar_total : float;  (** arena footprint: all slab bytes *)
    mutable ar_in_use : float;
    mutable ar_peak : float;  (** high-water of in-use bytes *)
    mutable ar_acquires : int;
    mutable ar_reuses : int;
    mutable ar_waste : float;  (** Σ (class size − requested) over acquires *)
  }

  let create () =
    { ar_free = Hashtbl.create 32; ar_next = 0; ar_total = 0.; ar_in_use = 0.;
      ar_peak = 0.; ar_acquires = 0; ar_reuses = 0; ar_waste = 0. }

  let class_base = 4096.
  let class_ratio = 1.25

  let class_of bytes =
    if bytes <= class_base then 0
    else int_of_float (Float.ceil (Float.log (bytes /. class_base) /. Float.log class_ratio))

  let class_bytes c = class_base *. (class_ratio ** float_of_int c)

  (* How many classes above its own a request may borrow from:
     1.25³ ≈ 1.95× its class size, so a borrowed slab is at most
     1.25⁴ ≈ 2.4× the requested bytes. *)
  let borrow_classes = 3

  let acquire t ~bytes =
    t.ar_acquires <- t.ar_acquires + 1;
    let c = class_of bytes in
    let rec take k =
      if k > borrow_classes then None
      else
        match Hashtbl.find_opt t.ar_free (c + k) with
        | Some (s :: rest) ->
            Hashtbl.replace t.ar_free (c + k) rest;
            Some s
        | Some [] | None -> take (k + 1)
    in
    let slab =
      match take 0 with
      | Some s ->
          t.ar_reuses <- t.ar_reuses + 1;
          s
      | None ->
          t.ar_next <- t.ar_next + 1;
          let sb = class_bytes c in
          t.ar_total <- t.ar_total +. sb;
          { sb_id = t.ar_next; sb_class = c; sb_bytes = sb }
    in
    t.ar_waste <- t.ar_waste +. (slab.sb_bytes -. bytes);
    t.ar_in_use <- t.ar_in_use +. slab.sb_bytes;
    if t.ar_in_use > t.ar_peak then t.ar_peak <- t.ar_in_use;
    slab

  let release t slab =
    t.ar_in_use <- t.ar_in_use -. slab.sb_bytes;
    let rest =
      Option.value ~default:[] (Hashtbl.find_opt t.ar_free slab.sb_class)
    in
    Hashtbl.replace t.ar_free slab.sb_class (slab :: rest)

  (** Acquire one slab per slot of [p], every slot size scaled by
      [scale] (the coalesced batch size — activations grow linearly
      along the batch axis). Returns the slabs for {!release_plan}. *)
  let acquire_plan t (p : plan) ~scale =
    List.map (fun (_, bytes) -> acquire t ~bytes:(bytes *. scale)) p.slots

  let release_plan t slabs = List.iter (release t) slabs
  let footprint_bytes t = t.ar_total
  let peak_in_use_bytes t = t.ar_peak
  let reuses t = t.ar_reuses
  let acquires t = t.ar_acquires
end
