(** Open-loop serving traffic: deterministic per-tenant arrival
    processes for the model server.

    Arrivals are open-loop (the generator never waits for responses —
    the paper's serving scenario, where clients fire at their own
    rate) with exponential inter-arrival gaps drawn from a
    splitmix-style integer mixer of (seed, tenant lane, arrival
    number) — the same construction {!Tvm_rpc.Fault} uses for fault
    plans — so a given (seed, tenant set, horizon) produces exactly
    the same request trace on every run, on every machine. *)

type tenant = {
  tf_name : string;
  tf_model : string;  (** model the tenant's requests target *)
  tf_rate_hz : float;  (** mean arrival rate (requests / virtual s) *)
  tf_slo_s : float;  (** per-request latency SLO *)
}

let tenant ?(rate_hz = 50.) ?(slo_s = 0.25) ~model name =
  if rate_hz <= 0. then invalid_arg "traffic: rate_hz must be positive";
  if slo_s <= 0. then invalid_arg "traffic: slo_s must be positive";
  { tf_name = name; tf_model = model; tf_rate_hz = rate_hz; tf_slo_s = slo_s }

type request = {
  rq_id : int;  (** global arrival order; ties broken by tenant name *)
  rq_tenant : string;
  rq_model : string;
  rq_submit_s : float;  (** arrival on the virtual clock *)
  rq_slo_s : float;
}

(* Integer mixer (splitmix-style, as in Fault.mix): avalanches its two
   inputs so consecutive arrival numbers give independent draws. *)
let mix a b =
  let h = ref ((a * 0x9E3779B1) lxor (b * 0x85EBCA6B)) in
  h := !h lxor (!h lsr 15);
  h := !h * 0x2C1B3C6D;
  h := !h lxor (!h lsr 12);
  h := !h * 0x297A2D39;
  h := !h lxor (!h lsr 15);
  !h land max_int

(** Uniform draw in [0,1) for (seed, tenant lane, arrival number). *)
let unit_float ~seed ~lane ~n =
  float_of_int (mix (mix seed lane) n land 0x3FFFFFFF)
  /. float_of_int 0x40000000

(** Generate every tenant's arrivals over [0, horizon_s), merged into
    one submit-ordered trace with sequential ids. Pure in all
    arguments. *)
let generate ?(seed = 0) ~horizon_s tenants =
  let per_tenant lane t =
    let rec gen now n acc =
      let u = unit_float ~seed ~lane ~n in
      (* Inverse-CDF exponential gap; the clamp keeps log finite. *)
      let gap = -.log (1. -. Float.min u 0.999999) /. t.tf_rate_hz in
      let now = now +. gap in
      if now >= horizon_s then List.rev acc
      else
        gen now (n + 1)
          ({ rq_id = 0; rq_tenant = t.tf_name; rq_model = t.tf_model;
             rq_submit_s = now; rq_slo_s = t.tf_slo_s }
          :: acc)
    in
    gen 0. 0 []
  in
  List.concat (List.mapi per_tenant tenants)
  |> List.sort (fun a b ->
         compare (a.rq_submit_s, a.rq_tenant) (b.rq_submit_s, b.rq_tenant))
  |> List.mapi (fun i r -> { r with rq_id = i })

(* Tab-separated trace lines ([%h] floats round-trip exactly), so a
   generated trace can be saved by [tvmc traffic] and replayed by
   [tvmc serve-rt --trace]. *)

let to_line r =
  Printf.sprintf "%d\t%s\t%s\t%h\t%h" r.rq_id (String.escaped r.rq_tenant)
    (String.escaped r.rq_model) r.rq_submit_s r.rq_slo_s

let of_line line =
  match String.split_on_char '\t' line with
  | [ id; tenant; model; submit; slo ] ->
      {
        rq_id = int_of_string id;
        rq_tenant = Scanf.unescaped tenant;
        rq_model = Scanf.unescaped model;
        rq_submit_s = float_of_string submit;
        rq_slo_s = float_of_string slo;
      }
  | _ -> failwith ("traffic: bad trace line: " ^ line)

let to_lines reqs = List.map to_line reqs
let of_lines lines = List.map of_line lines
