(** Multi-model serving executor: several compiled networks loaded at
    once, concurrent requests served on the deterministic virtual
    clock (Fig 21's serving scenario).

    Three serving-time optimizations over the single-request
    {!Tvm_runtime.Graph_executor}:

    - {b dynamic batching}: compatible same-model requests coalesce
      along the batch axis under a max-batch / max-delay policy;
    - {b cross-request slab reuse}: activation storage comes from a
      shared {!Tvm_graph.Mem_plan.Arena} spanning all in-flight
      requests instead of private per-request buffers;
    - {b heterogeneous dispatch}: a graph's fused groups split across
      cpu + gpu + vdla by per-group estimated cost plus cross-device
      transfer.

    Determinism: model loading fans out over [lanes] domains (private
    caches, sequential host parallelism); the schedule itself is a
    sequential virtual-clock simulation on the coordinator — results
    are byte-identical at any lane count. *)

type device = Cpu | Gpu | Vdla

val device_name : device -> string

(** Batch efficiency on [dev]: time(k) = time(1) · {!batch_eff} dev k. *)
val batch_eff : device -> int -> float

type config = {
  cf_max_batch : int;  (** coalescing cap; 1 disables batching *)
  cf_max_delay_s : float;  (** max wait before a partial batch launches *)
  cf_max_inflight : int;  (** concurrent batches admitted *)
  cf_hetero : bool;  (** heterogeneous dispatch (off: all groups on gpu) *)
  cf_launch_overhead_s : float;  (** per-kernel-launch framework cost *)
}

val config :
  ?max_batch:int ->
  ?max_delay_s:float ->
  ?max_inflight:int ->
  ?hetero:bool ->
  ?launch_overhead_s:float ->
  unit ->
  config

type group_exec = {
  ge_group : int;
  ge_op : string;  (** anchor operator *)
  ge_device : device;
  ge_time1_s : float;  (** batch-1 estimate on the chosen device *)
  ge_xfer_s : float;  (** cross-device input transfer charged per launch *)
}

type model = {
  mv_name : string;
  mv_exec : Tvm_runtime.Graph_executor.t;
  mv_groups : group_exec list;  (** executable order *)
  mv_plan : Tvm_graph.Mem_plan.plan;
  mv_naive_bytes : float;
  mv_time1_s : float;  (** batch-1 service estimate, transfers included *)
  mv_placement : (string * int) list;  (** device name → groups placed *)
}

type t

val models : t -> model list
val find : t -> string -> model

(** Compile and place every named graph (default target: cuda).
    [lanes] parallelizes the compiles; the loaded server is identical
    at any lane count. [spec] is forced to sequential host parallelism
    and private caches per model. *)
val load :
  ?lanes:int ->
  ?spec:Tvm_spec.Job_spec.t ->
  ?target:Tvm.Target.t ->
  config ->
  (string * Tvm_graph.Graph_ir.t) list ->
  t

type completion = {
  rc_id : int;
  rc_tenant : string;
  rc_model : string;
  rc_submit_s : float;
  rc_start_s : float;  (** batch dispatch time *)
  rc_finish_s : float;
  rc_latency_s : float;
  rc_batch : int;  (** id of the coalesced batch *)
  rc_batch_size : int;
  rc_slo_s : float;
  rc_slo_ok : bool;
}

type batch_info = {
  bt_id : int;
  bt_model : string;
  bt_size : int;
  bt_start_s : float;
  bt_finish_s : float;
}

type outcome = {
  oc_completions : completion list;  (** finish order *)
  oc_batches : batch_info list;  (** launch order *)
  oc_makespan_s : float;
  oc_throughput_rps : float;
  oc_mean_batch : float;
  oc_slab_bytes : float;  (** arena footprint (high water) *)
  oc_naive_bytes : float;  (** peak Σ in-flight naive bytes *)
  oc_slab_saving : float;  (** [1 - slab/naive] *)
  oc_slab_reuses : int;
  oc_slo_misses : int;
  oc_p50_s : float;
  oc_p90_s : float;
  oc_p99_s : float;
}

(** Serve a request trace to completion. Pure function of the trace
    and the loaded models; publishes [serve_rt.*] metrics. *)
val run : t -> Traffic.request list -> outcome

(** One line per completion, [%h] floats — byte-comparable across lane
    counts. *)
val results_lines : outcome -> string list

(** Serving flight recorder (JSONL, [serve_rt.*] kinds) — the input to
    [tvmc report]'s request-latency digest. *)
val journal_lines : t -> outcome -> string list

val write_results : outcome -> string -> unit
val write_journal : t -> outcome -> string -> unit
