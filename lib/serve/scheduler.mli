(** Deterministic multi-tenant job scheduler — the heart of [tvmd].

    Jobs from several tenants compete for a fixed number of executor
    slots (the simulated device fleet lanes). Dispatch is weighted
    fair-share in virtual time: each tenant accumulates
    [service / weight] as it consumes the fleet, and the next free
    slot always goes to the eligible tenant with the least accumulated
    share — so over any busy interval tenants receive device time in
    proportion to their weights, regardless of submission pattern.
    Within a tenant, higher [jb_priority] runs first, then FIFO.

    Everything runs on a virtual clock derived from the jobs' service
    times — never the wall clock — so a schedule is a pure function of
    the trace: bit-identical at any domain count, reproducible across
    restarts (which is what lets a warm [tvmd] replay a done job's
    recorded service time and keep every other job's latency
    unchanged).

    Job-level reliability reuses the device-pool retry machinery
    ({!Tvm_rpc.Retry_policy}): a failed execution retries with
    exponential backoff charged to the virtual clock, an attempt whose
    service exceeds [retry.timeout_s] counts as a timeout, and a job
    that exhausts its attempts completes with [cp_error] set — the
    scheduler itself never raises on a failing job.

    The implementation is built for long traces: pending jobs are
    indexed per tenant (a submit-ordered arrival list feeding a
    priority-then-FIFO heap), so each dispatch costs O(tenants +
    log pending) rather than a rescan of the whole backlog, and
    finished entries are pruned from the in-flight lists as the
    virtual clock passes them, so resident state is bounded by true
    concurrency — the [sched.running_peak] gauge records the high
    water mark of retained in-flight entries for a run. *)

type tenant = {
  tn_name : string;
  tn_weight : float;  (** fair-share weight; must be positive *)
  tn_quota : int option;  (** max jobs of this tenant in flight at once *)
}

val tenant : ?weight:float -> ?quota:int -> string -> tenant

type 'a job = {
  jb_id : int;  (** unique; FIFO tie-break within a tenant *)
  jb_tenant : string;
  jb_priority : int;  (** higher dispatches first within the tenant *)
  jb_submit_s : float;  (** arrival on the virtual clock *)
  jb_payload : 'a;
}

type 'a completion = {
  cp_job : 'a job;
  cp_slot : int;  (** executor lane the job ran on *)
  cp_attempts : int;  (** 1 + retries consumed *)
  cp_start_s : float;  (** dispatch time (virtual) *)
  cp_service_s : float;  (** total charged time, retries + backoff included *)
  cp_finish_s : float;  (** [cp_start_s +. cp_service_s] *)
  cp_queue_wait_s : float;  (** [cp_start_s -. jb_submit_s] *)
  cp_error : string option;  (** [None] iff the job succeeded *)
}

(** Run a trace to completion and return completions in dispatch
    order.

    [execute job ~attempt] performs the actual work and returns its
    service time on the virtual clock ([Ok]) or a failure ([Error]);
    exceptions it raises are caught and treated as [Error]. It is
    called once per attempt, in dispatch order, always on the calling
    domain — so its own internal parallelism (the tuner's [-j]) never
    reorders the schedule.

    [stop] is polled before each dispatch; once it returns [true] the
    remaining queue is abandoned (the [tvmd] kill switch) and only the
    completions so far are returned.

    Raises [Invalid_argument] for a job naming an unregistered tenant
    or a tenant with a non-positive weight. *)
val run :
  ?slots:int ->
  ?retry:Tvm_rpc.Retry_policy.t ->
  ?stop:(unit -> bool) ->
  tenants:tenant list ->
  execute:('a job -> attempt:int -> (float, string) result) ->
  'a job list ->
  'a completion list
