(** [tvmd] — the long-running multi-tenant compilation service.

    Clients submit {!request} envelopes (a tenant identity plus one
    {!Tvm_spec.Job_spec.t}); the daemon multiplexes the host domain
    pool and the simulated RPC device fleet across tenants with the
    weighted fair-share {!Scheduler}, executes each job (compile, tune
    or profile), and accounts per-tenant usage through labeled
    {!Tvm_obs.Metrics}.

    {2 Durability}

    With [~store] set, every piece of expensive state is flushed to
    the versioned on-disk {!Tvm_autotune.Store} incrementally, after
    each completed job:

    - the shared {!Tvm_autotune.Tuner.Db} trial log (so an interrupted
      tuning job resumes via [spec.replay] instead of re-measuring);
    - the compiler's tuned-configuration cache (so a repeat compile of
      an already-tuned workload runs zero trials);
    - per-template {!Tvm_autotune.Compile_cache} feature entries;
    - a [done] record per completed job: its fingerprint, charged
      service time and result summary.

    On startup the store is loaded back; a job whose fingerprint has a
    [done] record is not re-executed — its recorded service time is
    injected into the scheduler, so the restarted run's schedule (and
    every other job's latency) is byte-identical to an uninterrupted
    run. Corrupt or version-mismatched store blocks are skipped with a
    warning, never a crash.

    {2 Determinism}

    Everything is driven by the virtual clock: service times come from
    the simulated fleet's makespan, the compiler's trial counts and
    the executor's cost model — never the wall clock. A fixed request
    trace produces a byte-identical results file at any [-j], with or
    without a warm store. *)

type request = {
  rq_tenant : string;
  rq_weight : float;  (** fair-share weight (first request wins per tenant) *)
  rq_quota : int option;  (** max in-flight jobs for this tenant *)
  rq_priority : int;
  rq_submit_s : float;  (** arrival on the virtual clock *)
  rq_spec : Tvm_spec.Job_spec.t;
}

val request :
  ?tenant:string ->
  ?weight:float ->
  ?quota:int ->
  ?priority:int ->
  ?submit_s:float ->
  Tvm_spec.Job_spec.t ->
  request

(** Single-line JSON envelope:
    [{"tenant":…,"weight":…,"quota":…,"priority":…,"submit_s":…,"spec":{…}}].
    Floats print with full precision, so [of_string (to_string r)]
    round-trips and fingerprints are stable across processes. *)
val to_string : request -> string

(** Inverse of {!to_string}; missing fields take defaults (tenant
    ["default"], weight 1, no quota, priority 0, submit 0). Raises
    [Failure] on malformed JSON. *)
val of_string : string -> request

type outcome = {
  oc_lines : string list;
      (** one tab-separated line per job, sorted by job id — the
          deterministic results artifact ([cmp]-stable across
          restarts) *)
  oc_completions : request Scheduler.completion list;  (** dispatch order *)
  oc_executed : int;  (** jobs run live this process *)
  oc_restored : int;  (** jobs answered from the store's [done] records *)
  oc_failed : int;  (** jobs that exhausted their retry budget *)
}

(** Run a request trace to completion (or until [max_jobs] live jobs
    have finished — the kill switch the restart test uses).

    [slots] is the number of executor lanes (default 2). [store] names
    the durable store file: loaded on entry, flushed after every
    completed job. [retry] is the job-level reliability policy
    (default {!Tvm_rpc.Retry_policy.default}).

    Also records service metrics: [tvmd.queue_wait_s] and
    [tvmd.completion_s] histograms (p50/p90/p99 in the metrics dump),
    per-tenant [tvmd.tenant.<name>.jobs] / [.service_s] counters, and
    [tvmd.jobs.done] / [.failed] / [.restored]. *)
val serve :
  ?slots:int ->
  ?store:string ->
  ?max_jobs:int ->
  ?retry:Tvm_rpc.Retry_policy.t ->
  request list ->
  outcome
