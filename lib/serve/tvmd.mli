(** [tvmd] — the long-running multi-tenant compilation service.

    Clients submit {!request} envelopes (a tenant identity plus one
    {!Tvm_spec.Job_spec.t}); the daemon multiplexes the host domain
    pool and the simulated RPC device fleet across tenants with the
    weighted fair-share {!Scheduler}, executes each job (compile, tune
    or profile), and accounts per-tenant usage through labeled
    {!Tvm_obs.Metrics}.

    {2 Isolation}

    Tuning state is private by default: each tenant gets its own
    {!Tvm_autotune.Tuner.Db} trial log, tuned-configuration cache and
    per-template {!Tvm_autotune.Compile_cache} — one tenant's history
    never changes another's results or bills. An envelope with
    [share = true] opts into the communal [shared] scope instead (the
    paper's cross-workload history database). The scope is also the
    unit of concurrency: one scope's jobs execute sequentially in
    submission order, different scopes run on different lanes.

    {2 Concurrency}

    Execution is two-phase. Phase one fans the live jobs' isolation
    scopes out over up to [slots] lane domains
    ({!Tvm_par.Pool.run_lanes}) and memoizes each job's (service,
    summary); phase two replays the memoized results through the
    sequential virtual-clock scheduler on the coordinator — the PR 4
    replay-on-coordinator pattern — so the authoritative schedule,
    accounting and results file are byte-identical at any lane count
    and any [-j]. Within a lane, ops run with sequential host
    parallelism ([jobs = 1]): tvmd parallelizes across jobs, not
    within one. A retried job observes its one memoized execution on
    every attempt.

    {2 Durability}

    With [~store] set, every piece of expensive state is flushed to
    the versioned on-disk {!Tvm_autotune.Store} incrementally, after
    each completed job:

    - the scope's {!Tvm_autotune.Tuner.Db} trial log (so an
      interrupted tuning job resumes via [spec.replay] instead of
      re-measuring), as scope-tagged [db.scoped] blocks;
    - the scope's tuned-configuration cache ([tuned.scoped] blocks, so
      a repeat compile of an already-tuned workload runs zero trials);
    - per-template {!Tvm_autotune.Compile_cache} feature entries,
      tagged [<scope>|<template>];
    - a [done] record per completed job: its fingerprint, charged
      service time and result summary.

    On startup the store is loaded back; a job whose fingerprint has a
    [done] record is not re-executed — its recorded service time is
    injected into the scheduler, so the restarted run's schedule (and
    every other job's latency) is byte-identical to an uninterrupted
    run, and the record is re-appended as a freshness refresh (the
    superseded copies are what {!Tvm_autotune.Store.compact} drops,
    using {!store_rules}). Legacy untagged [db]/[tuned] blocks load
    into the [shared] scope. Corrupt or version-mismatched store
    blocks are skipped with a warning, never a crash.

    {2 Determinism}

    Everything is driven by the virtual clock: service times come from
    the simulated fleet's makespan, the compiler's trial counts and
    the executor's cost model — never the wall clock. A fixed request
    trace produces a byte-identical results file at any [-j], with or
    without a warm store. *)

type request = {
  rq_tenant : string;
  rq_weight : float;  (** fair-share weight (first request wins per tenant) *)
  rq_quota : int option;  (** max in-flight jobs for this tenant *)
  rq_priority : int;
  rq_submit_s : float;  (** arrival on the virtual clock *)
  rq_share : bool;  (** opt into the shared cross-tenant cache scope *)
  rq_spec : Tvm_spec.Job_spec.t;
}

val request :
  ?tenant:string ->
  ?weight:float ->
  ?quota:int ->
  ?priority:int ->
  ?submit_s:float ->
  ?share:bool ->
  Tvm_spec.Job_spec.t ->
  request

(** Single-line JSON envelope:
    [{"tenant":…,"weight":…,"quota":…,"priority":…,"submit_s":…,"share":…,"spec":{…}}].
    Floats print with full precision, so [of_string (to_string r)]
    round-trips and fingerprints are stable across processes. *)
val to_string : request -> string

(** Inverse of {!to_string}; missing fields take defaults (tenant
    ["default"], weight 1, no quota, priority 0, submit 0, share
    false). Raises [Failure] on malformed JSON. *)
val of_string : string -> request

(** {!Tvm_autotune.Store.compact} rules covering every kind a [tvmd]
    store contains: the standard rules plus last-wins [done] records
    keyed by fingerprint. *)
val store_rules : Tvm_autotune.Store.rule list

type outcome = {
  oc_lines : string list;
      (** one tab-separated line per job, sorted by job id — the
          deterministic results artifact ([cmp]-stable across
          restarts) *)
  oc_completions : request Scheduler.completion list;  (** dispatch order *)
  oc_executed : int;  (** jobs run live this process *)
  oc_restored : int;  (** jobs answered from the store's [done] records *)
  oc_failed : int;  (** jobs that exhausted their retry budget *)
}

(** Run a request trace to completion.

    [slots] is the number of executor lanes, both virtual (scheduler
    slots) and physical (phase-one lane domains; default 2). [store]
    names the durable store file: loaded on entry, flushed after every
    completed job. [max_jobs] is the kill switch the restart test
    uses: at most that many live (un-restored) jobs execute, taken in
    submission (id) order; the rest are abandoned without a results
    line. [retry] is the job-level reliability policy (default
    {!Tvm_rpc.Retry_policy.default}). [compact_above] compacts the
    store on entry when it exceeds that many bytes (never mid-run, so
    incremental flush counters stay honest).

    Also records service metrics: [tvmd.queue_wait_s] and
    [tvmd.completion_s] histograms (p50/p90/p99 in the metrics dump),
    per-tenant [tvmd.tenant.<name>.jobs] / [.service_s] counters, and
    [tvmd.jobs.done] / [.failed] / [.restored]. *)
val serve :
  ?slots:int ->
  ?store:string ->
  ?max_jobs:int ->
  ?retry:Tvm_rpc.Retry_policy.t ->
  ?compact_above:int ->
  request list ->
  outcome

(** Watch a spool directory and serve envelope files as they arrive —
    the streaming request source.

    Each scan picks up every regular file in [dir] (dotfiles, the
    [stop] file and subdirectories excluded), sorted by filename —
    deterministic ingestion order. A non-empty scan is one batch: the
    files' envelope lines (malformed lines are skipped with a warning)
    are served as one trace via {!serve}, [on_batch] receives the
    batch index and outcome, and the files are then moved to
    [dir/archive/]. The durable store carries state across batches, so
    a re-dropped envelope is answered from its [done] record.

    The loop exits when a file named [stop] exists in [dir] and a
    final scan finds no pending envelopes (graceful drain), when
    [stopped] returns true (a signal flag — the current batch still
    finishes), or after [max_scans] scans. Between empty scans it
    sleeps [poll_s] (default 0.05 s) of wall time — the only wall
    clock in the daemon; everything inside a batch stays virtual.
    Returns the number of batches served. *)
val serve_spool :
  ?slots:int ->
  ?store:string ->
  ?retry:Tvm_rpc.Retry_policy.t ->
  ?compact_above:int ->
  ?poll_s:float ->
  ?max_scans:int ->
  ?stopped:(unit -> bool) ->
  dir:string ->
  on_batch:(int -> outcome -> unit) ->
  unit ->
  int
