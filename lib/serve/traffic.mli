(** Open-loop serving traffic: deterministic per-tenant arrival
    processes driving {!Model_server}. Exponential inter-arrival gaps
    come from a splitmix-style mixer of (seed, tenant, arrival number)
    — the {!Tvm_rpc.Fault} seeding idiom — so a trace is a pure
    function of its parameters. *)

type tenant = {
  tf_name : string;
  tf_model : string;  (** model the tenant's requests target *)
  tf_rate_hz : float;  (** mean arrival rate (requests / virtual s) *)
  tf_slo_s : float;  (** per-request latency SLO *)
}

val tenant : ?rate_hz:float -> ?slo_s:float -> model:string -> string -> tenant

type request = {
  rq_id : int;  (** global arrival order; ties broken by tenant name *)
  rq_tenant : string;
  rq_model : string;
  rq_submit_s : float;  (** arrival on the virtual clock *)
  rq_slo_s : float;
}

(** Every tenant's arrivals over [0, horizon_s), merged submit-ordered
    with sequential ids. Deterministic in (seed, tenants, horizon). *)
val generate : ?seed:int -> horizon_s:float -> tenant list -> request list

(** Exact round-trip trace lines ([tvmc traffic] output /
    [tvmc serve-rt --trace] input). *)
val to_line : request -> string

val of_line : string -> request
val to_lines : request list -> string list
val of_lines : string list -> request list
