(* See tvmd.mli. *)

module Spec = Tvm_spec.Job_spec
module Sched = Scheduler
module Json = Tvm_obs.Json
module Metrics = Tvm_obs.Metrics
module Store = Tvm_autotune.Store
module Tuner = Tvm_autotune.Tuner
module Compile_cache = Tvm_autotune.Compile_cache
module Templates = Tvm_autotune.Templates
module Cfg_space = Tvm_autotune.Cfg_space
module Device_pool = Tvm_rpc.Device_pool
module Fleet = Tvm_rpc.Fleet
module Workloads = Tvm_models.Workloads
module Models = Tvm_models.Models
module Compiler = Tvm.Compiler
module Exec = Tvm_runtime.Graph_executor
module Par = Tvm_par.Pool
module Fig_e2e = Tvm_experiments.Fig_e2e

type request = {
  rq_tenant : string;
  rq_weight : float;
  rq_quota : int option;
  rq_priority : int;
  rq_submit_s : float;
  rq_share : bool;
  rq_spec : Spec.t;
}

let request ?(tenant = "default") ?(weight = 1.) ?quota ?(priority = 0)
    ?(submit_s = 0.) ?(share = false) spec =
  {
    rq_tenant = tenant;
    rq_weight = weight;
    rq_quota = quota;
    rq_priority = priority;
    rq_submit_s = submit_s;
    rq_share = share;
    rq_spec = spec;
  }

let to_string r =
  Json.to_string
    (Json.Obj
       [
         ("tenant", Json.Str r.rq_tenant);
         ("weight", Json.num r.rq_weight);
         ( "quota",
           match r.rq_quota with
           | Some q -> Json.num (float_of_int q)
           | None -> Json.Null );
         ("priority", Json.num (float_of_int r.rq_priority));
         ("submit_s", Json.num r.rq_submit_s);
         ("share", Json.Bool r.rq_share);
         ("spec", Spec.to_json r.rq_spec);
       ])

let of_string s =
  let j = Json.parse s in
  let num key d =
    match Option.bind (Json.member key j) Json.to_num_opt with
    | Some v -> v
    | None -> d
  in
  {
    rq_tenant =
      (match Json.member "tenant" j with
      | Some (Json.Str t) -> t
      | _ -> "default");
    rq_weight = num "weight" 1.;
    rq_quota =
      Option.map int_of_float
        (Option.bind (Json.member "quota" j) Json.to_num_opt);
    rq_priority = int_of_float (num "priority" 0.);
    rq_submit_s = num "submit_s" 0.;
    rq_share =
      (match Json.member "share" j with
      | Some (Json.Bool b) -> b
      | _ -> false);
    rq_spec =
      (match Json.member "spec" j with
      | Some sj -> Spec.of_json sj
      | None -> Spec.default);
  }

type outcome = {
  oc_lines : string list;
  oc_completions : request Sched.completion list;
  oc_executed : int;
  oc_restored : int;
  oc_failed : int;
}

(* ------------------------------------------------------------------ *)
(* Job identity and isolation scopes                                   *)
(* ------------------------------------------------------------------ *)

(* A job's fingerprint is its envelope rendered canonically (the spec
   JSON has a fixed field order, floats print bit-exactly) plus an
   occurrence index, so two byte-identical submissions are distinct
   jobs and each matches its own [done] record across a restart. *)
let fingerprints requests =
  let occ = Hashtbl.create 16 in
  Array.of_list
    (List.map
       (fun r ->
         let base =
           Printf.sprintf "%s|%d|%h|%b|%s" r.rq_tenant r.rq_priority
             r.rq_submit_s r.rq_share
             (Spec.to_string r.rq_spec)
         in
         let n = Option.value ~default:0 (Hashtbl.find_opt occ base) in
         Hashtbl.replace occ base (n + 1);
         Printf.sprintf "%s#%d" base n)
       requests)

(* Isolation scope: which Tuner.Db / tuned cache / compile caches a
   job reads and fills. Private by default — one scope per tenant —
   with the envelope's [share] flag opting into the cross-tenant
   shared scope (the paper's communal history database). The scope is
   also the unit of concurrency: jobs in one scope execute
   sequentially in submission (id) order, so state evolution inside a
   scope is independent of lane interleaving. *)
let shared_scope = "shared"
let scope_of r = if r.rq_share then shared_scope else "tenant:" ^ r.rq_tenant

(* [done] store records: fingerprint, charged service, attempts,
   result summary. Only first-attempt successes within the retry
   budget are recorded — anything else re-executes deterministically
   after a restart. A warm restart re-appends the records it restores
   (freshness refresh), so long-lived stores accumulate superseded
   copies for [Store.compact] to drop (last-wins per fingerprint). *)
let done_kind = "done"

let store_rules =
  { Store.rl_kind = done_kind; rl_scoped = false; rl_keep = Store.Last_per_key }
  :: Store.default_rules

let done_out fp service attempts summary =
  Printf.sprintf "%s\t%h\t%d\t%s" (String.escaped fp) service attempts
    (String.escaped summary)

let done_in line =
  match String.split_on_char '\t' line with
  | [ fp; service; attempts; summary ] -> (
      match float_of_string_opt service with
      | Some s ->
          ( Scanf.unescaped fp,
            (s, int_of_string attempts, Scanf.unescaped summary) )
      | None -> failwith ("bad done record: " ^ line))
  | _ -> failwith ("bad done record: " ^ line)

(* ------------------------------------------------------------------ *)
(* The ops                                                             *)
(* ------------------------------------------------------------------ *)

let network_of_name = function
  | "resnet18" -> Models.resnet18 ()
  | "mobilenet" -> Models.mobilenet ()
  | "lstm" -> Models.lstm_lm ()
  | "dqn" -> Models.dqn ()
  | "dcgan" -> Models.dcgan ()
  | s -> invalid_arg ("tvmd: unknown network " ^ s)

let target_of_name = function
  | "cuda" -> Tvm.Target.cuda ()
  | "arm" -> Tvm.Target.arm_cpu ()
  | "mali" -> Tvm.Target.mali ()
  | "llvm" -> Tvm.Target.llvm ()
  | s -> invalid_arg ("tvmd: unknown target " ^ s)

(* ------------------------------------------------------------------ *)
(* Per-scope state                                                     *)
(* ------------------------------------------------------------------ *)

type scope_state = {
  sc_scope : string;
  sc_db : Tuner.Db.t;
  mutable sc_db_hw : int;  (** records already flushed to the store *)
  sc_tuned : Compiler.tuned_cache;
  sc_flushed_sigs : (string, unit) Hashtbl.t;
  sc_caches : (string, Compile_cache.t * int ref) Hashtbl.t;
      (** template name → (compile cache, entries already saved) *)
}

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* ------------------------------------------------------------------ *)
(* The daemon loop                                                     *)
(* ------------------------------------------------------------------ *)

let serve ?(slots = 2) ?store ?max_jobs ?(retry = Tvm_rpc.Retry_policy.default)
    ?compact_above requests =
  (* Startup compaction: the store only ever shrinks between runs —
     never while incremental flush counters are live. *)
  (match (store, compact_above) with
  | Some path, Some threshold ->
      ignore
        (Store.compact ~rules:store_rules ~threshold_bytes:threshold path)
  | _ -> ());
  (* One mutex serializes every store access: lanes append finished
     state concurrently, and a reader between two appends always sees
     whole blocks. *)
  let store_mu = Mutex.create () in
  let done_map : (string, float * int * string) Hashtbl.t =
    Hashtbl.create 64
  in
  (match store with
  | None -> ()
  | Some path ->
      List.iter
        (fun b ->
          if b.Store.b_kind = done_kind then
            List.iter
              (fun line ->
                match done_in line with
                | fp, v -> Hashtbl.replace done_map fp v
                | exception e ->
                    Printf.eprintf "[tvm] store %s: skipping block: %s\n%!"
                      path (Printexc.to_string e);
                    Metrics.incr "cache.load_rejected")
              b.Store.b_records)
        (Store.load_blocks path));
  let scopes : (string, scope_state) Hashtbl.t = Hashtbl.create 8 in
  (* Warm start, per scope: replay the store into the scope's trial
     log and tuned cache. Bad blocks are skipped inside [Store]. The
     shared scope also reads the untagged legacy kinds. *)
  let get_scope scope =
    match Hashtbl.find_opt scopes scope with
    | Some st -> st
    | None ->
        let st =
          {
            sc_scope = scope;
            sc_db = Tuner.Db.create ();
            sc_db_hw = 0;
            sc_tuned = Compiler.create_tuned_cache ();
            sc_flushed_sigs = Hashtbl.create 16;
            sc_caches = Hashtbl.create 8;
          }
        in
        (match store with
        | None -> ()
        | Some path ->
            let legacy =
              if scope = shared_scope then Store.load_db path ~into:st.sc_db
              else 0
            in
            st.sc_db_hw <-
              legacy + Store.load_db_scope path ~scope ~into:st.sc_db;
            Compiler.restore_tuned ~cache:st.sc_tuned
              (Store.load_tuned_scope path ~scope
              @ if scope = shared_scope then Store.load_tuned path else []));
        List.iter
          (fun (s, _, _) -> Hashtbl.replace st.sc_flushed_sigs s ())
          (Compiler.tuned_entries ~cache:st.sc_tuned ());
        Hashtbl.add scopes scope st;
        st
  in
  (* Caller holds [store_mu]. *)
  let get_cache st name =
    match Hashtbl.find_opt st.sc_caches name with
    | Some (c, _) -> c
    | None ->
        let c = Compile_cache.create () in
        let n =
          match store with
          | Some path ->
              Store.load_cache path ~scope:(st.sc_scope ^ "|" ^ name) ~into:c
          | None -> 0
        in
        Hashtbl.add st.sc_caches name (c, ref n);
        c
  in
  (* Caller holds [store_mu]. *)
  let flush_scope st =
    match store with
    | None -> ()
    | Some path ->
        st.sc_db_hw <-
          Store.flush_db_scope path ~scope:st.sc_scope ~from:st.sc_db_hw
            st.sc_db;
        let delta =
          List.filter
            (fun (s, _, _) -> not (Hashtbl.mem st.sc_flushed_sigs s))
            (Compiler.tuned_entries ~cache:st.sc_tuned ())
        in
        Store.append_tuned_scope path ~scope:st.sc_scope delta;
        List.iter
          (fun (s, _, _) -> Hashtbl.replace st.sc_flushed_sigs s ())
          delta;
        List.iter
          (fun name ->
            let c, saved = Hashtbl.find st.sc_caches name in
            saved :=
              Store.save_cache path
                ~scope:(st.sc_scope ^ "|" ^ name)
                ~from:!saved c)
          (List.sort compare
             (Hashtbl.fold (fun k _ acc -> k :: acc) st.sc_caches []))
  in
  (* One fleet catalog per distinct roster configuration, shared by
     every lane: a catalog is an immutable device roster + policies,
     and each tuning job runs its own session of it salted by the job
     id — concurrent lanes share the fleet without sharing schedule
     state, and a job's results don't depend on which lane ran it. *)
  let fleet_mu = Mutex.create () in
  let fleet_catalogs : (string, Fleet.catalog) Hashtbl.t = Hashtbl.create 4 in
  let fleet_catalog (spec : Spec.t) =
    let key =
      Printf.sprintf "%s|%d|%d|%b|%h|%d|%d|%h|%s" spec.Spec.target
        spec.Spec.fleet spec.Spec.shards spec.Spec.speculate
        spec.Spec.fault_rate spec.Spec.seed spec.Spec.max_retries
        spec.Spec.timeout_s
        (match spec.Spec.straggler with
        | Some i -> string_of_int i
        | None -> "-")
    in
    locked fleet_mu (fun () ->
        match Hashtbl.find_opt fleet_catalogs key with
        | Some c -> c
        | None ->
            let c = Fleet.catalog_of_spec spec in
            Hashtbl.add fleet_catalogs key c;
            c)
  in
  (* Inside a lane every op runs with sequential host parallelism
     ([jobs = 1]): tvmd parallelizes across jobs, not within one, and
     the determinism contract makes [-j] invisible in results. [salt]
     (the scheduler job id) decorrelates fault sequences between jobs
     sharing a fleet catalog. *)
  let run_tune st ~salt (spec : Spec.t) =
    let spec = { spec with Spec.replay = true; jobs = 1 } in
    let w = Workloads.find spec.Spec.workload in
    let out = Fig_e2e.conv_tensor w in
    let name = "tvmd:" ^ spec.Spec.workload ^ "@" ^ spec.Spec.target in
    let tpl = Templates.gpu_flat ~name out in
    let spec, measure, measure_batch, makespan =
      if spec.Spec.fleet > 0 then begin
        let f = Fleet.session ~salt (fleet_catalog spec) in
        let kind = Device_pool.kind_of_target spec.Spec.target in
        let spec =
          {
            spec with
            Spec.batch = Fleet.suggested_batch f ~kind ~base:spec.Spec.batch;
          }
        in
        ( spec,
          Fleet.measure_fn f ~kind,
          Fleet.batch_measure_fn ~par:Par.sequential f ~kind,
          fun () -> Fleet.makespan f )
      end
      else begin
        let dpool = Device_pool.of_spec spec in
        ( spec,
          Device_pool.measure_fn dpool ~kind_pred:(fun _ -> true),
          Device_pool.batch_measure_fn ~par:Par.sequential dpool
            ~kind_pred:(fun _ -> true),
          fun () -> Device_pool.makespan dpool )
      end
    in
    let cache = locked store_mu (fun () -> get_cache st name) in
    let res =
      Tuner.tune ~spec ~db:st.sc_db ~cache ~measure_batch
        ~method_:(Tuner.method_of_name spec.Spec.method_name)
        ~measure ~n_trials:spec.Spec.trials tpl
    in
    ( makespan (),
      Printf.sprintf "best %h s with %s" res.Tuner.best_time
        (Cfg_space.to_string res.Tuner.best_config) )
  in
  let run_compile st (spec : Spec.t) =
    let graph = network_of_name spec.Spec.workload in
    let tgt = target_of_name spec.Spec.target in
    let r =
      Compiler.build ~spec:{ spec with Spec.jobs = 1 } ~db:st.sc_db
        ~tuned:st.sc_tuned graph tgt
    in
    let groups = List.length r.Compiler.groups in
    ( (0.02 *. float_of_int groups)
      +. (0.1 *. float_of_int r.Compiler.tuning_trials_run),
      Printf.sprintf "%d groups, %d trials" groups r.Compiler.tuning_trials_run
    )
  in
  let run_profile st (spec : Spec.t) =
    let graph = network_of_name spec.Spec.workload in
    let tgt = target_of_name spec.Spec.target in
    let _r, exec =
      Compiler.build_executor ~spec:{ spec with Spec.jobs = 1 } ~db:st.sc_db
        ~tuned:st.sc_tuned graph tgt
    in
    Exec.set_params exec (Models.random_params graph);
    List.iter (fun (n, v) -> Exec.set_input exec n v) (Models.random_inputs graph);
    ignore (Exec.profile_run ~mode:`Reference exec);
    let t = Exec.estimated_time_s exec in
    (0.05 +. t, Printf.sprintf "estimated %h s/run" t)
  in
  let fps = fingerprints requests in
  let jobs =
    List.mapi
      (fun i r ->
        {
          Sched.jb_id = i;
          jb_tenant = r.rq_tenant;
          jb_priority = r.rq_priority;
          jb_submit_s = r.rq_submit_s;
          jb_payload = r;
        })
      requests
  in
  (* ---------------- Phase 1: concurrent lane execution ------------ *)
  (* Live jobs (no [done] record) partition into isolation scopes;
     each scope's jobs run sequentially in id order on one lane at a
     time, and scopes fan out over up to [slots] lane domains. The
     kill switch caps how many live jobs run, counted in global id
     order — an id-prefix per scope, so a partial run's state is a
     prefix of the full run's. *)
  let live =
    List.filter (fun j -> not (Hashtbl.mem done_map fps.(j.Sched.jb_id))) jobs
  in
  let capped =
    match max_jobs with
    | Some n -> List.filteri (fun i _ -> i < n) live
    | None -> live
  in
  let capped_ids = Hashtbl.create 64 in
  List.iter (fun j -> Hashtbl.replace capped_ids j.Sched.jb_id ()) capped;
  let streams =
    let by_scope = Hashtbl.create 8 in
    let scope_order = ref [] in
    List.iter
      (fun j ->
        let scope = scope_of j.Sched.jb_payload in
        match Hashtbl.find_opt by_scope scope with
        | Some acc -> acc := j :: !acc
        | None ->
            Hashtbl.add by_scope scope (ref [ j ]);
            scope_order := scope :: !scope_order)
      capped;
    List.sort compare !scope_order
    |> List.map (fun scope -> (scope, List.rev !(Hashtbl.find by_scope scope)))
    |> Array.of_list
  in
  (* Scope states are created (and warm-loaded) on the coordinator;
     lanes only touch their own stream's scope. *)
  Array.iter (fun (scope, _) -> ignore (get_scope scope)) streams;
  let memo : (int, (float * string, string) result) Hashtbl.t =
    Hashtbl.create 64
  in
  let memo_mu = Mutex.create () in
  let lanes = Par.create ~domains:(max 1 slots) () in
  ignore
    (Par.run_lanes lanes
       (fun (scope, stream) ->
         let st = get_scope scope in
         List.iter
           (fun (j : request Sched.job) ->
             let fp = fps.(j.Sched.jb_id) in
             let spec = j.Sched.jb_payload.rq_spec in
             let r =
               match
                 match spec.Spec.op with
                 | Spec.Tune -> run_tune st ~salt:j.Sched.jb_id spec
                 | Spec.Compile -> run_compile st spec
                 | Spec.Profile -> run_profile st spec
               with
               | service, summary ->
                   if service <= retry.Tvm_rpc.Retry_policy.timeout_s then
                     locked store_mu (fun () ->
                         flush_scope st;
                         match store with
                         | Some path ->
                             Store.append_block path ~kind:done_kind
                               [ done_out fp service 1 summary ]
                         | None -> ());
                   Ok (service, summary)
               | exception e -> Error (Printexc.to_string e)
             in
             locked memo_mu (fun () -> Hashtbl.replace memo j.Sched.jb_id r))
           stream)
       streams);
  (* ---------------- Phase 2: authoritative schedule --------------- *)
  (* The virtual-clock weighted-fair-share schedule replays every
     result on the coordinator (the PR 4 replay pattern): dispatch
     order, per-tenant accounting and the results file are computed
     sequentially from memoized services, so they are byte-identical
     at any lane count. Every attempt of a job observes its one
     memoized execution. *)
  let tenants =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun r ->
        if Hashtbl.mem seen r.rq_tenant then None
        else begin
          Hashtbl.add seen r.rq_tenant ();
          Some
            {
              Sched.tn_name = r.rq_tenant;
              tn_weight = r.rq_weight;
              tn_quota = r.rq_quota;
            }
        end)
      requests
  in
  let sched_jobs =
    List.filter
      (fun j ->
        Hashtbl.mem done_map fps.(j.Sched.jb_id)
        || Hashtbl.mem capped_ids j.Sched.jb_id)
      jobs
  in
  let summaries : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let restored = ref 0 in
  let execute (job : request Sched.job) ~attempt =
    let fp = fps.(job.Sched.jb_id) in
    match Hashtbl.find_opt done_map fp with
    | Some (service, attempts, summary) ->
        (* Answered from the store: inject the recorded service time so
           the schedule matches an uninterrupted run byte for byte, and
           refresh the record so compaction sees it as current. *)
        Hashtbl.replace summaries job.Sched.jb_id summary;
        if attempt = 0 then begin
          incr restored;
          match store with
          | Some path ->
              Store.append_block path ~kind:done_kind
                [ done_out fp service attempts summary ]
          | None -> ()
        end;
        Ok service
    | None -> (
        ignore attempt;
        match Hashtbl.find_opt memo job.Sched.jb_id with
        | Some (Ok (service, summary)) ->
            Hashtbl.replace summaries job.Sched.jb_id summary;
            Ok service
        | Some (Error e) -> Error e
        | None -> assert false (* capped jobs are always memoized *))
  in
  let completions = Sched.run ~slots ~retry ~tenants ~execute sched_jobs in
  (* Service accounting: queue-wait and completion latency histograms
     (p50/p90/p99 in the metrics dump) plus per-tenant usage. *)
  let failed = ref 0 in
  List.iter
    (fun (c : request Sched.completion) ->
      let j = c.Sched.cp_job in
      Metrics.observe "tvmd.queue_wait_s" c.Sched.cp_queue_wait_s;
      Metrics.observe "tvmd.completion_s"
        (c.Sched.cp_finish_s -. j.Sched.jb_submit_s);
      Metrics.incr ("tvmd.tenant." ^ j.Sched.jb_tenant ^ ".jobs");
      Metrics.incr
        ~by:c.Sched.cp_service_s
        ("tvmd.tenant." ^ j.Sched.jb_tenant ^ ".service_s");
      match c.Sched.cp_error with
      | None -> Metrics.incr "tvmd.jobs.done"
      | Some _ ->
          incr failed;
          Metrics.incr "tvmd.jobs.failed")
    completions;
  Metrics.incr ~by:(float_of_int !restored) "tvmd.jobs.restored";
  let lines =
    List.map
      (fun (c : request Sched.completion) ->
        let j = c.Sched.cp_job in
        let spec = j.Sched.jb_payload.rq_spec in
        let status =
          match c.Sched.cp_error with None -> "ok" | Some _ -> "failed"
        in
        let summary =
          match (Hashtbl.find_opt summaries j.Sched.jb_id, c.Sched.cp_error) with
          | Some s, None -> s
          | _, Some e -> e
          | None, None -> ""
        in
        Printf.sprintf "%d\t%s\t%s\t%s\t%s\t%d\t%h\t%h\t%h\t%h\t%h\t%d\t%s\t%s"
          j.Sched.jb_id j.Sched.jb_tenant
          (Spec.op_name spec.Spec.op)
          spec.Spec.workload spec.Spec.target j.Sched.jb_priority
          j.Sched.jb_submit_s c.Sched.cp_start_s c.Sched.cp_queue_wait_s
          c.Sched.cp_service_s c.Sched.cp_finish_s c.Sched.cp_attempts status
          (String.escaped summary))
      (List.sort
         (fun (a : request Sched.completion) b ->
           compare a.Sched.cp_job.Sched.jb_id b.Sched.cp_job.Sched.jb_id)
         completions)
  in
  {
    oc_lines = lines;
    oc_completions = completions;
    oc_executed = List.length capped;
    oc_restored = !restored;
    oc_failed = !failed;
  }

(* ------------------------------------------------------------------ *)
(* The spool                                                           *)
(* ------------------------------------------------------------------ *)

let stop_file = "stop"

let serve_spool ?(slots = 2) ?store ?retry ?compact_above ?(poll_s = 0.05)
    ?max_scans ?(stopped = fun () -> false) ~dir ~on_batch () =
  let archive = Filename.concat dir "archive" in
  if not (Sys.file_exists archive) then Unix.mkdir archive 0o755;
  (* Deterministic ingestion: one scan's envelope files, sorted by
     filename, are one batch — served in that order, then archived. *)
  let scan () =
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter (fun f ->
           f <> stop_file
           && (String.length f = 0 || f.[0] <> '.')
           && not (Sys.is_directory (Filename.concat dir f)))
  in
  let batches = ref 0 and scans = ref 0 in
  let running = ref true in
  while !running do
    incr scans;
    let files = scan () in
    if files <> [] then begin
      let requests =
        List.concat_map
          (fun f ->
            let path = Filename.concat dir f in
            In_channel.with_open_text path In_channel.input_lines
            |> List.filter_map (fun line ->
                   let line = String.trim line in
                   if line = "" then None
                   else
                     match of_string line with
                     | r -> Some r
                     | exception e ->
                         Printf.eprintf
                           "[tvm] spool %s: skipping envelope: %s\n%!" f
                           (Printexc.to_string e);
                         Metrics.incr "tvmd.spool.rejected";
                         None))
          files
      in
      if requests <> [] then begin
        let oc = serve ~slots ?store ?retry ?compact_above requests in
        on_batch !batches oc;
        incr batches
      end;
      (* Served (or empty): consume — the store's [done] records are
         the durable receipt, the archive keeps the envelope bytes. *)
      List.iter
        (fun f ->
          Sys.rename (Filename.concat dir f) (Filename.concat archive f))
        files;
      Metrics.incr ~by:(float_of_int (List.length files)) "tvmd.spool.files"
    end;
    let drained =
      Sys.file_exists (Filename.concat dir stop_file) && scan () = []
    in
    if
      stopped () || drained
      || match max_scans with Some n -> !scans >= n | None -> false
    then running := false
    else if files = [] then Unix.sleepf poll_s
  done;
  !batches
