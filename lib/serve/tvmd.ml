(* See tvmd.mli. *)

module Spec = Tvm_spec.Job_spec
module Sched = Scheduler
module Json = Tvm_obs.Json
module Metrics = Tvm_obs.Metrics
module Store = Tvm_autotune.Store
module Tuner = Tvm_autotune.Tuner
module Compile_cache = Tvm_autotune.Compile_cache
module Templates = Tvm_autotune.Templates
module Cfg_space = Tvm_autotune.Cfg_space
module Device_pool = Tvm_rpc.Device_pool
module Workloads = Tvm_models.Workloads
module Models = Tvm_models.Models
module Compiler = Tvm.Compiler
module Exec = Tvm_runtime.Graph_executor
module Par = Tvm_par.Pool
module Fig_e2e = Tvm_experiments.Fig_e2e

type request = {
  rq_tenant : string;
  rq_weight : float;
  rq_quota : int option;
  rq_priority : int;
  rq_submit_s : float;
  rq_spec : Spec.t;
}

let request ?(tenant = "default") ?(weight = 1.) ?quota ?(priority = 0)
    ?(submit_s = 0.) spec =
  {
    rq_tenant = tenant;
    rq_weight = weight;
    rq_quota = quota;
    rq_priority = priority;
    rq_submit_s = submit_s;
    rq_spec = spec;
  }

let to_string r =
  Json.to_string
    (Json.Obj
       [
         ("tenant", Json.Str r.rq_tenant);
         ("weight", Json.num r.rq_weight);
         ( "quota",
           match r.rq_quota with
           | Some q -> Json.num (float_of_int q)
           | None -> Json.Null );
         ("priority", Json.num (float_of_int r.rq_priority));
         ("submit_s", Json.num r.rq_submit_s);
         ("spec", Spec.to_json r.rq_spec);
       ])

let of_string s =
  let j = Json.parse s in
  let num key d =
    match Option.bind (Json.member key j) Json.to_num_opt with
    | Some v -> v
    | None -> d
  in
  {
    rq_tenant =
      (match Json.member "tenant" j with
      | Some (Json.Str t) -> t
      | _ -> "default");
    rq_weight = num "weight" 1.;
    rq_quota =
      Option.map int_of_float
        (Option.bind (Json.member "quota" j) Json.to_num_opt);
    rq_priority = int_of_float (num "priority" 0.);
    rq_submit_s = num "submit_s" 0.;
    rq_spec =
      (match Json.member "spec" j with
      | Some sj -> Spec.of_json sj
      | None -> Spec.default);
  }

type outcome = {
  oc_lines : string list;
  oc_completions : request Sched.completion list;
  oc_executed : int;
  oc_restored : int;
  oc_failed : int;
}

(* ------------------------------------------------------------------ *)
(* Job identity                                                        *)
(* ------------------------------------------------------------------ *)

(* A job's fingerprint is its envelope rendered canonically (the spec
   JSON has a fixed field order, floats print bit-exactly) plus an
   occurrence index, so two byte-identical submissions are distinct
   jobs and each matches its own [done] record across a restart. *)
let fingerprints requests =
  let occ = Hashtbl.create 16 in
  Array.of_list
    (List.map
       (fun r ->
         let base =
           Printf.sprintf "%s|%d|%h|%s" r.rq_tenant r.rq_priority r.rq_submit_s
             (Spec.to_string r.rq_spec)
         in
         let n = Option.value ~default:0 (Hashtbl.find_opt occ base) in
         Hashtbl.replace occ base (n + 1);
         Printf.sprintf "%s#%d" base n)
       requests)

(* [done] store records: fingerprint, charged service, attempts,
   result summary. Only first-attempt successes within the retry
   budget are recorded — anything else re-executes deterministically
   after a restart. *)
let done_kind = "done"

let done_out fp service attempts summary =
  Printf.sprintf "%s\t%h\t%d\t%s" (String.escaped fp) service attempts
    (String.escaped summary)

let done_in line =
  match String.split_on_char '\t' line with
  | [ fp; service; attempts; summary ] -> (
      match float_of_string_opt service with
      | Some s ->
          ( Scanf.unescaped fp,
            (s, int_of_string attempts, Scanf.unescaped summary) )
      | None -> failwith ("bad done record: " ^ line))
  | _ -> failwith ("bad done record: " ^ line)

(* ------------------------------------------------------------------ *)
(* The ops                                                             *)
(* ------------------------------------------------------------------ *)

let network_of_name = function
  | "resnet18" -> Models.resnet18 ()
  | "mobilenet" -> Models.mobilenet ()
  | "lstm" -> Models.lstm_lm ()
  | "dqn" -> Models.dqn ()
  | "dcgan" -> Models.dcgan ()
  | s -> invalid_arg ("tvmd: unknown network " ^ s)

let target_of_name = function
  | "cuda" -> Tvm.Target.cuda ()
  | "arm" -> Tvm.Target.arm_cpu ()
  | "mali" -> Tvm.Target.mali ()
  | "llvm" -> Tvm.Target.llvm ()
  | s -> invalid_arg ("tvmd: unknown target " ^ s)

(* ------------------------------------------------------------------ *)
(* The daemon loop                                                     *)
(* ------------------------------------------------------------------ *)

let serve ?(slots = 2) ?store ?max_jobs ?(retry = Tvm_rpc.Retry_policy.default)
    requests =
  let db = Tuner.Db.create () in
  let db_hw = ref 0 in
  let done_map : (string, float * int * string) Hashtbl.t =
    Hashtbl.create 64
  in
  let caches : (string, Compile_cache.t * int ref) Hashtbl.t =
    Hashtbl.create 8
  in
  (* Warm start: replay the store into the trial log, the tuned cache
     and the done-list. Bad blocks are skipped inside [Store]. *)
  (match store with
  | None -> ()
  | Some path ->
      db_hw := Store.load_db path ~into:db;
      Compiler.restore_tuned (Store.load_tuned path);
      List.iter
        (fun b ->
          if b.Store.b_kind = done_kind then
            List.iter
              (fun line ->
                match done_in line with
                | fp, v -> Hashtbl.replace done_map fp v
                | exception e ->
                    Printf.eprintf "[tvm] store %s: skipping block: %s\n%!"
                      path (Printexc.to_string e);
                    Metrics.incr "cache.load_rejected")
              b.Store.b_records)
        (Store.load_blocks path));
  (* Tuned entries already present (restored above, or tuned earlier
     in this process) never need re-flushing. *)
  let flushed_sigs = Hashtbl.create 64 in
  List.iter
    (fun (s, _, _) -> Hashtbl.replace flushed_sigs s ())
    (Compiler.tuned_entries ());
  let get_cache scope =
    match Hashtbl.find_opt caches scope with
    | Some (c, _) -> c
    | None ->
        let c = Compile_cache.create () in
        let n =
          match store with
          | Some path -> Store.load_cache path ~scope ~into:c
          | None -> 0
        in
        Hashtbl.add caches scope (c, ref n);
        c
  in
  let flush_state () =
    match store with
    | None -> ()
    | Some path ->
        db_hw := Store.flush_db path ~from:!db_hw db;
        let delta =
          List.filter
            (fun (s, _, _) -> not (Hashtbl.mem flushed_sigs s))
            (Compiler.tuned_entries ())
        in
        Store.append_tuned path delta;
        List.iter (fun (s, _, _) -> Hashtbl.replace flushed_sigs s ()) delta;
        List.iter
          (fun scope ->
            let c, saved = Hashtbl.find caches scope in
            saved := Store.save_cache path ~scope ~from:!saved c)
          (List.sort compare
             (Hashtbl.fold (fun k _ acc -> k :: acc) caches []))
  in
  (* Host domains are shared across every tuning job: one pool sized
     for the widest request. -j never changes results, only speed. *)
  let par =
    lazy
      (Par.create
         ~domains:
           (List.fold_left
              (fun acc r -> max acc r.rq_spec.Spec.jobs)
              1 requests)
         ())
  in
  let run_tune (spec : Spec.t) =
    let w = Workloads.find spec.Spec.workload in
    let out = Fig_e2e.conv_tensor w in
    let name = "tvmd:" ^ spec.Spec.workload ^ "@" ^ spec.Spec.target in
    let tpl = Templates.gpu_flat ~name out in
    let dpool = Device_pool.of_spec spec in
    let measure = Device_pool.measure_fn dpool ~kind_pred:(fun _ -> true) in
    let measure_batch =
      Device_pool.batch_measure_fn ~par:(Lazy.force par) dpool
        ~kind_pred:(fun _ -> true)
    in
    let res =
      Tuner.tune
        ~spec:{ spec with Spec.replay = true }
        ~db ~cache:(get_cache name) ~measure_batch
        ~method_:(Tuner.method_of_name spec.Spec.method_name)
        ~measure ~n_trials:spec.Spec.trials tpl
    in
    ( Device_pool.makespan dpool,
      Printf.sprintf "best %h s with %s" res.Tuner.best_time
        (Cfg_space.to_string res.Tuner.best_config) )
  in
  let run_compile (spec : Spec.t) =
    let graph = network_of_name spec.Spec.workload in
    let tgt = target_of_name spec.Spec.target in
    let r = Compiler.build ~spec ~db graph tgt in
    let groups = List.length r.Compiler.groups in
    ( (0.02 *. float_of_int groups)
      +. (0.1 *. float_of_int r.Compiler.tuning_trials_run),
      Printf.sprintf "%d groups, %d trials" groups r.Compiler.tuning_trials_run
    )
  in
  let run_profile (spec : Spec.t) =
    let graph = network_of_name spec.Spec.workload in
    let tgt = target_of_name spec.Spec.target in
    let _r, exec = Compiler.build_executor ~spec ~db graph tgt in
    Exec.set_params exec (Models.random_params graph);
    List.iter (fun (n, v) -> Exec.set_input exec n v) (Models.random_inputs graph);
    ignore (Exec.profile_run ~mode:`Reference exec);
    let t = Exec.estimated_time_s exec in
    (0.05 +. t, Printf.sprintf "estimated %h s/run" t)
  in
  let fps = fingerprints requests in
  let summaries : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let executed = ref 0 and restored = ref 0 and live_done = ref 0 in
  let execute (job : request Sched.job) ~attempt =
    let fp = fps.(job.Sched.jb_id) in
    match Hashtbl.find_opt done_map fp with
    | Some (service, _attempts, summary) ->
        (* Answered from the store: inject the recorded service time so
           the schedule matches an uninterrupted run byte for byte. *)
        Hashtbl.replace summaries job.Sched.jb_id summary;
        if attempt = 0 then incr restored;
        Ok service
    | None ->
        if attempt = 0 then incr executed;
        let spec = job.Sched.jb_payload.rq_spec in
        let service, summary =
          match spec.Spec.op with
          | Spec.Tune -> run_tune spec
          | Spec.Compile -> run_compile spec
          | Spec.Profile -> run_profile spec
        in
        Hashtbl.replace summaries job.Sched.jb_id summary;
        if attempt = 0 && service <= retry.Tvm_rpc.Retry_policy.timeout_s
        then begin
          flush_state ();
          (match store with
          | Some path ->
              Store.append_block path ~kind:done_kind
                [ done_out fp service 1 summary ]
          | None -> ());
          incr live_done
        end;
        Ok service
  in
  let tenants =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun r ->
        if Hashtbl.mem seen r.rq_tenant then None
        else begin
          Hashtbl.add seen r.rq_tenant ();
          Some
            {
              Sched.tn_name = r.rq_tenant;
              tn_weight = r.rq_weight;
              tn_quota = r.rq_quota;
            }
        end)
      requests
  in
  let jobs =
    List.mapi
      (fun i r ->
        {
          Sched.jb_id = i;
          jb_tenant = r.rq_tenant;
          jb_priority = r.rq_priority;
          jb_submit_s = r.rq_submit_s;
          jb_payload = r;
        })
      requests
  in
  let stop () =
    match max_jobs with Some n -> !live_done >= n | None -> false
  in
  let completions = Sched.run ~slots ~retry ~stop ~tenants ~execute jobs in
  (* Service accounting: queue-wait and completion latency histograms
     (p50/p90/p99 in the metrics dump) plus per-tenant usage. *)
  let failed = ref 0 in
  List.iter
    (fun (c : request Sched.completion) ->
      let j = c.Sched.cp_job in
      Metrics.observe "tvmd.queue_wait_s" c.Sched.cp_queue_wait_s;
      Metrics.observe "tvmd.completion_s"
        (c.Sched.cp_finish_s -. j.Sched.jb_submit_s);
      Metrics.incr ("tvmd.tenant." ^ j.Sched.jb_tenant ^ ".jobs");
      Metrics.incr
        ~by:c.Sched.cp_service_s
        ("tvmd.tenant." ^ j.Sched.jb_tenant ^ ".service_s");
      match c.Sched.cp_error with
      | None -> Metrics.incr "tvmd.jobs.done"
      | Some _ ->
          incr failed;
          Metrics.incr "tvmd.jobs.failed")
    completions;
  Metrics.incr ~by:(float_of_int !restored) "tvmd.jobs.restored";
  let lines =
    List.map
      (fun (c : request Sched.completion) ->
        let j = c.Sched.cp_job in
        let spec = j.Sched.jb_payload.rq_spec in
        let status =
          match c.Sched.cp_error with None -> "ok" | Some _ -> "failed"
        in
        let summary =
          match (Hashtbl.find_opt summaries j.Sched.jb_id, c.Sched.cp_error) with
          | Some s, None -> s
          | _, Some e -> e
          | None, None -> ""
        in
        Printf.sprintf "%d\t%s\t%s\t%s\t%s\t%d\t%h\t%h\t%h\t%h\t%h\t%d\t%s\t%s"
          j.Sched.jb_id j.Sched.jb_tenant
          (Spec.op_name spec.Spec.op)
          spec.Spec.workload spec.Spec.target j.Sched.jb_priority
          j.Sched.jb_submit_s c.Sched.cp_start_s c.Sched.cp_queue_wait_s
          c.Sched.cp_service_s c.Sched.cp_finish_s c.Sched.cp_attempts status
          (String.escaped summary))
      (List.sort
         (fun (a : request Sched.completion) b ->
           compare a.Sched.cp_job.Sched.jb_id b.Sched.cp_job.Sched.jb_id)
         completions)
  in
  {
    oc_lines = lines;
    oc_completions = completions;
    oc_executed = !executed;
    oc_restored = !restored;
    oc_failed = !failed;
  }
