(* See scheduler.mli. *)

module Retry_policy = Tvm_rpc.Retry_policy

type tenant = {
  tn_name : string;
  tn_weight : float;
  tn_quota : int option;
}

let tenant ?(weight = 1.) ?quota name =
  { tn_name = name; tn_weight = weight; tn_quota = quota }

type 'a job = {
  jb_id : int;
  jb_tenant : string;
  jb_priority : int;
  jb_submit_s : float;
  jb_payload : 'a;
}

type 'a completion = {
  cp_job : 'a job;
  cp_slot : int;
  cp_attempts : int;
  cp_start_s : float;
  cp_service_s : float;
  cp_finish_s : float;
  cp_queue_wait_s : float;
  cp_error : string option;
}

(* A pairing heap: O(1) insert/find-min, amortized O(log n)
   delete-min. Keys are (-priority, id) pairs — unique because ids
   are — so the min is the dispatch-ordered head of a tenant's ready
   queue and ties cannot arise. *)
module Pheap = struct
  type 'a t = Empty | Node of (int * int) * 'a * 'a t list

  let empty = Empty
  let is_empty = function Empty -> true | _ -> false

  let merge a b =
    match (a, b) with
    | Empty, t | t, Empty -> t
    | Node (ka, va, ca), Node (kb, vb, cb) ->
        if ka <= kb then Node (ka, va, b :: ca) else Node (kb, vb, a :: cb)

  let insert k v t = merge (Node (k, v, [])) t

  let rec merge_pairs = function
    | [] -> Empty
    | [ t ] -> t
    | a :: b :: rest -> merge (merge a b) (merge_pairs rest)

  let pop = function
    | Empty -> None
    | Node (_, v, cs) -> Some (v, merge_pairs cs)
end

(* Per-tenant accounting while a trace runs. Pending jobs are indexed
   per tenant — [ts_future] sorted by arrival, [ts_ready] a heap in
   dispatch order — so a dispatch never rescans the whole backlog, and
   [ts_running] is pruned of finished entries at every step so a
   long-lived daemon's state stays bounded by what is actually in
   flight. *)
type 'a tenant_state = {
  ts_cfg : tenant;
  mutable ts_vwork : float;  (** accumulated service / weight *)
  mutable ts_running : float list;  (** finish times of in-flight jobs *)
  mutable ts_future : 'a job list;  (** not yet arrived; submit asc, id asc *)
  mutable ts_ready : 'a job Pheap.t;  (** arrived; (-priority, id) heap *)
}

(* One job's attempt loop: service and backoff both charge the virtual
   clock, mirroring what the device pool does for measurements. An
   attempt whose service exceeds the per-job budget is a timeout (its
   charge is capped at the budget — the job would have been cut off). *)
(* Virtual-clock cost of an attempt that died before reporting one (a
   crash has no intrinsic duration; a timeout charges the budget). *)
let crash_cost_s = 1.0

let attempt_loop ~(retry : Retry_policy.t) ~execute job =
  let budget = retry.Retry_policy.timeout_s in
  let rec go attempt charged =
    let outcome =
      try execute job ~attempt with e -> Error (Printexc.to_string e)
    in
    let outcome, cost =
      match outcome with
      | Ok s when s > budget ->
          ( Error (Printf.sprintf "timeout after %gs (budget %gs)" s budget),
            budget )
      | Ok s -> (Ok s, s)
      | Error e -> (Error e, Float.min budget crash_cost_s)
    in
    let charged = charged +. cost in
    match outcome with
    | Ok _ -> (attempt + 1, charged, None)
    | Error e ->
        if attempt < retry.Retry_policy.max_retries then
          go (attempt + 1) (charged +. Retry_policy.backoff_s retry ~attempt)
        else (attempt + 1, charged, Some e)
  in
  go 0 0.

let run ?(slots = 1) ?(retry = Retry_policy.default) ?(stop = fun () -> false)
    ~(tenants : tenant list) ~execute (jobs : 'a job list) :
    'a completion list =
  let slots = max 1 slots in
  let by_name : (string, 'a tenant_state) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun tn ->
      if tn.tn_weight <= 0. then
        invalid_arg ("scheduler: non-positive weight for tenant " ^ tn.tn_name);
      Hashtbl.replace by_name tn.tn_name
        {
          ts_cfg = tn;
          ts_vwork = 0.;
          ts_running = [];
          ts_future = [];
          ts_ready = Pheap.empty;
        })
    tenants;
  let state_of j =
    match Hashtbl.find_opt by_name j.jb_tenant with
    | Some s -> s
    | None -> invalid_arg ("scheduler: unknown tenant " ^ j.jb_tenant)
  in
  List.iter (fun j -> ignore (state_of j)) jobs;
  (* Deterministic tenant iteration order for the fair-share argmin. *)
  let states =
    Hashtbl.fold (fun _ ts acc -> ts :: acc) by_name []
    |> List.sort (fun a b -> compare a.ts_cfg.tn_name b.ts_cfg.tn_name)
    |> Array.of_list
  in
  (* Index the trace up front: per tenant, arrivals in submit order. *)
  List.iter
    (fun j -> (state_of j).ts_future <- j :: (state_of j).ts_future)
    jobs;
  Array.iter
    (fun ts ->
      ts.ts_future <-
        List.sort
          (fun a b -> compare (a.jb_submit_s, a.jb_id) (b.jb_submit_s, b.jb_id))
          ts.ts_future)
    states;
  let pending = ref (List.length jobs) in
  let slot_free = Array.make slots 0. in
  let completions = ref [] in
  let running_now = ref 0 and running_peak = ref 0 in
  let move_arrived ts ~now =
    let rec go () =
      match ts.ts_future with
      | j :: rest when j.jb_submit_s <= now ->
          ts.ts_future <- rest;
          ts.ts_ready <- Pheap.insert (-j.jb_priority, j.jb_id) j ts.ts_ready;
          go ()
      | _ -> ()
    in
    go ()
  in
  (* Drop finish times the virtual clock has passed: [now] never
     decreases across iterations (every slot's free time only grows),
     so an entry [<= now] can never again satisfy an [> at] test in
     [under_quota] or feed [next_event] — pruning it is free, and it
     is what keeps a 10k-job stream's state bounded by true in-flight
     work instead of the whole history. *)
  let prune ts ~now =
    match ts.ts_running with
    | [] -> ()
    | l ->
        let kept = List.filter (fun f -> f > now) l in
        running_now := !running_now - (List.length l - List.length kept);
        ts.ts_running <- kept
  in
  let under_quota ts =
    match ts.ts_cfg.tn_quota with
    | None -> true
    | Some q -> List.length ts.ts_running < q
  in
  (* The next virtual instant at which the picture can change: the
     earliest pending arrival (each tenant's future head) or the
     earliest in-flight finish (releasing its tenant's quota). *)
  let next_event ~after =
    Array.fold_left
      (fun acc ts ->
        let acc =
          match ts.ts_future with
          | j :: _ when j.jb_submit_s > after -> Float.min acc j.jb_submit_s
          | _ -> acc
        in
        List.fold_left
          (fun acc f -> if f > after then Float.min acc f else acc)
          acc ts.ts_running)
      Float.infinity states
  in
  let continue = ref true in
  while !pending > 0 && !continue do
    if stop () then continue := false
    else begin
      (* Earliest free slot (lowest index on ties — deterministic). *)
      let slot = ref 0 in
      Array.iteri (fun i f -> if f < slot_free.(!slot) then slot := i) slot_free;
      let now = slot_free.(!slot) in
      Array.iter
        (fun ts ->
          move_arrived ts ~now;
          prune ts ~now)
        states;
      (* Weighted fair share: the eligible tenant (ready job, quota
         headroom) with the least accumulated virtual work per unit
         weight goes next. *)
      let best = ref None in
      Array.iter
        (fun ts ->
          if (not (Pheap.is_empty ts.ts_ready)) && under_quota ts then
            match !best with
            | None -> best := Some ts
            | Some b ->
                let kb = b.ts_vwork /. b.ts_cfg.tn_weight
                and ks = ts.ts_vwork /. ts.ts_cfg.tn_weight in
                if ks < kb || (ks = kb && ts.ts_cfg.tn_name < b.ts_cfg.tn_name)
                then best := Some ts)
        states;
      match !best with
      | None ->
          (* Nothing runnable yet: park this slot at the next event. *)
          let t = next_event ~after:now in
          if t = Float.infinity then
            (* Only possible if every pending job is quota-blocked with
               nothing running — a configuration error (quota 0). *)
            invalid_arg "scheduler: stalled (tenant quota 0?)"
          else slot_free.(!slot) <- t
      | Some ts ->
          (* Within the tenant: priority, then FIFO by id — the heap
             order. *)
          let job, rest =
            match Pheap.pop ts.ts_ready with
            | Some (j, rest) -> (j, rest)
            | None -> assert false
          in
          ts.ts_ready <- rest;
          decr pending;
          let attempts, service, error = attempt_loop ~retry ~execute job in
          let finish = now +. service in
          slot_free.(!slot) <- finish;
          ts.ts_vwork <- ts.ts_vwork +. (service /. ts.ts_cfg.tn_weight);
          ts.ts_running <- finish :: ts.ts_running;
          incr running_now;
          if !running_now > !running_peak then running_peak := !running_now;
          completions :=
            {
              cp_job = job;
              cp_slot = !slot;
              cp_attempts = attempts;
              cp_start_s = now;
              cp_service_s = service;
              cp_finish_s = finish;
              cp_queue_wait_s = now -. job.jb_submit_s;
              cp_error = error;
            }
            :: !completions
    end
  done;
  Tvm_obs.Metrics.set_gauge "sched.running_peak" (float_of_int !running_peak);
  List.rev !completions
