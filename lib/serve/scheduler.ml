(* See scheduler.mli. *)

module Retry_policy = Tvm_rpc.Retry_policy

type tenant = {
  tn_name : string;
  tn_weight : float;
  tn_quota : int option;
}

let tenant ?(weight = 1.) ?quota name =
  { tn_name = name; tn_weight = weight; tn_quota = quota }

type 'a job = {
  jb_id : int;
  jb_tenant : string;
  jb_priority : int;
  jb_submit_s : float;
  jb_payload : 'a;
}

type 'a completion = {
  cp_job : 'a job;
  cp_slot : int;
  cp_attempts : int;
  cp_start_s : float;
  cp_service_s : float;
  cp_finish_s : float;
  cp_queue_wait_s : float;
  cp_error : string option;
}

(* Per-tenant accounting while a trace runs. *)
type tenant_state = {
  ts_cfg : tenant;
  mutable ts_vwork : float;  (** accumulated service / weight *)
  mutable ts_running : float list;  (** finish times of in-flight jobs *)
}

(* One job's attempt loop: service and backoff both charge the virtual
   clock, mirroring what the device pool does for measurements. An
   attempt whose service exceeds the per-job budget is a timeout (its
   charge is capped at the budget — the job would have been cut off). *)
(* Virtual-clock cost of an attempt that died before reporting one (a
   crash has no intrinsic duration; a timeout charges the budget). *)
let crash_cost_s = 1.0

let attempt_loop ~(retry : Retry_policy.t) ~execute job =
  let budget = retry.Retry_policy.timeout_s in
  let rec go attempt charged =
    let outcome =
      try execute job ~attempt with e -> Error (Printexc.to_string e)
    in
    let outcome, cost =
      match outcome with
      | Ok s when s > budget ->
          ( Error (Printf.sprintf "timeout after %gs (budget %gs)" s budget),
            budget )
      | Ok s -> (Ok s, s)
      | Error e -> (Error e, Float.min budget crash_cost_s)
    in
    let charged = charged +. cost in
    match outcome with
    | Ok _ -> (attempt + 1, charged, None)
    | Error e ->
        if attempt < retry.Retry_policy.max_retries then
          go (attempt + 1) (charged +. Retry_policy.backoff_s retry ~attempt)
        else (attempt + 1, charged, Some e)
  in
  go 0 0.

let run ?(slots = 1) ?(retry = Retry_policy.default) ?(stop = fun () -> false)
    ~(tenants : tenant list) ~execute (jobs : 'a job list) :
    'a completion list =
  let slots = max 1 slots in
  let states : (string, tenant_state) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun tn ->
      if tn.tn_weight <= 0. then
        invalid_arg ("scheduler: non-positive weight for tenant " ^ tn.tn_name);
      Hashtbl.replace states tn.tn_name
        { ts_cfg = tn; ts_vwork = 0.; ts_running = [] })
    tenants;
  let state_of j =
    match Hashtbl.find_opt states j.jb_tenant with
    | Some s -> s
    | None -> invalid_arg ("scheduler: unknown tenant " ^ j.jb_tenant)
  in
  List.iter (fun j -> ignore (state_of j)) jobs;
  let remaining = ref (List.sort (fun a b -> compare a.jb_id b.jb_id) jobs) in
  let slot_free = Array.make slots 0. in
  let completions = ref [] in
  let under_quota ts ~at =
    match ts.ts_cfg.tn_quota with
    | None -> true
    | Some q ->
        List.length (List.filter (fun f -> f > at) ts.ts_running) < q
  in
  (* The next virtual instant at which the picture can change: a
     pending submission arrives or a running job finishes (releasing
     its tenant's quota). *)
  let next_event ~after =
    let cands =
      List.filter_map
        (fun j -> if j.jb_submit_s > after then Some j.jb_submit_s else None)
        !remaining
      @ Hashtbl.fold
          (fun _ ts acc ->
            List.filter (fun f -> f > after) ts.ts_running @ acc)
          states []
    in
    List.fold_left Float.min Float.infinity cands
  in
  let continue = ref true in
  while !remaining <> [] && !continue do
    if stop () then continue := false
    else begin
      (* Earliest free slot (lowest index on ties — deterministic). *)
      let slot = ref 0 in
      Array.iteri (fun i f -> if f < slot_free.(!slot) then slot := i) slot_free;
      let now = slot_free.(!slot) in
      let eligible =
        List.filter
          (fun j ->
            j.jb_submit_s <= now && under_quota (state_of j) ~at:now)
          !remaining
      in
      match eligible with
      | [] ->
          (* Nothing runnable yet: park this slot at the next event. *)
          let t = next_event ~after:now in
          if t = Float.infinity then
            (* Only possible if every pending job is quota-blocked with
               nothing running — a configuration error (quota 0). *)
            invalid_arg "scheduler: stalled (tenant quota 0?)"
          else slot_free.(!slot) <- t
      | _ ->
          (* Weighted fair share: the eligible tenant with the least
             accumulated virtual work per unit weight goes next. *)
          let ts =
            List.fold_left
              (fun best j ->
                let s = state_of j in
                match best with
                | None -> Some s
                | Some b ->
                    let kb = b.ts_vwork /. b.ts_cfg.tn_weight
                    and ks = s.ts_vwork /. s.ts_cfg.tn_weight in
                    if
                      ks < kb
                      || (ks = kb && s.ts_cfg.tn_name < b.ts_cfg.tn_name)
                    then Some s
                    else best)
              None eligible
            |> Option.get
          in
          (* Within the tenant: priority, then FIFO by id. *)
          let job =
            List.fold_left
              (fun best j ->
                if j.jb_tenant <> ts.ts_cfg.tn_name then best
                else
                  match best with
                  | None -> Some j
                  | Some b ->
                      if
                        j.jb_priority > b.jb_priority
                        || (j.jb_priority = b.jb_priority && j.jb_id < b.jb_id)
                      then Some j
                      else best)
              None eligible
            |> Option.get
          in
          remaining := List.filter (fun j -> j.jb_id <> job.jb_id) !remaining;
          let attempts, service, error = attempt_loop ~retry ~execute job in
          let finish = now +. service in
          slot_free.(!slot) <- finish;
          ts.ts_vwork <- ts.ts_vwork +. (service /. ts.ts_cfg.tn_weight);
          ts.ts_running <- finish :: ts.ts_running;
          completions :=
            {
              cp_job = job;
              cp_slot = !slot;
              cp_attempts = attempts;
              cp_start_s = now;
              cp_service_s = service;
              cp_finish_s = finish;
              cp_queue_wait_s = now -. job.jb_submit_s;
              cp_error = error;
            }
            :: !completions
    end
  done;
  List.rev !completions
