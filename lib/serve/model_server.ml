(** Multi-model serving executor (§6, Fig 21): several compiled
    networks loaded at once, concurrent requests served on the
    deterministic virtual clock, with three serving-time optimizations
    the single-request {!Tvm_runtime.Graph_executor} cannot express:

    - {b dynamic batching} — compatible same-model requests coalesce
      along the batch axis under a max-batch / max-delay policy. A
      batch of [k] amortizes per-kernel launches and runs each group
      at the device's batch efficiency ([alpha·k + (1-alpha)] of the
      batch-1 time: the simulated GPU/accelerator is underutilized at
      batch 1, the paper's serving regime), so batched throughput
      scales well past the unbatched server;
    - {b cross-request slab reuse} — activation storage comes from a
      shared {!Tvm_graph.Mem_plan.Arena} rather than private per
      request buffers: each in-flight batch acquires its memory plan's
      slots for [dispatch, completion) and releases them for later
      requests of any model, so the server's footprint is the
      high-water mark of live slab bytes, not the sum over requests;
    - {b heterogeneous dispatch} — a graph's fused groups split across
      cpu + gpu + vdla the way Fig 21 offloads convolutions: each
      group goes to the device minimizing its estimated cost
      (per-group kernel estimates scaled by a device/op-class factor)
      plus the transfer cost of any cross-device inputs.

    Determinism follows the repo's replay-on-coordinator pattern:
    model loading (the expensive compiles) fans out over [lanes]
    domains with per-model private caches and sequential host
    parallelism, while the authoritative schedule — arrivals, batch
    formation, device occupancy, completions, the results file — is a
    sequential virtual-clock simulation on the coordinator, a pure
    function of the request trace. Results are byte-identical at any
    lane count. *)

module G = Tvm_graph.Graph_ir
module Fusion = Tvm_graph.Fusion
module Mem_plan = Tvm_graph.Mem_plan
module Exec = Tvm_runtime.Graph_executor
module Rt = Tvm_runtime.Rt_module
module Metrics = Tvm_obs.Metrics
module Json = Tvm_obs.Json
module Par = Tvm_par.Pool
module Spec = Tvm_spec.Job_spec

(* ------------------------------------------------------------------ *)
(* Devices and the serving cost model                                  *)
(* ------------------------------------------------------------------ *)

type device = Cpu | Gpu | Vdla

let device_name = function Cpu -> "cpu" | Gpu -> "gpu" | Vdla -> "vdla"
let dev_index = function Cpu -> 0 | Gpu -> 1 | Vdla -> 2
let n_devices = 3

(* Fraction of a group's work that scales linearly with batch size:
   time(k) = time(1) · (alpha·k + (1-alpha)). Wide devices (gpu, the
   vdla array) are underutilized at batch 1, so most of their batch-1
   time is idle lanes a bigger batch fills; the scalar cpu is already
   saturated and scales almost linearly. *)
let batch_alpha = function Gpu -> 0.15 | Vdla -> 0.25 | Cpu -> 0.85
let batch_eff dev k = (batch_alpha dev *. float_of_int k) +. 1. -. batch_alpha dev

type op_class = Conv | Dense | Reduce | Elemwise

let classify = function
  | "conv2d" | "depthwise_conv2d" | "conv2d_transpose" -> Conv
  | "dense" -> Dense
  | "max_pool2d" | "global_avg_pool2d" | "softmax" -> Reduce
  | _ -> Elemwise

(* Per-group time factor vs the gpu-compiled kernel estimate. The vdla
   tensorizes conv-shaped work (Fig 21's offload target) but its fixed
   16×16 MACs underutilize skinny inference-time matmuls and it is a
   poor fit for reductions and scattered elementwise ops; the cpu wins
   on small low-parallelism tails (pool/softmax) and loses badly on
   heavy compute. Dense stays on the gpu, convs offload to the vdla,
   tails fall to the cpu when transfers don't dominate. *)
let device_factor dev cls =
  match (dev, cls) with
  | Gpu, _ -> 1.0
  | Vdla, Conv -> 0.6
  | Vdla, Dense -> 1.5
  | Vdla, (Reduce | Elemwise) -> 6.0
  | Cpu, Conv -> 12.0
  | Cpu, Dense -> 8.0
  | Cpu, Reduce -> 0.8
  | Cpu, Elemwise -> 1.6

(* Cross-device input transfer: fixed DMA setup plus bytes over the
   interconnect. *)
let xfer_cost bytes = 4e-6 +. (bytes /. 12e9)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  cf_max_batch : int;  (** coalescing cap; 1 disables batching *)
  cf_max_delay_s : float;  (** max wait before a partial batch launches *)
  cf_max_inflight : int;  (** concurrent batches admitted *)
  cf_hetero : bool;  (** heterogeneous dispatch (off: all groups on gpu) *)
  cf_launch_overhead_s : float;  (** per-kernel-launch framework cost *)
}

let config ?(max_batch = 8) ?(max_delay_s = 2e-3) ?(max_inflight = 8)
    ?(hetero = true) ?(launch_overhead_s = 10e-6) () =
  if max_batch < 1 then invalid_arg "model_server: max_batch must be >= 1";
  if max_inflight < 1 then invalid_arg "model_server: max_inflight must be >= 1";
  { cf_max_batch = max_batch; cf_max_delay_s = max_delay_s;
    cf_max_inflight = max_inflight; cf_hetero = hetero;
    cf_launch_overhead_s = launch_overhead_s }

(* ------------------------------------------------------------------ *)
(* Loaded models                                                       *)
(* ------------------------------------------------------------------ *)

type group_exec = {
  ge_group : int;
  ge_op : string;  (** anchor operator *)
  ge_device : device;
  ge_time1_s : float;  (** batch-1 estimate on the chosen device *)
  ge_xfer_s : float;  (** cross-device input transfer charged per launch *)
}

type model = {
  mv_name : string;
  mv_exec : Exec.t;  (** the single-request executor underneath *)
  mv_groups : group_exec list;  (** executable order *)
  mv_plan : Mem_plan.plan;
  mv_naive_bytes : float;  (** one private buffer per intermediate *)
  mv_time1_s : float;  (** batch-1 service estimate, transfers included *)
  mv_placement : (string * int) list;  (** device name → groups placed *)
}

type t = { sv_cfg : config; sv_models : model list (* load order *) }

let models t = t.sv_models

let find t name =
  match List.find_opt (fun m -> m.mv_name = name) t.sv_models with
  | Some m -> m
  | None -> invalid_arg ("model_server: unknown model " ^ name)

(* Greedy placement in executable order: each group goes to the device
   minimizing run time plus the transfer cost of inputs produced on
   other devices. Devices are tried in a fixed order, strict
   improvement wins — deterministic. *)
let place ~cfg ~graph ~(groups : Fusion.group list) ~time1_of =
  let dev_of_node : (int, device) Hashtbl.t = Hashtbl.create 32 in
  List.map
    (fun (g : Fusion.group) ->
      let op =
        match (G.node graph g.Fusion.g_anchor).G.kind with
        | G.Op op -> op
        | G.Input | G.Param -> "identity"
      in
      let cls = classify op in
      let t1 = time1_of g in
      let cost_on dev =
        let xfer =
          List.fold_left
            (fun acc input ->
              match Hashtbl.find_opt dev_of_node input with
              | Some d when d <> dev ->
                  acc +. xfer_cost (Mem_plan.node_bytes graph input)
              | _ -> acc)
            0. g.Fusion.g_inputs
        in
        ((t1 *. device_factor dev cls) +. xfer, xfer)
      in
      let dev, (_, xfer) =
        if not cfg.cf_hetero then (Gpu, cost_on Gpu)
        else
          List.fold_left
            (fun (best_d, (best_c, best_x)) d ->
              let c, x = cost_on d in
              if c < best_c then (d, (c, x)) else (best_d, (best_c, best_x)))
            (Gpu, cost_on Gpu) [ Vdla; Cpu ]
      in
      Hashtbl.replace dev_of_node g.Fusion.g_output dev;
      {
        ge_group = g.Fusion.g_id;
        ge_op = op;
        ge_device = dev;
        ge_time1_s = t1 *. device_factor dev cls;
        ge_xfer_s = xfer;
      })
    groups

let load ?(lanes = 1) ?spec ?target cfg named_graphs =
  let target = match target with Some t -> t | None -> Tvm.Target.cuda () in
  (* Per-model compiles run with sequential host parallelism and
     without shared cache scopes, so lanes never share mutable state
     and the loaded models are independent of the lane count. *)
  let spec =
    match spec with
    | Some s -> { s with Spec.jobs = 1; use_compile_cache = false }
    | None -> Spec.make ~trials:0 ~jobs:1 ~use_compile_cache:false ()
  in
  let build (name, graph) =
    let tuned = Tvm.Compiler.create_tuned_cache () in
    let result, exec = Tvm.Compiler.build_executor ~spec ~tuned graph target in
    let kernels =
      List.map (fun (k : Rt.kernel) -> (k.Rt.k_group, k))
        (Rt.kernels result.Tvm.Compiler.module_)
    in
    let time1_of (g : Fusion.group) =
      match List.assoc_opt g.Fusion.g_id kernels with
      | Some k -> k.Rt.k_time_s
      | None ->
          (* No compiled kernel (reference fallback): flops at a
             nominal rate keeps the estimate comparable. *)
          Fusion.group_flops graph g /. 5e9
    in
    let groups_exec =
      place ~cfg ~graph ~groups:result.Tvm.Compiler.groups ~time1_of
    in
    let plan = Mem_plan.plan graph result.Tvm.Compiler.groups in
    let placement =
      List.map
        (fun d ->
          ( device_name d,
            List.length
              (List.filter (fun ge -> ge.ge_device = d) groups_exec) ))
        [ Cpu; Gpu; Vdla ]
    in
    let time1 =
      List.fold_left
        (fun acc ge ->
          acc +. ge.ge_time1_s +. ge.ge_xfer_s +. cfg.cf_launch_overhead_s)
        0. groups_exec
    in
    {
      mv_name = name;
      mv_exec = exec;
      mv_groups = groups_exec;
      mv_plan = plan;
      mv_naive_bytes = plan.Mem_plan.naive_bytes;
      mv_time1_s = time1;
      mv_placement = placement;
    }
  in
  let arr = Array.of_list named_graphs in
  let models =
    if lanes <= 1 || Array.length arr <= 1 then Array.map build arr
    else Par.run_lanes (Par.create ~domains:lanes ()) build arr
  in
  { sv_cfg = cfg; sv_models = Array.to_list models }

(* ------------------------------------------------------------------ *)
(* The virtual-clock serving simulation                                *)
(* ------------------------------------------------------------------ *)

type completion = {
  rc_id : int;
  rc_tenant : string;
  rc_model : string;
  rc_submit_s : float;
  rc_start_s : float;  (** batch dispatch time *)
  rc_finish_s : float;
  rc_latency_s : float;  (** [rc_finish_s -. rc_submit_s] *)
  rc_batch : int;  (** id of the coalesced batch *)
  rc_batch_size : int;
  rc_slo_s : float;
  rc_slo_ok : bool;
}

type batch_info = {
  bt_id : int;
  bt_model : string;
  bt_size : int;
  bt_start_s : float;
  bt_finish_s : float;
}

type outcome = {
  oc_completions : completion list;  (** finish order *)
  oc_batches : batch_info list;  (** launch order *)
  oc_makespan_s : float;
  oc_throughput_rps : float;
  oc_mean_batch : float;
  oc_slab_bytes : float;  (** arena footprint (high water) *)
  oc_naive_bytes : float;  (** peak Σ in-flight naive bytes *)
  oc_slab_saving : float;  (** [1 - slab/naive] *)
  oc_slab_reuses : int;
  oc_slo_misses : int;
  oc_p50_s : float;
  oc_p90_s : float;
  oc_p99_s : float;
}

(* Exact nearest-rank percentile over the completed latencies — the
   report must be bit-stable, so no histogram approximation here. *)
let exact_percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else
    let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* One batch's service: walk the groups in executable order, charging
   each to its device lane. Device lanes only move forward, so batches
   pipeline across devices (a later batch's conv groups run on the
   vdla while an earlier batch's dense tail holds the gpu). *)
let batch_service cfg (m : model) ~k ~start ~dev_free =
  let tm = ref start in
  List.iter
    (fun ge ->
      let d = dev_index ge.ge_device in
      let s = Float.max !tm dev_free.(d) in
      let dur =
        ge.ge_xfer_s +. cfg.cf_launch_overhead_s
        +. (ge.ge_time1_s *. batch_eff ge.ge_device k)
      in
      dev_free.(d) <- s +. dur;
      tm := s +. dur)
    m.mv_groups;
  !tm

type running = {
  rn_batch : int;
  rn_model : model;
  rn_reqs : Traffic.request list;  (** id order *)
  rn_start : float;
  rn_finish : float;
  rn_slabs : Mem_plan.Arena.slab list;
}

let run t (reqs : Traffic.request list) : outcome =
  let cfg = t.sv_cfg in
  let arena = Mem_plan.Arena.create () in
  let dev_free = Array.make n_devices 0. in
  let queues =
    List.map (fun m -> (m.mv_name, (m, Queue.create ()))) t.sv_models
  in
  let queue_of r =
    match List.assoc_opt r.Traffic.rq_model queues with
    | Some mq -> mq
    | None ->
        invalid_arg ("model_server: request for unloaded model "
                     ^ r.Traffic.rq_model)
  in
  let pending =
    ref
      (List.sort
         (fun a b ->
           compare (a.Traffic.rq_submit_s, a.Traffic.rq_id)
             (b.Traffic.rq_submit_s, b.Traffic.rq_id))
         reqs)
  in
  let running = ref [] (* sorted by (finish, batch id) *) in
  let next_batch = ref 0 in
  let naive_in_use = ref 0. and naive_peak = ref 0. in
  let completions = ref [] and batches = ref [] in
  let slo_misses = ref 0 in
  let admit now =
    let rec move () =
      match !pending with
      | r :: rest when r.Traffic.rq_submit_s <= now ->
          pending := rest;
          Queue.add r (snd (queue_of r));
          move ()
      | _ -> ()
    in
    move ()
  in
  let complete now =
    let done_, still =
      List.partition (fun rn -> rn.rn_finish <= now) !running
    in
    running := still;
    List.iter
      (fun rn ->
        Mem_plan.Arena.release_plan arena rn.rn_slabs;
        naive_in_use :=
          !naive_in_use
          -. (float_of_int (List.length rn.rn_reqs)
             *. rn.rn_model.mv_naive_bytes);
        List.iter
          (fun (r : Traffic.request) ->
            let latency = rn.rn_finish -. r.Traffic.rq_submit_s in
            let ok = latency <= r.Traffic.rq_slo_s in
            if not ok then incr slo_misses;
            Metrics.observe "serve_rt.latency_s" latency;
            completions :=
              {
                rc_id = r.Traffic.rq_id;
                rc_tenant = r.Traffic.rq_tenant;
                rc_model = rn.rn_model.mv_name;
                rc_submit_s = r.Traffic.rq_submit_s;
                rc_start_s = rn.rn_start;
                rc_finish_s = rn.rn_finish;
                rc_latency_s = latency;
                rc_batch = rn.rn_batch;
                rc_batch_size = List.length rn.rn_reqs;
                rc_slo_s = r.Traffic.rq_slo_s;
                rc_slo_ok = ok;
              }
              :: !completions)
          rn.rn_reqs)
      done_
  in
  (* A model's head-of-line batch launches when it is full, or its
     oldest request has waited out the delay budget — and an executor
     slot is free. *)
  let eligible now (_, (_, q)) =
    (not (Queue.is_empty q))
    && List.length !running < cfg.cf_max_inflight
    && (Queue.length q >= cfg.cf_max_batch
       || (Queue.peek q).Traffic.rq_submit_s +. cfg.cf_max_delay_s <= now)
  in
  let launch now =
    let rec go () =
      (* Oldest head request first — deterministic FCFS across models. *)
      let cands = List.filter (eligible now) queues in
      match
        List.sort
          (fun (_, (_, qa)) (_, (_, qb)) ->
            compare
              ((Queue.peek qa).Traffic.rq_submit_s, (Queue.peek qa).Traffic.rq_id)
              ((Queue.peek qb).Traffic.rq_submit_s, (Queue.peek qb).Traffic.rq_id))
          cands
      with
      | [] -> ()
      | (_, (m, q)) :: _ ->
          let k = min cfg.cf_max_batch (Queue.length q) in
          let members = List.init k (fun _ -> Queue.pop q) in
          let finish = batch_service cfg m ~k ~start:now ~dev_free in
          let slabs =
            Mem_plan.Arena.acquire_plan arena m.mv_plan
              ~scale:(float_of_int k)
          in
          naive_in_use :=
            !naive_in_use +. (float_of_int k *. m.mv_naive_bytes);
          if !naive_in_use > !naive_peak then naive_peak := !naive_in_use;
          let id = !next_batch in
          incr next_batch;
          Metrics.observe "serve_rt.batch_size" (float_of_int k);
          batches :=
            { bt_id = id; bt_model = m.mv_name; bt_size = k;
              bt_start_s = now; bt_finish_s = finish }
            :: !batches;
          running :=
            List.sort
              (fun a b -> compare (a.rn_finish, a.rn_batch) (b.rn_finish, b.rn_batch))
              ({ rn_batch = id; rn_model = m; rn_reqs = members;
                 rn_start = now; rn_finish = finish; rn_slabs = slabs }
              :: !running);
          go ()
    in
    go ()
  in
  let next_event now =
    let cands =
      (match !pending with r :: _ -> [ r.Traffic.rq_submit_s ] | [] -> [])
      @ (match !running with rn :: _ -> [ rn.rn_finish ] | [] -> [])
      @ List.filter_map
          (fun (_, (_, q)) ->
            if Queue.is_empty q then None
            else
              (* Delay deadline; only a future one is an event — an
                 expired deadline waits for a completion to free a
                 slot, and completions re-evaluate launches anyway. *)
              let d =
                (Queue.peek q).Traffic.rq_submit_s +. cfg.cf_max_delay_s
              in
              if d > now then Some d else None)
          queues
    in
    match cands with
    | [] -> None
    | l -> Some (List.fold_left Float.min Float.infinity l)
  in
  let now = ref 0. in
  let continue = ref true in
  while !continue do
    admit !now;
    complete !now;
    launch !now;
    match next_event !now with
    | Some tnext when tnext > !now -> now := tnext
    | Some _ ->
        (* Only expired deadlines remain and nothing can launch: the
           next state change is the earliest completion. *)
        (match !running with
        | rn :: _ -> now := rn.rn_finish
        | [] -> continue := false)
    | None ->
        continue :=
          not
            (!pending = [] && !running = []
            && List.for_all (fun (_, (_, q)) -> Queue.is_empty q) queues)
  done;
  let completions =
    List.sort
      (fun a b -> compare (a.rc_finish_s, a.rc_batch, a.rc_id)
                    (b.rc_finish_s, b.rc_batch, b.rc_id))
      !completions
  in
  let batches = List.rev !batches in
  let n = List.length completions in
  let makespan =
    List.fold_left (fun acc c -> Float.max acc c.rc_finish_s) 0. completions
  in
  let latencies =
    Array.of_list (List.map (fun c -> c.rc_latency_s) completions)
  in
  Array.sort compare latencies;
  let slab = Mem_plan.Arena.footprint_bytes arena in
  let saving =
    if !naive_peak > 0. then 1. -. (slab /. !naive_peak) else 0.
  in
  let outcome =
    {
      oc_completions = completions;
      oc_batches = batches;
      oc_makespan_s = makespan;
      oc_throughput_rps =
        (if makespan > 0. then float_of_int n /. makespan else 0.);
      oc_mean_batch =
        (match batches with
        | [] -> 0.
        | l ->
            float_of_int (List.fold_left (fun a b -> a + b.bt_size) 0 l)
            /. float_of_int (List.length l));
      oc_slab_bytes = slab;
      oc_naive_bytes = !naive_peak;
      oc_slab_saving = saving;
      oc_slab_reuses = Mem_plan.Arena.reuses arena;
      oc_slo_misses = !slo_misses;
      oc_p50_s = exact_percentile latencies 50.;
      oc_p90_s = exact_percentile latencies 90.;
      oc_p99_s = exact_percentile latencies 99.;
    }
  in
  Metrics.incr ~by:(float_of_int n) "serve_rt.requests";
  Metrics.set_gauge "serve_rt.throughput_rps" outcome.oc_throughput_rps;
  Metrics.set_gauge "serve_rt.makespan_s" outcome.oc_makespan_s;
  Metrics.set_gauge "serve_rt.mean_batch" outcome.oc_mean_batch;
  Metrics.set_gauge "serve_rt.slab_bytes" outcome.oc_slab_bytes;
  Metrics.set_gauge "serve_rt.slab_peak_bytes"
    (Mem_plan.Arena.peak_in_use_bytes arena);
  Metrics.set_gauge "serve_rt.naive_bytes" outcome.oc_naive_bytes;
  Metrics.set_gauge "serve_rt.slab_saving" outcome.oc_slab_saving;
  Metrics.set_gauge "serve_rt.slo_misses" (float_of_int outcome.oc_slo_misses);
  outcome

(* ------------------------------------------------------------------ *)
(* Results and the serving journal                                     *)
(* ------------------------------------------------------------------ *)

(** One line per completion, [%h] floats — byte-comparable across lane
    counts (the [make check-servert] identity check). *)
let results_lines (o : outcome) =
  List.map
    (fun c ->
      Printf.sprintf "%d\t%s\t%s\t%h\t%h\t%h\t%d\t%d\t%d" c.rc_id
        (String.escaped c.rc_tenant) (String.escaped c.rc_model)
        c.rc_submit_s c.rc_finish_s c.rc_latency_s c.rc_batch c.rc_batch_size
        (if c.rc_slo_ok then 1 else 0))
    o.oc_completions

(** Serving flight recorder: JSONL with a [serve_rt.*] kind per line —
    run header, per-model placements, batches, requests. [tvmc report]
    renders the request-latency digest from this. *)
let journal_lines t (o : outcome) =
  let open Json in
  let header =
    Obj
      [
        ("kind", Str "serve_rt.run");
        ("models", List (List.map (fun m -> Str m.mv_name) t.sv_models));
        ("max_batch", num (float_of_int t.sv_cfg.cf_max_batch));
        ("max_delay_s", num t.sv_cfg.cf_max_delay_s);
        ("max_inflight", num (float_of_int t.sv_cfg.cf_max_inflight));
        ("requests", num (float_of_int (List.length o.oc_completions)));
        ("throughput_rps", num o.oc_throughput_rps);
        ("slab_bytes", num o.oc_slab_bytes);
        ("naive_bytes", num o.oc_naive_bytes);
      ]
  in
  let placements =
    List.map
      (fun m ->
        Obj
          (( "kind", Str "serve_rt.placement" )
          :: ("model", Str m.mv_name)
          :: List.map
               (fun (d, n) -> (d, num (float_of_int n)))
               m.mv_placement))
      t.sv_models
  in
  let batches =
    List.map
      (fun b ->
        Obj
          [
            ("kind", Str "serve_rt.batch");
            ("id", num (float_of_int b.bt_id));
            ("model", Str b.bt_model);
            ("size", num (float_of_int b.bt_size));
            ("start_s", num b.bt_start_s);
            ("finish_s", num b.bt_finish_s);
          ])
      o.oc_batches
  in
  let requests =
    List.map
      (fun c ->
        Obj
          [
            ("kind", Str "serve_rt.request");
            ("id", num (float_of_int c.rc_id));
            ("tenant", Str c.rc_tenant);
            ("model", Str c.rc_model);
            ("submit_s", num c.rc_submit_s);
            ("latency_s", num c.rc_latency_s);
            ("batch_size", num (float_of_int c.rc_batch_size));
            ("slo_s", num c.rc_slo_s);
            ("slo_ok", num (if c.rc_slo_ok then 1. else 0.));
          ])
      o.oc_completions
  in
  List.map Json.to_string (header :: (placements @ batches @ requests))

let write_lines path lines =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines)

let write_results o path = write_lines path (results_lines o)
let write_journal t o path = write_lines path (journal_lines t o)
