(** Benchmark regression gate: compare a current metrics dump against a
    committed baseline ([BENCH_obs.json]) under per-metric tolerance
    rules, so the repo's perf trajectory gates PRs instead of merely
    being recorded.

    Rules address a value inside the {!Metrics.to_json} layout —
    [{counters, gauges, histograms:{name:{count,...,p50,p90,p99}}}] —
    by section, metric name and (for histograms) sub-field. Directions:

    - [Higher_better] passes when [cur >= base - tol * |base|];
    - [Lower_better] passes when [cur <= base + tol * |base|];
    - [Exact] passes when the values agree to float round-off — for
      determinism flags like [bench.partune.identical_best], where any
      drift is a real regression, never noise.

    Tolerances for wall-clock-derived metrics (speedups) are generous:
    the gate exists to catch collapses (a speedup of 4 dropping to 1),
    not scheduler jitter. A metric present in the baseline but missing
    from the current dump fails (the benchmark lost coverage); a metric
    missing from the baseline is skipped (the baseline predates it —
    regenerate with [make bench-baseline]). *)

type direction = Higher_better | Lower_better | Exact

type rule = {
  ru_section : string;  (** ["gauges"], ["counters"] or ["histograms"] *)
  ru_name : string;  (** metric name *)
  ru_field : string option;  (** histogram sub-field, e.g. [Some "p90"] *)
  ru_dir : direction;
  ru_tol : float;  (** relative tolerance *)
}

let rule ?field ~dir ~tol section name =
  { ru_section = section; ru_name = name; ru_field = field; ru_dir = dir;
    ru_tol = tol }

type verdict = Pass | Fail of string | Skip of string

type check = {
  ck_rule : rule;
  ck_base : float option;
  ck_cur : float option;
  ck_verdict : verdict;
}

let rule_id r =
  Printf.sprintf "%s.%s%s" r.ru_section r.ru_name
    (match r.ru_field with Some f -> "." ^ f | None -> "")

let lookup (metrics : Json.t) (r : rule) : float option =
  let open Json in
  let v = Option.bind (member r.ru_section metrics) (member r.ru_name) in
  match r.ru_field with
  | None -> Option.bind v to_num_opt
  | Some f -> Option.bind (Option.bind v (member f)) to_num_opt

let judge (r : rule) ~base ~cur : verdict =
  match (base, cur) with
  | None, _ -> Skip "not in baseline (regenerate with `make bench-baseline`)"
  | Some _, None -> Fail "metric missing from current run"
  | Some b, Some c -> (
      let slack = r.ru_tol *. Float.abs b in
      match r.ru_dir with
      | Higher_better ->
          if c >= b -. slack then Pass
          else
            Fail
              (Printf.sprintf "%.6g < %.6g - %.0f%% tolerance" c b
                 (100. *. r.ru_tol))
      | Lower_better ->
          if c <= b +. slack then Pass
          else
            Fail
              (Printf.sprintf "%.6g > %.6g + %.0f%% tolerance" c b
                 (100. *. r.ru_tol))
      | Exact ->
          if Float.abs (c -. b) <= 1e-9 *. Float.max 1. (Float.abs b) then Pass
          else Fail (Printf.sprintf "%.17g <> %.17g (exact)" c b))

let compare_metrics ~(rules : rule list) ~(baseline : Json.t)
    ~(current : Json.t) : check list =
  List.map
    (fun r ->
      let base = lookup baseline r and cur = lookup current r in
      { ck_rule = r; ck_base = base; ck_cur = cur;
        ck_verdict = judge r ~base ~cur })
    rules

let failed checks =
  List.filter (fun c -> match c.ck_verdict with Fail _ -> true | _ -> false) checks

let render checks =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let fnum = function Some v -> Printf.sprintf "%.6g" v | None -> "-" in
  p "%-44s %12s %12s  %s\n" "metric" "baseline" "current" "verdict";
  List.iter
    (fun c ->
      let verdict =
        match c.ck_verdict with
        | Pass -> "PASS"
        | Fail msg -> "FAIL: " ^ msg
        | Skip msg -> "skip: " ^ msg
      in
      p "%-44s %12s %12s  %s\n" (rule_id c.ck_rule) (fnum c.ck_base)
        (fnum c.ck_cur) verdict)
    checks;
  let n_fail = List.length (failed checks) in
  p "bench gate: %d checks, %d failed\n" (List.length checks) n_fail;
  Buffer.contents buf

(** The committed gate for `make check-bench` (partune + lower + cache
    scope). Speedups are wall-clock-derived, so their tolerances only
    catch collapses; the determinism flags are exact; the simulated
    pool percentiles are tight because the simulation is seeded. *)
let default_rules =
  [
    rule "gauges" "bench.partune.speedup" ~dir:Higher_better ~tol:0.5;
    rule "gauges" "bench.partune.prepare_speedup" ~dir:Higher_better ~tol:0.6;
    rule "gauges" "bench.partune.identical_best" ~dir:Exact ~tol:0.;
    rule "gauges" "bench.partune.cache_identical_log" ~dir:Exact ~tol:0.;
    rule "gauges" "bench.lower.warm_speedup" ~dir:Higher_better ~tol:0.8;
    (* Hit rate counts each logical query once: shared-tier hits are
       probed with [record:false] and counted via [record_hit], local
       tier records its own verdict. Before that fix only local-tier
       cold misses were counted and the gauge collapsed to ~0.01 as the
       shared memo warmed up; the restored baseline (~0.05 quick) sits
       4x above that floor, and the tight tolerance keeps any return of
       the accounting bug an immediate failure. *)
    rule "gauges" "bench.cache.hit_rate" ~dir:Higher_better ~tol:0.15;
    rule "gauges" "tuner.best_time_s" ~dir:Lower_better ~tol:0.25;
    rule "histograms" "pool.job_cost_s" ~field:"p90" ~dir:Lower_better ~tol:0.5;
    rule "histograms" "pool.queue_wait_s" ~field:"p90" ~dir:Lower_better
      ~tol:0.75;
    (* tvmd service SLOs: latencies are virtual-time (deterministic),
       so the tolerances only absorb histogram bucket granularity. *)
    rule "gauges" "bench.serve.warm_speedup" ~dir:Higher_better ~tol:0.5;
    rule "gauges" "bench.serve.identical_schedule" ~dir:Exact ~tol:0.;
    (* Concurrent-lane virtual-makespan speedup (slots 1 vs 4) and the
       fraction of a restart-churned store that compaction reclaims —
       both virtual/deterministic, tolerances absorb trace tweaks. *)
    rule "gauges" "tvmd.concurrent_speedup" ~dir:Higher_better ~tol:0.5;
    rule "gauges" "store.compact_ratio" ~dir:Higher_better ~tol:0.15;
    rule "histograms" "tvmd.queue_wait_s" ~field:"p90" ~dir:Lower_better
      ~tol:0.5;
    rule "histograms" "tvmd.completion_s" ~field:"p50" ~dir:Lower_better
      ~tol:0.5;
    rule "histograms" "tvmd.completion_s" ~field:"p99" ~dir:Lower_better
      ~tol:0.5;
    (* Sharded measurement fleet: everything virtual-clock and
       deterministic, so the tolerances only absorb deliberate workload
       tweaks. The ISSUE floors are efficiency >= 0.7 and speculation
       speedup >= 1.5x; the baseline sits comfortably above both. *)
    rule "gauges" "bench.fleet.scaling_efficiency" ~dir:Higher_better
      ~tol:0.1;
    rule "gauges" "bench.fleet.speculation_speedup" ~dir:Higher_better
      ~tol:0.25;
    rule "gauges" "bench.fleet.steal_rate" ~dir:Higher_better ~tol:0.5;
    rule "gauges" "bench.fleet.spec_identical" ~dir:Exact ~tol:0.;
    (* SA propose hot path (satellite of the fleet PR): host wall-clock,
       so the tolerance is generous — the gate catches the memo being
       lost (a ~5x collapse), not scheduler jitter. *)
    rule "gauges" "bench.partune.propose_s" ~dir:Lower_better ~tol:1.5;
    (* Serving executor (ISSUE 10): all virtual-clock, so deterministic.
       The baseline speedup/saving sit far above the ISSUE floors (2x
       batching, 30% slab saving), so the tolerances still keep the
       gated minimum above those floors; determinism is exact. *)
    rule "gauges" "serve_rt.batch_speedup" ~dir:Higher_better ~tol:0.25;
    rule "gauges" "serve_rt.slab_saving" ~dir:Higher_better ~tol:0.2;
    rule "gauges" "serve_rt.identical_results" ~dir:Exact ~tol:0.;
    rule "histograms" "serve_rt.latency_s" ~field:"p99" ~dir:Lower_better
      ~tol:0.5;
  ]
