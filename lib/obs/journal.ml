(* See journal.mli. The store is a mutex-protected reverse list of
   entries; all producers run on the coordinator domain in input order
   (that is the determinism contract, not something this module can
   enforce), so the mutex only guards against concurrent tuners. *)

type entry =
  | Run of { r_name : string; r_method : string; r_trials : int }
  | Propose of {
      p_uid : int;
      p_origin : string;
      p_chain : int;
      p_score : float;
      p_config : string;
    }
  | Prepare of { q_uid : int; q_cache : string; q_valid : bool }
  | Dispatch of {
      d_uid : int;
      d_dev : int;
      d_device : string;
      d_attempt : int;
      d_outcome : string;
      d_cost_s : float;
      d_queue_s : float;
      d_shard : int;  (* -1 for the unsharded (legacy) pool *)
      d_stolen : bool;
      d_spec : bool;
    }
  | Measure of {
      m_uid : int;
      m_status : string;
      m_time_s : float option;
      m_attempts : int;
    }

let on = ref false
let lock = Mutex.create ()
let store : entry list ref = ref []  (* reverse record order *)
let uid_counter = Atomic.make 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enabled () = !on

let reset () =
  locked (fun () ->
      store := [];
      Atomic.set uid_counter 0)

let set_enabled b =
  if b && not !on then reset ();
  on := b

let fresh_uid () = Atomic.fetch_and_add uid_counter 1

let record e = if !on then locked (fun () -> store := e :: !store)

let run ~name ~method_ ~trials =
  record (Run { r_name = name; r_method = method_; r_trials = trials })

let propose ~uid ~origin ~chain ~score ~config =
  record
    (Propose
       { p_uid = uid; p_origin = origin; p_chain = chain; p_score = score;
         p_config = config })

let prepare ~uid ~cache ~valid =
  record (Prepare { q_uid = uid; q_cache = cache; q_valid = valid })

let dispatch ?(shard = -1) ?(stolen = false) ?(spec = false) ~uid ~dev ~device
    ~attempt ~outcome ~cost_s ~queue_s () =
  record
    (Dispatch
       { d_uid = uid; d_dev = dev; d_device = device; d_attempt = attempt;
         d_outcome = outcome; d_cost_s = cost_s; d_queue_s = queue_s;
         d_shard = shard; d_stolen = stolen; d_spec = spec })

let measure ~uid ~status ~time_s ~attempts =
  record
    (Measure
       { m_uid = uid; m_status = status; m_time_s = time_s;
         m_attempts = attempts })

(* ------------------------------------------------------------------ *)
(* Job tags                                                            *)
(* ------------------------------------------------------------------ *)

(* Domain-local so concurrent tuners on different domains cannot see
   each other's batches; the pool replays its jobs on the domain that
   set the tags. *)
let job_tags : int array Domain.DLS.key = Domain.DLS.new_key (fun () -> [||])

let set_job_tags tags = Domain.DLS.set job_tags tags
let clear_job_tags () = Domain.DLS.set job_tags [||]

let job_tag j =
  let tags = Domain.DLS.get job_tags in
  if j >= 0 && j < Array.length tags then tags.(j) else -1

(* ------------------------------------------------------------------ *)
(* Access and serialization                                            *)
(* ------------------------------------------------------------------ *)

let entries () = locked (fun () -> List.rev !store)
let size () = locked (fun () -> List.length !store)

(* Fields are assembled by hand in a fixed order so the line layout —
   not just the data — is stable; floats go through [Json.num_string]
   (full [%.17g] precision, non-finite as null). *)
let entry_to_line = function
  | Run { r_name; r_method; r_trials } ->
      Printf.sprintf {|{"ev":"run","name":%s,"method":%s,"trials":%d}|}
        (Json.escape r_name) (Json.escape r_method) r_trials
  | Propose { p_uid; p_origin; p_chain; p_score; p_config } ->
      Printf.sprintf
        {|{"ev":"propose","uid":%d,"origin":%s,"chain":%d,"score":%s,"config":%s}|}
        p_uid (Json.escape p_origin) p_chain (Json.num_string p_score)
        (Json.escape p_config)
  | Prepare { q_uid; q_cache; q_valid } ->
      Printf.sprintf {|{"ev":"prepare","uid":%d,"cache":%s,"valid":%b}|} q_uid
        (Json.escape q_cache) q_valid
  | Dispatch
      { d_uid; d_dev; d_device; d_attempt; d_outcome; d_cost_s; d_queue_s;
        d_shard; d_stolen; d_spec } ->
      Printf.sprintf
        {|{"ev":"dispatch","uid":%d,"dev":%d,"device":%s,"attempt":%d,"outcome":%s,"cost_s":%s,"queue_s":%s,"shard":%d,"stolen":%b,"spec":%b}|}
        d_uid d_dev (Json.escape d_device) d_attempt (Json.escape d_outcome)
        (Json.num_string d_cost_s) (Json.num_string d_queue_s) d_shard d_stolen
        d_spec
  | Measure { m_uid; m_status; m_time_s; m_attempts } ->
      Printf.sprintf
        {|{"ev":"measure","uid":%d,"status":%s,"time_s":%s,"attempts":%d}|}
        m_uid (Json.escape m_status)
        (match m_time_s with Some t -> Json.num_string t | None -> "null")
        m_attempts

let to_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (entry_to_line e);
      Buffer.add_char buf '\n')
    (entries ());
  Buffer.contents buf

let write_jsonl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl ()))

let parse_line line =
  if String.trim line = "" then None
  else
    match Json.parse line with
    | exception Json.Parse_error _ -> None
    | j -> (
        let str k = Option.bind (Json.member k j) Json.to_string_opt in
        let num k = Option.bind (Json.member k j) Json.to_num_opt in
        let int_ k = Option.map int_of_float (num k) in
        let ( let* ) = Option.bind in
        match str "ev" with
        | Some "run" ->
            let* name = str "name" in
            let* method_ = str "method" in
            let* trials = int_ "trials" in
            Some (Run { r_name = name; r_method = method_; r_trials = trials })
        | Some "propose" ->
            let* uid = int_ "uid" in
            let* origin = str "origin" in
            let* chain = int_ "chain" in
            let* config = str "config" in
            let score = Option.value ~default:Float.nan (num "score") in
            Some
              (Propose
                 { p_uid = uid; p_origin = origin; p_chain = chain;
                   p_score = score; p_config = config })
        | Some "prepare" ->
            let* uid = int_ "uid" in
            let* cache = str "cache" in
            let* valid =
              match Json.member "valid" j with
              | Some (Json.Bool b) -> Some b
              | _ -> None
            in
            Some (Prepare { q_uid = uid; q_cache = cache; q_valid = valid })
        | Some "dispatch" ->
            let* uid = int_ "uid" in
            let* dev = int_ "dev" in
            let* device = str "device" in
            let* attempt = int_ "attempt" in
            let* outcome = str "outcome" in
            let* cost_s = num "cost_s" in
            let* queue_s = num "queue_s" in
            (* Shard/steal/speculation fields arrived with the fleet;
               journals written before then parse with the legacy
               defaults. *)
            let shard = Option.value ~default:(-1) (int_ "shard") in
            let bool_ k d =
              match Json.member k j with Some (Json.Bool b) -> b | _ -> d
            in
            Some
              (Dispatch
                 { d_uid = uid; d_dev = dev; d_device = device;
                   d_attempt = attempt; d_outcome = outcome; d_cost_s = cost_s;
                   d_queue_s = queue_s; d_shard = shard;
                   d_stolen = bool_ "stolen" false; d_spec = bool_ "spec" false })
        | Some "measure" ->
            let* uid = int_ "uid" in
            let* status = str "status" in
            let* attempts = int_ "attempts" in
            Some
              (Measure
                 { m_uid = uid; m_status = status; m_time_s = num "time_s";
                   m_attempts = attempts })
        | _ -> None)

let load_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let out = ref [] in
      (try
         while true do
           match parse_line (input_line ic) with
           | Some e -> out := e :: !out
           | None -> ()
         done
       with End_of_file -> ());
      List.rev !out)
