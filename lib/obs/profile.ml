(** Per-kernel runtime profiling report — the shape of TVM's debug
    executor output. The graph executor produces one [kernel_record]
    per fused group per profiled run; this module owns the report type
    and its renderings (ranked text table, JSON) so every consumer
    (tvmc, bench, tests) agrees on the format. *)

type kernel_record = {
  pr_name : string;  (** workload signature of the kernel, or node name *)
  pr_group : int;  (** fusion group id *)
  pr_calls : int;  (** cumulative invocations of this kernel on the executor *)
  pr_time_s : float;  (** simulated kernel time for one call *)
  pr_launch_s : float;  (** per-call launch/framework overhead *)
  pr_bytes : float;  (** bytes touched per call (inputs + output) *)
  pr_flops : float;  (** floating-point work per call *)
}

type report = {
  rp_target : string;
  rp_records : kernel_record list;  (** in execution order *)
  rp_total_s : float;  (** end-to-end: sum of kernel time + launch overhead *)
}

let kernel_time_s r =
  List.fold_left (fun acc p -> acc +. p.pr_time_s) 0. r.rp_records

let launch_time_s r =
  List.fold_left (fun acc p -> acc +. p.pr_launch_s) 0. r.rp_records

let to_table r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-4s %10s %6s %6s %9s %9s  %s\n" "rank" "time/call" "%" "calls"
       "GFLOP/s" "MB" "kernel");
  let ranked =
    List.sort (fun a b -> compare b.pr_time_s a.pr_time_s) r.rp_records
  in
  List.iteri
    (fun i p ->
      let pct =
        if r.rp_total_s > 0. then 100. *. (p.pr_time_s +. p.pr_launch_s) /. r.rp_total_s
        else 0.
      in
      let gflops = if p.pr_time_s > 0. then p.pr_flops /. p.pr_time_s /. 1e9 else 0. in
      Buffer.add_string buf
        (Printf.sprintf "%-4d %8.3fms %5.1f%% %6d %9.1f %9.3f  %s\n" (i + 1)
           (1e3 *. p.pr_time_s) pct p.pr_calls gflops (p.pr_bytes /. 1e6) p.pr_name))
    ranked;
  Buffer.add_string buf
    (Printf.sprintf
       "total: %.3f ms (%.3f ms kernels + %.3f ms launch overhead) on %s\n"
       (1e3 *. r.rp_total_s)
       (1e3 *. kernel_time_s r)
       (1e3 *. launch_time_s r)
       r.rp_target);
  Buffer.contents buf

let to_json r =
  Json.Obj
    [
      ("target", Json.Str r.rp_target);
      ("total_s", Json.Num r.rp_total_s);
      ("kernel_s", Json.Num (kernel_time_s r));
      ("launch_s", Json.Num (launch_time_s r));
      ( "kernels",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("name", Json.Str p.pr_name);
                   ("group", Json.Num (Float.of_int p.pr_group));
                   ("calls", Json.Num (Float.of_int p.pr_calls));
                   ("time_s", Json.Num p.pr_time_s);
                   ("launch_s", Json.Num p.pr_launch_s);
                   ("bytes", Json.Num p.pr_bytes);
                   ("flops", Json.Num p.pr_flops);
                 ])
             r.rp_records) );
    ]

let write_json path r = Json.write_file path (to_json r)
