(** Minimal JSON value type with a compact printer and a strict parser.

    The observability layer emits Chrome trace-event files and metrics
    dumps; tests re-parse those files to assert well-formedness. The
    stack deliberately has no external JSON dependency, so this module
    implements the small subset needed: the full value grammar, string
    escaping (including [\uXXXX] decoding on input), and numbers
    printed without precision loss for the magnitudes we use
    (microsecond timestamps, counters, byte sizes). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string v =
  (* JSON has no NaN/Infinity literals; those degrade to null at the
     value level (see [write]), so here v is finite. Integral values
     print as integers — Chrome's trace viewer is strict about [pid]. *)
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

(** Safe number constructor: NaN/±inf become [Null] so they can never
    reach a dump as the invalid literals [nan]/[inf]. Every producer
    of numeric JSON should build values through this. *)
let num v = if Float.is_finite v then Num v else Null

(** Full-precision JSON number text ([%.17g] round-trips every finite
    double); NaN/±inf render as ["null"]. For line-oriented writers
    (the journal, tuning logs) that assemble records directly. *)
let num_string v =
  if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v ->
      if Float.is_finite v then Buffer.add_string buf (number_to_string v)
      else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf v;
  Buffer.contents buf

(** [s] as a quoted, escaped JSON string literal. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  escape_to buf s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "invalid \\u escape"
               in
               pos := !pos + 4;
               (match Uchar.of_int code with
               | u -> Buffer.add_utf_8_uchar buf u
               | exception Invalid_argument _ -> Buffer.add_char buf '?')
           | _ -> fail "unknown escape");
          loop ()
      | c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors (for tests and tooling)                                   *)
(* ------------------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
let to_num_opt = function Num v -> Some v | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')
