(** Tuning flight recorder: a structured, append-only journal of every
    tuning trial's and compile job's full lifecycle.

    Each trial produces up to four kinds of records, keyed by a
    process-unique trial id ([uid]):

    - {b propose} — the explorer emitted the configuration: canonical
      config text, origin ([seed] / [random] / [sa] / [ga] /
      [compiler]), the simulated-annealing chain that found it, and the
      cost model's predicted score;
    - {b prepare} — lowering + featurization: whether the compile cache
      already knew this configuration ([hit]/[miss] at the feature
      level, which is invariant under the cache on/off A-B switch) and
      whether it compiled to a valid program;
    - {b dispatch} — one record per measurement attempt on the device
      pool: device id and name, attempt number, outcome ([ok] /
      [timeout] / [crash] / [corrupt] / [device_death] /
      [invalid_config]), the attempt's simulated cost and queue wait;
    - {b measure} — the trial's final status and time, with the total
      attempt count.

    Determinism is the core contract, inherited from the PR-4/5 logs:
    every record is written on the coordinator domain, in input order —
    proposals and prepare outcomes during the tuner's sequential merge
    loops, dispatches during the device pool's sequential replay, and
    measure records during trial bookkeeping — and no record contains a
    wall-clock timestamp. A journal for a fixed seed is therefore
    byte-identical at any [-j] and with the compile cache on or off.

    The journal is disabled by default; when disabled every recording
    call is a single flag check. *)

type entry =
  | Run of { r_name : string; r_method : string; r_trials : int }
      (** a tuning run (or compile job group) started *)
  | Propose of {
      p_uid : int;
      p_origin : string;
      p_chain : int;  (** SA chain index, [-1] when not from SA *)
      p_score : float;  (** predicted score, [nan] when unpredicted *)
      p_config : string;
    }
  | Prepare of {
      q_uid : int;
      q_cache : string;  (** ["hit"] or ["miss"] (feature level) *)
      q_valid : bool;  (** compiled to a program *)
    }
  | Dispatch of {
      d_uid : int;
      d_dev : int;
      d_device : string;  (** device kind name *)
      d_attempt : int;  (** 0-based attempt number within the trial *)
      d_outcome : string;
      d_cost_s : float;  (** simulated cost charged to the device *)
      d_queue_s : float;  (** simulated wait for the device to free up *)
      d_shard : int;  (** shard that ran the attempt, [-1] legacy pool *)
      d_stolen : bool;  (** job was stolen from another shard's backlog *)
      d_spec : bool;  (** speculative duplicate of a straggling attempt *)
    }
  | Measure of {
      m_uid : int;
      m_status : string;
      m_time_s : float option;  (** [Some t] iff the status is [ok] *)
      m_attempts : int;
    }

val set_enabled : bool -> unit
(** Enabling an off journal also {!reset}s it. *)

val enabled : unit -> bool
val reset : unit -> unit

val fresh_uid : unit -> int
(** Next trial id. Always live (enabled or not) so uid sequences don't
    depend on observability flags; allocation order on the coordinator
    is what makes them deterministic. *)

(** Recording. Each call appends one record (no-op when disabled). *)

val run : name:string -> method_:string -> trials:int -> unit
val propose :
  uid:int -> origin:string -> chain:int -> score:float -> config:string -> unit
val prepare : uid:int -> cache:string -> valid:bool -> unit
val dispatch :
  ?shard:int ->
  ?stolen:bool ->
  ?spec:bool ->
  uid:int ->
  dev:int ->
  device:string ->
  attempt:int ->
  outcome:string ->
  cost_s:float ->
  queue_s:float ->
  unit ->
  unit
(** [shard]/[stolen]/[spec] default to the legacy pool's values
    ([-1]/[false]/[false]); the sharded fleet fills them in. The
    outcome vocabulary gains ["cancelled"] for a speculative twin
    whose sibling finished first. *)

val measure :
  uid:int -> status:string -> time_s:float option -> attempts:int -> unit

(** Job tags correlate device-pool jobs with trials: before submitting
    a measurement batch the tuner publishes the per-job trial ids for
    the current domain; the pool looks its job index up to attribute
    dispatch records. *)

val set_job_tags : int array -> unit
(** [tags.(j)] is the uid of batch job [j] on this domain. *)

val clear_job_tags : unit -> unit

val job_tag : int -> int
(** Uid for job [j], or [-1] when untagged (no dispatch records). *)

(** Access and serialization. *)

val entries : unit -> entry list
(** In record order. *)

val size : unit -> int

val entry_to_line : entry -> string
(** One JSON object, no trailing newline. Floats print at full
    precision ([%.17g]); [nan]/absent floats print as [null]. *)

val to_jsonl : unit -> string
val write_jsonl : string -> unit

val parse_line : string -> entry option
(** Inverse of {!entry_to_line}; [None] on blank/foreign lines. *)

val load_jsonl : string -> entry list
(** Parse a journal file, skipping unparseable lines. *)
