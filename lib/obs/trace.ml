(** Span tracing: nested timed spans over a monotonic clock.

    The tracer is a process-global, mutex-protected recorder, disabled
    by default. When disabled, [with_span] is a single flag check and a
    direct call — no allocation, no locking — so instrumentation can
    stay in hot paths permanently. When enabled it records a tree of
    closed spans plus point-in-time instant events (e.g. one per tuner
    trial), and exports either a human-readable tree or Chrome
    [trace_event] JSON loadable in [chrome://tracing] / Perfetto.

    Every span and event carries a {e lane} — a Chrome [(pid, tid)]
    pair — so the export separates host domains and simulated devices
    into their own tracks instead of stacking everything on pid 1 /
    tid 1. Each domain has an ambient lane (default [host_lane]); the
    device pool places its per-job slices on per-device lanes
    explicitly. Lanes are labelled with [process_name]/[thread_name]
    metadata events, and {!flow} emits Chrome flow arrows
    ([ph: s/t/f]) that link one tuning trial's propose → dispatch →
    measure steps across lanes.

    Time comes from the monotonic clock (nanoseconds); timestamps are
    reported relative to the most recent [reset]/[set_enabled true], so
    traces start near t=0. *)

type span = {
  sp_id : int;
  sp_parent : int;  (** [-1] for roots; [-2] for lane slices (kept out
                        of the span tree, exported like any span) *)
  sp_depth : int;
  sp_name : string;
  mutable sp_attrs : (string * string) list;
  sp_start_ns : int64;
  mutable sp_dur_ns : int64;  (** [-1L] while open *)
  sp_pid : int;
  sp_tid : int;
}

type flow_phase = Flow_start | Flow_step | Flow_end

type event = {
  ev_name : string;
  ev_attrs : (string * string) list;
  ev_ts_ns : int64;
  ev_parent : int;
  ev_pid : int;
  ev_tid : int;
  ev_flow : flow_phase option;  (** [None] = instant event *)
  ev_flow_id : int;
}

let on = ref false
let lock = Mutex.create ()
let next_id = ref 0
let epoch_ns = ref 0L
let open_stack : span list ref = ref []
let closed : span list ref = ref []  (* reverse completion order *)
let events : event list ref = ref []  (* reverse order *)

let now_ns () = Monotonic_clock.now ()

let enabled () = !on

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* ------------------------------------------------------------------ *)
(* Lanes                                                               *)
(* ------------------------------------------------------------------ *)

(** The coordinator's lane: pid 1 ("tvm host"), tid 1 ("main"). *)
let host_lane = (1, 1)

(** Lane of worker domain [i] (1-based) in the Tvm_par pool. *)
let domain_lane i = (1, 1 + i)

(** Lane of simulated device [dev_id] in the RPC pool. *)
let device_lane dev_id = (2, 1 + dev_id)

(* Ambient lane: every span/event opened on this domain without an
   explicit [?lane] lands here. Worker domains set theirs on spawn. *)
let lane_key : (int * int) Domain.DLS.key = Domain.DLS.new_key (fun () -> host_lane)

let set_lane lane = Domain.DLS.set lane_key lane
let current_lane () = Domain.DLS.get lane_key

(* Lane labels survive [reset] deliberately: pools register their
   device lanes at creation, which may precede enabling the tracer. *)
let process_names : (int, string) Hashtbl.t = Hashtbl.create 8
let thread_names : (int * int, string) Hashtbl.t = Hashtbl.create 16

let name_process ~pid name = locked (fun () -> Hashtbl.replace process_names pid name)

let name_thread ~lane name = locked (fun () -> Hashtbl.replace thread_names lane name)

let () =
  Hashtbl.replace process_names (fst host_lane) "tvm host";
  Hashtbl.replace thread_names host_lane "main"

let reset () =
  locked (fun () ->
      next_id := 0;
      open_stack := [];
      closed := [];
      events := [];
      epoch_ns := now_ns ())

let set_enabled b =
  if b && not !on then reset ();
  on := b

let open_span ?(attrs = []) name =
  let pid, tid = current_lane () in
  locked (fun () ->
      let parent, depth =
        match !open_stack with
        | [] -> (-1, 0)
        | p :: _ -> (p.sp_id, p.sp_depth + 1)
      in
      let sp =
        {
          sp_id = !next_id;
          sp_parent = parent;
          sp_depth = depth;
          sp_name = name;
          sp_attrs = attrs;
          sp_start_ns = now_ns ();
          sp_dur_ns = -1L;
          sp_pid = pid;
          sp_tid = tid;
        }
      in
      incr next_id;
      open_stack := sp :: !open_stack;
      sp)

let close_span ?error sp =
  locked (fun () ->
      sp.sp_dur_ns <- Int64.sub (now_ns ()) sp.sp_start_ns;
      (match error with
      | Some e -> sp.sp_attrs <- ("error", e) :: sp.sp_attrs
      | None -> ());
      (* Pop down to (and including) sp: defensive against a child the
         caller failed to close, which would otherwise pin the stack. *)
      let rec pop = function
        | s :: rest when s.sp_id = sp.sp_id -> rest
        | _ :: rest -> pop rest
        | [] -> []
      in
      open_stack := pop !open_stack;
      closed := sp :: !closed)

let with_span ?attrs name f =
  if not !on then f ()
  else begin
    let sp = open_span ?attrs name in
    match f () with
    | v ->
        close_span sp;
        v
    | exception e ->
        close_span ~error:(Printexc.to_string e) sp;
        raise e
  end

(** Record an already-timed slice on [lane] (default: the ambient
    lane), closing now and starting at [start_ns]. Slices sit outside
    the span tree ([sp_parent = -2]) — they exist to give lane tracks
    (devices, domains) visible extents that flow arrows can bind to. *)
let slice ?lane ?(attrs = []) ~start_ns name =
  if !on then begin
    let pid, tid = match lane with Some l -> l | None -> current_lane () in
    locked (fun () ->
        let sp =
          {
            sp_id = !next_id;
            sp_parent = -2;
            sp_depth = 0;
            sp_name = name;
            sp_attrs = attrs;
            sp_start_ns = start_ns;
            sp_dur_ns = Int64.max 1L (Int64.sub (now_ns ()) start_ns);
            sp_pid = pid;
            sp_tid = tid;
          }
        in
        incr next_id;
        closed := sp :: !closed)
  end

let record_event ?lane ?(attrs = []) ?flow ?(flow_id = -1) name =
  if !on then begin
    let pid, tid = match lane with Some l -> l | None -> current_lane () in
    locked (fun () ->
        let parent = match !open_stack with [] -> -1 | p :: _ -> p.sp_id in
        events :=
          { ev_name = name; ev_attrs = attrs; ev_ts_ns = now_ns ();
            ev_parent = parent; ev_pid = pid; ev_tid = tid;
            ev_flow = flow; ev_flow_id = flow_id }
          :: !events)
  end

(** Record a point-in-time event under the current open span. Callers
    on hot paths should guard with [enabled ()] so attribute lists are
    not built when tracing is off. *)
let instant ?lane ?attrs name = record_event ?lane ?attrs name

(** One step of a Chrome flow (an arrow across lanes): [Flow_start]
    opens flow [id], [Flow_step] continues it on another lane,
    [Flow_end] terminates it. Perfetto draws the arrows between the
    slices enclosing each step. *)
let flow ?lane ~id phase name = record_event ?lane ~flow:phase ~flow_id:id name

let span_count () = locked (fun () -> List.length !closed)
let event_count () = locked (fun () -> List.length !events)

(** Closed spans in start order (open spans are not included). *)
let spans () =
  locked (fun () ->
      List.sort (fun a b -> compare a.sp_start_ns b.sp_start_ns) !closed)

let find_span name = List.find_opt (fun s -> s.sp_name = name) (spans ())

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let us_of_ns ns = Int64.to_float (Int64.sub ns !epoch_ns) /. 1e3

let to_tree_string () =
  let all = spans () in
  let evs = locked (fun () -> !events) in
  let event_counts = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace event_counts e.ev_parent
        (1 + Option.value ~default:0 (Hashtbl.find_opt event_counts e.ev_parent)))
    evs;
  let buf = Buffer.create 1024 in
  let rec emit parent =
    List.iter
      (fun s ->
        if s.sp_parent = parent then begin
          let attrs =
            match s.sp_attrs with
            | [] -> ""
            | l ->
                " ("
                ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
                ^ ")"
          in
          let ev_note =
            match Hashtbl.find_opt event_counts s.sp_id with
            | Some k -> Printf.sprintf "  [%d events]" k
            | None -> ""
          in
          Buffer.add_string buf
            (Printf.sprintf "%s%-*s %10.3f ms%s\n"
               (String.make (2 * s.sp_depth) ' ')
               (max 1 (48 - (2 * s.sp_depth)))
               (s.sp_name ^ attrs)
               (Int64.to_float s.sp_dur_ns /. 1e6)
               ev_note);
          emit s.sp_id
        end)
      all
  in
  emit (-1);
  Buffer.contents buf

let args_json attrs = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)

(** Chrome trace-event JSON (the [{"traceEvents": [...]}] envelope).
    Emits [process_name]/[thread_name] metadata for every lane that
    carries at least one span or event, then complete spans, then
    instant and flow events. *)
let to_chrome_json () =
  let all_spans = spans () in
  let all_events = locked (fun () -> List.rev !events) in
  let used_lanes =
    let tbl = Hashtbl.create 8 in
    List.iter (fun s -> Hashtbl.replace tbl (s.sp_pid, s.sp_tid) ()) all_spans;
    List.iter (fun e -> Hashtbl.replace tbl (e.ev_pid, e.ev_tid) ()) all_events;
    Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare
  in
  let meta_events =
    let lane_name (pid, tid) =
      match Hashtbl.find_opt thread_names (pid, tid) with
      | Some n -> n
      | None -> Printf.sprintf "tid %d" tid
    in
    let pids = List.sort_uniq compare (List.map fst used_lanes) in
    List.map
      (fun pid ->
        let pname =
          match Hashtbl.find_opt process_names pid with
          | Some n -> n
          | None -> Printf.sprintf "pid %d" pid
        in
        Json.Obj
          [
            ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("pid", Json.num (Float.of_int pid));
            ("tid", Json.num 0.);
            ("args", Json.Obj [ ("name", Json.Str pname) ]);
          ])
      pids
    @ List.map
        (fun (pid, tid) ->
          Json.Obj
            [
              ("name", Json.Str "thread_name");
              ("ph", Json.Str "M");
              ("pid", Json.num (Float.of_int pid));
              ("tid", Json.num (Float.of_int tid));
              ("args", Json.Obj [ ("name", Json.Str (lane_name (pid, tid))) ]);
            ])
        used_lanes
  in
  let span_events =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.Str s.sp_name);
            ("cat", Json.Str "tvm");
            ("ph", Json.Str "X");
            ("ts", Json.num (us_of_ns s.sp_start_ns));
            ("dur", Json.num (Int64.to_float s.sp_dur_ns /. 1e3));
            ("pid", Json.num (Float.of_int s.sp_pid));
            ("tid", Json.num (Float.of_int s.sp_tid));
            ("args", args_json s.sp_attrs);
          ])
      all_spans
  in
  let instant_events =
    List.map
      (fun e ->
        let common =
          [
            ("name", Json.Str e.ev_name);
            ("cat", Json.Str "tvm");
            ("ts", Json.num (us_of_ns e.ev_ts_ns));
            ("pid", Json.num (Float.of_int e.ev_pid));
            ("tid", Json.num (Float.of_int e.ev_tid));
          ]
        in
        match e.ev_flow with
        | None ->
            Json.Obj
              (common
              @ [ ("ph", Json.Str "i"); ("s", Json.Str "t");
                  ("args", args_json e.ev_attrs) ])
        | Some phase ->
            let ph, extra =
              match phase with
              | Flow_start -> ("s", [])
              | Flow_step -> ("t", [])
              | Flow_end -> ("f", [ ("bp", Json.Str "e") ])
            in
            Json.Obj
              (common
              @ [ ("ph", Json.Str ph);
                  ("id", Json.num (Float.of_int e.ev_flow_id)) ]
              @ extra))
      all_events
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta_events @ span_events @ instant_events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_chrome_trace path = Json.write_file path (to_chrome_json ())
