(** Span tracing: nested timed spans over a monotonic clock.

    The tracer is a process-global, mutex-protected recorder, disabled
    by default. When disabled, [with_span] is a single flag check and a
    direct call — no allocation, no locking — so instrumentation can
    stay in hot paths permanently. When enabled it records a tree of
    closed spans plus point-in-time instant events (e.g. one per tuner
    trial), and exports either a human-readable tree or Chrome
    [trace_event] JSON loadable in [chrome://tracing] / Perfetto.

    Time comes from the monotonic clock (nanoseconds); timestamps are
    reported relative to the most recent [reset]/[set_enabled true], so
    traces start near t=0. *)

type span = {
  sp_id : int;
  sp_parent : int;  (** [-1] for roots *)
  sp_depth : int;
  sp_name : string;
  mutable sp_attrs : (string * string) list;
  sp_start_ns : int64;
  mutable sp_dur_ns : int64;  (** [-1L] while open *)
}

type event = {
  ev_name : string;
  ev_attrs : (string * string) list;
  ev_ts_ns : int64;
  ev_parent : int;
}

let on = ref false
let lock = Mutex.create ()
let next_id = ref 0
let epoch_ns = ref 0L
let open_stack : span list ref = ref []
let closed : span list ref = ref []  (* reverse completion order *)
let events : event list ref = ref []  (* reverse order *)

let now_ns () = Monotonic_clock.now ()

let enabled () = !on

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset () =
  locked (fun () ->
      next_id := 0;
      open_stack := [];
      closed := [];
      events := [];
      epoch_ns := now_ns ())

let set_enabled b =
  if b && not !on then reset ();
  on := b

let open_span ?(attrs = []) name =
  locked (fun () ->
      let parent, depth =
        match !open_stack with
        | [] -> (-1, 0)
        | p :: _ -> (p.sp_id, p.sp_depth + 1)
      in
      let sp =
        {
          sp_id = !next_id;
          sp_parent = parent;
          sp_depth = depth;
          sp_name = name;
          sp_attrs = attrs;
          sp_start_ns = now_ns ();
          sp_dur_ns = -1L;
        }
      in
      incr next_id;
      open_stack := sp :: !open_stack;
      sp)

let close_span ?error sp =
  locked (fun () ->
      sp.sp_dur_ns <- Int64.sub (now_ns ()) sp.sp_start_ns;
      (match error with
      | Some e -> sp.sp_attrs <- ("error", e) :: sp.sp_attrs
      | None -> ());
      (* Pop down to (and including) sp: defensive against a child the
         caller failed to close, which would otherwise pin the stack. *)
      let rec pop = function
        | s :: rest when s.sp_id = sp.sp_id -> rest
        | _ :: rest -> pop rest
        | [] -> []
      in
      open_stack := pop !open_stack;
      closed := sp :: !closed)

let with_span ?attrs name f =
  if not !on then f ()
  else begin
    let sp = open_span ?attrs name in
    match f () with
    | v ->
        close_span sp;
        v
    | exception e ->
        close_span ~error:(Printexc.to_string e) sp;
        raise e
  end

(** Record a point-in-time event under the current open span. Callers
    on hot paths should guard with [enabled ()] so attribute lists are
    not built when tracing is off. *)
let instant ?(attrs = []) name =
  if !on then
    locked (fun () ->
        let parent = match !open_stack with [] -> -1 | p :: _ -> p.sp_id in
        events :=
          { ev_name = name; ev_attrs = attrs; ev_ts_ns = now_ns (); ev_parent = parent }
          :: !events)

let span_count () = locked (fun () -> List.length !closed)
let event_count () = locked (fun () -> List.length !events)

(** Closed spans in start order (open spans are not included). *)
let spans () =
  locked (fun () ->
      List.sort (fun a b -> compare a.sp_start_ns b.sp_start_ns) !closed)

let find_span name = List.find_opt (fun s -> s.sp_name = name) (spans ())

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let us_of_ns ns = Int64.to_float (Int64.sub ns !epoch_ns) /. 1e3

let to_tree_string () =
  let all = spans () in
  let evs = locked (fun () -> !events) in
  let event_counts = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace event_counts e.ev_parent
        (1 + Option.value ~default:0 (Hashtbl.find_opt event_counts e.ev_parent)))
    evs;
  let buf = Buffer.create 1024 in
  let rec emit parent =
    List.iter
      (fun s ->
        if s.sp_parent = parent then begin
          let attrs =
            match s.sp_attrs with
            | [] -> ""
            | l ->
                " ("
                ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
                ^ ")"
          in
          let ev_note =
            match Hashtbl.find_opt event_counts s.sp_id with
            | Some k -> Printf.sprintf "  [%d events]" k
            | None -> ""
          in
          Buffer.add_string buf
            (Printf.sprintf "%s%-*s %10.3f ms%s\n"
               (String.make (2 * s.sp_depth) ' ')
               (max 1 (48 - (2 * s.sp_depth)))
               (s.sp_name ^ attrs)
               (Int64.to_float s.sp_dur_ns /. 1e6)
               ev_note);
          emit s.sp_id
        end)
      all
  in
  emit (-1);
  Buffer.contents buf

let args_json attrs = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)

(** Chrome trace-event JSON (the [{"traceEvents": [...]}] envelope). *)
let to_chrome_json () =
  let span_events =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.Str s.sp_name);
            ("cat", Json.Str "tvm");
            ("ph", Json.Str "X");
            ("ts", Json.Num (us_of_ns s.sp_start_ns));
            ("dur", Json.Num (Int64.to_float s.sp_dur_ns /. 1e3));
            ("pid", Json.Num 1.);
            ("tid", Json.Num 1.);
            ("args", args_json s.sp_attrs);
          ])
      (spans ())
  in
  let instant_events =
    List.rev_map
      (fun e ->
        Json.Obj
          [
            ("name", Json.Str e.ev_name);
            ("cat", Json.Str "tvm");
            ("ph", Json.Str "i");
            ("s", Json.Str "t");
            ("ts", Json.Num (us_of_ns e.ev_ts_ns));
            ("pid", Json.Num 1.);
            ("tid", Json.Num 1.);
            ("args", args_json e.ev_attrs);
          ])
      (locked (fun () -> !events))
  in
  Json.Obj
    [
      ("traceEvents", Json.List (span_events @ instant_events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_chrome_trace path = Json.write_file path (to_chrome_json ())
