(** Journal analysis: turn a flight-recorder stream ({!Journal.entry}
    list) into a fleet/trial report — per-device utilization and
    straggler detection, fault/retry attribution, per-status,
    per-origin and per-SA-chain breakdowns, and the top-K slowest
    measured trials with their configurations. Pure over the entry
    list, so it works equally on a live journal and on a loaded
    [.jsonl] file ([tvmc report]). *)

type device_stat = {
  ds_dev : int;
  ds_name : string;
  ds_attempts : int;  (** dispatch records (failures included) *)
  ds_ok : int;
  ds_retries : int;  (** dispatches with attempt number > 0 *)
  ds_timeouts : int;
  ds_crashes : int;
  ds_corrupt : int;
  ds_deaths : int;
  ds_cost_s : float;  (** total simulated seconds charged *)
  ds_queue_s : float;  (** total simulated queue wait *)
  ds_mean_cost_s : float;
  ds_fail_rate : float;
  ds_straggler : bool;
}

type trial_info = {
  ti_uid : int;
  ti_origin : string;
  ti_chain : int;
  ti_status : string;
  ti_time_s : float;
  ti_attempts : int;
  ti_config : string;
}

type chain_stat = {
  cs_chain : int;
  cs_trials : int;
  cs_best_s : float;  (** best measured time, [infinity] if none *)
}

(** Per-shard tallies, present only for fleet journals (dispatch
    records carrying a shard id). *)
type shard_stat = {
  sh_shard : int;
  sh_kind : string;
  sh_attempts : int;
  sh_ok : int;
  sh_stolen : int;  (** attempts that arrived by work stealing *)
  sh_cost_s : float;  (** total simulated seconds charged *)
  sh_share : float;  (** fraction of the fleet's charged time *)
}

type t = {
  rp_runs : (string * string * int) list;  (** (name, method, trials) *)
  rp_trials : int;  (** measure records *)
  rp_dispatches : int;
  rp_retries : int;
  rp_devices : device_stat list;  (** by device id *)
  rp_status : (string * int) list;  (** final status → trials *)
  rp_origins : (string * int) list;  (** origin → trials proposed *)
  rp_chains : chain_stat list;  (** SA chains only *)
  rp_cache_hits : int;
  rp_cache_misses : int;
  rp_invalid : int;  (** prepare records with [valid = false] *)
  rp_slowest : trial_info list;  (** top-K slowest ok trials, desc *)
  rp_best : trial_info option;  (** fastest ok trial *)
  rp_shards : shard_stat list;  (** by shard id; [] for pool journals *)
  rp_stolen : int;  (** dispatches that ran on a stealing shard *)
  rp_spec_wins : int;  (** speculative twins that finished first *)
  rp_spec_losses : int;  (** twins cancelled by their primary *)
}

let median = function
  | [] -> Float.nan
  | l ->
      let a = Array.of_list l in
      Array.sort compare a;
      a.(Array.length a / 2)

(* A straggler is a device that did real work and is an outlier either
   in mean attempt cost (vs the fleet median) or in failure rate (vs
   the fleet aggregate): a flaky board burns its jobs' budgets on
   timeouts/retries, so both signatures usually fire together. *)
let min_attempts = 5
let cost_outlier_factor = 1.5
let fail_rate_factor = 2.5
let fail_rate_floor = 0.15

let analyze ?(top = 5) (entries : Journal.entry list) : t =
  let runs = ref [] in
  let proposed : (int, string * int * string) Hashtbl.t = Hashtbl.create 256 in
  let status_tally : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let origin_tally : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let chain_tally : (int, int * float) Hashtbl.t = Hashtbl.create 32 in
  let dev_tbl : (int, device_stat ref) Hashtbl.t = Hashtbl.create 8 in
  let trials = ref 0 and dispatches = ref 0 and retries = ref 0 in
  let shard_tbl : (int, string * int * int * int * float) Hashtbl.t =
    Hashtbl.create 8
  in
  let stolen = ref 0 and spec_wins = ref 0 and spec_losses = ref 0 in
  let cache_hits = ref 0 and cache_misses = ref 0 and invalid = ref 0 in
  let measured : trial_info list ref = ref [] in
  let tally tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  List.iter
    (fun (e : Journal.entry) ->
      match e with
      | Journal.Run { r_name; r_method; r_trials } ->
          runs := (r_name, r_method, r_trials) :: !runs
      | Journal.Propose { p_uid; p_origin; p_chain; p_config; _ } ->
          Hashtbl.replace proposed p_uid (p_origin, p_chain, p_config);
          tally origin_tally p_origin
      | Journal.Prepare { q_cache; q_valid; _ } ->
          (if q_cache = "hit" then incr cache_hits else incr cache_misses);
          if not q_valid then incr invalid
      | Journal.Dispatch
          {
            d_dev;
            d_device;
            d_attempt;
            d_outcome;
            d_cost_s;
            d_queue_s;
            d_shard;
            d_stolen;
            d_spec;
            _;
          } ->
          incr dispatches;
          if d_attempt > 0 then incr retries;
          if d_stolen then incr stolen;
          if d_spec then
            if d_outcome = "cancelled" then incr spec_losses
            else incr spec_wins;
          if d_shard >= 0 then begin
            let kind, att, ok, stl, cost =
              Option.value
                ~default:(d_device, 0, 0, 0, 0.)
                (Hashtbl.find_opt shard_tbl d_shard)
            in
            Hashtbl.replace shard_tbl d_shard
              ( kind,
                att + 1,
                (ok + if d_outcome = "ok" then 1 else 0),
                (stl + if d_stolen then 1 else 0),
                cost +. d_cost_s )
          end;
          let ds =
            match Hashtbl.find_opt dev_tbl d_dev with
            | Some r -> r
            | None ->
                let r =
                  ref
                    { ds_dev = d_dev; ds_name = d_device; ds_attempts = 0;
                      ds_ok = 0; ds_retries = 0; ds_timeouts = 0;
                      ds_crashes = 0; ds_corrupt = 0; ds_deaths = 0;
                      ds_cost_s = 0.; ds_queue_s = 0.; ds_mean_cost_s = 0.;
                      ds_fail_rate = 0.; ds_straggler = false }
                in
                Hashtbl.replace dev_tbl d_dev r;
                r
          in
          let d = !ds in
          ds :=
            { d with
              ds_attempts = d.ds_attempts + 1;
              ds_ok = (d.ds_ok + if d_outcome = "ok" then 1 else 0);
              ds_retries = (d.ds_retries + if d_attempt > 0 then 1 else 0);
              ds_timeouts = (d.ds_timeouts + if d_outcome = "timeout" then 1 else 0);
              ds_crashes = (d.ds_crashes + if d_outcome = "crash" then 1 else 0);
              ds_corrupt = (d.ds_corrupt + if d_outcome = "corrupt" then 1 else 0);
              ds_deaths =
                (d.ds_deaths + if d_outcome = "device_death" then 1 else 0);
              ds_cost_s = d.ds_cost_s +. d_cost_s;
              ds_queue_s = d.ds_queue_s +. d_queue_s }
      | Journal.Measure { m_uid; m_status; m_time_s; m_attempts } ->
          incr trials;
          tally status_tally m_status;
          let origin, chain, config =
            Option.value ~default:("?", -1, "?")
              (Hashtbl.find_opt proposed m_uid)
          in
          let time = Option.value ~default:Float.nan m_time_s in
          if chain >= 0 then begin
            let n, best =
              Option.value ~default:(0, Float.infinity)
                (Hashtbl.find_opt chain_tally chain)
            in
            let best =
              match m_time_s with Some t -> Float.min best t | None -> best
            in
            Hashtbl.replace chain_tally chain (n + 1, best)
          end;
          if m_status = "ok" then
            measured :=
              { ti_uid = m_uid; ti_origin = origin; ti_chain = chain;
                ti_status = m_status; ti_time_s = time;
                ti_attempts = m_attempts; ti_config = config }
              :: !measured)
    entries;
  let devices =
    Hashtbl.fold (fun _ r acc -> !r :: acc) dev_tbl []
    |> List.map (fun d ->
           { d with
             ds_mean_cost_s =
               (if d.ds_attempts = 0 then 0.
                else d.ds_cost_s /. float_of_int d.ds_attempts);
             ds_fail_rate =
               (if d.ds_attempts = 0 then 0.
                else
                  float_of_int (d.ds_attempts - d.ds_ok)
                  /. float_of_int d.ds_attempts) })
    |> List.sort (fun a b -> compare a.ds_dev b.ds_dev)
  in
  let active = List.filter (fun d -> d.ds_attempts > 0) devices in
  let median_cost = median (List.map (fun d -> d.ds_mean_cost_s) active) in
  let fleet_attempts =
    List.fold_left (fun acc d -> acc + d.ds_attempts) 0 active
  in
  let fleet_fails =
    List.fold_left (fun acc d -> acc + (d.ds_attempts - d.ds_ok)) 0 active
  in
  let fleet_fail_rate =
    if fleet_attempts = 0 then 0.
    else float_of_int fleet_fails /. float_of_int fleet_attempts
  in
  let devices =
    List.map
      (fun d ->
        let cost_outlier =
          Float.is_finite median_cost && median_cost > 0.
          && d.ds_mean_cost_s > cost_outlier_factor *. median_cost
        in
        let fail_outlier =
          d.ds_fail_rate
          > Float.max fail_rate_floor (fail_rate_factor *. fleet_fail_rate)
        in
        { d with
          ds_straggler =
            d.ds_attempts >= min_attempts && (cost_outlier || fail_outlier) })
      devices
  in
  let measured =
    List.stable_sort (fun a b -> compare b.ti_time_s a.ti_time_s) !measured
  in
  let slowest = List.filteri (fun i _ -> i < top) measured in
  let best =
    match List.rev measured with [] -> None | fastest :: _ -> Some fastest
  in
  let sorted_tally tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  {
    rp_runs = List.rev !runs;
    rp_trials = !trials;
    rp_dispatches = !dispatches;
    rp_retries = !retries;
    rp_devices = devices;
    rp_status = sorted_tally status_tally;
    rp_origins = sorted_tally origin_tally;
    rp_chains =
      Hashtbl.fold
        (fun c (n, b) acc -> { cs_chain = c; cs_trials = n; cs_best_s = b } :: acc)
        chain_tally []
      |> List.sort (fun a b -> compare a.cs_chain b.cs_chain);
    rp_cache_hits = !cache_hits;
    rp_cache_misses = !cache_misses;
    rp_invalid = !invalid;
    rp_slowest = slowest;
    rp_best = best;
    rp_shards =
      (let total_cost =
         Hashtbl.fold (fun _ (_, _, _, _, c) acc -> acc +. c) shard_tbl 0.
       in
       Hashtbl.fold
         (fun id (kind, att, ok, stl, cost) acc ->
           {
             sh_shard = id;
             sh_kind = kind;
             sh_attempts = att;
             sh_ok = ok;
             sh_stolen = stl;
             sh_cost_s = cost;
             sh_share = (if total_cost > 0. then cost /. total_cost else 0.);
           }
           :: acc)
         shard_tbl []
       |> List.sort (fun a b -> compare a.sh_shard b.sh_shard));
    rp_stolen = !stolen;
    rp_spec_wins = !spec_wins;
    rp_spec_losses = !spec_losses;
  }

let stragglers t = List.filter (fun d -> d.ds_straggler) t.rp_devices

let render (t : t) : string =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "flight recorder report\n";
  p "======================\n\n";
  List.iter
    (fun (name, method_, trials) ->
      p "run: %s (%s, %d trials)\n" name method_ trials)
    t.rp_runs;
  p "\ntrials: %d measured, %d dispatches (%d retries)\n" t.rp_trials
    t.rp_dispatches t.rp_retries;
  p "prepare: %d cache hits, %d misses, %d invalid configs\n" t.rp_cache_hits
    t.rp_cache_misses t.rp_invalid;
  if t.rp_status <> [] then begin
    p "\nby status:\n";
    List.iter (fun (s, n) -> p "  %-16s %6d\n" s n) t.rp_status
  end;
  if t.rp_origins <> [] then begin
    p "\nby origin:\n";
    List.iter (fun (s, n) -> p "  %-16s %6d\n" s n) t.rp_origins
  end;
  if t.rp_chains <> [] then begin
    p "\nby SA chain:\n";
    List.iter
      (fun c ->
        p "  chain %-3d %5d trials  best %s\n" c.cs_chain c.cs_trials
          (if Float.is_finite c.cs_best_s then
             Printf.sprintf "%.6f ms" (1e3 *. c.cs_best_s)
           else "-"))
      t.rp_chains
  end;
  if t.rp_devices <> [] then begin
    p "\ndevices:\n";
    p "  %-4s %-12s %8s %6s %8s %9s %8s %8s %11s %10s %s\n" "dev" "kind"
      "attempts" "ok" "retries" "timeouts" "crashes" "corrupt" "mean_cost_s"
      "fail_rate" "";
    List.iter
      (fun d ->
        p "  %-4d %-12s %8d %6d %8d %9d %8d %8d %11.4f %10.3f %s\n" d.ds_dev
          d.ds_name d.ds_attempts d.ds_ok d.ds_retries d.ds_timeouts
          d.ds_crashes d.ds_corrupt d.ds_mean_cost_s d.ds_fail_rate
          (if d.ds_straggler then "<- STRAGGLER" else ""))
      t.rp_devices;
    match stragglers t with
    | [] -> p "  no stragglers detected\n"
    | ss ->
        List.iter
          (fun d ->
            p
              "  straggler dev %d (%s): mean attempt cost %.4f s, fail rate \
               %.0f%%, %d timeouts / %d crashes / %d corrupt\n"
              d.ds_dev d.ds_name d.ds_mean_cost_s (100. *. d.ds_fail_rate)
              d.ds_timeouts d.ds_crashes d.ds_corrupt)
          ss
  end;
  if t.rp_shards <> [] then begin
    p "\nfleet shards:\n";
    p "  %-6s %-12s %8s %6s %8s %10s %6s\n" "shard" "kind" "attempts" "ok"
      "stolen" "cost_s" "share";
    List.iter
      (fun s ->
        p "  %-6d %-12s %8d %6d %8d %10.2f %5.1f%%\n" s.sh_shard s.sh_kind
          s.sh_attempts s.sh_ok s.sh_stolen s.sh_cost_s (100. *. s.sh_share))
      t.rp_shards;
    p "  steals: %d stolen dispatches; speculation: %d wins, %d losses\n"
      t.rp_stolen t.rp_spec_wins t.rp_spec_losses
  end;
  (match t.rp_best with
  | Some b ->
      p "\nbest trial: #%d %.6f ms (%s) %s\n" b.ti_uid (1e3 *. b.ti_time_s)
        b.ti_origin b.ti_config
  | None -> ());
  if t.rp_slowest <> [] then begin
    p "\nslowest measured trials:\n";
    List.iter
      (fun ti ->
        p "  #%-5d %12.6f ms  %-8s chain %-3d attempts %d  %s\n" ti.ti_uid
          (1e3 *. ti.ti_time_s) ti.ti_origin ti.ti_chain ti.ti_attempts
          ti.ti_config)
      t.rp_slowest
  end;
  Buffer.contents buf

(** Request-latency digest over a serving journal (the [serve_rt.*]
    JSONL written by the model server) — the serving counterpart of
    {!analyze}: per-model latency percentiles, the batch-size
    histogram, and each model's device placement tally. Pure over the
    parsed lines, like {!analyze} over journal entries. *)
module Serving = struct
  type model_stat = {
    sm_model : string;
    sm_requests : int;
    sm_mean_s : float;
    sm_p50_s : float;
    sm_p90_s : float;
    sm_p99_s : float;
    sm_slo_misses : int;
  }

  type t = {
    sv_requests : int;
    sv_throughput_rps : float;
    sv_max_batch : int;
    sv_slab_bytes : float;
    sv_naive_bytes : float;
    sv_models : model_stat list;  (** by model name *)
    sv_batch_hist : (int * int) list;  (** batch size → batches *)
    sv_placements : (string * (string * int) list) list;
        (** model → device → groups *)
  }

  (** True when the first JSONL line of a file carries a [serve_rt.*]
      kind — how [tvmc report] picks this digest over the fleet one. *)
  let is_serving_line line =
    match Json.member "kind" (Json.parse line) with
    | Some (Json.Str k) ->
        String.length k >= 9 && String.sub k 0 9 = "serve_rt."
    | _ -> false
    | exception _ -> false

  let num ?(default = Float.nan) key obj =
    match Option.bind (Json.member key obj) Json.to_num_opt with
    | Some v -> v
    | None -> default

  let str ?(default = "?") key obj =
    match Option.bind (Json.member key obj) Json.to_string_opt with
    | Some s -> s
    | None -> default

  (* Exact nearest-rank percentile: the digest must match the server's
     own bit-stable report, so no histogram approximation. *)
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then Float.nan
    else
      let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (rank - 1)))

  let analyze (lines : Json.t list) : t =
    let requests = ref 0 and throughput = ref 0. and max_batch = ref 0 in
    let slab = ref Float.nan and naive = ref Float.nan in
    let by_model : (string, float list ref * int ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let batch_hist : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let placements = ref [] in
    List.iter
      (fun obj ->
        match Json.member "kind" obj with
        | Some (Json.Str "serve_rt.run") ->
            requests := int_of_float (num "requests" obj ~default:0.);
            throughput := num "throughput_rps" obj ~default:0.;
            max_batch := int_of_float (num "max_batch" obj ~default:0.);
            slab := num "slab_bytes" obj;
            naive := num "naive_bytes" obj
        | Some (Json.Str "serve_rt.placement") ->
            let model = str "model" obj in
            let tally =
              List.filter_map
                (fun d ->
                  Option.bind (Json.member d obj) Json.to_num_opt
                  |> Option.map (fun n -> (d, int_of_float n)))
                [ "cpu"; "gpu"; "vdla" ]
            in
            placements := (model, tally) :: !placements
        | Some (Json.Str "serve_rt.batch") ->
            let size = int_of_float (num "size" obj ~default:0.) in
            Hashtbl.replace batch_hist size
              (1 + Option.value ~default:0 (Hashtbl.find_opt batch_hist size))
        | Some (Json.Str "serve_rt.request") ->
            let model = str "model" obj in
            let lat = num "latency_s" obj in
            let ok = num "slo_ok" obj ~default:1. in
            let lats, misses =
              match Hashtbl.find_opt by_model model with
              | Some e -> e
              | None ->
                  let e = (ref [], ref 0) in
                  Hashtbl.replace by_model model e;
                  e
            in
            lats := lat :: !lats;
            if ok = 0. then incr misses
        | _ -> ())
      lines;
    let models =
      Hashtbl.fold
        (fun model (lats, misses) acc ->
          let a = Array.of_list !lats in
          Array.sort compare a;
          let n = Array.length a in
          {
            sm_model = model;
            sm_requests = n;
            sm_mean_s =
              (if n = 0 then Float.nan
               else Array.fold_left ( +. ) 0. a /. float_of_int n);
            sm_p50_s = percentile a 50.;
            sm_p90_s = percentile a 90.;
            sm_p99_s = percentile a 99.;
            sm_slo_misses = !misses;
          }
          :: acc)
        by_model []
      |> List.sort (fun a b -> compare a.sm_model b.sm_model)
    in
    {
      sv_requests = !requests;
      sv_throughput_rps = !throughput;
      sv_max_batch = !max_batch;
      sv_slab_bytes = !slab;
      sv_naive_bytes = !naive;
      sv_models = models;
      sv_batch_hist =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) batch_hist []
        |> List.sort compare;
      sv_placements = List.sort compare !placements;
    }

  let render (t : t) : string =
    let buf = Buffer.create 2048 in
    let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    p "serving report\n";
    p "==============\n\n";
    p "requests: %d  throughput: %.1f req/s  max batch: %d\n" t.sv_requests
      t.sv_throughput_rps t.sv_max_batch;
    if Float.is_finite t.sv_slab_bytes && Float.is_finite t.sv_naive_bytes
    then
      p "slab arena: %.2f MB vs %.2f MB naive (%.0f%% saved)\n"
        (t.sv_slab_bytes /. 1e6) (t.sv_naive_bytes /. 1e6)
        (100. *. (1. -. (t.sv_slab_bytes /. Float.max 1. t.sv_naive_bytes)));
    if t.sv_models <> [] then begin
      p "\nper-model latency:\n";
      p "  %-12s %8s %10s %10s %10s %10s %10s\n" "model" "requests" "mean_ms"
        "p50_ms" "p90_ms" "p99_ms" "slo_miss";
      List.iter
        (fun m ->
          p "  %-12s %8d %10.3f %10.3f %10.3f %10.3f %10d\n" m.sm_model
            m.sm_requests (1e3 *. m.sm_mean_s) (1e3 *. m.sm_p50_s)
            (1e3 *. m.sm_p90_s) (1e3 *. m.sm_p99_s) m.sm_slo_misses)
        t.sv_models
    end;
    if t.sv_batch_hist <> [] then begin
      p "\nbatch sizes:\n";
      let total = List.fold_left (fun a (_, n) -> a + n) 0 t.sv_batch_hist in
      List.iter
        (fun (size, n) ->
          p "  %2d: %5d batches %5.1f%%  %s\n" size n
            (100. *. float_of_int n /. float_of_int (max 1 total))
            (String.make (min 60 (60 * n / max 1 total)) '#'))
        t.sv_batch_hist
    end;
    if t.sv_placements <> [] then begin
      p "\nplacement (groups per device):\n";
      List.iter
        (fun (model, tally) ->
          p "  %-12s %s\n" model
            (String.concat "  "
               (List.map (fun (d, n) -> Printf.sprintf "%s=%d" d n) tally)))
        t.sv_placements
    end;
    Buffer.contents buf
end
