(** Journal analysis: turn a flight-recorder stream ({!Journal.entry}
    list) into a fleet/trial report — per-device utilization and
    straggler detection, fault/retry attribution, per-status,
    per-origin and per-SA-chain breakdowns, and the top-K slowest
    measured trials with their configurations. Pure over the entry
    list, so it works equally on a live journal and on a loaded
    [.jsonl] file ([tvmc report]). *)

type device_stat = {
  ds_dev : int;
  ds_name : string;
  ds_attempts : int;  (** dispatch records (failures included) *)
  ds_ok : int;
  ds_retries : int;  (** dispatches with attempt number > 0 *)
  ds_timeouts : int;
  ds_crashes : int;
  ds_corrupt : int;
  ds_deaths : int;
  ds_cost_s : float;  (** total simulated seconds charged *)
  ds_queue_s : float;  (** total simulated queue wait *)
  ds_mean_cost_s : float;
  ds_fail_rate : float;
  ds_straggler : bool;
}

type trial_info = {
  ti_uid : int;
  ti_origin : string;
  ti_chain : int;
  ti_status : string;
  ti_time_s : float;
  ti_attempts : int;
  ti_config : string;
}

type chain_stat = {
  cs_chain : int;
  cs_trials : int;
  cs_best_s : float;  (** best measured time, [infinity] if none *)
}

(** Per-shard tallies, present only for fleet journals (dispatch
    records carrying a shard id). *)
type shard_stat = {
  sh_shard : int;
  sh_kind : string;
  sh_attempts : int;
  sh_ok : int;
  sh_stolen : int;  (** attempts that arrived by work stealing *)
  sh_cost_s : float;  (** total simulated seconds charged *)
  sh_share : float;  (** fraction of the fleet's charged time *)
}

type t = {
  rp_runs : (string * string * int) list;  (** (name, method, trials) *)
  rp_trials : int;  (** measure records *)
  rp_dispatches : int;
  rp_retries : int;
  rp_devices : device_stat list;  (** by device id *)
  rp_status : (string * int) list;  (** final status → trials *)
  rp_origins : (string * int) list;  (** origin → trials proposed *)
  rp_chains : chain_stat list;  (** SA chains only *)
  rp_cache_hits : int;
  rp_cache_misses : int;
  rp_invalid : int;  (** prepare records with [valid = false] *)
  rp_slowest : trial_info list;  (** top-K slowest ok trials, desc *)
  rp_best : trial_info option;  (** fastest ok trial *)
  rp_shards : shard_stat list;  (** by shard id; [] for pool journals *)
  rp_stolen : int;  (** dispatches that ran on a stealing shard *)
  rp_spec_wins : int;  (** speculative twins that finished first *)
  rp_spec_losses : int;  (** twins cancelled by their primary *)
}

let median = function
  | [] -> Float.nan
  | l ->
      let a = Array.of_list l in
      Array.sort compare a;
      a.(Array.length a / 2)

(* A straggler is a device that did real work and is an outlier either
   in mean attempt cost (vs the fleet median) or in failure rate (vs
   the fleet aggregate): a flaky board burns its jobs' budgets on
   timeouts/retries, so both signatures usually fire together. *)
let min_attempts = 5
let cost_outlier_factor = 1.5
let fail_rate_factor = 2.5
let fail_rate_floor = 0.15

let analyze ?(top = 5) (entries : Journal.entry list) : t =
  let runs = ref [] in
  let proposed : (int, string * int * string) Hashtbl.t = Hashtbl.create 256 in
  let status_tally : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let origin_tally : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let chain_tally : (int, int * float) Hashtbl.t = Hashtbl.create 32 in
  let dev_tbl : (int, device_stat ref) Hashtbl.t = Hashtbl.create 8 in
  let trials = ref 0 and dispatches = ref 0 and retries = ref 0 in
  let shard_tbl : (int, string * int * int * int * float) Hashtbl.t =
    Hashtbl.create 8
  in
  let stolen = ref 0 and spec_wins = ref 0 and spec_losses = ref 0 in
  let cache_hits = ref 0 and cache_misses = ref 0 and invalid = ref 0 in
  let measured : trial_info list ref = ref [] in
  let tally tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  List.iter
    (fun (e : Journal.entry) ->
      match e with
      | Journal.Run { r_name; r_method; r_trials } ->
          runs := (r_name, r_method, r_trials) :: !runs
      | Journal.Propose { p_uid; p_origin; p_chain; p_config; _ } ->
          Hashtbl.replace proposed p_uid (p_origin, p_chain, p_config);
          tally origin_tally p_origin
      | Journal.Prepare { q_cache; q_valid; _ } ->
          (if q_cache = "hit" then incr cache_hits else incr cache_misses);
          if not q_valid then incr invalid
      | Journal.Dispatch
          {
            d_dev;
            d_device;
            d_attempt;
            d_outcome;
            d_cost_s;
            d_queue_s;
            d_shard;
            d_stolen;
            d_spec;
            _;
          } ->
          incr dispatches;
          if d_attempt > 0 then incr retries;
          if d_stolen then incr stolen;
          if d_spec then
            if d_outcome = "cancelled" then incr spec_losses
            else incr spec_wins;
          if d_shard >= 0 then begin
            let kind, att, ok, stl, cost =
              Option.value
                ~default:(d_device, 0, 0, 0, 0.)
                (Hashtbl.find_opt shard_tbl d_shard)
            in
            Hashtbl.replace shard_tbl d_shard
              ( kind,
                att + 1,
                (ok + if d_outcome = "ok" then 1 else 0),
                (stl + if d_stolen then 1 else 0),
                cost +. d_cost_s )
          end;
          let ds =
            match Hashtbl.find_opt dev_tbl d_dev with
            | Some r -> r
            | None ->
                let r =
                  ref
                    { ds_dev = d_dev; ds_name = d_device; ds_attempts = 0;
                      ds_ok = 0; ds_retries = 0; ds_timeouts = 0;
                      ds_crashes = 0; ds_corrupt = 0; ds_deaths = 0;
                      ds_cost_s = 0.; ds_queue_s = 0.; ds_mean_cost_s = 0.;
                      ds_fail_rate = 0.; ds_straggler = false }
                in
                Hashtbl.replace dev_tbl d_dev r;
                r
          in
          let d = !ds in
          ds :=
            { d with
              ds_attempts = d.ds_attempts + 1;
              ds_ok = (d.ds_ok + if d_outcome = "ok" then 1 else 0);
              ds_retries = (d.ds_retries + if d_attempt > 0 then 1 else 0);
              ds_timeouts = (d.ds_timeouts + if d_outcome = "timeout" then 1 else 0);
              ds_crashes = (d.ds_crashes + if d_outcome = "crash" then 1 else 0);
              ds_corrupt = (d.ds_corrupt + if d_outcome = "corrupt" then 1 else 0);
              ds_deaths =
                (d.ds_deaths + if d_outcome = "device_death" then 1 else 0);
              ds_cost_s = d.ds_cost_s +. d_cost_s;
              ds_queue_s = d.ds_queue_s +. d_queue_s }
      | Journal.Measure { m_uid; m_status; m_time_s; m_attempts } ->
          incr trials;
          tally status_tally m_status;
          let origin, chain, config =
            Option.value ~default:("?", -1, "?")
              (Hashtbl.find_opt proposed m_uid)
          in
          let time = Option.value ~default:Float.nan m_time_s in
          if chain >= 0 then begin
            let n, best =
              Option.value ~default:(0, Float.infinity)
                (Hashtbl.find_opt chain_tally chain)
            in
            let best =
              match m_time_s with Some t -> Float.min best t | None -> best
            in
            Hashtbl.replace chain_tally chain (n + 1, best)
          end;
          if m_status = "ok" then
            measured :=
              { ti_uid = m_uid; ti_origin = origin; ti_chain = chain;
                ti_status = m_status; ti_time_s = time;
                ti_attempts = m_attempts; ti_config = config }
              :: !measured)
    entries;
  let devices =
    Hashtbl.fold (fun _ r acc -> !r :: acc) dev_tbl []
    |> List.map (fun d ->
           { d with
             ds_mean_cost_s =
               (if d.ds_attempts = 0 then 0.
                else d.ds_cost_s /. float_of_int d.ds_attempts);
             ds_fail_rate =
               (if d.ds_attempts = 0 then 0.
                else
                  float_of_int (d.ds_attempts - d.ds_ok)
                  /. float_of_int d.ds_attempts) })
    |> List.sort (fun a b -> compare a.ds_dev b.ds_dev)
  in
  let active = List.filter (fun d -> d.ds_attempts > 0) devices in
  let median_cost = median (List.map (fun d -> d.ds_mean_cost_s) active) in
  let fleet_attempts =
    List.fold_left (fun acc d -> acc + d.ds_attempts) 0 active
  in
  let fleet_fails =
    List.fold_left (fun acc d -> acc + (d.ds_attempts - d.ds_ok)) 0 active
  in
  let fleet_fail_rate =
    if fleet_attempts = 0 then 0.
    else float_of_int fleet_fails /. float_of_int fleet_attempts
  in
  let devices =
    List.map
      (fun d ->
        let cost_outlier =
          Float.is_finite median_cost && median_cost > 0.
          && d.ds_mean_cost_s > cost_outlier_factor *. median_cost
        in
        let fail_outlier =
          d.ds_fail_rate
          > Float.max fail_rate_floor (fail_rate_factor *. fleet_fail_rate)
        in
        { d with
          ds_straggler =
            d.ds_attempts >= min_attempts && (cost_outlier || fail_outlier) })
      devices
  in
  let measured =
    List.stable_sort (fun a b -> compare b.ti_time_s a.ti_time_s) !measured
  in
  let slowest = List.filteri (fun i _ -> i < top) measured in
  let best =
    match List.rev measured with [] -> None | fastest :: _ -> Some fastest
  in
  let sorted_tally tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  {
    rp_runs = List.rev !runs;
    rp_trials = !trials;
    rp_dispatches = !dispatches;
    rp_retries = !retries;
    rp_devices = devices;
    rp_status = sorted_tally status_tally;
    rp_origins = sorted_tally origin_tally;
    rp_chains =
      Hashtbl.fold
        (fun c (n, b) acc -> { cs_chain = c; cs_trials = n; cs_best_s = b } :: acc)
        chain_tally []
      |> List.sort (fun a b -> compare a.cs_chain b.cs_chain);
    rp_cache_hits = !cache_hits;
    rp_cache_misses = !cache_misses;
    rp_invalid = !invalid;
    rp_slowest = slowest;
    rp_best = best;
    rp_shards =
      (let total_cost =
         Hashtbl.fold (fun _ (_, _, _, _, c) acc -> acc +. c) shard_tbl 0.
       in
       Hashtbl.fold
         (fun id (kind, att, ok, stl, cost) acc ->
           {
             sh_shard = id;
             sh_kind = kind;
             sh_attempts = att;
             sh_ok = ok;
             sh_stolen = stl;
             sh_cost_s = cost;
             sh_share = (if total_cost > 0. then cost /. total_cost else 0.);
           }
           :: acc)
         shard_tbl []
       |> List.sort (fun a b -> compare a.sh_shard b.sh_shard));
    rp_stolen = !stolen;
    rp_spec_wins = !spec_wins;
    rp_spec_losses = !spec_losses;
  }

let stragglers t = List.filter (fun d -> d.ds_straggler) t.rp_devices

let render (t : t) : string =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "flight recorder report\n";
  p "======================\n\n";
  List.iter
    (fun (name, method_, trials) ->
      p "run: %s (%s, %d trials)\n" name method_ trials)
    t.rp_runs;
  p "\ntrials: %d measured, %d dispatches (%d retries)\n" t.rp_trials
    t.rp_dispatches t.rp_retries;
  p "prepare: %d cache hits, %d misses, %d invalid configs\n" t.rp_cache_hits
    t.rp_cache_misses t.rp_invalid;
  if t.rp_status <> [] then begin
    p "\nby status:\n";
    List.iter (fun (s, n) -> p "  %-16s %6d\n" s n) t.rp_status
  end;
  if t.rp_origins <> [] then begin
    p "\nby origin:\n";
    List.iter (fun (s, n) -> p "  %-16s %6d\n" s n) t.rp_origins
  end;
  if t.rp_chains <> [] then begin
    p "\nby SA chain:\n";
    List.iter
      (fun c ->
        p "  chain %-3d %5d trials  best %s\n" c.cs_chain c.cs_trials
          (if Float.is_finite c.cs_best_s then
             Printf.sprintf "%.6f ms" (1e3 *. c.cs_best_s)
           else "-"))
      t.rp_chains
  end;
  if t.rp_devices <> [] then begin
    p "\ndevices:\n";
    p "  %-4s %-12s %8s %6s %8s %9s %8s %8s %11s %10s %s\n" "dev" "kind"
      "attempts" "ok" "retries" "timeouts" "crashes" "corrupt" "mean_cost_s"
      "fail_rate" "";
    List.iter
      (fun d ->
        p "  %-4d %-12s %8d %6d %8d %9d %8d %8d %11.4f %10.3f %s\n" d.ds_dev
          d.ds_name d.ds_attempts d.ds_ok d.ds_retries d.ds_timeouts
          d.ds_crashes d.ds_corrupt d.ds_mean_cost_s d.ds_fail_rate
          (if d.ds_straggler then "<- STRAGGLER" else ""))
      t.rp_devices;
    match stragglers t with
    | [] -> p "  no stragglers detected\n"
    | ss ->
        List.iter
          (fun d ->
            p
              "  straggler dev %d (%s): mean attempt cost %.4f s, fail rate \
               %.0f%%, %d timeouts / %d crashes / %d corrupt\n"
              d.ds_dev d.ds_name d.ds_mean_cost_s (100. *. d.ds_fail_rate)
              d.ds_timeouts d.ds_crashes d.ds_corrupt)
          ss
  end;
  if t.rp_shards <> [] then begin
    p "\nfleet shards:\n";
    p "  %-6s %-12s %8s %6s %8s %10s %6s\n" "shard" "kind" "attempts" "ok"
      "stolen" "cost_s" "share";
    List.iter
      (fun s ->
        p "  %-6d %-12s %8d %6d %8d %10.2f %5.1f%%\n" s.sh_shard s.sh_kind
          s.sh_attempts s.sh_ok s.sh_stolen s.sh_cost_s (100. *. s.sh_share))
      t.rp_shards;
    p "  steals: %d stolen dispatches; speculation: %d wins, %d losses\n"
      t.rp_stolen t.rp_spec_wins t.rp_spec_losses
  end;
  (match t.rp_best with
  | Some b ->
      p "\nbest trial: #%d %.6f ms (%s) %s\n" b.ti_uid (1e3 *. b.ti_time_s)
        b.ti_origin b.ti_config
  | None -> ());
  if t.rp_slowest <> [] then begin
    p "\nslowest measured trials:\n";
    List.iter
      (fun ti ->
        p "  #%-5d %12.6f ms  %-8s chain %-3d attempts %d  %s\n" ti.ti_uid
          (1e3 *. ti.ti_time_s) ti.ti_origin ti.ti_chain ti.ti_attempts
          ti.ti_config)
      t.rp_slowest
  end;
  Buffer.contents buf
