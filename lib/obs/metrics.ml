(** Metrics: named counters, gauges and log-scale histograms in a
    process-global registry.

    Counters accumulate ([tuner.trials], [pool.jobs]); gauges hold the
    latest value ([tuner.best_time_s], [fusion.groups]); histograms
    bucket observations on a log scale spanning nanoseconds to ~10^6
    so both per-trial kernel times and end-to-end compile times land
    in-range, and report approximate percentiles. All operations are
    O(1), mutex-protected, and always on — the cost is one hash lookup
    plus a float store, negligible next to any measured work. *)

(* Log-scale histogram: [buckets_per_decade] buckets per power of ten
   from [lo] upward. Bucket boundaries are exact powers of 10^(1/bpd);
   percentile estimates interpolate linearly inside the winning bucket
   between its bounds (clipped to the observed min/max), positioned by
   the rank's fraction of the bucket's count — so a tight distribution
   that lands entirely in one bucket still reports p50 < p90 < p99
   instead of collapsing every percentile to the bucket midpoint. *)
let lo = 1e-9
let decades = 16
let buckets_per_decade = 8
let n_buckets = decades * buckets_per_decade

type histogram = {
  h_counts : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let hist_create () =
  {
    h_counts = Array.make n_buckets 0;
    h_count = 0;
    h_sum = 0.;
    h_min = Float.infinity;
    h_max = Float.neg_infinity;
  }

let bucket_index v =
  if v <= lo then 0
  else
    let i =
      int_of_float (Float.of_int buckets_per_decade *. Float.log10 (v /. lo))
    in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

let bucket_lo i = lo *. Float.pow 10. (Float.of_int i /. Float.of_int buckets_per_decade)
let bucket_hi i = bucket_lo (i + 1)

let hist_observe h v =
  if Float.is_finite v then begin
    h.h_counts.(bucket_index v) <- h.h_counts.(bucket_index v) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

(** [p] in [0, 100]. *)
let hist_percentile h p =
  if h.h_count = 0 then Float.nan
  else begin
    let rank = Float.of_int h.h_count *. (Float.max 0. (Float.min 100. p) /. 100.) in
    let acc = ref 0 and result = ref h.h_max in
    (try
       for i = 0 to n_buckets - 1 do
         let before = !acc in
         acc := !acc + h.h_counts.(i);
         if Float.of_int !acc >= rank && h.h_counts.(i) > 0 then begin
           (* Interpolate within the winning bucket: position the rank
              inside the bucket's own count and map that fraction onto
              the bucket's bounds, clipped to the observed min/max. *)
           let frac =
             (rank -. Float.of_int before) /. Float.of_int h.h_counts.(i)
           in
           let frac = Float.max 0. (Float.min 1. frac) in
           let vlo = Float.max (bucket_lo i) h.h_min in
           let vhi = Float.max vlo (Float.min (bucket_hi i) h.h_max) in
           result := vlo +. (frac *. (vhi -. vlo));
           raise Exit
         end
       done
     with Exit -> ());
    Float.max h.h_min (Float.min h.h_max !result)
  end

let hist_mean h = if h.h_count = 0 then Float.nan else h.h_sum /. Float.of_int h.h_count

type metric =
  | Counter of float ref
  | Gauge of float ref
  | Hist of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset () = locked (fun () -> Hashtbl.reset registry)

let kind_mismatch name = invalid_arg ("metrics: " ^ name ^ " registered with another kind")

(* Per-domain counter buffer: inside [with_local_counters] (installed by
   Tvm_par's workers) counter increments accumulate in a domain-local
   table and merge into the global registry in one locked pass at the
   end. Counters are commutative sums, so the merged totals are
   independent of domain scheduling; gauges and histograms are rare on
   worker domains and go straight through the mutex. *)
let local_counters : (string, float) Hashtbl.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let incr_locked name by =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> c := !c +. by
      | Some _ -> kind_mismatch name
      | None -> Hashtbl.replace registry name (Counter (ref by)))

let incr ?(by = 1.) name =
  match Domain.DLS.get local_counters with
  | Some tbl ->
      Hashtbl.replace tbl name
        (by +. Option.value ~default:0. (Hashtbl.find_opt tbl name))
  | None -> incr_locked name by

(** Buffer this domain's counter increments locally for the duration of
    [f], merging them into the global registry afterwards (one lock
    acquisition instead of one per [incr]). Totals are unaffected:
    counter merge is a commutative sum. *)
let with_local_counters f =
  match Domain.DLS.get local_counters with
  | Some _ -> f ()  (* already buffering *)
  | None ->
      let tbl = Hashtbl.create 16 in
      Domain.DLS.set local_counters (Some tbl);
      Fun.protect
        ~finally:(fun () ->
          Domain.DLS.set local_counters None;
          Hashtbl.iter (fun name by -> incr_locked name by) tbl)
        f

let set_gauge name v =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Gauge g) -> g := v
      | Some _ -> kind_mismatch name
      | None -> Hashtbl.replace registry name (Gauge (ref v)))

let observe name v =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Hist h) -> hist_observe h v
      | Some _ -> kind_mismatch name
      | None ->
          let h = hist_create () in
          hist_observe h v;
          Hashtbl.replace registry name (Hist h))

(** Counter/gauge value, or a histogram's observation count. *)
let get name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> Some !c
      | Some (Gauge g) -> Some !g
      | Some (Hist h) -> Some (Float.of_int h.h_count)
      | None -> None)

let percentile name p =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Hist h) -> Some (hist_percentile h p)
      | _ -> None)

let names () =
  locked (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort compare)

let sorted_bindings () =
  locked (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let dump_text () =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%-32s counter %14.0f\n" name !c)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%-32s gauge   %14.6g\n" name !g)
      | Hist h ->
          Buffer.add_string buf
            (Printf.sprintf
               "%-32s hist    n=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g min=%.3g max=%.3g\n"
               name h.h_count (hist_mean h) (hist_percentile h 50.)
               (hist_percentile h 90.) (hist_percentile h 99.) h.h_min h.h_max))
    (sorted_bindings ());
  Buffer.contents buf

let to_json () =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> counters := (name, Json.Num !c) :: !counters
      | Gauge g -> gauges := (name, Json.Num !g) :: !gauges
      | Hist h ->
          hists :=
            ( name,
              Json.Obj
                [
                  ("count", Json.Num (Float.of_int h.h_count));
                  ("sum", Json.Num h.h_sum);
                  ("mean", Json.Num (hist_mean h));
                  ("min", Json.Num h.h_min);
                  ("max", Json.Num h.h_max);
                  ("p50", Json.Num (hist_percentile h 50.));
                  ("p90", Json.Num (hist_percentile h 90.));
                  ("p99", Json.Num (hist_percentile h 99.));
                ] )
            :: !hists)
    (sorted_bindings ());
  Json.Obj
    [
      ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !hists));
    ]

let write_json path = Json.write_file path (to_json ())
