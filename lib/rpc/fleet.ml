(* See fleet.mli. The engine is an event-driven virtual-time scheduler
   run entirely on the calling domain: pure model times are the only
   thing computed in parallel, and every stateful decision (placement,
   fault draws, steals, speculation, retries, journal records) replays
   sequentially in a deterministic order — a min-heap of run
   completions keyed (finish time, push sequence) with lazy
   invalidation for cancelled twins. *)

module Machine = Tvm_sim.Machine
module Measure_result = Tvm_autotune.Measure_result
module Stmt = Tvm_tir.Stmt
module Journal = Tvm_obs.Journal
module Metrics = Tvm_obs.Metrics

type catalog = {
  c_roster : (Device_pool.device_kind * float) array;
  c_shards : int;  (* per kind; 0 = auto *)
  c_noise : float;
  c_repeats : int;
  c_overhead_s : float;  (* once per device per batch *)
  c_per_job_s : float;  (* per-job dispatch cost *)
  c_fault_plan : Fault.plan;
  c_retry : Retry_policy.t;
  c_speculate : bool;
  c_spec_factor : float;
}

type fdevice = {
  fd_id : int;
  fd_kname : string;
  fd_speed : float;
  fd_shard : int;
  mutable fd_free_at : float;
  mutable fd_epoch : int;  (* last batch whose upload overhead is paid *)
  mutable fd_attempts : int;
  mutable fd_busy_s : float;
}

(* Shard backlogs are two-list FIFO queues of flat job indices. *)
type shard = {
  sh_id : int;
  sh_kname : string;
  sh_ndevs : int;
  mutable sh_front : int list;
  mutable sh_back : int list;
  mutable sh_qlen : int;
  mutable sh_attempts : int;
  mutable sh_stolen : int;  (* attempts that arrived by stealing *)
}

type t = {
  cat : catalog;
  devs : fdevice array;
  shards : shard array;
  salt : int;
  mutable clock : float;
  mutable epoch : int;
  mutable jobs_submitted : int;
  mutable attempts_n : int;
  mutable steals : int;
  mutable stolen_jobs : int;
  mutable spec_launched : int;
  mutable spec_wins : int;
  mutable spec_losses : int;
  mutable retries_n : int;
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let catalog ?(noise = 0.02) ?(repeats = 3) ?(overhead_s = 0.5)
    ?(per_job_s = 0.05) ?(fault_plan = Fault.none)
    ?(retry = Retry_policy.default) ?(speculate = false) ?(spec_factor = 1.5)
    ?(shards = 0) roster =
  if roster = [] then invalid_arg "Fleet.catalog: empty roster";
  {
    c_roster = Array.of_list roster;
    c_shards = shards;
    c_noise = noise;
    c_repeats = repeats;
    c_overhead_s = overhead_s;
    c_per_job_s = per_job_s;
    c_fault_plan = fault_plan;
    c_retry = retry;
    c_speculate = speculate;
    c_spec_factor = spec_factor;
  }

let palette =
  [|
    Device_pool.Gpu_dev Machine.titan_x;
    Device_pool.Gpu_dev Machine.mali_t860;
    Device_pool.Cpu_dev Machine.arm_a53;
    Device_pool.Cpu_dev Machine.xeon_host;
  |]

let mixed_kinds ?(primary = Device_pool.Gpu_dev Machine.titan_x) ?straggler
    ?(straggler_speed = 12.) n =
  let pname = Device_pool.kind_name primary in
  let others =
    Array.of_list
      (List.filter
         (fun k -> Device_pool.kind_name k <> pname)
         (Array.to_list palette))
  in
  let others = if Array.length others = 0 then [| primary |] else others in
  List.init n (fun i ->
      (* The straggler slot is forced to the primary kind: a slow
         device only exercises speculation if it competes for the
         target's jobs. *)
      let k =
        if straggler = Some i then primary
        else if i mod 2 = 0 then primary
        else others.((i / 2) mod Array.length others)
      in
      let speed =
        if straggler = Some i then straggler_speed
        else if i mod 13 = 6 then 2.0
        else if i mod 7 = 3 then 1.4
        else 1.0
      in
      (k, speed))

let catalog_of_spec (spec : Tvm_spec.Job_spec.t) =
  let primary = Device_pool.kind_of_target spec.target in
  let n = max 1 spec.fleet in
  let roster = mixed_kinds ~primary ?straggler:spec.straggler n in
  let fault_plan =
    (* Straggling in the fleet is modelled as slowness (speed factor),
       not extra faults: per-device fault overrides cannot apply when
       draws are keyed by job ordinal. *)
    if spec.fault_rate > 0. then
      Fault.transient ~seed:spec.seed ~rate:spec.fault_rate ()
    else Fault.none
  in
  let retry =
    {
      Retry_policy.default with
      Retry_policy.max_retries = spec.max_retries;
      timeout_s = spec.timeout_s;
    }
  in
  catalog ~fault_plan ~retry ~speculate:spec.speculate ~shards:spec.shards
    roster

let session ?(salt = 0) cat =
  (* Group devices by kind name (sorted for a stable shard order), cut
     each kind's devices into contiguous shards. *)
  let knames =
    Array.to_list cat.c_roster
    |> List.map (fun (k, _) -> Device_pool.kind_name k)
    |> List.sort_uniq compare
  in
  let shards = ref [] and devs = ref [] and sh_id = ref 0 in
  List.iter
    (fun kname ->
      let members =
        Array.to_list cat.c_roster
        |> List.mapi (fun i kd -> (i, kd))
        |> List.filter (fun (_, (k, _)) -> Device_pool.kind_name k = kname)
      in
      let nk = List.length members in
      let n_sh =
        if cat.c_shards > 0 then min cat.c_shards nk
        else max 1 (min 16 (nk / 32))
      in
      let members = Array.of_list members in
      for s = 0 to n_sh - 1 do
        let lo = s * nk / n_sh and hi = (s + 1) * nk / n_sh in
        let id = !sh_id in
        incr sh_id;
        let sdevs =
          Array.init (hi - lo) (fun i ->
              let roster_id, (_, speed) = members.(lo + i) in
              {
                fd_id = roster_id;
                fd_kname = kname;
                fd_speed = speed;
                fd_shard = id;
                fd_free_at = 0.;
                fd_epoch = -1;
                fd_attempts = 0;
                fd_busy_s = 0.;
              })
        in
        Array.iter (fun d -> devs := d :: !devs) sdevs;
        shards :=
          {
            sh_id = id;
            sh_kname = kname;
            sh_ndevs = hi - lo;
            sh_front = [];
            sh_back = [];
            sh_qlen = 0;
            sh_attempts = 0;
            sh_stolen = 0;
          }
          :: !shards
      done)
    knames;
  {
    cat;
    devs =
      Array.of_list (List.sort (fun a b -> compare a.fd_id b.fd_id) !devs);
    shards =
      Array.of_list (List.sort (fun a b -> compare a.sh_id b.sh_id) !shards);
    salt;
    clock = 0.;
    epoch = 0;
    jobs_submitted = 0;
    attempts_n = 0;
    steals = 0;
    stolen_jobs = 0;
    spec_launched = 0;
    spec_wins = 0;
    spec_losses = 0;
    retries_n = 0;
  }

let of_spec ?salt (spec : Tvm_spec.Job_spec.t) =
  session ~salt:(Option.value ~default:spec.seed salt) (catalog_of_spec spec)

let devices t = Array.length t.devs

let usable t ~kind =
  let kname = Device_pool.kind_name kind in
  Array.fold_left
    (fun acc d -> if d.fd_kname = kname then acc + 1 else acc)
    0 t.devs

let shard_count t = Array.length t.shards

let suggested_batch t ~kind ~base =
  min 512 (max base (2 * usable t ~kind))

let makespan t =
  Array.fold_left (fun acc d -> Float.max acc d.fd_free_at) t.clock t.devs

type shard_stat = {
  ss_shard : int;
  ss_kind : string;
  ss_devices : int;
  ss_attempts : int;
  ss_stolen : int;
  ss_busy_s : float;
}

type stats = {
  fs_devices : int;
  fs_shards : int;
  fs_jobs : int;
  fs_attempts : int;
  fs_steals : int;
  fs_stolen_jobs : int;
  fs_spec_launched : int;
  fs_spec_wins : int;
  fs_spec_losses : int;
  fs_retries : int;
  fs_shard_stats : shard_stat list;
}

let stats t =
  let busy = Array.make (Array.length t.shards) 0. in
  Array.iter (fun d -> busy.(d.fd_shard) <- busy.(d.fd_shard) +. d.fd_busy_s) t.devs;
  {
    fs_devices = Array.length t.devs;
    fs_shards = Array.length t.shards;
    fs_jobs = t.jobs_submitted;
    fs_attempts = t.attempts_n;
    fs_steals = t.steals;
    fs_stolen_jobs = t.stolen_jobs;
    fs_spec_launched = t.spec_launched;
    fs_spec_wins = t.spec_wins;
    fs_spec_losses = t.spec_losses;
    fs_retries = t.retries_n;
    fs_shard_stats =
      Array.to_list
        (Array.map
           (fun sh ->
             {
               ss_shard = sh.sh_id;
               ss_kind = sh.sh_kname;
               ss_devices = sh.sh_ndevs;
               ss_attempts = sh.sh_attempts;
               ss_stolen = sh.sh_stolen;
               ss_busy_s = busy.(sh.sh_id);
             })
           t.shards);
  }

(* ------------------------------------------------------------------ *)
(* The schedule engine                                                 *)
(* ------------------------------------------------------------------ *)

(* A job's deterministic description. [jd_measured] already includes
   the config-keyed noise; non-finite means the machine model rejected
   the schedule. [jd_fid] is the fault identity: salt + submission
   ordinal, so the fault sequence a job sees is independent of which
   device, shard or steal schedule ran it. *)
type jobdef = {
  jd_measured : float;
  jd_err : string option;  (* the model raised *)
  jd_uid : int;  (* journal trial uid, -1 = untagged *)
  jd_fid : int;
}

(* Per-(job, attempt) outcome: a pure function of the jobdef, so a
   speculative twin replays exactly the outcome of its sibling. *)
type joutcome =
  | O_ok of float  (* measured seconds *)
  | O_timeout  (* injected hang, killed at the budget *)
  | O_crash
  | O_corrupt of float  (* charged run seconds (outlier repeats) *)
  | O_overrun  (* deterministically slower than the budget *)
  | O_invalid
  | O_error of string

type run_rec = {
  rn_job : int;
  rn_attempt : int;
  rn_spec : bool;
  rn_stolen : bool;
  rn_dev : fdevice;
  rn_start : float;
  rn_finish : float;
  rn_outcome : joutcome;
  mutable rn_dead : bool;  (* cancelled twin: skip its event *)
}

type jstate = {
  js_home : int;  (* home shard id *)
  mutable js_attempt : int;
  mutable js_ready : float;  (* when it (re-)entered a queue *)
  mutable js_stolen : bool;
  mutable js_spec_used : bool;  (* one twin per attempt *)
  mutable js_primary : run_rec option;
  mutable js_twin : run_rec option;
}

(* Minimal binary min-heap on (finish, push-sequence). *)
module Heap = struct
  type elt = { h_t : float; h_seq : int; h_run : run_rec }
  type h = { mutable a : elt array; mutable n : int; mutable seq : int }

  let create () = { a = [||]; n = 0; seq = 0 }
  let lt x y = x.h_t < y.h_t || (x.h_t = y.h_t && x.h_seq < y.h_seq)

  let push h r ~at =
    let e = { h_t = at; h_seq = h.seq; h_run = r } in
    h.seq <- h.seq + 1;
    if h.n = Array.length h.a then begin
      let cap = max 64 (2 * h.n) in
      let a' = Array.make cap e in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- e;
    while !i > 0 && lt h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let peek h = if h.n = 0 then None else Some h.a.(0).h_run

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < h.n && lt h.a.(l) h.a.(!s) then s := l;
        if r < h.n && lt h.a.(r) h.a.(!s) then s := r;
        if !s = !i then continue_ := false
        else begin
          let tmp = h.a.(!s) in
          h.a.(!s) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !s
        end
      done;
      Some top.h_run
    end
end

let median xs =
  match xs with
  | [] -> 0.
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      a.(Array.length a / 2)

let outcome_of t jd ~attempt =
  match jd.jd_err with
  | Some m -> O_error m
  | None -> (
      match Fault.draw t.cat.c_fault_plan ~dev_id:jd.jd_fid ~attempt with
      | Fault.Died | Fault.Crash -> O_crash
      | Fault.Timeout -> O_timeout
      | (Fault.No_fault | Fault.Corrupt _) as o ->
          if not (Float.is_finite jd.jd_measured) then O_invalid
          else
            let run = float_of_int t.cat.c_repeats *. jd.jd_measured in
            (match o with
            | Fault.Corrupt factor -> O_corrupt (run *. factor)
            | _ ->
                (* The budget check uses the unscaled cost: the budget
                   bounds the measured kernel, host-side slowness does
                   not — which keeps the verdict placement-invariant. *)
                if t.cat.c_per_job_s +. run > t.cat.c_retry.Retry_policy.timeout_s
                then O_overrun
                else O_ok jd.jd_measured))

(* Charged device-seconds for running [outcome] on [dev], excluding
   batch-upload and steal-transfer surcharges. Speed scales everything
   except budget kills, which the tracker enforces in wall time. *)
let charge_on t dev = function
  | O_ok m ->
      (t.cat.c_per_job_s +. (float_of_int t.cat.c_repeats *. m)) *. dev.fd_speed
  | O_corrupt run_s -> (t.cat.c_per_job_s +. run_s) *. dev.fd_speed
  | O_crash -> t.cat.c_per_job_s *. dev.fd_speed
  | O_timeout | O_overrun -> t.cat.c_retry.Retry_policy.timeout_s
  | O_invalid | O_error _ -> 0.01

let outcome_name = function
  | O_ok _ -> "ok"
  | O_timeout | O_overrun -> "timeout"
  | O_crash -> "crash"
  | O_corrupt _ -> "corrupt"
  | O_invalid -> "invalid_config"
  | O_error _ -> "error"

let result_of ~attempts = function
  | O_ok m -> Measure_result.ok ~attempts m
  | O_timeout | O_overrun -> Measure_result.fail ~attempts Measure_result.Timeout
  | O_crash -> Measure_result.fail ~attempts Measure_result.Crash
  | O_corrupt _ ->
      Measure_result.fail ~attempts
        (Measure_result.Pool_error "unstable measurement")
  | O_invalid -> Measure_result.fail ~attempts Measure_result.Invalid_config
  | O_error m -> Measure_result.fail ~attempts (Measure_result.Pool_error m)

let retryable = function
  | O_timeout | O_crash | O_corrupt _ -> true
  | O_ok _ | O_overrun | O_invalid | O_error _ -> false

(* Run the schedule for flattened [defs], where batch [b] covers flat
   indices [offsets.(b) .. offsets.(b+1)) and is pinned to kind
   [knames.(b)]. Returns the flat result array. *)
let run_defs t ~(knames : string array) ~(offsets : int array)
    (defs : jobdef array) : Measure_result.t array =
  let c = t.cat in
  let n = Array.length defs in
  let res : Measure_result.t option array = Array.make n None in
  if n = 0 then [||]
  else begin
    t.epoch <- t.epoch + 1;
    let epoch = t.epoch in
    let submit_clock = t.clock in
    let done_n = ref 0 in
    let resolve j r =
      res.(j) <- Some r;
      incr done_n
    in
    (* Home-shard assignment: each batch's jobs are cut into contiguous
       per-shard slices over the shards matching its kind (batched
       dispatch). Batches with no matching shard fail whole. *)
    let homes = Array.make n (-1) in
    Array.iteri
      (fun b kname ->
        let lo = offsets.(b) and hi = offsets.(b + 1) in
        let eligible =
          Array.to_list t.shards |> List.filter (fun s -> s.sh_kname = kname)
        in
        match eligible with
        | [] ->
            for j = lo to hi - 1 do
              resolve j
                (Measure_result.fail
                   (Measure_result.Pool_error
                      ("fleet: no device of kind " ^ kname)))
            done
        | _ ->
            let shs = Array.of_list eligible in
            let k = Array.length shs in
            let len = hi - lo in
            for s = 0 to k - 1 do
              for j = lo + (s * len / k) to lo + ((s + 1) * len / k) - 1 do
                homes.(j) <- shs.(s).sh_id
              done
            done)
      knames;
    let states =
      Array.init n (fun j ->
          {
            js_home = homes.(j);
            js_attempt = 0;
            js_ready = submit_clock;
            js_stolen = false;
            js_spec_used = false;
            js_primary = None;
            js_twin = None;
          })
    in
    let total_queued = ref 0 in
    let q_push sh j =
      sh.sh_back <- j :: sh.sh_back;
      sh.sh_qlen <- sh.sh_qlen + 1;
      incr total_queued
    in
    let q_pop sh =
      let take j rest =
        sh.sh_qlen <- sh.sh_qlen - 1;
        decr total_queued;
        sh.sh_front <- rest;
        Some j
      in
      match sh.sh_front with
      | j :: rest -> take j rest
      | [] -> (
          match List.rev sh.sh_back with
          | [] -> None
          | j :: rest ->
              sh.sh_back <- [];
              take j rest)
    in
    (* Victim keeps the front (oldest) of its backlog; the thief takes
       the tail half, oldest-first. *)
    let q_steal victim ~take =
      let all = victim.sh_front @ List.rev victim.sh_back in
      let keep = victim.sh_qlen - take in
      let rec split i acc = function
        | rest when i = keep -> (List.rev acc, rest)
        | x :: rest -> split (i + 1) (x :: acc) rest
        | [] -> (List.rev acc, [])
      in
      let kept, taken = split 0 [] all in
      victim.sh_front <- kept;
      victim.sh_back <- [];
      victim.sh_qlen <- keep;
      total_queued := !total_queued - take;
      taken
    in
    Array.iteri (fun j h -> if h >= 0 then q_push t.shards.(h) j) homes;
    let events = Heap.create () in
    (* Retry queue: (ready time, seq, job), kept sorted; ties resolve
       by insertion order. *)
    let retryq = ref [] and retry_seq = ref 0 in
    let push_retry ~at j =
      let seq = !retry_seq in
      incr retry_seq;
      (* Sorted by (ready time, insertion order); existing entries all
         have a lower seq, so ties keep them first. *)
      let rec ins = function
        | ((t', _, _) as x) :: rest when t' <= at -> x :: ins rest
        | rest -> (at, seq, j) :: rest
      in
      retryq := ins !retryq
    in
    let ok_costs = ref [] and ok_count = ref 0 in
    (* Live primary runs, for the speculation scan (lazily pruned). *)
    let active_runs = ref [] in
    let launch dev j ~spec =
      let st = states.(j) and jd = defs.(j) in
      let attempt = st.js_attempt in
      let oc = outcome_of t jd ~attempt in
      let stolen = st.js_stolen in
      let charge =
        charge_on t dev oc
        +. (if dev.fd_epoch <> epoch then begin
              dev.fd_epoch <- epoch;
              c.c_overhead_s *. dev.fd_speed
            end
            else 0.)
        +. if stolen then 0.25 *. c.c_overhead_s *. dev.fd_speed else 0.
      in
      let charge = Float.max 1e-9 charge in
      let start = t.clock in
      let r =
        {
          rn_job = j;
          rn_attempt = attempt;
          rn_spec = spec;
          rn_stolen = stolen;
          rn_dev = dev;
          rn_start = start;
          rn_finish = start +. charge;
          rn_outcome = oc;
          rn_dead = false;
        }
      in
      dev.fd_free_at <- r.rn_finish;
      dev.fd_attempts <- dev.fd_attempts + 1;
      let sh = t.shards.(dev.fd_shard) in
      sh.sh_attempts <- sh.sh_attempts + 1;
      if stolen then sh.sh_stolen <- sh.sh_stolen + 1;
      t.attempts_n <- t.attempts_n + 1;
      Metrics.incr "fleet.attempts";
      if spec then begin
        t.spec_launched <- t.spec_launched + 1;
        Metrics.incr "fleet.spec_launched";
        st.js_spec_used <- true;
        st.js_twin <- Some r
      end
      else begin
        Metrics.observe "fleet.queue_wait_s" (start -. st.js_ready);
        st.js_primary <- Some r;
        active_runs := r :: !active_runs
      end;
      Heap.push events r ~at:r.rn_finish
    in
    let try_local dev =
      match q_pop t.shards.(dev.fd_shard) with
      | Some j -> launch dev j ~spec:false; true
      | None -> false
    in
    let try_steal dev =
      let sh = t.shards.(dev.fd_shard) in
      let victim =
        Array.fold_left
          (fun best s ->
            if s.sh_id <> sh.sh_id && s.sh_kname = sh.sh_kname && s.sh_qlen > 0
            then
              match best with
              | Some b when b.sh_qlen >= s.sh_qlen -> best
              | _ -> Some s
            else best)
          None t.shards
      in
      match victim with
      | None -> false
      | Some v ->
          let take = (v.sh_qlen + 1) / 2 in
          let taken = q_steal v ~take in
          List.iter
            (fun j ->
              states.(j).js_stolen <- true;
              q_push sh j)
            taken;
          t.steals <- t.steals + 1;
          t.stolen_jobs <- t.stolen_jobs + take;
          Metrics.incr "fleet.steals";
          Metrics.incr ~by:(float_of_int take) "fleet.stolen_jobs";
          try_local dev
    in
    (* Speculative re-measurement: duplicate the in-flight run whose
       charged time crosses [spec_factor × median completed ok cost]
       (the PR-6 straggler heuristic, fleet-relative) and whose twin
       would finish sooner here. The twin replays the same (job,
       attempt) outcome — no new fault draw. *)
    let try_speculate dev =
      if (not c.c_speculate) || !ok_count < 3 then false
      else begin
        active_runs :=
          List.filter
            (fun r ->
              (not r.rn_dead)
              &&
              match states.(r.rn_job).js_primary with
              | Some r' -> r' == r
              | None -> false)
            !active_runs;
        let med = median !ok_costs in
        let threshold = c.c_spec_factor *. med in
        let best = ref None in
        List.iter
          (fun r ->
            let st = states.(r.rn_job) in
            if
              st.js_twin = None
              && (not st.js_spec_used)
              && r.rn_dev.fd_kname = dev.fd_kname
              && r.rn_finish -. r.rn_start > threshold
            then begin
              let est =
                charge_on t dev r.rn_outcome
                +.
                if dev.fd_epoch <> epoch then c.c_overhead_s *. dev.fd_speed
                else 0.
              in
              (* Only duplicate when the twin would actually win. *)
              if r.rn_finish > t.clock +. est then
                match !best with
                | Some b
                  when b.rn_finish > r.rn_finish
                       || (b.rn_finish = r.rn_finish && b.rn_job < r.rn_job) ->
                    ()
                | _ -> best := Some r
            end)
          !active_runs;
        match !best with
        | None -> false
        | Some r ->
            (* The twin reuses the primary's (job, attempt): the launch
               recomputes the identical outcome, no new fault draw. *)
            launch dev r.rn_job ~spec:true;
            true
      end
    in
    let fill_all () =
      (* Local backlogs first, then stealing for the still-idle, then
         speculation once every backlog is dry. Every launch makes the
         device busy (charges are strictly positive), so each device
         takes at most one job per pass. *)
      Array.iter
        (fun d -> if d.fd_free_at <= t.clock then ignore (try_local d))
        t.devs;
      if !total_queued > 0 then
        Array.iter
          (fun d -> if d.fd_free_at <= t.clock then ignore (try_steal d))
          t.devs;
      if c.c_speculate && !ok_count >= 3 then
        Array.iter
          (fun d -> if d.fd_free_at <= t.clock then ignore (try_speculate d))
          t.devs
    in
    let drain_retries () =
      let rec go () =
        match !retryq with
        | (at, _, j) :: rest when at <= t.clock ->
            retryq := rest;
            let st = states.(j) in
            (* A resolved job's pending retry is dropped silently — in
               particular it charges no backoff anywhere (the
               twin-cancelled-mid-backoff fix). *)
            if res.(j) = None then begin
              st.js_ready <- at;
              st.js_stolen <- false;
              q_push t.shards.(st.js_home) j
            end;
            go ()
        | _ -> ()
      in
      go ()
    in
    let journal_rec r ~outcome ~cost =
      let jd = defs.(r.rn_job) in
      if jd.jd_uid >= 0 then
        Journal.dispatch ~shard:r.rn_dev.fd_shard ~stolen:r.rn_stolen
          ~spec:r.rn_spec ~uid:jd.jd_uid ~dev:r.rn_dev.fd_id
          ~device:r.rn_dev.fd_kname ~attempt:r.rn_attempt ~outcome
          ~cost_s:cost
          ~queue_s:(r.rn_start -. states.(r.rn_job).js_ready)
          ()
    in
    let process r =
      let st = states.(r.rn_job) in
      let j = r.rn_job in
      r.rn_dev.fd_busy_s <- r.rn_dev.fd_busy_s +. (r.rn_finish -. r.rn_start);
      journal_rec r ~outcome:(outcome_name r.rn_outcome)
        ~cost:(r.rn_finish -. r.rn_start);
      (* Cancel the slower twin: first result wins, the loser is
         charged for the time it burned and freed now. *)
      let other = if r.rn_spec then st.js_primary else st.js_twin in
      (match other with
      | Some tw when not tw.rn_dead ->
          tw.rn_dead <- true;
          tw.rn_dev.fd_busy_s <- tw.rn_dev.fd_busy_s +. (t.clock -. tw.rn_start);
          tw.rn_dev.fd_free_at <- t.clock;
          journal_rec tw ~outcome:"cancelled" ~cost:(t.clock -. tw.rn_start);
          if tw.rn_spec then begin
            t.spec_losses <- t.spec_losses + 1;
            Metrics.incr "fleet.spec_losses"
          end
          else begin
            t.spec_wins <- t.spec_wins + 1;
            Metrics.incr "fleet.spec_wins"
          end
      | _ -> ());
      st.js_primary <- None;
      st.js_twin <- None;
      Metrics.observe "fleet.job_cost_s" (r.rn_finish -. r.rn_start);
      (match r.rn_outcome with
      | O_timeout -> Metrics.incr "fleet.timeouts"
      | O_overrun -> Metrics.incr "fleet.timeouts"
      | O_crash -> Metrics.incr "fleet.crashes"
      | O_corrupt _ -> Metrics.incr "fleet.corrupt"
      | O_invalid -> Metrics.incr "fleet.invalid_configs"
      | O_ok _ | O_error _ -> ());
      let attempts = r.rn_attempt + 1 in
      if retryable r.rn_outcome && r.rn_attempt < c.c_retry.Retry_policy.max_retries
      then begin
        st.js_attempt <- r.rn_attempt + 1;
        st.js_spec_used <- false;
        t.retries_n <- t.retries_n + 1;
        Metrics.incr "fleet.retries";
        push_retry ~at:(Retry_policy.retry_at c.c_retry ~now:t.clock ~attempt:r.rn_attempt) j
      end
      else begin
        (match r.rn_outcome with
        | O_ok m ->
            ok_costs :=
              (c.c_per_job_s +. (float_of_int c.c_repeats *. m)) :: !ok_costs;
            incr ok_count
        | _ -> ());
        resolve j (result_of ~attempts r.rn_outcome)
      end
    in
    fill_all ();
    while !done_n < n do
      match Heap.peek events with
      | Some r when r.rn_dead -> ignore (Heap.pop events)
      | ev -> (
          let next_retry = match !retryq with (at, _, _) :: _ -> Some at | [] -> None in
          match (ev, next_retry) with
          | None, None -> failwith "Fleet: schedule stuck (no events, no retries)"
          | Some r, Some at when at < r.rn_finish ->
              t.clock <- Float.max t.clock at;
              drain_retries ();
              fill_all ()
          | Some r, _ ->
              ignore (Heap.pop events);
              t.clock <- Float.max t.clock r.rn_finish;
              process r;
              drain_retries ();
              fill_all ()
          | None, Some at ->
              t.clock <- Float.max t.clock at;
              drain_retries ();
              fill_all ())
    done;
    t.clock <- makespan t;
    Metrics.set_gauge "fleet.makespan_s" t.clock;
    Array.map (function Some r -> r | None -> assert false) res
  end

(* ------------------------------------------------------------------ *)
(* Submission fronts                                                   *)
(* ------------------------------------------------------------------ *)

(* Build jobdefs for one batch: model times fan out over [par] in
   contiguous chunks (thousands of sub-ms pure tasks), everything else
   is assigned in input order on the caller. *)
let defs_of_batch ?(par = Tvm_par.Pool.sequential) t ~kind
    (jobs : (int * Stmt.t) array) : jobdef array =
  let n = Array.length jobs in
  let timed =
    Tvm_par.Pool.parallel_init_chunked par n (fun i ->
        let _, stmt = jobs.(i) in
        match Device_pool.kind_time kind stmt with
        | v -> Ok v
        | exception e -> Error (Printexc.to_string e))
  in
  Array.init n (fun i ->
      let key, _ = jobs.(i) in
      let fid = t.salt + t.jobs_submitted + i in
      match timed.(i) with
      | Ok base ->
          {
            jd_measured =
              base *. (1. +. (t.cat.c_noise *. Device_pool.noise_of_key key));
            jd_err = None;
            jd_uid = Journal.job_tag i;
            jd_fid = fid;
          }
      | Error m ->
          { jd_measured = Float.nan; jd_err = Some m; jd_uid = Journal.job_tag i;
            jd_fid = fid })

let measure_batch ?par t ~kind (jobs : (int * Stmt.t) array) :
    Measure_result.t array =
  let defs = defs_of_batch ?par t ~kind jobs in
  t.jobs_submitted <- t.jobs_submitted + Array.length jobs;
  Metrics.incr ~by:(float_of_int (Array.length jobs)) "fleet.jobs";
  run_defs t
    ~knames:[| Device_pool.kind_name kind |]
    ~offsets:[| 0; Array.length jobs |]
    defs

let measure_batches ?par t
    (batches : (Device_pool.device_kind * (int * Stmt.t) array) array) :
    Measure_result.t array array =
  (* Ordinals (and journal tags) run over the flattened input, in
     batch order — exactly the ids the batches would get submitted one
     by one, which is what makes multiplexing result-invariant. *)
  let n_batches = Array.length batches in
  let offsets = Array.make (n_batches + 1) 0 in
  Array.iteri
    (fun b (_, jobs) -> offsets.(b + 1) <- offsets.(b) + Array.length jobs)
    batches;
  let total = offsets.(n_batches) in
  let defs_per_batch =
    Array.mapi (fun b (kind, jobs) ->
        let defs = defs_of_batch ?par t ~kind jobs in
        (* Re-base fids and uids onto the flattened ordinals. *)
        Array.mapi
          (fun i d ->
            { d with
              jd_fid = t.salt + t.jobs_submitted + offsets.(b) + i;
              jd_uid = Journal.job_tag (offsets.(b) + i) })
          defs)
      batches
  in
  let defs = Array.concat (Array.to_list defs_per_batch) in
  t.jobs_submitted <- t.jobs_submitted + total;
  Metrics.incr ~by:(float_of_int total) "fleet.jobs";
  let knames =
    Array.map (fun (k, _) -> Device_pool.kind_name k) batches
  in
  let flat_res = run_defs t ~knames ~offsets defs in
  Array.mapi
    (fun b (_, jobs) ->
      Array.init (Array.length jobs) (fun i -> flat_res.(offsets.(b) + i)))
    batches

let simulate t ~kind ~(cost_s : float array) : Measure_result.t array =
  let n = Array.length cost_s in
  let defs =
    Array.init n (fun i ->
        {
          jd_measured = cost_s.(i);
          jd_err = None;
          jd_uid = Journal.job_tag i;
          jd_fid = t.salt + t.jobs_submitted + i;
        })
  in
  t.jobs_submitted <- t.jobs_submitted + n;
  Metrics.incr ~by:(float_of_int n) "fleet.jobs";
  run_defs t
    ~knames:[| Device_pool.kind_name kind |]
    ~offsets:[| 0; n |]
    defs

let measure_fn t ~kind : Tvm_autotune.Tuner.measure_fn =
 fun cfg stmt ->
  (measure_batch t ~kind [| (Tvm_autotune.Cfg_space.hash cfg, stmt) |]).(0)

let batch_measure_fn ?par t ~kind : Tvm_autotune.Tuner.batch_measure_fn =
 fun jobs ->
  measure_batch ?par t ~kind
    (Array.map
       (fun (cfg, stmt) -> (Tvm_autotune.Cfg_space.hash cfg, stmt))
       jobs)
