(** Simulated distributed device pool with an RPC-style tracker (§5.4,
    Fig 11).

    Clients submit measurement jobs for a device type; the tracker
    assigns each job to the first free matching device, accounting for
    upload, compilation and repeated timed runs on a simulated wall
    clock. This exercises the scheduling/batching code paths of the
    paper's infrastructure while measurements themselves come from the
    analytical machine models plus deterministic noise.

    The pool is fault-tolerant: a {!Fault.plan} injects deterministic
    transient timeouts, crashes, corrupted measurements and device
    deaths, and a {!Retry_policy.t} governs bounded retries with
    exponential backoff, the per-job timeout, and quarantine of
    devices whose error rate crosses a threshold. Jobs degrade
    gracefully to the remaining healthy devices; {!No_healthy_device}
    is raised only when the pool is truly exhausted. *)

open Tvm_tir
module Machine = Tvm_sim.Machine
module Cpu_model = Tvm_sim.Cpu_model
module Gpu_model = Tvm_sim.Gpu_model
module Measure_result = Tvm_autotune.Measure_result

type device_kind =
  | Cpu_dev of Machine.cpu
  | Gpu_dev of Machine.gpu

let kind_name = function
  | Cpu_dev c -> c.Machine.cpu_name
  | Gpu_dev g -> g.Machine.gpu_name

type device = {
  dev_id : int;
  dev_kind : device_kind;
  mutable busy_until : float;  (** simulated wall-clock seconds *)
  mutable jobs_run : int;  (** successful measurements *)
  mutable attempts : int;  (** measurement attempts, failures included *)
  mutable failures : int;
  mutable dead : bool;  (** dropped out of the pool permanently *)
  mutable quarantined : bool;  (** error rate crossed the threshold *)
}

type t = {
  devices : device list;
  mutable clock : float;
  mutable total_jobs : int;
  noise : float;  (** relative measurement noise amplitude *)
  repeats : int;  (** timed repetitions per measurement *)
  overhead_s : float;  (** upload + build + RPC round trip per job *)
  fault_plan : Fault.plan;
  retry : Retry_policy.t;
}

let create ?(noise = 0.05) ?(repeats = 3) ?(overhead_s = 0.5)
    ?(fault_plan = Fault.none) ?(retry = Retry_policy.default) kinds =
  let devices =
    List.mapi
      (fun i k ->
        { dev_id = i; dev_kind = k; busy_until = 0.; jobs_run = 0;
          attempts = 0; failures = 0; dead = false; quarantined = false })
      kinds
  in
  (* Label each device's trace lane up front (labels survive trace
     resets), so per-device job tracks come up named in Perfetto. *)
  Tvm_obs.Trace.name_process
    ~pid:(fst (Tvm_obs.Trace.device_lane 0))
    "device fleet";
  List.iter
    (fun d ->
      Tvm_obs.Trace.name_thread
        ~lane:(Tvm_obs.Trace.device_lane d.dev_id)
        (Printf.sprintf "dev %d (%s)" d.dev_id (kind_name d.dev_kind)))
    devices;
  {
    devices;
    clock = 0.;
    total_jobs = 0;
    noise;
    repeats;
    overhead_s;
    fault_plan;
    retry;
  }

(** Heavy transient rates for a deliberately-overloaded device
    (timeouts dominate, so its jobs burn the per-job budget) — the
    [--straggler] profile shared by [tvmc] and [tvmd]. *)
let straggler_rates =
  { Fault.timeout_rate = 0.35; crash_rate = 0.15; corrupt_rate = 0.1;
    death_rate = 0. }

(** Default device kind for a {!Tvm_spec.Job_spec.target} name. *)
let kind_of_target = function
  | "cuda" -> Gpu_dev Machine.titan_x
  | "mali" -> Gpu_dev Machine.mali_t860
  | "arm" -> Cpu_dev Machine.arm_a53
  | _ -> Cpu_dev Machine.xeon_host

(** Fault plan described by a spec's [fault_rate]/[straggler] knobs. *)
let fault_plan_of_spec (spec : Tvm_spec.Job_spec.t) =
  let plan =
    if spec.Tvm_spec.Job_spec.fault_rate > 0. then
      Fault.transient ~rate:spec.Tvm_spec.Job_spec.fault_rate ()
    else Fault.none
  in
  match spec.Tvm_spec.Job_spec.straggler with
  | Some n -> Fault.with_device plan n straggler_rates
  | None -> plan

(** Build the fleet a {!Tvm_spec.Job_spec.t} asks for: [spec.devices]
    replicas of [kind] (defaulting from [spec.target]), the fault plan
    from [fault_rate]/[straggler], and the retry policy from
    [max_retries]/[timeout_s]. *)
let of_spec ?kind (spec : Tvm_spec.Job_spec.t) =
  let kind =
    match kind with
    | Some k -> k
    | None -> kind_of_target spec.Tvm_spec.Job_spec.target
  in
  let retry =
    { Retry_policy.default with
      Retry_policy.max_retries = spec.Tvm_spec.Job_spec.max_retries;
      timeout_s = spec.Tvm_spec.Job_spec.timeout_s }
  in
  create
    ~fault_plan:(fault_plan_of_spec spec)
    ~retry
    (List.init (max 1 spec.Tvm_spec.Job_spec.devices) (fun _ -> kind))

(** Deterministic noise in [-1,1] from a key (config hash). *)
let noise_of_key key =
  let h = ref (key land 0x3FFFFFFF) in
  h := (!h * 1103515245 + 12345) land 0x3FFFFFFF;
  h := (!h * 1103515245 + 12345) land 0x3FFFFFFF;
  (float_of_int !h /. float_of_int 0x3FFFFFFF *. 2.) -. 1.

exception No_matching_device of string
exception No_healthy_device of string

let healthy d = (not d.dead) && not d.quarantined

let request t ~kind_pred =
  match List.filter (fun d -> kind_pred d.dev_kind) t.devices with
  | [] -> raise (No_matching_device "device pool: no device of requested type")
  | matching -> (
      match
        List.filter healthy matching
        |> List.sort (fun a b -> compare a.busy_until b.busy_until)
      with
      | [] ->
          raise
            (No_healthy_device
               "device pool: every matching device is dead or quarantined")
      | d :: _ -> d)

(** Model run time of [stmt] on a device kind. Pure: depends only on
    the machine description and the program — which is what lets
    {!measure_batch} precompute it in parallel. *)
let kind_time kind stmt =
  match kind with
  | Cpu_dev cpu -> Cpu_model.time_s cpu stmt
  | Gpu_dev gpu -> Gpu_model.time_s gpu stmt

(** Model run time of [stmt] on a device. *)
let model_time dev stmt = kind_time dev.dev_kind stmt

(** Wall-clock time at which all submitted jobs have finished. *)
let makespan t =
  List.fold_left (fun acc d -> Float.max acc d.busy_until) t.clock t.devices

let quarantined_count t =
  List.length (List.filter (fun d -> d.quarantined) t.devices)

(** Record a failed attempt on [dev] and quarantine it if its error
    rate has crossed the policy threshold — unless it is the last
    healthy device, which stays in service however flaky it is:
    quarantine must never empty the pool. *)
let record_failure t dev =
  dev.failures <- dev.failures + 1;
  let r = t.retry in
  if
    healthy dev
    && List.exists (fun d -> d != dev && healthy d) t.devices
    && dev.attempts >= r.Retry_policy.quarantine_min_jobs
    && float_of_int dev.failures /. float_of_int dev.attempts
       > r.Retry_policy.quarantine_error_rate
  then begin
    dev.quarantined <- true;
    Tvm_obs.Metrics.incr "pool.quarantined";
    Tvm_obs.Metrics.set_gauge "pool.quarantined_devices"
      (float_of_int (quarantined_count t));
    if Tvm_obs.Trace.enabled () then
      Tvm_obs.Trace.instant "pool.quarantine"
        ~attrs:
          [
            ("device", kind_name dev.dev_kind);
            ("dev_id", string_of_int dev.dev_id);
            ("failures", string_of_int dev.failures);
            ("attempts", string_of_int dev.attempts);
          ]
  end

let job_event dev status ~measured ~queue_wait =
  if Tvm_obs.Trace.enabled () then
    Tvm_obs.Trace.instant "pool.job"
      ~attrs:
        [
          ("device", kind_name dev.dev_kind);
          ("status", status);
          ( "measured_ms",
            match measured with
            | Some m -> Printf.sprintf "%.6f" (1e3 *. m)
            | None -> "-" );
          ("queue_wait_s", Printf.sprintf "%.3f" queue_wait);
        ]

(** Shared job-submission engine: identical to {!measure} except the
    model time comes from [time_for dev] — either computed on the spot
    (per-config path) or looked up from a table {!measure_batch}
    precomputed in parallel. All clock/fault/retry/quarantine
    bookkeeping lives here, on the calling domain. [job] is the batch
    job index, used to look this job's trial uid up from the flight
    recorder's job tags (see {!Tvm_obs.Journal.set_job_tags}); every
    attempt then lands in the journal as a dispatch record and on the
    device's trace lane as a slice + flow step. *)
let submit ?(key = 0) ?(job = 0) t ~kind_pred ~(time_for : device -> float) ()
    : Measure_result.t =
  let retry = t.retry in
  let uid = Tvm_obs.Journal.job_tag job in
  (* One record per measurement attempt, however it ended. The journal
     side is driven by the simulated clock only (deterministic); the
     trace side places a slice on the device's lane covering the real
     time spent in this attempt's bookkeeping, carrying the simulated
     cost in its args, and a flow step tying it into the trial's
     propose → dispatch → measure arrow. *)
  let record_attempt dev ~attempt ~outcome ~cost ~queue_wait ~start_ns =
    if uid >= 0 then
      Tvm_obs.Journal.dispatch ~uid ~dev:dev.dev_id
        ~device:(kind_name dev.dev_kind) ~attempt ~outcome ~cost_s:cost
        ~queue_s:queue_wait ();
    if Tvm_obs.Trace.enabled () then begin
      let lane = Tvm_obs.Trace.device_lane dev.dev_id in
      if uid >= 0 then
        Tvm_obs.Trace.flow ~lane ~id:uid Tvm_obs.Trace.Flow_step "trial";
      Tvm_obs.Trace.slice ~lane ~start_ns
        ~attrs:
          [
            ("outcome", outcome);
            ("trial", if uid >= 0 then string_of_int uid else "-");
            ("attempt", string_of_int attempt);
            ("sim_cost_s", Printf.sprintf "%.6f" cost);
            ("sim_queue_s", Printf.sprintf "%.3f" queue_wait);
          ]
        (if uid >= 0 then Printf.sprintf "job %d" uid else "job")
    end
  in
  let rec attempt_job n =
    match request t ~kind_pred with
    | exception No_healthy_device msg when n > 0 ->
        (* The pool was lost out from under an in-flight job (its last
           devices died or were quarantined during the retries): degrade
           to a structured failure. A fresh submission (n = 0) to an
           exhausted pool still raises. *)
        Measure_result.fail ~attempts:n (Measure_result.Pool_error msg)
    | dev ->
    let start_ns = Tvm_obs.Trace.now_ns () in
    dev.attempts <- dev.attempts + 1;
    t.total_jobs <- t.total_jobs + 1;
    Tvm_obs.Metrics.incr "pool.jobs";
    let start = Float.max t.clock dev.busy_until in
    let queue_wait = start -. t.clock in
    Tvm_obs.Metrics.observe "pool.queue_wait_s" queue_wait;
    t.clock <- Float.max t.clock start;
    (* Account the failed attempt's cost on the device, then either
       back off and retry on whichever device is free next, or give
       up with the failure's category. *)
    let transient_failure status ~outcome ~cost ~metric =
      dev.busy_until <- start +. cost;
      Tvm_obs.Metrics.incr metric;
      Tvm_obs.Metrics.observe "pool.job_cost_s" cost;
      record_failure t dev;
      job_event dev (Measure_result.status_name status) ~measured:None ~queue_wait;
      record_attempt dev ~attempt:n ~outcome ~cost ~queue_wait ~start_ns;
      if n < retry.Retry_policy.max_retries then begin
        Tvm_obs.Metrics.incr "pool.retries";
        t.clock <- t.clock +. Retry_policy.backoff_s retry ~attempt:n;
        attempt_job (n + 1)
      end
      else Measure_result.fail ~attempts:(n + 1) status
    in
    match Fault.draw t.fault_plan ~dev_id:dev.dev_id ~attempt:dev.attempts with
    | Fault.Died ->
        (* The board drops off the tracker; the in-flight job is lost
           and rescheduled on the remaining devices. *)
        dev.dead <- true;
        record_failure t dev;
        Tvm_obs.Metrics.incr "pool.device_deaths";
        job_event dev "device_death" ~measured:None ~queue_wait;
        record_attempt dev ~attempt:n ~outcome:"device_death" ~cost:0.
          ~queue_wait ~start_ns;
        if n < retry.Retry_policy.max_retries then begin
          Tvm_obs.Metrics.incr "pool.retries";
          attempt_job (n + 1)
        end
        else Measure_result.fail ~attempts:(n + 1) Measure_result.Crash
    | Fault.Timeout ->
        (* The job hangs; the tracker kills it at the per-job budget. *)
        transient_failure Measure_result.Timeout ~outcome:"timeout"
          ~cost:retry.Retry_policy.timeout_s ~metric:"pool.timeouts"
    | Fault.Crash ->
        transient_failure Measure_result.Crash ~outcome:"crash"
          ~cost:t.overhead_s ~metric:"pool.crashes"
    | (Fault.No_fault | Fault.Corrupt _) as outcome -> (
        let base = time_for dev in
        if not (Float.is_finite base) then begin
          (* The machine model rejected the schedule: this is the one
             place where the model's infinity sentinel is translated
             into a structured status. Deterministic, so no retry. *)
          dev.busy_until <- start +. 0.01;
          Tvm_obs.Metrics.incr "pool.invalid_configs";
          job_event dev "invalid_config" ~measured:None ~queue_wait;
          record_attempt dev ~attempt:n ~outcome:"invalid_config" ~cost:0.01
            ~queue_wait ~start_ns;
          Measure_result.fail ~attempts:(n + 1) Measure_result.Invalid_config
        end
        else
          let measured = base *. (1. +. (t.noise *. noise_of_key key)) in
          match outcome with
          | Fault.Corrupt factor ->
              (* One of the [repeats] timed runs came back as a wild
                 outlier; the disagreement is detected and the
                 measurement discarded as unstable. *)
              transient_failure
                (Measure_result.Pool_error "unstable measurement")
                ~outcome:"corrupt"
                ~cost:(t.overhead_s +. (float_of_int t.repeats *. measured *. factor))
                ~metric:"pool.corrupt"
          | _ ->
              let run_cost = float_of_int t.repeats *. measured in
              if t.overhead_s +. run_cost > retry.Retry_policy.timeout_s then begin
                (* Genuine overrun: the kernel really is slower than
                   the per-job budget. Deterministic, so no retry. *)
                dev.busy_until <- start +. retry.Retry_policy.timeout_s;
                Tvm_obs.Metrics.incr "pool.timeouts";
                record_failure t dev;
                job_event dev "timeout" ~measured:(Some measured) ~queue_wait;
                record_attempt dev ~attempt:n ~outcome:"timeout"
                  ~cost:retry.Retry_policy.timeout_s ~queue_wait ~start_ns;
                Measure_result.fail ~attempts:(n + 1) Measure_result.Timeout
              end
              else begin
                dev.busy_until <- start +. t.overhead_s +. run_cost;
                dev.jobs_run <- dev.jobs_run + 1;
                Tvm_obs.Metrics.observe "pool.job_cost_s" (t.overhead_s +. run_cost);
                Tvm_obs.Metrics.set_gauge "pool.makespan_s" (makespan t);
                job_event dev "ok" ~measured:(Some measured) ~queue_wait;
                record_attempt dev ~attempt:n ~outcome:"ok"
                  ~cost:(t.overhead_s +. run_cost) ~queue_wait ~start_ns;
                Measure_result.ok ~attempts:(n + 1) measured
              end)
  in
  attempt_job 0

(** Submit a measurement job and return its structured result,
    advancing the pool's simulated clock. [key] seeds the
    deterministic noise so a config always measures the same.
    Transient faults are retried per the pool's {!Retry_policy.t};
    permanent failures (invalid configurations, deterministic
    overruns) are not. *)
let measure ?key t ~kind_pred (stmt : Stmt.t) : Measure_result.t =
  submit ?key t ~kind_pred ~time_for:(fun dev -> model_time dev stmt) ()

(** Measure a batch of jobs, returning result [i] for job [i] (each
    job is (noise key, program)).

    The expensive part of a simulated measurement — evaluating the
    analytical machine model on the lowered program — is pure in
    (device kind, program), so it fans out over [par] across every
    (job × distinct matching kind) pair up front. The replay below
    then runs the exact sequential bookkeeping on the calling domain:
    device choice, fault draws (a pure function of (plan seed, device,
    attempt) — PR-2 determinism), retries, quarantine and the
    simulated clock, looking model times up from the precomputed
    table. Results are byte-identical to calling {!measure} on each
    job in order, at any domain count.

    A job that raises (e.g. {!No_healthy_device} on a truly exhausted
    pool) degrades to a [Pool_error] result carrying the exception
    text — the same conversion the tuner applies on the per-config
    path — so one doomed job cannot sink the rest of its batch. *)
let measure_batch ?(par = Tvm_par.Pool.sequential) t ~kind_pred
    (jobs : (int * Stmt.t) array) : Measure_result.t array =
  let kinds =
    List.filter (fun d -> kind_pred d.dev_kind) t.devices
    |> List.map (fun d -> d.dev_kind)
    |> List.sort_uniq (fun a b -> compare (kind_name a) (kind_name b))
  in
  let tasks =
    Array.concat
      (List.map
         (fun k -> Array.mapi (fun j (_, stmt) -> (j, k, stmt)) jobs)
         kinds)
  in
  let timed =
    Tvm_par.Pool.parallel_map par
      (fun (j, k, stmt) ->
        ( j,
          kind_name k,
          match kind_time k stmt with
          | v -> Ok v
          | exception e -> Error e ))
      tasks
  in
  let table = Hashtbl.create (Array.length timed) in
  Array.iter (fun (j, kname, r) -> Hashtbl.replace table (j, kname) r) timed;
  Array.mapi
    (fun j (key, _) ->
      let time_for dev =
        match Hashtbl.find table (j, kind_name dev.dev_kind) with
        | Ok v -> v
        | Error e -> raise e
      in
      try submit ~key ~job:j t ~kind_pred ~time_for ()
      with e ->
        Measure_result.fail (Measure_result.Pool_error (Printexc.to_string e)))
    jobs

let is_gpu = function Gpu_dev _ -> true | Cpu_dev _ -> false
let is_cpu = function Cpu_dev _ -> true | Gpu_dev _ -> false

(** Tuner-ready measurement callback for a pool and device predicate. *)
let measure_fn t ~kind_pred : Tvm_autotune.Tuner.measure_fn =
 fun cfg stmt -> measure ~key:(Tvm_autotune.Cfg_space.hash cfg) t ~kind_pred stmt

(** Tuner-ready batch callback: noise keys come from the config hash,
    exactly as {!measure_fn} derives them. *)
let batch_measure_fn ?par t ~kind_pred : Tvm_autotune.Tuner.batch_measure_fn =
 fun jobs ->
  measure_batch ?par t ~kind_pred
    (Array.map
       (fun (cfg, stmt) -> (Tvm_autotune.Cfg_space.hash cfg, stmt))
       jobs)

let stats t =
  List.map (fun d -> (kind_name d.dev_kind, d.jobs_run, d.busy_until)) t.devices

type device_health = {
  h_dev_id : int;
  h_name : string;
  h_jobs_run : int;
  h_attempts : int;
  h_failures : int;
  h_dead : bool;
  h_quarantined : bool;
}

(** Per-device health snapshot (job/failure counts, quarantine, death). *)
let health t =
  List.map
    (fun d ->
      {
        h_dev_id = d.dev_id;
        h_name = kind_name d.dev_kind;
        h_jobs_run = d.jobs_run;
        h_attempts = d.attempts;
        h_failures = d.failures;
        h_dead = d.dead;
        h_quarantined = d.quarantined;
      })
    t.devices
