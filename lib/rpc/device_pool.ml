(** Simulated distributed device pool with an RPC-style tracker (§5.4,
    Fig 11).

    Clients submit measurement jobs for a device type; the tracker
    assigns each job to the first free matching device, accounting for
    upload, compilation and repeated timed runs on a simulated wall
    clock. This exercises the scheduling/batching code paths of the
    paper's infrastructure while measurements themselves come from the
    analytical machine models plus deterministic noise. *)

open Tvm_tir
module Machine = Tvm_sim.Machine
module Cpu_model = Tvm_sim.Cpu_model
module Gpu_model = Tvm_sim.Gpu_model

type device_kind =
  | Cpu_dev of Machine.cpu
  | Gpu_dev of Machine.gpu

let kind_name = function
  | Cpu_dev c -> c.Machine.cpu_name
  | Gpu_dev g -> g.Machine.gpu_name

type device = {
  dev_id : int;
  dev_kind : device_kind;
  mutable busy_until : float;  (** simulated wall-clock seconds *)
  mutable jobs_run : int;
}

type t = {
  devices : device list;
  mutable clock : float;
  mutable total_jobs : int;
  noise : float;  (** relative measurement noise amplitude *)
  repeats : int;  (** timed repetitions per measurement *)
  overhead_s : float;  (** upload + build + RPC round trip per job *)
}

let create ?(noise = 0.05) ?(repeats = 3) ?(overhead_s = 0.5) kinds =
  {
    devices = List.mapi (fun i k -> { dev_id = i; dev_kind = k; busy_until = 0.; jobs_run = 0 }) kinds;
    clock = 0.;
    total_jobs = 0;
    noise;
    repeats;
    overhead_s;
  }

(** Deterministic noise in [-1,1] from a key (config hash). *)
let noise_of_key key =
  let h = ref (key land 0x3FFFFFFF) in
  h := (!h * 1103515245 + 12345) land 0x3FFFFFFF;
  h := (!h * 1103515245 + 12345) land 0x3FFFFFFF;
  (float_of_int !h /. float_of_int 0x3FFFFFFF *. 2.) -. 1.

exception No_matching_device of string

let request t ~kind_pred =
  match
    List.filter (fun d -> kind_pred d.dev_kind) t.devices
    |> List.sort (fun a b -> compare a.busy_until b.busy_until)
  with
  | [] -> raise (No_matching_device "device pool: no device of requested type")
  | d :: _ -> d

(** Model run time of [stmt] on a device. *)
let model_time dev stmt =
  match dev.dev_kind with
  | Cpu_dev cpu -> Cpu_model.time_s cpu stmt
  | Gpu_dev gpu -> Gpu_model.time_s gpu stmt

(** Wall-clock time at which all submitted jobs have finished. *)
let makespan t =
  List.fold_left (fun acc d -> Float.max acc d.busy_until) t.clock t.devices

(** Submit a measurement job: returns the measured (noisy) run time and
    advances the pool's simulated clock. [key] seeds the deterministic
    noise so a config always measures the same. *)
let measure ?(key = 0) t ~kind_pred (stmt : Stmt.t) : float =
  let dev = request t ~kind_pred in
  let base = model_time dev stmt in
  let measured =
    if Float.is_finite base then base *. (1. +. (t.noise *. noise_of_key key))
    else base
  in
  let start = Float.max t.clock dev.busy_until in
  let queue_wait = start -. t.clock in
  let run_cost =
    if Float.is_finite measured then float_of_int t.repeats *. measured else 0.01
  in
  dev.busy_until <- start +. t.overhead_s +. run_cost;
  dev.jobs_run <- dev.jobs_run + 1;
  t.clock <- Float.max t.clock start;
  t.total_jobs <- t.total_jobs + 1;
  Tvm_obs.Metrics.incr "pool.jobs";
  Tvm_obs.Metrics.observe "pool.queue_wait_s" queue_wait;
  Tvm_obs.Metrics.observe "pool.job_cost_s" (t.overhead_s +. run_cost);
  Tvm_obs.Metrics.set_gauge "pool.makespan_s" (makespan t);
  if Tvm_obs.Trace.enabled () then
    Tvm_obs.Trace.instant "pool.job"
      ~attrs:
        [
          ("device", kind_name dev.dev_kind);
          ("measured_ms", Printf.sprintf "%.6f" (1e3 *. measured));
          ("queue_wait_s", Printf.sprintf "%.3f" queue_wait);
        ];
  measured

let is_gpu = function Gpu_dev _ -> true | Cpu_dev _ -> false
let is_cpu = function Cpu_dev _ -> true | Gpu_dev _ -> false

(** Tuner-ready measurement callback for a pool and device predicate. *)
let measure_fn t ~kind_pred : Tvm_autotune.Tuner.measure_fn =
 fun cfg stmt -> measure ~key:(Tvm_autotune.Cfg_space.hash cfg) t ~kind_pred stmt

let stats t =
  List.map (fun d -> (kind_name d.dev_kind, d.jobs_run, d.busy_until)) t.devices
