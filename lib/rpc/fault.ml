(** Deterministic, seed-driven fault injection for the device pool.

    The paper's measurement fleet (§5.4, Fig 11) runs on real boards
    that time out, crash mid-run, return garbage, and occasionally die
    outright. A [plan] reproduces those behaviours in the simulator
    with configurable per-device rates, driven entirely by a hash of
    (plan seed, device id, per-device attempt number) — so a given
    plan injects exactly the same fault sequence on every run. *)

type rates = {
  timeout_rate : float;  (** transient: the job hangs until killed *)
  crash_rate : float;  (** transient: the run dies before reporting *)
  corrupt_rate : float;
      (** transient: the timed runs disagree wildly (an outlier) *)
  death_rate : float;  (** permanent: the device drops out of the pool *)
}

let no_fault_rates =
  { timeout_rate = 0.; crash_rate = 0.; corrupt_rate = 0.; death_rate = 0. }

type outcome =
  | No_fault
  | Timeout
  | Crash
  | Corrupt of float  (** multiplier applied to the true measurement *)
  | Died

type plan = {
  plan_seed : int;
  default_rates : rates;
  per_device : (int * rates) list;  (** dev_id → rates override *)
}

let none = { plan_seed = 0; default_rates = no_fault_rates; per_device = [] }

let plan ?(seed = 0) ?(default = no_fault_rates) ?(per_device = []) () =
  { plan_seed = seed; default_rates = default; per_device }

let transient ?(seed = 0) ~rate () =
  plan ~seed
    ~default:
      {
        timeout_rate = 0.5 *. rate;
        crash_rate = 0.3 *. rate;
        corrupt_rate = 0.2 *. rate;
        death_rate = 0.;
      }
    ()

let with_device t dev_id rates =
  { t with per_device = (dev_id, rates) :: List.remove_assoc dev_id t.per_device }

let rates_for t ~dev_id =
  match List.assoc_opt dev_id t.per_device with
  | Some r -> r
  | None -> t.default_rates

(* Integer mixer (splitmix-style): avalanches its two inputs so
   consecutive attempt numbers give independent-looking draws. *)
let mix a b =
  let h = ref ((a * 0x9E3779B1) lxor (b * 0x85EBCA6B)) in
  h := !h lxor (!h lsr 15);
  h := !h * 0x2C1B3C6D;
  h := !h lxor (!h lsr 12);
  h := !h * 0x297A2D39;
  h := !h lxor (!h lsr 15);
  !h land max_int

(** Uniform draw in [0,1) for ([plan_seed] + [salt], [dev_id], [attempt]). *)
let unit_float t ~dev_id ~attempt ~salt =
  float_of_int (mix (mix (t.plan_seed + salt) dev_id) attempt land 0x3FFFFFFF)
  /. float_of_int 0x40000000

(** Fault outcome for attempt number [attempt] on device [dev_id] —
    a pure function of the plan, so fault sequences replay exactly. *)
let draw t ~dev_id ~attempt =
  let r = rates_for t ~dev_id in
  let u = unit_float t ~dev_id ~attempt ~salt:0 in
  let death = r.death_rate in
  let timeout = death +. r.timeout_rate in
  let crash = timeout +. r.crash_rate in
  let corrupt = crash +. r.corrupt_rate in
  if u < death then Died
  else if u < timeout then Timeout
  else if u < crash then Crash
  else if u < corrupt then
    (* outlier factor in [3, 10): far outside measurement noise, so
       repeat-disagreement detection always fires *)
    Corrupt (3. +. (7. *. unit_float t ~dev_id ~attempt ~salt:1))
  else No_fault
