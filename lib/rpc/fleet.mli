(** Sharded measurement fleet: the scale-out successor to the
    single-tracker {!Device_pool} (§5.4 at fleet size).

    A fleet simulates hundreds to thousands of heterogeneous devices
    (mixed gpu/cpu/mali targets with per-device speed factors),
    partitioned into {b per-kind shards}. Measurement batches are
    dispatched as {b contiguous per-shard slices} (each device pays the
    upload/RPC overhead once per batch, amortizing per-job
    bookkeeping); an idle shard {b steals} the tail half of the deepest
    backlog of a compatible shard — including backlogs belonging to
    other concurrent tuning jobs when batches are multiplexed through
    {!measure_batches}; and with speculation on, an idle device
    {b duplicates} a straggling in-flight attempt (running cost beyond
    [spec_factor ×] the median completed cost — PR 6's straggler
    heuristic) on a faster device: first finisher wins, the twin is
    cancelled and charged for the time it burned.

    {b Determinism.} The engine inherits the replay-on-the-coordinator
    pattern: pure model times fan out over a {!Tvm_par.Pool}, then the
    whole virtual-time schedule (an event heap of run completions,
    fault draws, retries, steals, speculation, journal records) replays
    sequentially on the calling domain. On top of that, results are
    made {e placement-invariant}:

    - fault draws are keyed by the job's {e submission ordinal}, never
      by the device that happens to run it;
    - every job is pinned to one device {e kind} (the target's), so the
      model time does not depend on which device wins the race;
    - per-device speed factors scale only the {e charged} duration
      (host-side slowness), never the measured value and never the
      deterministic-overrun budget check;
    - a speculative twin replays the {e same} (job, attempt) outcome —
      no extra fault draw — and backoff is charged to the job's ready
      time, not to a shared clock ({!Retry_policy.retry_at}), so a twin
      cancelled mid-backoff charges nothing.

    Consequently trial {e results} (and thus tuning logs) are
    byte-identical across [-j], shard count, and speculation on/off;
    the {e journal} additionally records placement (shard / stolen /
    spec fields), so it is byte-identical across [-j] at any fixed
    (shards, speculate) configuration.

    Quarantine and device death are deliberately absent: a fleet
    absorbs flaky devices by speed/steal/speculation instead of
    removing capacity (and death keyed by job ordinal would make
    results placement-dependent). *)

module Machine = Tvm_sim.Machine
module Measure_result = Tvm_autotune.Measure_result

(** Immutable fleet description: the device roster and policies,
    shareable across tuning jobs (tvmd keeps one per daemon). *)
type catalog

type t
(** A fleet session: one virtual-time schedule over a catalog. Sessions
    are cheap; concurrent tuning jobs each run their own salted session
    of the shared catalog. *)

val catalog :
  ?noise:float ->
  ?repeats:int ->
  ?overhead_s:float ->
  ?per_job_s:float ->
  ?fault_plan:Fault.plan ->
  ?retry:Retry_policy.t ->
  ?speculate:bool ->
  ?spec_factor:float ->
  ?shards:int ->
  (Device_pool.device_kind * float) list ->
  catalog
(** [catalog kinds] with [(kind, speed)] per device; [speed >= 1] is a
    host-side slowness multiplier on charged time. [shards] is the
    shard count per device kind (0 = auto, ~1 shard per 32 devices
    capped at 16). [overhead_s] is paid once per device per batch
    (batched dispatch); [per_job_s] is the per-job dispatch cost.
    [spec_factor] (default 1.5) is the straggler threshold. *)

val mixed_kinds :
  ?primary:Device_pool.device_kind ->
  ?straggler:int ->
  ?straggler_speed:float ->
  int ->
  (Device_pool.device_kind * float) list
(** A deterministic heterogeneous roster of [n] devices: every even
    slot is [primary] (default Titan X), odd slots cycle through the
    other kinds; mild deterministic speed variation, plus one
    [straggler] device slowed by [straggler_speed] (default 12×) if
    given. *)

val catalog_of_spec : Tvm_spec.Job_spec.t -> catalog
(** The catalog a spec with [fleet > 0] asks for: [spec.fleet] devices
    from {!mixed_kinds} (primary from [spec.target], straggler from
    [spec.straggler] — slowed, not fault-loaded), transient faults at
    [spec.fault_rate] seeded by [spec.seed], retries/budget from
    [spec.max_retries]/[spec.timeout_s], [spec.shards]/[spec.speculate]
    as given. *)

val session : ?salt:int -> catalog -> t
(** Fresh schedule state over [cat]. [salt] (default 0) decorrelates
    fault sequences between concurrent tuning jobs sharing a catalog;
    results depend on it, so callers must derive it deterministically
    (tvmd uses the job id). *)

val of_spec : ?salt:int -> Tvm_spec.Job_spec.t -> t
(** [session ?salt (catalog_of_spec spec)]; [salt] defaults to
    [spec.seed]. *)

val devices : t -> int

val usable : t -> kind:Device_pool.device_kind -> int
(** Devices whose kind matches [kind] by name. *)

val shard_count : t -> int

val suggested_batch : t -> kind:Device_pool.device_kind -> base:int -> int
(** Measurement batch size that keeps the matching shards saturated:
    [max base (2 × usable)], capped at 512. *)

val makespan : t -> float
(** Virtual time at which everything submitted so far has finished. *)

type shard_stat = {
  ss_shard : int;
  ss_kind : string;
  ss_devices : int;
  ss_attempts : int;  (** attempts executed by this shard *)
  ss_stolen : int;  (** ... of which arrived by stealing *)
  ss_busy_s : float;  (** total charged device time *)
}

type stats = {
  fs_devices : int;
  fs_shards : int;
  fs_jobs : int;  (** measurement jobs submitted *)
  fs_attempts : int;
  fs_steals : int;  (** steal transactions *)
  fs_stolen_jobs : int;  (** jobs that changed shard *)
  fs_spec_launched : int;
  fs_spec_wins : int;  (** speculative twin finished first *)
  fs_spec_losses : int;  (** twin cancelled, primary won *)
  fs_retries : int;
  fs_shard_stats : shard_stat list;
}

val stats : t -> stats

val measure_batch :
  ?par:Tvm_par.Pool.t ->
  t ->
  kind:Device_pool.device_kind ->
  (int * Tvm_tir.Stmt.t) array ->
  Measure_result.t array
(** Measure a batch of (noise key, program) jobs on the shards matching
    [kind]. Model times fan out over [par]
    ({!Tvm_par.Pool.parallel_init_chunked}); the schedule replays on
    the caller. Result [i] belongs to job [i] and is independent of
    [par], shard count and speculation (see the determinism notes
    above). With no matching device every job degrades to a
    [Pool_error] result. *)

val measure_batches :
  ?par:Tvm_par.Pool.t ->
  t ->
  (Device_pool.device_kind * (int * Tvm_tir.Stmt.t) array) array ->
  Measure_result.t array array
(** Multiplex several batches (e.g. concurrent tuning jobs) through one
    schedule so idle shards steal across job boundaries. Job ordinals —
    and therefore fault draws and results — are assigned in input
    order, so the results equal running each batch alone on a fresh
    session in order: stealing never reorders the coordinator replay. *)

val simulate :
  t -> kind:Device_pool.device_kind -> cost_s:float array -> Measure_result.t array
(** Drive the engine with synthetic model times instead of lowered
    programs (no noise applied) — the fleet bench's workload. *)

val measure_fn :
  t -> kind:Device_pool.device_kind -> Tvm_autotune.Tuner.measure_fn

val batch_measure_fn :
  ?par:Tvm_par.Pool.t ->
  t ->
  kind:Device_pool.device_kind ->
  Tvm_autotune.Tuner.batch_measure_fn
(** Tuner-ready callbacks; noise keys from the config hash, exactly as
    {!Device_pool.batch_measure_fn}. *)
