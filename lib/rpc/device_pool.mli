(** Simulated distributed device pool with an RPC-style tracker (§5.4,
    Fig 11).

    Clients submit measurement jobs for a device type; the tracker
    assigns each job to the first free matching device, accounting for
    upload, compilation and repeated timed runs on a simulated wall
    clock. Measurements come from the analytical machine models plus
    deterministic noise keyed by the configuration, and are returned
    as structured {!Measure_result.t} values.

    The pool is fault-tolerant: a {!Fault.plan} injects deterministic
    transient timeouts, crashes, corrupted measurements and device
    deaths, and a {!Retry_policy.t} governs bounded retries with
    exponential backoff, the per-job timeout, and quarantine of
    devices whose error rate crosses a threshold (never the last
    healthy device — quarantine cannot empty the pool). Jobs degrade
    gracefully to the remaining healthy devices; {!No_healthy_device}
    is raised only when the pool is truly exhausted. *)

module Machine = Tvm_sim.Machine
module Measure_result = Tvm_autotune.Measure_result

type device_kind =
  | Cpu_dev of Machine.cpu
  | Gpu_dev of Machine.gpu

val kind_name : device_kind -> string

type device = {
  dev_id : int;
  dev_kind : device_kind;
  mutable busy_until : float;  (** simulated wall-clock seconds *)
  mutable jobs_run : int;  (** successful measurements *)
  mutable attempts : int;  (** measurement attempts, failures included *)
  mutable failures : int;
  mutable dead : bool;  (** dropped out of the pool permanently *)
  mutable quarantined : bool;  (** error rate crossed the threshold *)
}

type t = {
  devices : device list;
  mutable clock : float;
  mutable total_jobs : int;
  noise : float;  (** relative measurement noise amplitude *)
  repeats : int;  (** timed repetitions per measurement *)
  overhead_s : float;  (** upload + build + RPC round trip per job *)
  fault_plan : Fault.plan;
  retry : Retry_policy.t;
}

val create :
  ?noise:float ->
  ?repeats:int ->
  ?overhead_s:float ->
  ?fault_plan:Fault.plan ->
  ?retry:Retry_policy.t ->
  device_kind list ->
  t

(** Heavy transient rates for a deliberately-overloaded device — the
    [--straggler] profile shared by [tvmc] and [tvmd]. *)
val straggler_rates : Fault.rates

(** Default device kind for a {!Tvm_spec.Job_spec.target} name
    ([cuda] → Titan X, [mali] → Mali T860, [arm] → A53, else Xeon). *)
val kind_of_target : string -> device_kind

(** Fault plan described by a spec's [fault_rate]/[straggler] knobs. *)
val fault_plan_of_spec : Tvm_spec.Job_spec.t -> Fault.plan

(** Build the fleet a {!Tvm_spec.Job_spec.t} asks for: [spec.devices]
    replicas of [kind] (defaulting from [spec.target]), the fault plan
    from [fault_rate]/[straggler], the retry policy from
    [max_retries]/[timeout_s]. *)
val of_spec : ?kind:device_kind -> Tvm_spec.Job_spec.t -> t

(** Deterministic noise in [-1, 1] from a key (config hash). *)
val noise_of_key : int -> float

(** No device of the requested kind exists in the pool at all. *)
exception No_matching_device of string

(** Devices of the requested kind exist, but every one of them is dead
    or quarantined — the pool is truly exhausted. *)
exception No_healthy_device of string

(** Model run time of a lowered kernel on a device kind. Pure in
    (kind, program) — the function the batch paths precompute in
    parallel, and the one the sharded {!Fleet} builds on. *)
val kind_time : device_kind -> Tvm_tir.Stmt.t -> float

(** Model run time of a lowered kernel on a device. *)
val model_time : device -> Tvm_tir.Stmt.t -> float

(** Submit a measurement job and return its structured result,
    advancing the pool's simulated clock. [key] seeds the
    deterministic noise so a configuration always measures the same.
    Transient faults are retried per the pool's {!Retry_policy.t};
    permanent failures (invalid configurations, deterministic
    overruns) are not. *)
val measure :
  ?key:int ->
  t ->
  kind_pred:(device_kind -> bool) ->
  Tvm_tir.Stmt.t ->
  Measure_result.t

(** Measure a batch of (noise key, program) jobs, returning result [i]
    for job [i]. The pure machine-model evaluations fan out over [par]
    across every (job × distinct matching device kind) pair; the
    stateful bookkeeping (device choice, fault draws, retries,
    quarantine, simulated clock) then replays sequentially on the
    calling domain — so the results are byte-identical to calling
    {!measure} on each job in order, at any domain count. A job that
    raises (truly exhausted pool) degrades to a [Pool_error] result
    instead of sinking the batch. *)
val measure_batch :
  ?par:Tvm_par.Pool.t ->
  t ->
  kind_pred:(device_kind -> bool) ->
  (int * Tvm_tir.Stmt.t) array ->
  Measure_result.t array

(** Wall-clock time at which all submitted jobs have finished. *)
val makespan : t -> float

(** Number of currently quarantined devices. *)
val quarantined_count : t -> int

val is_gpu : device_kind -> bool
val is_cpu : device_kind -> bool

(** Tuner-ready measurement callback for a pool and device predicate. *)
val measure_fn :
  t -> kind_pred:(device_kind -> bool) -> Tvm_autotune.Tuner.measure_fn

(** Tuner-ready batch callback (noise keys from the config hash, as
    {!measure_fn}); see {!measure_batch}. *)
val batch_measure_fn :
  ?par:Tvm_par.Pool.t ->
  t ->
  kind_pred:(device_kind -> bool) ->
  Tvm_autotune.Tuner.batch_measure_fn

(** Per-device (name, successful jobs run, busy seconds). *)
val stats : t -> (string * int * float) list

type device_health = {
  h_dev_id : int;
  h_name : string;
  h_jobs_run : int;
  h_attempts : int;
  h_failures : int;
  h_dead : bool;
  h_quarantined : bool;
}

(** Per-device health snapshot (job/failure counts, quarantine, death). *)
val health : t -> device_health list
