(** Deterministic, seed-driven fault injection for the device pool.

    A [plan] reproduces fleet misbehaviour — transient timeouts,
    crashed runs, corrupted/outlier measurements, permanent device
    death — with configurable per-device rates. Outcomes are a pure
    hash of (plan seed, device id, per-device attempt number), so a
    plan injects exactly the same fault sequence on every run. *)

type rates = {
  timeout_rate : float;  (** transient: the job hangs until killed *)
  crash_rate : float;  (** transient: the run dies before reporting *)
  corrupt_rate : float;
      (** transient: the timed runs disagree wildly (an outlier) *)
  death_rate : float;  (** permanent: the device drops out of the pool *)
}

(** All rates zero. *)
val no_fault_rates : rates

type outcome =
  | No_fault
  | Timeout
  | Crash
  | Corrupt of float  (** multiplier applied to the true measurement *)
  | Died

type plan = {
  plan_seed : int;
  default_rates : rates;
  per_device : (int * rates) list;  (** dev_id → rates override *)
}

(** The fault-free plan (the pool's default). *)
val none : plan

val plan : ?seed:int -> ?default:rates -> ?per_device:(int * rates) list -> unit -> plan

(** Purely transient faults at total rate [rate], split 50/30/20
    between timeouts, crashes and corrupted measurements; no deaths. *)
val transient : ?seed:int -> rate:float -> unit -> plan

(** Override the rates of one device. *)
val with_device : plan -> int -> rates -> plan

val rates_for : plan -> dev_id:int -> rates

(** Fault outcome for attempt number [attempt] on device [dev_id] —
    a pure function of the plan, so fault sequences replay exactly. *)
val draw : plan -> dev_id:int -> attempt:int -> outcome
