(** Retry policy for pool measurements, on the simulated clock.

    Transient faults (timeouts, crashes, unstable measurements) are
    retried up to [max_retries] extra attempts with exponential
    backoff; every job gets a wall-clock budget of [timeout_s]; and a
    device whose observed error rate crosses
    [quarantine_error_rate] (after at least [quarantine_min_jobs]
    attempts) is quarantined and receives no further jobs. *)

type t = {
  max_retries : int;  (** extra attempts after the first failure *)
  backoff_base_s : float;  (** pause before the first retry *)
  backoff_mult : float;  (** backoff multiplier per further retry *)
  timeout_s : float;  (** per-job budget on the simulated clock *)
  quarantine_error_rate : float;
      (** quarantine a device whose failures/attempts exceeds this *)
  quarantine_min_jobs : int;
      (** ... but only after it has seen this many attempts *)
}

let default =
  {
    max_retries = 2;
    backoff_base_s = 0.25;
    backoff_mult = 2.0;
    timeout_s = 10.0;
    quarantine_error_rate = 0.5;
    quarantine_min_jobs = 8;
  }

(** Simulated pause before retrying after failed attempt number
    [attempt] (0-based): [backoff_base_s *. backoff_mult ^ attempt]. *)
let backoff_s t ~attempt =
  t.backoff_base_s *. (t.backoff_mult ** float_of_int attempt)

(** Earliest simulated time the retry after failed attempt [attempt]
    may dispatch, given the failure was observed at [now].

    This is the {e job-local} form of backoff accounting: the pause is
    charged to the job's ready time, never to a shared clock. The
    distinction matters once a job can have two in-flight copies — with
    speculation, charging backoff to the pool clock (as the classic
    single-lane [Device_pool.submit] does, which is harmless there
    because exactly one attempt is ever in flight) would bill the pause
    once per copy; a speculative duplicate cancelled mid-backoff must
    leave the clock untouched. The fleet coordinator therefore keys its
    retry queue on [retry_at] and drops the ready entry silently if the
    twin already resolved the job. *)
let retry_at t ~now ~attempt = now +. backoff_s t ~attempt
