(** The declarative tensor expression language (§4.1).

    Each operation describes the shape of its output and an index
    formula for each element — "execution details are unspecified".
    A separate schedule (see {!Tvm_schedule}) decides loop structure.

    Mirroring the paper's example:
    {[
      let a = placeholder "A" [ m; h ] in
      let b = placeholder "B" [ n; h ] in
      let k = reduce_axis ~name:"k" h in
      let c =
        compute "C" [ m; n ] (fun [ y; x ] ->
            sum (read a [ rvar k; y ] * read b [ rvar k; x ]) [ k ])
    ]} *)

open Tvm_tir

(** Reduction combiners supported by the operator library. *)
type combiner = Sum | Max_comb | Min_comb

type raxis = { rvar : Expr.var; rmin : int; rextent : int }

(** The body of a compute op: either a plain index expression, or a
    reduction of a source expression over reduction axes. *)
type reduce_body = {
  comb : combiner;
  init : Expr.t;
  src : Expr.t;
  raxes : raxis list;
}

type body =
  | Value of Expr.t
  | Reduce of reduce_body

type t = {
  tname : string;
  tid : int;
  shape : Expr.t list;
  dtype : Dtype.t;
  buffer : Expr.buffer;  (** output storage of this operation *)
  op : op;
}

and op =
  | Placeholder
  | Compute of compute

and compute = {
  axes : Expr.var list;  (** one data-parallel axis per output dim *)
  body : body;
  inputs : t list;  (** tensors read by [body], in discovery order *)
}

(* Atomic + mutex: cache stages are created from parallel tuner
   workers (template instantiation under Tvm_par), so tensor ids must
   stay unique and the registry structurally sound across domains. *)
let counter = Atomic.make 0

let fresh_tid () = 1 + Atomic.fetch_and_add counter 1

(* Registry mapping buffer ids back to tensors, so that [compute] can
   discover its inputs from the loads appearing in the body. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let find_by_buffer (b : Expr.buffer) =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () -> Hashtbl.find_opt registry b.Expr.bid)

let register t =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () -> Hashtbl.replace registry t.buffer.Expr.bid t)

let name t = t.tname
let shape t = t.shape
let dtype t = t.dtype
let buffer t = t.buffer
let equal a b = a.tid = b.tid
let compare a b = compare a.tid b.tid

let const_shape t =
  List.map
    (fun e ->
      match Interval.const_of_expr e with
      | Some n -> n
      | None -> invalid_arg (Printf.sprintf "Tensor.const_shape %s: symbolic" t.tname))
    t.shape

let inputs t = match t.op with Placeholder -> [] | Compute c -> c.inputs

let is_placeholder t = match t.op with Placeholder -> true | Compute _ -> false

(** Transitive producers of [t] (inputs before consumers), deduplicated,
    [t] last — the order lowering emits stages in. *)
let topo_order (roots : t list) : t list =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit t =
    if not (Hashtbl.mem seen t.tid) then begin
      Hashtbl.replace seen t.tid ();
      List.iter visit (inputs t);
      out := t :: !out
    end
  in
  List.iter visit roots;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let placeholder ?(dtype = Dtype.Float32) name shape =
  let buffer = Expr.Buffer.create ~dtype name shape in
  let t =
    { tname = name; tid = fresh_tid (); shape; dtype; buffer; op = Placeholder }
  in
  register t;
  t

(** Read tensor [t] at [indices] inside a compute body. *)
let read t indices = Expr.Load (t.buffer, indices)

let reduce_axis ?(min = 0) ~name extent = { rvar = Expr.Var.fresh name; rmin = min; rextent = extent }

let rvar r = Expr.Var r.rvar

let combiner_init dtype = function
  | Sum -> if Dtype.is_float dtype then Expr.FloatImm 0. else Expr.IntImm 0
  | Max_comb -> if Dtype.is_float dtype then Expr.FloatImm (-1e30) else Expr.IntImm min_int
  | Min_comb -> if Dtype.is_float dtype then Expr.FloatImm 1e30 else Expr.IntImm max_int

let apply_combiner comb acc v =
  match comb with
  | Sum -> Expr.binop Expr.Add acc v
  | Max_comb -> Expr.binop Expr.Max acc v
  | Min_comb -> Expr.binop Expr.Min acc v

let discover_inputs (exprs : Expr.t list) : t list =
  let bufs =
    List.concat_map Visit.loaded_buffers exprs |> List.sort_uniq Expr.Buffer.compare
  in
  List.filter_map find_by_buffer bufs

let make_compute ?(dtype = Dtype.Float32) name shape axes body extra_exprs =
  let buffer = Expr.Buffer.create ~dtype name shape in
  let inputs =
    match body with
    | Value e -> discover_inputs (e :: extra_exprs)
    | Reduce r -> discover_inputs (r.src :: r.init :: extra_exprs)
  in
  let t =
    { tname = name; tid = fresh_tid (); shape; dtype; buffer;
      op = Compute { axes; body; inputs } }
  in
  register t;
  t

let fresh_axes shape =
  List.mapi (fun i _ -> Expr.Var.fresh (Printf.sprintf "ax%d" i)) shape

(** [compute name shape f]: [f] receives one index variable per output
    dimension and returns the element expression. *)
let compute ?dtype name shape (f : Expr.t list -> Expr.t) =
  let axes = fresh_axes shape in
  let body = Value (f (List.map Expr.var axes)) in
  make_compute ?dtype name shape axes body []

(** [compute_reduce name shape ~axes:raxes ~comb f]: reduction op. [f]
    receives the output index variables and returns the source
    expression, which may mention the reduction axis variables. *)
let compute_reduce ?dtype ?(comb = Sum) ?init name shape ~raxes
    (f : Expr.t list -> Expr.t) =
  let axes = fresh_axes shape in
  let dt = match dtype with Some d -> d | None -> Dtype.Float32 in
  let init = match init with Some i -> i | None -> combiner_init dt comb in
  let body = Reduce { comb; init; src = f (List.map Expr.var axes); raxes } in
  make_compute ?dtype name shape axes body []

(** Shorthand used by operator definitions: a sum-reduction body. *)
let sum src raxes = `Reduce (Sum, src, raxes)

(** Arity check helper for the interpreter and lowering. *)
let rank t = List.length t.shape

let axis_extents t =
  match t.op with
  | Placeholder -> const_shape t
  | Compute _ -> const_shape t

(** Approximate FLOP count of producing every element of [t] once,
    used for rooflines and GOPS reporting. *)
let op_flops t =
  match t.op with
  | Placeholder -> 0.
  | Compute c ->
      let out_elems = List.fold_left ( * ) 1 (const_shape t) |> float_of_int in
      let body_flops, red_iters =
        match c.body with
        | Value e -> (Analysis.expr_flops e, 1.)
        | Reduce r ->
            let iters =
              List.fold_left (fun acc a -> acc *. float_of_int a.rextent) 1. r.raxes
            in
            (Analysis.expr_flops r.src +. 1., iters)
      in
      out_elems *. body_flops *. red_iters
