(** Minimal graph executor over a compiled module (§2's
    [runtime.create]): topological execution of the fused groups,
    memory planned by {!Tvm_graph.Mem_plan}, per-kernel profiling for
    the debug-executor view.

    Sealed surface: clients (the compiler's [build_executor], [tvmc],
    [tvmd]) see an abstract handle plus the run/profile/query
    operations below — the value table, memory plan and per-group
    dispatch stay private. *)

type t

(** Wire a compiled module to its graph and fusion groups.
    [launch_overhead_s] is the per-kernel launch cost charged by
    {!estimated_time_s}. *)
val create :
  ?launch_overhead_s:float ->
  graph:Tvm_graph.Graph_ir.t ->
  groups:Tvm_graph.Fusion.group list ->
  module_:Rt_module.t ->
  unit ->
  t

(** Bind a named graph input; raises [Invalid_argument] on an unknown
    name or a shape mismatch. *)
val set_input : t -> string -> Tvm_nd.Ndarray.t -> unit

(** Bind constant parameters by node id (see
    [Models.random_params]). *)
val set_params : t -> (int * Tvm_nd.Ndarray.t) list -> unit

(** Execute the whole graph. [`Reference] runs the unscheduled
    reference computation; [`Compiled] interprets each group's lowered
    kernel. *)
val run : ?mode:[ `Reference | `Compiled ] -> t -> unit

(** {!run} with per-group timing: the debug executor's per-kernel
    latency breakdown. *)
val profile_run :
  ?mode:[ `Reference | `Compiled ] -> t -> Tvm_obs.Profile.report

(** [i]-th graph output of the last {!run}; raises if the graph has
    not run yet. *)
val get_output : t -> int -> Tvm_nd.Ndarray.t

(** Modelled end-to-end latency: kernel estimates + launch overhead. *)
val estimated_time_s : t -> float

(** Activation memory footprint of the static plan, in whole bytes
    (tensor sizes are integral). Both values are also published as the
    [mem.pooled_bytes] / [mem.naive_bytes] gauges at {!create}. *)
type memory_stats = { pooled_bytes : int; naive_bytes : int }

val memory_stats : t -> memory_stats
