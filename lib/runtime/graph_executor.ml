(** Graph executor: the runtime of §2's deployment example
    ([runtime.create] / [set_input] / [run] / [get_output]).

    Storage for intermediates follows the static memory plan; execution
    walks the fused groups in order. Two functional modes exist:

    - [`Compiled]: run each kernel's lowered loop program through the
      IR interpreter — executes exactly what the compiler produced
      (used by correctness tests);
    - [`Reference]: run each node's reference ndarray kernel — much
      faster, used for end-to-end functional checks on larger nets.

    Timing always comes from the kernels' model estimates plus a
    per-launch framework overhead. *)

module Nd = Tvm_nd.Ndarray
module Graph_ir = Tvm_graph.Graph_ir
module Fusion = Tvm_graph.Fusion
module Op_registry = Tvm_graph.Op_registry
module Mem_plan = Tvm_graph.Mem_plan
module Trace = Tvm_obs.Trace
module Metrics = Tvm_obs.Metrics
module Profile = Tvm_obs.Profile

type t = {
  graph : Graph_ir.t;
  groups : Fusion.group list;
  kernels : (int * Rt_module.kernel) list;  (** group id → kernel *)
  plan : Mem_plan.plan;
  values : (int, Nd.t) Hashtbl.t;  (** node id → current value *)
  mutable launch_overhead_s : float;
  target_name : string;
  calls : (int, int) Hashtbl.t;  (** group id → cumulative profiled invocations *)
}

let create ?(launch_overhead_s = 10e-6) ~(graph : Graph_ir.t)
    ~(groups : Fusion.group list) ~(module_ : Rt_module.t) () : t =
  let kernels =
    List.map (fun (k : Rt_module.kernel) -> (k.Rt_module.k_group, k)) (Rt_module.kernels module_)
  in
  let plan = Mem_plan.plan graph groups in
  Metrics.set_gauge "mem.pooled_bytes" plan.Mem_plan.total_bytes;
  Metrics.set_gauge "mem.naive_bytes" plan.Mem_plan.naive_bytes;
  {
    graph;
    groups;
    kernels;
    plan;
    values = Hashtbl.create 32;
    launch_overhead_s;
    target_name = module_.Rt_module.m_target_name;
    calls = Hashtbl.create 16;
  }

let set_input t name (v : Nd.t) =
  match
    Array.to_list t.graph.Graph_ir.nodes
    |> List.find_opt (fun n ->
           n.Graph_ir.name = name
           && (n.Graph_ir.kind = Graph_ir.Input || n.Graph_ir.kind = Graph_ir.Param))
  with
  | Some n ->
      if Nd.shape v <> n.Graph_ir.shape then
        invalid_arg
          (Printf.sprintf "set_input %s: shape mismatch ([%s] vs node [%s])" name
             (String.concat "x" (List.map string_of_int (Nd.shape v)))
             (String.concat "x" (List.map string_of_int n.Graph_ir.shape)));
      Hashtbl.replace t.values n.Graph_ir.id v
  | None -> invalid_arg ("set_input: no input or param named " ^ name)

(** Bind all parameters at once (the [set_input] with params of §2). *)
let set_params t (params : (int * Nd.t) list) =
  List.iter (fun (id, v) -> Hashtbl.replace t.values id v) params

let value_of t id =
  match Hashtbl.find_opt t.values id with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "executor: node %d (%s) has no value — missing set_input?"
           id (Graph_ir.node t.graph id).Graph_ir.name)

let run_group_reference t (g : Fusion.group) =
  List.iter
    (fun id ->
      let n = Graph_ir.node t.graph id in
      match n.Graph_ir.kind with
      | Graph_ir.Op op ->
          let impl = Op_registry.find op in
          let ins = List.map (value_of t) n.Graph_ir.inputs in
          let out = impl.Op_registry.ref_exec ins n.Graph_ir.attrs in
          Hashtbl.replace t.values id out
      | Graph_ir.Input | Graph_ir.Param -> ())
    g.Fusion.g_nodes

let run_group_compiled t (g : Fusion.group) =
  match List.assoc_opt g.Fusion.g_id t.kernels with
  | None ->
      (* No kernel was compiled for this group (e.g. CPU fallback):
         reference execution keeps the graph runnable. *)
      run_group_reference t g
  | Some k ->
      let inputs = List.map (value_of t) g.Fusion.g_inputs in
      let out_node = Graph_ir.node t.graph g.Fusion.g_output in
      let output = Nd.create ~dtype:out_node.Graph_ir.dtype out_node.Graph_ir.shape in
      Rt_module.run_kernel k ~inputs ~output;
      Hashtbl.replace t.values g.Fusion.g_output output

let run_group t mode g =
  match mode with
  | `Reference -> run_group_reference t g
  | `Compiled -> run_group_compiled t g

let group_kernel t (g : Fusion.group) = List.assoc_opt g.Fusion.g_id t.kernels

let group_name t (g : Fusion.group) =
  match group_kernel t g with
  | Some k -> k.Rt_module.k_name
  | None -> (Graph_ir.node t.graph g.Fusion.g_output).Graph_ir.name

(** Bytes touched by one invocation of the group: all group inputs plus
    the output, at packed dtype density. *)
let group_bytes t (g : Fusion.group) =
  let node_bytes id =
    let n = Graph_ir.node t.graph id in
    Float.of_int (List.fold_left ( * ) 1 n.Graph_ir.shape)
    *. Tvm_tir.Dtype.bytes n.Graph_ir.dtype
  in
  List.fold_left
    (fun acc id -> acc +. node_bytes id)
    (node_bytes g.Fusion.g_output) g.Fusion.g_inputs

let run ?(mode = `Reference) t =
  List.iter
    (fun g ->
      if Trace.enabled () then
        Trace.with_span "kernel"
          ~attrs:[ ("name", group_name t g) ]
          (fun () -> run_group t mode g)
      else run_group t mode g)
    t.groups

(** Run the graph once in profiling mode: every group is executed under
    a trace span and accounted into a {!Tvm_obs.Profile.report} with its
    simulated kernel time, launch overhead, bytes touched and cumulative
    invocation count — the debug-executor view of one inference. *)
let profile_run ?(mode = `Reference) t : Profile.report =
  let records =
    List.map
      (fun g ->
        let k = group_kernel t g in
        let name = group_name t g in
        let time_s = match k with Some k -> k.Rt_module.k_time_s | None -> 0. in
        let flops = match k with Some k -> k.Rt_module.k_flops | None -> 0. in
        let exec () = run_group t mode g in
        (if Trace.enabled () then
           Trace.with_span "kernel"
             ~attrs:
               [ ("name", name); ("sim_ms", Printf.sprintf "%.6f" (1e3 *. time_s)) ]
             exec
         else exec ());
        let calls =
          1 + Option.value ~default:0 (Hashtbl.find_opt t.calls g.Fusion.g_id)
        in
        Hashtbl.replace t.calls g.Fusion.g_id calls;
        Metrics.incr "executor.kernel_launches";
        Metrics.observe "executor.kernel_time_s" time_s;
        {
          Profile.pr_name = name;
          pr_group = g.Fusion.g_id;
          pr_calls = calls;
          pr_time_s = time_s;
          pr_launch_s = t.launch_overhead_s;
          pr_bytes = group_bytes t g;
          pr_flops = flops;
        })
      t.groups
  in
  let total =
    List.fold_left (fun acc r -> acc +. r.Profile.pr_time_s +. r.Profile.pr_launch_s)
      0. records
  in
  Metrics.incr "executor.profiled_runs";
  { Profile.rp_target = t.target_name; rp_records = records; rp_total_s = total }

let get_output t i =
  let id = List.nth t.graph.Graph_ir.outputs i in
  value_of t id

(** Estimated end-to-end latency: sum of kernel estimates plus launch
    overhead per group (the framework overhead MXNet/TF also pay). *)
let estimated_time_s t =
  List.fold_left
    (fun acc g ->
      let k_time =
        match List.assoc_opt g.Fusion.g_id t.kernels with
        | Some k -> k.Rt_module.k_time_s
        | None -> 0.
      in
      acc +. k_time +. t.launch_overhead_s)
    0. t.groups

(** Memory footprint comparison from the static plan. *)
type memory_stats = { pooled_bytes : int; naive_bytes : int }

let memory_stats t =
  {
    pooled_bytes = int_of_float t.plan.Mem_plan.total_bytes;
    naive_bytes = int_of_float t.plan.Mem_plan.naive_bytes;
  }
