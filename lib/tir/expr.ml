(** Scalar expressions of the tensor IR.

    The IR is deliberately scalar: vectorization is a loop annotation
    (see {!Stmt.for_kind}) validated for legality and priced by the
    timing models, rather than a vector-value IR. This keeps the
    functional interpreter total while still letting schedules and the
    cost model reason about SIMD. *)

(** Memory scopes, the TVM-specific schedule concept of §4.2: a compute
    stage can be placed in GPU shared memory ([Shared]), thread-local
    registers ([Local]), or one of the VDLA on-chip buffers
    ([Accel_wgt], [Accel_inp], [Accel_acc]) from Fig 20. *)
type scope =
  | Global
  | Shared
  | Local
  | Accel_wgt
  | Accel_inp
  | Accel_acc

let scope_to_string = function
  | Global -> "global"
  | Shared -> "shared"
  | Local -> "local"
  | Accel_wgt -> "wgt"
  | Accel_inp -> "inp"
  | Accel_acc -> "acc"

let scope_of_string = function
  | "global" -> Global
  | "shared" -> Shared
  | "local" -> Local
  | "wgt" -> Accel_wgt
  | "inp" -> Accel_inp
  | "acc" -> Accel_acc
  | s -> invalid_arg ("scope_of_string: " ^ s)

type var = { vname : string; vid : int; vdtype : Dtype.t }

type binop = Add | Sub | Mul | Div | FloorMod | Min | Max
type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | IntImm of int
  | FloatImm of float
  | Var of var
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Select of t * t * t  (** [Select (cond, then_, else_)] *)
  | Cast of Dtype.t * t
  | Load of buffer * t list  (** multi-dimensional read, flattened late *)
  | Call of string * t list  (** pure intrinsic: exp, sqrt, popcount, ... *)

(** A buffer is a named, typed, scoped multi-dimensional array. Tensors
    of the expression language own one; the schedule's cache stages
    introduce more with non-[Global] scopes. *)
and buffer = {
  bname : string;
  bid : int;
  bdtype : Dtype.t;
  bshape : t list;
  bscope : scope;
}

module Var = struct
  type nonrec t = var

  (* Atomic: fresh vars are minted from parallel tuner workers
     (template instantiation under Tvm_par). Ids stay unique; nothing
     downstream depends on their numeric values, only on equality. *)
  let counter = Atomic.make 0

  let fresh ?(dtype = Dtype.Int32) name =
    { vname = name; vid = 1 + Atomic.fetch_and_add counter 1; vdtype = dtype }

  let name v = v.vname
  let dtype v = v.vdtype
  let equal a b = a.vid = b.vid
  let compare a b = compare a.vid b.vid
  let pp fmt v = Format.fprintf fmt "%s" v.vname

  (** Unique printable name, used by printers when two vars collide. *)
  let unique_name v = Printf.sprintf "%s.%d" v.vname v.vid
end

module Buffer = struct
  type nonrec t = buffer

  (* Atomic for the same reason as [Var.counter]. *)
  let counter = Atomic.make 0

  let create ?(scope = Global) ?(dtype = Dtype.Float32) name shape =
    { bname = name; bid = 1 + Atomic.fetch_and_add counter 1; bdtype = dtype;
      bshape = shape; bscope = scope }

  let name b = b.bname
  let dtype b = b.bdtype
  let shape b = b.bshape
  let scope b = b.bscope
  let equal a b = a.bid = b.bid
  let compare a b = compare a.bid b.bid

  (** Shape as concrete ints; raises if any dimension is symbolic. *)
  let const_shape b =
    List.map
      (function
        | IntImm n -> n
        | _ -> invalid_arg (Printf.sprintf "Buffer.const_shape %s: symbolic" b.bname))
      b.bshape

  let num_elems b = List.fold_left ( * ) 1 (const_shape b)
  let size_bytes b = float_of_int (num_elems b) *. Dtype.bytes b.bdtype

  (** A copy of [b] with a different scope and its own identity. *)
  let with_scope scope b =
    { b with bid = 1 + Atomic.fetch_and_add counter 1; bscope = scope }
end

(** Structural equality modulo nothing — plain [Stdlib.(=)] is unsafe on
    this type only because of floats; we use compare-based equality.
    Hash-consed construction (below) makes physically-equal nodes the
    common case, so the [==] fast path usually answers in O(1). *)
let rec equal a b =
  a == b
  ||
  match (a, b) with
  | IntImm x, IntImm y -> Stdlib.( = ) x y
  | FloatImm x, FloatImm y -> Float.equal x y
  | Var x, Var y -> Var.equal x y
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> Stdlib.( = ) o1 o2 && equal a1 a2 && equal b1 b2
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) -> Stdlib.( = ) o1 o2 && equal a1 a2 && equal b1 b2
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) -> equal a1 a2 && equal b1 b2
  | Not a, Not b -> equal a b
  | Select (c1, t1, f1), Select (c2, t2, f2) -> equal c1 c2 && equal t1 t2 && equal f1 f2
  | Cast (d1, a), Cast (d2, b) -> Dtype.equal d1 d2 && equal a b
  | Load (b1, i1), Load (b2, i2) ->
      Buffer.equal b1 b2
      && Stdlib.( = ) (List.length i1) (List.length i2)
      && List.for_all2 equal i1 i2
  | Call (n1, a1), Call (n2, a2) ->
      String.equal n1 n2
      && Stdlib.( = ) (List.length a1) (List.length a2)
      && List.for_all2 equal a1 a2
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                         *)
(* ------------------------------------------------------------------ *)

(** Physical-identity hash tables over expressions: the memo-table key
    type for every pass that caches per-node results ([Simplify],
    [Analysis], [Visit], [Interval]). [Hashtbl.hash] is depth-bounded,
    so hashing is O(1) in the node size; equality is pointer equality,
    which hash-consed construction makes meaningful — structurally
    equal subtrees built through the smart constructors on one domain
    are physically equal. *)
module Phys = Hashtbl.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(** The intern tables behind the smart constructors. Each domain owns
    its table ([Domain.DLS]): template instantiation fans out over
    [Tvm_par.Pool] domains, and per-domain tables need no locking on
    the construction fast path. Interning is only a canonicalization
    cache — two domains may hold physically distinct copies of the same
    structure, which costs sharing but never correctness. Node ids are
    minted from one [Atomic] counter so they stay globally unique; no
    result depends on their numeric values. *)
module Hashcons = struct
  (* Shallow equality: same constructor, immediates compared by value,
     children by physical identity (they are already interned when the
     parent is built on the same domain). Floats compare bitwise so
     [-0.]/[0.]/NaN payloads are never conflated — printing must not
     depend on intern insertion order. Buffers compare physically:
     [bid]-equal buffers are the same record everywhere in the
     compiler. Consistent with the depth-bounded structural
     [Hashtbl.hash]: every shallow-equal pair is structurally equal. *)
  let imm_equal a b =
    a == b
    ||
    match (a, b) with
    | IntImm x, IntImm y -> Stdlib.( = ) x y
    | FloatImm x, FloatImm y ->
        Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
    | _ -> false

  let rec imm_equal_list xs ys =
    match (xs, ys) with
    | [], [] -> true
    | x :: xs, y :: ys -> imm_equal x y && imm_equal_list xs ys
    | _ -> false

  let shallow_equal a b =
    a == b
    ||
    match (a, b) with
    | IntImm x, IntImm y -> Stdlib.( = ) x y
    | FloatImm x, FloatImm y ->
        Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
    | Var x, Var y -> x == y
    | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
        Stdlib.( = ) o1 o2 && imm_equal a1 a2 && imm_equal b1 b2
    | Cmp (o1, a1, b1), Cmp (o2, a2, b2) ->
        Stdlib.( = ) o1 o2 && imm_equal a1 a2 && imm_equal b1 b2
    | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
        imm_equal a1 a2 && imm_equal b1 b2
    | Not a, Not b -> imm_equal a b
    | Select (c1, t1, f1), Select (c2, t2, f2) ->
        imm_equal c1 c2 && imm_equal t1 t2 && imm_equal f1 f2
    | Cast (d1, a), Cast (d2, b) -> Dtype.equal d1 d2 && imm_equal a b
    | Load (b1, i1), Load (b2, i2) -> b1 == b2 && imm_equal_list i1 i2
    | Call (n1, a1), Call (n2, a2) -> String.equal n1 n2 && imm_equal_list a1 a2
    | _ -> false

  module Tbl = Hashtbl.Make (struct
    type nonrec t = t

    let equal = shallow_equal
    let hash = Hashtbl.hash
  end)

  type state = { tbl : (t * int) Tbl.t; mutable population : int }

  (* Bound the per-domain table so a long tuning run cannot hold every
     expression it ever built; on overflow the table resets wholesale
     (plain FIFO would need a second structure on the hot path). *)
  let limit = 1 lsl 17
  let ids = Atomic.make 0

  let key =
    Domain.DLS.new_key (fun () -> { tbl = Tbl.create 4096; population = 0 })

  (** Canonical representative of [node] on this domain; interns it
      (minting a fresh unique id) on first sight. *)
  let cons node =
    let st = Domain.DLS.get key in
    match Tbl.find_opt st.tbl node with
    | Some (canon, _) -> canon
    | None ->
        if st.population >= limit then begin
          Tbl.reset st.tbl;
          st.population <- 0
        end;
        Tbl.add st.tbl node (node, 1 + Atomic.fetch_and_add ids 1);
        st.population <- st.population + 1;
        node

  (** Unique id of an interned node on this domain, if it is (still)
      the canonical representative. *)
  let id node = Option.map snd (Tbl.find_opt (Domain.DLS.get key).tbl node)

  (** (nodes live in this domain's table, ids minted process-wide). *)
  let stats () = ((Domain.DLS.get key).population, Atomic.get ids)
end

(* ------------------------------------------------------------------ *)
(* Smart constructors.  They fold constants eagerly so that lowering   *)
(* produces readable, mostly-simplified code without a separate pass,  *)
(* and intern every node they build (see [Hashcons]) so structurally   *)
(* equal subtrees come out physically shared.                          *)
(* ------------------------------------------------------------------ *)

let intern = Hashcons.cons

(* The common small integers are preallocated: loop bounds, strides and
   folded guards produce them constantly, and a fixed pool keeps them
   shared across domains without touching the intern tables. *)
let int_pool = Array.init 258 (fun i -> IntImm (i - 1))
let int n = if n >= -1 && n <= 256 then int_pool.(n + 1) else intern (IntImm n)
let float f = intern (FloatImm f)
let var v = intern (Var v)
let zero = int 0
let one = int 1
let f32 = float

let dtype_of_binop_operand = function
  | IntImm _ -> Dtype.Int32
  | FloatImm _ -> Dtype.Float32
  | _ -> Dtype.Int32

let rec dtype_of = function
  | IntImm _ -> Dtype.Int32
  | FloatImm _ -> Dtype.Float32
  | Var v -> v.vdtype
  | Binop (_, a, b) ->
      let da = dtype_of a in
      if Dtype.is_float da then da else dtype_of b
  | Cmp _ | And _ | Or _ | Not _ -> Dtype.Bool
  | Select (_, a, _) -> dtype_of a
  | Cast (d, _) -> d
  | Load (b, _) -> b.bdtype
  | Call (name, args) -> (
      match (name, args) with
      | ("popcount" | "round" | "floor_i"), _ -> Dtype.Int32
      | _, a :: _ -> dtype_of a
      | _, [] -> Dtype.Float32)

let is_const = function IntImm _ | FloatImm _ -> true | _ -> false

let as_int = function IntImm n -> Some n | _ -> None

let binop_eval_int op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div ->
      (* floor division, matching the interpreter's semantics *)
      if b = 0 then invalid_arg "div by zero"
      else
        let q = a / b and r = a mod b in
        if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q
  | FloorMod ->
      if b = 0 then invalid_arg "mod by zero"
      else
        let r = a mod b in
        if r <> 0 && (r < 0) <> (b < 0) then r + b else r
  | Min -> min a b
  | Max -> max a b

let binop_eval_float op a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | FloorMod -> Float.rem a b
  | Min -> Float.min a b
  | Max -> Float.max a b

let binop op a b =
  match (a, b) with
  | IntImm x, IntImm y -> int (binop_eval_int op x y)
  | FloatImm x, FloatImm y -> float (binop_eval_float op x y)
  | _ -> (
      match (op, a, b) with
      | Add, IntImm 0, e | Add, e, IntImm 0 -> e
      | Add, FloatImm 0., e | Add, e, FloatImm 0. -> e
      | Sub, e, IntImm 0 -> e
      | Mul, IntImm 1, e | Mul, e, IntImm 1 -> e
      | Mul, FloatImm 1., e | Mul, e, FloatImm 1. -> e
      | Mul, (IntImm 0 as z), _ | Mul, _, (IntImm 0 as z) -> z
      | Div, e, IntImm 1 -> e
      | FloorMod, _, IntImm 1 -> zero
      | (Min | Max), x, y when equal x y -> x
      | _ -> intern (Binop (op, a, b)))

let ( + ) a b = binop Add a b
let ( - ) a b = binop Sub a b
let ( * ) a b = binop Mul a b
let ( / ) a b = binop Div a b
let ( % ) a b = binop FloorMod a b
let min_ a b = binop Min a b
let max_ a b = binop Max a b

let cmp op a b =
  match (a, b) with
  | IntImm x, IntImm y ->
      let r =
        match op with
        | Eq -> x = y
        | Ne -> x <> y
        | Lt -> Stdlib.( < ) x y
        | Le -> Stdlib.( <= ) x y
        | Gt -> Stdlib.( > ) x y
        | Ge -> Stdlib.( >= ) x y
      in
      if r then one else zero
  | _ -> intern (Cmp (op, a, b))

let ( = ) a b = cmp Eq a b
let ( <> ) a b = cmp Ne a b
let ( < ) a b = cmp Lt a b
let ( <= ) a b = cmp Le a b
let ( > ) a b = cmp Gt a b
let ( >= ) a b = cmp Ge a b

let and_ a b =
  match (a, b) with
  | IntImm 1, e | e, IntImm 1 -> e
  | (IntImm 0 as z), _ | _, (IntImm 0 as z) -> z
  | _ -> intern (And (a, b))

let or_ a b =
  match (a, b) with
  | IntImm 0, e | e, IntImm 0 -> e
  | (IntImm 1 as o), _ | _, (IntImm 1 as o) -> o
  | _ -> intern (Or (a, b))

let not_ = function IntImm 0 -> one | IntImm 1 -> zero | e -> intern (Not e)

let select cond t f =
  match cond with
  | IntImm 0 -> f
  | IntImm 1 -> t
  | _ -> intern (Select (cond, t, f))

let cast d e =
  match e with
  | FloatImm f when Dtype.equal d Dtype.Int32 -> int (int_of_float f)
  | IntImm n when Dtype.is_float d -> float (float_of_int n)
  | e when Dtype.equal (dtype_of e) d -> e
  | e -> intern (Cast (d, e))

let load buf indices = intern (Load (buf, indices))
let call name args = intern (Call (name, args))

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | FloorMod -> "%"
  | Min -> "min"
  | Max -> "max"

let cmpop_to_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
