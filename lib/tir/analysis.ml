(** Static analysis of lowered loop programs.

    This module computes the quantities that both the analytical timing
    models ({!Tvm_sim}) and the ML cost model's feature extractor
    ({!Tvm_autotune.Feature}) need: per-buffer access counts, memory
    footprints at every loop level (the "touched memory size" feature of
    Fig 13), access strides, arithmetic intensity, and loop-annotation
    summaries. *)

type loop_info = {
  lvar : Expr.var;
  lmin : Expr.t;
  lextent : int;
  lkind : Stmt.for_kind;
}

(** One load or store site, together with its enclosing loop stack
    (outermost first) and total execution count. *)
type access = {
  acc_buffer : Expr.buffer;
  acc_is_store : bool;
  acc_indices : Expr.t list;  (** let-bindings already substituted *)
  acc_loops : loop_info list;
  acc_count : int;
  acc_weight : float;
      (** execution probability: loads under [select] branches execute
          on a fraction of iterations (1 outside selects; then-branches
          weighted 3/4, else-branches 1/4 per level) *)
  acc_value_flops : float;
      (** for stores: arithmetic in the stored value per execution *)
}

exception Non_constant_extent of string

let const_extent e =
  match Interval.const_of_expr e with
  | Some n -> n
  | None -> raise (Non_constant_extent (Printer.expr_to_string e))

(* ------------------------------------------------------------------ *)
(* Access collection                                                   *)
(* ------------------------------------------------------------------ *)

(* Per-domain memo: [expr_flops] is pure and structural, so the count
   of a hash-consed (physically shared) subtree is computed once per
   domain. Bounded like the other pass memos. *)
let flops_memo_limit = 1 lsl 16
let flops_memo_key = Domain.DLS.new_key (fun () -> Expr.Phys.create 1024)

let rec expr_flops (e : Expr.t) =
  match e with
  | Expr.IntImm _ | Expr.FloatImm _ | Expr.Var _ -> 0.
  | Expr.Load (_, _) ->
      (* Address computation is loop/index overhead, not arithmetic
         throughput; the timing models price it separately. *)
      0.
  | _ -> (
      let memo = Domain.DLS.get flops_memo_key in
      match Expr.Phys.find_opt memo e with
      | Some n -> n
      | None ->
          let n =
            match e with
            | Expr.IntImm _ | Expr.FloatImm _ | Expr.Var _ | Expr.Load _ -> 0.
            | Expr.Binop (_, a, b) -> 1. +. expr_flops a +. expr_flops b
            | Expr.Cmp (_, a, b) ->
                (* Predicates (padding guards) compile to flags/masks
                   hoisted out of the arithmetic pipe; not arithmetic
                   throughput. *)
                expr_flops a +. expr_flops b
            | Expr.And (a, b) | Expr.Or (a, b) -> expr_flops a +. expr_flops b
            | Expr.Not a | Expr.Cast (_, a) -> expr_flops a
            | Expr.Select (_, t, f) -> Float.max (expr_flops t) (expr_flops f)
            | Expr.Call (_, args) ->
                (* Transcendental intrinsics priced as several flops. *)
                8. +. List.fold_left (fun acc a -> acc +. expr_flops a) 0. args
          in
          if Expr.Phys.length memo >= flops_memo_limit then Expr.Phys.reset memo;
          Expr.Phys.add memo e n;
          n)


let rec expr_flops_fwd e = expr_flops e

and collect_accesses (stmt : Stmt.t) : access list =
  let out = ref [] in
  let record ?(weight = 1.) ?(value_flops = 0.) loops subst buffer is_store indices =
    let indices = List.map (Visit.subst_expr subst) indices in
    let count = List.fold_left (fun acc l -> acc * l.lextent) 1 loops in
    out :=
      { acc_buffer = buffer; acc_is_store = is_store; acc_indices = indices;
        acc_loops = loops; acc_count = count; acc_weight = weight;
        acc_value_flops = value_flops }
      :: !out
  in
  let record_expr loops subst e =
    let rec walk weight (e : Expr.t) =
      match e with
      | Expr.IntImm _ | Expr.FloatImm _ | Expr.Var _ -> ()
      | Expr.Binop (_, a, b) | Expr.Cmp (_, a, b) | Expr.And (a, b) | Expr.Or (a, b) ->
          walk weight a;
          walk weight b
      | Expr.Not a | Expr.Cast (_, a) -> walk weight a
      | Expr.Select (c, t, f) ->
          walk weight c;
          walk (weight *. 0.75) t;
          walk (weight *. 0.25) f
      | Expr.Load (b, idx) ->
          record ~weight loops subst b false idx;
          List.iter (walk weight) idx
      | Expr.Call (_, args) -> List.iter (walk weight) args
    in
    walk 1. e
  in
  let rec walk loops (subst : Expr.var -> Expr.t option) s =
    match s with
    | Stmt.Store (b, idx, v) ->
        record ~value_flops:(expr_flops_fwd v) loops subst b true idx;
        record_expr loops subst v;
        List.iter (record_expr loops subst) idx
    | Stmt.For l ->
        let extent = const_extent (Visit.subst_expr subst l.Stmt.extent) in
        let info =
          { lvar = l.Stmt.loop_var; lmin = Visit.subst_expr subst l.Stmt.min_;
            lextent = extent; lkind = l.Stmt.kind }
        in
        walk (loops @ [ info ]) subst l.Stmt.body
    | Stmt.If_then_else (c, t, e) ->
        record_expr loops subst c;
        walk loops subst t;
        Option.iter (walk loops subst) e
    | Stmt.Let_stmt (v, e, b) ->
        record_expr loops subst e;
        let e' = Visit.subst_expr subst e in
        let subst' v' = if Expr.Var.equal v v' then Some e' else subst v' in
        walk loops subst' b
    | Stmt.Seq ss -> List.iter (walk loops subst) ss
    | Stmt.Allocate (_, b) -> walk loops subst b
    | Stmt.Evaluate e -> record_expr loops subst e
    | Stmt.Call_intrin ic ->
        List.iter (fun (b, idx) -> record loops subst b false idx) ic.Stmt.inputs;
        let ob, oidx = ic.Stmt.output in
        record loops subst ob true oidx
    | Stmt.Dma_copy d ->
        record loops subst d.Stmt.dma_src false d.Stmt.dma_src_base;
        record loops subst d.Stmt.dma_dst true d.Stmt.dma_dst_base
    | Stmt.Barrier | Stmt.Push_dep _ | Stmt.Pop_dep _ | Stmt.Skip -> ()
  in
  walk [] (fun _ -> None) stmt;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Footprints and strides                                              *)
(* ------------------------------------------------------------------ *)

(** Interval environment treating loops at depth >= [level] as full
    ranges and outer loops as fixed at their minimum. *)
let env_at_level access level =
  List.mapi
    (fun depth l ->
      let min_lo =
        match Interval.const_of_expr l.lmin with Some n -> n | None -> 0
      in
      let itv =
        if depth >= level then Interval.of_extent ~min:min_lo ~extent:l.lextent
        else Interval.point min_lo
      in
      (l.lvar, itv))
    access.acc_loops

(** Number of distinct elements of the buffer touched by the iterations
    of the loops at depth >= [level], outer loops held fixed. Level 0
    is the whole-statement footprint; level = depth(loops) is a single
    access. Conservative (rectangular hull) for non-affine indices. *)
let footprint_at_level access level =
  let env = env_at_level access level in
  try
    List.fold_left
      (fun acc idx -> acc * Interval.length (Interval.eval_under env idx))
      1 access.acc_indices
  with Interval.Not_analyzable _ ->
    (* Fall back: the whole buffer. *)
    (try Expr.Buffer.num_elems access.acc_buffer with _ -> 1)

let footprint_bytes_at_level access level =
  float_of_int (footprint_at_level access level)
  *. Dtype.bytes access.acc_buffer.Expr.bdtype

(** d(flattened index)/d(var): how far apart in memory are two accesses
    that differ by one in [var]? [None] when not constant (non-affine).
    Other loop vars are held at their minimum. *)
let stride_wrt access (v : Expr.var) =
  let shape =
    try Expr.Buffer.const_shape access.acc_buffer with _ -> []
  in
  if shape = [] || List.length shape <> List.length access.acc_indices then None
  else
    let row_strides =
      (* row-major strides *)
      let rec build = function
        | [] -> []
        | _ :: rest -> List.fold_left ( * ) 1 rest :: build rest
      in
      build shape
    in
    let flat_at value =
      let env =
        List.map
          (fun l ->
            let m = match Interval.const_of_expr l.lmin with Some n -> n | None -> 0 in
            if Expr.Var.equal l.lvar v then (l.lvar, Interval.point value)
            else (l.lvar, Interval.point m))
          access.acc_loops
      in
      try
        let components =
          List.map2
            (fun idx stride ->
              let itv = Interval.eval_under env idx in
              if itv.Interval.lo = itv.Interval.hi then itv.Interval.lo * stride
              else raise (Interval.Not_analyzable "range"))
            access.acc_indices row_strides
        in
        Some (List.fold_left ( + ) 0 components)
      with Interval.Not_analyzable _ | Invalid_argument _ -> None
    in
    match (flat_at 0, flat_at 1) with
    | Some a, Some b -> Some (b - a)
    | _ -> None

(** Innermost loop enclosing the access, if any. *)
let innermost_loop access =
  match List.rev access.acc_loops with [] -> None | l :: _ -> Some l

(** Whether the access is unit-stride with respect to the innermost
    enclosing loop — the property that makes vectorization and GPU
    memory coalescing effective. *)
let is_unit_stride_innermost access =
  match innermost_loop access with
  | None -> true
  | Some l -> ( match stride_wrt access l.lvar with Some s -> abs s <= 1 | None -> false)

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

(** Total arithmetic operations executed by the statement; tensorized
    intrinsic calls are priced via [intrin_flops name]. Index arithmetic
    is excluded (it is loop overhead, priced separately by the models). *)
let flops ?(intrin_flops = fun (_ : string) -> 0.) (stmt : Stmt.t) =
  let total = ref 0. in
  let rec walk mult subst s =
    match s with
    | Stmt.Store (_, _, v) -> total := !total +. (mult *. expr_flops v)
    | Stmt.For l ->
        let extent =
          const_extent (Visit.subst_expr subst l.Stmt.extent) |> float_of_int
        in
        walk (mult *. extent) subst l.Stmt.body
    | Stmt.If_then_else (_, t, e) ->
        walk mult subst t;
        Option.iter (walk mult subst) e
    | Stmt.Let_stmt (v, e, b) ->
        let e' = Visit.subst_expr subst e in
        let subst' v' = if Expr.Var.equal v v' then Some e' else subst v' in
        walk mult subst' b
    | Stmt.Seq ss -> List.iter (walk mult subst) ss
    | Stmt.Allocate (_, b) -> walk mult subst b
    | Stmt.Evaluate e -> total := !total +. (mult *. expr_flops e)
    | Stmt.Call_intrin ic -> total := !total +. (mult *. intrin_flops ic.Stmt.intrin_name)
    | Stmt.Dma_copy _ | Stmt.Barrier | Stmt.Push_dep _ | Stmt.Pop_dep _ | Stmt.Skip
      ->
        ()
  in
  walk 1. (fun _ -> None) stmt;
  !total

(** Bytes moved between global memory and the compute units, assuming
    perfect reuse within each loop nest's innermost cache level: for
    every access to a [Global]-scope buffer we charge its whole-nest
    footprint once (unique bytes), which is the lower bound the paper's
    fusion optimization targets. *)
let unique_global_bytes stmt =
  let accesses = collect_accesses stmt in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      if a.acc_buffer.Expr.bscope = Expr.Global then
        let key = a.acc_buffer.Expr.bid in
        let fp = footprint_bytes_at_level a 0 in
        let prev = try Hashtbl.find tbl key with Not_found -> 0. in
        Hashtbl.replace tbl key (Float.max prev fp))
    accesses;
  (* Summed in sorted-value order: buffer ids vary run-to-run under
     parallel instantiation, so bucket order must not pick the float
     summation order. *)
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort compare
  |> List.fold_left ( +. ) 0.

(** Summary of loop annotations below each access, used as one-hot
    features by the cost model (Fig 13's "vectorize/unroll/parallel"). *)
type ann_summary = {
  n_parallel : int;
  n_vectorized : int;
  n_unrolled : int;
  n_thread_bind : int;
  n_vthread : int;
  n_serial : int;
}

let ann_summary stmt =
  let summary =
    ref { n_parallel = 0; n_vectorized = 0; n_unrolled = 0; n_thread_bind = 0;
          n_vthread = 0; n_serial = 0 }
  in
  Stmt.iter
    (function
      | Stmt.For l ->
          let s = !summary in
          summary :=
            (match l.Stmt.kind with
            | Stmt.Parallel -> { s with n_parallel = s.n_parallel + 1 }
            | Stmt.Vectorized -> { s with n_vectorized = s.n_vectorized + 1 }
            | Stmt.Unrolled -> { s with n_unrolled = s.n_unrolled + 1 }
            | Stmt.Thread_binding _ -> { s with n_thread_bind = s.n_thread_bind + 1 }
            | Stmt.Vthread -> { s with n_vthread = s.n_vthread + 1 }
            | Stmt.Serial -> { s with n_serial = s.n_serial + 1 })
      | _ -> ())
    stmt;
  !summary
