(** Static sanitizer for lowered TIR programs.

    {!check} walks a lowered statement and reports structural defects
    that the rest of the stack would otherwise turn into silently-wrong
    simulated times: out-of-bounds accesses (proven by interval
    analysis over the loop/let environment, with guard conditions and
    region-retarget differences taken into account), use of unallocated
    or out-of-scope buffers, unbound variables, dtype mismatches,
    unbalanced dependence-token streams (deadlocks in the VDLA
    simulator), and provable cross-thread write races.

    Everything proven wrong is an {!Error}; indices that leave the
    analyzable (affine) fragment produce a conservative {!Warning}
    instead — nothing was proven either way. *)

type severity = Error | Warning

type kind =
  | Out_of_bounds of Expr.buffer * int * Interval.t * int
      (** buffer, dimension, index interval, dimension extent *)
  | Rank_mismatch of Expr.buffer * int  (** buffer, number of indices used *)
  | Unallocated of Expr.buffer
      (** non-[Global] buffer used but never allocated ([Global] buffers
          never allocated are the kernel's external parameters) *)
  | Out_of_scope of Expr.buffer
      (** buffer used outside the [Allocate] that introduces it *)
  | Unbound_var of Expr.var  (** variable used before any loop/let binds it *)
  | Dtype_mismatch of Expr.buffer * Dtype.t
      (** buffer, dtype of the value stored (or DMA-copied) into it *)
  | Unbalanced_tokens of Stmt.pipe * Stmt.pipe * int
      (** pipe pair and net token count left after execution *)
  | Token_underflow of Stmt.pipe * Stmt.pipe
      (** a [Pop_dep] can run before any matching [Push_dep] *)
  | Write_race of Expr.buffer * string
      (** buffer and the concurrent loop whose copies provably write the
          same cell *)
  | Non_affine of string
      (** index outside the analyzable fragment: nothing proven *)

type violation = { severity : severity; kind : kind; site : string }

val check : Stmt.t -> violation list
(** Validate a lowered program. Returns all violations, deduplicated,
    errors first. An empty list means the program passed every check. *)

val errors : violation list -> violation list
val warnings : violation list -> violation list
val to_string : violation -> string
