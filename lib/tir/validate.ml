(** Static sanitizer for lowered TIR programs.

    Lowering, virtual-thread lowering and the schedule transformations
    are all supposed to emit well-formed loop programs; nothing checked
    that, so a miscompile silently became a wrong simulated time and
    poisoned the cost model. {!check} walks a lowered statement and
    reports:

    + out-of-bounds stores/loads, proven with interval analysis over
      the enclosing loop/let environment (conservative {!Warning} when
      an index leaves the analyzable fragment);
    + use of unallocated or out-of-scope buffers, and unbound
      loop/let variables (def-before-use);
    + dtype mismatches between a buffer's element type and the value
      stored into it (or DMA-copied into it);
    + unbalanced [Push_dep]/[Pop_dep] token streams per DAE pipe pair
      — programs that would deadlock the {!Tvm_vdla.Des} simulator;
    + same-buffer writes from different [vthread]/thread-bound copies
      that provably hit the same cell (a write race).

    The bounds checker is deliberately stronger than plain interval
    arithmetic on two patterns our lowering emits everywhere:

    - {e guarded accesses}: conditions of enclosing [If_then_else] and
      [Select] nodes are collected as constraints and intersected with
      any structurally-matching subterm of an index (this is what makes
      padding's [select(y >= 1 && y < 8, data[y - 1], 0)] and the
      non-exact split guard [if (v < extent)] check out);
    - {e region-retargeted indices}: cache stages index a private
      buffer as [idx - offset] where [offset] is [idx] with inner loop
      vars at their minimum. Plain interval subtraction loses the
      correlation, so [Sub] nodes are evaluated by a structural
      difference ("delta") evaluator that recurses through matching
      [+ * / % min max] spines and uses congruence information to bound
      [floor((y+d)/k) - floor(y/k)] tightly. *)

type severity = Error | Warning

type kind =
  | Out_of_bounds of Expr.buffer * int * Interval.t * int
      (** buffer, dimension, index interval, dimension extent *)
  | Rank_mismatch of Expr.buffer * int  (** buffer, number of indices used *)
  | Unallocated of Expr.buffer
      (** non-[Global] buffer used but never allocated *)
  | Out_of_scope of Expr.buffer
      (** buffer used outside the [Allocate] that introduces it *)
  | Unbound_var of Expr.var
  | Dtype_mismatch of Expr.buffer * Dtype.t
      (** buffer, dtype of the value stored into it *)
  | Unbalanced_tokens of Stmt.pipe * Stmt.pipe * int
      (** pipe pair and net token count left after execution *)
  | Token_underflow of Stmt.pipe * Stmt.pipe
      (** a [Pop_dep] can run before any matching [Push_dep] *)
  | Write_race of Expr.buffer * string
      (** buffer and the concurrent loop whose copies collide *)
  | Non_affine of string
      (** index outside the analyzable fragment: nothing proven *)

type violation = { severity : severity; kind : kind; site : string }

let kind_to_string = function
  | Out_of_bounds (b, d, itv, dim) ->
      Printf.sprintf "out-of-bounds access to %s dim %d: index in %s, valid [0,%d]"
        b.Expr.bname d (Interval.to_string itv) (dim - 1)
  | Rank_mismatch (b, n) ->
      Printf.sprintf "%s has rank %d but is accessed with %d indices" b.Expr.bname
        (List.length b.Expr.bshape) n
  | Unallocated b -> Printf.sprintf "%s-scope buffer %s is never allocated"
      (Expr.scope_to_string b.Expr.bscope) b.Expr.bname
  | Out_of_scope b -> Printf.sprintf "buffer %s used outside its allocation scope" b.Expr.bname
  | Unbound_var v -> Printf.sprintf "variable %s used but never bound" (Expr.Var.unique_name v)
  | Dtype_mismatch (b, dv) ->
      Printf.sprintf "%s value stored into %s buffer %s" (Dtype.to_string dv)
        (Dtype.to_string b.Expr.bdtype) b.Expr.bname
  | Unbalanced_tokens (q, p, net) ->
      Printf.sprintf "dependence tokens %s->%s unbalanced: net %+d after execution"
        (Stmt.pipe_to_string q) (Stmt.pipe_to_string p) net
  | Token_underflow (q, p) ->
      Printf.sprintf "pop of %s->%s token can run before any push (would deadlock)"
        (Stmt.pipe_to_string q) (Stmt.pipe_to_string p)
  | Write_race (b, loop) ->
      Printf.sprintf "concurrent copies of %s write the same cell of %s without ordering"
        loop b.Expr.bname
  | Non_affine msg -> "index not statically analyzable: " ^ msg

let to_string v =
  Printf.sprintf "%s: %s [%s]"
    (match v.severity with Error -> "error" | Warning -> "warning")
    (kind_to_string v.kind) v.site

let errors vs = List.filter (fun v -> v.severity = Error) vs
let warnings vs = List.filter (fun v -> v.severity = Warning) vs

(* ------------------------------------------------------------------ *)
(* Interval evaluation with guards and structural differences           *)
(* ------------------------------------------------------------------ *)

exception NA of string  (** value not analyzable at this node *)

exception Unreachable
(** the guard set is contradictory: the access cannot execute *)

(* Sentinels for one-sided guard constraints. Constraint intervals are
   only ever intersected (max/min), never fed to interval arithmetic,
   so the magnitudes cannot overflow. *)
let lo_inf = min_int / 4
let hi_inf = max_int / 4

type thread_loop = { t_var : Expr.var; t_min : int; t_desc : string; t_tag : string option }

type st = {
  env : (int, Interval.t option) Hashtbl.t;
      (** var id -> interval; [None] = bound but not analyzable *)
  in_scope : (int, unit) Hashtbl.t;  (** live allocated buffer ids *)
  all_alloc : (int, unit) Hashtbl.t;  (** buffer ids allocated anywhere *)
  alloc_depth : (int, int) Hashtbl.t;
      (** buffer id -> number of enclosing concurrent loops at its
          allocation (absent = 0: external / top-level) *)
  guards : (Expr.t * Interval.t) list;
      (** structural constraints from enclosing If/Select conditions *)
  threads : thread_loop list;  (** enclosing concurrent loops, outermost first *)
  out : violation list ref;
}

let report st severity kind ~site = st.out := { severity; kind; site } :: !(st.out)

let inter a b =
  let lo = max a.Interval.lo b.Interval.lo and hi = min a.Interval.hi b.Interval.hi in
  if lo > hi then raise Unreachable;
  Interval.make lo hi

let neg_i i = Interval.make (-i.Interval.hi) (-i.Interval.lo)
let fdiv x d = Expr.binop_eval_int Expr.Div x d
let is_point i = i.Interval.lo = i.Interval.hi

(** Residue of [e] modulo [m], when provable. The [Div] rule — a value
    known mod [k*m] determines its floor-quotient by [k] mod [m] — is
    what lets deltas reason through the [/k/k'] index spines lowering
    builds when decomposing a fused loop variable. *)
let rec eval_mod st (e : Expr.t) m =
  if m <= 1 then Some 0
  else
    let norm n = ((n mod m) + m) mod m in
    let lift2 f a b =
      match (eval_mod st a m, eval_mod st b m) with
      | Some x, Some y -> Some (norm (f x y))
      | _ -> None
    in
    match e with
    | Expr.IntImm n -> Some (norm n)
    | Expr.Var v -> (
        match Hashtbl.find_opt st.env v.Expr.vid with
        | Some (Some i) when is_point i -> Some (norm i.Interval.lo)
        | _ -> None)
    | Expr.Binop (Expr.Add, a, b) -> lift2 ( + ) a b
    | Expr.Binop (Expr.Sub, a, b) -> lift2 ( - ) a b
    | Expr.Binop (Expr.Mul, a, b) -> (
        match (eval_mod st a m, eval_mod st b m) with
        | Some 0, _ | _, Some 0 -> Some 0
        | Some x, Some y -> Some (norm (x * y))
        | _ -> None)
    | Expr.Binop (Expr.Div, a, Expr.IntImm k) when k > 0 && k <= 1 lsl 20 && m <= 1 lsl 20
      -> (
        match eval_mod st a (k * m) with
        | Some r -> Some (r / k mod m)
        | None -> None)
    | Expr.Binop (Expr.FloorMod, a, Expr.IntImm k) when k > 0 && k mod m = 0 ->
        eval_mod st a m
    | Expr.Cast (_, a) -> eval_mod st a m
    | _ -> None

(** Interval of [a] under [env], refined by the guard constraints. *)
let rec ev st (e : Expr.t) : Interval.t =
  let raw =
    match e with
    | Expr.IntImm n -> Interval.point n
    | Expr.FloatImm _ -> raise (NA "float literal in index")
    | Expr.Var v -> (
        match Hashtbl.find_opt st.env v.Expr.vid with
        | Some (Some i) -> i
        | Some None -> raise (NA ("opaque binding of " ^ v.Expr.vname))
        | None -> raise (NA ("unbound variable " ^ v.Expr.vname)))
    | Expr.Binop (Expr.Sub, a, b) -> delta st a b
    | Expr.Binop (Expr.FloorMod, a, Expr.IntImm k) when k > 0 ->
        (* a residue provable even modulo just a divisor of [k] tightens
           the result beyond [0, k-1]: [blockIdx * 1568] mod 28 is
           exactly 0, and an even operand mod 56 sits in [0, 54]. *)
        residue_interval st a k
    | Expr.Binop (op, a, b) -> (
        let ia = ev st a and ib = ev st b in
        try
          match op with
          | Expr.Add -> Interval.add ia ib
          | Expr.Sub -> Interval.sub ia ib
          | Expr.Mul -> Interval.mul ia ib
          | Expr.Div -> Interval.div ia ib
          | Expr.FloorMod -> Interval.modulo ia ib
          | Expr.Min -> Interval.min_ ia ib
          | Expr.Max -> Interval.max_ ia ib
        with Invalid_argument msg -> raise (NA msg))
    | Expr.Select (c, t, f) ->
        let it = try Some (ev (push_guards st c) t) with Unreachable -> None in
        let if_ = ev st f in
        (match it with Some it -> Interval.union it if_ | None -> if_)
    | Expr.Cast (_, a) -> ev st a
    | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ -> Interval.make 0 1
    | Expr.Load _ -> raise (NA "load in index")
    | Expr.Call (n, _) -> raise (NA ("call to " ^ n ^ " in index"))
  in
  (* Intersect with every guard constraint whose subject matches this
     node structurally. An empty intersection means the guards rule the
     enclosing access out entirely: dead code, nothing to check. *)
  List.fold_left
    (fun acc (subject, c) -> if Expr.equal subject e then inter acc c else acc)
    raw st.guards

(** Remove clamps that are provably the identity: [min(a,b)] is [a]
    whenever [a]'s interval sits at or below [b]'s, and dually for
    [max]. Lowering clamps every inferred region bound, so retargeted
    indices are full of [max(0, min(x, hi)) - x] pairs that only cancel
    once the no-op clamp is peeled. *)
and strip_clamps st (e : Expr.t) : Expr.t =
  match e with
  | Expr.Binop (((Expr.Min | Expr.Max) as op), a, b) -> (
      match (ev st a, ev st b) with
      | ia, ib ->
          let keep_a =
            match op with
            | Expr.Min -> ia.Interval.hi <= ib.Interval.lo
            | _ -> ia.Interval.lo >= ib.Interval.hi
          in
          let keep_b =
            match op with
            | Expr.Min -> ib.Interval.hi <= ia.Interval.lo
            | _ -> ib.Interval.lo >= ia.Interval.hi
          in
          if keep_a then strip_clamps st a
          else if keep_b then strip_clamps st b
          else e
      | exception (NA _ | Unreachable) -> e)
  | e -> e

(** Interval of [e mod k] (for [k > 0]), as tight as provable: a known
    residue is a point; a known residue [r0] modulo a proper divisor
    [g] of [k] confines it to [[r0, k - g + r0]] (the residues
    congruent to [r0] mod [g]); an interval already inside [[0,k)] is
    its own residue. This is what bounds [o*7 mod 14] to [[0,7]]. *)
and residue_interval st (e : Expr.t) k : Interval.t =
  let meet acc i = try inter acc i with Unreachable -> acc in
  let full = Interval.make 0 (k - 1) in
  let by_value =
    match ev st e with
    | i when i.Interval.lo >= 0 && i.Interval.hi < k -> Some i
    | _ | (exception (NA _ | Unreachable)) -> None
  in
  let by_residue =
    match eval_mod st e k with
    | Some r -> Some (Interval.point r)
    | None ->
        let rec divisors_from g =
          if g < 2 then None
          else if k mod g = 0 then
            match eval_mod st e g with
            | Some r0 -> Some (Interval.make r0 (k - g + r0))
            | None -> divisors_from (g - 1)
          else divisors_from (g - 1)
        in
        divisors_from (k / 2)
  in
  let acc = match by_value with Some i -> meet full i | None -> full in
  match by_residue with Some i -> meet acc i | None -> acc

(** Interval of [a - b], exploiting shared structure. Both results —
    the structural difference and plain interval subtraction — are
    sound, so we return their intersection. *)
and delta st (a : Expr.t) (b : Expr.t) : Interval.t =
  let a = strip_clamps st a and b = strip_clamps st b in
  if Expr.equal a b then Interval.point 0
  else
    let plain () = Interval.sub (ev st a) (ev st b) in
    let meet_i i j =
      let lo = max i.Interval.lo j.Interval.lo
      and hi = min i.Interval.hi j.Interval.hi in
      if lo > hi then i (* both sound; keep one defensively *)
      else Interval.make lo hi
    in
    let meet_opt i j =
      match (i, j) with
      | Some i, Some j -> Some (meet_i i j)
      | (Some _ as s), None | None, (Some _ as s) -> s
      | None, None -> None
    in
    let lipschitz_pair a1 a2 b1 b2 =
      (* min/max are 1-Lipschitz and monotone in each argument *)
      if Expr.equal a2 b2 then
        let d = delta st a1 b1 in
        Some (Interval.make (min d.Interval.lo 0) (max d.Interval.hi 0))
      else if Expr.equal a1 b1 then
        let d = delta st a2 b2 in
        Some (Interval.make (min d.Interval.lo 0) (max d.Interval.hi 0))
      else None
    in
    let structural =
      match (a, b) with
      | Expr.Binop (Expr.Add, a1, a2), _ when Expr.equal a1 b -> Some (ev st a2)
      | Expr.Binop (Expr.Add, a1, a2), _ when Expr.equal a2 b -> Some (ev st a1)
      | _, Expr.Binop (Expr.Add, b1, b2) when Expr.equal a b1 -> Some (neg_i (ev st b2))
      | _, Expr.Binop (Expr.Add, b1, b2) when Expr.equal a b2 -> Some (neg_i (ev st b1))
      | Expr.Binop (Expr.Add, a1, a2), Expr.Binop (Expr.Add, b1, b2) ->
          Some (Interval.add (delta st a1 b1) (delta st a2 b2))
      | Expr.Binop (Expr.Sub, a1, a2), Expr.Binop (Expr.Sub, b1, b2) ->
          Some (Interval.add (delta st a1 b1) (neg_i (delta st a2 b2)))
      | Expr.Binop (Expr.Add, a1, a2), _ ->
          (* (a1 + a2) - b = (a1 - b) + a2 — try both splits, so the
             structural rules can engage on whichever addend shares b's
             div/mod spine *)
          let split x y =
            match Interval.add (delta st x b) (ev st y) with
            | i -> Some i
            | exception NA _ -> None
          in
          meet_opt (split a1 a2) (split a2 a1)
      | _, Expr.Binop (Expr.Add, b1, b2) ->
          let split x y =
            match Interval.add (delta st a x) (neg_i (ev st y)) with
            | i -> Some i
            | exception NA _ -> None
          in
          meet_opt (split b1 b2) (split b2 b1)
      | Expr.Binop (Expr.Mul, a1, Expr.IntImm k), Expr.Binop (Expr.Mul, b1, Expr.IntImm k')
        when k = k' ->
          Some (Interval.mul (delta st a1 b1) (Interval.point k))
      | Expr.Binop (Expr.Mul, Expr.IntImm k, a1), Expr.Binop (Expr.Mul, Expr.IntImm k', b1)
        when k = k' ->
          Some (Interval.mul (delta st a1 b1) (Interval.point k))
      | Expr.Binop (Expr.Div, a1, Expr.IntImm k), Expr.Binop (Expr.Div, b1, Expr.IntImm k')
        when k = k' && k > 0 ->
          (* Write b1 = q*k + r.  With a1 = b1 + d,
             ⌊a1/k⌋ - ⌊b1/k⌋ = ⌊(r+d)/k⌋, and r is confined by
             [residue_interval]. *)
          let d = delta st a1 b1 in
          if is_point d && d.Interval.lo = 0 then Some (Interval.point 0)
          else
            let r = residue_interval st b1 k in
            Some
              (Interval.make
                 (fdiv (r.Interval.lo + d.Interval.lo) k)
                 (fdiv (r.Interval.hi + d.Interval.hi) k))
      | ( Expr.Binop (Expr.FloorMod, a1, Expr.IntImm k),
          Expr.Binop (Expr.FloorMod, b1, Expr.IntImm k') )
        when k = k' && k > 0 ->
          (* a1 mod k - b1 mod k = (r+d) mod k - r with r as above; when
             r+d cannot wrap out of [0,k) the difference is exactly d. *)
          let d = delta st a1 b1 in
          if is_point d && d.Interval.lo = 0 then Some (Interval.point 0)
          else
            let r = residue_interval st b1 k in
            if r.Interval.lo + d.Interval.lo >= 0 && r.Interval.hi + d.Interval.hi < k
            then Some d
            else if is_point r && r.Interval.lo = 0 then
              (* (0+d) mod k - 0 *)
              Some (Interval.modulo d (Interval.point k))
            else Some (Interval.make (-(k - 1)) (k - 1))
      | Expr.Binop (Expr.Min, a1, a2), Expr.Binop (Expr.Min, b1, b2) ->
          lipschitz_pair a1 a2 b1 b2
      | Expr.Binop (Expr.Max, a1, a2), Expr.Binop (Expr.Max, b1, b2) ->
          lipschitz_pair a1 a2 b1 b2
      | Expr.Select (c1, t1, f1), Expr.Select (c2, t2, f2) when Expr.equal c1 c2 ->
          Some (Interval.union (delta st t1 t2) (delta st f1 f2))
      | Expr.Cast (_, a1), Expr.Cast (_, b1) -> Some (delta st a1 b1)
      | _ -> None
    in
    match structural with
    | None -> plain ()
    | Some d -> (
        match plain () with
        | p ->
            let lo = max d.Interval.lo p.Interval.lo
            and hi = min d.Interval.hi p.Interval.hi in
            if lo > hi then p (* defensive; both are sound, meet cannot be empty *)
            else Interval.make lo hi
        | exception (NA _ | Unreachable) -> d)

(* ---- guard constraints from boolean conditions -------------------- *)

and conjuncts = function
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

and flip_cmp = function
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le
  | (Expr.Eq | Expr.Ne) as op -> op

and constraint_of st op subject other =
  match ev st other with
  | io ->
      let lo, hi =
        match op with
        | Expr.Lt -> (lo_inf, io.Interval.hi - 1)
        | Expr.Le -> (lo_inf, io.Interval.hi)
        | Expr.Gt -> (io.Interval.lo + 1, hi_inf)
        | Expr.Ge -> (io.Interval.lo, hi_inf)
        | Expr.Eq -> (io.Interval.lo, io.Interval.hi)
        | Expr.Ne -> (lo_inf, hi_inf)
      in
      if lo > hi then [] else [ (subject, Interval.make lo hi) ]
  | exception (NA _ | Unreachable) -> []

(** Extend the guard set with the conjuncts of [cond]. Each comparison
    [l op r] contributes a bound on [l] (from [r]'s interval) and on
    [r] (from [l]'s); non-comparison conjuncts contribute nothing. *)
and push_guards st cond =
  let cs =
    List.concat_map
      (function
        | Expr.Cmp (op, l, r) ->
            constraint_of st op l r @ constraint_of st (flip_cmp op) r l
        | _ -> [])
      (conjuncts cond)
  in
  { st with guards = cs @ st.guards }

(* ------------------------------------------------------------------ *)
(* Access checks                                                        *)
(* ------------------------------------------------------------------ *)

let buffer_site what (b : Expr.buffer) =
  Printf.sprintf "%s %s" what b.Expr.bname

let check_scope st what (b : Expr.buffer) =
  let site = buffer_site what b in
  if not (Hashtbl.mem st.in_scope b.Expr.bid) then
    if Hashtbl.mem st.all_alloc b.Expr.bid then report st Error (Out_of_scope b) ~site
    else if b.Expr.bscope <> Expr.Global then report st Error (Unallocated b) ~site
(* never-allocated Global buffers are the kernel's external parameters *)

(** Bounds-check one access. [extents] widens each index to a region
    (DMA copies and tensorized regions); element accesses pass 1s. *)
let check_bounds st what (b : Expr.buffer) (idx : Expr.t list) (extents : int list) =
  let site = buffer_site what b in
  if List.length idx <> List.length b.Expr.bshape then
    report st Error (Rank_mismatch (b, List.length idx)) ~site
  else
    List.iteri
      (fun d ((i, ext), dim_e) ->
        match Interval.const_of_expr dim_e with
        | None ->
            report st Warning (Non_affine (Printf.sprintf "symbolic extent of dim %d" d)) ~site
        | Some dim -> (
            match ev st i with
            | itv ->
                let itv = Interval.make itv.Interval.lo (itv.Interval.hi + ext - 1) in
                if itv.Interval.lo < 0 || itv.Interval.hi > dim - 1 then
                  report st Error (Out_of_bounds (b, d, itv, dim)) ~site
            | exception NA msg -> report st Warning (Non_affine msg) ~site
            | exception Unreachable -> ()))
      (List.combine (List.combine idx extents) b.Expr.bshape)

let ones idx = List.map (fun _ -> 1) idx

let check_access st what b idx =
  check_scope st what b;
  check_bounds st what b idx (ones idx)

let check_store_dtype st (b : Expr.buffer) v =
  let site = buffer_site "store" b in
  let dv = Expr.dtype_of v and db = b.Expr.bdtype in
  if not (Dtype.equal dv db) then
    if Dtype.is_float dv && Dtype.is_integer db then
      (* silent truncation of the fractional part: always a bug *)
      report st Error (Dtype_mismatch (b, dv)) ~site
    else if Dtype.is_integer dv && Dtype.is_float db then
      () (* integer constants promote losslessly: reduce inits do this *)
    else report st Warning (Dtype_mismatch (b, dv)) ~site

(* ---- write races --------------------------------------------------- *)

(** Report a race when a write's cell provably does not depend on the
    copy index of an enclosing concurrent loop the buffer is shared
    across. Substituting two concrete in-range copy indices and
    comparing structurally is a sound under-approximation: structural
    equality of both instances proves those two copies write the same
    cell. Writes guarded down to a single copy (e.g. [if (tid == 0)])
    are not races — the guard set pins the loop var to a point. *)
let check_race st what (b : Expr.buffer) (idx : Expr.t list) =
  let depth =
    match Hashtbl.find_opt st.alloc_depth b.Expr.bid with Some d -> d | None -> 0
  in
  List.iteri
    (fun i t ->
      if depth <= i then
        let single_copy =
          match ev st (Expr.Var t.t_var) with
          | itv -> is_point itv
          | exception (NA _ | Unreachable) -> false
        in
        let invariant e =
          let at n = Simplify.expr (Visit.subst_var_expr t.t_var (Expr.IntImm n) e) in
          Expr.equal (at t.t_min) (at (t.t_min + 1))
        in
        if (not single_copy) && List.for_all invariant idx then
          report st Error (Write_race (b, t.t_desc)) ~site:(buffer_site what b))
    st.threads

(* ------------------------------------------------------------------ *)
(* Statement walk                                                       *)
(* ------------------------------------------------------------------ *)

let rec check_expr st (e : Expr.t) =
  match e with
  | Expr.Var v ->
      if not (Hashtbl.mem st.env v.Expr.vid) then
        report st Error (Unbound_var v) ~site:("use of " ^ v.Expr.vname)
  | Expr.Load (b, idx) ->
      check_access st "load" b idx;
      List.iter (check_expr st) idx
  | Expr.Select (c, t, f) ->
      check_expr st c;
      (match push_guards st c with
      | st' -> check_expr st' t
      | exception Unreachable -> ());
      check_expr st f
  | Expr.Binop (_, a, b) | Expr.Cmp (_, a, b) | Expr.And (a, b) | Expr.Or (a, b) ->
      check_expr st a;
      check_expr st b
  | Expr.Not a | Expr.Cast (_, a) -> check_expr st a
  | Expr.Call (_, args) -> List.iter (check_expr st) args
  | Expr.IntImm _ | Expr.FloatImm _ -> ()

let with_binding st (v : Expr.var) itv f =
  let old = Hashtbl.find_opt st.env v.Expr.vid in
  Hashtbl.replace st.env v.Expr.vid itv;
  f ();
  match old with
  | Some o -> Hashtbl.replace st.env v.Expr.vid o
  | None -> Hashtbl.remove st.env v.Expr.vid

(** Concurrent-copy descriptor for a loop, when its copies can race:
    vthread and thread-bound loops of constant extent >= 2. A deeper
    re-binding of an already-bound thread tag is cooperative work
    distribution (it runs at the enclosing tag's value), not a new axis
    of concurrency. *)
let thread_loop_of st (l : Stmt.for_loop) =
  let concurrent tag desc =
    match (Interval.const_of_expr l.Stmt.min_, Interval.const_of_expr l.Stmt.extent) with
    | Some m, Some e when e >= 2 ->
        Some { t_var = l.Stmt.loop_var; t_min = m; t_desc = desc; t_tag = tag }
    | _ -> None
  in
  match l.Stmt.kind with
  | Stmt.Vthread -> concurrent None ("vthread " ^ l.Stmt.loop_var.Expr.vname)
  | Stmt.Thread_binding tag ->
      if List.exists (fun t -> t.t_tag = Some tag) st.threads then None
      else concurrent (Some tag) tag
  | Stmt.Serial | Stmt.Parallel | Stmt.Vectorized | Stmt.Unrolled -> None

let rec walk st (s : Stmt.t) =
  match s with
  | Stmt.Store (b, idx, v) ->
      List.iter (check_expr st) idx;
      check_expr st v;
      check_access st "store" b idx;
      check_store_dtype st b v;
      check_race st "store" b idx
  | Stmt.For l ->
      check_expr st l.Stmt.min_;
      check_expr st l.Stmt.extent;
      let itv =
        match (ev st l.Stmt.min_, ev st l.Stmt.extent) with
        | m, e when e.Interval.hi >= 1 ->
            Some (Interval.make m.Interval.lo (m.Interval.hi + e.Interval.hi - 1))
        | _ -> None
        | exception (NA _ | Unreachable) -> None
      in
      let st' =
        match thread_loop_of st l with
        | Some t -> { st with threads = st.threads @ [ t ] }
        | None -> st
      in
      with_binding st l.Stmt.loop_var itv (fun () -> walk st' l.Stmt.body)
  | Stmt.If_then_else (c, t, e) ->
      check_expr st c;
      (match push_guards st c with
      | st' -> walk st' t
      | exception Unreachable -> ());
      Option.iter (walk st) e
  | Stmt.Let_stmt (v, e, b) ->
      check_expr st e;
      let itv = match ev st e with i -> Some i | exception (NA _ | Unreachable) -> None in
      with_binding st v itv (fun () -> walk st b)
  | Stmt.Seq ss -> List.iter (walk st) ss
  | Stmt.Allocate (b, body) ->
      Hashtbl.replace st.in_scope b.Expr.bid ();
      Hashtbl.replace st.alloc_depth b.Expr.bid (List.length st.threads);
      walk st body;
      Hashtbl.remove st.in_scope b.Expr.bid
  | Stmt.Evaluate e -> check_expr st e
  | Stmt.Call_intrin ic ->
      List.iter
        (fun (b, base) ->
          List.iter (check_expr st) base;
          check_access st "intrinsic region" b base)
        (ic.Stmt.inputs @ [ ic.Stmt.output ]);
      check_race st "intrinsic output" (fst ic.Stmt.output) (snd ic.Stmt.output)
  | Stmt.Dma_copy d ->
      List.iter (check_expr st) d.Stmt.dma_src_base;
      List.iter (check_expr st) d.Stmt.dma_dst_base;
      check_scope st "dma src" d.Stmt.dma_src;
      check_scope st "dma dst" d.Stmt.dma_dst;
      if List.length d.Stmt.dma_extents = List.length d.Stmt.dma_src.Expr.bshape then
        check_bounds st "dma src" d.Stmt.dma_src d.Stmt.dma_src_base d.Stmt.dma_extents;
      if List.length d.Stmt.dma_extents = List.length d.Stmt.dma_dst.Expr.bshape then
        check_bounds st "dma dst" d.Stmt.dma_dst d.Stmt.dma_dst_base d.Stmt.dma_extents;
      if not (Dtype.equal d.Stmt.dma_src.Expr.bdtype d.Stmt.dma_dst.Expr.bdtype) then
        report st Error
          (Dtype_mismatch (d.Stmt.dma_dst, d.Stmt.dma_src.Expr.bdtype))
          ~site:(buffer_site "dma into" d.Stmt.dma_dst);
      check_race st "dma dst" d.Stmt.dma_dst d.Stmt.dma_dst_base
  | Stmt.Barrier | Stmt.Push_dep _ | Stmt.Pop_dep _ | Stmt.Skip -> ()

(* ------------------------------------------------------------------ *)
(* Dependence-token balance                                             *)
(* ------------------------------------------------------------------ *)

(** Per pipe pair: [net] tokens produced minus consumed, [minp] the
    minimum running balance relative to entry (a negative [minp] at the
    top level means some pop can run before its push: deadlock in
    {!Tvm_vdla.Des}), [exact] whether the counts are statically known
    (conditional tokens and non-constant trip counts clear it). *)
type tk = { net : int; minp : int; exact : bool }

let tk_tok n = { net = n; minp = min n 0; exact = true }
let tk_pairs = List.map fst

let tk_merge f a b =
  let keys = List.sort_uniq compare (tk_pairs a @ tk_pairs b) in
  let zero = { net = 0; minp = 0; exact = true } in
  List.map
    (fun k ->
      let ga = Option.value ~default:zero (List.assoc_opt k a) in
      let gb = Option.value ~default:zero (List.assoc_opt k b) in
      (k, f ga gb))
    keys

let tk_seq = tk_merge (fun a b ->
    { net = a.net + b.net; minp = min a.minp (a.net + b.minp); exact = a.exact && b.exact })

let tk_choice = tk_merge (fun a b ->
    { net = a.net; minp = min a.minp b.minp; exact = a.exact && b.exact && a.net = b.net })

let tk_scale n body =
  List.map
    (fun (k, t) ->
      if n <= 0 then (k, { net = 0; minp = 0; exact = t.exact })
      else
        let minp = if t.net >= 0 then t.minp else ((n - 1) * t.net) + t.minp in
        (k, { net = n * t.net; minp; exact = t.exact }))
    body

let tk_unknown_scale body =
  List.map
    (fun (k, t) ->
      if t.net = 0 then (k, { t with minp = min 0 t.minp })
      else (k, { net = 0; minp = min 0 t.minp; exact = false }))
    body

let rec tokens (s : Stmt.t) : ((Stmt.pipe * Stmt.pipe) * tk) list =
  match s with
  | Stmt.Push_dep (q, p) -> [ ((q, p), tk_tok 1) ]
  | Stmt.Pop_dep (q, p) -> [ ((q, p), tk_tok (-1)) ]
  | Stmt.Seq ss -> List.fold_left (fun acc s -> tk_seq acc (tokens s)) [] ss
  | Stmt.For l -> (
      let body = tokens l.Stmt.body in
      if body = [] then []
      else
        match Interval.const_of_expr l.Stmt.extent with
        | Some n -> tk_scale n body
        | None -> tk_unknown_scale body)
  | Stmt.If_then_else (_, t, e) ->
      tk_choice (tokens t) (match e with Some e -> tokens e | None -> [])
  | Stmt.Let_stmt (_, _, b) | Stmt.Allocate (_, b) -> tokens b
  | Stmt.Store _ | Stmt.Barrier | Stmt.Evaluate _ | Stmt.Call_intrin _
  | Stmt.Dma_copy _ | Stmt.Skip ->
      []

let check_tokens st s =
  List.iter
    (fun ((q, p), t) ->
      let site = Printf.sprintf "%s->%s tokens" (Stmt.pipe_to_string q) (Stmt.pipe_to_string p) in
      if not t.exact then
        report st Warning (Non_affine "token stream not statically countable") ~site
      else begin
        if t.net <> 0 then report st Error (Unbalanced_tokens (q, p, t.net)) ~site;
        if t.minp < 0 then report st Error (Token_underflow (q, p)) ~site
      end)
    (tokens s)

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let check (s : Stmt.t) : violation list =
  let st =
    {
      env = Hashtbl.create 64;
      in_scope = Hashtbl.create 16;
      all_alloc = Hashtbl.create 16;
      alloc_depth = Hashtbl.create 16;
      guards = [];
      threads = [];
      out = ref [];
    }
  in
  List.iter
    (fun (b : Expr.buffer) -> Hashtbl.replace st.all_alloc b.Expr.bid ())
    (Stmt.allocated_buffers s);
  walk st s;
  check_tokens st s;
  (* One report per distinct violation; errors first. *)
  !(st.out)
  |> List.sort_uniq compare
  |> List.stable_sort (fun a b -> compare a.severity b.severity)
