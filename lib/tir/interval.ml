(** Interval analysis over index expressions.

    Bound inference for lowering (which buffer region does a consumer
    touch?) and footprint analysis for the timing models and cost-model
    features both reduce to evaluating an index expression over an
    environment mapping loop variables to integer ranges. Our schedule
    templates generate affine indices, for which this analysis is exact
    when splits divide extents evenly, and conservative otherwise. *)

type t = { lo : int; hi : int }  (** inclusive bounds *)

let make lo hi =
  if lo > hi then invalid_arg (Printf.sprintf "Interval.make %d %d" lo hi);
  { lo; hi }

let point n = { lo = n; hi = n }
let of_extent ~min ~extent = { lo = min; hi = min + extent - 1 }
let length i = i.hi - i.lo + 1
let union a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let contains i n = i.lo <= n && n <= i.hi
let to_string i = Printf.sprintf "[%d,%d]" i.lo i.hi

let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }
let sub a b = { lo = a.lo - b.hi; hi = a.hi - b.lo }

let mul a b =
  let products = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
  { lo = List.fold_left min max_int products; hi = List.fold_left max min_int products }

let div a b =
  (* Conservative: only handle positive constant divisors precisely. *)
  if b.lo = b.hi && b.lo > 0 then
    let d = b.lo in
    let fdiv x = if x >= 0 then x / d else -(((-x) + d - 1) / d) in
    { lo = fdiv a.lo; hi = fdiv a.hi }
  else invalid_arg "Interval.div: non-constant or non-positive divisor"

let modulo a b =
  if b.lo = b.hi && b.lo > 0 then
    let d = b.lo in
    if a.lo >= 0 && a.hi - a.lo + 1 >= d then { lo = 0; hi = d - 1 }
    else if a.lo >= 0 && a.lo / d = a.hi / d then { lo = a.lo mod d; hi = a.hi mod d }
    else { lo = 0; hi = d - 1 }
  else invalid_arg "Interval.modulo: non-constant or non-positive divisor"

let min_ a b = { lo = min a.lo b.lo; hi = min a.hi b.hi }
let max_ a b = { lo = max a.lo b.lo; hi = max a.hi b.hi }

exception Not_analyzable of string

(* The worker behind {!eval}: [memo] caches the interval of composite
   nodes by physical identity for the duration of one evaluation, so
   subtrees shared by hash-consed construction are analyzed once.
   Only successes are cached — [Not_analyzable] propagates before the
   store. The environment is fixed for the whole call, so caching is
   sound. *)
let rec eval_memo memo env (e : Expr.t) : t =
  match e with
  | Expr.IntImm n -> point n
  | Expr.FloatImm _ -> raise (Not_analyzable "float in index")
  | Expr.Var v -> (
      match env v.Expr.vid with
      | Some i -> i
      | None -> raise (Not_analyzable ("unbound var " ^ v.Expr.vname)))
  | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ -> { lo = 0; hi = 1 }
  | Expr.Load _ -> raise (Not_analyzable "load in index")
  | Expr.Call (n, _) -> raise (Not_analyzable ("call " ^ n ^ " in index"))
  | Expr.Binop _ | Expr.Select _ | Expr.Cast _ -> (
      match Expr.Phys.find_opt memo e with
      | Some i -> i
      | None ->
          let i =
            match e with
            | Expr.Binop (op, a, b) -> (
                let ia = eval_memo memo env a and ib = eval_memo memo env b in
                match op with
                | Expr.Add -> add ia ib
                | Expr.Sub -> sub ia ib
                | Expr.Mul -> mul ia ib
                | Expr.Div -> div ia ib
                | Expr.FloorMod -> modulo ia ib
                | Expr.Min -> min_ ia ib
                | Expr.Max -> max_ ia ib)
            | Expr.Select (_, t, f) ->
                union (eval_memo memo env t) (eval_memo memo env f)
            | Expr.Cast (_, a) -> eval_memo memo env a
            | _ -> assert false
          in
          Expr.Phys.add memo e i;
          i)

(** Evaluate expression [e] to an interval under [env : var id -> t].
    Raises {!Not_analyzable} on constructs outside the affine fragment
    (calls, loads); callers either guarantee affine indices or catch. *)
(* Leaf evaluations never consult the memo; sharing one empty table
   avoids an allocation on those (frequent) calls. *)
let leaf_memo : t Expr.Phys.t = Expr.Phys.create 1

let eval env (e : Expr.t) : t =
  match e with
  | Expr.Binop _ | Expr.Select _ | Expr.Cast _ ->
      eval_memo (Expr.Phys.create 16) env e
  | _ -> eval_memo leaf_memo env e

(** Evaluate under an association list from vars to intervals. *)
let eval_under bindings e =
  let table = Hashtbl.create 16 in
  List.iter (fun (v, i) -> Hashtbl.replace table v.Expr.vid i) bindings;
  eval (Hashtbl.find_opt table) e

(** Constant-fold an expression to an int if the interval is a point. *)
let const_of_expr e =
  match eval (fun _ -> None) e with
  | { lo; hi } when lo = hi -> Some lo
  | _ -> None
  | exception Not_analyzable _ -> None
