(** Statements of the low-level loop IR.

    This is the program representation that schedules are lowered into
    (Fig 5/6 of the paper), that the functional interpreter executes,
    that the timing models analyze, and that the VDLA assembler
    translates into accelerator instruction streams. *)

(** DAE pipeline stages of a TPU-like accelerator (Fig 9): memory load
    unit, compute unit, memory store unit. Dependence tokens flow
    between them. *)
type pipe = Ld | Ex | St

let pipe_to_string = function Ld -> "ld" | Ex -> "ex" | St -> "st"

(** Loop annotations. [Serial] is plain; [Parallel]/[Vectorized]/
    [Unrolled] mirror Halide; [Thread_binding] maps a loop onto a GPU
    thread index (§4.2); [Vthread] is the paper's virtual-threading
    primitive for latency hiding (§4.4), erased by
    {!Tvm_lower.Vthread_lower} before execution. *)
type for_kind =
  | Serial
  | Parallel
  | Vectorized
  | Unrolled
  | Thread_binding of string  (** e.g. "blockIdx.x", "threadIdx.y" *)
  | Vthread

let for_kind_to_string = function
  | Serial -> "for"
  | Parallel -> "parallel"
  | Vectorized -> "vectorized"
  | Unrolled -> "unrolled"
  | Thread_binding tag -> "bind[" ^ tag ^ "]"
  | Vthread -> "vthread"

type t =
  | Store of Expr.buffer * Expr.t list * Expr.t
  | For of for_loop
  | If_then_else of Expr.t * t * t option
  | Let_stmt of Expr.var * Expr.t * t
  | Seq of t list
  | Allocate of Expr.buffer * t
      (** Scoped allocation: buffer live for the body only. *)
  | Barrier  (** GPU thread-group memory barrier (§4.2). *)
  | Evaluate of Expr.t
  | Call_intrin of intrin_call
      (** Tensorized micro-kernel call produced by the tensorize
          primitive (§4.3): operates on whole sub-regions. *)
  | Dma_copy of dma
      (** Accelerator DMA between DRAM-scope and on-chip buffers. *)
  | Push_dep of pipe * pipe  (** enqueue dependence token from→to (Fig 8) *)
  | Pop_dep of pipe * pipe  (** dequeue dependence token from→to *)
  | Skip

and for_loop = {
  loop_var : Expr.var;
  min_ : Expr.t;
  extent : Expr.t;
  kind : for_kind;
  body : t;
}

and intrin_call = {
  intrin_name : string;  (** key into the tensor-intrinsic registry *)
  variant : string;  (** "body" | "reset" | "update" (§4.3 lowering) *)
  inputs : (Expr.buffer * Expr.t list) list;  (** (buffer, base indices) *)
  output : Expr.buffer * Expr.t list;
}

and dma = {
  dma_src : Expr.buffer;
  dma_src_base : Expr.t list;
  dma_dst : Expr.buffer;
  dma_dst_base : Expr.t list;
  dma_extents : int list;  (** region copied, same rank as both buffers *)
}

let for_ ?(kind = Serial) loop_var min_ extent body =
  match extent with
  | Expr.IntImm 1 when kind = Serial ->
      (* A single-trip serial loop is just a binding of the loop var.
         Annotated loops (thread bindings, parallel, vectorize, ...)
         must survive even at extent 1: the annotation carries meaning
         beyond iteration count. *)
      Let_stmt (loop_var, min_, body)
  | _ -> For { loop_var; min_; extent; kind; body }

let seq = function [] -> Skip | [ s ] -> s | ss -> Seq ss

let rec flatten_seq = function
  | Seq ss -> List.concat_map flatten_seq ss
  | Skip -> []
  | s -> [ s ]

(** Iterate [f] over every statement node, pre-order. *)
let rec iter f stmt =
  f stmt;
  match stmt with
  | Store _ | Barrier | Evaluate _ | Call_intrin _ | Dma_copy _ | Push_dep _
  | Pop_dep _ | Skip ->
      ()
  | For l -> iter f l.body
  | If_then_else (_, t, e) -> (
      iter f t;
      match e with Some e -> iter f e | None -> ())
  | Let_stmt (_, _, b) -> iter f b
  | Seq ss -> List.iter (iter f) ss
  | Allocate (_, b) -> iter f b

(** Rebuild the tree bottom-up with [f] applied to every node. *)
let rec map f stmt =
  let stmt =
    match stmt with
    | Store _ | Barrier | Evaluate _ | Call_intrin _ | Dma_copy _ | Push_dep _
    | Pop_dep _ | Skip ->
        stmt
    | For l -> For { l with body = map f l.body }
    | If_then_else (c, t, e) -> If_then_else (c, map f t, Option.map (map f) e)
    | Let_stmt (v, e, b) -> Let_stmt (v, e, map f b)
    | Seq ss -> seq (List.map (map f) ss)
    | Allocate (b, body) -> Allocate (b, map f body)
  in
  f stmt

(** Fold over every expression appearing in the statement tree. *)
let rec fold_exprs f acc stmt =
  match stmt with
  | Store (_, idx, v) -> f (List.fold_left f acc idx) v
  | For l -> fold_exprs f (f (f acc l.min_) l.extent) l.body
  | If_then_else (c, t, e) ->
      let acc = fold_exprs f (f acc c) t in
      (match e with Some e -> fold_exprs f acc e | None -> acc)
  | Let_stmt (_, e, b) -> fold_exprs f (f acc e) b
  | Seq ss -> List.fold_left (fold_exprs f) acc ss
  | Allocate (_, b) -> fold_exprs f acc b
  | Evaluate e -> f acc e
  | Call_intrin ic ->
      let acc =
        List.fold_left (fun acc (_, idx) -> List.fold_left f acc idx) acc ic.inputs
      in
      List.fold_left f acc (snd ic.output)
  | Dma_copy d -> List.fold_left f (List.fold_left f acc d.dma_src_base) d.dma_dst_base
  | Barrier | Push_dep _ | Pop_dep _ | Skip -> acc

(** Map [f] over every expression in the statement tree (top-level of
    each expression only; use with {!Visit.map_expr} for deep maps). *)
let rec map_exprs f stmt =
  match stmt with
  | Store (b, idx, v) -> Store (b, List.map f idx, f v)
  | For l -> For { l with min_ = f l.min_; extent = f l.extent; body = map_exprs f l.body }
  | If_then_else (c, t, e) ->
      If_then_else (f c, map_exprs f t, Option.map (map_exprs f) e)
  | Let_stmt (v, e, b) -> Let_stmt (v, f e, map_exprs f b)
  | Seq ss -> seq (List.map (map_exprs f) ss)
  | Allocate (b, body) -> Allocate (b, map_exprs f body)
  | Evaluate e -> Evaluate (f e)
  | Call_intrin ic ->
      Call_intrin
        {
          ic with
          inputs = List.map (fun (b, idx) -> (b, List.map f idx)) ic.inputs;
          output = (fst ic.output, List.map f (snd ic.output));
        }
  | Dma_copy d ->
      Dma_copy
        {
          d with
          dma_src_base = List.map f d.dma_src_base;
          dma_dst_base = List.map f d.dma_dst_base;
        }
  | Barrier | Push_dep _ | Pop_dep _ | Skip -> stmt

(** All buffers allocated anywhere inside [stmt]. *)
let allocated_buffers stmt =
  let acc = ref [] in
  iter (function Allocate (b, _) -> acc := b :: !acc | _ -> ()) stmt;
  List.rev !acc

(** Count statement nodes; used by tests and the TreeRNN featurizer. *)
let size stmt =
  let n = ref 0 in
  iter (fun _ -> incr n) stmt;
  !n
