(** Deep traversals and substitution over expressions and statements. *)

(** Bottom-up rebuild of an expression with [f] applied at every node. *)
let rec map_expr f (e : Expr.t) : Expr.t =
  let e =
    match e with
    | Expr.IntImm _ | Expr.FloatImm _ | Expr.Var _ -> e
    | Expr.Binop (op, a, b) -> Expr.binop op (map_expr f a) (map_expr f b)
    | Expr.Cmp (op, a, b) -> Expr.cmp op (map_expr f a) (map_expr f b)
    | Expr.And (a, b) -> Expr.and_ (map_expr f a) (map_expr f b)
    | Expr.Or (a, b) -> Expr.or_ (map_expr f a) (map_expr f b)
    | Expr.Not a -> Expr.not_ (map_expr f a)
    | Expr.Select (c, t, fl) -> Expr.select (map_expr f c) (map_expr f t) (map_expr f fl)
    | Expr.Cast (d, a) -> Expr.cast d (map_expr f a)
    | Expr.Load (b, idx) -> Expr.load b (List.map (map_expr f) idx)
    | Expr.Call (n, args) -> Expr.call n (List.map (map_expr f) args)
  in
  f e

(** Like {!map_expr} for a {e pure} [f], exploiting structural sharing:
    each physically distinct subtree is visited once per call, so DAGs
    that print exponentially large map in time linear in their node
    count. Not for stateful [f] — a callback counting visits would see
    each shared node once, not once per occurrence. *)
let map_expr_shared f (e : Expr.t) : Expr.t =
  let memo = Expr.Phys.create 64 in
  let rec go e =
    match e with
    | Expr.IntImm _ | Expr.FloatImm _ -> f e
    | _ -> (
        match Expr.Phys.find_opt memo e with
        | Some r -> r
        | None ->
            let r =
              match e with
              | Expr.IntImm _ | Expr.FloatImm _ | Expr.Var _ -> f e
              | Expr.Binop (op, a, b) -> f (Expr.binop op (go a) (go b))
              | Expr.Cmp (op, a, b) -> f (Expr.cmp op (go a) (go b))
              | Expr.And (a, b) -> f (Expr.and_ (go a) (go b))
              | Expr.Or (a, b) -> f (Expr.or_ (go a) (go b))
              | Expr.Not a -> f (Expr.not_ (go a))
              | Expr.Select (c, t, fl) -> f (Expr.select (go c) (go t) (go fl))
              | Expr.Cast (d, a) -> f (Expr.cast d (go a))
              | Expr.Load (b, idx) -> f (Expr.load b (List.map go idx))
              | Expr.Call (n, args) -> f (Expr.call n (List.map go args))
            in
            Expr.Phys.add memo e r;
            r)
  in
  go e

let rec fold_expr f acc (e : Expr.t) =
  let acc = f acc e in
  match e with
  | Expr.IntImm _ | Expr.FloatImm _ | Expr.Var _ -> acc
  | Expr.Binop (_, a, b) | Expr.Cmp (_, a, b) | Expr.And (a, b) | Expr.Or (a, b) ->
      fold_expr f (fold_expr f acc a) b
  | Expr.Not a | Expr.Cast (_, a) -> fold_expr f acc a
  | Expr.Select (c, t, fl) -> fold_expr f (fold_expr f (fold_expr f acc c) t) fl
  | Expr.Load (_, idx) -> List.fold_left (fold_expr f) acc idx
  | Expr.Call (_, args) -> List.fold_left (fold_expr f) acc args

(** Substitute variables by expressions according to [lookup]. [lookup]
    must be pure (it is consulted once per distinct variable node, not
    once per occurrence — see {!map_expr_shared}). *)
let subst_expr lookup e =
  map_expr_shared
    (function Expr.Var v as e -> (match lookup v with Some e' -> e' | None -> e) | e -> e)
    e

(** Substitute in every expression of a statement (does not rename
    binders; lowering guarantees globally unique variable ids). *)
let subst_stmt lookup stmt = Stmt.map_exprs (subst_expr lookup) stmt

let subst_var_expr v replacement e =
  subst_expr (fun v' -> if Expr.Var.equal v v' then Some replacement else None) e

let subst_var_stmt v replacement s =
  subst_stmt (fun v' -> if Expr.Var.equal v v' then Some replacement else None) s

(** Association-list based substitution used by lowering. The binding
    table is built once, outside the per-node lookup — rebuilding it in
    the closure made substitution O(nodes x bindings). *)
let subst_map_expr bindings e =
  let table = Hashtbl.create (List.length bindings * 2) in
  (* reversed so that, as with [List.assoc_opt], the first binding of a
     duplicated var wins *)
  List.iter (fun (v, e) -> Hashtbl.replace table v.Expr.vid e) (List.rev bindings);
  subst_expr (fun v -> Hashtbl.find_opt table v.Expr.vid) e

(** Free variables of an expression (buffer shapes not included). *)
let free_vars e =
  fold_expr (fun acc e -> match e with Expr.Var v -> v :: acc | _ -> acc) [] e
  |> List.sort_uniq Expr.Var.compare

(** All buffers loaded from within an expression. *)
let loaded_buffers e =
  fold_expr (fun acc e -> match e with Expr.Load (b, _) -> b :: acc | _ -> acc) [] e
  |> List.sort_uniq Expr.Buffer.compare

(** Replace loads from buffer [b] via [f idx -> expr]; [f] must be
    pure (shared load nodes are rewritten once, see
    {!map_expr_shared}). *)
let replace_loads b f e =
  map_expr_shared
    (function
      | Expr.Load (b', idx) when Expr.Buffer.equal b b' -> f idx
      | e -> e)
    e

(** Rewrite every reference to buffer [old_b] (loads in expressions,
    stores, DMA endpoints, intrinsic regions) to buffer [new_b],
    transforming index lists with [remap]. *)
let retarget_buffer ~old_b ~new_b ~remap stmt =
  let fix_expr e =
    map_expr_shared
      (function
        | Expr.Load (b, idx) when Expr.Buffer.equal b old_b -> Expr.load new_b (remap idx)
        | e -> e)
      e
  in
  let fix_region (b, idx) =
    if Expr.Buffer.equal b old_b then (new_b, remap idx) else (b, idx)
  in
  Stmt.map
    (function
      | Stmt.Store (b, idx, v) when Expr.Buffer.equal b old_b ->
          Stmt.Store (new_b, remap idx, v)
      | Stmt.Call_intrin ic ->
          Stmt.Call_intrin
            {
              ic with
              Stmt.inputs = List.map fix_region ic.Stmt.inputs;
              Stmt.output = fix_region ic.Stmt.output;
            }
      | Stmt.Dma_copy d ->
          let src, src_base = fix_region (d.Stmt.dma_src, d.Stmt.dma_src_base) in
          let dst, dst_base = fix_region (d.Stmt.dma_dst, d.Stmt.dma_dst_base) in
          Stmt.Dma_copy
            { d with Stmt.dma_src = src; dma_src_base = src_base; dma_dst = dst;
              dma_dst_base = dst_base }
      | s -> s)
    (Stmt.map_exprs fix_expr stmt)
