(** Simplification passes.

    The smart constructors in {!Expr} fold constants at construction
    time; these passes re-apply them after substitution (which can
    expose new constants) and prune trivial control flow. *)

(** Deep re-normalization of an expression: rebuilding through the
    smart constructors folds any constants exposed by substitution. *)
let expr e = Visit.map_expr Fun.id e

let rec stmt (s : Stmt.t) : Stmt.t =
  match s with
  | Stmt.Store (b, idx, v) -> Stmt.Store (b, List.map expr idx, expr v)
  | Stmt.For l -> (
      let min_ = expr l.Stmt.min_ and extent = expr l.Stmt.extent in
      let body = stmt l.Stmt.body in
      match extent with
      | Expr.IntImm 0 -> Stmt.Skip
      | Expr.IntImm 1 when l.Stmt.kind = Stmt.Serial ->
          (* Only serial unit loops collapse to a binding; thread-bound
             / parallel / vectorized loops keep their annotation (the
             device models price them by kind). *)
          stmt (Stmt.Let_stmt (l.Stmt.loop_var, min_, body))
      | _ -> Stmt.For { l with min_; extent; body })
  | Stmt.If_then_else (c, t, e) -> (
      match expr c with
      | Expr.IntImm 0 -> ( match e with Some e -> stmt e | None -> Stmt.Skip)
      | Expr.IntImm _ -> stmt t
      | c -> (
          match (stmt t, Option.map stmt e) with
          | Stmt.Skip, None -> Stmt.Skip
          | t, Some Stmt.Skip -> Stmt.If_then_else (c, t, None)
          | t, e -> Stmt.If_then_else (c, t, e)))
  | Stmt.Let_stmt (v, e, b) -> (
      let e = expr e in
      match e with
      | Expr.IntImm _ | Expr.FloatImm _ | Expr.Var _ ->
          (* Cheap values: substitute through. *)
          stmt (Visit.subst_var_stmt v e b)
      | _ -> Stmt.Let_stmt (v, e, stmt b))
  | Stmt.Seq ss ->
      let ss = List.map stmt ss in
      let ss = List.concat_map Stmt.flatten_seq ss in
      Stmt.seq ss
  | Stmt.Allocate (b, body) -> (
      match stmt body with Stmt.Skip -> Stmt.Skip | body -> Stmt.Allocate (b, body))
  | Stmt.Evaluate e -> Stmt.Evaluate (expr e)
  | Stmt.Call_intrin ic ->
      Stmt.Call_intrin
        {
          ic with
          Stmt.inputs = List.map (fun (b, idx) -> (b, List.map expr idx)) ic.Stmt.inputs;
          Stmt.output = (fst ic.Stmt.output, List.map expr (snd ic.Stmt.output));
        }
  | Stmt.Dma_copy d ->
      Stmt.Dma_copy
        {
          d with
          Stmt.dma_src_base = List.map expr d.Stmt.dma_src_base;
          Stmt.dma_dst_base = List.map expr d.Stmt.dma_dst_base;
        }
  | Stmt.Barrier | Stmt.Push_dep _ | Stmt.Pop_dep _ | Stmt.Skip -> s
