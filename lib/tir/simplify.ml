(** Simplification passes.

    The smart constructors in {!Expr} fold constants at construction
    time; these passes re-apply them after substitution (which can
    expose new constants) and prune trivial control flow. *)

(* Per-domain memo over physically-shared nodes: hash-consed
   construction makes shared subtrees physically equal, so each is
   re-normalized once per domain instead of once per occurrence.
   Sound because the rebuild is pure and nodes are immutable; bounded
   so a long tuning run cannot pin every expression it ever saw. *)
let memo_limit = 1 lsl 16
let memo_key = Domain.DLS.new_key (fun () -> Expr.Phys.create 4096)

(** Deep re-normalization of an expression: rebuilding through the
    smart constructors folds any constants exposed by substitution. *)
let expr e =
  let memo = Domain.DLS.get memo_key in
  let rec go e =
    match e with
    | Expr.IntImm _ | Expr.FloatImm _ | Expr.Var _ -> e
    | _ -> (
        match Expr.Phys.find_opt memo e with
        | Some r -> r
        | None ->
            let r =
              match e with
              | Expr.IntImm _ | Expr.FloatImm _ | Expr.Var _ -> e
              | Expr.Binop (op, a, b) -> Expr.binop op (go a) (go b)
              | Expr.Cmp (op, a, b) -> Expr.cmp op (go a) (go b)
              | Expr.And (a, b) -> Expr.and_ (go a) (go b)
              | Expr.Or (a, b) -> Expr.or_ (go a) (go b)
              | Expr.Not a -> Expr.not_ (go a)
              | Expr.Select (c, t, f) -> Expr.select (go c) (go t) (go f)
              | Expr.Cast (d, a) -> Expr.cast d (go a)
              | Expr.Load (b, idx) -> Expr.load b (List.map go idx)
              | Expr.Call (n, args) -> Expr.call n (List.map go args)
            in
            if Expr.Phys.length memo >= memo_limit then Expr.Phys.reset memo;
            Expr.Phys.add memo e r;
            r)
  in
  go e

let rec stmt (s : Stmt.t) : Stmt.t =
  match s with
  | Stmt.Store (b, idx, v) -> Stmt.Store (b, List.map expr idx, expr v)
  | Stmt.For l -> (
      let min_ = expr l.Stmt.min_ and extent = expr l.Stmt.extent in
      let body = stmt l.Stmt.body in
      match extent with
      | Expr.IntImm 0 -> Stmt.Skip
      | Expr.IntImm 1 when l.Stmt.kind = Stmt.Serial ->
          (* Only serial unit loops collapse to a binding; thread-bound
             / parallel / vectorized loops keep their annotation (the
             device models price them by kind). *)
          stmt (Stmt.Let_stmt (l.Stmt.loop_var, min_, body))
      | _ -> Stmt.For { l with min_; extent; body })
  | Stmt.If_then_else (c, t, e) -> (
      match expr c with
      | Expr.IntImm 0 -> ( match e with Some e -> stmt e | None -> Stmt.Skip)
      | Expr.IntImm _ -> stmt t
      | c -> (
          match (stmt t, Option.map stmt e) with
          | Stmt.Skip, None -> Stmt.Skip
          | t, Some Stmt.Skip -> Stmt.If_then_else (c, t, None)
          | t, e -> Stmt.If_then_else (c, t, e)))
  | Stmt.Let_stmt (v, e, b) -> (
      let e = expr e in
      match e with
      | Expr.IntImm _ | Expr.FloatImm _ | Expr.Var _ ->
          (* Cheap values: substitute through. *)
          stmt (Visit.subst_var_stmt v e b)
      | _ -> Stmt.Let_stmt (v, e, stmt b))
  | Stmt.Seq ss ->
      let ss = List.map stmt ss in
      let ss = List.concat_map Stmt.flatten_seq ss in
      Stmt.seq ss
  | Stmt.Allocate (b, body) -> (
      match stmt body with Stmt.Skip -> Stmt.Skip | body -> Stmt.Allocate (b, body))
  | Stmt.Evaluate e -> Stmt.Evaluate (expr e)
  | Stmt.Call_intrin ic ->
      Stmt.Call_intrin
        {
          ic with
          Stmt.inputs = List.map (fun (b, idx) -> (b, List.map expr idx)) ic.Stmt.inputs;
          Stmt.output = (fst ic.Stmt.output, List.map expr (snd ic.Stmt.output));
        }
  | Stmt.Dma_copy d ->
      Stmt.Dma_copy
        {
          d with
          Stmt.dma_src_base = List.map expr d.Stmt.dma_src_base;
          Stmt.dma_dst_base = List.map expr d.Stmt.dma_dst_base;
        }
  | Stmt.Barrier | Stmt.Push_dep _ | Stmt.Pop_dep _ | Stmt.Skip -> s
