(** Analytical CPU timing model.

    Converts a lowered loop program into an estimated run time on a
    {!Machine.cpu}. The model makes exactly the quantities TVM's CPU
    schedule primitives manipulate first-class:

    - {b cache behaviour}: per-access working sets at every loop level
      decide at which level the access streams from L2 or DRAM — so
      tiling changes predicted time;
    - {b vectorization}: a [Vectorized] innermost loop with unit-stride
      accesses approaches peak SIMD throughput, strided ones pay a
      gather penalty;
    - {b parallelism}: an outer [Parallel] loop scales compute across
      cores with an imbalance factor, but not DRAM bandwidth;
    - {b unrolling}: reduces per-iteration loop overhead.

    The returned time is deterministic; the autotuning layer adds
    measurement noise separately (DESIGN.md §6). *)

open Tvm_tir
module Tensor_intrin = Tvm_schedule.Tensor_intrin

type breakdown = {
  compute_s : float;
  dram_s : float;
  l2_s : float;
  overhead_s : float;
  dram_bytes : float;
  l2_bytes : float;
  flops : float;
  total_s : float;
}

let intrin_flops name =
  match Hashtbl.find_opt Tensor_intrin.registry name with
  | Some i -> i.Tensor_intrin.flops
  | None -> 0.

(** Dynamic iteration counts of every loop, with kind. *)
let loop_stats (stmt : Stmt.t) =
  let out = ref [] in
  let rec walk mult s =
    match s with
    | Stmt.For l -> (
        match Interval.const_of_expr l.Stmt.extent with
        | Some extent ->
            out := (l.Stmt.kind, mult * extent, extent) :: !out;
            walk (mult * extent) l.Stmt.body
        | None -> walk mult l.Stmt.body)
    | Stmt.If_then_else (_, t, e) ->
        walk mult t;
        Option.iter (walk mult) e
    | Stmt.Let_stmt (_, _, b) | Stmt.Allocate (_, b) -> walk mult b
    | Stmt.Seq ss -> List.iter (walk mult) ss
    | Stmt.Store _ | Stmt.Barrier | Stmt.Evaluate _ | Stmt.Call_intrin _
    | Stmt.Dma_copy _ | Stmt.Push_dep _ | Stmt.Pop_dep _ | Stmt.Skip ->
        ()
  in
  walk 1 stmt;
  !out

(** Loop-stack signature used to group accesses of the same nest. *)
let stack_key (a : Analysis.access) =
  String.concat "." (List.map (fun l -> string_of_int l.Analysis.lvar.Expr.vid) a.Analysis.acc_loops)

(** Misses an access generates against a cache of [size] bytes:
    find the outermost loop level at which the nest's combined working
    set fits, then charge the access's footprint at that level once per
    dependent outer-loop trip. *)
let miss_bytes ~size ~nest_mates (a : Analysis.access) =
  let depth = List.length a.Analysis.acc_loops in
  (* Combined working set of the nest at each level: per-buffer max. *)
  let working_set level =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (b : Analysis.access) ->
        let lvl = min level (List.length b.Analysis.acc_loops) in
        let fp = Analysis.footprint_bytes_at_level b lvl in
        let key = b.Analysis.acc_buffer.Expr.bid in
        let prev = try Hashtbl.find tbl key with Not_found -> 0. in
        Hashtbl.replace tbl key (Float.max prev fp))
      nest_mates;
    (* Sorted-value summation: keep the float result independent of
       bucket order (buffer ids vary under parallel instantiation). *)
    Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
    |> List.sort compare
    |> List.fold_left ( +. ) 0.
  in
  let rec find_level k = if k >= depth then depth else if working_set k <= size then k else find_level (k + 1) in
  let k = find_level 0 in
  let fp = Analysis.footprint_bytes_at_level a k in
  (* Outer trips that actually change the data this access touches. *)
  let dependent_trips =
    List.fold_left
      (fun acc (i, l) ->
        if i >= k then acc
        else
          match Analysis.stride_wrt a l.Analysis.lvar with
          | Some 0 -> acc
          | Some _ | None -> acc * l.Analysis.lextent)
      1
      (List.mapi (fun i l -> (i, l)) a.Analysis.acc_loops)
  in
  fp *. float_of_int dependent_trips *. a.Analysis.acc_weight

let is_global (a : Analysis.access) = a.Analysis.acc_buffer.Expr.bscope = Expr.Global

(** Vector efficiency of a store site: fraction of the machine's SIMD
    lanes the surrounding loop structure can use. *)
let vector_eff (cpu : Machine.cpu) accesses (store : Analysis.access) =
  match Analysis.innermost_loop store with
  | None -> 1.
  | Some l ->
      if l.Analysis.lkind <> Stmt.Vectorized then 1.
      else
        let lanes = float_of_int cpu.Machine.vector_lanes in
        let store_ok =
          match Analysis.stride_wrt store l.Analysis.lvar with
          | Some s -> abs s <= 1
          | None -> false
        in
        if not store_ok then 1.
        else
          (* Loads in the same nest: strided gathers halve throughput. *)
          let key = stack_key store in
          let loads =
            List.filter
              (fun a -> (not a.Analysis.acc_is_store) && stack_key a = key)
              accesses
          in
          let bad =
            List.exists
              (fun a ->
                match Analysis.stride_wrt a l.Analysis.lvar with
                | Some s -> abs s > 1
                | None -> true)
              loads
          in
          if bad then lanes /. 2. else lanes

let estimate (cpu : Machine.cpu) (stmt : Stmt.t) : breakdown =
  let accesses = Analysis.collect_accesses stmt in
  let globals = List.filter is_global accesses in
  let by_nest = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let key = stack_key a in
      Hashtbl.replace by_nest key (a :: (try Hashtbl.find by_nest key with Not_found -> [])))
    accesses;
  let nest_mates a = try Hashtbl.find by_nest (stack_key a) with Not_found -> [ a ] in
  let dram_bytes =
    List.fold_left
      (fun acc a -> acc +. miss_bytes ~size:cpu.Machine.l2_bytes ~nest_mates:(nest_mates a) a)
      0. globals
  in
  let l2_bytes =
    List.fold_left
      (fun acc a -> acc +. miss_bytes ~size:cpu.Machine.l1_bytes ~nest_mates:(nest_mates a) a)
      0. globals
  in
  (* Compute: per store site, flops scaled by its vector efficiency. *)
  let scalar_cycles = ref 0. in
  List.iter
    (fun a ->
      if a.Analysis.acc_is_store && a.Analysis.acc_value_flops > 0. then begin
        let eff = vector_eff cpu accesses a in
        let per_cycle = eff *. float_of_int cpu.Machine.fma_per_cycle *. 2. in
        scalar_cycles :=
          !scalar_cycles
          +. (float_of_int a.Analysis.acc_count *. a.Analysis.acc_value_flops /. per_cycle)
      end)
    accesses;
  (* Tensorized micro-kernels run near peak. *)
  let intrin_cycles = ref 0. in
  let intrin_count = ref 0. in
  Stmt.iter
    (function
      | Stmt.Call_intrin ic ->
          intrin_count := !intrin_count +. 1.;
          ignore ic
      | _ -> ())
    stmt;
  let total_flops = Analysis.flops ~intrin_flops stmt in
  let store_flops =
    List.fold_left
      (fun acc a ->
        if a.Analysis.acc_is_store then
          acc +. (float_of_int a.Analysis.acc_count *. a.Analysis.acc_value_flops)
        else acc)
      0. accesses
  in
  let intrin_flops_total = Float.max 0. (total_flops -. store_flops) in
  let peak_per_cycle =
    float_of_int (cpu.Machine.vector_lanes * cpu.Machine.fma_per_cycle * 2)
  in
  intrin_cycles := intrin_flops_total /. (peak_per_cycle *. 0.9);
  (* Loop overhead; unrolled/vectorized bodies amortize it. *)
  let overhead_cycles =
    List.fold_left
      (fun acc (kind, dyn, _extent) ->
        let per =
          match kind with
          | Stmt.Unrolled -> cpu.Machine.loop_overhead_cycles *. 0.15
          | Stmt.Vectorized ->
              (* vector bodies are software-pipelined: control overhead
                 amortizes over lanes and unrolling *)
              cpu.Machine.loop_overhead_cycles *. 0.15
              /. float_of_int cpu.Machine.vector_lanes
          | Stmt.Serial | Stmt.Parallel -> cpu.Machine.loop_overhead_cycles
          | Stmt.Thread_binding _ | Stmt.Vthread -> 0.
        in
        acc +. (float_of_int dyn *. per))
      0. (loop_stats stmt)
  in
  (* Parallelism: outermost Parallel loop caps the thread count. *)
  let par_threads =
    let found = ref 1 in
    (try
       Stmt.iter
         (function
           | Stmt.For { kind = Stmt.Parallel; extent = Expr.IntImm e; _ } ->
               found := min cpu.Machine.cores e;
               raise Exit
           | Stmt.For { kind = Stmt.Serial; _ } -> () (* keep searching deeper *)
           | _ -> ())
         stmt
     with Exit -> ());
    !found
  in
  let balance =
    if par_threads <= 1 then 1.
    else float_of_int par_threads *. 0.92 (* scheduling + imbalance loss *)
  in
  let hz = cpu.Machine.freq_ghz *. 1e9 in
  let compute_s = (!scalar_cycles +. !intrin_cycles) /. hz /. Float.max 1. balance in
  let overhead_s = overhead_cycles /. hz /. Float.max 1. balance in
  let dram_s = dram_bytes /. (cpu.Machine.dram_gbps *. 1e9) in
  let l2_s = l2_bytes /. (cpu.Machine.l2_gbps *. 1e9) in
  let total_s = Float.max (compute_s +. overhead_s) (dram_s +. l2_s) +. 2e-6 in
  { compute_s; dram_s; l2_s; overhead_s; dram_bytes; l2_bytes; flops = total_flops;
    total_s }

let time_s cpu stmt = (estimate cpu stmt).total_s
let time_ms cpu stmt = 1e3 *. time_s cpu stmt
