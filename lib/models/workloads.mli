(** Table 2: configurations of all conv2d operators in ResNet-18 and
    all depthwise conv2d operators in MobileNet used in the
    single-kernel experiments (Figs 15, 17, 18). All ops use "SAME"
    padding; the depthwise channel multiplier is 1. *)

type conv = {
  name : string;
  hw : int;  (** input height = width *)
  ic : int;
  oc : int;  (** output channels (= ic for depthwise) *)
  kernel : int;
  stride : int;
  depthwise : bool;
}

(** C1–C12: all conv2d operators in ResNet-18. *)
val resnet_convs : conv list

(** D1–D9: all depthwise conv2d operators in MobileNet. *)
val mobilenet_depthwise : conv list

(** Look up by name ("C1".."C12", "D1".."D9"); raises on unknown. *)
val all : conv list
(** Every Table-2 workload: {!resnet_convs} followed by
    {!mobilenet_depthwise}. *)

val find : string -> conv

(** Output spatial dimension under SAME padding. *)
val out_hw : conv -> int

(** Multiply–add count (×2) of the operator. *)
val flops : conv -> float

val to_string : conv -> string
