(** The five evaluation networks (§6): ResNet-18 [16], MobileNet [19],
    the LSTM language model [48], DQN [28] and DCGAN [31], expressed as
    computational graphs over the standard operator set.

    Each builder takes optional scale parameters so the functional test
    suite can run reduced versions end-to-end while the benchmarks use
    the paper's full shapes. *)

module G = Tvm_graph.Graph_ir
module Attrs = Tvm_graph.Attrs
module Nd = Tvm_nd.Ndarray

let () = Tvm_graph.Std_ops.register_all ()

let i n = Attrs.Int n
let str s = Attrs.Str s

(* ------------------------------------------------------------------ *)
(* Shared layer helpers                                                 *)
(* ------------------------------------------------------------------ *)

let conv_bn_relu ?(relu = true) b ~name ~stride data ~ic ~oc ~kernel =
  let w = G.param b (name ^ "_w") [ oc; ic; kernel; kernel ] in
  let conv =
    G.op b "conv2d" ~name ~attrs:[ ("stride", i stride); ("padding", str "same") ]
      [ data; w ]
  in
  let scale = G.param b (name ^ "_bn_scale") [ oc ] in
  let shift = G.param b (name ^ "_bn_shift") [ oc ] in
  let bn = G.op b "batch_norm" ~name:(name ^ "_bn") [ conv; scale; shift ] in
  if relu then G.op b "relu" ~name:(name ^ "_relu") [ bn ] else bn

let dw_bn_relu b ~name ~stride data ~c ~kernel =
  let w = G.param b (name ^ "_w") [ c; 1; kernel; kernel ] in
  let conv =
    G.op b "depthwise_conv2d" ~name
      ~attrs:[ ("stride", i stride); ("padding", str "same") ]
      [ data; w ]
  in
  let scale = G.param b (name ^ "_bn_scale") [ c ] in
  let shift = G.param b (name ^ "_bn_shift") [ c ] in
  let bn = G.op b "batch_norm" ~name:(name ^ "_bn") [ conv; scale; shift ] in
  G.op b "relu" ~name:(name ^ "_relu") [ bn ]

let dense_layer ?(bias = true) b ~name data ~in_dim ~out_dim =
  let w = G.param b (name ^ "_w") [ out_dim; in_dim ] in
  let d = G.op b "dense" ~name [ data; w ] in
  if bias then
    let bv = G.param b (name ^ "_b") [ out_dim ] in
    G.op b "bias_add" ~name:(name ^ "_bias") [ d; bv ]
  else d

(* ------------------------------------------------------------------ *)
(* ResNet-18                                                            *)
(* ------------------------------------------------------------------ *)

(** ResNet-18 (basic blocks, stages 64/128/256/512 at full scale).
    [width] scales channel counts, [input_hw] the image size — the
    defaults are the paper's ImageNet configuration. *)
let resnet18 ?(batch = 1) ?(input_hw = 224) ?(width = 1.0) ?(num_classes = 1000) () =
  let ch base = max 4 (int_of_float (float_of_int base *. width)) in
  let b = G.builder () in
  let data = G.input b "data" [ batch; 3; input_hw; input_hw ] in
  let stem =
    conv_bn_relu b ~name:"conv1" ~stride:2 data ~ic:3 ~oc:(ch 64) ~kernel:7
  in
  let pooled =
    G.op b "max_pool2d" ~name:"pool1"
      ~attrs:[ ("size", i 3); ("stride", i 2); ("pad", i 1) ]
      [ stem ]
  in
  let basic_block b_ ~name ~stride data ~ic ~oc =
    let c1 = conv_bn_relu b_ ~name:(name ^ "_c1") ~stride data ~ic ~oc ~kernel:3 in
    let c2 = conv_bn_relu b_ ~relu:false ~name:(name ^ "_c2") ~stride:1 c1 ~ic:oc ~oc ~kernel:3 in
    let shortcut =
      if stride = 1 && ic = oc then data
      else
        conv_bn_relu b_ ~relu:false ~name:(name ^ "_sc") ~stride data ~ic ~oc ~kernel:1
    in
    let sum = G.op b_ "add" ~name:(name ^ "_add") [ c2; shortcut ] in
    G.op b_ "relu" ~name:(name ^ "_out") [ sum ]
  in
  let stage data ~name ~stride ~ic ~oc =
    let b1 = basic_block b ~name:(name ^ "a") ~stride data ~ic ~oc in
    basic_block b ~name:(name ^ "b") ~stride:1 b1 ~ic:oc ~oc
  in
  let s1 = stage pooled ~name:"layer1" ~stride:1 ~ic:(ch 64) ~oc:(ch 64) in
  let s2 = stage s1 ~name:"layer2" ~stride:2 ~ic:(ch 64) ~oc:(ch 128) in
  let s3 = stage s2 ~name:"layer3" ~stride:2 ~ic:(ch 128) ~oc:(ch 256) in
  let s4 = stage s3 ~name:"layer4" ~stride:2 ~ic:(ch 256) ~oc:(ch 512) in
  let gap = G.op b "global_avg_pool2d" ~name:"gap" [ s4 ] in
  let fc = dense_layer b ~name:"fc" gap ~in_dim:(ch 512) ~out_dim:num_classes in
  let sm = G.op b "softmax" ~name:"prob" [ fc ] in
  G.finalize b [ sm ]

(* ------------------------------------------------------------------ *)
(* MobileNet                                                            *)
(* ------------------------------------------------------------------ *)

let mobilenet ?(batch = 1) ?(input_hw = 224) ?(width = 1.0) ?(num_classes = 1000) () =
  let ch base = max 4 (int_of_float (float_of_int base *. width)) in
  let b = G.builder () in
  let data = G.input b "data" [ batch; 3; input_hw; input_hw ] in
  let stem = conv_bn_relu b ~name:"conv1" ~stride:2 data ~ic:3 ~oc:(ch 32) ~kernel:3 in
  let separable data ~name ~stride ~ic ~oc =
    let dw = dw_bn_relu b ~name:(name ^ "_dw") ~stride data ~c:(ch ic) ~kernel:3 in
    conv_bn_relu b ~name:(name ^ "_pw") ~stride:1 dw ~ic:(ch ic) ~oc:(ch oc) ~kernel:1
  in
  let blocks =
    [ (32, 64, 1); (64, 128, 2); (128, 128, 1); (128, 256, 2); (256, 256, 1);
      (256, 512, 2); (512, 512, 1); (512, 512, 1); (512, 512, 1); (512, 512, 1);
      (512, 512, 1); (512, 1024, 2); (1024, 1024, 1) ]
  in
  let body, _ =
    List.fold_left
      (fun (data, idx) (ic, oc, stride) ->
        (separable data ~name:(Printf.sprintf "block%d" idx) ~stride ~ic ~oc, idx + 1))
      (stem, 1) blocks
  in
  let gap = G.op b "global_avg_pool2d" ~name:"gap" [ body ] in
  let fc = dense_layer b ~name:"fc" gap ~in_dim:(ch 1024) ~out_dim:num_classes in
  let sm = G.op b "softmax" ~name:"prob" [ fc ] in
  G.finalize b [ sm ]

(* ------------------------------------------------------------------ *)
(* LSTM language model                                                  *)
(* ------------------------------------------------------------------ *)

(** One inference step of a multi-layer LSTM language model [48]:
    gates as dense layers, state update with elementwise ops, then a
    vocabulary projection + softmax. *)
let lstm_lm ?(batch = 1) ?(hidden = 650) ?(layers = 2) ?(vocab = 10000)
    ?(steps = 1) () =
  let b = G.builder () in
  let x0 = G.input b "x" [ batch; hidden ] in
  let cell layer (x, step) =
    let name = Printf.sprintf "l%d_s%d" layer step in
    let h_prev = G.input b (name ^ "_h") [ batch; hidden ] in
    let c_prev = G.input b (name ^ "_c") [ batch; hidden ] in
    let gate g act =
      let xw = dense_layer b ~bias:false ~name:(name ^ "_x" ^ g) x ~in_dim:hidden ~out_dim:hidden in
      let hw = dense_layer b ~bias:false ~name:(name ^ "_h" ^ g) h_prev ~in_dim:hidden ~out_dim:hidden in
      let s = G.op b "add" ~name:(name ^ "_" ^ g ^ "sum") [ xw; hw ] in
      let bias = G.param b (name ^ "_" ^ g ^ "b") [ hidden ] in
      let s = G.op b "bias_add" ~name:(name ^ "_" ^ g ^ "bias") [ s; bias ] in
      G.op b act ~name:(name ^ "_" ^ g) [ s ]
    in
    let i_g = gate "i" "sigmoid" in
    let f_g = gate "f" "sigmoid" in
    let o_g = gate "o" "sigmoid" in
    let g_g = gate "g" "tanh" in
    let fc = G.op b "mul" ~name:(name ^ "_fc") [ f_g; c_prev ] in
    let ig = G.op b "mul" ~name:(name ^ "_ig") [ i_g; g_g ] in
    let c' = G.op b "add" ~name:(name ^ "_cnew") [ fc; ig ] in
    let tc = G.op b "tanh" ~name:(name ^ "_tc") [ c' ] in
    G.op b "mul" ~name:(name ^ "_hnew") [ o_g; tc ]
  in
  let rec run_steps x step =
    if step > steps then x
    else
      let x' =
        List.fold_left (fun x layer -> cell layer (x, step)) x (List.init layers (fun l -> l))
      in
      run_steps x' (step + 1)
  in
  let top = run_steps x0 1 in
  let logits = dense_layer b ~name:"proj" top ~in_dim:hidden ~out_dim:vocab in
  let sm = G.op b "softmax" ~name:"prob" [ logits ] in
  G.finalize b [ sm ]

(* ------------------------------------------------------------------ *)
(* DQN                                                                  *)
(* ------------------------------------------------------------------ *)

(** The Deep Q Network of [28]: 8×8/4, 4×4/2 (the unconventional
    operator behind DQN's 3.8× in Fig 14), 3×3/1 convolutions with
    valid padding, then two dense layers. *)
let dqn ?(batch = 1) ?(input_hw = 84) ?(actions = 18) () =
  let b = G.builder () in
  let data = G.input b "data" [ batch; 4; input_hw; input_hw ] in
  let conv ~name ~stride ~kernel ~ic ~oc data =
    let w = G.param b (name ^ "_w") [ oc; ic; kernel; kernel ] in
    let c =
      G.op b "conv2d" ~name
        ~attrs:[ ("stride", i stride); ("padding", str "valid") ]
        [ data; w ]
    in
    let bias = G.param b (name ^ "_b") [ oc ] in
    let c = G.op b "bias_add" ~name:(name ^ "_bias") [ c; bias ] in
    G.op b "relu" ~name:(name ^ "_relu") [ c ]
  in
  let c1 = conv ~name:"conv1" ~stride:4 ~kernel:8 ~ic:4 ~oc:32 data in
  let c2 = conv ~name:"conv2" ~stride:2 ~kernel:4 ~ic:32 ~oc:64 c1 in
  let c3 = conv ~name:"conv3" ~stride:1 ~kernel:3 ~ic:64 ~oc:64 c2 in
  let flat = G.op b "flatten" ~name:"flat" [ c3 ] in
  let fc1 =
    let n = G.node_shape b flat in
    dense_layer b ~name:"fc1" flat ~in_dim:(List.nth n 1) ~out_dim:512
  in
  let fc1 = G.op b "relu" ~name:"fc1_relu" [ fc1 ] in
  let fc2 = dense_layer b ~name:"fc2" fc1 ~in_dim:512 ~out_dim:actions in
  G.finalize b [ fc2 ]

(* ------------------------------------------------------------------ *)
(* DCGAN generator                                                      *)
(* ------------------------------------------------------------------ *)

let dcgan ?(batch = 1) ?(code_dim = 100) ?(base = 64) () =
  let b = G.builder () in
  let z = G.input b "z" [ batch; code_dim ] in
  let proj = dense_layer b ~name:"proj" z ~in_dim:code_dim ~out_dim:(base * 8 * 4 * 4) in
  let seed =
    G.op b "reshape" ~name:"seed"
      ~attrs:[ ("shape", Attrs.Ints [ batch; base * 8; 4; 4 ]) ]
      [ proj ]
  in
  let deconv ~name ~ic ~oc ?(act = "relu") data =
    let w = G.param b (name ^ "_w") [ ic; oc; 4; 4 ] in
    let d =
      G.op b "conv2d_transpose" ~name
        ~attrs:[ ("stride", i 2); ("pad", i 1) ]
        [ data; w ]
    in
    if act = "none" then d else G.op b act ~name:(name ^ "_" ^ act) [ d ]
  in
  let d1 = deconv ~name:"deconv1" ~ic:(base * 8) ~oc:(base * 4) seed in
  let d2 = deconv ~name:"deconv2" ~ic:(base * 4) ~oc:(base * 2) d1 in
  let d3 = deconv ~name:"deconv3" ~ic:(base * 2) ~oc:base d2 in
  let d4 = deconv ~name:"deconv4" ~ic:base ~oc:3 ~act:"tanh" d3 in
  G.finalize b [ d4 ]

(* ------------------------------------------------------------------ *)
(* Serving suite                                                        *)
(* ------------------------------------------------------------------ *)

(** The five networks at serving-friendly scales, keyed by the names
    [tvmd]/[tvmc] use — the model-server's default load set. [full]
    selects the paper's full shapes instead (benchmarks); the default
    reduced shapes keep CI compiles fast while preserving each
    network's operator mix. *)
let serving_suite ?(batch = 1) ?(full = false) () =
  if full then
    [
      ("resnet18", resnet18 ~batch ());
      ("mobilenet", mobilenet ~batch ());
      ("lstm", lstm_lm ~batch ());
      ("dqn", dqn ~batch ());
      ("dcgan", dcgan ~batch ());
    ]
  else
    [
      ("resnet18", resnet18 ~batch ~input_hw:64 ~width:0.5 ~num_classes:64 ());
      ("mobilenet", mobilenet ~batch ~input_hw:64 ~width:0.5 ~num_classes:64 ());
      ("lstm", lstm_lm ~batch ~hidden:64 ~layers:1 ~vocab:256 ());
      ("dqn", dqn ~batch ());
      ("dcgan", dcgan ~batch ~base:16 ());
    ]

(* ------------------------------------------------------------------ *)
(* Parameter generation                                                 *)
(* ------------------------------------------------------------------ *)

(** Deterministic small random values for every parameter node — large
    enough to exercise kernels, small enough to keep deep nets
    numerically tame in functional runs. *)
let random_params ?(seed = 0) (g : G.t) : (int * Nd.t) list =
  List.map
    (fun id ->
      let n = G.node g id in
      (id, Nd.random ~seed:(seed + id) ~lo:(-0.15) ~hi:0.15 n.G.shape))
    g.G.param_ids

let random_input ?(seed = 1000) (g : G.t) name =
  match
    Array.to_list g.G.nodes
    |> List.find_opt (fun n -> n.G.name = name && n.G.kind = G.Input)
  with
  | Some n -> Nd.random ~seed ~lo:(-1.) ~hi:1. n.G.shape
  | None -> invalid_arg ("random_input: no input named " ^ name)

(** All inputs (there are several for LSTM states). *)
let random_inputs ?(seed = 1000) (g : G.t) : (string * Nd.t) list =
  List.map
    (fun id ->
      let n = G.node g id in
      (n.G.name, Nd.random ~seed:(seed + id) ~lo:(-1.) ~hi:1. n.G.shape))
    g.G.input_ids
