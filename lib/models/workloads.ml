(** Table 2: configurations of all conv2d operators in ResNet-18 and
    all depthwise conv2d operators in MobileNet used in the
    single-kernel experiments (Figs 15, 17, 18). All ops use "SAME"
    padding; depthwise channel multiplier is 1. *)

type conv = {
  name : string;
  hw : int;  (** input height = width *)
  ic : int;
  oc : int;  (** output channels (= ic for depthwise) *)
  kernel : int;
  stride : int;
  depthwise : bool;
}

let c name hw ic oc kernel stride =
  { name; hw; ic; oc; kernel; stride; depthwise = false }

let d name hw ic kernel stride =
  { name; hw; ic; oc = ic; kernel; stride; depthwise = true }

(** C1–C12: all conv2d operators in ResNet-18. *)
let resnet_convs =
  [
    c "C1" 224 3 64 7 2;
    c "C2" 56 64 64 3 1;
    c "C3" 56 64 64 1 1;
    c "C4" 56 64 128 3 2;
    c "C5" 56 64 128 1 2;
    c "C6" 28 128 128 3 1;
    c "C7" 28 128 256 3 2;
    c "C8" 28 128 256 1 2;
    c "C9" 14 256 256 3 1;
    c "C10" 14 256 512 3 2;
    c "C11" 14 256 512 1 2;
    c "C12" 7 512 512 3 1;
  ]

(** D1–D9: all depthwise conv2d operators in MobileNet. *)
let mobilenet_depthwise =
  [
    d "D1" 112 32 3 1;
    d "D2" 112 64 3 2;
    d "D3" 56 128 3 1;
    d "D4" 56 128 3 2;
    d "D5" 28 256 3 1;
    d "D6" 28 256 3 2;
    d "D7" 14 512 3 1;
    d "D8" 14 512 3 2;
    d "D9" 7 1024 3 1;
  ]

let all = resnet_convs @ mobilenet_depthwise

let find name =
  match List.find_opt (fun w -> w.name = name) all with
  | Some w -> w
  | None -> invalid_arg ("Workloads.find: unknown workload " ^ name)

let out_hw w = ((w.hw + 2 * ((w.kernel - 1) / 2)) - w.kernel) / w.stride + 1

let flops w =
  let oh = out_hw w in
  let ic_eff = if w.depthwise then 1 else w.ic in
  2. *. float_of_int (w.oc * oh * oh * ic_eff * w.kernel * w.kernel)

let to_string w =
  Printf.sprintf "%-4s %-18s H,W=%d IC=%d OC=%d K=%d S=%d" w.name
    (if w.depthwise then "depthwise conv2d" else "conv2d")
    w.hw w.ic w.oc w.kernel w.stride
