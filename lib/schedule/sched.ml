(** Schedules: trees of program-transformation decisions (§4).

    A schedule is created from the output tensors of a tensor-expression
    computation and holds one {!stage} per compute op. Primitives
    incrementally transform stages while preserving logical equivalence;
    {!Tvm_lower} turns the final schedule into low-level loop code
    (Fig 6's lowering process).

    Implemented primitives and their paper provenance:
    - Halide-derived: [split], [tile], [fuse], [reorder], [parallel],
      [vectorize], [unroll], [compute_at], [compute_inline], [bind]
      (thread binding), [cache_read], [cache_write].
    - TVM-novel: [set_scope] (special memory scopes, §4.2), [tensorize]
      (§4.3), [vthread] (latency hiding, §4.4), [pragma]. *)

open Tvm_tir
module Tensor = Tvm_te.Tensor

type relation =
  | Split of {
      parent : Iter_var.t;
      outer : Iter_var.t;
      inner : Iter_var.t;
      factor : int;
      exact : bool;  (** factor divides parent extent: no guard needed *)
    }
  | Fuse of { outer : Iter_var.t; inner : Iter_var.t; fused : Iter_var.t }

type attach =
  | Root  (** own loop nest at top level *)
  | Inline  (** substituted into consumers *)
  | At of { target : stage; level : Iter_var.t }  (** nested in a consumer *)

and stage = {
  s_id : int;
  mutable s_name : string;
  mutable s_out : Expr.buffer;  (** buffer the stage stores into *)
  mutable s_root_axes : Iter_var.t list;  (** data-parallel axes, output order *)
  mutable s_reduce_axes : Iter_var.t list;
  mutable s_body : Tensor.body;  (** loads refer to *current* producer buffers *)
  mutable s_leaf : Iter_var.t list;  (** current loop order *)
  mutable s_relations : relation list;
  mutable s_attach : attach;
  mutable s_ann : (int * Stmt.for_kind) list;  (** iter-var id → loop kind *)
  mutable s_tensorize : (Iter_var.t * Tensor_intrin.t) option;
  mutable s_pragma : (string * string) list;
  mutable s_is_output : bool;
}

type t = {
  mutable stages : stage list;  (** producers before consumers *)
  outputs : Tensor.t list;
  by_tensor : (int, stage) Hashtbl.t;  (** tensor id → stage *)
}

(* Atomic: schedules are instantiated from parallel tuner workers.
   Stage ids only need to be unique. *)
let stage_counter = Atomic.make 0

let const_shape_of tensor = Tensor.const_shape tensor

let make_stage ~name ~out ~root_axes ~reduce_axes ~body ~is_output =
  {
    s_id = 1 + Atomic.fetch_and_add stage_counter 1;
    s_name = name;
    s_out = out;
    s_root_axes = root_axes;
    s_reduce_axes = reduce_axes;
    s_body = body;
    s_leaf = root_axes @ reduce_axes;
    s_relations = [];
    s_attach = Root;
    s_ann = [];
    s_tensorize = None;
    s_pragma = [];
    s_is_output = is_output;
  }

let stage_of_tensor_op tensor ~is_output =
  match tensor.Tensor.op with
  | Tensor.Placeholder -> None
  | Tensor.Compute c ->
      let shape = const_shape_of tensor in
      let root_axes =
        List.map2 (fun v extent -> Iter_var.of_var v extent) c.Tensor.axes shape
      in
      let reduce_axes =
        match c.Tensor.body with
        | Tensor.Value _ -> []
        | Tensor.Reduce r ->
            List.map
              (fun (ra : Tensor.raxis) ->
                Iter_var.of_var ~kind:Iter_var.Reduction ra.Tensor.rvar ra.Tensor.rextent)
              r.Tensor.raxes
      in
      Some
        (make_stage ~name:tensor.Tensor.tname ~out:tensor.Tensor.buffer ~root_axes
           ~reduce_axes ~body:c.Tensor.body ~is_output)

(** Create a schedule covering [outputs] and all their transitive
    producers (the paper's [t.create_schedule]). *)
let create (outputs : Tensor.t list) : t =
  let order = Tensor.topo_order outputs in
  let by_tensor = Hashtbl.create 16 in
  let stages =
    List.filter_map
      (fun tensor ->
        let is_output = List.exists (Tensor.equal tensor) outputs in
        match stage_of_tensor_op tensor ~is_output with
        | Some st ->
            Hashtbl.replace by_tensor tensor.Tensor.tid st;
            Some st
        | None -> None)
      order
  in
  { stages; outputs; by_tensor }

let stages t = t.stages

let find t tensor =
  match Hashtbl.find_opt t.by_tensor tensor.Tensor.tid with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Sched.find: no stage for %s" tensor.Tensor.tname)

let find_by_buffer t (b : Expr.buffer) =
  List.find_opt (fun st -> Expr.Buffer.equal st.s_out b) t.stages

let stage_name st = st.s_name
let leaf_iters st = st.s_leaf
let axis st i = List.nth st.s_root_axes i
let reduce_axis st i = List.nth st.s_reduce_axes i

let leaf_pos st iv =
  let rec loop i = function
    | [] -> invalid_arg (Printf.sprintf "%s: %s is not a leaf iter" st.s_name (Iter_var.name iv))
    | x :: rest -> if Iter_var.equal x iv then i else loop (i + 1) rest
  in
  loop 0 st.s_leaf

(* ------------------------------------------------------------------ *)
(* Loop-structure primitives                                           *)
(* ------------------------------------------------------------------ *)

let replace_leaf st iv replacements =
  let pos = leaf_pos st iv in
  st.s_leaf <-
    List.concat (List.mapi (fun i x -> if i = pos then replacements else [ x ]) st.s_leaf)

(** [split st iv ~factor] → (outer, inner). Non-dividing factors are
    legal; lowering guards the tail iterations. *)
let split st iv ~factor =
  if factor < 1 then invalid_arg "split: factor must be >= 1";
  let extent = iv.Iter_var.extent in
  let outer_extent = (extent + factor - 1) / factor in
  let exact = extent mod factor = 0 in
  let outer =
    Iter_var.create ~kind:iv.Iter_var.kind (Iter_var.name iv ^ ".o") outer_extent
  in
  let inner =
    Iter_var.create ~kind:iv.Iter_var.kind (Iter_var.name iv ^ ".i") (min factor extent)
  in
  st.s_relations <- st.s_relations @ [ Split { parent = iv; outer; inner; factor; exact } ];
  replace_leaf st iv [ outer; inner ];
  (outer, inner)

(** Split by number of outer parts rather than inner factor. *)
let split_nparts st iv ~nparts =
  if nparts < 1 then invalid_arg "split_nparts";
  let factor = (iv.Iter_var.extent + nparts - 1) / nparts in
  split st iv ~factor

(** Fuse two adjacent leaf iters into one. *)
let fuse st outer inner =
  let po = leaf_pos st outer and pi = leaf_pos st inner in
  if pi <> po + 1 then
    invalid_arg
      (Printf.sprintf "fuse: %s and %s are not adjacent" (Iter_var.name outer)
         (Iter_var.name inner));
  let kind =
    if Iter_var.is_reduce outer || Iter_var.is_reduce inner then Iter_var.Reduction
    else Iter_var.Data_par
  in
  let fused =
    Iter_var.create ~kind
      (Iter_var.name outer ^ "." ^ Iter_var.name inner ^ ".f")
      (outer.Iter_var.extent * inner.Iter_var.extent)
  in
  st.s_relations <- st.s_relations @ [ Fuse { outer; inner; fused } ];
  replace_leaf st outer [ fused ];
  st.s_leaf <- List.filter (fun x -> not (Iter_var.equal x inner)) st.s_leaf;
  fused

(** Fuse a whole list left-to-right. *)
let fuse_list st = function
  | [] -> invalid_arg "fuse_list: empty"
  | [ iv ] -> iv
  | iv :: rest -> List.fold_left (fun acc next -> fuse st acc next) iv rest

(** Permute the given leaf iters into the order listed; other leaves
    keep their positions. *)
let reorder st ivs =
  let positions = List.map (leaf_pos st) ivs in
  let sorted = List.sort compare positions in
  let arr = Array.of_list st.s_leaf in
  List.iteri (fun i pos -> arr.(pos) <- List.nth ivs i) sorted;
  st.s_leaf <- Array.to_list arr

(** [tile st y x ~y_factor ~x_factor] → (yo, xo, yi, xi), the classic
    2-D tiling of Fig 5. *)
let tile st y x ~y_factor ~x_factor =
  let yo, yi = split st y ~factor:y_factor in
  let xo, xi = split st x ~factor:x_factor in
  reorder st [ yo; xo; yi; xi ];
  (yo, xo, yi, xi)

(* ------------------------------------------------------------------ *)
(* Annotations                                                         *)
(* ------------------------------------------------------------------ *)

let set_ann st iv kind =
  st.s_ann <- (iv.Iter_var.var.Expr.vid, kind) :: List.remove_assoc iv.Iter_var.var.Expr.vid st.s_ann

let ann_of st iv = List.assoc_opt iv.Iter_var.var.Expr.vid st.s_ann

let parallel st iv =
  if Iter_var.is_reduce iv then invalid_arg "parallel: cannot parallelize a reduction axis";
  set_ann st iv Stmt.Parallel

let vectorize st iv =
  if Iter_var.is_reduce iv then invalid_arg "vectorize: cannot vectorize a reduction axis";
  set_ann st iv Stmt.Vectorized

let unroll st iv = set_ann st iv Stmt.Unrolled

let valid_thread_tags =
  [ "blockIdx.x"; "blockIdx.y"; "blockIdx.z"; "threadIdx.x"; "threadIdx.y"; "threadIdx.z" ]

(** Bind a data-parallel iter to a GPU grid/block index (§4.2). *)
let bind st iv tag =
  if not (List.mem tag valid_thread_tags) then invalid_arg ("bind: bad thread tag " ^ tag);
  if Iter_var.is_reduce iv then invalid_arg "bind: cannot bind a reduction axis";
  set_ann st iv (Stmt.Thread_binding tag)

(** Mark an iter as a virtual thread (§4.4). The vthread lowering pass
    interleaves its iterations into one instruction stream with explicit
    dependence tokens. *)
let vthread st iv =
  if Iter_var.is_reduce iv then invalid_arg "vthread: cannot vthread a reduction axis";
  set_ann st iv Stmt.Vthread

let pragma st key value = st.s_pragma <- (key, value) :: st.s_pragma

(* ------------------------------------------------------------------ *)
(* Compute placement                                                   *)
(* ------------------------------------------------------------------ *)

let compute_at st ~target ~level =
  if st == target then invalid_arg "compute_at: cannot attach a stage to itself";
  ignore (leaf_pos target level);
  st.s_attach <- At { target; level }

let compute_root st = st.s_attach <- Root

let compute_inline st =
  (match st.s_body with
  | Tensor.Value _ -> ()
  | Tensor.Reduce _ -> invalid_arg ("compute_inline: " ^ st.s_name ^ " has a reduction"));
  if st.s_is_output then invalid_arg "compute_inline: cannot inline an output stage";
  st.s_attach <- Inline

(* ------------------------------------------------------------------ *)
(* Memory scopes and cache stages (§4.2)                                *)
(* ------------------------------------------------------------------ *)

let map_body_exprs f = function
  | Tensor.Value e -> Tensor.Value (f e)
  | Tensor.Reduce r -> Tensor.Reduce { r with Tensor.src = f r.Tensor.src; Tensor.init = f r.Tensor.init }

(** Rewrite, in every stage of [t], loads from [old_b] to [new_b]. *)
let retarget_loads t ~old_b ~new_b =
  List.iter
    (fun st ->
      st.s_body <-
        map_body_exprs
          (Visit.map_expr (function
            | Expr.Load (b, idx) when Expr.Buffer.equal b old_b -> Expr.Load (new_b, idx)
            | e -> e))
          st.s_body)
    t.stages

(** Move a stage's storage to a different memory scope. Consumers are
    rewritten to read the new buffer. *)
let set_scope t st scope =
  if st.s_is_output then invalid_arg "set_scope: outputs live in global memory";
  let new_b = Expr.Buffer.with_scope scope st.s_out in
  retarget_loads t ~old_b:st.s_out ~new_b;
  st.s_out <- new_b

let insert_stage_after t ~anchor st =
  let rec go = function
    | [] -> [ st ]
    | x :: rest -> if x == anchor then x :: st :: rest else x :: go rest
  in
  t.stages <- go t.stages

let insert_stage_before t ~anchor st =
  let rec go = function
    | [] -> [ st ]
    | x :: rest -> if x == anchor then st :: x :: rest else x :: go rest
  in
  t.stages <- go t.stages

(** [cache_read t buffer scope readers]: create a copy stage that
    stages [buffer] (a tensor's storage) into [scope]; [readers] are
    rewritten to read the cache. Returns the new stage (e.g. the AS/BS
    shared-memory stages of §4.2's matmul). *)
let cache_read t (src : Expr.buffer) scope (readers : stage list) : stage =
  let shape = Expr.Buffer.const_shape src in
  let cache_buf =
    Expr.Buffer.create ~scope ~dtype:src.Expr.bdtype
      (src.Expr.bname ^ "." ^ Expr.scope_to_string scope)
      src.Expr.bshape
  in
  let axes =
    List.mapi (fun i extent -> Iter_var.create (Printf.sprintf "c%d" i) extent) shape
  in
  let idx = List.map (fun iv -> Expr.Var iv.Iter_var.var) axes in
  let body = Tensor.Value (Expr.Load (src, idx)) in
  let st =
    make_stage ~name:cache_buf.Expr.bname ~out:cache_buf ~root_axes:axes
      ~reduce_axes:[] ~body ~is_output:false
  in
  List.iter
    (fun reader ->
      reader.s_body <-
        map_body_exprs
          (Visit.map_expr (function
            | Expr.Load (b, idx) when Expr.Buffer.equal b src -> Expr.Load (cache_buf, idx)
            | e -> e))
          reader.s_body)
    readers;
  (match find_by_buffer t src with
  | Some producer -> insert_stage_after t ~anchor:producer st
  | None ->
      (* Placeholder input: stage goes first. *)
      t.stages <- st :: t.stages);
  st

(** [cache_write t st scope]: move the computation of [st] into a new
    stage writing a [scope]-scoped buffer; [st] becomes a copy from the
    cache to its original buffer. Apply before other transforms of
    [st]. Returns the compute stage (e.g. CL in Fig 5). *)
let cache_write t st scope : stage =
  if st.s_relations <> [] then
    invalid_arg "cache_write: apply before other transformations of the stage";
  let shape = List.map (fun iv -> iv.Iter_var.extent) st.s_root_axes in
  let cache_buf =
    Expr.Buffer.create ~scope ~dtype:st.s_out.Expr.bdtype
      (st.s_name ^ "." ^ Expr.scope_to_string scope)
      (List.map Expr.int shape)
  in
  (* Fresh axes for the compute stage; reduction axes move with the body. *)
  let fresh_axes =
    List.map
      (fun iv -> Iter_var.create (Iter_var.name iv ^ ".c") iv.Iter_var.extent)
      st.s_root_axes
  in
  let bindings =
    List.map2
      (fun old_iv new_iv -> (old_iv.Iter_var.var, Expr.Var new_iv.Iter_var.var))
      st.s_root_axes fresh_axes
  in
  let rename e =
    Visit.subst_expr
      (fun v ->
        List.find_map
          (fun (ov, e') -> if Expr.Var.equal ov v then Some e' else None)
          bindings)
      e
  in
  let compute_stage =
    make_stage
      ~name:(st.s_name ^ "." ^ Expr.scope_to_string scope)
      ~out:cache_buf ~root_axes:fresh_axes ~reduce_axes:st.s_reduce_axes
      ~body:(map_body_exprs rename st.s_body) ~is_output:false
  in
  (* The original stage becomes an injective copy from the cache. *)
  let idx = List.map (fun iv -> Expr.Var iv.Iter_var.var) st.s_root_axes in
  st.s_body <- Tensor.Value (Expr.Load (cache_buf, idx));
  st.s_reduce_axes <- [];
  st.s_leaf <- st.s_root_axes;
  insert_stage_before t ~anchor:st compute_stage;
  compute_stage

(* ------------------------------------------------------------------ *)
(* Tensorization (§4.3)                                                 *)
(* ------------------------------------------------------------------ *)

(** Replace the sub-nest rooted at leaf iter [iv] with calls to
    [intrin]. Lowering performs the pattern match against the
    intrinsic's declared shapes and fails loudly on mismatch. *)
let tensorize st iv (intrin : Tensor_intrin.t) =
  ignore (leaf_pos st iv);
  st.s_tensorize <- Some (iv, intrin)

(* ------------------------------------------------------------------ *)
(* Introspection helpers used by lowering and the autotuner            *)
(* ------------------------------------------------------------------ *)

(** Buffers read by the stage body. *)
let read_buffers st =
  let exprs =
    match st.s_body with
    | Tensor.Value e -> [ e ]
    | Tensor.Reduce r -> [ r.Tensor.src; r.Tensor.init ]
  in
  List.concat_map Visit.loaded_buffers exprs |> List.sort_uniq Expr.Buffer.compare

(** Stages attached at [target]'s leaf [level]. *)
let attached_at t target level =
  List.filter
    (fun st ->
      match st.s_attach with
      | At { target = tgt; level = lv } -> tgt == target && Iter_var.equal lv level
      | Root | Inline -> false)
    t.stages

let is_root_stage st = match st.s_attach with Root -> true | Inline | At _ -> false
let is_inline st = match st.s_attach with Inline -> true | Root | At _ -> false

(** Total extent product of the stage's leaf iteration space. *)
let iteration_count st =
  List.fold_left (fun acc iv -> acc * iv.Iter_var.extent) 1 st.s_leaf

let pp_stage fmt st =
  Format.fprintf fmt "@[<v 2>stage %s -> %s[%s] %s:@,leaf: %a@]" st.s_name
    st.s_out.Expr.bname
    (Expr.scope_to_string st.s_out.Expr.bscope)
    (match st.s_attach with
    | Root -> "root"
    | Inline -> "inline"
    | At { target; level } ->
        Printf.sprintf "at %s/%s" target.s_name (Iter_var.name level))
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") Iter_var.pp)
    st.s_leaf

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stage)
    t.stages
