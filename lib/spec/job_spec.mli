(** The one description of "a job" that every layer consumes.

    Before [tvmd], the same knobs were smeared across three surfaces:
    [Compiler.options], [Tuner.Options.t] and a pile of [tvmc] flags —
    adding one knob meant touching all three and keeping their defaults
    in sync by hand. A [Job_spec.t] is the single declarative record
    describing a compile/tune/profile job: what to build ([op],
    [workload], [target], [fusion]), how hard to search ([trials],
    [method_name], [seed], [batch], [sa_steps], [n_chains]), what
    resources to use ([jobs] host domains, [devices] simulated
    devices), the cache policy ([use_compile_cache], [replay]), the
    fault/retry policy ([fault_rate], [straggler], [max_retries],
    [timeout_s]) and the observability sinks ([journal_out],
    [trace_out], [metrics_out], [tune_log]).

    [Compiler.build], [Tuner.tune], [tvmc] and the [tvmd] daemon all
    take this record; runtime handles that cannot be part of a
    declarative spec (a shared {e Tuner.Db}, a shared compile cache)
    stay explicit optional arguments at the call sites that own them.

    Specs serialize to single-line JSON ({!to_json}/{!of_json}), which
    is how [tvmc submit] hands jobs to [tvmd]'s trace queue. *)

type op =
  | Compile  (** build a whole network end to end *)
  | Tune  (** optimize one Table-2 operator workload *)
  | Profile  (** compile, run once, report the per-kernel breakdown *)

val op_name : op -> string
(** ["compile"] / ["tune"] / ["profile"]. *)

val op_of_name : string -> op
(** Inverse of {!op_name}; raises [Invalid_argument] on unknown. *)

type t = {
  op : op;
  workload : string;
      (** network name ([resnet18], [mobilenet], ...) for
          compile/profile jobs; Table-2 workload ([C1]..[C12],
          [D1]..[D9]) for tune jobs *)
  target : string;  (** [cuda] | [arm] | [mali] | [llvm] *)
  fusion : bool;  (** operator fusion on (§3) *)
  trials : int;
      (** tuning budget: measurements per tune job, or per kernel for a
          compile job (0 = heuristic default schedules) *)
  method_name : string;  (** [ml] | [random] | [genetic] *)
  seed : int;  (** fixed seed = fixed results at any [jobs] count *)
  batch : int;  (** configurations measured per model update *)
  sa_steps : int;  (** simulated-annealing walk length (§5.3) *)
  n_chains : int;  (** parallel annealing chains *)
  jobs : int;
      (** host domains for the parallel tuning phases; never changes
          which configurations are chosen *)
  devices : int;
      (** simulated devices in the measurement pool. Unlike [jobs]
          this CAN change outcomes (fault draws are per-device). *)
  validate : bool;  (** fail on provable TIR defects *)
  verbose : bool;
  use_compile_cache : bool;
      (** share lowering/featurization across trials; never changes
          results *)
  replay : bool;
      (** reuse measurements recorded in a persisted [Tuner.Db] instead
          of re-dispatching them to the device pool — the warm-restart
          resume path. On a clean (fault-free) fleet the trial history
          is byte-identical to a live re-run. *)
  fault_rate : float;  (** per-attempt transient fault rate, 0 = off *)
  straggler : int option;  (** device to overload with faults, if any *)
  max_retries : int;  (** extra measurement attempts after a fault *)
  timeout_s : float;  (** per-job budget on the simulated clock *)
  fleet : int;
      (** size of the sharded heterogeneous measurement fleet
          ({!Tvm_rpc.Fleet}); 0 = use the classic [devices] pool *)
  shards : int;  (** shards per device kind in the fleet, 0 = auto *)
  speculate : bool;
      (** duplicate straggling fleet measurements on an idle fast
          device; never changes results, only the virtual makespan *)
  journal_out : string option;  (** flight-recorder JSONL sink *)
  trace_out : string option;  (** Chrome trace-event sink *)
  metrics_out : string option;  (** metrics-registry JSON sink *)
  tune_log : string option;  (** trial-history JSONL sink *)
}

val default : t
(** [Tune] of [C7] on [cuda]: 64 trials, ML-guided, seed 42, batch 16,
    [jobs = Domain.recommended_domain_count ()], one device, caches on,
    no faults, no sinks. *)

val make :
  ?op:op ->
  ?workload:string ->
  ?target:string ->
  ?fusion:bool ->
  ?trials:int ->
  ?method_name:string ->
  ?seed:int ->
  ?batch:int ->
  ?sa_steps:int ->
  ?n_chains:int ->
  ?jobs:int ->
  ?devices:int ->
  ?validate:bool ->
  ?verbose:bool ->
  ?use_compile_cache:bool ->
  ?replay:bool ->
  ?fault_rate:float ->
  ?straggler:int ->
  ?max_retries:int ->
  ?timeout_s:float ->
  ?fleet:int ->
  ?shards:int ->
  ?speculate:bool ->
  ?journal_out:string ->
  ?trace_out:string ->
  ?metrics_out:string ->
  ?tune_log:string ->
  unit ->
  t
(** The one constructor: every field defaults to {!default}'s value. *)

val to_json : t -> Tvm_obs.Json.t
val of_json : Tvm_obs.Json.t -> t
(** Missing fields take {!default}'s value, so specs stay readable by
    newer code; raises [Invalid_argument] on non-object JSON. *)

val to_string : t -> string
(** Single-line JSON (the [tvmc submit] wire format). *)

val of_string : string -> t
