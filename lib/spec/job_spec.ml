(* See job_spec.mli. *)

module Json = Tvm_obs.Json

type op = Compile | Tune | Profile

let op_name = function Compile -> "compile" | Tune -> "tune" | Profile -> "profile"

let op_of_name = function
  | "compile" -> Compile
  | "tune" -> Tune
  | "profile" -> Profile
  | s -> invalid_arg ("job_spec: unknown op " ^ s ^ " (compile|tune|profile)")

type t = {
  op : op;
  workload : string;
  target : string;
  fusion : bool;
  trials : int;
  method_name : string;
  seed : int;
  batch : int;
  sa_steps : int;
  n_chains : int;
  jobs : int;
  devices : int;
  validate : bool;
  verbose : bool;
  use_compile_cache : bool;
  replay : bool;
  fault_rate : float;
  straggler : int option;
  max_retries : int;
  timeout_s : float;
  fleet : int;
  shards : int;
  speculate : bool;
  journal_out : string option;
  trace_out : string option;
  metrics_out : string option;
  tune_log : string option;
}

let default =
  {
    op = Tune;
    workload = "C7";
    target = "cuda";
    fusion = true;
    trials = 64;
    method_name = "ml";
    seed = 42;
    batch = 16;
    sa_steps = 60;
    n_chains = 16;
    jobs = Domain.recommended_domain_count ();
    devices = 1;
    validate = false;
    verbose = false;
    use_compile_cache = true;
    replay = false;
    fault_rate = 0.;
    straggler = None;
    max_retries = 2;
    timeout_s = 10.;
    fleet = 0;
    shards = 0;
    speculate = false;
    journal_out = None;
    trace_out = None;
    metrics_out = None;
    tune_log = None;
  }

let make ?(op = default.op) ?(workload = default.workload)
    ?(target = default.target) ?(fusion = default.fusion)
    ?(trials = default.trials) ?(method_name = default.method_name)
    ?(seed = default.seed) ?(batch = default.batch)
    ?(sa_steps = default.sa_steps) ?(n_chains = default.n_chains)
    ?(jobs = default.jobs) ?(devices = default.devices)
    ?(validate = default.validate) ?(verbose = default.verbose)
    ?(use_compile_cache = default.use_compile_cache)
    ?(replay = default.replay) ?(fault_rate = default.fault_rate) ?straggler
    ?(max_retries = default.max_retries) ?(timeout_s = default.timeout_s)
    ?(fleet = default.fleet) ?(shards = default.shards)
    ?(speculate = default.speculate) ?journal_out ?trace_out ?metrics_out
    ?tune_log () =
  {
    op; workload; target; fusion; trials; method_name; seed; batch; sa_steps;
    n_chains; jobs; devices; validate; verbose; use_compile_cache; replay;
    fault_rate; straggler; max_retries; timeout_s; fleet; shards; speculate;
    journal_out; trace_out; metrics_out; tune_log;
  }

let to_json t =
  let opt f = function Some v -> f v | None -> Json.Null in
  Json.Obj
    [
      ("op", Json.Str (op_name t.op));
      ("workload", Json.Str t.workload);
      ("target", Json.Str t.target);
      ("fusion", Json.Bool t.fusion);
      ("trials", Json.Num (Float.of_int t.trials));
      ("method", Json.Str t.method_name);
      ("seed", Json.Num (Float.of_int t.seed));
      ("batch", Json.Num (Float.of_int t.batch));
      ("sa_steps", Json.Num (Float.of_int t.sa_steps));
      ("n_chains", Json.Num (Float.of_int t.n_chains));
      ("jobs", Json.Num (Float.of_int t.jobs));
      ("devices", Json.Num (Float.of_int t.devices));
      ("validate", Json.Bool t.validate);
      ("verbose", Json.Bool t.verbose);
      ("use_compile_cache", Json.Bool t.use_compile_cache);
      ("replay", Json.Bool t.replay);
      ("fault_rate", Json.num t.fault_rate);
      ("straggler", opt (fun n -> Json.Num (Float.of_int n)) t.straggler);
      ("max_retries", Json.Num (Float.of_int t.max_retries));
      ("timeout_s", Json.num t.timeout_s);
      ("fleet", Json.Num (Float.of_int t.fleet));
      ("shards", Json.Num (Float.of_int t.shards));
      ("speculate", Json.Bool t.speculate);
      ("journal_out", opt (fun s -> Json.Str s) t.journal_out);
      ("trace_out", opt (fun s -> Json.Str s) t.trace_out);
      ("metrics_out", opt (fun s -> Json.Str s) t.metrics_out);
      ("tune_log", opt (fun s -> Json.Str s) t.tune_log);
    ]

let of_json j =
  (match j with Json.Obj _ -> () | _ -> invalid_arg "job_spec: expected a JSON object");
  let str key d = Option.value ~default:d (Option.bind (Json.member key j) Json.to_string_opt) in
  let num key d =
    match Option.bind (Json.member key j) Json.to_num_opt with
    | Some v -> v
    | None -> d
  in
  let int key d = int_of_float (num key (Float.of_int d)) in
  let bool key d =
    match Json.member key j with Some (Json.Bool b) -> b | _ -> d
  in
  let opt_str key = Option.bind (Json.member key j) Json.to_string_opt in
  let opt_int key =
    Option.map int_of_float (Option.bind (Json.member key j) Json.to_num_opt)
  in
  let d = default in
  {
    op = op_of_name (str "op" (op_name d.op));
    workload = str "workload" d.workload;
    target = str "target" d.target;
    fusion = bool "fusion" d.fusion;
    trials = int "trials" d.trials;
    method_name = str "method" d.method_name;
    seed = int "seed" d.seed;
    batch = int "batch" d.batch;
    sa_steps = int "sa_steps" d.sa_steps;
    n_chains = int "n_chains" d.n_chains;
    jobs = int "jobs" d.jobs;
    devices = int "devices" d.devices;
    validate = bool "validate" d.validate;
    verbose = bool "verbose" d.verbose;
    use_compile_cache = bool "use_compile_cache" d.use_compile_cache;
    replay = bool "replay" d.replay;
    fault_rate = num "fault_rate" d.fault_rate;
    straggler = opt_int "straggler";
    max_retries = int "max_retries" d.max_retries;
    timeout_s = num "timeout_s" d.timeout_s;
    fleet = int "fleet" d.fleet;
    shards = int "shards" d.shards;
    speculate = bool "speculate" d.speculate;
    journal_out = opt_str "journal_out";
    trace_out = opt_str "trace_out";
    metrics_out = opt_str "metrics_out";
    tune_log = opt_str "tune_log";
  }

let to_string t = Json.to_string (to_json t)
let of_string s = of_json (Json.parse s)
