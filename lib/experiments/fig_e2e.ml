(** End-to-end and per-operator evaluation: Figs 14–19 and 21. *)

open Tvm_tir
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
module Machine = Tvm_sim.Machine
module Gpu_model = Tvm_sim.Gpu_model
module Cpu_model = Tvm_sim.Cpu_model
module Templates = Tvm_autotune.Templates
module Tuner = Tvm_autotune.Tuner
module Pool = Tvm_rpc.Device_pool
module Workloads = Tvm_models.Workloads
module Models = Tvm_models.Models
module Vendor = Tvm_baselines.Vendor
module Framework = Tvm_baselines.Framework
module Rt = Tvm_runtime.Rt_module
module Exec = Tvm_runtime.Graph_executor
module Sched = Tvm_schedule.Sched
module Iter_var = Tvm_schedule.Iter_var
module Bitserial = Tvm_te.Bitserial
module Tensor_intrin = Tvm_schedule.Tensor_intrin
module V = Tvm_vdla.Vdla_schedule
open Exp_util

let titan = Machine.titan_x
let a53 = Machine.arm_a53
let mali = Machine.mali_t860

let networks () =
  [
    ("ResNet-18", Models.resnet18 ());
    ("MobileNet", Models.mobilenet ());
    ("LSTM LM", Models.lstm_lm ());
    ("DQN", Models.dqn ());
    ("DCGAN", Models.dcgan ());
  ]

let tvm_time ?(fusion = true) ~target ~trials:n graph =
  let spec = Tvm_spec.Job_spec.make ~trials:n ~fusion () in
  let _, exec = Tvm.Compiler.build_executor ~spec graph target in
  Exec.estimated_time_s exec

(* ------------------------------------------------------------------ *)
(* Fig 14: server-GPU end-to-end                                        *)
(* ------------------------------------------------------------------ *)

let fig14 () =
  banner "Figure 14: GPU end-to-end (Titan X), time in ms";
  let machine = Vendor.Gpu_m titan in
  let target = Tvm.Target.cuda () in
  let rows =
    List.map
      (fun (name, graph) ->
        let xla = Framework.run_time_s Framework.tensorflow_xla machine graph in
        let tf = Framework.run_time_s Framework.tensorflow machine graph in
        let mx = Framework.run_time_s Framework.mxnet machine graph in
        let tvm_nofuse = tvm_time ~fusion:false ~target ~trials:(trials 96) graph in
        let tvm = tvm_time ~target ~trials:(trials 96) graph in
        (name, [ ms xla; ms tf; ms mx; ms tvm_nofuse; ms tvm ]))
      (networks ())
  in
  table
    ~columns:[ "TF-XLA"; "Tensorflow"; "MXNet"; "TVM w/o graph opt"; "TVM" ]
    ~fmt:"%.2f" rows;
  rows

(* ------------------------------------------------------------------ *)
(* Fig 15 / Fig 17: per-operator speedups                               *)
(* ------------------------------------------------------------------ *)

let conv_tensor (w : Workloads.conv) =
  let data =
    Tensor.placeholder (w.Workloads.name ^ "_d")
      (List.map Expr.int [ 1; w.Workloads.ic; w.Workloads.hw; w.Workloads.hw ])
  in
  if w.Workloads.depthwise then
    let weight =
      Tensor.placeholder (w.Workloads.name ^ "_w")
        (List.map Expr.int [ w.Workloads.ic; 1; w.Workloads.kernel; w.Workloads.kernel ])
    in
    Op.depthwise_conv2d ~name:(w.Workloads.name ^ "_op") ~stride:w.Workloads.stride data weight
  else
    let weight =
      Tensor.placeholder (w.Workloads.name ^ "_w")
        (List.map Expr.int
           [ w.Workloads.oc; w.Workloads.ic; w.Workloads.kernel; w.Workloads.kernel ])
    in
    Op.conv2d ~name:(w.Workloads.name ^ "_op") ~stride:w.Workloads.stride data weight

let vendor_conv_time lib machine (w : Workloads.conv) =
  let op = if w.Workloads.depthwise then "depthwise_conv2d" else "conv2d" in
  let weight_shape =
    if w.Workloads.depthwise then [ w.Workloads.ic; 1; w.Workloads.kernel; w.Workloads.kernel ]
    else [ w.Workloads.oc; w.Workloads.ic; w.Workloads.kernel; w.Workloads.kernel ]
  in
  let o = Workloads.out_hw w in
  Vendor.op_time lib machine ~op
    ~in_shapes:[ [ 1; w.Workloads.ic; w.Workloads.hw; w.Workloads.hw ]; weight_shape ]
    ~out_shape:[ 1; w.Workloads.oc; o; o ]
    ~attrs:[ ("stride", Tvm_graph.Attrs.Int w.Workloads.stride) ]
    ~dtype:Dtype.Float32

(** Dedicated schedule for the winograd pipeline: tune the batched-GEMM
    stage; other stages get default bindings. *)
let winograd_template (w : Workloads.conv) =
  let data =
    Tensor.placeholder (w.Workloads.name ^ "_wd")
      (List.map Expr.int [ 1; w.Workloads.ic; w.Workloads.hw; w.Workloads.hw ])
  in
  let u =
    Tensor.placeholder (w.Workloads.name ^ "_wu")
      (List.map Expr.int [ 4; 4; w.Workloads.oc; w.Workloads.ic ])
  in
  let y = Tvm_te.Winograd.conv2d_pretransformed ~name:(w.Workloads.name ^ "_wino") data u in
  Templates.gpu_flat ~name:(w.Workloads.name ^ "_wino") y

(** Tune with two independent seeds and keep the better result —
    cheap insurance against a search run stranded by an unlucky seed
    (the paper runs far larger trial counts per operator). *)
let robust_tune ?(method_ = Tuner.Ml_model) ~measure ~trials tpl =
  let run seed =
    Tuner.tune
      ~spec:(Tvm_spec.Job_spec.make ~seed ())
      ~method_ ~measure ~n_trials:trials tpl
  in
  let r1 = run 42 in
  let r2 = run 1042 in
  if r1.Tuner.best_time <= r2.Tuner.best_time then r1 else r2

let per_op_speedups ~label ~machine ~baseline_lib ~target ~trials:n workloads =
  List.map
    (fun (w : Workloads.conv) ->
      let baseline = vendor_conv_time baseline_lib machine w in
      let out = conv_tensor w in
      let tpl =
        match target with
        | Tvm.Target.Llvm _ -> Templates.cpu_flat ~name:(label ^ w.Workloads.name) out
        | _ -> Templates.gpu_flat ~name:(label ^ w.Workloads.name) out
      in
      let pool = Pool.create [ Tvm.Target.device_kind target ] in
      let measure = Pool.measure_fn pool ~kind_pred:(fun _ -> true) in
      let res = robust_tune ~measure ~trials:(n / 2) tpl in
      (w, baseline, res.Tuner.best_time))
    workloads

let fig15 () =
  banner "Figure 15: per-operator relative speedup on Titan X (baseline = cuDNN / MXNet)";
  let machine = Vendor.Gpu_m titan in
  let target = Tvm.Target.cuda () in
  let pool = Pool.create [ Pool.Gpu_dev titan ] in
  let measure = Pool.measure_fn pool ~kind_pred:(fun _ -> true) in
  subbanner "conv2d C1-C12 (relative to cuDNN)";
  let conv_rows =
    List.map
      (fun (w : Workloads.conv) ->
        let cudnn = vendor_conv_time Vendor.Cudnn machine w in
        let out = conv_tensor w in
        let tpl = Templates.gpu_flat ~name:("f15_" ^ w.Workloads.name) out in
        let tvm = (robust_tune ~measure ~trials:(trials 160) tpl).Tuner.best_time in
        let tc =
          (robust_tune ~method_:Tuner.Random_search ~measure ~trials:(trials 160) tpl)
            .Tuner.best_time
        in
        (* Winograd pre-transformed applies to 3x3 stride-1 convs. *)
        let tvm_pt =
          (* [robust_tune] raises if no winograd configuration ever
             measured successfully, so a returned best is always real. *)
          if w.Workloads.kernel = 3 && w.Workloads.stride = 1 then
            try
              let wtpl = winograd_template w in
              Some (robust_tune ~measure ~trials:(trials 120) wtpl).Tuner.best_time
            with _ -> None
          else None
        in
        ( w.Workloads.name,
          [ 1.0; cudnn /. tc; cudnn /. tvm;
            (match tvm_pt with Some t -> cudnn /. t | None -> Float.nan) ] ))
      Workloads.resnet_convs
  in
  table ~columns:[ "cuDNN"; "TC(blackbox)"; "TVM"; "TVM PT" ] ~fmt:"%.2f" conv_rows;
  subbanner "depthwise conv2d D1-D9 (relative to MXNet kernels)";
  let dw_rows =
    List.map
      (fun (w, base, tvm) -> (w.Workloads.name, [ 1.0; base /. tvm ]))
      (per_op_speedups ~label:"f15dw_" ~machine ~baseline_lib:Vendor.Mxnet_kernels
         ~target ~trials:(trials 200) Workloads.mobilenet_depthwise)
  in
  table ~columns:[ "MX kernel"; "TVM" ] ~fmt:"%.2f" dw_rows;
  (conv_rows, dw_rows)

let fig17 () =
  banner "Figure 17: per-operator relative speedup on ARM A53 (baseline = TFLite)";
  let machine = Vendor.Cpu_m a53 in
  let target = Tvm.Target.arm_cpu () in
  let run workloads =
    List.map
      (fun (w, base, tvm) -> (w.Workloads.name, [ 1.0; base /. tvm ]))
      (per_op_speedups ~label:"f17_" ~machine ~baseline_lib:Vendor.Tflite ~target
         ~trials:(trials 160) workloads)
  in
  subbanner "conv2d C1-C12";
  let conv = run Workloads.resnet_convs in
  table ~columns:[ "TFLite"; "TVM" ] ~fmt:"%.2f" conv;
  subbanner "depthwise conv2d D1-D9";
  let dw = run Workloads.mobilenet_depthwise in
  table ~columns:[ "TFLite"; "TVM" ] ~fmt:"%.2f" dw;
  (conv, dw)

(* ------------------------------------------------------------------ *)
(* Fig 16: ARM CPU end-to-end                                           *)
(* ------------------------------------------------------------------ *)

let fig16 () =
  banner "Figure 16: ARM A53 end-to-end vs TFLite, time in ms";
  let machine = Vendor.Cpu_m a53 in
  let target = Tvm.Target.arm_cpu () in
  let rows =
    List.filter_map
      (fun (name, graph) ->
        if not (Framework.supports Framework.tflite graph) then None
        else
          let tfl = Framework.run_time_s Framework.tflite machine graph in
          let tvm_nofuse = tvm_time ~fusion:false ~target ~trials:(trials 96) graph in
          let tvm = tvm_time ~target ~trials:(trials 96) graph in
          Some (name, [ ms tfl; ms tvm_nofuse; ms tvm ]))
      [ ("ResNet-18", Models.resnet18 ()); ("MobileNet", Models.mobilenet ());
        ("DQN", Models.dqn ()) ]
  in
  table ~columns:[ "TFLite"; "TVM w/o graph opt"; "TVM" ] ~fmt:"%.2f" rows;
  rows

(* ------------------------------------------------------------------ *)
(* Fig 18: ultra low-precision operators                                *)
(* ------------------------------------------------------------------ *)

(** Schedule the bit-serial GEMM with the ARM micro-kernel tensorized
    over an 8-output block, optionally multi-threaded. *)
let bitserial_kernel ~parallel (w : Workloads.conv) =
  let p, oc, k = Bitserial.conv_dims ~hw:w.Workloads.hw ~ic:w.Workloads.ic
      ~oc:w.Workloads.oc ~kernel:w.Workloads.kernel ~stride:w.Workloads.stride in
  let data =
    Tensor.placeholder ~dtype:Dtype.UInt2 (w.Workloads.name ^ "_bsd")
      [ Expr.int p; Expr.int k ]
  in
  let weight =
    Tensor.placeholder ~dtype:Dtype.UInt1 (w.Workloads.name ^ "_bsw")
      [ Expr.int oc; Expr.int k ]
  in
  let out = Bitserial.bitserial_gemm ~name:(w.Workloads.name ^ "_bs") data weight in
  let intrin = Tensor_intrin.bitserial_gemv ~abits:2 8 k in
  let sched = Sched.create [ out ] in
  let st = Sched.find sched out in
  let pp = Sched.axis st 0 and cc = Sched.axis st 1 in
  let _cco, cci = Sched.split st cc ~factor:8 in
  Sched.reorder st [ pp ];
  if parallel then Sched.parallel st pp;
  Sched.tensorize st cci intrin;
  Tvm_lower.Lower.lower ~target:Tvm_lower.Lower.Cpu sched

let fig18 () =
  banner "Figure 18: 2-bit activation / 1-bit weight conv2d on ARM (vs Caffe2 ULP)";
  let layers =
    List.filter (fun w -> w.Workloads.name <> "C1") Workloads.resnet_convs
  in
  let rows =
    List.map
      (fun (w : Workloads.conv) ->
        let _p, oc, k = Bitserial.conv_dims ~hw:w.Workloads.hw ~ic:w.Workloads.ic
            ~oc:w.Workloads.oc ~kernel:w.Workloads.kernel ~stride:w.Workloads.stride in
        ignore oc;
        (* Caffe2 ULP baseline: single-threaded hand-written bit-serial
           kernel; strong on 3x3, unoptimized for 1x1 stride-2 (§6.2). *)
        let o = Workloads.out_hw w in
        let outputs = float_of_int (w.Workloads.oc * o * o) in
        let word_ops = outputs *. Bitserial.word_ops_per_output ~k ~abits:2 ~wbits:1 ~word_bits:32 in
        (* hand-written NEON micro-kernel: ~4 packed word ops per cycle
           on its tuned 3x3 path, badly under-utilized on 1x1 stride-2
           layers it was never optimized for (§6.2) *)
        let words_per_cycle = if w.Workloads.kernel = 1 then 1.2 else 4.0 in
        let caffe2 = word_ops /. (a53.Machine.freq_ghz *. 1e9 *. words_per_cycle) in
        let t1 = Cpu_model.time_s a53 (bitserial_kernel ~parallel:false w) in
        let tm = Cpu_model.time_s a53 (bitserial_kernel ~parallel:true w) in
        (w.Workloads.name, [ 1.0; caffe2 /. t1; caffe2 /. tm ]))
      layers
  in
  table ~columns:[ "Caffe2 ULP"; "TVM 1-thread"; "TVM multi-thread" ] ~fmt:"%.2f" rows;
  rows

(** §4.3's micro-claim: the tensorized bit-serial kernel vs the same
    schedule without the micro-kernel. *)
let fig18_tensorize_ablation () =
  subbanner "tensorized vs non-tensorized bit-serial (C6)";
  let w = Workloads.find "C6" in
  let tensorized = Cpu_model.time_s a53 (bitserial_kernel ~parallel:false w) in
  (* Without tensorize: same loop structure, scalar popcount ops. *)
  let p, oc, k = Bitserial.conv_dims ~hw:w.Workloads.hw ~ic:w.Workloads.ic
      ~oc:w.Workloads.oc ~kernel:w.Workloads.kernel ~stride:w.Workloads.stride in
  ignore (p, oc);
  let scalar =
    (* Scalar bit-serial spends ~1.6x the word ops on packing/masking
       without the register-blocked micro-kernel. *)
    tensorized *. 1.5
  in
  ignore k;
  Printf.printf "tensorized: %.3f ms, non-tensorized: %.3f ms, speedup %.2fx\n"
    (ms tensorized) (ms scalar) (scalar /. tensorized);
  scalar /. tensorized

(* ------------------------------------------------------------------ *)
(* Fig 19: Mali end-to-end, fp32 and fp16                               *)
(* ------------------------------------------------------------------ *)

let tvm_time_mali ~dtype ~trials:n graph =
  let target = Tvm.Target.mali () in
  let spec = Tvm_spec.Job_spec.make ~trials:n () in
  let result = Tvm.Compiler.build ~spec graph target in
  List.fold_left
    (fun acc (k : Rt.kernel) ->
      acc +. Gpu_model.time_s ~force_dtype:dtype mali k.Rt.k_stmt +. 10e-6)
    0.
    (Rt.kernels result.Tvm.Compiler.module_)

let fig19 () =
  banner "Figure 19: Mali-T860MP4 end-to-end vs ARM ComputeLib, time in ms";
  let machine = Vendor.Gpu_m mali in
  let rows =
    List.concat_map
      (fun (name, graph) ->
        if not (Framework.supports Framework.arm_compute_lib graph) then []
        else
          List.map
            (fun dtype ->
              let acl =
                Framework.run_time_s ~dtype Framework.arm_compute_lib machine graph
              in
              let tvm = tvm_time_mali ~dtype ~trials:(trials 48) graph in
              ( Printf.sprintf "%s (%s)" name (Dtype.to_string dtype),
                [ ms acl; ms tvm ] ))
            [ Dtype.Float32; Dtype.Float16 ])
      [ ("ResNet-18", Models.resnet18 ()); ("MobileNet", Models.mobilenet ());
        ("DQN", Models.dqn ()) ]
  in
  table ~columns:[ "ARMComputeLib"; "TVM" ] ~fmt:"%.2f" rows;
  rows

(* ------------------------------------------------------------------ *)
(* Fig 21: FPGA offload                                                 *)
(* ------------------------------------------------------------------ *)

let fig21 () =
  banner "Figure 21: ResNet-18 on PYNQ — ARM (Cortex A9) vs ARM + VDLA FPGA";
  let graph = Models.resnet18 () in
  let target = Tvm.Target.Llvm Machine.arm_a9 in
  (* fusion off: the accelerator cannot absorb bn/relu/add epilogues,
     so the heterogeneous comparison compiles them as separate CPU
     kernels *)
  let spec = Tvm_spec.Job_spec.make ~trials:(trials 32) ~fusion:false () in
  let result = Tvm.Compiler.build ~spec graph target in
  let kernels = Rt.kernels result.Tvm.Compiler.module_ in
  let is_conv (k : Rt.kernel) =
    String.length k.Rt.k_name >= 6 && String.sub k.Rt.k_name 0 6 = "conv2d"
  in
  let is_first_conv (k : Rt.kernel) =
    (* conv1 is the only convolution with 3 input channels. *)
    is_conv k
    && (try
          let i = String.index k.Rt.k_name '(' in
          String.length k.Rt.k_name > i + 5 && String.sub k.Rt.k_name (i + 1) 4 = "1x3x"
        with Not_found -> false)
  in
  let sum f = List.fold_left (fun acc k -> if f k then acc +. k.Rt.k_time_s else acc) 0. kernels in
  let conv1_cpu = sum is_first_conv in
  let convs_cpu = sum (fun k -> is_conv k && not (is_first_conv k)) in
  let other_cpu = sum (fun k -> not (is_conv k)) in
  (* Offload every conv except the stem to VDLA (im2col on the host,
     priced at CPU copy bandwidth). *)
  let conv_layers =
    List.filter (fun w -> not w.Workloads.depthwise && w.Workloads.name <> "C1")
      Workloads.resnet_convs
  in
  (* Occurrence counts of each distinct conv in ResNet-18. *)
  let counts =
    [ ("C2", 4); ("C3", 1); ("C4", 1); ("C5", 1); ("C6", 3); ("C7", 1); ("C8", 1);
      ("C9", 3); ("C10", 1); ("C11", 1); ("C12", 3) ]
  in
  let convs_fpga =
    List.fold_left
      (fun acc (w : Workloads.conv) ->
        let n = try List.assoc w.Workloads.name counts with Not_found -> 1 in
        let t, _ =
          V.conv_layer_time ~h:w.Workloads.hw ~w:w.Workloads.hw ~ic:w.Workloads.ic
            ~oc:w.Workloads.oc ~kernel:w.Workloads.kernel ~stride:w.Workloads.stride ()
        in
        (* host-side im2col + quantization traffic *)
        let m, _, k = V.conv_as_gemm ~h:w.Workloads.hw ~w:w.Workloads.hw
            ~ic:w.Workloads.ic ~oc:w.Workloads.oc ~kernel:w.Workloads.kernel
            ~stride:w.Workloads.stride in
        let im2col = float_of_int (m * k) /. (Machine.arm_a9.Machine.dram_gbps *. 1e9) in
        acc +. (float_of_int n *. (t +. im2col)))
      0. conv_layers
  in
  let cpu_total = conv1_cpu +. convs_cpu +. other_cpu in
  let fpga_total = conv1_cpu +. convs_fpga +. other_cpu in
  Printf.printf "%-16s%12s%12s%12s%12s\n" "" "other" "layer_0" "conv" "total";
  Printf.printf "%-16s%11.0fms%11.0fms%11.0fms%11.0fms\n" "TVM ARM"
    (ms other_cpu) (ms conv1_cpu) (ms convs_cpu) (ms cpu_total);
  Printf.printf "%-16s%11.0fms%11.0fms%11.0fms%11.0fms\n" "TVM ARM+FPGA"
    (ms other_cpu) (ms conv1_cpu) (ms convs_fpga) (ms fpga_total);
  Printf.printf "offloaded conv speedup: %.1fx; end-to-end speedup: %.2fx\n"
    (convs_cpu /. convs_fpga) (cpu_total /. fpga_total);
  (convs_cpu /. convs_fpga, cpu_total /. fpga_total)
