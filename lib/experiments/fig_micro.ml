(** Component-level experiments: Figs 4, 6, 7, 10, 12 and Tables 1–2. *)

open Tvm_tir
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
module Machine = Tvm_sim.Machine
module Gpu_model = Tvm_sim.Gpu_model
module Templates = Tvm_autotune.Templates
module Tuner = Tvm_autotune.Tuner
module Cfg = Tvm_autotune.Cfg_space
module Pool = Tvm_rpc.Device_pool
module G = Tvm_graph.Graph_ir
module Attrs = Tvm_graph.Attrs
module Workloads = Tvm_models.Workloads
module Vendor = Tvm_baselines.Vendor
module V = Tvm_vdla.Vdla_schedule
module Des = Tvm_vdla.Des
open Exp_util

let titan = Machine.titan_x

(** Override a knob in every configuration a template instantiates. *)
let force_knob (tpl : Tuner.template) (k, v) =
  {
    tpl with
    Tuner.tpl_instantiate =
      (fun cfg -> tpl.Tuner.tpl_instantiate ((k, v) :: List.remove_assoc k cfg));
  }

let tune_gpu ?(method_ = Tuner.Ml_model) ?(seed = 42) ~trials tpl =
  let pool = Pool.create [ Pool.Gpu_dev titan ] in
  let measure = Pool.measure_fn pool ~kind_pred:Pool.is_gpu in
  Tuner.tune
    ~spec:(Tvm_spec.Job_spec.make ~seed ())
    ~method_ ~measure ~n_trials:trials tpl

(* ------------------------------------------------------------------ *)
(* Fig 4: operator fusion                                               *)
(* ------------------------------------------------------------------ *)

let attr_i n = Attrs.Int n
let attr_s s = Attrs.Str s

(** The four fusion workloads of Fig 4, as single-block graphs. *)
let fig4_workloads () =
  let conv_bn_relu () =
    (* conv+bn+relu: 1x1x128x256 conv on 128x28x28. *)
    let b = G.builder () in
    let d = G.input b "d" [ 1; 128; 28; 28 ] in
    let w = G.param b "w" [ 256; 128; 1; 1 ] in
    let c = G.op b "conv2d" ~attrs:[ ("stride", attr_i 1); ("padding", attr_s "same") ] [ d; w ] in
    let sc = G.param b "sc" [ 256 ] and sh = G.param b "sh" [ 256 ] in
    let bn = G.op b "batch_norm" [ c; sc; sh ] in
    let r = G.op b "relu" [ bn ] in
    G.finalize b [ r ]
  in
  let dw_bn_relu () =
    let b = G.builder () in
    let d = G.input b "d" [ 1; 512; 14; 14 ] in
    let w = G.param b "w" [ 512; 1; 3; 3 ] in
    let c =
      G.op b "depthwise_conv2d" ~attrs:[ ("stride", attr_i 1); ("padding", attr_s "same") ] [ d; w ]
    in
    let sc = G.param b "sc" [ 512 ] and sh = G.param b "sh" [ 512 ] in
    let bn = G.op b "batch_norm" [ c; sc; sh ] in
    let r = G.op b "relu" [ bn ] in
    G.finalize b [ r ]
  in
  let rnn_cell () =
    (* h' = tanh(x·W + h·U + b), hidden 128. *)
    let b = G.builder () in
    let x = G.input b "x" [ 1; 128 ] in
    let h = G.input b "h" [ 1; 128 ] in
    let w = G.param b "w" [ 128; 128 ] and u = G.param b "u" [ 128; 128 ] in
    let xb = G.op b "dense" [ x; w ] and hb = G.op b "dense" [ h; u ] in
    let s = G.op b "add" [ xb; hb ] in
    let bias = G.param b "b" [ 128 ] in
    let s = G.op b "bias_add" [ s; bias ] in
    let out = G.op b "tanh" [ s ] in
    G.finalize b [ out ]
  in
  let lstm_cell () =
    let g = Tvm_models.Models.lstm_lm ~hidden:128 ~layers:1 ~vocab:128 ~steps:1 () in
    g
  in
  [
    ("conv+bn+relu 128x28x28", conv_bn_relu ());
    ("dwconv+bn+relu 512x14x14", dw_bn_relu ());
    ("rnn cell h=128", rnn_cell ());
    ("lstm cell h=128", lstm_cell ());
  ]

let fig4 () =
  banner "Figure 4: fused vs non-fused operations (Titan X)";
  let target = Tvm.Target.cuda () in
  let rows =
    List.map
      (fun (name, graph) ->
        Tvm.Compiler.clear_cache ();
        let spec = Tvm_spec.Job_spec.make ~trials:(trials 48) () in
        let fused, ef =
          Tvm.Compiler.build_executor ~spec graph target
        in
        ignore fused;
        let unfused, eu =
          Tvm.Compiler.build_executor
            ~spec:{ spec with Tvm_spec.Job_spec.fusion = false }
            graph target
        in
        ignore unfused;
        let tf = Tvm_runtime.Graph_executor.estimated_time_s ef in
        let tu = Tvm_runtime.Graph_executor.estimated_time_s eu in
        (name, [ tu /. tf ]))
      (fig4_workloads ())
  in
  table ~columns:[ "fusion speedup" ] ~fmt:"%.2f" rows;
  rows

(* ------------------------------------------------------------------ *)
(* Fig 6: schedule-primitive capability matrix                          *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  banner "Figure 6: schedule primitives used per back-end";
  let rows =
    [
      ("[Halide] loop transformations", [ "yes"; "yes"; "yes" ]);
      ("[Halide] thread binding", [ "yes"; "yes"; "yes" ]);
      ("[Halide] compute locality", [ "yes"; "yes"; "yes" ]);
      ("[TVM] special memory scope", [ "-"; "yes"; "yes" ]);
      ("[TVM] tensorization", [ "yes"; "yes"; "yes" ]);
      ("[TVM] latency hiding", [ "-"; "-"; "yes" ]);
    ]
  in
  Printf.printf "%-34s%10s%10s%10s\n" "" "CPU" "GPU" "Accel";
  List.iter
    (fun (name, cells) ->
      Printf.printf "%-34s" name;
      List.iter (fun c -> Printf.printf "%10s" c) cells;
      print_newline ())
    rows

(* ------------------------------------------------------------------ *)
(* Fig 7: cooperative shared-memory fetching                            *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  banner "Figure 7: matmul — cuBLAS vs TVM vs TVM w/o cooperation (Titan X)";
  let rows =
    List.map
      (fun size ->
        let a = Tensor.placeholder (Printf.sprintf "A%d" size) [ Expr.int size; Expr.int size ] in
        let b = Tensor.placeholder (Printf.sprintf "B%d" size) [ Expr.int size; Expr.int size ] in
        let c = Op.dense ~name:(Printf.sprintf "mm%d" size) a b in
        let tpl = Templates.gpu_matmul ~name:(Printf.sprintf "matmul%d" size) c in
        let with_coop = tune_gpu ~trials:(trials 96) (force_knob tpl ("coop", 1)) in
        let without = tune_gpu ~trials:(trials 96) (force_knob tpl ("coop", 0)) in
        let flops = 2. *. (float_of_int size ** 3.) in
        let cublas =
          Vendor.op_time Vendor.Cublas (Vendor.Gpu_m titan) ~op:"dense"
            ~in_shapes:[ [ size; size ]; [ size; size ] ]
            ~out_shape:[ size; size ] ~attrs:[] ~dtype:Dtype.Float32
        in
        ignore flops;
        ( string_of_int size,
          [ ms cublas; ms without.Tuner.best_time; ms with_coop.Tuner.best_time ] ))
      [ 1024; 2048 ]
  in
  table ~columns:[ "cuBLAS"; "TVM w/o coop"; "TVM" ] ~fmt:"%.3f" rows;
  rows

(* ------------------------------------------------------------------ *)
(* Fig 10: VDLA roofline / latency hiding                               *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  banner "Figure 10: VDLA roofline — ResNet conv layers, latency hiding on/off";
  let layers =
    List.filter (fun w -> not w.Workloads.depthwise && w.Workloads.name <> "C1")
      Workloads.resnet_convs
  in
  Printf.printf "%-6s%12s%14s%14s%14s%14s\n" "layer" "ops/byte"
    "GOPS (vt=1)" "util (vt=1)" "GOPS (vt=2)" "util (vt=2)";
  let utils =
    List.map
      (fun w ->
        let run vt =
          let m, n, k =
            V.conv_as_gemm ~h:w.Workloads.hw ~w:w.Workloads.hw ~ic:w.Workloads.ic
              ~oc:w.Workloads.oc ~kernel:w.Workloads.kernel ~stride:w.Workloads.stride
          in
          let wl =
            V.gemm_workload
              ~name:(Printf.sprintf "f10_%s_vt%d" w.Workloads.name vt)
              ~m ~n ~k ()
          in
          let stream, stats = V.simulate ~vthreads:vt wl in
          let intensity, gops = Des.roofline_point Machine.vdla stream stats in
          (intensity, gops, stats.Des.compute_utilization)
        in
        let intensity, gops1, util1 = run 1 in
        let _, gops2, util2 = run 2 in
        Printf.printf "%-6s%12.1f%14.1f%14.2f%14.1f%14.2f\n" w.Workloads.name
          intensity gops1 util1 gops2 util2;
        (util1, util2))
      layers
  in
  let peak1 = List.fold_left (fun acc (u, _) -> Float.max acc u) 0. utils in
  let peak2 = List.fold_left (fun acc (_, u) -> Float.max acc u) 0. utils in
  Printf.printf "peak compute utilization: %.0f%% without hiding -> %.0f%% with hiding\n"
    (100. *. peak1) (100. *. peak2);
  (peak1, peak2)

(* ------------------------------------------------------------------ *)
(* Fig 12 + Table 1: automation methods                                 *)
(* ------------------------------------------------------------------ *)

let table1 () =
  banner "Table 1: comparison of automation methods";
  Printf.printf "%-24s%14s%12s%16s%14s\n" "Method" "Data Cost" "Model Bias"
    "Need HW Info" "Learn History";
  Printf.printf "%-24s%14s%12s%16s%14s\n" "Blackbox auto-tuning" "high" "none" "no" "no";
  Printf.printf "%-24s%14s%12s%16s%14s\n" "Predefined cost model" "none" "high" "yes" "no";
  Printf.printf "%-24s%14s%12s%16s%14s\n" "ML based cost model" "low" "low" "no" "yes"

let table2 () =
  banner "Table 2: single-kernel workload configurations";
  List.iter
    (fun w -> print_endline ("  " ^ Workloads.to_string w))
    (Workloads.resnet_convs @ Workloads.mobilenet_depthwise)

(** The conv2d operator used for the Fig 12 trial-convergence study. *)
let fig12_template () =
  let w = Workloads.find "C7" in
  let data =
    Tensor.placeholder "f12_d" (List.map Expr.int [ 1; w.Workloads.ic; w.Workloads.hw; w.Workloads.hw ])
  in
  let weight =
    Tensor.placeholder "f12_w"
      (List.map Expr.int [ w.Workloads.oc; w.Workloads.ic; w.Workloads.kernel; w.Workloads.kernel ])
  in
  let conv = Op.conv2d ~name:"f12_conv" ~stride:w.Workloads.stride data weight in
  (Templates.gpu_flat ~name:"fig12_c7" conv, w)

let fig12 ?(n_trials = 800) () =
  banner "Figure 12: automation methods on a ResNet-18 conv2d (C7, Titan X)";
  let tpl, w = fig12_template () in
  let cudnn =
    Vendor.op_time Vendor.Cudnn (Vendor.Gpu_m titan) ~op:"conv2d"
      ~in_shapes:
        [ [ 1; w.Workloads.ic; w.Workloads.hw; w.Workloads.hw ];
          [ w.Workloads.oc; w.Workloads.ic; w.Workloads.kernel; w.Workloads.kernel ] ]
      ~out_shape:[ 1; w.Workloads.oc; Workloads.out_hw w; Workloads.out_hw w ]
      ~attrs:[ ("stride", attr_i w.Workloads.stride) ]
      ~dtype:Dtype.Float32
  in
  let n_trials = trials n_trials in
  let checkpoints =
    List.filter (fun c -> c <= n_trials) [ 16; 32; 64; 100; 150; 200; 300; 400; 600; 800 ]
  in
  let methods = [ Tuner.Ml_model; Tuner.Random_search; Tuner.Genetic_algorithm ] in
  let curves =
    List.map
      (fun m ->
        let res = tune_gpu ~method_:m ~trials:n_trials ~seed:7 { tpl with Tuner.tpl_name = tpl.Tuner.tpl_name ^ "_" ^ Tuner.method_to_string m } in
        let best_at n =
          List.fold_left
            (fun acc (t : Tuner.trial) ->
              if t.Tuner.trial_index <= n then Float.min acc t.Tuner.best_so_far else acc)
            Float.infinity res.Tuner.history
        in
        (Tuner.method_to_string m, List.map (fun n -> cudnn /. best_at n) checkpoints))
      methods
  in
  Printf.printf "%-12s" "trials:";
  List.iter (fun n -> Printf.printf "%8d" n) checkpoints;
  print_newline ();
  List.iter
    (fun (name, speedups) ->
      Printf.printf "%-12s" name;
      List.iter (fun s -> Printf.printf "%8.2f" s) speedups;
      print_newline ())
    curves;
  print_endline "(speedup relative to cuDNN; >1 = faster than cuDNN)";
  curves

(* ------------------------------------------------------------------ *)
(* Multicore tuning throughput (§5.3 parallel exploration +            *)
(* §5.4 distributed measurement)                                       *)
(* ------------------------------------------------------------------ *)

(** Tuner throughput at [-j 1] vs [-j jobs]: [j] maps to [j] simulated
    devices in the measurement pool {e and} [j] host domains for the
    parallel phases, mirroring the paper's setup where exploration
    fans out over a device fleet. Throughput is trials per second of
    simulated fleet time ([Device_pool.makespan]) — the quantity the
    device count actually scales — with host wall-clock reported
    alongside. Both runs share one seed and no fault plan, so the best
    configuration must come out identical; the comparison is pure
    throughput. *)
let partune ?(jobs = 4) ?(seed = 11) ?(n_trials = 160) () =
  banner
    (Printf.sprintf
       "Multicore tuning: throughput at -j1 vs -j%d (C7 conv2d, Titan X)" jobs);
  let n_trials = trials n_trials in
  let run ?(use_cache = true) j =
    let tpl, _ = fig12_template () in
    let pool = Pool.create (List.init j (fun _ -> Pool.Gpu_dev titan)) in
    let par = Tvm_par.Pool.create ~domains:j () in
    let measure = Pool.measure_fn pool ~kind_pred:Pool.is_gpu in
    let measure_batch = Pool.batch_measure_fn ~par pool ~kind_pred:Pool.is_gpu in
    let t0 = Unix.gettimeofday () in
    let res =
      Tuner.tune
        ~spec:(Tvm_spec.Job_spec.make ~seed ~jobs:j ~use_compile_cache:use_cache ())
        ~measure_batch ~method_:Tuner.Ml_model ~measure ~n_trials tpl
    in
    let wall = Unix.gettimeofday () -. t0 in
    (res, Pool.makespan pool, wall)
  in
  (* Host wall-clock spent proposing candidates (SA walks over the
     cost model) across both runs: the explorer's hot path, kept honest
     by a generous Lower_better gate rule. *)
  let propose_s () =
    Option.value ~default:0. (Tvm_obs.Metrics.get "tune.phase.propose_s")
  in
  let pr0 = propose_s () in
  let r1, fleet1, wall1 = run 1 in
  let rj, fleetj, wallj = run jobs in
  let propose_total = Float.max 1e-9 (propose_s () -. pr0) in
  let thr fleet = float_of_int n_trials /. Float.max 1e-9 fleet in
  let speedup = thr fleetj /. thr fleet1 in
  let wall_speedup = wall1 /. Float.max 1e-9 wallj in
  let identical = r1.Tuner.best_config = rj.Tuner.best_config in
  table
    ~columns:[ "trials/s (fleet)"; "fleet s"; "host wall s"; "best ms" ]
    ~fmt:"%.3f"
    [
      ("-j1", [ thr fleet1; fleet1; wall1; ms r1.Tuner.best_time ]);
      ( Printf.sprintf "-j%d" jobs,
        [ thr fleetj; fleetj; wallj; ms rj.Tuner.best_time ] );
    ];
  Printf.printf
    "tuner throughput speedup: %.2fx (host wall %.2fx); best config %s\n"
    speedup wall_speedup
    (if identical then "identical" else "DIFFERS (bug!)");
  Printf.printf "propose phase: %.4fs host wall across both runs\n"
    propose_total;
  Tvm_obs.Metrics.set_gauge "bench.partune.propose_s" propose_total;
  Tvm_obs.Metrics.set_gauge "bench.partune.throughput_j1" (thr fleet1);
  Tvm_obs.Metrics.set_gauge
    (Printf.sprintf "bench.partune.throughput_j%d" jobs)
    (thr fleetj);
  Tvm_obs.Metrics.set_gauge "bench.partune.speedup" speedup;
  Tvm_obs.Metrics.set_gauge "bench.partune.wall_speedup" wall_speedup;
  Tvm_obs.Metrics.set_gauge "bench.partune.identical_best"
    (if identical then 1. else 0.);
  (* Compile-cache A/B at -j[jobs]: same seed ⇒ bit-identical trial
     history either way; the only difference is time spent in the
     prepare phase (lowering + featurization), which the cache turns
     into lookups for SA winners and revisits. *)
  let prepare_s () =
    Option.value ~default:0. (Tvm_obs.Metrics.get "tune.phase.prepare_s")
  in
  let p0 = prepare_s () in
  let r_on, _, _ = run jobs in
  let p_on = Float.max 1e-9 (prepare_s () -. p0) in
  let r_off, _, _ = run ~use_cache:false jobs in
  let p_off = Float.max 1e-9 (prepare_s () -. p0 -. p_on) in
  let prepare_speedup = p_off /. p_on in
  let log_identical = r_on.Tuner.history = r_off.Tuner.history in
  Printf.printf
    "prepare phase: %.4fs cache-on vs %.4fs cache-off (%.2fx); tuning log %s\n"
    p_on p_off prepare_speedup
    (if log_identical then "identical" else "DIFFERS (bug!)");
  Tvm_obs.Metrics.set_gauge "bench.partune.prepare_s_cache_on" p_on;
  Tvm_obs.Metrics.set_gauge "bench.partune.prepare_s_cache_off" p_off;
  Tvm_obs.Metrics.set_gauge "bench.partune.prepare_speedup" prepare_speedup;
  Tvm_obs.Metrics.set_gauge "bench.partune.cache_identical_log"
    (if log_identical then 1. else 0.);
  (speedup, identical)

(* ------------------------------------------------------------------ *)
(* Compile-cache benchmarks                                             *)
(* ------------------------------------------------------------------ *)

(** Lowering + featurization throughput, cold vs compile-cache warm:
    how much work a cache hit saves per configuration. *)
let bench_lower ?(n = 120) () =
  banner "Lowering throughput: cold vs compile-cache warm (C7 conv2d)";
  let n = trials n in
  let tpl, _ = fig12_template () in
  let rng = Random.State.make [| 23 |] in
  (* [n] distinct valid configurations, fixed up front so cold and warm
     walk the same list. *)
  let seen = Hashtbl.create (4 * n) in
  let cfgs = ref [] in
  let found = ref 0 in
  let attempts = ref 0 in
  while !found < n && !attempts < 100 * n do
    incr attempts;
    let cfg = Cfg.random_config tpl.Tuner.tpl_space rng in
    let k = Cfg.canonical cfg in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      match (try Some (tpl.Tuner.tpl_instantiate cfg) with _ -> None) with
      | Some _ ->
          cfgs := cfg :: !cfgs;
          incr found
      | None -> ()
    end
  done;
  let cfgs = List.rev !cfgs in
  let n = List.length cfgs in
  let compile cfg =
    match (try Some (tpl.Tuner.tpl_instantiate cfg) with _ -> None) with
    | Some s ->
        Tvm_autotune.Compile_cache.Valid
          { feats = Tvm_autotune.Feature.extract s; stmt = Some s }
    | None -> Tvm_autotune.Compile_cache.Invalid
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Float.max 1e-9 (Unix.gettimeofday () -. t0)
  in
  let cold = time (fun () -> List.iter (fun c -> ignore (compile c)) cfgs) in
  let cache =
    Tvm_autotune.Compile_cache.create ~size:(2 * n) ~stmt_cap:(2 * n)
      ~name:"bench_lower" ()
  in
  List.iter
    (fun c ->
      ignore (Tvm_autotune.Compile_cache.find_or_compile cache c ~compile))
    cfgs;
  let warm =
    time (fun () ->
        List.iter
          (fun c ->
            ignore
              (Tvm_autotune.Compile_cache.find_or_compile cache c ~compile))
          cfgs)
  in
  let per_s t = float_of_int n /. t in
  table
    ~columns:[ "lowerings/s"; "total s" ]
    ~fmt:"%.4f"
    [
      ("cold", [ per_s cold; cold ]);
      ("warm (cache hit)", [ per_s warm; warm ]);
    ];
  Printf.printf "cache-hit speedup per configuration: %.1fx over %d configs\n"
    (cold /. warm) n;
  Tvm_obs.Metrics.set_gauge "bench.lower.cold_per_s" (per_s cold);
  Tvm_obs.Metrics.set_gauge "bench.lower.warm_per_s" (per_s warm);
  Tvm_obs.Metrics.set_gauge "bench.lower.warm_speedup" (cold /. warm);
  (per_s cold, per_s warm)

(** Compile-cache hit rate on a real ML-guided tuning run: the SA
    explorer's revisits and the prepare phase's re-lookups are what the
    cache exists for, so measure them on the genuine trace. *)
let bench_cache ?(seed = 11) ?(n_trials = 120) () =
  banner "Compile-cache hit rate on an ML tuning trace (C7 conv2d)";
  let n_trials = trials n_trials in
  let metric name = Option.value ~default:0. (Tvm_obs.Metrics.get name) in
  let h0 = metric "cache.hit" in
  let m0 = metric "cache.miss" in
  let e0 = metric "cache.evict" in
  let tpl, _ = fig12_template () in
  let res = tune_gpu ~seed ~trials:n_trials tpl in
  let hits = metric "cache.hit" -. h0 in
  let misses = metric "cache.miss" -. m0 in
  let evicts = metric "cache.evict" -. e0 in
  let rate = hits /. Float.max 1. (hits +. misses) in
  Printf.printf
    "%d trials: %.0f hits / %.0f misses (%.1f%% hit rate), %.0f stmt \
     evictions; best %.3f ms\n"
    n_trials hits misses (100. *. rate) evicts (ms res.Tuner.best_time);
  Tvm_obs.Metrics.set_gauge "bench.cache.hits" hits;
  Tvm_obs.Metrics.set_gauge "bench.cache.misses" misses;
  Tvm_obs.Metrics.set_gauge "bench.cache.hit_rate" rate;
  Tvm_obs.Metrics.set_gauge "bench.cache.evictions" evicts;
  rate
