(** Ablation studies for the design choices DESIGN.md calls out. *)

open Tvm_tir
module Tuner = Tvm_autotune.Tuner
module Gbt = Tvm_autotune.Gbt
module Feature = Tvm_autotune.Feature
module Treernn = Tvm_autotune.Treernn
module Cfg = Tvm_autotune.Cfg_space
module Explorers = Tvm_autotune.Explorers
module Pool = Tvm_rpc.Device_pool
module Machine = Tvm_sim.Machine
module Fusion = Tvm_graph.Fusion
module Mem_plan = Tvm_graph.Mem_plan
module Models = Tvm_models.Models
open Exp_util

(* ------------------------------------------------------------------ *)
(* Cost-model features: full set vs counts-only vs TreeRNN              *)
(* ------------------------------------------------------------------ *)

(** Collect a labeled dataset from random configurations of the Fig 12
    conv template, then compare predictive quality and speed of the
    three cost models (the paper's §5.2 comparison). *)
let ablation_features ?(n = 120) () =
  banner "Ablation: cost-model features (GBT full vs counts-only vs TreeRNN)";
  let tpl, _ = Fig_micro.fig12_template () in
  let rng = Random.State.make [| 99 |] in
  let samples = ref [] in
  let attempts = ref 0 in
  while List.length !samples < n && !attempts < n * 30 do
    incr attempts;
    let cfg = Cfg.random_config tpl.Tuner.tpl_space rng in
    match (try Some (tpl.Tuner.tpl_instantiate cfg) with _ -> None) with
    | Some stmt ->
        let t = Tvm_sim.Gpu_model.time_s Machine.titan_x stmt in
        if Float.is_finite t then samples := (stmt, -.Float.log t) :: !samples
    | None -> ()
  done;
  let samples = Array.of_list !samples in
  let n = Array.length samples in
  let split = n / 2 in
  let train = Array.sub samples 0 split and test = Array.sub samples split (n - split) in
  let feats arr = Array.map (fun (s, _) -> Feature.extract s) arr in
  let labels arr = Array.map snd arr in
  (* counts-only: zero out everything except access counts *)
  let strip f =
    Array.mapi (fun i v -> if i < 10 then 0. else if (i - 10) mod Feature.per_buffer_feats = 0 then v else 0.) f
  in
  let t0 = Sys.time () in
  let full = Gbt.fit (feats train) (labels train) in
  let t_fit = Sys.time () -. t0 in
  let counts = Gbt.fit (Array.map strip (feats train)) (labels train) in
  let t1 = Sys.time () in
  let rnn = Treernn.fit (Array.map fst train) (labels train) in
  let t_rnn_fit = Sys.time () -. t1 in
  let acc_full = Gbt.rank_accuracy full (feats test) (labels test) in
  let acc_counts = Gbt.rank_accuracy counts (Array.map strip (feats test)) (labels test) in
  (* TreeRNN rank accuracy *)
  let preds = Array.map (fun (s, _) -> Treernn.predict rnn s) test in
  let ys = labels test in
  let correct = ref 0 and total = ref 0 in
  Array.iteri
    (fun i _ ->
      for j = i + 1 to Array.length test - 1 do
        if ys.(i) <> ys.(j) then begin
          incr total;
          if ys.(i) < ys.(j) = (preds.(i) < preds.(j)) then incr correct
        end
      done)
    test;
  let acc_rnn = if !total = 0 then 1. else float_of_int !correct /. float_of_int !total in
  (* prediction speed *)
  let time_pred f =
    let t0 = Sys.time () in
    for _ = 1 to 20 do
      Array.iter (fun x -> ignore (f x)) test
    done;
    (Sys.time () -. t0) /. float_of_int (20 * Array.length test) *. 1e6
  in
  let gbt_us = time_pred (fun (s, _) -> Gbt.predict full (Feature.extract s)) in
  let rnn_us = time_pred (fun (s, _) -> Treernn.predict rnn s) in
  Printf.printf "%-22s%16s%16s%16s\n" "model" "rank accuracy" "predict (us)" "fit (s)";
  Printf.printf "%-22s%16.3f%16.1f%16.2f\n" "GBT, full features" acc_full gbt_us t_fit;
  Printf.printf "%-22s%16.3f%16s%16s\n" "GBT, counts only" acc_counts "-" "-";
  Printf.printf "%-22s%16.3f%16.1f%16.2f\n" "TreeRNN" acc_rnn rnn_us t_rnn_fit;
  (acc_full, acc_counts, acc_rnn)

(* ------------------------------------------------------------------ *)
(* Explorer: simulated annealing vs greedy random-ranked batches        *)
(* ------------------------------------------------------------------ *)

let ablation_explorer ?(n_trials = 240) () =
  banner "Ablation: SA explorer vs greedy ranked-random proposals";
  let tpl, _ = Fig_micro.fig12_template () in
  let pool = Pool.create [ Pool.Gpu_dev Machine.titan_x ] in
  let measure = Pool.measure_fn pool ~kind_pred:(fun _ -> true) in
  let sa =
    Tuner.tune
      ~spec:(Tvm_spec.Job_spec.make ~seed:5 ())
      ~method_:Tuner.Ml_model ~measure ~n_trials tpl
  in
  (* Greedy: rank a large random pool with the model, measure top-k.
     Approximated here by SA with zero walk steps. *)
  let greedy =
    Tuner.tune
      ~spec:(Tvm_spec.Job_spec.make ~seed:5 ~sa_steps:1 ~n_chains:64 ())
      ~method_:Tuner.Ml_model ~measure ~n_trials tpl
  in
  Printf.printf "SA explorer best:      %.3f ms\n" (ms sa.Tuner.best_time);
  Printf.printf "greedy ranking best:   %.3f ms\n" (ms greedy.Tuner.best_time);
  (sa.Tuner.best_time, greedy.Tuner.best_time)

(* ------------------------------------------------------------------ *)
(* Memory planner                                                       *)
(* ------------------------------------------------------------------ *)

let ablation_memplan () =
  banner "Ablation: static memory planner (pooled vs one-buffer-per-tensor)";
  let rows =
    List.map
      (fun (name, graph) ->
        let groups = Fusion.fuse graph in
        let plan = Mem_plan.plan graph groups in
        ( name,
          [ plan.Mem_plan.naive_bytes /. 1e6; plan.Mem_plan.total_bytes /. 1e6;
            plan.Mem_plan.naive_bytes /. Float.max 1. plan.Mem_plan.total_bytes ] ))
      [ ("ResNet-18", Models.resnet18 ()); ("MobileNet", Models.mobilenet ());
        ("LSTM LM", Models.lstm_lm ()); ("DQN", Models.dqn ());
        ("DCGAN", Models.dcgan ()) ]
  in
  table ~columns:[ "naive MB"; "pooled MB"; "reduction" ] ~fmt:"%.2f" rows;
  rows

(* ------------------------------------------------------------------ *)
(* Data layout (§3): blocked-channel preference vs repacking cost       *)
(* ------------------------------------------------------------------ *)

let ablation_layout () =
  banner "Ablation: data-layout transformation (NCHW -> NCHW[c])";
  let rows =
    List.map
      (fun (name, graph) ->
        let r = Tvm_graph.Layout.annotate ~lanes:4 graph in
        let blocked =
          List.length
            (List.filter (fun (_, l) -> l <> Tvm_graph.Layout.Nchw) r.Tvm_graph.Layout.annotations)
        in
        let total = List.length r.Tvm_graph.Layout.annotations in
        let bytes = Tvm_graph.Layout.transform_bytes graph r in
        ( name,
          [ float_of_int total; float_of_int blocked;
            float_of_int r.Tvm_graph.Layout.transforms_inserted; bytes /. 1e6 ] ))
      [ ("ResNet-18", Models.resnet18 ()); ("MobileNet", Models.mobilenet ());
        ("DQN", Models.dqn ()) ]
  in
  table ~columns:[ "ops"; "blocked"; "transforms"; "repack MB" ] ~fmt:"%.1f" rows;
  rows

(* ------------------------------------------------------------------ *)
(* Fusion rules: full vs injective-only                                 *)
(* ------------------------------------------------------------------ *)

let ablation_fusion () =
  banner "Ablation: fusion coverage (groups per network)";
  let rows =
    List.map
      (fun (name, graph) ->
        let fused = List.length (Fusion.fuse graph) in
        let unfused = List.length (Fusion.no_fusion graph) in
        (name, [ float_of_int unfused; float_of_int fused;
                 float_of_int unfused /. float_of_int fused ]))
      [ ("ResNet-18", Models.resnet18 ()); ("MobileNet", Models.mobilenet ());
        ("LSTM LM", Models.lstm_lm ()); ("DQN", Models.dqn ());
        ("DCGAN", Models.dcgan ()) ]
  in
  table ~columns:[ "ops"; "fused groups"; "kernels saved" ] ~fmt:"%.1f" rows;
  rows
