(* tvmc — command-line driver for the compiler stack.

   Subcommands:
     compile  — build one of the evaluation networks for a target and
                report per-kernel estimates
     tune     — run the automated optimizer on a Table-2 workload
     profile  — compile a network, run it, and report the per-kernel
                latency breakdown (TVM's debug-executor view)
     devices  — list the simulated machines

   [compile], [tune] and [profile] all accept [--trace-out FILE]
   (Chrome trace-event JSON, load in chrome://tracing or Perfetto) and
   [--metrics-out FILE] (metrics registry dump). *)

open Cmdliner
module Models = Tvm_models.Models
module Workloads = Tvm_models.Workloads
module Machine = Tvm_sim.Machine
module Rt = Tvm_runtime.Rt_module
module Obs = Tvm_obs

(* ---- shared observability flags ---- *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ]
        ~doc:"Write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~doc:"Write the metrics registry as JSON")

let journal_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal-out" ]
        ~doc:
          "Write the flight-recorder journal as JSON lines: every trial's \
           propose/prepare/dispatch/measure lifecycle with provenance \
           (explorer origin, SA chain, predicted score, cache verdict, \
           per-attempt device outcomes). Byte-identical for a fixed seed \
           at any -j; analyze with `tvmc report`.")

let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ]
        ~doc:
          "Host domains for the tuner's parallel phases (exploration, \
           feature extraction, model training, batch measurement). Never \
           changes which configurations are chosen: results are \
           bit-identical at any -j.")

let no_compile_cache_arg =
  Arg.(
    value & flag
    & info [ "no-compile-cache" ]
        ~doc:
          "Disable the cross-trial compile cache: every measured \
           configuration is re-lowered and re-featurized. Results are \
           bit-identical with the cache on — this flag exists for A/B \
           timing and verification.")

(** Run [f] with tracing/journaling enabled iff the matching output
    file was requested; write the requested observability outputs
    afterwards (also on failure, so a crashed compile still leaves its
    partial trace behind). *)
let with_obs ?(journal_out = None) ~trace_out ~metrics_out f =
  if trace_out <> None then Obs.Trace.set_enabled true;
  if journal_out <> None then Obs.Journal.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      (match trace_out with
      | Some path ->
          Obs.Trace.write_chrome_trace path;
          Printf.eprintf "[obs] trace written to %s (%d spans, %d events)\n%!" path
            (Obs.Trace.span_count ()) (Obs.Trace.event_count ())
      | None -> ());
      (match journal_out with
      | Some path ->
          Obs.Journal.write_jsonl path;
          Printf.eprintf "[obs] journal written to %s (%d records)\n%!" path
            (Obs.Journal.size ())
      | None -> ());
      match metrics_out with
      | Some path ->
          Obs.Metrics.write_json path;
          Printf.eprintf "[obs] metrics written to %s\n%!" path
      | None -> ())
    f

let network_of_name = function
  | "resnet18" -> Models.resnet18 ()
  | "mobilenet" -> Models.mobilenet ()
  | "lstm" -> Models.lstm_lm ()
  | "dqn" -> Models.dqn ()
  | "dcgan" -> Models.dcgan ()
  | s -> invalid_arg ("unknown network " ^ s ^ " (resnet18|mobilenet|lstm|dqn|dcgan)")

let target_of_name = function
  | "cuda" -> Tvm.Target.cuda ()
  | "arm" -> Tvm.Target.arm_cpu ()
  | "mali" -> Tvm.Target.mali ()
  | "llvm" -> Tvm.Target.llvm ()
  | s -> invalid_arg ("unknown target " ^ s ^ " (cuda|arm|mali|llvm)")

(** Full trial history as JSON lines — byte-identical for a fixed seed
    at any -j (and to a warm replay resume on a clean fleet). *)
let write_tune_log path history =
  let oc = open_out path in
  List.iter
    (fun (t : Tvm_autotune.Tuner.trial) ->
      Printf.fprintf oc
        "{\"trial\":%d,\"config\":%S,\"status\":%S,\"time_s\":%s,\"best_s\":%s}\n"
        t.Tvm_autotune.Tuner.trial_index
        (Tvm_autotune.Cfg_space.to_string t.Tvm_autotune.Tuner.config)
        (Tvm_autotune.Measure_result.status_name
           t.Tvm_autotune.Tuner.result.Tvm_autotune.Measure_result.status)
        (match t.Tvm_autotune.Tuner.result.Tvm_autotune.Measure_result.time_s with
        | Some v -> Printf.sprintf "%.17g" v
        | None -> "null")
        (Printf.sprintf "%.17g" t.Tvm_autotune.Tuner.best_so_far))
    history;
  close_out oc

(* ---- compile ---- *)

let validate_arg =
  Arg.(
    value & flag
    & info [ "validate" ]
        ~doc:
          "Run the static TIR sanitizer on every lowered kernel and fail \
           (exit 1) if it proves a defect (out-of-bounds access, unbalanced \
           dependence tokens, write race, dtype mismatch, ...)")

let print_violations name vs =
  Printf.eprintf "validation failed for %s:\n" name;
  List.iter
    (fun v -> Printf.eprintf "  %s\n" (Tvm_tir.Validate.to_string v))
    vs

let compile_cmd =
  let network =
    Arg.(value & pos 0 string "resnet18" & info [] ~docv:"NETWORK" ~doc:"Network to compile")
  in
  let target =
    Arg.(value & opt string "cuda" & info [ "target" ] ~doc:"cuda | arm | mali | llvm")
  in
  let trials =
    Arg.(value & opt int 48 & info [ "trials" ] ~doc:"Tuning trials per kernel (0 = default schedules)")
  in
  let run network target trials validate jobs no_cache trace_out metrics_out
      journal_out =
    with_obs ~journal_out ~trace_out ~metrics_out @@ fun () ->
    let graph = network_of_name network in
    let tgt = target_of_name target in
    let spec =
      Tvm_spec.Job_spec.make ~op:Tvm_spec.Job_spec.Compile ~workload:network
        ~target ~trials ~validate ~jobs ~use_compile_cache:(not no_cache)
        ?trace_out ?metrics_out ?journal_out ()
    in
    let t0 = Unix.gettimeofday () in
    let result, exec =
      try Tvm.Compiler.build_executor ~spec graph tgt
      with Tvm.Compiler.Validation_failed (name, errs) ->
        print_violations name errs;
        exit 1
    in
    Printf.printf "compiled %s for %s in %.1fs (%d tuning trials)\n\n" network
      (Tvm.Target.name tgt)
      (Unix.gettimeofday () -. t0)
      result.Tvm.Compiler.tuning_trials_run;
    List.iter
      (fun (k : Rt.kernel) ->
        Printf.printf "  %8.3f ms  %s\n" (1e3 *. k.Rt.k_time_s) k.Rt.k_name)
      (Rt.kernels result.Tvm.Compiler.module_);
    Printf.printf "\nestimated end-to-end latency: %.3f ms\n"
      (1e3 *. Tvm_runtime.Graph_executor.estimated_time_s exec);
    let mem = Tvm_runtime.Graph_executor.memory_stats exec in
    Printf.printf "activation memory: %.2f MB (pooled) vs %.2f MB (naive)\n"
      (float_of_int mem.Tvm_runtime.Graph_executor.pooled_bytes /. 1e6)
      (float_of_int mem.Tvm_runtime.Graph_executor.naive_bytes /. 1e6)
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a network end to end")
    Term.(
      const run $ network $ target $ trials $ validate_arg $ jobs_arg
      $ no_compile_cache_arg $ trace_out_arg $ metrics_out_arg
      $ journal_out_arg)

(* ---- tune ---- *)

let tune_cmd =
  let workload =
    Arg.(value & pos 0 string "C7" & info [] ~docv:"WORKLOAD" ~doc:"Table-2 workload (C1..C12, D1..D9)")
  in
  let trials = Arg.(value & opt int 200 & info [ "trials" ] ~doc:"Measurement budget") in
  let method_ =
    Arg.(value & opt string "ml" & info [ "method" ] ~doc:"ml | random | genetic")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.
      & info [ "fault-rate" ]
          ~doc:
            "Inject transient measurement faults (timeouts, crashes, corrupted \
             runs) at this per-attempt rate, 0 = off")
  in
  let max_retries =
    Arg.(
      value
      & opt int Tvm_rpc.Retry_policy.default.Tvm_rpc.Retry_policy.max_retries
      & info [ "max-retries" ] ~doc:"Extra measurement attempts after a transient fault")
  in
  let timeout_ms =
    Arg.(
      value
      & opt float (1e3 *. Tvm_rpc.Retry_policy.default.Tvm_rpc.Retry_policy.timeout_s)
      & info [ "timeout-ms" ] ~doc:"Per-job measurement budget on the simulated clock")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Tuning seed (fixed seed = fixed log at any -j)")
  in
  let devices =
    Arg.(
      value & opt int 1
      & info [ "devices" ]
          ~doc:
            "Simulated devices in the measurement pool. Unlike -j this CAN \
             change outcomes (fault draws are per-device), so it is a \
             separate knob.")
  in
  let straggler =
    Arg.(
      value
      & opt (some int) None
      & info [ "straggler" ]
          ~doc:
            "Make device N a straggler: heavy transient fault rates on that \
             device only (timeouts dominate, so its jobs burn the per-job \
             budget). Use with --journal-out and `tvmc report` to see the \
             outlier detection attribute the damage.")
  in
  let tune_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "tune-log" ]
          ~doc:
            "Write the full trial history as JSON lines (one record per \
             measurement; byte-identical for a fixed seed at any -j)")
  in
  let fleet =
    Arg.(
      value & opt int 0
      & info [ "fleet" ]
          ~doc:
            "Measure on a sharded fleet of N simulated heterogeneous \
             devices instead of the classic pool (0 = classic). Results \
             are placement-invariant: the log is byte-identical across \
             -j, $(b,--shards) and $(b,--speculate). With \
             $(b,--straggler) the straggler is a 12x-slow device of the \
             target kind (speculation bait), not a fault source.")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ]
          ~doc:
            "Shards per device kind with $(b,--fleet) (0 = auto, about \
             one per 32 devices)")
  in
  let speculate =
    Arg.(
      value & flag
      & info [ "speculate" ]
          ~doc:
            "With $(b,--fleet): duplicate straggling measurements on an \
             idle device; first finisher wins. Never changes results, \
             only the simulated makespan.")
  in
  let run workload trials method_name fault_rate max_retries timeout_ms seed
      jobs devices fleet_n shards speculate straggler tune_log validate
      no_cache trace_out metrics_out journal_out =
    with_obs ~journal_out ~trace_out ~metrics_out @@ fun () ->
    let spec =
      Tvm_spec.Job_spec.make ~op:Tvm_spec.Job_spec.Tune ~workload ~trials
        ~method_name ~seed ~jobs ~devices ~validate ~fault_rate ?straggler
        ~max_retries ~timeout_s:(timeout_ms /. 1e3) ~fleet:fleet_n ~shards
        ~speculate ~use_compile_cache:(not no_cache) ?tune_log ?trace_out
        ?metrics_out ?journal_out ()
    in
    let w = Workloads.find workload in
    let out = Tvm_experiments.Fig_e2e.conv_tensor w in
    let tpl = Tvm_autotune.Templates.gpu_flat ~name:("tvmc_" ^ workload) out in
    let par = Tvm_par.Pool.create ~domains:jobs () in
    let method_ = Tvm_autotune.Tuner.method_of_name method_name in
    (* Classic pool and fleet expose the same measurement callbacks;
       the fleet additionally widens the measurement batch to keep its
       shards saturated. *)
    let pool = ref None and fl = ref None in
    let spec, measure, measure_batch =
      if fleet_n > 0 then begin
        let f = Tvm_rpc.Fleet.of_spec spec in
        fl := Some f;
        let kind = Tvm_rpc.Device_pool.kind_of_target spec.target in
        let spec =
          {
            spec with
            Tvm_spec.Job_spec.batch =
              Tvm_rpc.Fleet.suggested_batch f ~kind ~base:spec.batch;
          }
        in
        ( spec,
          Tvm_rpc.Fleet.measure_fn f ~kind,
          Tvm_rpc.Fleet.batch_measure_fn ~par f ~kind )
      end
      else begin
        let p = Tvm_rpc.Device_pool.of_spec spec in
        pool := Some p;
        ( spec,
          Tvm_rpc.Device_pool.measure_fn p ~kind_pred:(fun _ -> true),
          Tvm_rpc.Device_pool.batch_measure_fn ~par p ~kind_pred:(fun _ -> true)
        )
      end
    in
    (match !fl with
    | Some f ->
        Printf.printf
          "tuning %s (%s) on a %d-device fleet (%d shards%s), %d trials, \
           batch %d, space %d, -j %d...\n\
           %!"
          (Workloads.to_string w) method_name (Tvm_rpc.Fleet.devices f)
          (Tvm_rpc.Fleet.shard_count f)
          (if speculate then ", speculative" else "")
          trials spec.Tvm_spec.Job_spec.batch
          (Tvm_autotune.Cfg_space.size tpl.Tvm_autotune.Tuner.tpl_space)
          jobs
    | None ->
        Printf.printf
          "tuning %s (%s) on %d x titan-x, %d trials, space %d, -j %d...\n%!"
          (Workloads.to_string w) method_name (max 1 devices) trials
          (Tvm_autotune.Cfg_space.size tpl.Tvm_autotune.Tuner.tpl_space)
          jobs);
    let db = Tvm_autotune.Tuner.Db.create () in
    let res =
      Tvm_autotune.Tuner.tune ~spec ~db ~measure_batch ~method_ ~measure
        ~n_trials:trials tpl
    in
    (match tune_log with
    | Some path ->
        write_tune_log path res.Tvm_autotune.Tuner.history;
        Printf.eprintf "[obs] tuning log written to %s (%d trials)\n%!" path
          (List.length res.Tvm_autotune.Tuner.history)
    | None -> ());
    Printf.printf "best: %.3f ms with %s\n"
      (1e3 *. res.Tvm_autotune.Tuner.best_time)
      (Tvm_autotune.Cfg_space.to_string res.Tvm_autotune.Tuner.best_config);
    Printf.printf "trial outcomes: %s\n"
      (String.concat ", "
         (List.map
            (fun (s, n) -> Printf.sprintf "%s=%d" s n)
            (Tvm_autotune.Tuner.Db.status_counts db)));
    let metric name =
      match Obs.Metrics.get name with Some v -> int_of_float v | None -> 0
    in
    (match !pool with
    | Some p when fault_rate > 0. ->
        Printf.printf
          "pool: %d retries, %d timeouts, %d crashes, %d unstable, %d quarantined\n"
          (metric "pool.retries") (metric "pool.timeouts")
          (metric "pool.crashes") (metric "pool.corrupt")
          (Tvm_rpc.Device_pool.quarantined_count p)
    | _ -> ());
    (match !fl with
    | Some f ->
        let s = Tvm_rpc.Fleet.stats f in
        Printf.printf
          "fleet: %d jobs, %d attempts, %d retries; %d steals (%d jobs \
           moved); speculation %d launched / %d won / %d lost; makespan \
           %.2f s\n"
          s.Tvm_rpc.Fleet.fs_jobs s.Tvm_rpc.Fleet.fs_attempts
          s.Tvm_rpc.Fleet.fs_retries s.Tvm_rpc.Fleet.fs_steals
          s.Tvm_rpc.Fleet.fs_stolen_jobs s.Tvm_rpc.Fleet.fs_spec_launched
          s.Tvm_rpc.Fleet.fs_spec_wins s.Tvm_rpc.Fleet.fs_spec_losses
          (Tvm_rpc.Fleet.makespan f)
    | None -> ());
    if validate then begin
      let stmt =
        tpl.Tvm_autotune.Tuner.tpl_instantiate res.Tvm_autotune.Tuner.best_config
      in
      let vs = Tvm_tir.Validate.check stmt in
      match Tvm_tir.Validate.errors vs with
      | [] ->
          Printf.printf "validation: ok (%d warnings)\n"
            (List.length (Tvm_tir.Validate.warnings vs))
      | errs ->
          print_violations ("tvmc_" ^ workload) errs;
          exit 1
    end
  in
  Cmd.v (Cmd.info "tune" ~doc:"Tune a single operator workload")
    Term.(
      const run $ workload $ trials $ method_ $ fault_rate $ max_retries
      $ timeout_ms $ seed $ jobs_arg $ devices $ fleet $ shards $ speculate
      $ straggler $ tune_log $ validate_arg $ no_compile_cache_arg
      $ trace_out_arg $ metrics_out_arg $ journal_out_arg)

(* ---- profile ---- *)

let profile_cmd =
  let network =
    Arg.(value & pos 0 string "resnet18" & info [] ~docv:"NETWORK" ~doc:"Network to profile")
  in
  let target =
    Arg.(value & opt string "cuda" & info [ "target" ] ~doc:"cuda | arm | mali | llvm")
  in
  let trials =
    Arg.(value & opt int 16 & info [ "trials" ] ~doc:"Tuning trials per kernel (0 = default schedules)")
  in
  let runs =
    Arg.(value & opt int 1 & info [ "runs" ] ~doc:"Profiled inference runs")
  in
  let profile_out =
    Arg.(value & opt (some string) None & info [ "profile-out" ] ~doc:"Write the per-kernel profile as JSON")
  in
  let run network target trials runs profile_out trace_out metrics_out =
    with_obs ~trace_out ~metrics_out @@ fun () ->
    let graph = network_of_name network in
    let tgt = target_of_name target in
    let spec =
      Tvm_spec.Job_spec.make ~op:Tvm_spec.Job_spec.Profile ~workload:network
        ~target ~trials ()
    in
    let t0 = Unix.gettimeofday () in
    let _result, exec = Tvm.Compiler.build_executor ~spec graph tgt in
    Printf.printf "compiled %s for %s in %.1fs\n" network (Tvm.Target.name tgt)
      (Unix.gettimeofday () -. t0);
    let module Exec = Tvm_runtime.Graph_executor in
    Exec.set_params exec (Models.random_params graph);
    List.iter (fun (n, v) -> Exec.set_input exec n v) (Models.random_inputs graph);
    let report = ref None in
    for _ = 1 to max 1 runs do
      report := Some (Exec.profile_run ~mode:`Reference exec)
    done;
    let report = Option.get !report in
    Printf.printf "\n%s" (Obs.Profile.to_table report);
    (match profile_out with
    | Some path ->
        Obs.Profile.write_json path report;
        Printf.eprintf "[obs] profile written to %s\n%!" path
    | None -> ());
    if trace_out <> None then
      Printf.printf "\nspan tree:\n%s" (Obs.Trace.to_tree_string ())
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Compile and run a network, reporting the per-kernel latency breakdown")
    Term.(
      const run $ network $ target $ trials $ runs $ profile_out $ trace_out_arg
      $ metrics_out_arg)

(* ---- report ---- *)

let report_cmd =
  let journal =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOURNAL"
          ~doc:
            "Flight-recorder journal (JSON lines) written by --journal-out — \
             a tuning journal or a serving journal from `serve-rt`")
  in
  let top =
    Arg.(value & opt int 5 & info [ "top" ] ~doc:"Slowest measured trials to list")
  in
  let run journal top =
    let lines =
      In_channel.with_open_text journal In_channel.input_lines
      |> List.filter (fun l -> String.trim l <> "")
    in
    if lines = [] then begin
      Printf.eprintf "no journal records in %s\n" journal;
      exit 1
    end;
    if Obs.Report.Serving.is_serving_line (List.hd lines) then
      print_string
        (Obs.Report.Serving.render
           (Obs.Report.Serving.analyze (List.map Obs.Json.parse lines)))
    else begin
      let entries = Obs.Journal.load_jsonl journal in
      if entries = [] then begin
        Printf.eprintf "no journal records in %s\n" journal;
        exit 1
      end;
      print_string (Obs.Report.render (Obs.Report.analyze ~top entries))
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Analyze a flight-recorder journal. Tuning journals get per-device \
          utilization and straggler detection, fault/retry attribution, \
          per-status, per-origin and per-SA-chain breakdowns, slowest trials. \
          Serving journals (from `serve-rt --journal-out`) get the \
          request-latency digest: per-model p50/p90/p99, the batch-size \
          histogram, per-device placement tallies.")
    Term.(const run $ journal $ top)

(* ---- devices ---- *)

let devices_cmd =
  let run () =
    Printf.printf "%-16s%16s%14s\n" "machine" "peak GFLOPS" "bandwidth";
    List.iter
      (fun (c : Machine.cpu) ->
        Printf.printf "%-16s%16.1f%11.1fGB/s\n" c.Machine.cpu_name
          (Machine.cpu_peak_gflops c) c.Machine.dram_gbps)
      [ Machine.arm_a53; Machine.arm_a9; Machine.xeon_host ];
    List.iter
      (fun (g : Machine.gpu) ->
        Printf.printf "%-16s%16.1f%11.1fGB/s\n" g.Machine.gpu_name
          (Machine.gpu_peak_gflops g) g.Machine.global_gbps)
      [ Machine.titan_x; Machine.mali_t860 ];
    Printf.printf "%-16s%15.1fG ops/s (int8)\n" Machine.vdla.Machine.accel_name
      (Machine.accel_peak_gops Machine.vdla)
  in
  Cmd.v (Cmd.info "devices" ~doc:"List simulated machines") Term.(const run $ const ())

(* ---- submit ---- *)

let submit_cmd =
  let op =
    Arg.(
      value & pos 0 string "tune"
      & info [] ~docv:"OP" ~doc:"compile | tune | profile")
  in
  let workload =
    Arg.(
      value & pos 1 string "C7"
      & info [] ~docv:"WORKLOAD"
          ~doc:"Table-2 workload for tune, network name for compile/profile")
  in
  let target =
    Arg.(value & opt string "cuda" & info [ "target" ] ~doc:"cuda | arm | mali | llvm")
  in
  let trials = Arg.(value & opt int 64 & info [ "trials" ] ~doc:"Measurement budget") in
  let method_ =
    Arg.(value & opt string "ml" & info [ "method" ] ~doc:"ml | random | genetic")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Tuning seed") in
  let tenant =
    Arg.(value & opt string "default" & info [ "tenant" ] ~doc:"Tenant name")
  in
  let weight =
    Arg.(
      value & opt float 1.
      & info [ "weight" ]
          ~doc:"Fair-share weight (first submission per tenant wins)")
  in
  let quota =
    Arg.(
      value
      & opt (some int) None
      & info [ "quota" ] ~doc:"Max in-flight jobs for this tenant")
  in
  let priority =
    Arg.(value & opt int 0 & info [ "priority" ] ~doc:"Higher runs first within the tenant")
  in
  let submit_s =
    Arg.(
      value & opt float 0.
      & info [ "at" ] ~doc:"Arrival time on the virtual clock (seconds)")
  in
  let share =
    Arg.(
      value & flag
      & info [ "share" ]
          ~doc:
            "Opt into the shared cross-tenant cache scope instead of the \
             tenant's private one")
  in
  let run op workload target trials method_name seed jobs tenant weight quota
      priority submit_s share =
    let op =
      try Tvm_spec.Job_spec.op_of_name op
      with Invalid_argument m ->
        prerr_endline m;
        exit 2
    in
    let spec =
      Tvm_spec.Job_spec.make ~op ~workload ~target ~trials ~method_name ~seed
        ~jobs ()
    in
    print_endline
      (Tvm_serve.Tvmd.to_string
         (Tvm_serve.Tvmd.request ~tenant ~weight ?quota ~priority
            ~submit_s ~share spec))
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Print a tvmd request envelope (single-line JSON) for OP on \
          WORKLOAD. Collect envelopes into a jobs file and feed it to `tvmc \
          serve`, or drop it into a spool directory watched by `tvmc serve \
          --spool`.")
    Term.(
      const run $ op $ workload $ target $ trials $ method_ $ seed $ jobs_arg
      $ tenant $ weight $ quota $ priority $ submit_s $ share)

(* ---- serve ---- *)

let serve_cmd =
  let jobs_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "jobs-file" ] ~docv:"FILE"
          ~doc:"Request envelopes, one JSON line per job (see `tvmc submit`)")
  in
  let spool =
    Arg.(
      value
      & opt (some string) None
      & info [ "spool" ] ~docv:"DIR"
          ~doc:
            "Streaming mode: watch DIR for envelope files, serve each batch \
             as it arrives and archive consumed files to DIR/archive. Drain \
             and exit when a file named `stop` appears (or on SIGINT / \
             SIGTERM after the current batch). Exactly one of $(b,--jobs-file) \
             and $(b,--spool) is required.")
  in
  let poll_s =
    Arg.(
      value & opt float 0.05
      & info [ "poll-s" ] ~docv:"SECONDS"
          ~doc:"Spool scan interval between empty scans (wall clock)")
  in
  let compact_above =
    Arg.(
      value
      & opt (some int) None
      & info [ "compact-above" ] ~docv:"BYTES"
          ~doc:
            "Compact the store on startup when it exceeds BYTES (drops \
             superseded done/tuned/cache records; see `tvmc store compact`)")
  in
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:
            "Durable state: trial logs, tuned configurations, compile-cache \
             features and done jobs. Loaded on startup, flushed after every \
             job — restarting on the same store resumes where the last run \
             stopped and reproduces its results byte for byte.")
  in
  let slots =
    Arg.(value & opt int 2 & info [ "slots" ] ~doc:"Executor lanes (concurrent jobs)")
  in
  let max_jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-jobs" ]
          ~doc:
            "Stop after this many live (not store-restored) jobs — a \
             deterministic stand-in for killing the daemon mid-trace.")
  in
  let results =
    Arg.(
      value
      & opt (some string) None
      & info [ "results" ] ~docv:"FILE"
          ~doc:"Write per-job result lines here instead of stdout")
  in
  let run jobs_file spool poll_s compact_above store slots max_jobs results
      trace_out metrics_out =
    with_obs ~trace_out ~metrics_out @@ fun () ->
    let report outcome =
      Printf.eprintf
        "[tvmd] %d jobs: %d executed, %d restored from store, %d failed\n%!"
        (List.length outcome.Tvm_serve.Tvmd.oc_lines)
        outcome.Tvm_serve.Tvmd.oc_executed outcome.Tvm_serve.Tvmd.oc_restored
        outcome.Tvm_serve.Tvmd.oc_failed
    in
    match (jobs_file, spool) with
    | None, None | Some _, Some _ ->
        prerr_endline "tvmc serve: exactly one of --jobs-file and --spool is required";
        exit 2
    | Some jobs_file, None ->
        let requests =
          In_channel.with_open_text jobs_file In_channel.input_lines
          |> List.filter (fun l -> String.trim l <> "")
          |> List.map Tvm_serve.Tvmd.of_string
        in
        let outcome =
          Tvm_serve.Tvmd.serve ~slots ?store ?max_jobs ?compact_above requests
        in
        (match results with
        | Some path ->
            Out_channel.with_open_text path (fun oc ->
                List.iter
                  (fun l -> Out_channel.output_string oc (l ^ "\n"))
                  outcome.Tvm_serve.Tvmd.oc_lines)
        | None -> List.iter print_endline outcome.Tvm_serve.Tvmd.oc_lines);
        report outcome;
        if outcome.Tvm_serve.Tvmd.oc_failed > 0 then exit 1
    | None, Some dir ->
        let interrupted = ref false in
        let handler = Sys.Signal_handle (fun _ -> interrupted := true) in
        (try
           Sys.set_signal Sys.sigint handler;
           Sys.set_signal Sys.sigterm handler
         with Invalid_argument _ | Sys_error _ -> ());
        let failed = ref 0 in
        let emit lines =
          match results with
          | Some path ->
              let oc =
                open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
              in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () ->
                  List.iter (fun l -> output_string oc (l ^ "\n")) lines)
          | None -> List.iter print_endline lines
        in
        let on_batch i outcome =
          Printf.eprintf "[tvmd] batch %d\n%!" i;
          emit outcome.Tvm_serve.Tvmd.oc_lines;
          report outcome;
          failed := !failed + outcome.Tvm_serve.Tvmd.oc_failed
        in
        let batches =
          Tvm_serve.Tvmd.serve_spool ~slots ?store ?compact_above ~poll_s
            ~stopped:(fun () -> !interrupted)
            ~dir ~on_batch ()
        in
        Printf.eprintf "[tvmd] spool drained: %d batches\n%!" batches;
        if !failed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the tvmd multi-tenant service over a jobs file (one-shot) or a \
          spool directory (streaming): weighted fair-share scheduling across \
          tenants up to --slots concurrent lanes, per-tenant cache isolation, \
          job-level retries, durable warm-restartable state. Deterministic: a \
          fixed jobs file gives a byte-identical results file at any -j and \
          any --slots, cold or warm.")
    Term.(
      const run $ jobs_file $ spool $ poll_s $ compact_above $ store $ slots
      $ max_jobs $ results $ trace_out_arg $ metrics_out_arg)

(* ---- store ---- *)

let store_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"The store file to compact")
  in
  let threshold =
    Arg.(
      value & opt int 0
      & info [ "threshold" ] ~docv:"BYTES"
          ~doc:"Only compact when the store exceeds BYTES")
  in
  let compact_cmd =
    let run file threshold =
      match
        Tvm_autotune.Store.compact ~rules:Tvm_serve.Tvmd.store_rules
          ~threshold_bytes:threshold file
      with
      | None ->
          Printf.printf "%s: below threshold or missing, not compacted\n" file
      | Some (before, after) ->
          Printf.printf "%s: %d -> %d bytes (%.0f%% smaller)\n" file before
            after
            (100. *. (1. -. (float_of_int after /. float_of_int (max 1 before))))
    in
    Cmd.v
      (Cmd.info "compact"
         ~doc:
           "Rewrite a tvmd store dropping superseded records: done records \
            keep the freshest copy per job fingerprint, tuned configurations \
            and compile-cache features keep the first copy per key, trial \
            logs are kept in full. Atomic: writes a temp file then renames \
            over the original.")
      Term.(const run $ file $ threshold)
  in
  Cmd.group
    (Cmd.info "store" ~doc:"Durable-store maintenance")
    [ compact_cmd ]

(* ---- serving: traffic + serve-rt ---- *)

module Traffic = Tvm_serve.Traffic
module Srv = Tvm_serve.Model_server

let split_csv s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let serving_models_arg =
  Arg.(
    value
    & opt string "resnet18,mobilenet,lstm,dqn,dcgan"
    & info [ "models" ] ~docv:"CSV"
        ~doc:"Serving models (subset of resnet18,mobilenet,lstm,dqn,dcgan)")

let tenants_arg =
  Arg.(
    value & opt int 4
    & info [ "tenants" ] ~doc:"Tenant count, round-robined over --models")

let rate_arg =
  Arg.(
    value & opt float 50.
    & info [ "rate" ] ~doc:"Per-tenant mean arrival rate (requests / virtual s)")

let slo_ms_arg =
  Arg.(
    value & opt float 250.
    & info [ "slo-ms" ] ~doc:"Per-request latency SLO (virtual ms)")

let horizon_arg =
  Arg.(
    value & opt float 1.0
    & info [ "horizon" ] ~doc:"Arrival horizon (virtual seconds)")

let traffic_seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Traffic seed")

(** [--tenants N] round-robined over the model list, all with the same
    rate and SLO — enough to exercise multi-model contention without a
    tenant-spec file format. *)
let make_tenants ~models ~tenants ~rate ~slo_ms =
  if models = [] then invalid_arg "empty --models";
  List.init (max 1 tenants) (fun i ->
      Traffic.tenant
        ~rate_hz:rate ~slo_s:(slo_ms /. 1e3)
        ~model:(List.nth models (i mod List.length models))
        (Printf.sprintf "tenant%d" i))

let traffic_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the trace here instead of stdout")
  in
  let run models_csv tenants rate slo_ms horizon seed out =
    let models = split_csv models_csv in
    let reqs =
      Traffic.generate ~seed ~horizon_s:horizon
        (make_tenants ~models ~tenants ~rate ~slo_ms)
    in
    let lines = Traffic.to_lines reqs in
    match out with
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) lines);
        Printf.eprintf "[traffic] %d requests written to %s\n%!"
          (List.length reqs) path
    | None -> List.iter print_endline lines
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:
         "Generate an open-loop serving trace: per-tenant exponential \
          arrivals on the virtual clock, deterministic in (--seed, \
          --tenants, --rate, --horizon). Feed to `serve-rt --trace`.")
    Term.(
      const run $ serving_models_arg $ tenants_arg $ rate_arg $ slo_ms_arg
      $ horizon_arg $ traffic_seed_arg $ out)

let serve_rt_cmd =
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Paper-scale model shapes (slower compiles)")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Request trace from `tvmc traffic` (default: generate one from \
             --seed/--tenants/--rate/--horizon)")
  in
  let max_batch =
    Arg.(
      value & opt int 8
      & info [ "max-batch" ] ~doc:"Dynamic-batching cap (1 disables batching)")
  in
  let max_delay_ms =
    Arg.(
      value & opt float 2.
      & info [ "max-delay-ms" ]
          ~doc:"Longest a request waits for batch-mates before launching")
  in
  let inflight =
    Arg.(
      value & opt int 8 & info [ "inflight" ] ~doc:"Concurrent batches admitted")
  in
  let no_hetero =
    Arg.(
      value & flag
      & info [ "no-hetero" ]
          ~doc:"Disable heterogeneous dispatch: every group runs on the gpu")
  in
  let lanes =
    Arg.(
      value & opt int 1
      & info [ "j"; "lanes" ]
          ~doc:
            "Domains for parallel model loading. Never changes the schedule: \
             results are byte-identical at any -j.")
  in
  let target =
    Arg.(value & opt string "cuda" & info [ "target" ] ~doc:"cuda | arm | mali | llvm")
  in
  let results =
    Arg.(
      value
      & opt (some string) None
      & info [ "results" ] ~docv:"FILE"
          ~doc:"Write per-request completion lines (byte-comparable across -j)")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-out" ] ~docv:"FILE"
          ~doc:
            "Write the serving journal (JSON lines): run header, per-model \
             placements, per-batch and per-request records. Analyze with \
             `tvmc report`.")
  in
  let require_slo =
    Arg.(
      value & flag
      & info [ "require-slo" ] ~doc:"Exit 1 if any request misses its SLO")
  in
  let run models_csv full trace_file tenants rate slo_ms horizon seed max_batch
      max_delay_ms inflight no_hetero lanes target results journal require_slo
      trace_out metrics_out =
    with_obs ~trace_out ~metrics_out @@ fun () ->
    let model_names = split_csv models_csv in
    let suite = Models.serving_suite ~full () in
    let graphs =
      List.map
        (fun n ->
          match List.assoc_opt n suite with
          | Some g -> (n, g)
          | None ->
              invalid_arg
                ("unknown serving model " ^ n
               ^ " (resnet18|mobilenet|lstm|dqn|dcgan)"))
        model_names
    in
    let cfg =
      Srv.config ~max_batch
        ~max_delay_s:(max_delay_ms /. 1e3)
        ~max_inflight:inflight ~hetero:(not no_hetero) ()
    in
    let t0 = Unix.gettimeofday () in
    let server = Srv.load ~lanes ~target:(target_of_name target) cfg graphs in
    Printf.eprintf "[serve-rt] %d models loaded in %.1fs (%d lanes)\n%!"
      (List.length graphs)
      (Unix.gettimeofday () -. t0)
      lanes;
    let reqs =
      match trace_file with
      | Some path ->
          In_channel.with_open_text path In_channel.input_lines
          |> List.filter (fun l -> String.trim l <> "")
          |> Traffic.of_lines
      | None ->
          Traffic.generate ~seed ~horizon_s:horizon
            (make_tenants ~models:model_names ~tenants ~rate ~slo_ms)
    in
    let o = Srv.run server reqs in
    List.iter
      (fun (m : Srv.model) ->
        Printf.printf "placement %-12s %s   est %.3f ms/batch1\n" m.Srv.mv_name
          (String.concat "  "
             (List.map
                (fun (d, n) -> Printf.sprintf "%s=%d" d n)
                m.Srv.mv_placement))
          (1e3 *. m.Srv.mv_time1_s))
      (Srv.models server);
    Printf.printf "requests %d  throughput %.1f req/s  makespan %.4f s\n"
      (List.length o.Srv.oc_completions)
      o.Srv.oc_throughput_rps o.Srv.oc_makespan_s;
    Printf.printf "latency ms p50/p90/p99: %.3f / %.3f / %.3f   slo misses: %d\n"
      (1e3 *. o.Srv.oc_p50_s) (1e3 *. o.Srv.oc_p90_s) (1e3 *. o.Srv.oc_p99_s)
      o.Srv.oc_slo_misses;
    Printf.printf
      "mean batch %.2f  slab %.2f MB vs %.2f MB naive (%.0f%% saved, %d reuses)\n"
      o.Srv.oc_mean_batch
      (o.Srv.oc_slab_bytes /. 1e6)
      (o.Srv.oc_naive_bytes /. 1e6)
      (100. *. o.Srv.oc_slab_saving)
      o.Srv.oc_slab_reuses;
    (match results with
    | Some path ->
        Srv.write_results o path;
        Printf.eprintf "[serve-rt] results written to %s\n%!" path
    | None -> ());
    (match journal with
    | Some path ->
        Srv.write_journal server o path;
        Printf.eprintf "[serve-rt] journal written to %s\n%!" path
    | None -> ());
    if require_slo && o.Srv.oc_slo_misses > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "serve-rt"
       ~doc:
         "Serve inference traffic across several compiled models on the \
          simulated devices: dynamic batching under a max-batch/max-delay \
          policy, cross-request activation slabs from a shared arena, and \
          heterogeneous dispatch of fused groups across cpu+gpu+vdla. \
          Deterministic: a fixed trace gives byte-identical --results at any \
          -j.")
    Term.(
      const run $ serving_models_arg $ full $ trace_file $ tenants_arg
      $ rate_arg $ slo_ms_arg $ horizon_arg $ traffic_seed_arg $ max_batch
      $ max_delay_ms $ inflight $ no_hetero $ lanes $ target $ results
      $ journal $ require_slo $ trace_out_arg $ metrics_out_arg)

let main =
  Cmd.group
    (Cmd.info "tvmc" ~version:"1.0" ~doc:"OCaml TVM reproduction driver")
    [
      compile_cmd; tune_cmd; profile_cmd; report_cmd; devices_cmd; submit_cmd;
      serve_cmd; store_cmd; traffic_cmd; serve_rt_cmd;
    ]

let () =
  Tvm_graph.Std_ops.register_all ();
  exit (Cmd.eval main)
