(* Automated schedule optimization (§5) on one convolution: explore the
   schedule space with the ML cost model, random search, and the
   genetic-algorithm baseline, and watch the ML model's rank accuracy
   improve as measurements accumulate — Fig 11/12's machinery.

   Run with: dune exec examples/autotune_conv.exe *)

open Tvm_tir
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
module Templates = Tvm_autotune.Templates
module Tuner = Tvm_autotune.Tuner
module Cfg = Tvm_autotune.Cfg_space
module Pool = Tvm_rpc.Device_pool
module Machine = Tvm_sim.Machine

let () =
  (* The C7 workload from Table 2: conv2d 28x28, 128->256, 3x3 stride 2. *)
  let data = Tensor.placeholder "data" (List.map Expr.int [ 1; 128; 28; 28 ]) in
  let weight = Tensor.placeholder "weight" (List.map Expr.int [ 256; 128; 3; 3 ]) in
  let conv = Op.conv2d ~name:"c7" ~stride:2 data weight in
  let tpl = Templates.gpu_flat ~name:"autotune_c7" conv in
  Printf.printf "schedule space: %d configurations, knobs:\n"
    (Cfg.size tpl.Tuner.tpl_space);
  List.iter
    (fun k ->
      Printf.printf "  %-12s %d choices\n" k.Cfg.k_name (Array.length k.Cfg.k_choices))
    tpl.Tuner.tpl_space.Cfg.knobs;

  (* The measurement side: a simulated RPC device pool with one GPU
     (Fig 11's device cluster). *)
  let pool = Pool.create [ Pool.Gpu_dev Machine.titan_x ] in
  let measure = Pool.measure_fn pool ~kind_pred:Pool.is_gpu in

  let budget = 128 in
  List.iter
    (fun method_ ->
      let res = Tuner.tune ~method_ ~measure ~n_trials:budget tpl in
      Printf.printf "\n%-10s best %.3f ms after %d trials%s\n"
        (Tuner.method_to_string method_)
        (1e3 *. res.Tuner.best_time) budget
        (if Float.is_nan res.Tuner.model_accuracy then ""
         else Printf.sprintf " (cost-model rank accuracy %.2f)" res.Tuner.model_accuracy);
      Printf.printf "  best config: %s\n" (Cfg.to_string res.Tuner.best_config))
    [ Tuner.Ml_model; Tuner.Random_search; Tuner.Genetic_algorithm ];

  let devices = Pool.stats pool in
  Printf.printf "\ndevice pool: %s\n"
    (String.concat "; "
       (List.map
          (fun (name, jobs, busy) -> Printf.sprintf "%s ran %d jobs (%.1fs busy)" name jobs busy)
          devices));

  (* The same search on an unreliable fleet: two GPUs with 20%
     transient faults, one of which also dies early. Retries and
     quarantine keep the loop converging on the survivors. *)
  Printf.printf "\n--- fault-tolerant tuning on a flaky fleet ---\n";
  let fault_plan =
    Tvm_rpc.Fault.with_device
      (Tvm_rpc.Fault.transient ~seed:1 ~rate:0.2 ())
      1
      { Tvm_rpc.Fault.no_fault_rates with Tvm_rpc.Fault.death_rate = 0.1 }
  in
  let flaky =
    Pool.create ~fault_plan [ Pool.Gpu_dev Machine.titan_x; Pool.Gpu_dev Machine.titan_x ]
  in
  let db = Tuner.Db.create () in
  let res =
    Tuner.tune ~db
      ~method_:Tuner.Ml_model
      ~measure:(Pool.measure_fn flaky ~kind_pred:Pool.is_gpu)
      ~n_trials:budget tpl
  in
  Printf.printf "best on flaky fleet: %.3f ms\n" (1e3 *. res.Tuner.best_time);
  Printf.printf "trial outcomes: %s\n"
    (String.concat ", "
       (List.map (fun (s, n) -> Printf.sprintf "%s=%d" s n) (Tuner.Db.status_counts db)));
  List.iter
    (fun (h : Pool.device_health) ->
      Printf.printf "  device %d: %d ok / %d attempts, %d failures%s%s\n"
        h.Pool.h_dev_id h.Pool.h_jobs_run h.Pool.h_attempts h.Pool.h_failures
        (if h.Pool.h_dead then " [dead]" else "")
        (if h.Pool.h_quarantined then " [quarantined]" else ""))
    (Pool.health flaky)
