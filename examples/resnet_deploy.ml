(* End-to-end deployment of a (scaled-down) ResNet-18: compile for a
   server GPU and for an embedded CPU, compare against the modeled
   framework baselines, and run the compiled kernels functionally.

   This is the workload behind Figs 14 and 16, at reduced width/input
   so the functional check completes quickly.

   Run with: dune exec examples/resnet_deploy.exe *)

module Models = Tvm_models.Models
module Exec = Tvm_runtime.Graph_executor
module Nd = Tvm_nd.Ndarray
module Vendor = Tvm_baselines.Vendor
module Framework = Tvm_baselines.Framework
module Machine = Tvm_sim.Machine

let () =
  let graph = Models.resnet18 ~input_hw:32 ~width:0.25 ~num_classes:10 () in
  Printf.printf "ResNet-18 (width 0.25, 32x32 input): %d nodes, %d ops\n"
    (Tvm_graph.Graph_ir.num_nodes graph)
    (Tvm_graph.Graph_ir.op_count graph);

  (* Compile for the GPU target with a short tuning run per kernel. *)
  let spec = Tvm_spec.Job_spec.make ~trials:32 () in
  let _result, exec = Tvm.Compiler.build_executor ~spec graph (Tvm.Target.cuda ()) in

  (* Functional run: reference kernels vs the compiled loop programs. *)
  Exec.set_params exec (Models.random_params graph);
  List.iter (fun (n, v) -> Exec.set_input exec n v) (Models.random_inputs graph);
  Exec.run ~mode:`Reference exec;
  let reference = Nd.copy (Exec.get_output exec 0) in
  Exec.run ~mode:`Compiled exec;
  let compiled = Exec.get_output exec 0 in
  Printf.printf "functional check: max |compiled - reference| = %g\n"
    (Nd.max_abs_diff reference compiled);

  (* Latency estimates vs the framework baselines on the same graph. *)
  let tvm_gpu = Exec.estimated_time_s exec in
  let mxnet = Framework.run_time_s Framework.mxnet (Vendor.Gpu_m Machine.titan_x) graph in
  let tf = Framework.run_time_s Framework.tensorflow (Vendor.Gpu_m Machine.titan_x) graph in
  Printf.printf "\nestimated latency (Titan X):\n";
  Printf.printf "  TVM        %8.3f ms\n" (1e3 *. tvm_gpu);
  Printf.printf "  MXNet      %8.3f ms\n" (1e3 *. mxnet);
  Printf.printf "  Tensorflow %8.3f ms\n" (1e3 *. tf);

  (* Memory planning effect (§3's static memory planner). *)
  let mem = Exec.memory_stats exec in
  let mb b = float_of_int b /. 1e6 in
  Printf.printf "\nactivation memory: %.2f MB pooled vs %.2f MB naive (%.1fx)\n"
    (mb mem.Exec.pooled_bytes) (mb mem.Exec.naive_bytes)
    (mb mem.Exec.naive_bytes /. Float.max 1e-6 (mb mem.Exec.pooled_bytes));

  (* Same model compiled for the embedded CPU. *)
  let _result2, exec2 =
    Tvm.Compiler.build_executor ~spec graph (Tvm.Target.arm_cpu ())
  in
  Printf.printf "\nestimated latency (ARM A53): TVM %.3f ms vs TFLite %.3f ms\n"
    (1e3 *. Exec.estimated_time_s exec2)
    (1e3 *. Framework.run_time_s Framework.tflite (Vendor.Cpu_m Machine.arm_a53) graph)
