(* Quickstart: the paper's end-user flow (§2) in OCaml.

   Build a small model graph, compile it for a (simulated) GPU target,
   deploy it through the graph executor, and inspect what the compiler
   generated.

   Run with: dune exec examples/quickstart.exe *)

module G = Tvm_graph.Graph_ir
module Attrs = Tvm_graph.Attrs
module Nd = Tvm_nd.Ndarray
module Exec = Tvm_runtime.Graph_executor

let () = Tvm_graph.Std_ops.register_all ()

let () =
  (* 1. Describe the model as a computational graph (a conv → bn → relu
        → pool → dense classifier head). *)
  let b = G.builder () in
  let data = G.input b "data" [ 1; 3; 16; 16 ] in
  let w1 = G.param b "w1" [ 8; 3; 3; 3 ] in
  let conv =
    G.op b "conv2d" ~name:"conv1"
      ~attrs:[ ("stride", Attrs.Int 1); ("padding", Attrs.Str "same") ]
      [ data; w1 ]
  in
  let scale = G.param b "bn_scale" [ 8 ] in
  let shift = G.param b "bn_shift" [ 8 ] in
  let bn = G.op b "batch_norm" ~name:"bn1" [ conv; scale; shift ] in
  let relu = G.op b "relu" ~name:"relu1" [ bn ] in
  let pool =
    G.op b "max_pool2d" ~name:"pool"
      ~attrs:[ ("size", Attrs.Int 2); ("stride", Attrs.Int 2) ]
      [ relu ]
  in
  let flat = G.op b "flatten" ~name:"flat" [ pool ] in
  let wfc = G.param b "wfc" [ 10; 8 * 8 * 8 ] in
  let fc = G.op b "dense" ~name:"fc" [ flat; wfc ] in
  let prob = G.op b "softmax" ~name:"prob" [ fc ] in
  let graph = G.finalize b [ prob ] in
  Printf.printf "== computational graph ==\n%s\n" (G.to_string graph);

  (* 2. Compile: graph-level rewriting + per-operator tuning. This is
        the paper's [t.compiler.build(graph, target, params)]. *)
  let target = Tvm.Target.cuda () in
  let spec = Tvm_spec.Job_spec.make ~trials:32 () in
  let result, exec = Tvm.Compiler.build_executor ~spec graph target in
  Printf.printf "compiled %d fused kernels for %s\n"
    (List.length (Tvm_runtime.Rt_module.kernels result.Tvm.Compiler.module_))
    (Tvm.Target.name target);

  (* 3. Deploy: bind inputs and parameters, run, fetch the output. *)
  Exec.set_input exec "data" (Nd.random ~seed:1 [ 1; 3; 16; 16 ]);
  Exec.set_input exec "w1" (Nd.random ~seed:2 ~lo:(-0.3) ~hi:0.3 [ 8; 3; 3; 3 ]);
  Exec.set_input exec "bn_scale" (Nd.random ~seed:3 ~lo:0.5 ~hi:1.5 [ 8 ]);
  Exec.set_input exec "bn_shift" (Nd.random ~seed:4 ~lo:(-0.1) ~hi:0.1 [ 8 ]);
  Exec.set_input exec "wfc" (Nd.random ~seed:5 ~lo:(-0.1) ~hi:0.1 [ 10; 8 * 8 * 8 ]);
  Exec.run ~mode:`Compiled exec;
  let out = Exec.get_output exec 0 in
  Printf.printf "\nclass probabilities: %s\n"
    (String.concat ", "
       (List.map (Printf.sprintf "%.3f") (Nd.to_list out)));

  (* Cross-check the compiled kernels against reference execution. *)
  let compiled = Nd.copy out in
  Exec.run ~mode:`Reference exec;
  let reference = Exec.get_output exec 0 in
  Printf.printf "max |compiled - reference| = %g\n"
    (Nd.max_abs_diff compiled reference);

  (* 4. Look under the hood: the generated low-level code of the first
        kernel and the end-to-end latency estimate. *)
  (match Tvm_runtime.Rt_module.kernels result.Tvm.Compiler.module_ with
  | k :: _ ->
      Printf.printf "\n== generated code for %s ==\n%s\n"
        k.Tvm_runtime.Rt_module.k_name
        (Tvm_tir.Printer.stmt_to_string k.Tvm_runtime.Rt_module.k_stmt)
  | [] -> ());
  Printf.printf "\nestimated end-to-end latency on %s: %.3f ms\n"
    (Tvm.Target.name target)
    (1e3 *. Exec.estimated_time_s exec)
