(* Targeting a specialized accelerator (§4.3/§4.4/§6.4): schedule a
   GEMM for the VDLA design with tensorization onto its 16x16 matrix
   unit and virtual threading for latency hiding, then watch the
   decoupled access-execute pipeline recover parallelism from the
   dependence tokens.

   Run with: dune exec examples/vdla_accelerator.exe *)

module V = Tvm_vdla.Vdla_schedule
module Des = Tvm_vdla.Des
module Isa = Tvm_vdla.Isa
module Assemble = Tvm_vdla.Assemble
module Machine = Tvm_sim.Machine
module Nd = Tvm_nd.Ndarray
module Tensor = Tvm_te.Tensor
module Interp = Tvm_sim.Interp

let () =
  (* A 128x128x512 int8 GEMM (e.g. an im2col'd convolution tile). *)
  let wl = V.gemm_workload ~name:"demo" ~m:128 ~n:128 ~k:512 () in

  (* 1. Functional correctness through the full accelerator path:
        tensorized + vthread-lowered code, interpreted. *)
  let m, n, k = (32, 32, 64) in
  let small = V.gemm_workload ~name:"demo_small" ~m ~n ~k () in
  let stmt = V.schedule ~vthreads:2 ~kchunk:32 small in
  let av = Nd.random ~dtype:Tvm_tir.Dtype.Int8 ~seed:1 ~lo:(-4.) ~hi:4. [ m; k ] in
  let wv = Nd.random ~dtype:Tvm_tir.Dtype.Int8 ~seed:2 ~lo:(-4.) ~hi:4. [ n; k ] in
  let cv = Nd.create ~dtype:Tvm_tir.Dtype.Int32 [ m; n ] in
  Interp.run stmt
    ~bindings:
      [ (Tensor.buffer small.V.wl_a, av); (Tensor.buffer small.V.wl_w, wv);
        (Tensor.buffer small.V.wl_c, cv) ];
  let reference =
    Nd.init [ m; n ] (fun idx ->
        match idx with
        | [ y; x ] ->
            let acc = ref 0. in
            for kk = 0 to k - 1 do
              acc := !acc +. (Nd.get av [ y; kk ] *. Nd.get wv [ x; kk ])
            done;
            !acc
        | _ -> 0.)
  in
  Printf.printf "functional check (32x32x64): max diff = %g\n"
    (Nd.max_abs_diff reference cv);

  (* 2. The generated instruction stream: explicit dependence tokens
        between the LD / EX / ST units (Fig 8's output). *)
  let stream = Assemble.run (V.schedule ~vthreads:2 ~kchunk:32 small) in
  Printf.printf "\nfirst instructions of the stream (%d total):\n"
    (List.length stream);
  List.iteri
    (fun i insn -> if i < 16 then Printf.printf "  %s\n" (Isa.to_string insn))
    stream;

  (* 3. Latency hiding: the same workload with 1, 2 and 4 virtual
        threads on the discrete-event pipeline simulator (Fig 9/10). *)
  Printf.printf "\n%-10s%14s%18s%12s\n" "vthreads" "cycles" "compute util" "GOPS";
  List.iter
    (fun vt ->
      let stream, stats = V.simulate ~vthreads:vt wl in
      let _, gops = Des.roofline_point Machine.vdla stream stats in
      Printf.printf "%-10d%14.0f%17.0f%%%12.1f\n" vt stats.Des.total_cycles
        (100. *. stats.Des.compute_utilization)
        gops)
    [ 1; 2; 4 ];
  Printf.printf "\npeak: %.1f GOPS — latency hiding closes part of the gap\n"
    (Machine.accel_peak_gops Machine.vdla)
