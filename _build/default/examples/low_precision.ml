(* Ultra low-precision inference (§6.2): a 2-bit-activation /
   1-bit-weight convolution expressed as a bit-serial GEMM, tensorized
   onto the ARM micro-kernel intrinsic, checked functionally and priced
   on the embedded CPU model.

   Run with: dune exec examples/low_precision.exe *)

open Tvm_tir
module Tensor = Tvm_te.Tensor
module Bitserial = Tvm_te.Bitserial
module Tensor_intrin = Tvm_schedule.Tensor_intrin
module Sched = Tvm_schedule.Sched
module Lower = Tvm_lower.Lower
module Interp = Tvm_sim.Interp
module Cpu_model = Tvm_sim.Cpu_model
module Machine = Tvm_sim.Machine
module Nd = Tvm_nd.Ndarray

let () =
  let p, oc, k = (64, 32, 128) in
  let data = Tensor.placeholder ~dtype:Dtype.UInt2 "acts" [ Expr.int p; Expr.int k ] in
  let weight = Tensor.placeholder ~dtype:Dtype.UInt1 "wts" [ Expr.int oc; Expr.int k ] in
  let out = Bitserial.bitserial_gemm ~name:"lp_conv" data weight in

  (* Schedule: tensorize an 8-output block onto the bit-serial
     matrix-vector micro-kernel; parallelize over output pixels. *)
  let intrin = Tensor_intrin.bitserial_gemv ~abits:2 8 k in
  let sched = Sched.create [ out ] in
  let st = Sched.find sched out in
  let pp = Sched.axis st 0 and cc = Sched.axis st 1 in
  let _cco, cci = Sched.split st cc ~factor:8 in
  Sched.parallel st pp;
  Sched.tensorize st cci intrin;
  let stmt = Lower.lower ~target:Lower.Cpu sched in

  (* Functional check against a plain quantized dot product. *)
  let av = Nd.random ~dtype:Dtype.UInt2 ~seed:1 ~lo:0. ~hi:4. [ p; k ] in
  let wv = Nd.random ~dtype:Dtype.UInt1 ~seed:2 ~lo:0. ~hi:2. [ oc; k ] in
  let ov = Nd.create ~dtype:Dtype.Int32 [ p; oc ] in
  Interp.run stmt
    ~bindings:
      [ (Tensor.buffer data, av); (Tensor.buffer weight, wv); (Tensor.buffer out, ov) ];
  let reference =
    Nd.init [ p; oc ] (fun idx ->
        match idx with
        | [ y; x ] ->
            let acc = ref 0. in
            for kk = 0 to k - 1 do
              acc := !acc +. (Nd.get av [ y; kk ] *. Nd.get wv [ x; kk ])
            done;
            !acc
        | _ -> 0.)
  in
  Printf.printf "functional check: max diff = %g\n" (Nd.max_abs_diff reference ov);

  (* Cost on the ARM A53 model: bit-serial vs hypothetical fp32. *)
  let t_bs = Cpu_model.time_s Machine.arm_a53 stmt in
  let fp32_flops = Bitserial.flops_per_output ~k *. float_of_int (p * oc) in
  let t_fp32 =
    fp32_flops /. (Machine.cpu_peak_gflops Machine.arm_a53 *. 1e9 *. 0.5)
  in
  Printf.printf "bit-serial kernel: %.1f us; fp32 equivalent: %.1f us (%.1fx)\n"
    (1e6 *. t_bs) (1e6 *. t_fp32) (t_fp32 /. t_bs);
  Printf.printf "generated code:\n%s\n"
    (Printer.stmt_to_string stmt)
