examples/low_precision.mli:
