examples/resnet_deploy.mli:
