examples/resnet_deploy.ml: Float List Printf Tvm Tvm_baselines Tvm_graph Tvm_models Tvm_nd Tvm_runtime Tvm_sim
