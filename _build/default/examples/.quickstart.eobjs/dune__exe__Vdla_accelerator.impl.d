examples/vdla_accelerator.ml: List Printf Tvm_nd Tvm_sim Tvm_te Tvm_tir Tvm_vdla
