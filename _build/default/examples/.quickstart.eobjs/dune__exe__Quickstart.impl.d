examples/quickstart.ml: List Printf String Tvm Tvm_graph Tvm_nd Tvm_runtime Tvm_tir
