examples/vdla_accelerator.mli:
