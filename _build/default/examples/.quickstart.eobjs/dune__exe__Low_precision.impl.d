examples/low_precision.ml: Dtype Expr Printer Printf Tvm_lower Tvm_nd Tvm_schedule Tvm_sim Tvm_te Tvm_tir
