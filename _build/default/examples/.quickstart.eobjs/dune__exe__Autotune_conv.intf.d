examples/autotune_conv.mli:
