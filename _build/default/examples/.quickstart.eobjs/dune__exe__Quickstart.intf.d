examples/quickstart.mli:
