examples/autotune_conv.ml: Array Expr Float List Printf String Tvm_autotune Tvm_rpc Tvm_sim Tvm_te Tvm_tir
