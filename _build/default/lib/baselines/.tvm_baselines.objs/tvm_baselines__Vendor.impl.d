lib/baselines/vendor.ml: Dtype Float List Tvm_graph Tvm_sim Tvm_tir
