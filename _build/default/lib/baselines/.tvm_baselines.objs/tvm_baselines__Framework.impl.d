lib/baselines/framework.ml: List Tvm_graph Tvm_tir Vendor
