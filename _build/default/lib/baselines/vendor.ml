(** Modeled vendor operator libraries (DESIGN.md substitution table).

    Real cuDNN/cuBLAS/TFLite/ACL ship hand-written, shape-specialized
    kernels; we model each library as a *roofline efficiency profile*: a
    kernel runs at [eff × min-roofline-time] on the same machine
    models TVM's generated code is priced on, where [eff] depends on how
    well the library covers that operator/shape class. Profiles encode
    the paper's qualitative facts: cuDNN is extremely strong on common
    3×3/1×1 convolutions and weak on unconventional shapes (DQN's
    4×4 stride-2, §6.1); nobody hand-tuned depthwise convolutions yet
    (§6.1); TFLite's CPU kernels are decent but generic (§6.2); ACL
    supports fp16 (§6.3). *)

open Tvm_tir
module Machine = Tvm_sim.Machine
module Attrs = Tvm_graph.Attrs

type machine = Cpu_m of Machine.cpu | Gpu_m of Machine.gpu

let peak_gflops = function
  | Cpu_m c -> Machine.cpu_peak_gflops c
  | Gpu_m g -> Machine.gpu_peak_gflops g

let bandwidth_gbps = function
  | Cpu_m c -> c.Machine.dram_gbps
  | Gpu_m g -> g.Machine.global_gbps

let launch_s = function
  | Cpu_m _ -> 2e-6
  | Gpu_m g -> g.Machine.kernel_launch_us *. 1e-6

(** Ideal roofline time for an op given its arithmetic and unique
    memory traffic. *)
let roofline_s machine ~flops ~bytes ~dtype =
  let rate =
    match (machine, dtype) with
    | Gpu_m g, Dtype.Float16 -> g.Machine.fp16_rate
    | _ -> 1.
  in
  let compute = flops /. (peak_gflops machine *. 1e9 *. rate) in
  let mem = bytes /. (bandwidth_gbps machine *. 1e9) in
  Float.max compute mem +. launch_s machine

(** Unique bytes moved by an op: inputs + output, once each. *)
let op_bytes ~in_shapes ~out_shape ~dtype =
  let elems shape = float_of_int (List.fold_left ( * ) 1 shape) in
  let total = List.fold_left (fun acc s -> acc +. elems s) (elems out_shape) in_shapes in
  total *. Dtype.bytes dtype

(* ------------------------------------------------------------------ *)
(* Library profiles                                                     *)
(* ------------------------------------------------------------------ *)

type library = Cudnn | Cublas | Tflite | Arm_compute_lib | Mxnet_kernels

let library_name = function
  | Cudnn -> "cuDNN"
  | Cublas -> "cuBLAS"
  | Tflite -> "TFLite"
  | Arm_compute_lib -> "ARMComputeLib"
  | Mxnet_kernels -> "MXNet-kernels"

(** Shape classes a library may specialize for. *)
type conv_class = Conv_1x1 | Conv_3x3 | Conv_large_kernel | Conv_odd | Depthwise

let conv_class ~kernel ~stride ~depthwise =
  if depthwise then Depthwise
  else if kernel = 1 then Conv_1x1
  else if kernel = 3 && stride <= 2 then Conv_3x3
  else if kernel >= 7 then Conv_large_kernel
  else Conv_odd

(** Efficiency (fraction of machine roofline) per library and class.
    These constants are the substitution's only "free parameters"; they
    are calibrated once against the relative bars the paper reports and
    then frozen (EXPERIMENTS.md). *)
let rec conv_efficiency lib cls =
  match (lib, cls) with
  | Cudnn, Conv_3x3 -> 0.90
  | Cudnn, Conv_1x1 -> 0.55  (* implicit-gemm path, weak at batch 1 *)
  | Cudnn, Conv_large_kernel -> 0.60
  | Cudnn, Conv_odd -> 0.25  (* DQN's 4x4 s2: "not well optimized by cuDNN" *)
  | Cudnn, Depthwise -> 0.20  (* framework-custom kernels, not cuDNN *)
  | Tflite, Conv_3x3 -> 0.45
  | Tflite, Conv_1x1 -> 0.40
  | Tflite, Conv_large_kernel -> 0.40
  | Tflite, Conv_odd -> 0.28
  | Tflite, Depthwise -> 0.35
  | Arm_compute_lib, Conv_3x3 -> 0.65
  | Arm_compute_lib, Conv_1x1 -> 0.60
  | Arm_compute_lib, Conv_large_kernel -> 0.55
  | Arm_compute_lib, Conv_odd -> 0.30
  | Arm_compute_lib, Depthwise -> 0.40
  | Mxnet_kernels, Depthwise -> 0.22
  | Mxnet_kernels, cls -> conv_efficiency Cudnn cls
  | Cublas, _ -> 0.85

let dense_efficiency = function
  | Cublas -> 0.85
  | Cudnn | Mxnet_kernels -> 0.85  (* frameworks call cuBLAS *)
  | Tflite -> 0.55
  | Arm_compute_lib -> 0.60

let elemwise_efficiency = function
  | Tflite -> 0.70
  | Arm_compute_lib -> 0.70
  | Cudnn | Cublas | Mxnet_kernels -> 0.85

(** Time for one graph op served by [lib] on [machine]. *)
let op_time lib machine ~op ~in_shapes ~out_shape ~attrs ~dtype : float =
  let flops =
    (Tvm_graph.Op_registry.find op).Tvm_graph.Op_registry.op_flops in_shapes attrs
  in
  let bytes = op_bytes ~in_shapes ~out_shape ~dtype in
  let ideal = roofline_s machine ~flops ~bytes ~dtype in
  let eff =
    match op with
    | "conv2d" | "conv2d_transpose" ->
        let kernel, stride =
          match in_shapes with
          | [ _; [ _; _; kh; _ ] ] -> (kh, Attrs.get_int ~default:1 attrs "stride")
          | _ -> (3, 1)
        in
        conv_efficiency lib (conv_class ~kernel ~stride ~depthwise:false)
    | "depthwise_conv2d" -> conv_efficiency lib Depthwise
    | "dense" -> dense_efficiency lib
    | _ -> elemwise_efficiency lib
  in
  ideal /. Float.max 0.01 eff
