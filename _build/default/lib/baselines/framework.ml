(** Modeled deep-learning framework executors — the end-to-end
    baselines of Figs 14/16/19 (MXNet, TensorFlow, TensorFlow XLA,
    TFLite, ARM ComputeLib runner).

    A framework executes the *unfused* graph, one vendor-library kernel
    per operator, paying per-op framework dispatch overhead. The
    XLA-like configuration JIT-fuses injective chains (saving their
    intermediate traffic) but generates its own conv kernels rather
    than calling cuDNN — reproducing the paper's observation that XLA
    sometimes trails the library-backed frameworks on convolution-heavy
    nets while winning on elementwise-heavy ones. *)

open Tvm_tir
module G = Tvm_graph.Graph_ir
module Fusion = Tvm_graph.Fusion
module Attrs = Tvm_graph.Attrs

type t = {
  fw_name : string;
  fw_library : Vendor.library;
  fw_dispatch_s : float;  (** per-kernel framework overhead *)
  fw_fuses_injective : bool;
  fw_conv_penalty : float;  (** extra factor on library conv kernels *)
  fw_conv_flat_eff : float option;
      (** JIT-generated convolutions at a flat roofline efficiency,
          replacing the vendor library (XLA): shape-insensitive — worse
          than cuDNN on its tuned shapes, better on exotic ones *)
}

let mxnet = {
  fw_name = "MXNet";
  fw_library = Vendor.Mxnet_kernels;
  fw_dispatch_s = 12e-6;
  fw_fuses_injective = false;
  fw_conv_penalty = 1.0;
  fw_conv_flat_eff = None;
}

let tensorflow = {
  fw_name = "Tensorflow";
  fw_library = Vendor.Cudnn;
  fw_dispatch_s = 20e-6;
  fw_fuses_injective = false;
  fw_conv_penalty = 1.05;
  fw_conv_flat_eff = None;
}

let tensorflow_xla = {
  fw_name = "Tensorflow XLA";
  fw_library = Vendor.Cudnn;
  fw_dispatch_s = 8e-6;
  fw_fuses_injective = true;
  fw_conv_penalty = 1.0;
  fw_conv_flat_eff = Some 0.22;  (* JIT-generated convolutions, no cuDNN *)
}

let tflite = {
  fw_name = "Tensorflow Lite";
  fw_library = Vendor.Tflite;
  fw_dispatch_s = 8e-6;
  fw_fuses_injective = false;
  fw_conv_penalty = 1.0;
  fw_conv_flat_eff = None;
}

let arm_compute_lib = {
  fw_name = "ARMComputeLib";
  fw_library = Vendor.Arm_compute_lib;
  fw_dispatch_s = 10e-6;
  fw_fuses_injective = false;
  fw_conv_penalty = 1.0;
  fw_conv_flat_eff = None;
}

let is_conv = function
  | "conv2d" | "depthwise_conv2d" | "conv2d_transpose" -> true
  | _ -> false

let node_dtype ~dtype (n : G.node) =
  match dtype with Some d -> d | None -> n.G.dtype

(** Whether the framework can run the model at all — Fig 16/19 note
    "DCGAN and LSTM are not yet supported by the baseline". Embedded
    baselines lack transposed convolution support. *)
let supports t (graph : G.t) =
  match t.fw_library with
  | Vendor.Tflite | Vendor.Arm_compute_lib ->
      let unsupported = ref false in
      G.iter_ops graph (fun _ op -> if op = "conv2d_transpose" then unsupported := true);
      not !unsupported
  | Vendor.Cudnn | Vendor.Cublas | Vendor.Mxnet_kernels -> true

(** End-to-end latency of [graph] under this framework. [dtype] forces
    a precision (Fig 19's float16 runs). *)
let run_time_s ?dtype t (machine : Vendor.machine) (graph : G.t) : float =
  let op_time (n : G.node) op =
    let in_shapes = List.map (fun i -> (G.node graph i).G.shape) n.G.inputs in
    let dt = node_dtype ~dtype n in
    match (is_conv op, t.fw_conv_flat_eff) with
    | true, Some eff ->
        let flops =
          (Tvm_graph.Op_registry.find op).Tvm_graph.Op_registry.op_flops in_shapes
            n.G.attrs
        in
        let bytes = Vendor.op_bytes ~in_shapes ~out_shape:n.G.shape ~dtype:dt in
        Vendor.roofline_s machine ~flops ~bytes ~dtype:dt /. eff
    | true, None ->
        t.fw_conv_penalty
        *. Vendor.op_time t.fw_library machine ~op ~in_shapes ~out_shape:n.G.shape
             ~attrs:n.G.attrs ~dtype:dt
    | false, _ ->
        Vendor.op_time t.fw_library machine ~op ~in_shapes ~out_shape:n.G.shape
          ~attrs:n.G.attrs ~dtype:dt
  in
  if not t.fw_fuses_injective then
    let total = ref 0. in
    G.iter_ops graph (fun n op -> total := !total +. op_time n op +. t.fw_dispatch_s);
    !total
  else
    (* XLA-like: one kernel per fused group; the group costs its anchor
       plus the flops of absorbed injectives at streaming bandwidth
       (their intermediate tensors never hit memory). *)
    let groups = Fusion.fuse graph in
    List.fold_left
      (fun acc g ->
        let anchor = G.node graph g.Fusion.g_anchor in
        let anchor_op =
          match anchor.G.kind with G.Op op -> op | _ -> "add"
        in
        let anchor_t = op_time anchor anchor_op in
        let epilogue_flops =
          List.fold_left
            (fun acc id ->
              if id = g.Fusion.g_anchor then acc
              else
                let n = G.node graph id in
                match n.G.kind with
                | G.Op op ->
                    let in_shapes =
                      List.map (fun i -> (G.node graph i).G.shape) n.G.inputs
                    in
                    acc
                    +. (Tvm_graph.Op_registry.find op).Tvm_graph.Op_registry.op_flops
                         in_shapes n.G.attrs
                | _ -> acc)
            0. g.Fusion.g_nodes
        in
        (* fused epilogues stream the anchor's output once more *)
        let out_elems =
          float_of_int (List.fold_left ( * ) 1 anchor.G.shape)
        in
        let epilogue_t =
          (epilogue_flops /. (Vendor.peak_gflops machine *. 1e9))
          +. (2. *. out_elems *. 4. /. (Vendor.bandwidth_gbps machine *. 1e9))
        in
        acc +. anchor_t +. epilogue_t +. t.fw_dispatch_s)
      0. groups
