(** Compilation targets — the [t.target.cuda()] of §2's example.

    Each target pairs a back-end kind with a simulated machine
    description; the lowering pipeline and the timing model used for
    measurements are both selected through it. *)

module Machine = Tvm_sim.Machine

type t =
  | Cuda of Machine.gpu  (** server-class GPU (§6.1) *)
  | Llvm of Machine.cpu  (** CPU back-end (§6.2) *)
  | Opencl_mali of Machine.gpu  (** embedded GPU (§6.3) *)

(** NVIDIA Titan X by default. *)
val cuda : ?gpu:Machine.gpu -> unit -> t

(** ARM Cortex A53 (the paper's embedded CPU board). *)
val arm_cpu : ?cpu:Machine.cpu -> unit -> t

(** Generic LLVM CPU target (server-class host by default). *)
val llvm : ?cpu:Machine.cpu -> unit -> t

(** ARM Mali T860MP4. *)
val mali : ?gpu:Machine.gpu -> unit -> t

val name : t -> string
val is_gpu : t -> bool

(** Estimated run time of a lowered kernel on this target (noise-free;
    the measurement path adds noise via the device pool). *)
val time_s : t -> Tvm_tir.Stmt.t -> float

val lower_kind : t -> Tvm_lower.Lower.target_kind
val device_kind : t -> Tvm_rpc.Device_pool.device_kind
