(** Compilation targets — the [t.target.cuda()] of §2's example. *)

module Machine = Tvm_sim.Machine

type t =
  | Cuda of Machine.gpu  (** server-class GPU (§6.1) *)
  | Llvm of Machine.cpu  (** CPU back-end (§6.2) *)
  | Opencl_mali of Machine.gpu  (** embedded GPU (§6.3) *)

(** NVIDIA Titan X. *)
let cuda ?(gpu = Machine.titan_x) () = Cuda gpu

(** ARM Cortex A53 (the paper's embedded CPU board). *)
let arm_cpu ?(cpu = Machine.arm_a53) () = Llvm cpu

(** Generic LLVM CPU target. *)
let llvm ?(cpu = Machine.xeon_host) () = Llvm cpu

(** ARM Mali T860MP4. *)
let mali ?(gpu = Machine.mali_t860) () = Opencl_mali gpu

let name = function
  | Cuda g -> "cuda/" ^ g.Machine.gpu_name
  | Llvm c -> "llvm/" ^ c.Machine.cpu_name
  | Opencl_mali g -> "opencl/" ^ g.Machine.gpu_name

let is_gpu = function Cuda _ | Opencl_mali _ -> true | Llvm _ -> false

(** Estimated run time of a lowered kernel on this target (noise-free;
    the measurement path adds noise via the device pool). *)
let time_s t stmt =
  match t with
  | Cuda g | Opencl_mali g -> Tvm_sim.Gpu_model.time_s g stmt
  | Llvm c -> Tvm_sim.Cpu_model.time_s c stmt

let lower_kind t : Tvm_lower.Lower.target_kind =
  if is_gpu t then Tvm_lower.Lower.Gpu else Tvm_lower.Lower.Cpu

let device_kind t : Tvm_rpc.Device_pool.device_kind =
  match t with
  | Cuda g | Opencl_mali g -> Tvm_rpc.Device_pool.Gpu_dev g
  | Llvm c -> Tvm_rpc.Device_pool.Cpu_dev c
