lib/core/target.mli: Tvm_lower Tvm_rpc Tvm_sim Tvm_tir
