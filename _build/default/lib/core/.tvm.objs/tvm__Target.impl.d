lib/core/target.ml: Tvm_lower Tvm_rpc Tvm_sim
