lib/core/compiler.ml: Float Hashtbl List Printf Random String Target Tvm_autotune Tvm_graph Tvm_rpc Tvm_runtime Tvm_te
