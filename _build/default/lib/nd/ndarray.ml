(** N-dimensional arrays backing the functional execution paths.

    Values are stored as [float array] regardless of dtype; integer and
    sub-byte dtypes quantize on write ({!set}), which matches how the
    reference kernels and the IR interpreter use them (the VDLA works on
    int8/int32, the low-precision kernels on uint1/uint2). *)

open Tvm_tir

type t = {
  shape : int array;
  strides : int array;  (** row-major *)
  data : float array;
  dtype : Dtype.t;
}

let compute_strides shape =
  let n = Array.length shape in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * shape.(i + 1)
  done;
  strides

let num_elems_of_shape shape = Array.fold_left ( * ) 1 shape

let create ?(dtype = Dtype.Float32) shape =
  let shape = Array.of_list shape in
  {
    shape;
    strides = compute_strides shape;
    data = Array.make (num_elems_of_shape shape) 0.;
    dtype;
  }

let shape t = Array.to_list t.shape
let dtype t = t.dtype
let num_elems t = Array.length t.data
let size_bytes t = float_of_int (num_elems t) *. Dtype.bytes t.dtype

(** Quantize [v] to what storage of this dtype can represent. *)
let quantize dtype v =
  match dtype with
  | Dtype.Float32 | Dtype.Float16 -> v
  | Dtype.Int64 | Dtype.Int32 -> Float.of_int (Float.to_int v)
  | Dtype.Int8 ->
      let i = Float.to_int v in
      Float.of_int (max (-128) (min 127 i))
  | Dtype.UInt1 | Dtype.Bool ->
      let i = Float.to_int v in
      Float.of_int (max 0 (min 1 i))
  | Dtype.UInt2 ->
      let i = Float.to_int v in
      Float.of_int (max 0 (min 3 i))

let flat_index t idx =
  let n = Array.length t.shape in
  if List.length idx <> n then
    invalid_arg
      (Printf.sprintf "Ndarray: rank mismatch (%d indices for rank %d)"
         (List.length idx) n);
  let flat = ref 0 in
  List.iteri
    (fun d i ->
      if i < 0 || i >= t.shape.(d) then
        invalid_arg
          (Printf.sprintf "Ndarray: index %d out of bounds for dim %d (size %d)" i d
             t.shape.(d));
      flat := !flat + (i * t.strides.(d)))
    idx;
  !flat

let get t idx = t.data.(flat_index t idx)
let set t idx v = t.data.(flat_index t idx) <- quantize t.dtype v
let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- quantize t.dtype v

let fill t v =
  let v = quantize t.dtype v in
  Array.fill t.data 0 (Array.length t.data) v

let copy t = { t with data = Array.copy t.data }

let copy_into ~src ~dst =
  if num_elems src <> num_elems dst then invalid_arg "Ndarray.copy_into: size";
  Array.blit src.data 0 dst.data 0 (num_elems src)

(** Build from an index-function; indices supplied as a list, row-major
    iteration order. *)
let init ?(dtype = Dtype.Float32) shape f =
  let t = create ~dtype shape in
  let rank = Array.length t.shape in
  let idx = Array.make rank 0 in
  let n = num_elems t in
  for flat = 0 to n - 1 do
    let rem = ref flat in
    for d = 0 to rank - 1 do
      idx.(d) <- !rem / t.strides.(d);
      rem := !rem mod t.strides.(d)
    done;
    t.data.(flat) <- quantize dtype (f (Array.to_list idx))
  done;
  t

let of_list ?(dtype = Dtype.Float32) shape values =
  let t = create ~dtype shape in
  if List.length values <> num_elems t then invalid_arg "Ndarray.of_list: size";
  List.iteri (fun i v -> t.data.(i) <- quantize dtype v) values;
  t

let to_list t = Array.to_list t.data

(** Deterministic pseudo-random fill; used pervasively so tests and
    benches are reproducible without global RNG state. *)
let random ?(dtype = Dtype.Float32) ?(seed = 0) ?(lo = -1.) ?(hi = 1.) shape =
  let t = create ~dtype shape in
  let state = ref (seed land 0x3FFFFFFF) in
  let next () =
    (* xorshift-like LCG, deterministic across platforms *)
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !state /. float_of_int 0x3FFFFFFF
  in
  for i = 0 to num_elems t - 1 do
    t.data.(i) <- quantize dtype (lo +. ((hi -. lo) *. next ()))
  done;
  t

let map f t = { t with data = Array.map (fun v -> quantize t.dtype (f v)) t.data }

let map2 f a b =
  if a.shape <> b.shape then invalid_arg "Ndarray.map2: shape";
  { a with data = Array.init (num_elems a) (fun i -> quantize a.dtype (f a.data.(i) b.data.(i))) }

let fold f acc t = Array.fold_left f acc t.data

let max_abs_diff a b =
  if num_elems a <> num_elems b then invalid_arg "Ndarray.max_abs_diff: size";
  let m = ref 0. in
  for i = 0 to num_elems a - 1 do
    m := Float.max !m (Float.abs (a.data.(i) -. b.data.(i)))
  done;
  !m

let equal_approx ?(tol = 1e-4) a b =
  a.shape = b.shape && max_abs_diff a b <= tol

let pp fmt t =
  Format.fprintf fmt "ndarray<%s>[%s]"
    (Dtype.to_string t.dtype)
    (String.concat "x" (List.map string_of_int (shape t)))

let to_string t = Format.asprintf "%a" pp t
