(** N-dimensional arrays backing the functional execution paths.

    Values are stored as [float array] regardless of dtype; integer and
    sub-byte dtypes quantize on write ({!set}), matching how the
    reference kernels and the IR interpreter use them (the VDLA works on
    int8/int32, the low-precision kernels on uint1/uint2). *)

open Tvm_tir

type t = {
  shape : int array;
  strides : int array;  (** row-major *)
  data : float array;
  dtype : Dtype.t;
}

(** [create ?dtype shape] allocates a zero-filled array. *)
val create : ?dtype:Dtype.t -> int list -> t

val shape : t -> int list
val dtype : t -> Dtype.t
val num_elems : t -> int
val size_bytes : t -> float

(** Clamp/truncate [v] to what storage of this dtype can represent. *)
val quantize : Dtype.t -> float -> float

(** Multi-dimensional accessors; raise [Invalid_argument] on rank
    mismatch or out-of-bounds indices. *)
val get : t -> int list -> float

val set : t -> int list -> float -> unit
val get_flat : t -> int -> float
val set_flat : t -> int -> float -> unit
val fill : t -> float -> unit
val copy : t -> t

(** Byte-for-byte copy between equal-element-count arrays. *)
val copy_into : src:t -> dst:t -> unit

(** Build from an index function (indices row-major). *)
val init : ?dtype:Dtype.t -> int list -> (int list -> float) -> t

val of_list : ?dtype:Dtype.t -> int list -> float list -> t
val to_list : t -> float list

(** Deterministic pseudo-random fill: same [seed] ⇒ same values, across
    platforms — tests and benches rely on this reproducibility. *)
val random :
  ?dtype:Dtype.t -> ?seed:int -> ?lo:float -> ?hi:float -> int list -> t

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
val max_abs_diff : t -> t -> float

(** Shape equality plus element-wise tolerance (default [1e-4]). *)
val equal_approx : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
