lib/nd/ndarray.mli: Dtype Format Tvm_tir
