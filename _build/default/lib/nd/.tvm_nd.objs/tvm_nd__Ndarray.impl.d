lib/nd/ndarray.ml: Array Dtype Float Format List Printf String Tvm_tir
