(** Simulated distributed device pool with an RPC-style tracker (§5.4,
    Fig 11).

    Clients submit measurement jobs for a device type; the tracker
    assigns each job to the first free matching device, accounting for
    upload, compilation and repeated timed runs on a simulated wall
    clock. Measurements come from the analytical machine models plus
    deterministic noise keyed by the configuration. *)

module Machine = Tvm_sim.Machine

type device_kind =
  | Cpu_dev of Machine.cpu
  | Gpu_dev of Machine.gpu

val kind_name : device_kind -> string

type device = {
  dev_id : int;
  dev_kind : device_kind;
  mutable busy_until : float;  (** simulated wall-clock seconds *)
  mutable jobs_run : int;
}

type t = {
  devices : device list;
  mutable clock : float;
  mutable total_jobs : int;
  noise : float;  (** relative measurement noise amplitude *)
  repeats : int;  (** timed repetitions per measurement *)
  overhead_s : float;  (** upload + build + RPC round trip per job *)
}

val create :
  ?noise:float -> ?repeats:int -> ?overhead_s:float -> device_kind list -> t

(** Deterministic noise in [-1, 1] from a key (config hash). *)
val noise_of_key : int -> float

exception No_matching_device of string

(** Model run time of a lowered kernel on a device. *)
val model_time : device -> Tvm_tir.Stmt.t -> float

(** Submit a measurement job: returns the measured (noisy) run time and
    advances the pool's simulated clock. [key] seeds the deterministic
    noise so a configuration always measures the same. *)
val measure :
  ?key:int -> t -> kind_pred:(device_kind -> bool) -> Tvm_tir.Stmt.t -> float

(** Wall-clock time at which all submitted jobs have finished. *)
val makespan : t -> float

val is_gpu : device_kind -> bool
val is_cpu : device_kind -> bool

(** Tuner-ready measurement callback for a pool and device predicate. *)
val measure_fn :
  t -> kind_pred:(device_kind -> bool) -> Tvm_autotune.Tuner.measure_fn

(** Per-device (name, jobs run, busy seconds). *)
val stats : t -> (string * int * float) list
