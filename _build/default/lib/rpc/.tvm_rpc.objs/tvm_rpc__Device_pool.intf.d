lib/rpc/device_pool.mli: Tvm_autotune Tvm_sim Tvm_tir
