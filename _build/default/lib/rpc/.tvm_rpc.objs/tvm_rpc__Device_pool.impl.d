lib/rpc/device_pool.ml: Float List Stmt Tvm_autotune Tvm_sim Tvm_tir
