(** Graph executor: the runtime of §2's deployment example
    ([runtime.create] / [set_input] / [run] / [get_output]).

    Storage for intermediates follows the static memory plan; execution
    walks the fused groups in order. Two functional modes exist:

    - [`Compiled]: run each kernel's lowered loop program through the
      IR interpreter — executes exactly what the compiler produced
      (used by correctness tests);
    - [`Reference]: run each node's reference ndarray kernel — much
      faster, used for end-to-end functional checks on larger nets.

    Timing always comes from the kernels' model estimates plus a
    per-launch framework overhead. *)

module Nd = Tvm_nd.Ndarray
module Graph_ir = Tvm_graph.Graph_ir
module Fusion = Tvm_graph.Fusion
module Op_registry = Tvm_graph.Op_registry
module Mem_plan = Tvm_graph.Mem_plan

type t = {
  graph : Graph_ir.t;
  groups : Fusion.group list;
  kernels : (int * Rt_module.kernel) list;  (** group id → kernel *)
  plan : Mem_plan.plan;
  values : (int, Nd.t) Hashtbl.t;  (** node id → current value *)
  mutable launch_overhead_s : float;
}

let create ?(launch_overhead_s = 10e-6) ~(graph : Graph_ir.t)
    ~(groups : Fusion.group list) ~(module_ : Rt_module.t) () : t =
  let kernels =
    List.map (fun (k : Rt_module.kernel) -> (k.Rt_module.k_group, k)) (Rt_module.kernels module_)
  in
  {
    graph;
    groups;
    kernels;
    plan = Mem_plan.plan graph groups;
    values = Hashtbl.create 32;
    launch_overhead_s;
  }

let set_input t name (v : Nd.t) =
  match
    Array.to_list t.graph.Graph_ir.nodes
    |> List.find_opt (fun n ->
           n.Graph_ir.name = name
           && (n.Graph_ir.kind = Graph_ir.Input || n.Graph_ir.kind = Graph_ir.Param))
  with
  | Some n ->
      if Nd.shape v <> n.Graph_ir.shape then
        invalid_arg
          (Printf.sprintf "set_input %s: shape mismatch ([%s] vs node [%s])" name
             (String.concat "x" (List.map string_of_int (Nd.shape v)))
             (String.concat "x" (List.map string_of_int n.Graph_ir.shape)));
      Hashtbl.replace t.values n.Graph_ir.id v
  | None -> invalid_arg ("set_input: no input or param named " ^ name)

(** Bind all parameters at once (the [set_input] with params of §2). *)
let set_params t (params : (int * Nd.t) list) =
  List.iter (fun (id, v) -> Hashtbl.replace t.values id v) params

let value_of t id =
  match Hashtbl.find_opt t.values id with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "executor: node %d (%s) has no value — missing set_input?"
           id (Graph_ir.node t.graph id).Graph_ir.name)

let run_group_reference t (g : Fusion.group) =
  List.iter
    (fun id ->
      let n = Graph_ir.node t.graph id in
      match n.Graph_ir.kind with
      | Graph_ir.Op op ->
          let impl = Op_registry.find op in
          let ins = List.map (value_of t) n.Graph_ir.inputs in
          let out = impl.Op_registry.ref_exec ins n.Graph_ir.attrs in
          Hashtbl.replace t.values id out
      | Graph_ir.Input | Graph_ir.Param -> ())
    g.Fusion.g_nodes

let run_group_compiled t (g : Fusion.group) =
  match List.assoc_opt g.Fusion.g_id t.kernels with
  | None ->
      (* No kernel was compiled for this group (e.g. CPU fallback):
         reference execution keeps the graph runnable. *)
      run_group_reference t g
  | Some k ->
      let inputs = List.map (value_of t) g.Fusion.g_inputs in
      let out_node = Graph_ir.node t.graph g.Fusion.g_output in
      let output = Nd.create ~dtype:out_node.Graph_ir.dtype out_node.Graph_ir.shape in
      Rt_module.run_kernel k ~inputs ~output;
      Hashtbl.replace t.values g.Fusion.g_output output

let run ?(mode = `Reference) t =
  List.iter
    (fun g ->
      match mode with
      | `Reference -> run_group_reference t g
      | `Compiled -> run_group_compiled t g)
    t.groups

let get_output t i =
  let id = List.nth t.graph.Graph_ir.outputs i in
  value_of t id

(** Estimated end-to-end latency: sum of kernel estimates plus launch
    overhead per group (the framework overhead MXNet/TF also pay). *)
let estimated_time_s t =
  List.fold_left
    (fun acc g ->
      let k_time =
        match List.assoc_opt g.Fusion.g_id t.kernels with
        | Some k -> k.Rt_module.k_time_s
        | None -> 0.
      in
      acc +. k_time +. t.launch_overhead_s)
    0. t.groups

(** Memory footprint comparison from the static plan. *)
let memory_stats t = (t.plan.Mem_plan.total_bytes, t.plan.Mem_plan.naive_bytes)
