lib/runtime/rt_module.ml: Expr Lazy List Printer Printf Stmt String Tvm_nd Tvm_sim Tvm_tir
