lib/runtime/graph_executor.ml: Array Hashtbl List Printf Rt_module String Tvm_graph Tvm_nd
