(** Deployable module: the compiled artifact of §2's end-user example —
    "the final optimized computational graph (graph), generated
    operators (lib), and module parameters (params)".

    Each kernel packages the lowered loop program of one fused operator
    group, its I/O binding order, and its estimated run time on the
    compilation target. *)

open Tvm_tir
module Nd = Tvm_nd.Ndarray

type kernel = {
  k_name : string;
  k_group : int;  (** fusion group id this kernel implements *)
  k_stmt : Stmt.t;
  k_input_buffers : Expr.buffer list;  (** bind order = group input order *)
  k_output_buffer : Expr.buffer;
  k_time_s : float;  (** estimated run time on the compilation target *)
  k_flops : float;
}

type t = {
  m_target_name : string;
  m_kernels : kernel list;
  m_source : string Lazy.t;  (** printable low-level code of all kernels *)
}

let create ~target_name kernels =
  {
    m_target_name = target_name;
    m_kernels = kernels;
    m_source =
      lazy
        (String.concat "\n\n"
           (List.map
              (fun k ->
                Printf.sprintf "// kernel %s (%.3f ms est)\n%s" k.k_name
                  (1e3 *. k.k_time_s)
                  (Printer.stmt_to_string k.k_stmt))
              kernels));
  }

let kernels t = t.m_kernels
let find_kernel t name = List.find_opt (fun k -> k.k_name = name) t.m_kernels
let source t = Lazy.force t.m_source

let total_time_s ?(per_kernel_overhead = 0.) t =
  List.fold_left
    (fun acc k -> acc +. k.k_time_s +. per_kernel_overhead)
    0. t.m_kernels

(** Execute one kernel functionally on the given arrays. *)
let run_kernel (k : kernel) ~(inputs : Nd.t list) ~(output : Nd.t) =
  let bindings =
    try (k.k_output_buffer, output) :: List.combine k.k_input_buffers inputs
    with Invalid_argument _ ->
      invalid_arg
        (Printf.sprintf "kernel %s: expected %d inputs, got %d" k.k_name
           (List.length k.k_input_buffers) (List.length inputs))
  in
  Tvm_sim.Interp.run k.k_stmt ~bindings
