lib/tir/printer.ml: Dtype Expr Format List Stmt String
