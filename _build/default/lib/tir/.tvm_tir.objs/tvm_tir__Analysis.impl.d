lib/tir/analysis.ml: Dtype Expr Float Hashtbl Interval List Option Printer Stmt Visit
