lib/tir/dtype.mli: Format
