lib/tir/dtype.ml: Format
