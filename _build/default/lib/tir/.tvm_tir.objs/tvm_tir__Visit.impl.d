lib/tir/visit.ml: Expr List Stmt
