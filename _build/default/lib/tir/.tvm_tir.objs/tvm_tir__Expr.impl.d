lib/tir/expr.ml: Dtype Float Format List Printf Stdlib String
