lib/tir/stmt.ml: Expr List Option
