lib/tir/simplify.ml: Expr Fun List Option Stmt Visit
