lib/tir/interval.mli: Expr
