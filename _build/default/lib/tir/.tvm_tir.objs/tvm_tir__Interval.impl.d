lib/tir/interval.ml: Expr Hashtbl List Printf
