(** Interval analysis over index expressions.

    Bound inference for lowering (which buffer region does a consumer
    touch?) and footprint analysis for the timing models and cost-model
    features both reduce to evaluating an index expression over an
    environment mapping loop variables to integer ranges. The analysis
    is exact on the affine fragment our schedule templates generate
    (with divisor splits), and conservative otherwise. *)

type t = { lo : int; hi : int }  (** inclusive bounds *)

(** [make lo hi]; raises [Invalid_argument] if [lo > hi]. *)
val make : int -> int -> t

val point : int -> t
val of_extent : min:int -> extent:int -> t
val length : t -> int
val union : t -> t -> t
val contains : t -> int -> bool
val to_string : t -> string

(** Interval arithmetic. [div]/[modulo] require a positive constant
    divisor and raise [Invalid_argument] otherwise. *)
val add : t -> t -> t

val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val modulo : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

exception Not_analyzable of string

(** Evaluate an expression to an interval under [env : var id ->
    interval option]; raises {!Not_analyzable} on constructs outside the
    analyzable fragment (loads, calls, unbound variables). *)
val eval : (int -> t option) -> Expr.t -> t

(** {!eval} under an association list from variables to intervals. *)
val eval_under : (Expr.var * t) list -> Expr.t -> t

(** Constant-fold to an int when the interval is a single point. *)
val const_of_expr : Expr.t -> int option
