(** Scalar data types of the tensor IR.

    Mirrors the data types exercised by the paper: [Float32]/[Float16] for
    the GPU experiments (Fig 19 evaluates both), [Int8]/[Int32] for the
    VDLA accelerator (8-bit multiplies accumulated into 32-bit registers,
    §6.4), and the sub-byte [UInt1]/[UInt2] types used by the ultra
    low-precision operators of §6.2 (Fig 18). *)

type t =
  | Float32
  | Float16
  | Int64
  | Int32
  | Int8
  | UInt1
  | UInt2
  | Bool

let to_string = function
  | Float32 -> "float32"
  | Float16 -> "float16"
  | Int64 -> "int64"
  | Int32 -> "int32"
  | Int8 -> "int8"
  | UInt1 -> "uint1"
  | UInt2 -> "uint2"
  | Bool -> "bool"

let of_string = function
  | "float32" -> Float32
  | "float16" -> Float16
  | "int64" -> Int64
  | "int32" -> Int32
  | "int8" -> Int8
  | "uint1" -> UInt1
  | "uint2" -> UInt2
  | "bool" -> Bool
  | s -> invalid_arg ("Dtype.of_string: " ^ s)

(** Width in bits; sub-byte types report their true width, which the
    bit-serial kernels rely on when packing lanes into int32 words. *)
let bits = function
  | Float32 -> 32
  | Float16 -> 16
  | Int64 -> 64
  | Int32 -> 32
  | Int8 -> 8
  | UInt1 -> 1
  | UInt2 -> 2
  | Bool -> 1

(** Storage size in bytes as used by the memory planner and the timing
    models. Sub-byte types are priced at their packed density. *)
let bytes t = float_of_int (bits t) /. 8.

let is_float = function
  | Float32 | Float16 -> true
  | Int64 | Int32 | Int8 | UInt1 | UInt2 | Bool -> false

let is_integer t = not (is_float t)

let equal (a : t) (b : t) = a = b
let pp fmt t = Format.pp_print_string fmt (to_string t)
