(** Scalar data types of the tensor IR.

    Covers the types the paper's evaluation exercises: [Float32]/
    [Float16] (Fig 19 measures both), [Int8]/[Int32] for the VDLA
    accelerator (§6.4), and the sub-byte [UInt1]/[UInt2] used by the
    ultra-low-precision operators of §6.2 (Fig 18). *)

type t =
  | Float32
  | Float16
  | Int64
  | Int32
  | Int8
  | UInt1
  | UInt2
  | Bool

val to_string : t -> string

(** Inverse of {!to_string}; raises [Invalid_argument] on unknown names. *)
val of_string : string -> t

(** Width in bits; sub-byte types report their true width. *)
val bits : t -> int

(** Storage size in bytes; sub-byte types price at packed density
    (e.g. [bytes UInt2 = 0.25]). *)
val bytes : t -> float

val is_float : t -> bool
val is_integer : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
