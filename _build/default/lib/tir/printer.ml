(** Pretty printer for the tensor IR, producing the pseudo-code style
    used in the paper's figures (Fig 5/8). *)

open Format

let rec pp_expr fmt (e : Expr.t) =
  match e with
  | Expr.IntImm n -> fprintf fmt "%d" n
  | Expr.FloatImm f -> fprintf fmt "%g" f
  | Expr.Var v -> fprintf fmt "%s" v.Expr.vname
  | Expr.Binop ((Expr.Min | Expr.Max) as op, a, b) ->
      fprintf fmt "%s(%a, %a)" (Expr.binop_to_string op) pp_expr a pp_expr b
  | Expr.Binop (op, a, b) ->
      fprintf fmt "(%a %s %a)" pp_expr a (Expr.binop_to_string op) pp_expr b
  | Expr.Cmp (op, a, b) ->
      fprintf fmt "(%a %s %a)" pp_expr a (Expr.cmpop_to_string op) pp_expr b
  | Expr.And (a, b) -> fprintf fmt "(%a && %a)" pp_expr a pp_expr b
  | Expr.Or (a, b) -> fprintf fmt "(%a || %a)" pp_expr a pp_expr b
  | Expr.Not a -> fprintf fmt "!%a" pp_expr a
  | Expr.Select (c, t, f) ->
      fprintf fmt "select(%a, %a, %a)" pp_expr c pp_expr t pp_expr f
  | Expr.Cast (d, a) -> fprintf fmt "%s(%a)" (Dtype.to_string d) pp_expr a
  | Expr.Load (b, idx) -> fprintf fmt "%s%a" b.Expr.bname pp_indices idx
  | Expr.Call (n, args) ->
      fprintf fmt "%s(%a)" n
        (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") pp_expr)
        args

and pp_indices fmt idx =
  List.iter (fun i -> fprintf fmt "[%a]" pp_expr i) idx

let expr_to_string e = asprintf "%a" pp_expr e

let pp_buffer_decl fmt (b : Expr.buffer) =
  fprintf fmt "%s %s %s%a" (Expr.scope_to_string b.Expr.bscope)
    (Dtype.to_string b.Expr.bdtype) b.Expr.bname pp_indices b.Expr.bshape

let rec pp_stmt fmt (s : Stmt.t) =
  match s with
  | Stmt.Store (b, idx, v) ->
      fprintf fmt "@[<h>%s%a = %a@]" b.Expr.bname pp_indices idx pp_expr v
  | Stmt.For l ->
      let header =
        match l.Stmt.kind with
        | Stmt.Serial -> "for"
        | k -> Stmt.for_kind_to_string k
      in
      fprintf fmt "@[<v 2>%s %s in range(%a, %a):@,%a@]" header
        l.Stmt.loop_var.Expr.vname pp_expr l.Stmt.min_ pp_expr l.Stmt.extent
        pp_stmt l.Stmt.body
  | Stmt.If_then_else (c, t, None) ->
      fprintf fmt "@[<v 2>if %a:@,%a@]" pp_expr c pp_stmt t
  | Stmt.If_then_else (c, t, Some e) ->
      fprintf fmt "@[<v>@[<v 2>if %a:@,%a@]@,@[<v 2>else:@,%a@]@]" pp_expr c
        pp_stmt t pp_stmt e
  | Stmt.Let_stmt (v, e, b) ->
      fprintf fmt "@[<v>let %s = %a@,%a@]" v.Expr.vname pp_expr e pp_stmt b
  | Stmt.Seq ss ->
      pp_print_list ~pp_sep:pp_print_cut pp_stmt fmt ss
  | Stmt.Allocate (b, body) ->
      fprintf fmt "@[<v>alloc %a@,%a@]" pp_buffer_decl b pp_stmt body
  | Stmt.Barrier -> fprintf fmt "memory_barrier_among_threads()"
  | Stmt.Evaluate e -> pp_expr fmt e
  | Stmt.Call_intrin ic ->
      let pp_region fmt (b, idx) =
        fprintf fmt "%s%a" b.Expr.bname pp_indices idx
      in
      fprintf fmt "@[<h>%s.%s(%a <- %a)@]" ic.Stmt.intrin_name ic.Stmt.variant
        pp_region ic.Stmt.output
        (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") pp_region)
        ic.Stmt.inputs
  | Stmt.Dma_copy d ->
      fprintf fmt "@[<h>dma_copy(%s%a <- %s%a, extents=%s)@]"
        d.Stmt.dma_dst.Expr.bname pp_indices d.Stmt.dma_dst_base
        d.Stmt.dma_src.Expr.bname pp_indices d.Stmt.dma_src_base
        (String.concat "x" (List.map string_of_int d.Stmt.dma_extents))
  | Stmt.Push_dep (a, b) ->
      fprintf fmt "%s.push_dep_to(%s)" (Stmt.pipe_to_string a) (Stmt.pipe_to_string b)
  | Stmt.Pop_dep (a, b) ->
      fprintf fmt "%s.pop_dep_from(%s)" (Stmt.pipe_to_string b) (Stmt.pipe_to_string a)
  | Stmt.Skip -> fprintf fmt "pass"

let stmt_to_string s = asprintf "@[<v>%a@]" pp_stmt s
