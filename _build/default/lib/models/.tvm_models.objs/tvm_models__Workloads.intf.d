lib/models/workloads.mli:
