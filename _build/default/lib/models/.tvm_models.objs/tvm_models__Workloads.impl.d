lib/models/workloads.ml: List Printf
