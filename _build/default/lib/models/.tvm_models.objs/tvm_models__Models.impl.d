lib/models/models.ml: Array List Printf Tvm_graph Tvm_nd
