(** Analytical GPU timing model.

    Prices a lowered kernel on a {!Machine.gpu} by the quantities GPU
    schedules control (§4.2):

    - {b thread structure}: [Thread_binding] loops define the grid;
      when a cooperative stage re-binds an enclosing tag, only the
      innermost occurrence of the tag counts (work distribution, not
      multiplication) — this is what makes cooperative fetching reduce
      global traffic;
    - {b global-memory coalescing}: unit stride w.r.t. [threadIdx.x]
      is fully coalesced, broadcasts are served once per warp, strided
      access pays per-transaction overhead;
    - {b shared memory}: [Shared]-scope buffers are priced against the
      much higher on-chip bandwidth, plus barrier costs;
    - {b occupancy}: too few threads, oversize thread blocks, or
      shared/register over-allocation degrade or invalidate the
      configuration (returned as [infinity], which the schedule
      explorer learns to avoid). *)

open Tvm_tir

type breakdown = {
  blocks : int;
  threads_per_block : int;
  global_bytes : float;
  shared_bytes : float;
  flops : float;
  compute_s : float;
  global_s : float;
  shared_s : float;
  total_s : float;
  valid : bool;
}

let invalid =
  { blocks = 0; threads_per_block = 0; global_bytes = 0.; shared_bytes = 0.;
    flops = 0.; compute_s = 0.; global_s = 0.; shared_s = 0.;
    total_s = Float.infinity; valid = false }

let is_block_tag tag = String.length tag >= 8 && String.sub tag 0 8 = "blockIdx"

(** Extent of each thread tag (max over occurrences: re-bound inner
    loops must not exceed the outer extent — larger means the schedule
    asks for more threads than exist, which we reject). *)
let tag_extents (stmt : Stmt.t) =
  let tbl = Hashtbl.create 8 in
  let ok = ref true in
  let rec walk in_tags s =
    match s with
    | Stmt.For ({ kind = Stmt.Thread_binding tag; _ } as l) ->
        let extent =
          match Interval.const_of_expr l.Stmt.extent with Some e -> e | None -> 0
        in
        (match Hashtbl.find_opt tbl tag with
        | Some prev ->
            if List.mem tag in_tags && extent > prev then ok := false;
            Hashtbl.replace tbl tag (max prev extent)
        | None -> Hashtbl.replace tbl tag extent);
        walk (tag :: in_tags) l.Stmt.body
    | Stmt.For l -> walk in_tags l.Stmt.body
    | Stmt.If_then_else (_, t, e) ->
        walk in_tags t;
        Option.iter (walk in_tags) e
    | Stmt.Let_stmt (_, _, b) | Stmt.Allocate (_, b) -> walk in_tags b
    | Stmt.Seq ss -> List.iter (walk in_tags) ss
    | Stmt.Store _ | Stmt.Barrier | Stmt.Evaluate _ | Stmt.Call_intrin _
    | Stmt.Dma_copy _ | Stmt.Push_dep _ | Stmt.Pop_dep _ | Stmt.Skip ->
        ()
  in
  walk [] stmt;
  (tbl, !ok)

(** Execution count of an access across the whole device: product of
    enclosing loop extents, counting only the innermost occurrence of
    each thread tag. *)
let device_count (a : Analysis.access) =
  (* Walk from innermost outwards; skip outer duplicates of a tag. *)
  let seen = Hashtbl.create 4 in
  List.fold_left
    (fun acc l ->
      match l.Analysis.lkind with
      | Stmt.Thread_binding tag ->
          if Hashtbl.mem seen tag then acc
          else begin
            Hashtbl.replace seen tag ();
            acc * l.Analysis.lextent
          end
      | _ -> acc * l.Analysis.lextent)
    1
    (List.rev a.Analysis.acc_loops)

(** Find the loop var bound to [tag] closest to the access. *)
let tag_var (a : Analysis.access) tag =
  List.fold_left
    (fun acc l ->
      match l.Analysis.lkind with
      | Stmt.Thread_binding t when t = tag -> Some l.Analysis.lvar
      | _ -> acc)
    None a.Analysis.acc_loops

(** Register-level reuse: a load whose index is invariant under an
    enclosing per-thread serial/unrolled/vectorized loop is hoisted by
    any real compiler, so it does not re-issue a memory access per
    iteration. Registers are finite, so the credited reuse is capped. *)
let register_reuse (a : Analysis.access) =
  let reuse =
    List.fold_left
      (fun acc l ->
        match l.Analysis.lkind with
        | Stmt.Serial | Stmt.Unrolled | Stmt.Vectorized -> (
            match Analysis.stride_wrt a l.Analysis.lvar with
            | Some 0 -> acc * l.Analysis.lextent
            | Some _ | None -> acc)
        | Stmt.Parallel | Stmt.Thread_binding _ | Stmt.Vthread -> acc)
      1 a.Analysis.acc_loops
  in
  float_of_int (min 64 reuse)

(** Bytes of global traffic for one access site, including the
    coalescing penalty. *)
let global_traffic (a : Analysis.access) =
  let elem = Dtype.bytes a.Analysis.acc_buffer.Expr.bdtype in
  let count =
    float_of_int (device_count a) *. a.Analysis.acc_weight /. register_reuse a
  in
  let penalty =
    match tag_var a "threadIdx.x" with
    | Some v -> (
        match Analysis.stride_wrt a v with
        | Some 0 -> 0.25 (* warp-wide broadcast: one transaction serves 32 *)
        | Some s when abs s <= 1 -> 1.
        | Some s -> Float.min 4. (float_of_int (abs s))
        | None -> 4.)
    | None -> (
        (* Pure per-thread sequential access. *)
        match Analysis.innermost_loop a with
        | Some l -> (
            match Analysis.stride_wrt a l.Analysis.lvar with
            | Some s when abs s <= 1 -> 1.
            | Some _ | None -> 4.)
        | None -> 1.)
  in
  count *. elem *. penalty

let shared_alloc_bytes (stmt : Stmt.t) =
  let total = ref 0. in
  Stmt.iter
    (function
      | Stmt.Allocate (b, _) when b.Expr.bscope = Expr.Shared ->
          total := !total +. Expr.Buffer.size_bytes b
      | _ -> ())
    stmt;
  !total

let local_alloc_bytes (stmt : Stmt.t) =
  let total = ref 0. in
  Stmt.iter
    (function
      | Stmt.Allocate (b, _) when b.Expr.bscope = Expr.Local ->
          total := !total +. Expr.Buffer.size_bytes b
      | _ -> ())
    stmt;
  !total

let barrier_count (stmt : Stmt.t) =
  (* Barriers synchronize a whole thread group at once: multiply by
     serial/block loop trips but not by threadIdx extents. *)
  let total = ref 0. in
  let rec walk mult s =
    match s with
    | Stmt.Barrier -> total := !total +. mult
    | Stmt.For ({ kind = Stmt.Thread_binding tag; _ } as l)
      when String.length tag >= 9 && String.sub tag 0 9 = "threadIdx" ->
        walk mult l.Stmt.body
    | Stmt.For l -> (
        match Interval.const_of_expr l.Stmt.extent with
        | Some e -> walk (mult *. float_of_int e) l.Stmt.body
        | None -> walk mult l.Stmt.body)
    | Stmt.If_then_else (_, t, e) ->
        walk mult t;
        Option.iter (walk mult) e
    | Stmt.Let_stmt (_, _, b) | Stmt.Allocate (_, b) -> walk mult b
    | Stmt.Seq ss -> List.iter (walk mult) ss
    | Stmt.Store _ | Stmt.Evaluate _ | Stmt.Call_intrin _ | Stmt.Dma_copy _
    | Stmt.Push_dep _ | Stmt.Pop_dep _ | Stmt.Skip ->
        ()
  in
  walk 1. stmt;
  !total

let dominant_dtype (stmt : Stmt.t) =
  let found = ref Dtype.Float32 in
  Stmt.iter
    (function
      | Stmt.Store (b, _, _) -> found := b.Expr.bdtype
      | _ -> ())
    stmt;
  !found

let estimate ?force_dtype (gpu : Machine.gpu) (stmt : Stmt.t) : breakdown =
  let tags, tags_ok = tag_extents stmt in
  if not tags_ok then invalid
  else
    let prod pred =
      Hashtbl.fold (fun tag e acc -> if pred tag then acc * max 1 e else acc) tags 1
    in
    let blocks = prod is_block_tag in
    let threads_per_block = prod (fun t -> not (is_block_tag t)) in
    if threads_per_block > 1024 then invalid
    else
      let shared_b = shared_alloc_bytes stmt in
      if shared_b > gpu.Machine.shared_bytes_per_sm then invalid
      else
        let accesses = Analysis.collect_accesses stmt in
        let global_bytes =
          List.fold_left
            (fun acc a ->
              if a.Analysis.acc_buffer.Expr.bscope = Expr.Global then
                acc +. global_traffic a
              else acc)
            0. accesses
        in
        let shared_bytes =
          List.fold_left
            (fun acc a ->
              if a.Analysis.acc_buffer.Expr.bscope = Expr.Shared then
                acc
                +. float_of_int (device_count a) *. a.Analysis.acc_weight
                   /. register_reuse a
                   *. Dtype.bytes a.Analysis.acc_buffer.Expr.bdtype
              else acc)
            0. accesses
        in
        let flops =
          Analysis.flops ~intrin_flops:Cpu_model.intrin_flops stmt
        in
        (* Occupancy: enough parallelism to hide latency, but not more
           threads per block than the SM supports. *)
        let total_threads = blocks * threads_per_block in
        let needed = gpu.Machine.sms * gpu.Machine.cuda_cores_per_sm * 4 in
        let util = Float.min 1. (float_of_int total_threads /. float_of_int needed) in
        (* Tiny blocks under-fill warps. *)
        let warp_eff =
          if threads_per_block >= 32 then 1.
          else float_of_int threads_per_block /. 32.
        in
        (* Register pressure: oversized thread-local tiles spill. *)
        let local_b = local_alloc_bytes stmt in
        let spill = if local_b > 2048. then 2. else 1. in
        let dtype = match force_dtype with Some d -> d | None -> dominant_dtype stmt in
        let dtype_rate =
          match dtype with Dtype.Float16 -> gpu.Machine.fp16_rate | _ -> 1.
        in
        let byte_scale =
          (* Overriding precision rescales traffic too (fp16 halves it). *)
          match force_dtype with
          | Some d -> Dtype.bytes d /. Dtype.bytes (dominant_dtype stmt)
          | None -> 1.
        in
        let global_bytes = global_bytes *. byte_scale in
        let shared_bytes = shared_bytes *. byte_scale in
        let peak = Machine.gpu_peak_gflops gpu *. 1e9 *. dtype_rate in
        let compute_s = flops /. (peak *. util *. warp_eff) *. spill in
        let global_s = global_bytes /. (gpu.Machine.global_gbps *. 1e9) in
        let shared_s =
          (shared_bytes /. (gpu.Machine.shared_gbps *. 1e9))
          +. (barrier_count stmt *. 5e-8
             /. float_of_int (max 1 (min blocks (gpu.Machine.sms * 8))))
        in
        let launch = gpu.Machine.kernel_launch_us *. 1e-6 in
        let total_s = Float.max compute_s (Float.max global_s shared_s) +. launch in
        { blocks; threads_per_block; global_bytes; shared_bytes; flops; compute_s;
          global_s; shared_s; total_s; valid = true }

let time_s ?force_dtype gpu stmt = (estimate ?force_dtype gpu stmt).total_s
let time_ms ?force_dtype gpu stmt = 1e3 *. time_s ?force_dtype gpu stmt
