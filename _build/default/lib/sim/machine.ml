(** Machine descriptions of the evaluation platforms (§6).

    These stand in for the paper's hardware: an NVIDIA Titan X
    (server-class GPU, §6.1), an ARM Cortex A53 (embedded CPU, §6.2), an
    ARM Mali-T860MP4 (embedded GPU, §6.3), and the VDLA accelerator on a
    PYNQ FPGA (§6.4). Parameters follow the published specs of those
    parts; what matters for the reproduction is that the *ratios*
    (compute vs bandwidth, cache sizes vs working sets) are realistic,
    since all results are relative. *)

type cpu = {
  cpu_name : string;
  cores : int;
  freq_ghz : float;
  vector_lanes : int;  (** fp32 lanes per SIMD issue (NEON = 4) *)
  fma_per_cycle : int;  (** vector FMA issues per cycle per core *)
  l1_bytes : float;
  l2_bytes : float;
  dram_gbps : float;
  l2_gbps : float;
  loop_overhead_cycles : float;  (** per dynamic iteration of a serial loop *)
}

type gpu = {
  gpu_name : string;
  sms : int;
  gpu_freq_ghz : float;
  cuda_cores_per_sm : int;
  max_threads_per_sm : int;
  shared_bytes_per_sm : float;
  global_gbps : float;
  shared_gbps : float;
  fp16_rate : float;  (** throughput multiplier for float16 *)
  kernel_launch_us : float;
}

type accel = {
  accel_name : string;
  accel_freq_mhz : float;
  gemm_m : int;
  gemm_n : int;
  gemm_k : int;  (** matrix unit shape: 16x16 MACs, K accumulation depth 16 *)
  dram_bytes_per_cycle : float;
  inp_sram_bytes : int;
  wgt_sram_bytes : int;
  acc_sram_bytes : int;
  dma_setup_cycles : float;  (** fixed latency per DMA transfer *)
}

(** NVIDIA Titan X (Maxwell): 24 SMs, 6.1 TFLOPS fp32, 336 GB/s. *)
let titan_x =
  {
    gpu_name = "titan-x";
    sms = 24;
    gpu_freq_ghz = 1.0;
    cuda_cores_per_sm = 128;
    max_threads_per_sm = 2048;
    shared_bytes_per_sm = 96. *. 1024.;
    global_gbps = 336.;
    shared_gbps = 2200.;
    fp16_rate = 1.0;
    kernel_launch_us = 5.0;
  }

(** ARM Mali-T860MP4: 4 shader cores, ~23 GFLOPS fp32 (fp16 doubles),
    ~10 GB/s LPDDR. Modeled in the same GPU frame with few "SMs". *)
let mali_t860 =
  {
    gpu_name = "mali-t860mp4";
    sms = 4;
    gpu_freq_ghz = 0.65;
    cuda_cores_per_sm = 16;
    max_threads_per_sm = 256;
    shared_bytes_per_sm = 32. *. 1024.;
    global_gbps = 10.;
    shared_gbps = 80.;
    fp16_rate = 2.0;
    kernel_launch_us = 20.0;
  }

(** ARM Cortex A53 quad core @1.2GHz: NEON 128-bit, 32KB L1D, 512KB L2,
    ~3 GB/s LPDDR. *)
let arm_a53 =
  {
    cpu_name = "cortex-a53";
    cores = 4;
    freq_ghz = 1.2;
    vector_lanes = 4;
    fma_per_cycle = 1;
    l1_bytes = 32. *. 1024.;
    l2_bytes = 512. *. 1024.;
    dram_gbps = 3.0;
    l2_gbps = 12.0;
    loop_overhead_cycles = 2.0;
  }

(** A server-class x86 core complex, used as the host in heterogeneous
    runs and as the compilation host in the RPC experiments. *)
let xeon_host =
  {
    cpu_name = "xeon-host";
    cores = 8;
    freq_ghz = 2.5;
    vector_lanes = 8;
    fma_per_cycle = 2;
    l1_bytes = 32. *. 1024.;
    l2_bytes = 1024. *. 1024.;
    dram_gbps = 40.;
    l2_gbps = 200.;
    loop_overhead_cycles = 1.0;
  }

(** The VDLA design of §6.4: 16×16 matrix-vector unit at 200MHz doing
    8-bit products accumulated into 32-bit registers — 102.4 GOPS/s
    peak; 32kB activation, 32kB parameter, 128kB register-file storage;
    modest DMA bandwidth so that latency hiding matters. *)
let vdla =
  {
    accel_name = "vdla-pynq";
    accel_freq_mhz = 200.;
    gemm_m = 16;
    gemm_n = 16;
    gemm_k = 16;
    dram_bytes_per_cycle = 64.;  (* 512-bit AXI burst port at 200MHz *)
    inp_sram_bytes = 32 * 1024;
    wgt_sram_bytes = 32 * 1024;
    acc_sram_bytes = 128 * 1024;
    dma_setup_cycles = 16.;
  }

(** ARM A9 @667MHz — the PYNQ host CPU of Fig 21 (dual core, VFPv3:
    markedly weaker than the A53). *)
let arm_a9 =
  {
    cpu_name = "cortex-a9";
    cores = 2;
    freq_ghz = 0.667;
    vector_lanes = 2;
    fma_per_cycle = 1;
    l1_bytes = 32. *. 1024.;
    l2_bytes = 512. *. 1024.;
    dram_gbps = 1.0;
    l2_gbps = 4.0;
    loop_overhead_cycles = 3.0;
  }

let cpu_peak_gflops c =
  float_of_int (c.cores * c.vector_lanes * c.fma_per_cycle * 2) *. c.freq_ghz

let gpu_peak_gflops g =
  float_of_int (g.sms * g.cuda_cores_per_sm * 2) *. g.gpu_freq_ghz

let accel_peak_gops a =
  2. *. float_of_int (a.gemm_m * a.gemm_n) *. a.accel_freq_mhz /. 1000.
