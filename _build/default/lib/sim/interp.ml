(** Functional interpreter for lowered loop programs.

    Executes the IR over {!Tvm_nd.Ndarray} buffers — the ground truth
    against which every schedule transformation is checked for logical
    equivalence ("schedule primitives preserve the program's logical
    equivalence", §4.1). Thread-binding and vthread loops execute
    sequentially; barriers and dependence tokens are no-ops (they only
    affect timing, which the models and the VDLA DES handle). *)

open Tvm_tir
module Nd = Tvm_nd.Ndarray
module Tensor_intrin = Tvm_schedule.Tensor_intrin

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type value = VInt of int | VFloat of float

let to_float = function VInt n -> float_of_int n | VFloat f -> f

let to_int = function
  | VInt n -> n
  | VFloat f -> fail "expected integer, got float %g" f

type env = {
  vars : (int, value) Hashtbl.t;  (** var id → value *)
  bufs : (int, Nd.t) Hashtbl.t;  (** buffer id → storage *)
}

let floor_div a b =
  if b = 0 then fail "division by zero"
  else
    let q = a / b and r = a mod b in
    if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let floor_mod a b =
  let r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then r + b else r

let intrinsic_fn = function
  | "exp" -> Float.exp
  | "log" -> Float.log
  | "sqrt" -> Float.sqrt
  | "tanh" -> Float.tanh
  | "sigmoid" -> fun x -> 1. /. (1. +. Float.exp (-.x))
  | "abs" -> Float.abs
  | "round" -> Float.round
  | name -> fail "unknown intrinsic %s" name

let lookup_buf env (b : Expr.buffer) =
  match Hashtbl.find_opt env.bufs b.Expr.bid with
  | Some nd -> nd
  | None -> fail "buffer %s (id %d) is not bound" b.Expr.bname b.Expr.bid

let rec eval env (e : Expr.t) : value =
  match e with
  | Expr.IntImm n -> VInt n
  | Expr.FloatImm f -> VFloat f
  | Expr.Var v -> (
      match Hashtbl.find_opt env.vars v.Expr.vid with
      | Some value -> value
      | None -> fail "variable %s is not bound" v.Expr.vname)
  | Expr.Binop (op, a, b) -> (
      match (eval env a, eval env b) with
      | VInt x, VInt y ->
          VInt
            (match op with
            | Expr.Add -> x + y
            | Expr.Sub -> x - y
            | Expr.Mul -> x * y
            | Expr.Div -> floor_div x y
            | Expr.FloorMod -> floor_mod x y
            | Expr.Min -> min x y
            | Expr.Max -> max x y)
      | va, vb ->
          let x = to_float va and y = to_float vb in
          VFloat
            (match op with
            | Expr.Add -> x +. y
            | Expr.Sub -> x -. y
            | Expr.Mul -> x *. y
            | Expr.Div -> x /. y
            | Expr.FloorMod -> Float.rem x y
            | Expr.Min -> Float.min x y
            | Expr.Max -> Float.max x y))
  | Expr.Cmp (op, a, b) ->
      let x = to_float (eval env a) and y = to_float (eval env b) in
      let r =
        match op with
        | Expr.Eq -> x = y
        | Expr.Ne -> x <> y
        | Expr.Lt -> x < y
        | Expr.Le -> x <= y
        | Expr.Gt -> x > y
        | Expr.Ge -> x >= y
      in
      VInt (if r then 1 else 0)
  | Expr.And (a, b) -> if to_int (eval env a) = 0 then VInt 0 else eval env b
  | Expr.Or (a, b) -> if to_int (eval env a) <> 0 then VInt 1 else eval env b
  | Expr.Not a -> VInt (if to_int (eval env a) = 0 then 1 else 0)
  | Expr.Select (c, t, f) ->
      (* Lazy: the untaken branch may be out of bounds (padding). *)
      if to_int (eval env c) <> 0 then eval env t else eval env f
  | Expr.Cast (d, a) -> (
      let v = eval env a in
      match d with
      | Dtype.Float32 | Dtype.Float16 -> VFloat (to_float v)
      | Dtype.Int64 | Dtype.Int32 | Dtype.Int8 | Dtype.UInt1 | Dtype.UInt2
      | Dtype.Bool ->
          VInt (int_of_float (to_float v)))
  | Expr.Load (b, idx) ->
      let nd = lookup_buf env b in
      let indices = List.map (fun i -> to_int (eval env i)) idx in
      VFloat (Nd.get nd indices)
  | Expr.Call (name, args) -> (
      let vals = List.map (fun a -> to_float (eval env a)) args in
      match (name, vals) with
      | "popcount", [ x ] ->
          let n = int_of_float x in
          let rec pc n acc = if n = 0 then acc else pc (n lsr 1) (acc + (n land 1)) in
          VInt (pc n 0)
      | "bitand", [ x; y ] -> VInt (int_of_float x land int_of_float y)
      | "bitxor", [ x; y ] -> VInt (int_of_float x lxor int_of_float y)
      | "shiftr", [ x; y ] -> VInt (int_of_float x asr int_of_float y)
      | _, [ x ] -> VFloat (intrinsic_fn name x)
      | _ -> fail "intrinsic %s: wrong arity" name)

(** Intrinsic regions cover the trailing dimensions of their buffer:
    a rank-1 micro-kernel operand inside a rank-2 tensor keeps its
    leading base coordinates fixed. *)
let pad_rel base rel =
  let missing = List.length base - List.length rel in
  if missing <= 0 then rel else List.init missing (fun _ -> 0) @ rel

let region_reader env (b, base_idx) =
  let nd = lookup_buf env b in
  let base = List.map (fun e -> to_int (eval env e)) base_idx in
  fun rel -> Nd.get nd (List.map2 ( + ) base (pad_rel base rel))

let region_writer env (b, base_idx) =
  let nd = lookup_buf env b in
  let base = List.map (fun e -> to_int (eval env e)) base_idx in
  fun rel v -> Nd.set nd (List.map2 ( + ) base (pad_rel base rel)) v

let rec exec env (s : Stmt.t) : unit =
  match s with
  | Stmt.Store (b, idx, v) ->
      let nd = lookup_buf env b in
      let indices = List.map (fun i -> to_int (eval env i)) idx in
      Nd.set nd indices (to_float (eval env v))
  | Stmt.For l -> (
      let min_ = to_int (eval env l.Stmt.min_) in
      let extent = to_int (eval env l.Stmt.extent) in
      let vid = l.Stmt.loop_var.Expr.vid in
      let run_range () =
        for i = min_ to min_ + extent - 1 do
          Hashtbl.replace env.vars vid (VInt i);
          exec env l.Stmt.body
        done;
        Hashtbl.remove env.vars vid
      in
      match l.Stmt.kind with
      | Stmt.Thread_binding _ ->
          (* Thread loops run at full extent even when re-binding an
             enclosing tag: cooperative fills are idempotent, and each
             sequential "thread" then sees a fully-populated private
             copy of block-shared storage — the sequential-consistency
             trick that makes barrier semantics unnecessary here. *)
          run_range ()
      | _ -> run_range ())
  | Stmt.If_then_else (c, t, e) ->
      if to_int (eval env c) <> 0 then exec env t
      else ( match e with Some e -> exec env e | None -> ())
  | Stmt.Let_stmt (v, e, body) ->
      Hashtbl.replace env.vars v.Expr.vid (eval env e);
      exec env body;
      Hashtbl.remove env.vars v.Expr.vid
  | Stmt.Seq ss -> List.iter (exec env) ss
  | Stmt.Allocate (b, body) ->
      let shape =
        List.map
          (fun e ->
            match e with
            | Expr.IntImm n -> n
            | e -> to_int (eval env e))
          b.Expr.bshape
      in
      let nd = Nd.create ~dtype:b.Expr.bdtype shape in
      Hashtbl.replace env.bufs b.Expr.bid nd;
      exec env body;
      Hashtbl.remove env.bufs b.Expr.bid
  | Stmt.Barrier -> ()
  | Stmt.Evaluate e -> ignore (eval env e)
  | Stmt.Call_intrin ic ->
      let intrin = Tensor_intrin.find ic.Stmt.intrin_name in
      let inputs = List.map (region_reader env) ic.Stmt.inputs in
      let out_read = region_reader env ic.Stmt.output in
      let out_write = region_writer env ic.Stmt.output in
      intrin.Tensor_intrin.execute ~variant:ic.Stmt.variant ~inputs ~out_read ~out_write
  | Stmt.Dma_copy d ->
      let src = lookup_buf env d.Stmt.dma_src in
      let dst = lookup_buf env d.Stmt.dma_dst in
      let src_base = List.map (fun e -> to_int (eval env e)) d.Stmt.dma_src_base in
      let dst_base = List.map (fun e -> to_int (eval env e)) d.Stmt.dma_dst_base in
      Tensor_intrin.iter_space d.Stmt.dma_extents (fun rel ->
          let v = Nd.get src (List.map2 ( + ) src_base rel) in
          Nd.set dst (List.map2 ( + ) dst_base rel) v)
  | Stmt.Push_dep _ | Stmt.Pop_dep _ | Stmt.Skip -> ()

(** Execute [stmt] with global buffers bound to the given arrays; all
    internal allocations are transient. GPU-style kernels are first
    legalized for sequential execution (barrier fission — see
    {!Tvm_lower.Spmd}), so cooperative shared-memory programs run in
    time proportional to the actual work. *)
let run (stmt : Stmt.t) ~(bindings : (Expr.buffer * Nd.t) list) : unit =
  let stmt = Tvm_lower.Spmd.legalize_for_interp stmt in
  let env = { vars = Hashtbl.create 32; bufs = Hashtbl.create 32 } in
  List.iter
    (fun ((b : Expr.buffer), nd) -> Hashtbl.replace env.bufs b.Expr.bid nd)
    bindings;
  exec env stmt
