lib/sim/interp.ml: Dtype Expr Float Hashtbl List Printf Stmt Tvm_lower Tvm_nd Tvm_schedule Tvm_tir
