lib/sim/gpu_model.ml: Analysis Cpu_model Dtype Expr Float Hashtbl Interval List Machine Option Stmt String Tvm_tir
