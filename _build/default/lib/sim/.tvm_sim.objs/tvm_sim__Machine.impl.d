lib/sim/machine.ml:
