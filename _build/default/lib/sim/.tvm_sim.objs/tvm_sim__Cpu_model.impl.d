lib/sim/cpu_model.ml: Analysis Expr Float Hashtbl Interval List Machine Option Stmt String Tvm_schedule Tvm_tir
