(** Operator registry.

    Each operator carries the four things the stack needs (§3): its
    fusion pattern (the paper's four categories), shape inference, a
    tensor-expression builder (so fused groups compose into one
    schedulable expression DAG), and a fast reference executor over
    ndarrays (constant folding and functional end-to-end runs). *)

module Tensor = Tvm_te.Tensor
module Nd = Tvm_nd.Ndarray

(** The four operator categories of §3's fusion rules. *)
type pattern =
  | Injective  (** one-to-one map, e.g. add *)
  | Reduction  (** e.g. sum / pooling *)
  | Complex_out_fusable  (** can fuse elementwise ops at output, e.g. conv2d *)
  | Opaque  (** cannot be fused, e.g. sort *)

val pattern_to_string : pattern -> string

type impl = {
  op_name : string;
  pattern : pattern;
  infer_shape : int list list -> Attrs.t -> int list;
  build_te : Tensor.t list -> Attrs.t -> Tensor.t;
  ref_exec : Nd.t list -> Attrs.t -> Nd.t;
  op_flops : int list list -> Attrs.t -> float;
}

val register : impl -> unit

(** Raises [Invalid_argument] on unknown operators. *)
val find : string -> impl

val mem : string -> bool
val pattern : string -> pattern
val all_ops : unit -> string list
