(** Operator registry.

    Each operator carries the four things the stack needs (§3):
    its {b fusion pattern} (the paper's four categories), {b shape
    inference}, a {b tensor-expression builder} (so fused groups can be
    composed into one schedulable expression DAG), and a fast
    {b reference executor} over ndarrays (used for constant folding and
    functional end-to-end runs, where the IR interpreter would be too
    slow). *)

module Tensor = Tvm_te.Tensor
module Nd = Tvm_nd.Ndarray

(** The four operator categories of §3's fusion rules. *)
type pattern =
  | Injective  (** one-to-one map, e.g. add *)
  | Reduction  (** e.g. sum / pooling *)
  | Complex_out_fusable  (** can fuse elementwise ops at output, e.g. conv2d *)
  | Opaque  (** cannot be fused, e.g. sort *)

let pattern_to_string = function
  | Injective -> "injective"
  | Reduction -> "reduction"
  | Complex_out_fusable -> "complex-out-fusable"
  | Opaque -> "opaque"

type impl = {
  op_name : string;
  pattern : pattern;
  infer_shape : int list list -> Attrs.t -> int list;
  build_te : Tensor.t list -> Attrs.t -> Tensor.t;
  ref_exec : Nd.t list -> Attrs.t -> Nd.t;
  op_flops : int list list -> Attrs.t -> float;
}

let table : (string, impl) Hashtbl.t = Hashtbl.create 64

let register impl = Hashtbl.replace table impl.op_name impl

let find name =
  match Hashtbl.find_opt table name with
  | Some impl -> impl
  | None -> invalid_arg ("Op_registry.find: unknown operator " ^ name)

let mem name = Hashtbl.mem table name
let pattern name = (find name).pattern
let all_ops () = Hashtbl.fold (fun k _ acc -> k :: acc) table [] |> List.sort compare

(* Wire shape inference into the graph builder. *)
let () =
  Graph_ir.shape_infer_hook :=
    fun op in_shapes attrs -> (find op).infer_shape in_shapes attrs
