(** Constant folding (§3): pre-compute graph parts that are statically
    determined, i.e. op nodes all of whose transitive inputs are
    parameters. The folded node becomes a new parameter whose value is
    computed once at compile time with the reference executor. *)

module Nd = Tvm_nd.Ndarray

type result = {
  graph : Graph_ir.t;
  folded_params : (int * Nd.t) list;  (** new-graph param id → value *)
  num_folded : int;
}

(** [run graph ~params] where [params] maps original param node ids to
    their values. Node ids are preserved (folded op nodes turn into
    [Param] nodes in place), so downstream passes need no remapping. *)
let run (graph : Graph_ir.t) ~(params : (int * Nd.t) list) : result =
  let values = Hashtbl.create 16 in
  List.iter (fun (id, v) -> Hashtbl.replace values id v) params;
  let num_folded = ref 0 in
  let nodes =
    Array.map
      (fun (n : Graph_ir.node) ->
        match n.Graph_ir.kind with
        | Graph_ir.Input | Graph_ir.Param -> n
        | Graph_ir.Op op ->
            let input_vals =
              List.map (fun i -> Hashtbl.find_opt values i) n.Graph_ir.inputs
            in
            if
              List.for_all Option.is_some input_vals
              && not (Graph_ir.is_output graph n.Graph_ir.id)
            then begin
              let impl = Op_registry.find op in
              let v =
                impl.Op_registry.ref_exec
                  (List.map Option.get input_vals)
                  n.Graph_ir.attrs
              in
              Hashtbl.replace values n.Graph_ir.id v;
              incr num_folded;
              { n with Graph_ir.kind = Graph_ir.Param; inputs = [] }
            end
            else n)
      graph.Graph_ir.nodes
  in
  let graph' = Graph_ir.of_nodes (Array.to_list nodes) ~outputs:graph.Graph_ir.outputs in
  let folded_params =
    List.filter_map
      (fun id ->
        match Hashtbl.find_opt values id with Some v -> Some (id, v) | None -> None)
      graph'.Graph_ir.param_ids
  in
  { graph = graph'; folded_params; num_folded = !num_folded }
