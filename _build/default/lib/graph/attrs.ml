(** Typed operator attributes (Fig 3's "example attributes": channels,
    kernel_size, padding, strides, ...). *)

type value =
  | Int of int
  | Float of float
  | Str of string
  | Ints of int list
  | Bool of bool

type t = (string * value) list

let empty : t = []

let get_int ?default t key =
  match (List.assoc_opt key t, default) with
  | Some (Int v), _ -> v
  | Some _, _ -> invalid_arg (Printf.sprintf "attr %s: not an int" key)
  | None, Some d -> d
  | None, None -> invalid_arg (Printf.sprintf "attr %s: missing" key)

let get_float ?default t key =
  match (List.assoc_opt key t, default) with
  | Some (Float v), _ -> v
  | Some (Int v), _ -> float_of_int v
  | Some _, _ -> invalid_arg (Printf.sprintf "attr %s: not a float" key)
  | None, Some d -> d
  | None, None -> invalid_arg (Printf.sprintf "attr %s: missing" key)

let get_str ?default t key =
  match (List.assoc_opt key t, default) with
  | Some (Str v), _ -> v
  | Some _, _ -> invalid_arg (Printf.sprintf "attr %s: not a string" key)
  | None, Some d -> d
  | None, None -> invalid_arg (Printf.sprintf "attr %s: missing" key)

let get_bool ?default t key =
  match (List.assoc_opt key t, default) with
  | Some (Bool v), _ -> v
  | Some _, _ -> invalid_arg (Printf.sprintf "attr %s: not a bool" key)
  | None, Some d -> d
  | None, None -> invalid_arg (Printf.sprintf "attr %s: missing" key)

let get_ints ?default t key =
  match (List.assoc_opt key t, default) with
  | Some (Ints v), _ -> v
  | Some _, _ -> invalid_arg (Printf.sprintf "attr %s: not an int list" key)
  | None, Some d -> d
  | None, None -> invalid_arg (Printf.sprintf "attr %s: missing" key)

let to_string (t : t) =
  String.concat ","
    (List.map
       (fun (k, v) ->
         let vs =
           match v with
           | Int i -> string_of_int i
           | Float f -> string_of_float f
           | Str s -> s
           | Bool b -> string_of_bool b
           | Ints is -> "[" ^ String.concat ";" (List.map string_of_int is) ^ "]"
         in
         k ^ "=" ^ vs)
       t)
