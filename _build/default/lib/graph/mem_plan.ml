(** Static memory planning (§3): pre-allocate storage for every
    intermediate tensor, sharing buffers between values whose live
    ranges do not overlap. *)

open Tvm_tir

type slot = { slot_id : int; mutable bytes : float; mutable free_after : int }

type plan = {
  assignments : (int * int) list;  (** group-output node id → slot id *)
  slots : (int * float) list;  (** slot id → bytes *)
  total_bytes : float;  (** pooled allocation *)
  naive_bytes : float;  (** one private buffer per intermediate *)
}

let node_bytes (graph : Graph_ir.t) id =
  let n = Graph_ir.node graph id in
  float_of_int (List.fold_left ( * ) 1 n.Graph_ir.shape)
  *. Dtype.bytes n.Graph_ir.dtype

(** Plan storage for the outputs of [groups] executed in list order.
    A group output is live from its producing step until the last step
    that reads it; graph outputs are pinned (never shared). *)
let plan (graph : Graph_ir.t) (groups : Fusion.group list) : plan =
  let order = List.mapi (fun i g -> (g.Fusion.g_output, i)) groups in
  let step_of id = List.assoc_opt id order in
  (* Last step reading each produced value. *)
  let last_use = Hashtbl.create 16 in
  List.iteri
    (fun step g ->
      List.iter
        (fun input ->
          match step_of input with
          | Some _ -> Hashtbl.replace last_use input step
          | None -> ())
        g.Fusion.g_inputs)
    groups;
  let slots = ref [] in
  let next_slot = ref 0 in
  let assignments = ref [] in
  let naive = ref 0. in
  List.iteri
    (fun step g ->
      let id = g.Fusion.g_output in
      let bytes = node_bytes graph id in
      naive := !naive +. bytes;
      let lu =
        if Graph_ir.is_output graph id then max_int
        else match Hashtbl.find_opt last_use id with Some s -> s | None -> step
      in
      (* First fit: smallest free slot large enough, else grow one, else new. *)
      let free = List.filter (fun s -> s.free_after < step) !slots in
      let candidate =
        List.sort (fun a b -> compare a.bytes b.bytes) free
        |> List.find_opt (fun s -> s.bytes >= bytes)
      in
      let slot =
        match candidate with
        | Some s -> s
        | None -> (
            match List.sort (fun a b -> compare b.bytes a.bytes) free with
            | s :: _ ->
                s.bytes <- Float.max s.bytes bytes;
                s
            | [] ->
                incr next_slot;
                let s = { slot_id = !next_slot; bytes; free_after = -1 } in
                slots := s :: !slots;
                s)
      in
      slot.free_after <- lu;
      assignments := (id, slot.slot_id) :: !assignments)
    groups;
  let slots = List.map (fun s -> (s.slot_id, s.bytes)) !slots in
  {
    assignments = List.rev !assignments;
    slots;
    total_bytes = List.fold_left (fun acc (_, b) -> acc +. b) 0. slots;
    naive_bytes = !naive;
  }
