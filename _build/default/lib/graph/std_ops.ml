(** Standard operator set: registrations of every operator the five
    evaluation networks need (ResNet-18, MobileNet, LSTM LM, DQN,
    DCGAN), each with shape inference, tensor-expression builder,
    reference executor and FLOP count.

    Call {!register_all} once before using the graph layer (the facade
    and executors do this). *)

open Tvm_tir
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
module Nd = Tvm_nd.Ndarray
module R = Op_registry

let registered = ref false

let conv_out_dim ~in_dim ~kernel ~stride ~pad = ((in_dim + (2 * pad) - kernel) / stride) + 1

let padding_of attrs ~kernel =
  match Attrs.get_str ~default:"same" attrs "padding" with
  | "same" -> (kernel - 1) / 2
  | "valid" -> 0
  | s -> ( try int_of_string s with _ -> invalid_arg ("bad padding " ^ s))

let prod = List.fold_left ( * ) 1

(* ------------------------------------------------------------------ *)
(* Reference kernels (direct ndarray loops; fast path for functional   *)
(* execution and constant folding)                                     *)
(* ------------------------------------------------------------------ *)

let ref_conv2d ?(depthwise = false) data weight ~stride ~pad =
  match (Nd.shape data, Nd.shape weight) with
  | [ n; c; h; w ], [ d0; d1; kh; kw ] ->
      let oc = if depthwise then c else d0 in
      let oh = conv_out_dim ~in_dim:h ~kernel:kh ~stride ~pad in
      let ow = conv_out_dim ~in_dim:w ~kernel:kw ~stride ~pad in
      ignore d1;
      let out = Nd.create [ n; oc; oh; ow ] in
      for bn = 0 to n - 1 do
        for foc = 0 to oc - 1 do
          for oy = 0 to oh - 1 do
            for ox = 0 to ow - 1 do
              let acc = ref 0. in
              let ic_lo, ic_hi = if depthwise then (foc, foc) else (0, c - 1) in
              for ic = ic_lo to ic_hi do
                for ky = 0 to kh - 1 do
                  let iy = (oy * stride) + ky - pad in
                  if iy >= 0 && iy < h then
                    for kx = 0 to kw - 1 do
                      let ix = (ox * stride) + kx - pad in
                      if ix >= 0 && ix < w then
                        let wv =
                          if depthwise then Nd.get weight [ foc; 0; ky; kx ]
                          else Nd.get weight [ foc; ic; ky; kx ]
                        in
                        acc := !acc +. (Nd.get data [ bn; ic; iy; ix ] *. wv)
                    done
                done
              done;
              Nd.set out [ bn; foc; oy; ox ] !acc
            done
          done
        done
      done;
      out
  | _ -> invalid_arg "ref_conv2d: bad ranks"

let ref_conv2d_transpose data weight ~stride ~pad =
  match (Nd.shape data, Nd.shape weight) with
  | [ n; ic; h; w ], [ _ic2; oc; kh; kw ] ->
      let oh = (stride * (h - 1)) + kh - (2 * pad) in
      let ow = (stride * (w - 1)) + kw - (2 * pad) in
      let out = Nd.create [ n; oc; oh; ow ] in
      (* Scatter formulation: every input pixel contributes a kernel. *)
      for bn = 0 to n - 1 do
        for i = 0 to ic - 1 do
          for y = 0 to h - 1 do
            for x = 0 to w - 1 do
              let v = Nd.get data [ bn; i; y; x ] in
              if v <> 0. then
                for o = 0 to oc - 1 do
                  for ky = 0 to kh - 1 do
                    let oy = (y * stride) + ky - pad in
                    if oy >= 0 && oy < oh then
                      for kx = 0 to kw - 1 do
                        let ox = (x * stride) + kx - pad in
                        if ox >= 0 && ox < ow then
                          Nd.set out [ bn; o; oy; ox ]
                            (Nd.get out [ bn; o; oy; ox ]
                            +. (v *. Nd.get weight [ i; o; ky; kx ]))
                      done
                  done
                done
            done
          done
        done
      done;
      out
  | _ -> invalid_arg "ref_conv2d_transpose: bad ranks"

let ref_dense data weight =
  match (Nd.shape data, Nd.shape weight) with
  | [ m; k ], [ n; _k2 ] ->
      let out = Nd.create [ m; n ] in
      for y = 0 to m - 1 do
        for x = 0 to n - 1 do
          let acc = ref 0. in
          for kk = 0 to k - 1 do
            acc := !acc +. (Nd.get data [ y; kk ] *. Nd.get weight [ x; kk ])
          done;
          Nd.set out [ y; x ] !acc
        done
      done;
      out
  | _ -> invalid_arg "ref_dense: bad ranks"

let ref_elemwise2 f a b = Nd.map2 f a b
let ref_elemwise f a = Nd.map f a

let channel_broadcast f data per_channel =
  match Nd.shape data with
  | [ n; c; h; w ] ->
      Nd.init [ n; c; h; w ] (fun idx ->
          match idx with
          | [ bn; bc; y; x ] -> f (Nd.get data [ bn; bc; y; x ]) (Nd.get per_channel [ bc ])
          | _ -> assert false)
  | [ n; c ] ->
      Nd.init [ n; c ] (fun idx ->
          match idx with
          | [ bn; bc ] -> f (Nd.get data [ bn; bc ]) (Nd.get per_channel [ bc ])
          | _ -> assert false)
  | _ -> invalid_arg "channel_broadcast: bad rank"

let ref_max_pool data ~size ~stride ~pad =
  match Nd.shape data with
  | [ n; c; h; w ] ->
      let oh = conv_out_dim ~in_dim:h ~kernel:size ~stride ~pad in
      let ow = conv_out_dim ~in_dim:w ~kernel:size ~stride ~pad in
      Nd.init [ n; c; oh; ow ] (fun idx ->
          match idx with
          | [ bn; bc; oy; ox ] ->
              let acc = ref (-1e30) in
              for ky = 0 to size - 1 do
                let iy = (oy * stride) + ky - pad in
                if iy >= 0 && iy < h then
                  for kx = 0 to size - 1 do
                    let ix = (ox * stride) + kx - pad in
                    if ix >= 0 && ix < w then
                      acc := Float.max !acc (Nd.get data [ bn; bc; iy; ix ])
                  done
              done;
              !acc
          | _ -> assert false)
  | _ -> invalid_arg "ref_max_pool: bad rank"

let ref_global_avg_pool data =
  match Nd.shape data with
  | [ n; c; h; w ] ->
      Nd.init [ n; c ] (fun idx ->
          match idx with
          | [ bn; bc ] ->
              let acc = ref 0. in
              for y = 0 to h - 1 do
                for x = 0 to w - 1 do
                  acc := !acc +. Nd.get data [ bn; bc; y; x ]
                done
              done;
              !acc /. float_of_int (h * w)
          | _ -> assert false)
  | _ -> invalid_arg "ref_global_avg_pool: bad rank"

let ref_softmax data =
  match Nd.shape data with
  | [ n; c ] ->
      let out = Nd.create [ n; c ] in
      for bn = 0 to n - 1 do
        let mx = ref (-1e30) in
        for bc = 0 to c - 1 do
          mx := Float.max !mx (Nd.get data [ bn; bc ])
        done;
        let sum = ref 0. in
        for bc = 0 to c - 1 do
          let e = Float.exp (Nd.get data [ bn; bc ] -. !mx) in
          Nd.set out [ bn; bc ] e;
          sum := !sum +. e
        done;
        for bc = 0 to c - 1 do
          Nd.set out [ bn; bc ] (Nd.get out [ bn; bc ] /. !sum)
        done
      done;
      out
  | _ -> invalid_arg "ref_softmax: bad rank"

(* ------------------------------------------------------------------ *)
(* Registrations                                                        *)
(* ------------------------------------------------------------------ *)

let arg1 = function [ a ] -> a | l -> invalid_arg (Printf.sprintf "expected 1 input, got %d" (List.length l))
let arg2 = function [ a; b ] -> (a, b) | l -> invalid_arg (Printf.sprintf "expected 2 inputs, got %d" (List.length l))

let register_all () =
  if !registered then ()
  else begin
    registered := true;
    (* conv2d: inputs data NCHW, weight OIHW *)
    R.register
      {
        R.op_name = "conv2d";
        pattern = R.Complex_out_fusable;
        infer_shape =
          (fun shapes attrs ->
            match shapes with
            | [ [ n; _c; h; w ]; [ oc; _ic; kh; kw ] ] ->
                let stride = Attrs.get_int ~default:1 attrs "stride" in
                let pad = padding_of attrs ~kernel:kh in
                [ n; oc; conv_out_dim ~in_dim:h ~kernel:kh ~stride ~pad;
                  conv_out_dim ~in_dim:w ~kernel:kw ~stride ~pad ]
            | _ -> invalid_arg "conv2d: bad input shapes");
        build_te =
          (fun inputs attrs ->
            let data, weight = arg2 inputs in
            let stride = Attrs.get_int ~default:1 attrs "stride" in
            let kh =
              match Tensor.const_shape weight with
              | [ _; _; kh; _ ] -> kh
              | _ -> invalid_arg "conv2d weight"
            in
            let pad = padding_of attrs ~kernel:kh in
            Op.conv2d ~stride ~padding:(`Explicit pad) data weight);
        ref_exec =
          (fun inputs attrs ->
            let data, weight = arg2 inputs in
            let stride = Attrs.get_int ~default:1 attrs "stride" in
            let kh = match Nd.shape weight with [ _; _; kh; _ ] -> kh | _ -> 0 in
            ref_conv2d data weight ~stride ~pad:(padding_of attrs ~kernel:kh));
        op_flops =
          (fun shapes attrs ->
            match shapes with
            | [ [ n; _; h; w ]; [ oc; ic; kh; kw ] ] ->
                let stride = Attrs.get_int ~default:1 attrs "stride" in
                let pad = padding_of attrs ~kernel:kh in
                let oh = conv_out_dim ~in_dim:h ~kernel:kh ~stride ~pad in
                let ow = conv_out_dim ~in_dim:w ~kernel:kw ~stride ~pad in
                2. *. float_of_int (n * oc * oh * ow * ic * kh * kw)
            | _ -> 0.);
      };
    R.register
      {
        R.op_name = "depthwise_conv2d";
        pattern = R.Complex_out_fusable;
        infer_shape =
          (fun shapes attrs ->
            match shapes with
            | [ [ n; c; h; w ]; [ _c2; _m; kh; kw ] ] ->
                let stride = Attrs.get_int ~default:1 attrs "stride" in
                let pad = padding_of attrs ~kernel:kh in
                [ n; c; conv_out_dim ~in_dim:h ~kernel:kh ~stride ~pad;
                  conv_out_dim ~in_dim:w ~kernel:kw ~stride ~pad ]
            | _ -> invalid_arg "depthwise_conv2d: bad input shapes");
        build_te =
          (fun inputs attrs ->
            let data, weight = arg2 inputs in
            let stride = Attrs.get_int ~default:1 attrs "stride" in
            let kh =
              match Tensor.const_shape weight with
              | [ _; _; kh; _ ] -> kh
              | _ -> invalid_arg "dw weight"
            in
            let pad = padding_of attrs ~kernel:kh in
            Op.depthwise_conv2d ~stride ~padding:(`Explicit pad) data weight);
        ref_exec =
          (fun inputs attrs ->
            let data, weight = arg2 inputs in
            let stride = Attrs.get_int ~default:1 attrs "stride" in
            let kh = match Nd.shape weight with [ _; _; kh; _ ] -> kh | _ -> 0 in
            ref_conv2d ~depthwise:true data weight ~stride
              ~pad:(padding_of attrs ~kernel:kh));
        op_flops =
          (fun shapes attrs ->
            match shapes with
            | [ [ n; c; h; w ]; [ _; _; kh; kw ] ] ->
                let stride = Attrs.get_int ~default:1 attrs "stride" in
                let pad = padding_of attrs ~kernel:kh in
                let oh = conv_out_dim ~in_dim:h ~kernel:kh ~stride ~pad in
                let ow = conv_out_dim ~in_dim:w ~kernel:kw ~stride ~pad in
                2. *. float_of_int (n * c * oh * ow * kh * kw)
            | _ -> 0.);
      };
    R.register
      {
        R.op_name = "conv2d_transpose";
        pattern = R.Complex_out_fusable;
        infer_shape =
          (fun shapes attrs ->
            match shapes with
            | [ [ n; _ic; h; w ]; [ _ic2; oc; kh; kw ] ] ->
                let stride = Attrs.get_int ~default:2 attrs "stride" in
                let pad = Attrs.get_int ~default:1 attrs "pad" in
                [ n; oc; (stride * (h - 1)) + kh - (2 * pad);
                  (stride * (w - 1)) + kw - (2 * pad) ]
            | _ -> invalid_arg "conv2d_transpose: bad input shapes");
        build_te =
          (fun inputs attrs ->
            let data, weight = arg2 inputs in
            Op.conv2d_transpose
              ~stride:(Attrs.get_int ~default:2 attrs "stride")
              ~padding:(Attrs.get_int ~default:1 attrs "pad")
              data weight);
        ref_exec =
          (fun inputs attrs ->
            let data, weight = arg2 inputs in
            ref_conv2d_transpose data weight
              ~stride:(Attrs.get_int ~default:2 attrs "stride")
              ~pad:(Attrs.get_int ~default:1 attrs "pad"));
        op_flops =
          (fun shapes _ ->
            match shapes with
            | [ [ n; ic; h; w ]; [ _; oc; kh; kw ] ] ->
                2. *. float_of_int (n * ic * h * w * oc * kh * kw)
            | _ -> 0.);
      };
    R.register
      {
        R.op_name = "dense";
        pattern = R.Complex_out_fusable;
        infer_shape =
          (fun shapes _ ->
            match shapes with
            | [ [ m; _k ]; [ n; _k2 ] ] -> [ m; n ]
            | _ -> invalid_arg "dense: bad input shapes");
        build_te = (fun inputs _ -> let d, w = arg2 inputs in Op.dense d w);
        ref_exec = (fun inputs _ -> let d, w = arg2 inputs in ref_dense d w);
        op_flops =
          (fun shapes _ ->
            match shapes with
            | [ [ m; k ]; [ n; _ ] ] -> 2. *. float_of_int (m * n * k)
            | _ -> 0.);
      };
    let injective name build ref_fn =
      R.register
        {
          R.op_name = name;
          pattern = R.Injective;
          infer_shape = (fun shapes _ -> List.hd shapes);
          build_te = (fun inputs _ -> build inputs);
          ref_exec = (fun inputs _ -> ref_fn inputs);
          op_flops = (fun shapes _ -> float_of_int (prod (List.hd shapes)));
        }
    in
    injective "relu" (fun i -> Op.relu (arg1 i)) (fun i -> ref_elemwise (Float.max 0.) (arg1 i));
    injective "leaky_relu"
      (fun i -> Op.leaky_relu ~alpha:0.2 (arg1 i))
      (fun i -> ref_elemwise (fun x -> Float.max x (0.2 *. x)) (arg1 i));
    injective "tanh" (fun i -> Op.tanh_ (arg1 i)) (fun i -> ref_elemwise Float.tanh (arg1 i));
    injective "sigmoid"
      (fun i -> Op.sigmoid (arg1 i))
      (fun i -> ref_elemwise (fun x -> 1. /. (1. +. Float.exp (-.x))) (arg1 i));
    injective "exp" (fun i -> Op.exp_ (arg1 i)) (fun i -> ref_elemwise Float.exp (arg1 i));
    injective "add"
      (fun i -> let a, b = arg2 i in Op.add a b)
      (fun i -> let a, b = arg2 i in ref_elemwise2 ( +. ) a b);
    injective "mul"
      (fun i -> let a, b = arg2 i in Op.mul a b)
      (fun i -> let a, b = arg2 i in ref_elemwise2 ( *. ) a b);
    R.register
      {
        R.op_name = "bias_add";
        pattern = R.Injective;
        infer_shape = (fun shapes _ -> List.hd shapes);
        build_te = (fun inputs _ -> let d, b = arg2 inputs in Op.bias_add d b);
        ref_exec = (fun inputs _ -> let d, b = arg2 inputs in channel_broadcast ( +. ) d b);
        op_flops = (fun shapes _ -> float_of_int (prod (List.hd shapes)));
      };
    R.register
      {
        R.op_name = "batch_norm";
        (* Inference form: per-channel scale+shift (Fig 4's bn). *)
        pattern = R.Injective;
        infer_shape = (fun shapes _ -> List.hd shapes);
        build_te =
          (fun inputs _ ->
            match inputs with
            | [ d; scale; shift ] -> Op.scale_shift d scale shift
            | _ -> invalid_arg "batch_norm: expected 3 inputs");
        ref_exec =
          (fun inputs _ ->
            match inputs with
            | [ d; scale; shift ] ->
                channel_broadcast ( +. ) (channel_broadcast ( *. ) d scale) shift
            | _ -> invalid_arg "batch_norm: expected 3 inputs");
        op_flops = (fun shapes _ -> 2. *. float_of_int (prod (List.hd shapes)));
      };
    R.register
      {
        R.op_name = "max_pool2d";
        pattern = R.Reduction;
        infer_shape =
          (fun shapes attrs ->
            match shapes with
            | [ [ n; c; h; w ] ] ->
                let size = Attrs.get_int ~default:2 attrs "size" in
                let stride = Attrs.get_int ~default:2 attrs "stride" in
                let pad = Attrs.get_int ~default:0 attrs "pad" in
                [ n; c; conv_out_dim ~in_dim:h ~kernel:size ~stride ~pad;
                  conv_out_dim ~in_dim:w ~kernel:size ~stride ~pad ]
            | _ -> invalid_arg "max_pool2d: bad input shapes");
        build_te =
          (fun inputs attrs ->
            Op.max_pool2d
              ~size:(Attrs.get_int ~default:2 attrs "size")
              ~stride:(Attrs.get_int ~default:2 attrs "stride")
              ~padding:(Attrs.get_int ~default:0 attrs "pad")
              (arg1 inputs));
        ref_exec =
          (fun inputs attrs ->
            ref_max_pool (arg1 inputs)
              ~size:(Attrs.get_int ~default:2 attrs "size")
              ~stride:(Attrs.get_int ~default:2 attrs "stride")
              ~pad:(Attrs.get_int ~default:0 attrs "pad"));
        op_flops =
          (fun shapes attrs ->
            let size = Attrs.get_int ~default:2 attrs "size" in
            float_of_int (prod (List.hd shapes) * size * size));
      };
    R.register
      {
        R.op_name = "global_avg_pool2d";
        pattern = R.Reduction;
        infer_shape =
          (fun shapes _ ->
            match shapes with
            | [ [ n; c; _; _ ] ] -> [ n; c ]
            | _ -> invalid_arg "global_avg_pool2d: bad input shapes");
        build_te = (fun inputs _ -> Op.global_avg_pool2d (arg1 inputs));
        ref_exec = (fun inputs _ -> ref_global_avg_pool (arg1 inputs));
        op_flops = (fun shapes _ -> float_of_int (prod (List.hd shapes)));
      };
    R.register
      {
        R.op_name = "flatten";
        pattern = R.Injective;
        infer_shape =
          (fun shapes _ ->
            match shapes with
            | [ [ n; c; h; w ] ] -> [ n; c * h * w ]
            | [ [ n; c ] ] -> [ n; c ]
            | _ -> invalid_arg "flatten: bad input shapes");
        build_te =
          (fun inputs _ ->
            let d = arg1 inputs in
            match Tensor.const_shape d with
            | [ _; _; _; _ ] -> Op.flatten d
            | _ -> d);
        ref_exec =
          (fun inputs _ ->
            let d = arg1 inputs in
            match Nd.shape d with
            | [ n; c; h; w ] ->
                let out = Nd.create [ n; c * h * w ] in
                Nd.copy_into ~src:d ~dst:out;
                out
            | _ -> d);
        op_flops = (fun _ _ -> 0.);
      };
    R.register
      {
        R.op_name = "reshape";
        pattern = R.Injective;
        infer_shape =
          (fun shapes attrs ->
            let target = Attrs.get_ints attrs "shape" in
            if prod target <> prod (List.hd shapes) then
              invalid_arg "reshape: element count mismatch";
            target);
        build_te =
          (fun inputs attrs ->
            let d = arg1 inputs in
            let target = Attrs.get_ints attrs "shape" in
            let in_shape = Tensor.const_shape d in
            let row_strides shape =
              let rec build = function
                | [] -> []
                | _ :: rest -> List.fold_left ( * ) 1 rest :: build rest
              in
              build shape
            in
            let tstrides = row_strides target and istrides = row_strides in_shape in
            Tensor.compute ~dtype:(Tensor.dtype d)
              ("reshape_" ^ Tensor.name d)
              (List.map Expr.int target)
              (fun idx ->
                let flat =
                  List.fold_left2
                    (fun acc i stride -> Expr.( + ) acc (Expr.( * ) i (Expr.int stride)))
                    (Expr.int 0) idx tstrides
                in
                let rebuilt =
                  List.map
                    (fun stride -> Expr.( / ) flat (Expr.int stride))
                    istrides
                in
                (* idx_d = flat / stride_d %% dim_d *)
                let rebuilt =
                  List.map2
                    (fun e dim -> Expr.( % ) e (Expr.int dim))
                    rebuilt in_shape
                in
                Tensor.read d rebuilt))
        ;
        ref_exec =
          (fun inputs attrs ->
            let d = arg1 inputs in
            let target = Attrs.get_ints attrs "shape" in
            let out = Nd.create ~dtype:(Nd.dtype d) target in
            Nd.copy_into ~src:d ~dst:out;
            out);
        op_flops = (fun _ _ -> 0.);
      };
    R.register
      {
        R.op_name = "softmax";
        pattern = R.Opaque;
        (* Multi-stage reduction chain: kept whole, like the paper's
           treatment of ops that do not fit the simple categories. *)
        infer_shape = (fun shapes _ -> List.hd shapes);
        build_te = (fun inputs _ -> Op.softmax (arg1 inputs));
        ref_exec = (fun inputs _ -> ref_softmax (arg1 inputs));
        op_flops = (fun shapes _ -> 12. *. float_of_int (prod (List.hd shapes)));
      }
  end
