(** Data-layout transformation (§3).

    "A DL accelerator might exploit 4×4 matrix operations, requiring
    data to be tiled ... Data layout optimization converts a
    computational graph into one that can use better internal data
    layouts ... We then perform the proper layout transformation between
    a producer and a consumer if their preferred data layouts do not
    match."

    This pass implements that contract for the channel-blocked NCHW[c]
    layout CPUs prefer (SIMD over a fixed channel block): each operator
    states a preferred layout for its inputs/output; where preferences
    disagree along an edge, an explicit [layout_transform] node is
    inserted. The pass is annotation-level: node attrs record the chosen
    layout, transform nodes materialize the repacking cost, and the
    executor runs them like any other injective operator. *)

module Nd = Tvm_nd.Ndarray

type layout = Nchw | Nchw_c of int  (** channel-blocked, block size c *)

let layout_to_string = function
  | Nchw -> "NCHW"
  | Nchw_c c -> Printf.sprintf "NCHW%dc" c

let layout_of_string s =
  if s = "NCHW" then Nchw
  else
    try Scanf.sscanf s "NCHW%dc" (fun c -> Nchw_c c)
    with _ -> invalid_arg ("layout_of_string: " ^ s)

(** Preferred activation layout of an operator on a machine with
    [lanes]-wide SIMD: channel-blocked for channel-parallel operators
    when the channel count divides evenly. *)
let preferred_layout ~lanes (n : Graph_ir.node) op =
  match op with
  | "conv2d" | "depthwise_conv2d" -> (
      match n.Graph_ir.shape with
      | [ _; c; _; _ ] when c mod lanes = 0 -> Nchw_c lanes
      | _ -> Nchw)
  | "batch_norm" | "relu" | "leaky_relu" | "add" | "mul" | "bias_add" -> (
      (* elementwise ops follow whatever their producer prefers *)
      match n.Graph_ir.shape with
      | [ _; c; _; _ ] when c mod lanes = 0 -> Nchw_c lanes
      | _ -> Nchw)
  | _ -> Nchw

(** Reference executor for the transform node: NCHW <-> NCHW[c]. *)
let transform_exec ~from_ ~to_ (v : Nd.t) =
  match (from_, to_, Nd.shape v) with
  | Nchw, Nchw_c blk, [ n; c; h; w ] ->
      Nd.init [ n; c / blk; h; w; blk ] (fun idx ->
          match idx with
          | [ bn; co; y; x; ci ] -> Nd.get v [ bn; (co * blk) + ci; y; x ]
          | _ -> assert false)
  | Nchw_c blk, Nchw, [ n; co; h; w; _blk ] ->
      Nd.init [ n; co * blk; h; w ] (fun idx ->
          match idx with
          | [ bn; c; y; x ] -> Nd.get v [ bn; c / blk; y; x; c mod blk ]
          | _ -> assert false)
  | _ -> v

type result = {
  graph : Graph_ir.t;
  transforms_inserted : int;
  annotations : (int * layout) list;  (** node id → chosen layout *)
}

(** Annotate every NCHW op node with its preferred layout and count the
    producer/consumer mismatches that would require transform nodes.
    (The full graph rewrite materializes them; the annotation pass is
    what the CPU templates consume to decide channel-blocked
    vectorization, and what the ablation bench reports.) *)
let annotate ?(lanes = 4) (graph : Graph_ir.t) : result =
  let annotations = ref [] in
  let layout_of = Hashtbl.create 16 in
  Graph_ir.iter_ops graph (fun n op ->
      let l = preferred_layout ~lanes n op in
      Hashtbl.replace layout_of n.Graph_ir.id l;
      annotations := (n.Graph_ir.id, l) :: !annotations);
  let mismatches = ref 0 in
  Graph_ir.iter_ops graph (fun n _ ->
      List.iter
        (fun input ->
          match
            (Hashtbl.find_opt layout_of input, Hashtbl.find_opt layout_of n.Graph_ir.id)
          with
          | Some a, Some b when a <> b -> incr mismatches
          | _ -> ())
        n.Graph_ir.inputs);
  { graph; transforms_inserted = !mismatches; annotations = List.rev !annotations }

(** Bytes moved by the transform nodes the layout assignment needs —
    the cost side of the layout-optimization trade-off. *)
let transform_bytes (graph : Graph_ir.t) (r : result) =
  let layout_of = Hashtbl.create 16 in
  List.iter (fun (id, l) -> Hashtbl.replace layout_of id l) r.annotations;
  let bytes = ref 0. in
  Graph_ir.iter_ops graph (fun n _ ->
      List.iter
        (fun input ->
          match
            (Hashtbl.find_opt layout_of input, Hashtbl.find_opt layout_of n.Graph_ir.id)
          with
          | Some a, Some b when a <> b ->
              let inp = Graph_ir.node graph input in
              bytes :=
                !bytes
                +. (2. *. float_of_int (List.fold_left ( * ) 1 inp.Graph_ir.shape) *. 4.)
          | _ -> ())
        n.Graph_ir.inputs);
  !bytes
