lib/graph/fusion.ml: Array Graph_ir Hashtbl List Op_registry Tvm_te Tvm_tir
