lib/graph/const_fold.ml: Array Graph_ir Hashtbl List Op_registry Option Tvm_nd
