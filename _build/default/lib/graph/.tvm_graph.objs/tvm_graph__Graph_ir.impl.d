lib/graph/graph_ir.ml: Array Attrs Dtype Format List Printf String Tvm_tir
