lib/graph/fusion.mli: Graph_ir Tvm_te
