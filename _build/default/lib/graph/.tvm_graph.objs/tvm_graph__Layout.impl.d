lib/graph/layout.ml: Graph_ir Hashtbl List Printf Scanf Tvm_nd
