lib/graph/mem_plan.ml: Dtype Float Fusion Graph_ir Hashtbl List Tvm_tir
