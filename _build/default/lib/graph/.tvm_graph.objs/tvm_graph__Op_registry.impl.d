lib/graph/op_registry.ml: Attrs Graph_ir Hashtbl List Tvm_nd Tvm_te
