lib/graph/std_ops.ml: Attrs Expr Float List Op_registry Printf Tvm_nd Tvm_te Tvm_tir
