lib/graph/op_registry.mli: Attrs Tvm_nd Tvm_te
