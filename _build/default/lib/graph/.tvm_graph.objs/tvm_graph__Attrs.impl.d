lib/graph/attrs.ml: List Printf String
