(** Operator fusion (§3).

    Implements the paper's generic rules over the four operator
    categories: injective operators fuse with one another; reduction
    operators fuse their injective inputs; complex-out-fusable operators
    (e.g. conv2d) fuse elementwise operators at their output; opaque
    operators stand alone. A producer is only absorbed when it has a
    single consumer — its intermediate would otherwise still be needed
    in memory, defeating the point of fusion. *)

type group = {
  g_id : int;
  g_nodes : int list;  (** member op-node ids, topological, last = output *)
  g_anchor : int;  (** the node whose master schedule template is used *)
  g_inputs : int list;  (** external node ids the group reads *)
  g_output : int;
}

val group_output : group -> int
val group_size : group -> int

(** One group per operator — the "w/o fusion" baseline of Fig 4/14. *)
val no_fusion : Graph_ir.t -> group list

(** Order groups so every group runs after the producers of its inputs
    (absorbing a residual add can make a group depend on a
    later-formed one). *)
val topo_sort_groups : group list -> group list

(** Fused partition covering all op nodes, in executable order. *)
val fuse : Graph_ir.t -> group list

(** Build the fused tensor-expression DAG for a group: placeholders for
    external inputs (returned in [g_inputs] order), each member op
    applied in order; returns the output tensor. *)
val build_group_te : Graph_ir.t -> group -> Tvm_te.Tensor.t * Tvm_te.Tensor.t list

(** Total FLOPs of the group's member operators. *)
val group_flops : Graph_ir.t -> group -> float
