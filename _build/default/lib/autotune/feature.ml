(** Loop-program feature extraction for the ML cost model (§5.2,
    Fig 13).

    Features per configuration: overall arithmetic volume, loop
    annotation one-hots, and — for each of the top-traffic buffers —
    the access count, the touched memory size at the whole-nest and
    innermost levels, reuse ratio, and unit-stride flags. These are the
    paper's "memory access count and reuse ratio of each memory buffer
    at each loop level" in a fixed-length encoding suitable for
    gradient tree boosting. *)

open Tvm_tir

let num_buffer_slots = 5
let per_buffer_feats = 6

let length = 10 + (num_buffer_slots * per_buffer_feats)

let log1 x = Float.log (1. +. Float.max 0. x)

(** Extract the feature vector of a lowered program. *)
let extract (stmt : Stmt.t) : float array =
  let feats = Array.make length 0. in
  let flops =
    try Analysis.flops ~intrin_flops:(fun name -> (Tvm_schedule.Tensor_intrin.find name).Tvm_schedule.Tensor_intrin.flops) stmt
    with _ -> 0.
  in
  feats.(0) <- log1 flops;
  let ann = Analysis.ann_summary stmt in
  feats.(1) <- float_of_int ann.Analysis.n_parallel;
  feats.(2) <- float_of_int ann.Analysis.n_vectorized;
  feats.(3) <- float_of_int ann.Analysis.n_unrolled;
  feats.(4) <- float_of_int ann.Analysis.n_thread_bind;
  feats.(5) <- float_of_int ann.Analysis.n_vthread;
  feats.(6) <- float_of_int ann.Analysis.n_serial;
  (* Allocation scopes. *)
  let shared = ref 0. and local = ref 0. in
  Stmt.iter
    (function
      | Stmt.Allocate (b, _) -> (
          match b.Expr.bscope with
          | Expr.Shared -> shared := !shared +. Expr.Buffer.size_bytes b
          | Expr.Local -> local := !local +. Expr.Buffer.size_bytes b
          | _ -> ())
      | _ -> ())
    stmt;
  feats.(7) <- log1 !shared;
  feats.(8) <- log1 !local;
  let barriers = ref 0 in
  Stmt.iter (function Stmt.Barrier -> incr barriers | _ -> ()) stmt;
  feats.(9) <- float_of_int !barriers;
  (* Per-buffer aggregates, largest traffic first. *)
  let accesses = try Analysis.collect_accesses stmt with _ -> [] in
  let by_buffer = Hashtbl.create 8 in
  List.iter
    (fun (a : Analysis.access) ->
      let key = a.Analysis.acc_buffer.Expr.bid in
      Hashtbl.replace by_buffer key
        (a :: (try Hashtbl.find by_buffer key with Not_found -> [])))
    accesses;
  let summaries =
    Hashtbl.fold
      (fun _ accs acc ->
        let count =
          List.fold_left
            (fun s a -> s +. (float_of_int a.Analysis.acc_count *. a.Analysis.acc_weight))
            0. accs
        in
        let whole =
          List.fold_left
            (fun s a -> Float.max s (Analysis.footprint_bytes_at_level a 0))
            0. accs
        in
        let innermost =
          List.fold_left
            (fun s a ->
              let depth = List.length a.Analysis.acc_loops in
              Float.max s (Analysis.footprint_bytes_at_level a (max 0 (depth - 1))))
            0. accs
        in
        let unit =
          if List.for_all Analysis.is_unit_stride_innermost accs then 1. else 0.
        in
        let is_global =
          match accs with
          | a :: _ when a.Analysis.acc_buffer.Expr.bscope = Expr.Global -> 1.
          | _ -> 0.
        in
        (count, whole, innermost, unit, is_global) :: acc)
      by_buffer []
    |> List.sort (fun (c1, w1, i1, u1, g1) (c2, w2, i2, u2, g2) ->
           (* fully deterministic ordering: hashtable iteration order
              must not leak into the feature vector *)
           compare (c2, w2, i2, u2, g2) (c1, w1, i1, u1, g1))
  in
  List.iteri
    (fun i (count, whole, innermost, unit, is_global) ->
      if i < num_buffer_slots then begin
        let base = 10 + (i * per_buffer_feats) in
        feats.(base) <- log1 count;
        feats.(base + 1) <- log1 whole;
        feats.(base + 2) <- log1 innermost;
        feats.(base + 3) <- unit;
        feats.(base + 4) <- is_global;
        feats.(base + 5) <- if whole > 0. then log1 (count /. whole) else 0.
      end)
    summaries;
  feats
