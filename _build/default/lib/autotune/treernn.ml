(** TreeRNN cost model (§5.2's alternative): a small recursive network
    that summarizes the loop AST directly, without feature engineering
    (Fig 13, right path). Each IR node type has an embedding; children
    states are summed and combined through one tanh layer; a linear
    readout produces the predicted score.

    The paper found tree boosting and TreeRNN to have similar predictive
    quality, with boosting ~2× faster at prediction — the benchmark
    [ablation_features] reproduces that comparison. *)

open Tvm_tir

let hidden = 16
let n_kinds = 12

let kind_of (s : Stmt.t) =
  match s with
  | Stmt.Store _ -> 0
  | Stmt.For { kind = Stmt.Serial; _ } -> 1
  | Stmt.For { kind = Stmt.Parallel; _ } -> 2
  | Stmt.For { kind = Stmt.Vectorized; _ } -> 3
  | Stmt.For { kind = Stmt.Unrolled; _ } -> 4
  | Stmt.For { kind = Stmt.Thread_binding _; _ } -> 5
  | Stmt.For { kind = Stmt.Vthread; _ } -> 6
  | Stmt.If_then_else _ -> 7
  | Stmt.Let_stmt _ | Stmt.Evaluate _ -> 8
  | Stmt.Seq _ -> 9
  | Stmt.Allocate _ -> 10
  | Stmt.Barrier | Stmt.Call_intrin _ | Stmt.Dma_copy _ | Stmt.Push_dep _
  | Stmt.Pop_dep _ | Stmt.Skip ->
      11

type t = {
  embed : float array array;  (** n_kinds × hidden *)
  w : float array array;  (** hidden × 2*hidden combine matrix *)
  readout : float array;
  mutable bias : float;
}

let create seed =
  let rng = Random.State.make [| seed |] in
  let mat r c = Array.init r (fun _ -> Array.init c (fun _ -> (Random.State.float rng 0.2) -. 0.1)) in
  { embed = mat n_kinds hidden; w = mat hidden (2 * hidden); readout = Array.init hidden (fun _ -> (Random.State.float rng 0.2) -. 0.1); bias = 0. }

let children (s : Stmt.t) =
  match s with
  | Stmt.For l -> [ l.Stmt.body ]
  | Stmt.If_then_else (_, t, Some e) -> [ t; e ]
  | Stmt.If_then_else (_, t, None) -> [ t ]
  | Stmt.Let_stmt (_, _, b) | Stmt.Allocate (_, b) -> [ b ]
  | Stmt.Seq ss -> ss
  | Stmt.Store _ | Stmt.Barrier | Stmt.Evaluate _ | Stmt.Call_intrin _
  | Stmt.Dma_copy _ | Stmt.Push_dep _ | Stmt.Pop_dep _ | Stmt.Skip ->
      []

(** Log-extent scalar folded into the state of loop nodes, so tile
    sizes influence the summary. *)
let node_scalar (s : Stmt.t) =
  match s with
  | Stmt.For l -> (
      match Interval.const_of_expr l.Stmt.extent with
      | Some e -> Float.log (1. +. float_of_int e)
      | None -> 0.)
  | _ -> 0.

let rec encode model (s : Stmt.t) : float array =
  let kind = kind_of s in
  let child_sum = Array.make hidden 0. in
  List.iter
    (fun c ->
      let h = encode model c in
      Array.iteri (fun i v -> child_sum.(i) <- child_sum.(i) +. v) h)
    (children s);
  let input = Array.append model.embed.(kind) child_sum in
  let scalar = node_scalar s in
  Array.init hidden (fun i ->
      let acc = ref (scalar *. model.embed.(kind).(i)) in
      Array.iteri (fun j v -> acc := !acc +. (model.w.(i).(j) *. v)) input;
      Float.tanh !acc)

let predict model stmt =
  let h = encode model stmt in
  let acc = ref model.bias in
  Array.iteri (fun i v -> acc := !acc +. (model.readout.(i) *. v)) h;
  !acc

(** Train with SPSA-style perturbation descent on squared error — a
    gradient-free scheme adequate for the small net and dataset sizes
    here (the comparison of interest is prediction quality vs speed,
    not training sophistication). *)
let fit ?(epochs = 30) ?(seed = 7) (stmts : Stmt.t array) (ys : float array) : t =
  let model = create seed in
  let rng = Random.State.make [| seed + 1 |] in
  let n = Array.length stmts in
  if n = 0 then model
  else begin
    (* Bias init at target mean. *)
    model.bias <- Array.fold_left ( +. ) 0. ys /. float_of_int n;
    let loss () =
      let acc = ref 0. in
      Array.iteri
        (fun i s ->
          let d = predict model s -. ys.(i) in
          acc := !acc +. (d *. d))
        stmts;
      !acc /. float_of_int n
    in
    let params =
      Array.concat (Array.to_list model.embed)
      |> fun e ->
      Array.concat [ e; Array.concat (Array.to_list model.w); model.readout ]
    in
    ignore params;
    let step = ref 0.05 in
    for _ = 1 to epochs do
      (* Perturb each matrix block with a random direction; keep if improved. *)
      let before = loss () in
      let perturb arr =
        Array.map (Array.map (fun v -> v +. ((Random.State.float rng 2. -. 1.) *. !step))) arr
      in
      let old_embed = Array.map Array.copy model.embed in
      let old_w = Array.map Array.copy model.w in
      let old_read = Array.copy model.readout in
      let new_embed = perturb model.embed and new_w = perturb model.w in
      Array.blit new_embed 0 model.embed 0 n_kinds;
      Array.blit new_w 0 model.w 0 hidden;
      Array.iteri
        (fun i v -> model.readout.(i) <- v +. ((Random.State.float rng 2. -. 1.) *. !step))
        old_read;
      if loss () > before then begin
        Array.blit old_embed 0 model.embed 0 n_kinds;
        Array.blit old_w 0 model.w 0 hidden;
        Array.blit old_read 0 model.readout 0 hidden
      end
      else step := !step *. 1.05
    done;
    model
  end
