lib/autotune/templates.ml: Cfg_space Expr List Printf Stmt Tuner Tvm_lower Tvm_schedule Tvm_te Tvm_tir
