lib/autotune/explorers.ml: Cfg_space Float Hashtbl List Random
