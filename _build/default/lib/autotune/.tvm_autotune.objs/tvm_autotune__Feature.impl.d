lib/autotune/feature.ml: Analysis Array Expr Float Hashtbl List Stmt Tvm_schedule Tvm_tir
