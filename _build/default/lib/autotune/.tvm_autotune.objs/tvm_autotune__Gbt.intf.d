lib/autotune/gbt.mli:
