lib/autotune/tuner.ml: Array Cfg_space Explorers Feature Float Gbt Hashtbl List Printf Random Tvm_tir
