lib/autotune/gbt.ml: Array Fun List
