lib/autotune/cfg_space.ml: Array Hashtbl List Printf Random String
