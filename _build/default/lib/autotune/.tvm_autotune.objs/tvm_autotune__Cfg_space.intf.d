lib/autotune/cfg_space.mli: Random
