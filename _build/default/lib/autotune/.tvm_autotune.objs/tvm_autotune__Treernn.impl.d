lib/autotune/treernn.ml: Array Float Interval List Random Stmt Tvm_tir
