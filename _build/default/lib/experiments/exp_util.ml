(** Table/series printing helpers shared by the benchmark harness. *)

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subbanner title = Printf.printf "\n-- %s --\n" title

(** Print a table: header row then rows of (label, float list). *)
let table ~columns ~fmt rows =
  let width = 22 in
  Printf.printf "%-*s" width "";
  List.iter (fun c -> Printf.printf "%14s" c) columns;
  print_newline ();
  List.iter
    (fun (label, values) ->
      Printf.printf "%-*s" width label;
      List.iter (fun v -> Printf.printf "%14s" (Printf.sprintf fmt v)) values;
      print_newline ())
    rows

let ms t = 1e3 *. t

(** Geometric mean, ignoring non-finite values. *)
let geomean values =
  let vs = List.filter (fun v -> Float.is_finite v && v > 0.) values in
  match vs with
  | [] -> Float.nan
  | _ ->
      Float.exp
        (List.fold_left (fun acc v -> acc +. Float.log v) 0. vs
        /. float_of_int (List.length vs))

(** Scale factor reducing experiment cost under --quick. *)
let trial_scale = ref 1.0

let trials n = max 8 (int_of_float (float_of_int n *. !trial_scale))
