lib/experiments/fig_e2e.ml: Dtype Exp_util Expr Float List Printf String Tvm Tvm_autotune Tvm_baselines Tvm_graph Tvm_lower Tvm_models Tvm_rpc Tvm_runtime Tvm_schedule Tvm_sim Tvm_te Tvm_tir Tvm_vdla
