lib/experiments/fig_micro.ml: Dtype Exp_util Expr Float List Printf Tvm Tvm_autotune Tvm_baselines Tvm_graph Tvm_models Tvm_rpc Tvm_runtime Tvm_sim Tvm_te Tvm_tir Tvm_vdla
