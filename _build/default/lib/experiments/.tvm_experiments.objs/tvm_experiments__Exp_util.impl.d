lib/experiments/exp_util.ml: Float List Printf String
