lib/experiments/ablations.ml: Array Exp_util Fig_micro Float List Printf Random Sys Tvm_autotune Tvm_graph Tvm_models Tvm_rpc Tvm_sim Tvm_tir
