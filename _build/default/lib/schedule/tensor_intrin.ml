(** Tensor-intrinsic declarations (§4.3, "tensorization").

    An intrinsic declares the behaviour of a hardware tensor instruction
    using the same tensor expression vocabulary (shapes of inputs and
    output, reduction extents), a lowering rule (which variants exist:
    body / reset / update, mirroring the paper's
    [gemm8x8 / fill_zero / fuse_gemm8x8_add]), a cost for the timing
    models, and executable semantics for the functional interpreter.

    Separating the intrinsic from the schedule is what makes
    tensorization extensible: VDLA's 16×16 GEMM, the ARM bit-serial
    micro-kernel, and test intrinsics all go through this one type. *)

type region_reader = int list -> float
type region_writer = int list -> float -> unit

type t = {
  name : string;
  input_shapes : int list list;  (** shapes of the input sub-regions *)
  output_shape : int list;  (** shape of the output sub-region *)
  reduce_extents : int list;  (** reduction extents internal to the intrinsic *)
  flops : float;  (** arithmetic performed by one invocation *)
  has_reduce_update : bool;
      (** whether reset/update variants exist so the intrinsic can be
          applied under an outer reduction loop *)
  execute :
    variant:string -> inputs:region_reader list -> out_read:region_reader ->
    out_write:region_writer -> unit;
      (** functional semantics; [variant] is "body", "reset" or "update" *)
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let register t = Hashtbl.replace registry t.name t

let find name =
  match Hashtbl.find_opt registry name with
  | Some t -> t
  | None -> invalid_arg ("Tensor_intrin.find: unknown intrinsic " ^ name)

let declare ~name ~input_shapes ~output_shape ?(reduce_extents = [])
    ?(has_reduce_update = false) ~flops ~execute () =
  let t =
    { name; input_shapes; output_shape; reduce_extents; flops; has_reduce_update;
      execute }
  in
  register t;
  t

(** Iterate a row-major index space. *)
let iter_space shape f =
  let rank = List.length shape in
  let shape = Array.of_list shape in
  let idx = Array.make rank 0 in
  let total = Array.fold_left ( * ) 1 shape in
  for flat = 0 to total - 1 do
    let rem = ref flat in
    for d = rank - 1 downto 0 do
      idx.(d) <- !rem mod shape.(d);
      rem := !rem / shape.(d)
    done;
    f (Array.to_list idx)
  done

(** [gemm m n k]: dense matrix-multiply intrinsic
    out[i,j] (+)= sum_k a[i,kk] * b[j,kk], the VDLA GEMM unit shape
    (weights stationary, both operands K-major as in §4.3's example). *)
let gemm ?(name_prefix = "gemm") m n k =
  let execute ~variant ~inputs ~out_read ~out_write =
    match (variant, inputs) with
    | "reset", _ -> iter_space [ m; n ] (fun idx -> out_write idx 0.)
    | ("body" | "update"), [ a; b ] ->
        iter_space [ m; n ] (fun idx ->
            match idx with
            | [ ii; jj ] ->
                let acc = ref (if variant = "body" then 0. else out_read idx) in
                for kk = 0 to k - 1 do
                  acc := !acc +. (a [ ii; kk ] *. b [ jj; kk ])
                done;
                out_write idx !acc
            | _ -> assert false)
    | _ -> invalid_arg "gemm intrinsic: bad variant/arity"
  in
  declare
    ~name:(Printf.sprintf "%s%dx%dx%d" name_prefix m n k)
    ~input_shapes:[ [ m; k ]; [ n; k ] ]
    ~output_shape:[ m; n ] ~reduce_extents:[ k ]
    ~has_reduce_update:true
    ~flops:(2. *. float_of_int (m * n * k))
    ~execute ()

(** Bit-serial matrix–vector multiply micro-kernel for ultra
    low-precision inference (§6.2): activations [abits]-bit, weights
    1-bit, accumulated into 32-bit. One invocation computes [n] outputs
    over a [k]-deep dot product using AND+popcount over packed words. *)
let bitserial_gemv ?(abits = 2) n k =
  let execute ~variant ~inputs ~out_read ~out_write =
    match (variant, inputs) with
    | "reset", _ -> iter_space [ n ] (fun idx -> out_write idx 0.)
    | ("body" | "update"), [ a; w ] ->
        (* Semantically a plain dot product; the bit-serial decomposition
           affects cost, not values (weights in {-1,+1} scaled upstream). *)
        iter_space [ n ] (fun idx ->
            match idx with
            | [ j ] ->
                let acc = ref (if variant = "body" then 0. else out_read idx) in
                for kk = 0 to k - 1 do
                  acc := !acc +. (a [ kk ] *. w [ j; kk ])
                done;
                out_write idx !acc
            | _ -> assert false)
    | _ -> invalid_arg "bitserial_gemv: bad variant/arity"
  in
  declare
    ~name:(Printf.sprintf "bitserial_gemv_a%d_n%d_k%d" abits n k)
    ~input_shapes:[ [ k ]; [ n; k ] ]
    ~output_shape:[ n ] ~reduce_extents:[ k ]
    ~has_reduce_update:true
    (* popcount-based: abits AND+popcount word ops per 32 weight bits *)
    ~flops:(float_of_int (n * k * abits) /. 16.)
    ~execute ()
