lib/schedule/tensor_intrin.ml: Array Hashtbl List Printf
