lib/schedule/sched.ml: Array Expr Format Hashtbl Iter_var List Printf Stmt Tensor_intrin Tvm_te Tvm_tir Visit
