lib/schedule/iter_var.ml: Expr Format Printf Tvm_tir
