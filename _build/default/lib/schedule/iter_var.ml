(** Iteration variables of the schedule tree.

    Every loop the lowered code will contain corresponds to one of
    these. Domains are concrete from the start — the paper exploits
    "shape specificity in common DL workloads to optimize for a fixed
    set of input shapes" (§3), so all extents are known at schedule
    construction time, which keeps bound inference exact. *)

open Tvm_tir

type kind =
  | Data_par  (** parallel-safe spatial axis *)
  | Reduction  (** reduction axis; reordering past it is restricted *)

type t = {
  var : Expr.var;
  extent : int;
  kind : kind;
}

let counter = ref 0

let create ?(kind = Data_par) name extent =
  if extent <= 0 then invalid_arg (Printf.sprintf "Iter_var %s: extent %d" name extent);
  { var = Expr.Var.fresh name; extent; kind }

let of_var ?(kind = Data_par) var extent = { var; extent; kind }

let name iv = iv.var.Expr.vname
let equal a b = Expr.Var.equal a.var b.var
let is_reduce iv = iv.kind = Reduction

let pp fmt iv =
  Format.fprintf fmt "%s%s(%d)" (name iv) (if is_reduce iv then "[r]" else "") iv.extent
