(** Accelerator schedules for VDLA (§6.4).

    Convolutions are offloaded as tiled GEMMs over im2col-transformed
    activations (the host CPU performs the layout transformation, as on
    the PYNQ system where "operations like residual layers and
    activations were also performed on the CPU"). The schedule uses
    every TVM-specific primitive the paper lists for accelerators:
    special memory scopes (INPUT/WEIGHT/ACCUM SRAMs), tensorization
    onto the 16×16 GEMM intrinsic, and virtual threading for latency
    hiding. *)

open Tvm_tir
module Tensor = Tvm_te.Tensor
module Sched = Tvm_schedule.Sched
module Iter_var = Tvm_schedule.Iter_var
module Tensor_intrin = Tvm_schedule.Tensor_intrin
module Lower = Tvm_lower.Lower
module Vthread_lower = Tvm_lower.Vthread_lower
module Machine = Tvm_sim.Machine

(** GEMM intrinsics of the matrix unit, one per reduction depth the
    schedule stages through SRAM (the unit accumulates along k). *)
let gemm_intrin =
  let cache = Hashtbl.create 4 in
  fun kchunk ->
    match Hashtbl.find_opt cache kchunk with
    | Some i -> i
    | None ->
        let i = Tensor_intrin.gemm 16 16 kchunk in
        Hashtbl.replace cache kchunk i;
        i

type workload = {
  wl_a : Tensor.t;  (** activations, [m; k] int8 *)
  wl_w : Tensor.t;  (** weights, [n; k] int8 *)
  wl_c : Tensor.t;  (** output, [m; n] int32 *)
  wl_m : int;
  wl_n : int;
  wl_k : int;
}

let round_up x q = (x + q - 1) / q * q

(** Build the [m;k]×[n;k] → [m;n] GEMM workload (int8 → int32). *)
let gemm_workload ?(name = "vdla_gemm") ~m ~n ~k () : workload =
  if m mod 16 <> 0 || n mod 16 <> 0 || k mod 16 <> 0 then
    invalid_arg "gemm_workload: dims must be multiples of 16 (pad first)";
  let a = Tensor.placeholder ~dtype:Dtype.Int8 (name ^ "_A") [ Expr.int m; Expr.int k ] in
  let w = Tensor.placeholder ~dtype:Dtype.Int8 (name ^ "_W") [ Expr.int n; Expr.int k ] in
  let rk = Tensor.reduce_axis ~name:"k" k in
  let c =
    Tensor.compute_reduce ~dtype:Dtype.Int32 name [ Expr.int m; Expr.int n ]
      ~raxes:[ rk ] (fun idx ->
        match idx with
        | [ y; x ] ->
            Expr.binop Expr.Mul
              (Tensor.read a [ y; Tensor.rvar rk ])
              (Tensor.read w [ x; Tensor.rvar rk ])
        | _ -> invalid_arg "gemm_workload")
  in
  { wl_a = a; wl_w = w; wl_c = c; wl_m = m; wl_n = n; wl_k = k }

(** Lower the workload for VDLA. [vthreads = 1] produces the
    no-latency-hiding stream; [vthreads >= 2] exposes pipeline
    parallelism through virtual threading (§4.4). *)
let schedule ?(vthreads = 2) ?(kchunk = 64) (wl : workload) : Stmt.t =
  let kchunk = if wl.wl_k mod kchunk = 0 then kchunk else 16 in
  let intrin = gemm_intrin kchunk in
  let sched = Sched.create [ wl.wl_c ] in
  let out_st = Sched.find sched wl.wl_c in
  let cl = Sched.cache_write sched out_st Expr.Accel_acc in
  (* Output tiling into 16×16 blocks, grouped into virtual threads. *)
  let y = Sched.axis out_st 0 and x = Sched.axis out_st 1 in
  let yo, xo, _yi, _xi = Sched.tile out_st y x ~y_factor:16 ~x_factor:16 in
  let t = Sched.fuse out_st yo xo in
  let tiles = (wl.wl_m / 16) * (wl.wl_n / 16) in
  let vthreads = max 1 (min vthreads tiles) in
  if tiles mod vthreads <> 0 then
    invalid_arg "vdla schedule: tile count must divide the vthread count";
  let _to_, tv = Sched.split out_st t ~factor:vthreads in
  if vthreads > 1 then Sched.vthread out_st tv;
  Sched.compute_at cl ~target:out_st ~level:tv;
  (* Reduction chunking: one [kchunk]-deep GEMM wave per on-chip load. *)
  let rk = Sched.reduce_axis cl 0 in
  let ko, ki = Sched.split cl rk ~factor:kchunk in
  Sched.reorder cl ((ko :: cl.Sched.s_root_axes) @ [ ki ]);
  (match cl.Sched.s_root_axes with
  | first :: _ -> Sched.tensorize cl first intrin
  | [] -> assert false);
  (* Stage operands into the INPUT and WEIGHT SRAMs per k-chunk. *)
  let inp = Sched.cache_read sched (Tensor.buffer wl.wl_a) Expr.Accel_inp [ cl ] in
  Sched.compute_at inp ~target:cl ~level:ko;
  let wgt = Sched.cache_read sched (Tensor.buffer wl.wl_w) Expr.Accel_wgt [ cl ] in
  Sched.compute_at wgt ~target:cl ~level:ko;
  let lowered = Lower.lower ~target:Lower.Accel sched in
  Vthread_lower.run lowered

(** Assemble + simulate; checks SRAM capacity. *)
let simulate ?(accel = Machine.vdla) ?(vthreads = 2) ?(kchunk = 64) (wl : workload) :
    Isa.insn list * Des.stats =
  let stmt = schedule ~vthreads ~kchunk wl in
  let inp, wgt, acc = Assemble.sram_usage stmt in
  if inp > float_of_int accel.Machine.inp_sram_bytes then
    invalid_arg "vdla: INPUT SRAM overflow";
  if wgt > float_of_int accel.Machine.wgt_sram_bytes then
    invalid_arg "vdla: WEIGHT SRAM overflow";
  if acc > float_of_int accel.Machine.acc_sram_bytes then
    invalid_arg "vdla: ACCUM SRAM overflow";
  let stream = Assemble.run stmt in
  (stream, Des.run accel stream)

(** GEMM dimensions of a conv2d layer lowered by im2col, padded to the
    matrix-unit granularity. *)
let conv_as_gemm ~h ~w ~ic ~oc ~kernel ~stride =
  let oh = ((h - kernel) / stride) + 1 + (if kernel = 1 then 0 else 0) in
  (* SAME padding: out spatial = ceil(in/stride). *)
  let oh = max oh ((h + stride - 1) / stride) in
  let ow = oh in
  ignore w;
  let m = round_up (oh * ow) 16 in
  let n = round_up oc 16 in
  let k = round_up (ic * kernel * kernel) 16 in
  (m, n, k)

(** Wall-clock for running a conv layer on VDLA, plus utilization. *)
let conv_layer_time ?(accel = Machine.vdla) ?(vthreads = 2) ?(kchunk = 64) ~h ~w ~ic
    ~oc ~kernel ~stride () =
  let m, n, k = conv_as_gemm ~h ~w ~ic ~oc ~kernel ~stride in
  let wl = gemm_workload ~name:(Printf.sprintf "conv_%dx%d_%d_%d" h w ic oc) ~m ~n ~k () in
  let stream, stats = simulate ~accel ~vthreads ~kchunk wl in
  ignore stream;
  (Des.time_s accel stats, stats)
