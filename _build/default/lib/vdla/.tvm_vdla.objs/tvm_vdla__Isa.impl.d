lib/vdla/isa.ml: Expr Printf Stmt Tvm_tir
