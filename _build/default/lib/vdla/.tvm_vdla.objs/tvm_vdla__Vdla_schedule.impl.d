lib/vdla/vdla_schedule.ml: Assemble Des Dtype Expr Hashtbl Isa Printf Stmt Tvm_lower Tvm_schedule Tvm_sim Tvm_te Tvm_tir
