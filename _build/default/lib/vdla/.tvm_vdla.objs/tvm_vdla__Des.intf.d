lib/vdla/des.mli: Isa Tvm_sim
