lib/vdla/assemble.ml: Dtype Expr Interval Isa List Option Stmt Tvm_schedule Tvm_tir
