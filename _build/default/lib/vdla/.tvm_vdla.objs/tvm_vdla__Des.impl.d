lib/vdla/des.ml: Float Hashtbl Isa List Printf Queue Tvm_sim
