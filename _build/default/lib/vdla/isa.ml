(** VDLA instruction set (Fig 20).

    The accelerator is programmed as a tensor processor: DMA loads into
    the on-chip INPUT/WEIGHT memories, GEMM/ALU operations against the
    register file, DMA stores back to DRAM, and explicit dependence
    token push/pop between the load (LD), compute (EX) and store (ST)
    units — the ISA-level form of Fig 9's queues. *)

open Tvm_tir

type unit_ = Ld | Ex | St

let unit_of_pipe = function Stmt.Ld -> Ld | Stmt.Ex -> Ex | Stmt.St -> St
let unit_name = function Ld -> "ld" | Ex -> "ex" | St -> "st"

type insn =
  | Dma_load of { bytes : float; dst_scope : Expr.scope }
  | Dma_store of { bytes : float }
  | Gemm of { m : int; n : int; k : int }
  | Alu of { elems : int }
  | Push of { from_ : unit_; to_ : unit_ }
  | Pop of { from_ : unit_; to_ : unit_ }

(** The unit whose command queue executes the instruction. Pushes run
    on the producing unit, pops on the consuming unit. *)
let unit_of = function
  | Dma_load _ -> Ld
  | Dma_store _ -> St
  | Gemm _ | Alu _ -> Ex
  | Push { from_; _ } -> from_
  | Pop { to_; _ } -> to_

let to_string = function
  | Dma_load { bytes; dst_scope } ->
      Printf.sprintf "ld.dma %.0fB -> %s" bytes (Expr.scope_to_string dst_scope)
  | Dma_store { bytes } -> Printf.sprintf "st.dma %.0fB -> dram" bytes
  | Gemm { m; n; k } -> Printf.sprintf "ex.gemm %dx%dx%d" m n k
  | Alu { elems } -> Printf.sprintf "ex.alu %d" elems
  | Push { from_; to_ } ->
      Printf.sprintf "%s.push_dep_to(%s)" (unit_name from_) (unit_name to_)
  | Pop { from_; to_ } ->
      Printf.sprintf "%s.pop_dep_from(%s)" (unit_name to_) (unit_name from_)
