(** Discrete-event simulation of the VDLA decoupled access-execute
    pipeline (Fig 9 / Fig 20).

    Three units — memory load (LD), compute (EX), memory store (ST) —
    each execute their command queue in order; dependence tokens flow
    through FIFO queues between unit pairs, and a [Pop] blocks its unit
    until the matching [Push] has completed on the producing unit.
    Latency hiding is not assumed anywhere: it {e emerges} when the
    instruction stream (produced by virtual-thread lowering) lets one
    unit run ahead of another. *)

module Machine = Tvm_sim.Machine

type stats = {
  total_cycles : float;
  ld_busy : float;
  ex_busy : float;
  st_busy : float;
  compute_utilization : float;  (** EX busy fraction of total *)
  insn_count : int;
  gemm_flops : float;
}

(** Raised when a [Pop] can never be satisfied — a malformed stream. *)
exception Deadlock of string

(** Cycle cost of one instruction on the given machine. *)
val insn_cycles : Machine.accel -> Isa.insn -> float

(** Run the stream to completion. *)
val run : Machine.accel -> Isa.insn list -> stats

val time_s : Machine.accel -> stats -> float

(** Achieved (ops/byte, GOPS) — the coordinates of a Fig 10 roofline
    point. *)
val roofline_point : Machine.accel -> Isa.insn list -> stats -> float * float
