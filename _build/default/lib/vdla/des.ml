(** Discrete-event simulation of the VDLA decoupled access-execute
    pipeline (Fig 9 / Fig 20).

    Three units — memory load (LD), compute (EX), memory store (ST) —
    each execute their command queue in order. Dependence tokens flow
    through FIFO queues between unit pairs: a [Pop] blocks its unit
    until the matching [Push] has completed on the producing unit.
    Latency hiding is not assumed anywhere: it {e emerges} when the
    instruction stream (produced by virtual-thread lowering) allows one
    unit to run ahead of another. *)

module Machine = Tvm_sim.Machine

type stats = {
  total_cycles : float;
  ld_busy : float;
  ex_busy : float;
  st_busy : float;
  compute_utilization : float;  (** EX busy fraction of total *)
  insn_count : int;
  gemm_flops : float;
}

exception Deadlock of string

let insn_cycles (accel : Machine.accel) (i : Isa.insn) =
  match i with
  | Isa.Dma_load { bytes; _ } | Isa.Dma_store { bytes } ->
      accel.Machine.dma_setup_cycles +. (bytes /. accel.Machine.dram_bytes_per_cycle)
  | Isa.Gemm { m; n; k } ->
      (* The matrix unit retires one m×n MAC wave per cycle along k. *)
      let waves_m = (m + accel.Machine.gemm_m - 1) / accel.Machine.gemm_m in
      let waves_n = (n + accel.Machine.gemm_n - 1) / accel.Machine.gemm_n in
      float_of_int (waves_m * waves_n * k)
  | Isa.Alu { elems } -> float_of_int ((elems + 15) / 16)
  | Isa.Push _ | Isa.Pop _ -> 1.

let gemm_flops_of = function
  | Isa.Gemm { m; n; k } -> 2. *. float_of_int (m * n * k)
  | Isa.Alu { elems } -> float_of_int elems
  | Isa.Dma_load _ | Isa.Dma_store _ | Isa.Push _ | Isa.Pop _ -> 0.

type unit_state = {
  mutable queue : Isa.insn list;
  mutable time : float;  (** cycle at which the unit becomes free *)
  mutable busy : float;
}

(** Run the stream; returns pipeline statistics. *)
let run (accel : Machine.accel) (stream : Isa.insn list) : stats =
  let ld = { queue = []; time = 0.; busy = 0. } in
  let ex = { queue = []; time = 0.; busy = 0. } in
  let st = { queue = []; time = 0.; busy = 0. } in
  let unit_state = function Isa.Ld -> ld | Isa.Ex -> ex | Isa.St -> st in
  (* Partition the stream into per-unit command queues (stream order). *)
  let rev_q = Hashtbl.create 3 in
  List.iter
    (fun i ->
      let u = Isa.unit_of i in
      Hashtbl.replace rev_q u (i :: (try Hashtbl.find rev_q u with Not_found -> [])))
    stream;
  List.iter
    (fun u -> (unit_state u).queue <- List.rev (try Hashtbl.find rev_q u with Not_found -> []))
    [ Isa.Ld; Isa.Ex; Isa.St ];
  (* Token queues: completion times of pushes, consumed FIFO by pops. *)
  let tokens : (Isa.unit_ * Isa.unit_, float Queue.t) Hashtbl.t = Hashtbl.create 6 in
  let token_q edge =
    match Hashtbl.find_opt tokens edge with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace tokens edge q;
        q
  in
  let gemm_flops = ref 0. in
  let insn_count = List.length stream in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun u ->
        let st_u = unit_state u in
        let continue_ = ref true in
        while !continue_ do
          match st_u.queue with
          | [] -> continue_ := false
          | insn :: rest -> (
              match insn with
              | Isa.Pop { from_; to_ } ->
                  let q = token_q (from_, to_) in
                  if Queue.is_empty q then continue_ := false
                  else begin
                    let ready = Queue.pop q in
                    st_u.time <- Float.max st_u.time ready +. 1.;
                    st_u.queue <- rest;
                    progress := true
                  end
              | Isa.Push { from_; to_ } ->
                  st_u.time <- st_u.time +. 1.;
                  Queue.push st_u.time (token_q (from_, to_));
                  st_u.queue <- rest;
                  progress := true
              | _ ->
                  let dur = insn_cycles accel insn in
                  st_u.time <- st_u.time +. dur;
                  st_u.busy <- st_u.busy +. dur;
                  gemm_flops := !gemm_flops +. gemm_flops_of insn;
                  st_u.queue <- rest;
                  progress := true)
        done)
      [ Isa.Ld; Isa.Ex; Isa.St ]
  done;
  (match (ld.queue, ex.queue, st.queue) with
  | [], [], [] -> ()
  | _ ->
      raise
        (Deadlock
           (Printf.sprintf "vdla pipeline deadlock: %d ld / %d ex / %d st commands stuck"
              (List.length ld.queue) (List.length ex.queue) (List.length st.queue))));
  let total = Float.max ld.time (Float.max ex.time st.time) in
  {
    total_cycles = total;
    ld_busy = ld.busy;
    ex_busy = ex.busy;
    st_busy = st.busy;
    compute_utilization = (if total > 0. then ex.busy /. total else 0.);
    insn_count;
    gemm_flops = !gemm_flops;
  }

let time_s (accel : Machine.accel) stats =
  stats.total_cycles /. (accel.Machine.accel_freq_mhz *. 1e6)

(** Achieved GOPS and operational intensity (ops per DRAM byte) — the
    coordinates of Fig 10's roofline points. *)
let roofline_point (accel : Machine.accel) (stream : Isa.insn list) stats =
  let dram_bytes =
    List.fold_left
      (fun acc i ->
        match i with
        | Isa.Dma_load { bytes; _ } | Isa.Dma_store { bytes } -> acc +. bytes
        | Isa.Gemm _ | Isa.Alu _ | Isa.Push _ | Isa.Pop _ -> acc)
      0. stream
  in
  let seconds = time_s accel stats in
  let gops = stats.gemm_flops /. 1e9 /. seconds in
  let intensity = if dram_bytes > 0. then stats.gemm_flops /. dram_bytes else 0. in
  (intensity, gops)
