(** VDLA code generation: translate a lowered (and vthread-lowered)
    accelerator loop program into the linear VDLA instruction stream.

    "Our code generation algorithm then translates the accelerator
    program to a series of calls into the runtime API" (§6.4) —
    the runtime API here being the {!Isa} instructions the
    discrete-event simulator executes.

    Serial loops with constant extents are fully unrolled (instruction
    order is what the DAE pipeline consumes); loop nests that merely
    copy between an on-chip buffer and DRAM element-by-element are
    collapsed into single DMA transfers. *)

open Tvm_tir

exception Codegen_error of string

let is_accel_scope = function
  | Expr.Accel_wgt | Expr.Accel_inp | Expr.Accel_acc -> true
  | Expr.Global | Expr.Shared | Expr.Local -> false

(** Recognize a loop nest that only copies elements between
    accelerator buffers and DRAM (possibly several interleaved copies
    after vthread merging); return one transfer per copy statement. *)
let rec as_copy_nest (s : Stmt.t) ~(iters : float) :
    (float * [ `Load | `Store ]) list option =
  let classify dst src =
    let bytes scope_buf = iters *. Dtype.bytes scope_buf.Expr.bdtype in
    if is_accel_scope dst.Expr.bscope && not (is_accel_scope src.Expr.bscope) then
      Some (bytes dst, `Load)
    else if is_accel_scope src.Expr.bscope && not (is_accel_scope dst.Expr.bscope)
    then Some (bytes dst, `Store)
    else None
  in
  match s with
  | Stmt.For l -> (
      match Interval.const_of_expr l.Stmt.extent with
      | Some e -> as_copy_nest l.Stmt.body ~iters:(iters *. float_of_int e)
      | None -> None)
  | Stmt.Let_stmt (_, _, b) -> as_copy_nest b ~iters
  | Stmt.Store (dst, _, Expr.Load (src, _)) ->
      ( match classify dst src with Some c -> Some [ c ] | None -> None)
  | Stmt.Seq _ ->
      let items = Stmt.flatten_seq s in
      let copies =
        List.map
          (function
            | Stmt.Store (dst, _, Expr.Load (src, _)) -> classify dst src
            | _ -> None)
          items
      in
      if copies <> [] && List.for_all Option.is_some copies then
        Some (List.map Option.get copies)
      else None
  | Stmt.Store _ | Stmt.If_then_else _ | Stmt.Allocate _ | Stmt.Barrier
  | Stmt.Evaluate _ | Stmt.Call_intrin _ | Stmt.Dma_copy _ | Stmt.Push_dep _
  | Stmt.Pop_dep _ | Stmt.Skip ->
      None

(** On-chip storage demand per scope (bytes), from the allocations. *)
let sram_usage (stmt : Stmt.t) =
  let inp = ref 0. and wgt = ref 0. and acc = ref 0. in
  Stmt.iter
    (function
      | Stmt.Allocate (b, _) -> (
          match b.Expr.bscope with
          | Expr.Accel_inp -> inp := !inp +. Expr.Buffer.size_bytes b
          | Expr.Accel_wgt -> wgt := !wgt +. Expr.Buffer.size_bytes b
          | Expr.Accel_acc -> acc := !acc +. Expr.Buffer.size_bytes b
          | Expr.Global | Expr.Shared | Expr.Local -> ())
      | _ -> ())
    stmt;
  (!inp, !wgt, !acc)

let gemm_shape_of_intrin name =
  let intrin = Tvm_schedule.Tensor_intrin.find name in
  match
    (intrin.Tvm_schedule.Tensor_intrin.output_shape,
     intrin.Tvm_schedule.Tensor_intrin.reduce_extents)
  with
  | [ m; n ], [ k ] -> Some (m, n, k)
  | [ n ], [ k ] -> Some (1, n, k)
  | _ -> None

(** Assemble the instruction stream. *)
let run (stmt : Stmt.t) : Isa.insn list =
  let out = ref [] in
  let emit i = out := i :: !out in
  let rec walk (s : Stmt.t) =
    match as_copy_nest s ~iters:1. with
    | Some copies ->
        List.iter
          (function
            | bytes, `Load -> emit (Isa.Dma_load { bytes; dst_scope = Expr.Accel_inp })
            | bytes, `Store -> emit (Isa.Dma_store { bytes }))
          copies
    | None -> (
        match s with
        | Stmt.For l -> (
            match Interval.const_of_expr l.Stmt.extent with
            | Some e ->
                for _ = 1 to e do
                  walk l.Stmt.body
                done
            | None -> raise (Codegen_error "vdla: non-constant loop extent"))
        | Stmt.Seq ss -> List.iter walk ss
        | Stmt.Allocate (_, b) | Stmt.Let_stmt (_, _, b) -> walk b
        | Stmt.If_then_else (_, t, e) ->
            walk t;
            Option.iter walk e
        | Stmt.Dma_copy d ->
            let elems = List.fold_left ( * ) 1 d.Stmt.dma_extents in
            if is_accel_scope d.Stmt.dma_dst.Expr.bscope then
              emit
                (Isa.Dma_load
                   { bytes = float_of_int elems *. Dtype.bytes d.Stmt.dma_dst.Expr.bdtype;
                     dst_scope = d.Stmt.dma_dst.Expr.bscope })
            else
              emit
                (Isa.Dma_store
                   { bytes = float_of_int elems *. Dtype.bytes d.Stmt.dma_src.Expr.bdtype })
        | Stmt.Call_intrin ic -> (
            match gemm_shape_of_intrin ic.Stmt.intrin_name with
            | Some (m, n, k) ->
                if ic.Stmt.variant = "reset" then
                  emit (Isa.Alu { elems = m * n })
                else emit (Isa.Gemm { m; n; k })
            | None -> emit (Isa.Alu { elems = 256 }))
        | Stmt.Push_dep (a, b) ->
            emit (Isa.Push { from_ = Isa.unit_of_pipe a; to_ = Isa.unit_of_pipe b })
        | Stmt.Pop_dep (a, b) ->
            emit (Isa.Pop { from_ = Isa.unit_of_pipe a; to_ = Isa.unit_of_pipe b })
        | Stmt.Store _ | Stmt.Evaluate _ ->
            (* Residual scalar work (e.g. guard arithmetic): price as ALU. *)
            emit (Isa.Alu { elems = 1 })
        | Stmt.Barrier | Stmt.Skip -> ())
  in
  walk stmt;
  List.rev !out
