(** Deep-learning operator library, every operator expressed in the
    tensor expression language (so every one of them is schedulable and
    tunable — the point of §4).

    Layout convention: activations are NCHW, convolution weights are
    OIHW, depthwise weights are CMHW (M = channel multiplier, 1 here,
    matching Table 2's note). *)

open Tvm_tir

let i = Expr.int
let ( +! ) = Expr.( + )
let ( -! ) = Expr.( - )
let ( *! ) = Expr.( * )
let ( /! ) = Expr.( / )
let ( %! ) = Expr.( % )

let arity_error op idx =
  invalid_arg (Printf.sprintf "%s: unexpected rank %d" op (List.length idx))

(* ------------------------------------------------------------------ *)
(* Elementwise (injective) operators                                   *)
(* ------------------------------------------------------------------ *)

let unary ?name fname f t =
  let name = match name with Some n -> n | None -> fname ^ "_" ^ Tensor.name t in
  ignore f;
  Tensor.compute ~dtype:(Tensor.dtype t) name (Tensor.shape t) (fun idx ->
      Expr.Call (fname, [ Tensor.read t idx ]))

let relu t =
  Tensor.compute ~dtype:(Tensor.dtype t) ("relu_" ^ Tensor.name t) (Tensor.shape t)
    (fun idx -> Expr.max_ (Tensor.read t idx) (Expr.f32 0.))

let leaky_relu ?(alpha = 0.2) t =
  Tensor.compute ~dtype:(Tensor.dtype t) ("lrelu_" ^ Tensor.name t) (Tensor.shape t)
    (fun idx ->
      let v = Tensor.read t idx in
      Expr.max_ v (Expr.f32 alpha *! v))

let tanh_ t = unary "tanh" Float.tanh t
let sigmoid t = unary "sigmoid" (fun x -> 1. /. (1. +. Float.exp (-.x))) t
let exp_ t = unary "exp" Float.exp t

let add a b =
  Tensor.compute ~dtype:(Tensor.dtype a) ("add_" ^ Tensor.name a) (Tensor.shape a)
    (fun idx -> Tensor.read a idx +! Tensor.read b idx)

let mul a b =
  Tensor.compute ~dtype:(Tensor.dtype a) ("mul_" ^ Tensor.name a) (Tensor.shape a)
    (fun idx -> Tensor.read a idx *! Tensor.read b idx)

(** Inference-time batch norm folded to a per-channel scale and shift —
    the form in which BN participates in the paper's fused conv+bn+relu
    workload (Fig 4). Channel is dim 1 of NCHW. *)
let scale_shift data scale shift =
  Tensor.compute ~dtype:(Tensor.dtype data)
    ("bn_" ^ Tensor.name data) (Tensor.shape data) (fun idx ->
      match idx with
      | [ _; c; _; _ ] -> (Tensor.read data idx *! Tensor.read scale [ c ]) +! Tensor.read shift [ c ]
      | [ _; c ] -> (Tensor.read data idx *! Tensor.read scale [ c ]) +! Tensor.read shift [ c ]
      | _ -> arity_error "scale_shift" idx)

let bias_add data bias =
  Tensor.compute ~dtype:(Tensor.dtype data) ("biasadd_" ^ Tensor.name data)
    (Tensor.shape data) (fun idx ->
      match idx with
      | [ _; c; _; _ ] | [ _; c ] -> Tensor.read data idx +! Tensor.read bias [ c ]
      | _ -> arity_error "bias_add" idx)

(* ------------------------------------------------------------------ *)
(* Padding                                                             *)
(* ------------------------------------------------------------------ *)

(** Zero padding of the two spatial dims of an NCHW tensor. Expressed
    with a lazily-evaluated [select] so the out-of-range branch never
    reads out of bounds. *)
let pad ?(value = 0.) data ~pad_h ~pad_w =
  match Tensor.shape data with
  | [ n; c; h; w ] ->
      let shape = [ n; c; h +! i (2 * pad_h); w +! i (2 * pad_w) ] in
      Tensor.compute ~dtype:(Tensor.dtype data) ("pad_" ^ Tensor.name data) shape
        (fun idx ->
          match idx with
          | [ bn; bc; y; x ] ->
              if pad_h = 0 && pad_w = 0 then Tensor.read data [ bn; bc; y; x ]
              else
                let inside =
                  Expr.and_
                    (Expr.and_ Expr.(y >= i pad_h) Expr.(y < (h +! i pad_h)))
                    (Expr.and_ Expr.(x >= i pad_w) Expr.(x < (w +! i pad_w)))
                in
                Expr.select inside
                  (Tensor.read data [ bn; bc; y -! i pad_h; x -! i pad_w ])
                  (Expr.f32 value)
          | _ -> arity_error "pad" idx)
  | _ -> invalid_arg "pad: expected NCHW input"

let same_padding ~kernel = (kernel - 1) / 2

(* ------------------------------------------------------------------ *)
(* Convolutions                                                        *)
(* ------------------------------------------------------------------ *)

(** Direct 2-D convolution, NCHW/OIHW. [pad = `Same] computes the
    padding Table 2's workloads use. Output [n, oc, oh, ow]. *)
let conv2d ?(name = "conv") ?(stride = 1) ?(padding = `Same) data weight =
  match (Tensor.shape data, Tensor.shape weight) with
  | [ n; _c; h; w ], [ oc; ic; kh; kw ] ->
      let khc =
        match Interval.const_of_expr kh with
        | Some k -> k
        | None -> invalid_arg "conv2d: symbolic kernel"
      in
      let kwc =
        match Interval.const_of_expr kw with Some k -> k | None -> invalid_arg "conv2d"
      in
      let icc =
        match Interval.const_of_expr ic with Some k -> k | None -> invalid_arg "conv2d"
      in
      let p = match padding with `Same -> same_padding ~kernel:khc | `Valid -> 0 | `Explicit p -> p in
      let padded = if p > 0 then pad data ~pad_h:p ~pad_w:p else data in
      let oh = ((h +! i (2 * p) -! kh) /! i stride) +! i 1 in
      let ow = ((w +! i (2 * p) -! kw) /! i stride) +! i 1 in
      let rc = Tensor.reduce_axis ~name:"rc" icc in
      let ry = Tensor.reduce_axis ~name:"ry" khc in
      let rx = Tensor.reduce_axis ~name:"rx" kwc in
      Tensor.compute_reduce ~dtype:(Tensor.dtype data) name [ n; oc; oh; ow ]
        ~raxes:[ rc; ry; rx ] (fun idx ->
          match idx with
          | [ bn; foc; y; x ] ->
              Tensor.read padded
                [ bn; Tensor.rvar rc;
                  (y *! i stride) +! Tensor.rvar ry;
                  (x *! i stride) +! Tensor.rvar rx ]
              *! Tensor.read weight [ foc; Tensor.rvar rc; Tensor.rvar ry; Tensor.rvar rx ]
          | _ -> arity_error "conv2d" idx)
  | _ -> invalid_arg "conv2d: expected NCHW data and OIHW weight"

(** Depthwise 2-D convolution (MobileNet's workhorse, Table 2 D1–D9);
    channel multiplier 1, weights CMHW with M=1 collapsed to C1HW. *)
let depthwise_conv2d ?(name = "dwconv") ?(stride = 1) ?(padding = `Same) data weight =
  match (Tensor.shape data, Tensor.shape weight) with
  | [ n; c; h; w ], [ _c2; _one; kh; kw ] ->
      let khc = match Interval.const_of_expr kh with Some k -> k | None -> invalid_arg "dw" in
      let kwc = match Interval.const_of_expr kw with Some k -> k | None -> invalid_arg "dw" in
      let p = match padding with `Same -> same_padding ~kernel:khc | `Valid -> 0 | `Explicit p -> p in
      let padded = if p > 0 then pad data ~pad_h:p ~pad_w:p else data in
      let oh = ((h +! i (2 * p) -! kh) /! i stride) +! i 1 in
      let ow = ((w +! i (2 * p) -! kw) /! i stride) +! i 1 in
      let ry = Tensor.reduce_axis ~name:"ry" khc in
      let rx = Tensor.reduce_axis ~name:"rx" kwc in
      Tensor.compute_reduce ~dtype:(Tensor.dtype data) name [ n; c; oh; ow ]
        ~raxes:[ ry; rx ] (fun idx ->
          match idx with
          | [ bn; fc; y; x ] ->
              Tensor.read padded
                [ bn; fc; (y *! i stride) +! Tensor.rvar ry; (x *! i stride) +! Tensor.rvar rx ]
              *! Tensor.read weight [ fc; i 0; Tensor.rvar ry; Tensor.rvar rx ]
          | _ -> arity_error "depthwise_conv2d" idx)
  | _ -> invalid_arg "depthwise_conv2d: expected NCHW data and C1HW weight"

(** Transposed convolution (DCGAN's generator). Implemented as
    zero-dilation of the input followed by a direct convolution with the
    spatially-flipped weight, the standard reduction. *)
let conv2d_transpose ?(name = "deconv") ?(stride = 2) ?(padding = 1) data weight =
  match (Tensor.shape data, Tensor.shape weight) with
  | [ n; c; h; w ], [ _ic; oc; kh; kw ] ->
      let hc = match Interval.const_of_expr h with Some k -> k | None -> invalid_arg "deconv" in
      let wc = match Interval.const_of_expr w with Some k -> k | None -> invalid_arg "deconv" in
      let khc = match Interval.const_of_expr kh with Some k -> k | None -> invalid_arg "deconv" in
      let kwc = match Interval.const_of_expr kw with Some k -> k | None -> invalid_arg "deconv" in
      let icc =
        match Interval.const_of_expr c with Some k -> k | None -> invalid_arg "deconv"
      in
      (* Dilated input: size stride*(h-1)+1, with border padding kh-1-p. *)
      let dil_h = (stride * (hc - 1)) + 1 and dil_w = (stride * (wc - 1)) + 1 in
      let bp_h = khc - 1 - padding and bp_w = kwc - 1 - padding in
      let dil =
        Tensor.compute ~dtype:(Tensor.dtype data) (name ^ "_dilate")
          [ n; c; i (dil_h + (2 * bp_h)); i (dil_w + (2 * bp_w)) ]
          (fun idx ->
            match idx with
            | [ bn; bc; y; x ] ->
                let yy = y -! i bp_h and xx = x -! i bp_w in
                let on_grid =
                  Expr.and_
                    (Expr.and_ Expr.(yy >= i 0) Expr.(yy < i dil_h))
                    (Expr.and_
                       (Expr.and_ Expr.(xx >= i 0) Expr.(xx < i dil_w))
                       (Expr.and_
                          (Expr.cmp Expr.Eq (yy %! i stride) (i 0))
                          (Expr.cmp Expr.Eq (xx %! i stride) (i 0))))
                in
                Expr.select on_grid
                  (Tensor.read data [ bn; bc; yy /! i stride; xx /! i stride ])
                  (Expr.f32 0.)
            | _ -> arity_error "conv2d_transpose" idx)
      in
      let rc = Tensor.reduce_axis ~name:"rc" icc in
      let ry = Tensor.reduce_axis ~name:"ry" khc in
      let rx = Tensor.reduce_axis ~name:"rx" kwc in
      let oh = (stride * (hc - 1)) + khc - (2 * padding) in
      let ow = (stride * (wc - 1)) + kwc - (2 * padding) in
      Tensor.compute_reduce ~dtype:(Tensor.dtype data) name [ n; oc; i oh; i ow ]
        ~raxes:[ rc; ry; rx ] (fun idx ->
          match idx with
          | [ bn; foc; y; x ] ->
              Tensor.read dil [ bn; Tensor.rvar rc; y +! Tensor.rvar ry; x +! Tensor.rvar rx ]
              *! Tensor.read weight
                   [ Tensor.rvar rc; foc; i (khc - 1) -! Tensor.rvar ry;
                     i (kwc - 1) -! Tensor.rvar rx ]
          | _ -> arity_error "conv2d_transpose" idx)
  | _ -> invalid_arg "conv2d_transpose: expected NCHW data and IOHW weight"

(* ------------------------------------------------------------------ *)
(* Dense / matmul                                                      *)
(* ------------------------------------------------------------------ *)

(** C[y,x] = sum_k A[y,k] * B[x,k] — dense layer with pre-transposed
    weight, the layout the paper's running example uses. *)
let dense ?(name = "dense") data weight =
  match (Tensor.shape data, Tensor.shape weight) with
  | [ m; k ], [ n; _k2 ] ->
      let kc = match Interval.const_of_expr k with Some v -> v | None -> invalid_arg "dense" in
      let rk = Tensor.reduce_axis ~name:"k" kc in
      Tensor.compute_reduce ~dtype:(Tensor.dtype data) name [ m; n ] ~raxes:[ rk ]
        (fun idx ->
          match idx with
          | [ y; x ] ->
              Tensor.read data [ y; Tensor.rvar rk ] *! Tensor.read weight [ x; Tensor.rvar rk ]
          | _ -> arity_error "dense" idx)
  | _ -> invalid_arg "dense: expected 2-D data and weight"

(** C[y,x] = sum_k A[k,y] * B[k,x] — the transposed matmul of §4.1. *)
let matmul_transposed ?(name = "matmulT") a b =
  match (Tensor.shape a, Tensor.shape b) with
  | [ k; m ], [ _k2; n ] ->
      let kc = match Interval.const_of_expr k with Some v -> v | None -> invalid_arg "matmulT" in
      let rk = Tensor.reduce_axis ~name:"k" kc in
      Tensor.compute_reduce ~dtype:(Tensor.dtype a) name [ m; n ] ~raxes:[ rk ]
        (fun idx ->
          match idx with
          | [ y; x ] ->
              Tensor.read a [ Tensor.rvar rk; y ] *! Tensor.read b [ Tensor.rvar rk; x ]
          | _ -> arity_error "matmul_transposed" idx)
  | _ -> invalid_arg "matmul_transposed: expected 2-D inputs"

(** Plain C[y,x] = sum_k A[y,k] * B[k,x]. *)
let matmul ?(name = "matmul") a b =
  match (Tensor.shape a, Tensor.shape b) with
  | [ m; k ], [ _k2; n ] ->
      let kc = match Interval.const_of_expr k with Some v -> v | None -> invalid_arg "matmul" in
      let rk = Tensor.reduce_axis ~name:"k" kc in
      Tensor.compute_reduce ~dtype:(Tensor.dtype a) name [ m; n ] ~raxes:[ rk ]
        (fun idx ->
          match idx with
          | [ y; x ] ->
              Tensor.read a [ y; Tensor.rvar rk ] *! Tensor.read b [ Tensor.rvar rk; x ]
          | _ -> arity_error "matmul" idx)
  | _ -> invalid_arg "matmul: expected 2-D inputs"

(* ------------------------------------------------------------------ *)
(* Pooling / shape ops / softmax                                       *)
(* ------------------------------------------------------------------ *)

let max_pool2d ?(name = "maxpool") ?(size = 2) ?(stride = 2) ?(padding = 0) data =
  match Tensor.shape data with
  | [ n; c; h; w ] ->
      let padded =
        if padding > 0 then pad ~value:(-1e30) data ~pad_h:padding ~pad_w:padding
        else data
      in
      let oh = ((h +! i (2 * padding) -! i size) /! i stride) +! i 1 in
      let ow = ((w +! i (2 * padding) -! i size) /! i stride) +! i 1 in
      let ry = Tensor.reduce_axis ~name:"py" size in
      let rx = Tensor.reduce_axis ~name:"px" size in
      Tensor.compute_reduce ~dtype:(Tensor.dtype data) ~comb:Tensor.Max_comb name
        [ n; c; oh; ow ] ~raxes:[ ry; rx ] (fun idx ->
          match idx with
          | [ bn; bc; y; x ] ->
              Tensor.read padded
                [ bn; bc; (y *! i stride) +! Tensor.rvar ry; (x *! i stride) +! Tensor.rvar rx ]
          | _ -> arity_error "max_pool2d" idx)
  | _ -> invalid_arg "max_pool2d: expected NCHW"

let global_avg_pool2d ?(name = "gap") data =
  match Tensor.shape data with
  | [ n; c; h; w ] ->
      let hc = match Interval.const_of_expr h with Some v -> v | None -> invalid_arg "gap" in
      let wc = match Interval.const_of_expr w with Some v -> v | None -> invalid_arg "gap" in
      let ry = Tensor.reduce_axis ~name:"gy" hc in
      let rx = Tensor.reduce_axis ~name:"gx" wc in
      let summed =
        Tensor.compute_reduce ~dtype:(Tensor.dtype data) (name ^ "_sum") [ n; c ]
          ~raxes:[ ry; rx ] (fun idx ->
            match idx with
            | [ bn; bc ] -> Tensor.read data [ bn; bc; Tensor.rvar ry; Tensor.rvar rx ]
            | _ -> arity_error "global_avg_pool2d" idx)
      in
      Tensor.compute ~dtype:(Tensor.dtype data) name [ n; c ] (fun idx ->
          Tensor.read summed idx *! Expr.f32 (1. /. float_of_int (hc * wc)))
  | _ -> invalid_arg "global_avg_pool2d: expected NCHW"

(** Flatten NCHW → N×(CHW); an injective layout compute. *)
let flatten ?(name = "flatten") data =
  match Tensor.shape data with
  | [ n; c; h; w ] -> (
      match
        (Interval.const_of_expr c, Interval.const_of_expr h, Interval.const_of_expr w)
      with
      | Some cc, Some hc, Some wc ->
          Tensor.compute ~dtype:(Tensor.dtype data) name [ n; i (cc * hc * wc) ]
            (fun idx ->
              match idx with
              | [ bn; j ] ->
                  Tensor.read data
                    [ bn; j /! i (hc * wc); (j %! i (hc * wc)) /! i wc; j %! i wc ]
              | _ -> arity_error "flatten" idx)
      | _ -> invalid_arg "flatten: symbolic shape")
  | _ -> invalid_arg "flatten: expected NCHW"

(** Numerically-stable softmax along the last axis of a 2-D tensor,
    decomposed into max / shifted-exp / sum / normalize stages so the
    fusion pass sees its true reduction structure. *)
let softmax ?(name = "softmax") data =
  match Tensor.shape data with
  | [ n; c ] ->
      let cc = match Interval.const_of_expr c with Some v -> v | None -> invalid_arg "softmax" in
      let rmax = Tensor.reduce_axis ~name:"smax" cc in
      let mx =
        Tensor.compute_reduce ~dtype:(Tensor.dtype data) ~comb:Tensor.Max_comb
          (name ^ "_max") [ n ] ~raxes:[ rmax ] (fun idx ->
            match idx with
            | [ bn ] -> Tensor.read data [ bn; Tensor.rvar rmax ]
            | _ -> arity_error "softmax" idx)
      in
      let ex =
        Tensor.compute ~dtype:(Tensor.dtype data) (name ^ "_exp") [ n; c ] (fun idx ->
            match idx with
            | [ bn; bc ] ->
                Expr.Call ("exp", [ Tensor.read data [ bn; bc ] -! Tensor.read mx [ bn ] ])
            | _ -> arity_error "softmax" idx)
      in
      let rsum = Tensor.reduce_axis ~name:"ssum" cc in
      let sm =
        Tensor.compute_reduce ~dtype:(Tensor.dtype data) (name ^ "_sum") [ n ]
          ~raxes:[ rsum ] (fun idx ->
            match idx with
            | [ bn ] -> Tensor.read ex [ bn; Tensor.rvar rsum ]
            | _ -> arity_error "softmax" idx)
      in
      Tensor.compute ~dtype:(Tensor.dtype data) name [ n; c ] (fun idx ->
          match idx with
          | [ bn; bc ] -> Expr.(Tensor.read ex [ bn; bc ] / Tensor.read sm [ bn ])
          | _ -> arity_error "softmax" idx)
  | _ -> invalid_arg "softmax: expected 2-D input"
