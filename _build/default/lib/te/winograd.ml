(** Winograd convolution F(2×2, 3×3) [25] — the weight-pre-transformed
    fast 3×3 convolution behind Fig 15's "TVM PT" bars.

    Stages (each a schedulable tensor expression):
    + input transform  V[4][4][C][P] = Bᵀ d B per input tile,
    + batched GEMM     M[a][b][K][P] = Σ_c U[a][b][K][c] · V[a][b][c][P],
    + output transform Y = Aᵀ m A per tile.

    The weight transform U = G g Gᵀ is done once offline ("weight
    pre-transformed"), so at inference time U is a parameter — the
    multiply count drops to 16/36 of the direct method. *)

open Tvm_tir

(* Transform matrices of F(2,3). *)
let bt = [| [| 1.; 0.; -1.; 0. |]; [| 0.; 1.; 1.; 0. |]; [| 0.; -1.; 1.; 0. |]; [| 0.; 1.; 0.; -1. |] |]
let g_mat = [| [| 1.; 0.; 0. |]; [| 0.5; 0.5; 0.5 |]; [| 0.5; -0.5; 0.5 |]; [| 0.; 0.; 1. |] |]
let at = [| [| 1.; 1.; 1.; 0. |]; [| 0.; 1.; -1.; -1. |] |]

(** Σ of coefficient-weighted terms, skipping zero coefficients so the
    generated expression stays small. *)
let weighted_sum terms =
  let nonzero = List.filter (fun (c, _) -> c <> 0.) terms in
  match nonzero with
  | [] -> Expr.f32 0.
  | (c0, e0) :: rest ->
      List.fold_left
        (fun acc (c, e) -> Expr.( + ) acc (Expr.( * ) (Expr.f32 c) e))
        (Expr.( * ) (Expr.f32 c0) e0)
        rest

(** Pre-transform weights g[K][C][3][3] → U[4][4][K][C] on the host
    (ndarray in, ndarray out; this is the offline step). *)
let pretransform_weights (g : Tvm_nd.Ndarray.t) =
  let module Nd = Tvm_nd.Ndarray in
  match Nd.shape g with
  | [ k; c; 3; 3 ] ->
      Nd.init [ 4; 4; k; c ] (fun idx ->
          match idx with
          | [ a; b; kk; cc ] ->
              let acc = ref 0. in
              for i = 0 to 2 do
                for j = 0 to 2 do
                  acc :=
                    !acc
                    +. (g_mat.(a).(i) *. g_mat.(b).(j) *. Nd.get g [ kk; cc; i; j ])
                done
              done;
              !acc
          | _ -> assert false)
  | _ -> invalid_arg "pretransform_weights: expected Kx C x3x3"

(** Winograd convolution of NCHW [data] (stride 1, SAME padding) with a
    pre-transformed weight tensor U[4][4][K][C]. Output spatial dims
    must be even. Returns the output tensor [n][k][h][w]. *)
let conv2d_pretransformed ?(name = "wino") data u =
  let module T = Tensor in
  match (T.const_shape data, T.const_shape u) with
  | [ n; c; h; w ], [ 4; 4; k; _c2 ] ->
      if h mod 2 <> 0 || w mod 2 <> 0 then invalid_arg "winograd: odd spatial dims";
      let nh = h / 2 and nw = w / 2 in
      let p = n * nh * nw in
      let padded = Operators.pad data ~pad_h:1 ~pad_w:1 in
      let i = Expr.int in
      (* Input transform: tile p covers rows [2*ty-?]: input tile top-left
         at (2*ty, 2*tx) in padded coords. *)
      let v =
        T.compute ~dtype:(T.dtype data) (name ^ "_V") [ i 4; i 4; i c; i p ]
          (fun idx ->
            match idx with
            | [ a; b; cc; pp ] ->
                let tile_n = Expr.( / ) pp (i (nh * nw)) in
                let rem = Expr.( % ) pp (i (nh * nw)) in
                let ty = Expr.( / ) rem (i nw) in
                let tx = Expr.( % ) rem (i nw) in
                (* dd[i][j] = padded[n][c][2ty+i][2tx+j]; v = Σ Bt[a][i]Bt[b][j] dd *)
                let a_const, b_const =
                  (* a and b are loop vars; unroll over their 4 values with select *)
                  (a, b)
                in
                let term ai bj =
                  T.read padded
                    [ tile_n; cc;
                      Expr.( + ) (Expr.( * ) ty (i 2)) (i ai);
                      Expr.( + ) (Expr.( * ) tx (i 2)) (i bj) ]
                in
                (* select over a (4 cases) × b (4 cases): build nested selects *)
                let case_for av bv =
                  weighted_sum
                    (List.concat
                       (List.init 4 (fun ii ->
                            List.init 4 (fun jj ->
                                (bt.(av).(ii) *. bt.(bv).(jj), term ii jj)))))
                in
                let select_b av =
                  Expr.select (Expr.( = ) b_const (i 0)) (case_for av 0)
                    (Expr.select (Expr.( = ) b_const (i 1)) (case_for av 1)
                       (Expr.select (Expr.( = ) b_const (i 2)) (case_for av 2)
                          (case_for av 3)))
                in
                Expr.select (Expr.( = ) a_const (i 0)) (select_b 0)
                  (Expr.select (Expr.( = ) a_const (i 1)) (select_b 1)
                     (Expr.select (Expr.( = ) a_const (i 2)) (select_b 2) (select_b 3)))
            | _ -> invalid_arg "winograd V")
      in
      (* Batched GEMM: the heavy, tunable stage. *)
      let rc = T.reduce_axis ~name:"wc" c in
      let m =
        T.compute_reduce ~dtype:(T.dtype data) (name ^ "_M") [ i 4; i 4; i k; i p ]
          ~raxes:[ rc ] (fun idx ->
            match idx with
            | [ a; b; kk; pp ] ->
                Expr.( * )
                  (T.read u [ a; b; kk; T.rvar rc ])
                  (T.read v [ a; b; T.rvar rc; pp ])
            | _ -> invalid_arg "winograd M")
      in
      (* Output transform. *)
      T.compute ~dtype:(T.dtype data) name [ i n; i k; i h; i w ] (fun idx ->
          match idx with
          | [ nn; kk; y; x ] ->
              let ty = Expr.( / ) y (i 2) and iy = Expr.( % ) y (i 2) in
              let tx = Expr.( / ) x (i 2) and ix = Expr.( % ) x (i 2) in
              let pp =
                Expr.( + )
                  (Expr.( + )
                     (Expr.( * ) nn (i (nh * nw)))
                     (Expr.( * ) ty (i nw)))
                  tx
              in
              let case_for iyv ixv =
                weighted_sum
                  (List.concat
                     (List.init 4 (fun a ->
                          List.init 4 (fun b ->
                              ( at.(iyv).(a) *. at.(ixv).(b),
                                T.read m [ i a; i b; kk; pp ] )))))
              in
              Expr.select (Expr.( = ) iy (i 0))
                (Expr.select (Expr.( = ) ix (i 0)) (case_for 0 0) (case_for 0 1))
                (Expr.select (Expr.( = ) ix (i 0)) (case_for 1 0) (case_for 1 1))
          | _ -> invalid_arg "winograd Y")
  | _ -> invalid_arg "winograd: expected NCHW data and 4x4xKxC weights"
