(** Ultra low-precision operators (§6.2, Fig 18).

    Activations are quantized to [abits]-bit unsigned values, weights to
    1 bit. A bit-serial kernel replaces multiplication with AND +
    popcount over packed words [39]; the arithmetic is exposed here as a
    GEMM-shaped reduction over an im2col layout so the tensorize
    primitive can map the inner block onto the bit-serial
    matrix-vector micro-kernel ({!Tvm_schedule.Tensor_intrin.bitserial_gemv}).

    Functional semantics multiply the small-integer values directly
    (bit-plane decomposition changes cost, not results); the cost
    models price the tensorized kernel at its packed-word rate. *)

open Tvm_tir

(** im2col-style low-precision conv:
    [data_cols]: [P; K] uint2 activations (P = output pixels, K = IC·k²),
    [weight_rows]: [OC; K] uint1 weights. Output [P; OC] int32. *)
let bitserial_gemm ?(name = "bsconv") data_cols weight_rows =
  match (Tensor.const_shape data_cols, Tensor.const_shape weight_rows) with
  | [ p; k ], [ oc; _k2 ] ->
      let rk = Tensor.reduce_axis ~name:"bk" k in
      Tensor.compute_reduce ~dtype:Dtype.Int32 name
        [ Expr.int p; Expr.int oc ] ~raxes:[ rk ] (fun idx ->
          match idx with
          | [ pp; c ] ->
              Expr.( * )
                (Tensor.read data_cols [ pp; Tensor.rvar rk ])
                (Tensor.read weight_rows [ c; Tensor.rvar rk ])
          | _ -> invalid_arg "bitserial_gemm")
  | _ -> invalid_arg "bitserial_gemm: expected [P;K] and [OC;K]"

(** Dimensions of the im2col GEMM for a low-precision conv layer. *)
let conv_dims ~hw ~ic ~oc ~kernel ~stride =
  let pad = (kernel - 1) / 2 in
  let out = ((hw + (2 * pad) - kernel) / stride) + 1 in
  (out * out, oc, ic * kernel * kernel)

(** Word operations one output element costs under bit-serial
    evaluation: [abits × wbits] AND+popcount passes over K/[word] lanes. *)
let word_ops_per_output ~k ~abits ~wbits ~word_bits =
  float_of_int (abits * wbits) *. Float.of_int k /. float_of_int word_bits *. 2.

(** Arithmetic a normal fp32 kernel would spend per output element. *)
let flops_per_output ~k = 2. *. float_of_int k
