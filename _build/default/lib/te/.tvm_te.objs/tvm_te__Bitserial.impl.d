lib/te/bitserial.ml: Dtype Expr Float Tensor Tvm_tir
