lib/te/winograd.ml: Array Expr List Operators Tensor Tvm_nd Tvm_tir
