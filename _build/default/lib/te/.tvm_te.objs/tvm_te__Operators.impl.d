lib/te/operators.ml: Expr Float Interval List Printf Tensor Tvm_tir
