lib/te/tensor.ml: Analysis Dtype Expr Hashtbl Interval List Printf Tvm_tir Visit
