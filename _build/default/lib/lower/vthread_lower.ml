(** Virtual-thread lowering (§4.4, Fig 8).

    Transforms a virtual-thread-parallel program into a single
    instruction stream containing explicit low-level synchronization
    (dependence-token push/pop between the DAE pipeline stages) that the
    accelerator can interpret to recover pipeline parallelism:

    + each vthread loop is unrolled; every unrolled copy gets private
      on-chip buffers (the CL[8] → CL[2][8] duplication of Fig 8),
    + within each thread, RAW/WAR ordering is enforced conservatively
      from program order: consecutive operations on different pipeline
      units get a push after the earlier and a pop before the later, and
      loop-carried cross-unit edges are primed before the loop and
      drained after it (exactly the paper's [ex.push_dep_to(ld)]
      pre-loop pushes),
    + the per-thread streams are interleaved positionally, merging
      loops of equal extent so that thread 1's loads sit between thread
      0's loads and computes.

    With a single thread the tokens serialize the pipeline (Fig 9's
    monolithic behaviour); with two or more threads the load of one
    thread overlaps the compute of another — latency hiding emerges in
    the {!Tvm_vdla} discrete-event simulator rather than being assumed. *)

open Tvm_tir

let is_accel_scope = function
  | Expr.Accel_wgt | Expr.Accel_inp | Expr.Accel_acc -> true
  | Expr.Global | Expr.Shared | Expr.Local -> false

(** Which DAE pipeline unit executes this statement, if any. *)
let pipe_of (s : Stmt.t) : Stmt.pipe option =
  match s with
  | Stmt.Dma_copy d ->
      if is_accel_scope d.Stmt.dma_dst.Expr.bscope then Some Stmt.Ld
      else if is_accel_scope d.Stmt.dma_src.Expr.bscope then Some Stmt.St
      else None
  | Stmt.Call_intrin _ -> Some Stmt.Ex
  | Stmt.Store _ | Stmt.For _ | Stmt.If_then_else _ | Stmt.Let_stmt _ | Stmt.Seq _
  | Stmt.Allocate _ | Stmt.Barrier | Stmt.Evaluate _ | Stmt.Push_dep _
  | Stmt.Pop_dep _ | Stmt.Skip ->
      None

(* ------------------------------------------------------------------ *)
(* Buffer freshening (per-vthread private buffers)                      *)
(* ------------------------------------------------------------------ *)

let freshen_buffers suffix stmt =
  let rec walk s =
    match s with
    | Stmt.Allocate (b, body) ->
        let fresh =
          Expr.Buffer.create ~scope:b.Expr.bscope ~dtype:b.Expr.bdtype
            (b.Expr.bname ^ suffix) b.Expr.bshape
        in
        let body =
          Visit.retarget_buffer ~old_b:b ~new_b:fresh ~remap:Fun.id body
        in
        Stmt.Allocate (fresh, walk body)
    | Stmt.For l -> Stmt.For { l with Stmt.body = walk l.Stmt.body }
    | Stmt.If_then_else (c, t, e) -> Stmt.If_then_else (c, walk t, Option.map walk e)
    | Stmt.Let_stmt (v, e, b) -> Stmt.Let_stmt (v, e, walk b)
    | Stmt.Seq ss -> Stmt.Seq (List.map walk ss)
    | Stmt.Store _ | Stmt.Barrier | Stmt.Evaluate _ | Stmt.Call_intrin _
    | Stmt.Dma_copy _ | Stmt.Push_dep _ | Stmt.Pop_dep _ | Stmt.Skip ->
        s
  in
  walk stmt

(* ------------------------------------------------------------------ *)
(* Interleaving                                                         *)
(* ------------------------------------------------------------------ *)

(** A token-wrapped pipeline op (e.g. [Seq [Pop; dma; Push]]) must stay
    contiguous in the merged stream; interleaving must not split it. *)
let is_op_group (s : Stmt.t) =
  match s with
  | Stmt.Seq items ->
      let ops, others =
        List.partition (fun i -> pipe_of i <> None) items
      in
      List.length ops = 1
      && List.for_all
           (function Stmt.Push_dep _ | Stmt.Pop_dep _ -> true | _ -> false)
           others
  | _ -> false

let rec interleave (a : Stmt.t) (b : Stmt.t) : Stmt.t =
  match (a, b) with
  | Stmt.Skip, s | s, Stmt.Skip -> s
  | _ when is_op_group a || is_op_group b -> Stmt.seq [ a; b ]
  | Stmt.Allocate (buf, body), other -> Stmt.Allocate (buf, interleave body other)
  | other, Stmt.Allocate (buf, body) -> Stmt.Allocate (buf, interleave other body)
  | Stmt.For la, Stmt.For lb
    when la.Stmt.kind = Stmt.Serial && lb.Stmt.kind = Stmt.Serial
         && Expr.equal la.Stmt.extent lb.Stmt.extent
         && Expr.equal la.Stmt.min_ lb.Stmt.min_ ->
      let body_b =
        Visit.subst_var_stmt lb.Stmt.loop_var (Expr.Var la.Stmt.loop_var) lb.Stmt.body
      in
      Stmt.For { la with Stmt.body = interleave la.Stmt.body body_b }
  | Stmt.Seq xs, Stmt.Seq ys ->
      (* Alternate same-pipe runs: all of one thread's consecutive loads,
         then the other's, then the computes — the granularity of Fig 8.
         Items spanning several pipeline units (nested loops) are merged
         recursively with their positional partner. *)
      let pipes_of item =
        let acc = ref [] in
        Stmt.iter
          (fun s ->
            match pipe_of s with
            | Some p -> if not (List.mem p !acc) then acc := p :: !acc
            | None -> ())
          item;
        !acc
      in
      let rec runs = function
        | [] -> []
        | item :: rest -> (
            match pipes_of item with
            | [ p ] -> (
                match runs rest with
                | `Run (q, items) :: tail when q = p -> `Run (p, item :: items) :: tail
                | tail -> `Run (p, [ item ]) :: tail)
            | [] -> (
                (* Op-free statements ride with the following run. *)
                match runs rest with
                | `Run (q, items) :: tail -> `Run (q, item :: items) :: tail
                | tail -> `Run (Stmt.Ex, [ item ]) :: tail)
            | _ -> `Mixed item :: runs rest)
      in
      let rec zip_runs xs ys =
        match (xs, ys) with
        | [], rest | rest, [] ->
            List.concat_map
              (function `Run (_, items) -> items | `Mixed item -> [ item ])
              rest
        | `Mixed x :: xs', `Mixed y :: ys' -> interleave x y :: zip_runs xs' ys'
        | `Run (_, xi) :: xs', `Run (_, yi) :: ys' -> xi @ yi @ zip_runs xs' ys'
        | `Run (_, xi) :: xs', (`Mixed _ :: _ as ys') -> xi @ zip_runs xs' ys'
        | (`Mixed _ :: _ as xs'), `Run (_, yi) :: ys' -> yi @ zip_runs xs' ys'
      in
      Stmt.seq (zip_runs (runs xs) (runs ys))
  | Stmt.Seq xs, other -> interleave (Stmt.Seq xs) (Stmt.Seq [ other ])
  | other, Stmt.Seq ys -> interleave (Stmt.Seq [ other ]) (Stmt.Seq ys)
  | _, _ -> Stmt.seq [ a; b ]

(* ------------------------------------------------------------------ *)
(* Per-thread synchronization insertion                                 *)
(* ------------------------------------------------------------------ *)

(** Transform [s], returning [(s', first_pipe, last_pipe)] where the
    pipes describe the first and last pipeline operations issued by
    [s'] in stream order. The vthread case unrolls, syncs each copy
    independently, and interleaves — outer levels then only add tokens
    at the merged block's boundary. *)
let rec sync (s : Stmt.t) : Stmt.t * Stmt.pipe option * Stmt.pipe option =
  match pipe_of s with
  | Some p -> (s, Some p, Some p)
  | None -> (
      match s with
      | Stmt.For { kind = Stmt.Vthread; loop_var; extent; body; _ } ->
          let n =
            match extent with
            | Expr.IntImm n -> n
            | _ -> invalid_arg "vthread extent must be constant"
          in
          let copies =
            List.init n (fun i ->
                let c = Visit.subst_var_stmt loop_var (Expr.IntImm i) body in
                let c = freshen_buffers (Printf.sprintf "_vt%d" i) c in
                let c', _, _ = sync c in
                c')
          in
          let merged = List.fold_left interleave Stmt.Skip copies in
          (* Boundary pipes of the merged stream. *)
          let first = first_pipe merged and last = last_pipe merged in
          (merged, first, last)
      | Stmt.For l ->
          let body, first, last = sync l.Stmt.body in
          (* Attach a token to the first/last op group of a statement,
             descending through allocations and sequences so the token
             stays adjacent to its op in the merged stream. Loops are
             not entered: a token beside a loop fires once, inside it
             would fire per iteration. *)
          let rec attach_front tok stmt =
            match stmt with
            | Stmt.Seq (x :: rest) -> Stmt.Seq (attach_front tok x :: rest)
            | Stmt.Allocate (b, body) -> Stmt.Allocate (b, attach_front tok body)
            | Stmt.Let_stmt (v, e, body) -> Stmt.Let_stmt (v, e, attach_front tok body)
            | other -> Stmt.seq (tok :: Stmt.flatten_seq other)
          in
          let rec attach_back tok stmt =
            match stmt with
            | Stmt.Seq items when items <> [] ->
                let rec go = function
                  | [ x ] -> [ attach_back tok x ]
                  | x :: rest -> x :: go rest
                  | [] -> []
                in
                Stmt.Seq (go items)
            | Stmt.Allocate (b, body) -> Stmt.Allocate (b, attach_back tok body)
            | Stmt.Let_stmt (v, e, body) -> Stmt.Let_stmt (v, e, attach_back tok body)
            | other -> Stmt.seq (Stmt.flatten_seq other @ [ tok ])
          in
          let wrapped, prime =
            match (first, last) with
            | Some p, Some q when p <> q ->
                (* Cross-iteration edge: iteration k+1's first unit must
                   wait for iteration k's last unit. *)
                ( attach_back (Stmt.Push_dep (q, p))
                    (attach_front (Stmt.Pop_dep (q, p)) body),
                  Some (q, p) )
            | _ -> (body, None)
          in
          let loop = Stmt.For { l with Stmt.body = wrapped } in
          let out =
            match prime with
            | Some (q, p) ->
                Stmt.seq [ Stmt.Push_dep (q, p); loop; Stmt.Pop_dep (q, p) ]
            | None -> loop
          in
          (out, first, last)
      | Stmt.Seq items ->
          let processed = List.map sync items in
          (* Stitch: between a block ending on pipe Q and the next block
             starting on pipe P (P<>Q), push right after the former and
             pop right before the latter. Tokens are grouped with their
             op so interleaving keeps them adjacent — this is what lets
             thread 1's loads slide between thread 0's loads and
             computes in the merged stream (Fig 8). *)
          let arr = Array.of_list processed in
          let n_items = Array.length arr in
          let prev_last = Array.make n_items None in
          let running = ref None in
          Array.iteri
            (fun i (_, _, last) ->
              prev_last.(i) <- !running;
              match last with Some _ -> running := last | None -> ())
            arr;
          let stmts =
            Array.to_list
              (Array.mapi
                 (fun i (stmt, first, _) ->
                   match (prev_last.(i), first) with
                   | Some q, Some p when p <> q ->
                       (* Also mark the previous op group with a push. *)
                       Stmt.seq [ Stmt.Pop_dep (q, p); stmt ]
                   | _ -> stmt)
                 arr)
          in
          (* Insert the matching pushes after the producing groups. *)
          let stmts =
            List.mapi
              (fun i stmt ->
                (* Does any later group first-op depend on this group's last op? *)
                let _, _, last_i = arr.(i) in
                match last_i with
                | None -> stmt
                | Some q ->
                    (* Find the next group with an op; if its first pipe
                       differs, this group must push to it. *)
                    let rec next j =
                      if j >= n_items then None
                      else
                        let _, first_j, _ = arr.(j) in
                        match first_j with Some p -> Some p | None -> next (j + 1)
                    in
                    (match next (i + 1) with
                    | Some p when p <> q ->
                        Stmt.seq (Stmt.flatten_seq stmt @ [ Stmt.Push_dep (q, p) ])
                    | _ -> stmt))
              stmts
          in
          let firsts = List.filter_map (fun (_, f, _) -> f) processed in
          let lasts = List.filter_map (fun (_, _, l) -> l) processed in
          let first = match firsts with [] -> None | f :: _ -> Some f in
          let last = match List.rev lasts with [] -> None | l :: _ -> Some l in
          (Stmt.seq stmts, first, last)
      | Stmt.Allocate (b, body) ->
          let body, first, last = sync body in
          (Stmt.Allocate (b, body), first, last)
      | Stmt.If_then_else (c, t, e) ->
          (* Control flow around pipeline ops is not generated for the
             accelerator path; keep it opaque. *)
          (Stmt.If_then_else (c, t, e), None, None)
      | Stmt.Let_stmt (v, e, body) ->
          let body, first, last = sync body in
          (Stmt.Let_stmt (v, e, body), first, last)
      | Stmt.Store _ | Stmt.Barrier | Stmt.Evaluate _ | Stmt.Push_dep _
      | Stmt.Pop_dep _ | Stmt.Skip | Stmt.Call_intrin _ | Stmt.Dma_copy _ ->
          (s, None, None))

and first_pipe s =
  let found = ref None in
  (try
     Stmt.iter
       (fun s ->
         match pipe_of s with
         | Some p ->
             found := Some p;
             raise Exit
         | None -> ())
       s
   with Exit -> ());
  !found

and last_pipe s =
  let found = ref None in
  Stmt.iter (fun s -> match pipe_of s with Some p -> found := Some p | None -> ()) s;
  !found

(** Run the pass: returns the single instruction stream with explicit
    synchronization, ready for the VDLA simulator. *)
let run (s : Stmt.t) : Stmt.t =
  let s', _, _ = sync s in
  s'

(** Count virtual-thread loops (used by tests and diagnostics). *)
let count_vthreads s =
  let n = ref 0 in
  Stmt.iter
    (function
      | Stmt.For { kind = Stmt.Vthread; _ } -> incr n
      | _ -> ())
    s;
  !n
