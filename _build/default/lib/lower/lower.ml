(** Lowering: schedule → low-level loop program (Fig 6).

    The pipeline is:
    + inline substitution of [compute_inline] stages,
    + per-stage loop-nest construction following the leaf iteration
      order, reconstructing original axis values through the
      split/fuse relations,
    + region inference for [compute_at]-attached stages by interval
      analysis of the consumer's accesses (exact under divisor splits),
    + reduction lowering into init + update nests,
    + tensorize pattern-matching and replacement with intrinsic calls,
    + DMA rewriting of accelerator-scope copy stages.

    The virtual-thread transformation of §4.4 is a separate pass
    ({!Vthread_lower}) running on the output of this one. *)

open Tvm_tir
module Tensor = Tvm_te.Tensor
module Sched = Tvm_schedule.Sched
module Iter_var = Tvm_schedule.Iter_var
module Tensor_intrin = Tvm_schedule.Tensor_intrin

type target_kind = Cpu | Gpu | Accel

exception Lower_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Lower_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Inline substitution                                                  *)
(* ------------------------------------------------------------------ *)

let inline_into_consumers stages =
  let inline_map = Hashtbl.create 8 in
  List.iter
    (fun st ->
      if Sched.is_inline st then
        match st.Sched.s_body with
        | Tensor.Value e ->
            Hashtbl.replace inline_map st.Sched.s_out.Expr.bid
              (List.map (fun iv -> iv.Iter_var.var) st.Sched.s_root_axes, e)
        | Tensor.Reduce _ -> fail "inline stage %s has a reduction" st.Sched.s_name)
    stages;
  let substitute e =
    (* Iterate to fixpoint to resolve chains of inlined stages. *)
    let changed = ref true in
    let cur = ref e in
    let rounds = ref 0 in
    while !changed && !rounds < 50 do
      changed := false;
      incr rounds;
      cur :=
        Visit.map_expr
          (function
            | Expr.Load (b, idx) as e -> (
                match Hashtbl.find_opt inline_map b.Expr.bid with
                | Some (axes, body) ->
                    changed := true;
                    let bindings = List.combine axes idx in
                    Visit.subst_expr
                      (fun v ->
                        List.find_map
                          (fun (a, i) -> if Expr.Var.equal a v then Some i else None)
                          bindings)
                      body
                | None -> e)
            | e -> e)
          !cur
    done;
    if !changed then fail "inline substitution did not converge (cyclic inlining?)";
    !cur
  in
  List.iter
    (fun st ->
      if not (Sched.is_inline st) then
        st.Sched.s_body <-
          (match st.Sched.s_body with
          | Tensor.Value e -> Tensor.Value (substitute e)
          | Tensor.Reduce r ->
              Tensor.Reduce
                { r with Tensor.src = substitute r.Tensor.src;
                  Tensor.init = substitute r.Tensor.init }))
    stages

(* ------------------------------------------------------------------ *)
(* Leaf extents and axis-value reconstruction                           *)
(* ------------------------------------------------------------------ *)

type ctx = {
  sched : Sched.t;
  target : target_kind;
  mutable thread_loops : (Expr.var * int) list;
      (** enclosing [Thread_binding] loops, innermost first; Shared-scope
          region inference ranges over these (§4.2: "the shared task must
          compute the dependencies of all working threads in the group") *)
}

(** Realized region of an attached stage: the shrunk backing buffer,
    the per-dimension offset of the region within the original tensor,
    and the region sizes. *)
type region = { rz_buf : Expr.buffer; rz_offsets : Expr.t list; rz_sizes : int list }

(** Emit-time extents: root data-par axes may be shrunk to an inferred
    region when the stage is attached inside a consumer; extents of
    derived (split/fused) iters are recomputed accordingly. *)
let compute_extents (st : Sched.stage) (region : region option) : (int, int) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  let set iv e = Hashtbl.replace tbl iv.Iter_var.var.Expr.vid e in
  let get iv =
    match Hashtbl.find_opt tbl iv.Iter_var.var.Expr.vid with
    | Some e -> e
    | None -> fail "extent of %s unknown in stage %s" (Iter_var.name iv) st.Sched.s_name
  in
  (match region with
  | None -> List.iter (fun iv -> set iv iv.Iter_var.extent) st.Sched.s_root_axes
  | Some r -> (
      try List.iter2 set st.Sched.s_root_axes r.rz_sizes
      with Invalid_argument _ -> fail "region rank mismatch in %s" st.Sched.s_name));
  List.iter (fun iv -> set iv iv.Iter_var.extent) st.Sched.s_reduce_axes;
  List.iter
    (function
      | Sched.Split { parent; outer; inner; factor; _ } ->
          let pe = get parent in
          set outer ((pe + factor - 1) / factor);
          set inner (min factor pe)
      | Sched.Fuse { outer; inner; fused } -> set fused (get outer * get inner))
    st.Sched.s_relations;
  tbl

(** Value of every original axis variable in terms of leaf loop vars,
    plus the guard conditions required by non-exact splits. For a
    region-realized stage the root axis value is [offset + derived]. *)
let axis_values (st : Sched.stage) (extents : (int, int) Hashtbl.t)
    (region : region option) =
  let values = Hashtbl.create 16 in
  let guards = ref [] in
  let get_ext iv = Hashtbl.find extents iv.Iter_var.var.Expr.vid in
  let set iv e = Hashtbl.replace values iv.Iter_var.var.Expr.vid e in
  let get iv =
    match Hashtbl.find_opt values iv.Iter_var.var.Expr.vid with
    | Some e -> e
    | None -> fail "value of %s unknown in stage %s" (Iter_var.name iv) st.Sched.s_name
  in
  List.iter (fun iv -> set iv (Expr.Var iv.Iter_var.var)) st.Sched.s_leaf;
  List.iter
    (function
      | Sched.Split { parent; outer; inner; factor; _ } ->
          let pe = get_ext parent in
          let v = Expr.( + ) (Expr.( * ) (get outer) (Expr.int factor)) (get inner) in
          set parent v;
          if pe mod factor <> 0 then guards := Expr.( < ) v (Expr.int pe) :: !guards
      | Sched.Fuse { outer; inner; fused } ->
          let ie = get_ext inner in
          set outer (Expr.( / ) (get fused) (Expr.int ie));
          set inner (Expr.( % ) (get fused) (Expr.int ie)))
    (List.rev st.Sched.s_relations);
  (* Derived (0-based, region-local) values of the root axes. *)
  let derived =
    List.map (fun iv -> Hashtbl.find values iv.Iter_var.var.Expr.vid) st.Sched.s_root_axes
  in
  (match region with
  | None -> ()
  | Some r ->
      (* The region is a rectangular hull; slack cells can fall outside
         the original tensor. Clamp the producer's coordinates — the
         clamped cells hold unused values that no consumer reads (they
         only access true index points). *)
      List.iter2
        (fun iv off ->
          let d = Hashtbl.find values iv.Iter_var.var.Expr.vid in
          let v = Expr.( + ) off d in
          let hi = Expr.int (iv.Iter_var.extent - 1) in
          Hashtbl.replace values iv.Iter_var.var.Expr.vid
            (Expr.max_ Expr.zero (Expr.min_ v hi)))
        st.Sched.s_root_axes r.rz_offsets);
  (values, derived, !guards)

(* ------------------------------------------------------------------ *)
(* Region inference for compute_at                                      *)
(* ------------------------------------------------------------------ *)

(** Substituted body expressions of a stage: original axis variables
    replaced by their leaf-derived (global-coordinate) values. *)
let substituted_exprs (st : Sched.stage) values =
  let lookup v = Hashtbl.find_opt values v.Expr.vid in
  let s e = Visit.subst_expr lookup e in
  match st.Sched.s_body with
  | Tensor.Value e -> [ s e ]
  | Tensor.Reduce r -> [ s r.Tensor.src; s r.Tensor.init ]

(** Hull of all accesses to [buf] in [exprs], splitting loop vars into
    [inner] (ranging over their extents) and outer (symbolic; pinned to
    0 for sizing). Returns (offset exprs, sizes); [None] if unused. *)
let infer_region ~(buf : Expr.buffer) ~(inner : (Expr.var * int) list) exprs =
  let loads = ref [] in
  List.iter
    (fun e ->
      Visit.fold_expr
        (fun () e ->
          match e with
          | Expr.Load (b, idx) when Expr.Buffer.equal b buf -> loads := idx :: !loads
          | _ -> ())
        () e)
    exprs;
  match !loads with
  | [] -> None
  | first :: _ as all ->
      let rank = List.length first in
      let env vid =
        match List.find_opt (fun (iv, _) -> iv.Expr.vid = vid) inner with
        | Some (_, extent) -> Some (Interval.of_extent ~min:0 ~extent)
        | None -> Some (Interval.point 0)
      in
      (* Offset = the index expression minimized over the inner vars:
         substitute each inner var at whichever end of its range lowers
         the index (reversed accesses like [k-1-ry] need the high end). *)
      let minimize_inner e =
        List.fold_left
          (fun e (v, extent) ->
            let at n = Visit.subst_var_expr v (Expr.int n) e in
            let decreasing =
              try
                let lo0 = (Interval.eval env (at 0)).Interval.lo in
                let lo1 = (Interval.eval env (at (extent - 1))).Interval.lo in
                lo1 < lo0
              with Interval.Not_analyzable _ -> false
            in
            if decreasing then at (extent - 1) else at 0)
          e inner
      in
      let dims =
        List.init rank (fun d ->
            let bounds =
              List.map
                (fun idx ->
                  let e = List.nth idx d in
                  try Interval.eval env e
                  with Interval.Not_analyzable msg ->
                    fail "region inference on %s: %s" buf.Expr.bname msg)
                all
            in
            let hull = List.fold_left Interval.union (List.hd bounds) (List.tl bounds) in
            let offsets =
              List.map (fun idx -> Simplify.expr (minimize_inner (List.nth idx d))) all
            in
            let offset =
              List.fold_left (fun acc o -> Expr.min_ acc o) (List.hd offsets)
                (List.tl offsets)
            in
            (offset, Interval.length hull))
      in
      Some (List.map fst dims, List.map snd dims)

(* ------------------------------------------------------------------ *)
(* Tensorize                                                            *)
(* ------------------------------------------------------------------ *)

(** Verify the sub-nest rooted at the tensorized leaf matches the
    intrinsic's declared shapes, and compute the base indices of each
    region operand (tensorized loop vars pinned to 0). *)
let match_intrinsic (st : Sched.stage) (intrin : Tensor_intrin.t)
    ~(tensorized : Iter_var.t list) ~extents values =
  let data_leaves = List.filter (fun iv -> not (Iter_var.is_reduce iv)) tensorized in
  let red_leaves = List.filter Iter_var.is_reduce tensorized in
  let ext iv = Hashtbl.find extents iv.Iter_var.var.Expr.vid in
  let got_out = List.map ext data_leaves in
  if got_out <> intrin.Tensor_intrin.output_shape then
    fail "tensorize %s in %s: output region %s does not match intrinsic %s"
      intrin.Tensor_intrin.name st.Sched.s_name
      (String.concat "x" (List.map string_of_int got_out))
      (String.concat "x" (List.map string_of_int intrin.Tensor_intrin.output_shape));
  let got_red = List.map ext red_leaves in
  if got_red <> intrin.Tensor_intrin.reduce_extents then
    fail "tensorize %s in %s: reduction extents %s do not match intrinsic %s"
      intrin.Tensor_intrin.name st.Sched.s_name
      (String.concat "x" (List.map string_of_int got_red))
      (String.concat "x" (List.map string_of_int intrin.Tensor_intrin.reduce_extents));
  let zero_tensorized v =
    if List.exists (fun iv -> Expr.Var.equal iv.Iter_var.var v) tensorized then
      Some Expr.zero
    else None
  in
  let base idx = List.map (fun e -> Simplify.expr (Visit.subst_expr zero_tensorized e)) idx in
  (* Input regions: loads in the source expression, in order of
     appearance, one per declared input. *)
  let src =
    match st.Sched.s_body with
    | Tensor.Reduce r -> r.Tensor.src
    | Tensor.Value e -> e
  in
  let lookup v = Hashtbl.find_opt values v.Expr.vid in
  let src = Visit.subst_expr lookup src in
  let loads = ref [] in
  Visit.fold_expr
    (fun () e ->
      match e with Expr.Load (b, idx) -> loads := (b, idx) :: !loads | _ -> ())
    () src;
  let loads = List.rev !loads in
  if List.length loads <> List.length intrin.Tensor_intrin.input_shapes then
    fail "tensorize %s in %s: %d operand loads, intrinsic declares %d inputs"
      intrin.Tensor_intrin.name st.Sched.s_name (List.length loads)
      (List.length intrin.Tensor_intrin.input_shapes);
  let inputs = List.map (fun (b, idx) -> (b, base idx)) loads in
  let out_base =
    List.map
      (fun iv ->
        let v = Hashtbl.find values iv.Iter_var.var.Expr.vid in
        Simplify.expr (Visit.subst_expr zero_tensorized v))
      st.Sched.s_root_axes
  in
  (inputs, out_base)

(* ------------------------------------------------------------------ *)
(* DMA rewriting                                                        *)
(* ------------------------------------------------------------------ *)

let is_accel_scope = function
  | Expr.Accel_wgt | Expr.Accel_inp | Expr.Accel_acc -> true
  | Expr.Global | Expr.Shared | Expr.Local -> false

(** A stage is a DMA candidate if its body is a pure identity copy and
    one endpoint lives in an accelerator scope. Returns the source. *)
let dma_candidate ctx (st : Sched.stage) =
  if ctx.target <> Accel then None
  else
    match st.Sched.s_body with
    | Tensor.Value (Expr.Load (src, idx)) ->
        let axes_ok =
          List.length idx = List.length st.Sched.s_root_axes
          && List.for_all2
               (fun e iv ->
                 match e with
                 | Expr.Var v -> Expr.Var.equal v iv.Iter_var.var
                 | _ -> false)
               idx st.Sched.s_root_axes
        in
        if
          axes_ok
          && (is_accel_scope src.Expr.bscope || is_accel_scope st.Sched.s_out.Expr.bscope)
        then Some src
        else None
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Stage emission                                                       *)
(* ------------------------------------------------------------------ *)

let rec emit_stage ctx (st : Sched.stage) ~(region : region option) : Stmt.t =
  let extents = compute_extents st region in
  let values, derived, guards = axis_values st extents region in
  let out_buf, store_indices =
    match region with
    | None -> (st.Sched.s_out, derived)
    | Some r -> (r.rz_buf, derived)
  in
  let lookup v = Hashtbl.find_opt values v.Expr.vid in
  let subst e = Visit.subst_expr lookup e in
  (* The init nest omits reduction loops, so guards mentioning
     reduce-derived loop vars do not apply (their vars are unbound). *)
  let reduce_leaf_vars =
    List.filter_map
      (fun iv -> if Iter_var.is_reduce iv then Some iv.Iter_var.var else None)
      st.Sched.s_leaf
  in
  let guard_with gs body =
    match gs with
    | [] -> body
    | g :: rest -> Stmt.If_then_else (List.fold_left Expr.and_ g rest, body, None)
  in
  let guard body = guard_with guards body in
  let init_guards =
    List.filter
      (fun g ->
        not
          (List.exists
             (fun fv -> List.exists (Expr.Var.equal fv) reduce_leaf_vars)
             (Visit.free_vars g)))
      guards
  in
  let guard_init body = guard_with init_guards body in
  match dma_candidate ctx st with
  | Some src when guards = [] && st.Sched.s_relations = [] ->
      (* Whole stage becomes one DMA per emission. *)
      let src_base =
        match region with
        | Some r -> r.rz_offsets
        | None -> List.map (fun _ -> Expr.zero) st.Sched.s_root_axes
      in
      let sizes =
        match region with
        | Some r -> r.rz_sizes
        | None -> List.map (fun iv -> iv.Iter_var.extent) st.Sched.s_root_axes
      in
      Stmt.Dma_copy
        { Stmt.dma_src = src; dma_src_base = src_base; dma_dst = out_buf;
          dma_dst_base = List.map (fun _ -> Expr.zero) sizes; dma_extents = sizes }
  | Some _ | None ->
      (* Split leaves at the first reduction leaf: loops before it wrap
         both the init and update nests (Fig 5's placement of C[..]=0). *)
      let rec split_prefix acc = function
        | [] -> (List.rev acc, [])
        | iv :: rest when Iter_var.is_reduce iv -> (List.rev acc, iv :: rest)
        | iv :: rest -> split_prefix (iv :: acc) rest
      in
      let prefix, rest = split_prefix [] st.Sched.s_leaf in
      let tensorize_info =
        match st.Sched.s_tensorize with
        | None -> None
        | Some (iv, intrin) ->
            let pos = Sched.leaf_pos st iv in
            let tensorized = List.filteri (fun i _ -> i >= pos) st.Sched.s_leaf in
            let has_outer_reduce =
              List.exists
                (fun l ->
                  Iter_var.is_reduce l && not (List.exists (Iter_var.equal l) tensorized))
                st.Sched.s_leaf
            in
            if has_outer_reduce && not intrin.Tensor_intrin.has_reduce_update then
              fail "tensorize %s: intrinsic lacks reset/update variants"
                intrin.Tensor_intrin.name;
            let inputs, out_base = match_intrinsic st intrin ~tensorized ~extents values in
            (* Output base is region-local when realized. *)
            let out_base =
              match region with
              | None -> out_base
              | Some r ->
                  List.map2
                    (fun b off -> Simplify.expr (Expr.( - ) b off))
                    out_base r.rz_offsets
            in
            Some (pos, intrin, inputs, (out_buf, out_base), has_outer_reduce)
      in
      let is_tensorized_leaf iv =
        match tensorize_info with
        | None -> false
        | Some (pos, _, _, _, _) -> Sched.leaf_pos st iv >= pos
      in
      let init_store, update_store =
        match tensorize_info with
        | Some (_, intrin, inputs, out, has_outer_reduce) ->
            let call ?(with_inputs = true) variant =
              Stmt.Call_intrin
                { Stmt.intrin_name = intrin.Tensor_intrin.name; variant;
                  inputs = (if with_inputs then inputs else []); output = out }
            in
            (* The reset variant only zeroes the accumulator; it must not
               reference the operand SRAM regions (they are not live in
               the init nest). *)
            if has_outer_reduce then (Some (call ~with_inputs:false "reset"), call "update")
            else (None, call "body")
        | None -> (
            match st.Sched.s_body with
            | Tensor.Value e -> (None, Stmt.Store (out_buf, store_indices, subst e))
            | Tensor.Reduce r ->
                let acc = Expr.Load (out_buf, store_indices) in
                let combined =
                  Tensor.apply_combiner r.Tensor.comb acc (subst r.Tensor.src)
                in
                ( Some (Stmt.Store (out_buf, store_indices, subst r.Tensor.init)),
                  Stmt.Store (out_buf, store_indices, combined) ))
      in
      let rec build_nest leaves ~emit_attach ~skip_reduce inner_stmt =
        match leaves with
        | [] -> inner_stmt
        | iv :: rest_leaves ->
            if is_tensorized_leaf iv then inner_stmt
            else if skip_reduce && Iter_var.is_reduce iv then
              build_nest rest_leaves ~emit_attach ~skip_reduce inner_stmt
            else begin
              let kind =
                match Sched.ann_of st iv with Some k -> k | None -> Stmt.Serial
              in
              let extent = Hashtbl.find extents iv.Iter_var.var.Expr.vid in
              let is_thread =
                (* Only threadIdx.* loops form the cooperating group;
                   blockIdx.* loops do not share memory. *)
                match kind with
                | Stmt.Thread_binding tag ->
                    String.length tag >= 9 && String.sub tag 0 9 = "threadIdx"
                | _ -> false
              in
              if is_thread then
                ctx.thread_loops <- (iv.Iter_var.var, extent) :: ctx.thread_loops;
              let body = build_nest rest_leaves ~emit_attach ~skip_reduce inner_stmt in
              let body =
                if emit_attach then
                  let attached = Sched.attached_at ctx.sched st iv in
                  List.fold_right
                    (fun sub acc ->
                      emit_attached ctx ~consumer:st ~consumer_values:values
                        ~consumer_extents:extents ~level:iv sub acc)
                    attached body
                else body
              in
              if is_thread then ctx.thread_loops <- List.tl ctx.thread_loops;
              Stmt.for_ ~kind iv.Iter_var.var Expr.zero (Expr.int extent) body
            end
      in
      let core =
        match init_store with
        | None -> build_nest rest ~emit_attach:true ~skip_reduce:false (guard update_store)
        | Some init ->
            let init_nest =
              build_nest rest ~emit_attach:false ~skip_reduce:true (guard_init init)
            in
            let update_nest =
              build_nest rest ~emit_attach:true ~skip_reduce:false (guard update_store)
            in
            Stmt.seq [ init_nest; update_nest ]
      in
      build_nest prefix ~emit_attach:true ~skip_reduce:false core

(** Emit a producer stage attached at [consumer]'s loop [level]: infer
    the region the consumer needs, emit the producer into a shrunk
    buffer, retarget the consumer's accesses, allocate. *)
and emit_attached ctx ~consumer ~consumer_values ~consumer_extents ~level sub
    continuation =
  let pos = Sched.leaf_pos consumer level in
  let inner =
    List.filteri (fun i _ -> i > pos) consumer.Sched.s_leaf
    |> List.map (fun iv ->
           (iv.Iter_var.var, Hashtbl.find consumer_extents iv.Iter_var.var.Expr.vid))
  in
  (* Shared-scope producers are filled cooperatively: their region spans
     every thread of the group, so enclosing thread-bound loop vars
     range as well (§4.2). *)
  let inner =
    if sub.Sched.s_out.Expr.bscope = Expr.Shared then
      inner
      @ List.filter
          (fun (v, _) -> not (List.exists (fun (v', _) -> Expr.Var.equal v v') inner))
          ctx.thread_loops
    else inner
  in
  let exprs = substituted_exprs consumer consumer_values in
  match infer_region ~buf:sub.Sched.s_out ~inner exprs with
  | None -> continuation
  | Some (offsets, sizes) ->
      let rz_buf =
        Expr.Buffer.create ~scope:sub.Sched.s_out.Expr.bscope
          ~dtype:sub.Sched.s_out.Expr.bdtype sub.Sched.s_out.Expr.bname
          (List.map Expr.int sizes)
      in
      let region = { rz_buf; rz_offsets = offsets; rz_sizes = sizes } in
      let producer_nest = emit_stage ctx sub ~region:(Some region) in
      let producer_nest =
        if sub.Sched.s_out.Expr.bscope = Expr.Shared then
          Stmt.seq [ producer_nest; Stmt.Barrier ]
        else producer_nest
      in
      (* The continuation (consumer's inner loops and deeper statements)
         still reads the original full buffer: retarget into the region. *)
      let continuation =
        Visit.retarget_buffer ~old_b:sub.Sched.s_out ~new_b:rz_buf
          ~remap:(fun idx ->
            List.map2 (fun i off -> Simplify.expr (Expr.( - ) i off)) idx offsets)
          continuation
      in
      Stmt.Allocate (rz_buf, Stmt.seq [ producer_nest; continuation ])

(* ------------------------------------------------------------------ *)
(* Program assembly                                                     *)
(* ------------------------------------------------------------------ *)

(** Lower a schedule to a loop program for the given target. *)
let lower ?(target = Cpu) (sched : Sched.t) : Stmt.t =
  inline_into_consumers sched.Sched.stages;
  let ctx = { sched; target; thread_loops = [] } in
  let rec emit_roots = function
    | [] -> Stmt.Skip
    | st :: rest ->
        if not (Sched.is_root_stage st) then emit_roots rest
        else
          let nest = emit_stage ctx st ~region:None in
          let after = emit_roots rest in
          if st.Sched.s_is_output then Stmt.seq [ nest; after ]
          else Stmt.Allocate (st.Sched.s_out, Stmt.seq [ nest; after ])
  in
  let body = emit_roots sched.Sched.stages in
  Simplify.stmt body

(** Arithmetic cost of an intrinsic, for {!Analysis.flops}. *)
let intrin_flops name = (Tensor_intrin.find name).Tensor_intrin.flops
