(** SPMD legalization for functional execution.

    GPU kernels are written per-thread with barrier synchronization;
    executing them on a sequential interpreter naively either breaks
    cooperation (each "thread" sees a private, partially-filled shared
    buffer) or forces every thread to redundantly perform the whole
    cooperative fill. This pass rewrites the kernel into an equivalent
    sequential program using the classic barrier-fission transformation:

    + a [threadIdx.*] loop whose body contains barriers is {e fissioned}
      at each barrier — [for t { A; bar; B }] becomes
      [for t { A }; for t { B }] — and {e interchanged} inward past
      serial loops that contain barriers;
    + [Shared]-scope allocations stay above the thread loop (one
      instance per block, cooperatively filled);
    + thread-private allocations that end up spanning fission points are
      {e privatized}: the buffer gains a leading per-thread dimension;
    + an inner loop re-binding an enclosing thread tag (cooperative work
      distribution) executes once, at the enclosing tag's value, guarded
      by its extent.

    Sound for the programs our lowering emits, where all cross-thread
    communication goes through [Shared] buffers delimited by barriers
    (§4.2's automatically-inserted synchronization). The timing models
    analyze the original, un-fissioned kernel. *)

open Tvm_tir

let is_threadidx = function
  | Stmt.Thread_binding tag ->
      if String.length tag >= 9 && String.sub tag 0 9 = "threadIdx" then Some tag
      else None
  | _ -> None

let contains_barrier s =
  let found = ref false in
  Stmt.iter (function Stmt.Barrier -> found := true | _ -> ()) s;
  !found

(** Distribute a stack of thread loops (outermost first) over [body],
    fissioning at barriers. [env] maps enclosing thread tags to their
    loop vars. *)
let rec distribute env (loops : Stmt.for_loop list) (body : Stmt.t) : Stmt.t =
  let recur b = distribute env loops b in
  let wrap b =
    (* plain thread-loop nest around a barrier-free body *)
    List.fold_right
      (fun l acc -> Stmt.For { l with Stmt.body = acc })
      loops (legalize env b)
  in
  if not (contains_barrier body) then wrap body
  else
    match body with
    | Stmt.Seq items ->
        let items = Stmt.flatten_seq (Stmt.Seq items) in
        (* split at top-level barriers; distribute over every item *)
        let segments =
          List.fold_left
            (fun acc item ->
              match item with
              | Stmt.Barrier -> [] :: acc
              | _ -> (
                  match acc with
                  | seg :: rest -> (item :: seg) :: rest
                  | [] -> [ [ item ] ]))
            [ [] ] items
          |> List.rev_map List.rev
        in
        Stmt.seq (List.concat_map (fun seg -> List.map recur seg) segments)
    | Stmt.For inner when inner.Stmt.kind = Stmt.Serial ->
        (* interchange: the barrier inside synchronizes per iteration *)
        Stmt.For { inner with Stmt.body = recur inner.Stmt.body }
    | Stmt.For inner -> (
        match is_threadidx inner.Stmt.kind with
        | Some tag when not (List.mem_assoc tag env) ->
            (* deeper thread dimension joins the cooperating group *)
            distribute ((tag, inner.Stmt.loop_var) :: env) (loops @ [ inner ])
              inner.Stmt.body
        | _ -> wrap body)
    | Stmt.Allocate (b, inner) ->
        if b.Expr.bscope = Expr.Shared then
          (* one instance per block: hoist above the thread loops *)
          Stmt.Allocate (b, recur inner)
        else begin
          (* privatize: one leading dimension per thread loop *)
          let extents =
            List.map
              (fun (l : Stmt.for_loop) ->
                match Interval.const_of_expr l.Stmt.extent with
                | Some e -> Expr.int e
                | None -> invalid_arg "spmd: non-constant thread extent")
              loops
          in
          let b' =
            Expr.Buffer.create ~scope:b.Expr.bscope ~dtype:b.Expr.bdtype
              (b.Expr.bname ^ ".spmd") (extents @ b.Expr.bshape)
          in
          let prefix = List.map (fun (l : Stmt.for_loop) -> Expr.Var l.Stmt.loop_var) loops in
          let inner' =
            Visit.retarget_buffer ~old_b:b ~new_b:b'
              ~remap:(fun idx -> prefix @ idx)
              inner
          in
          Stmt.Allocate (b', recur inner')
        end
    | Stmt.Let_stmt (v, e, inner) ->
        let depends =
          List.exists
            (fun fv ->
              List.exists
                (fun (l : Stmt.for_loop) -> Expr.Var.equal fv l.Stmt.loop_var)
                loops)
            (Visit.free_vars e)
        in
        if depends then wrap body else Stmt.Let_stmt (v, e, recur inner)
    | Stmt.If_then_else _ | Stmt.Store _ | Stmt.Barrier | Stmt.Evaluate _
    | Stmt.Call_intrin _ | Stmt.Dma_copy _ | Stmt.Push_dep _ | Stmt.Pop_dep _
    | Stmt.Skip ->
        wrap body

(** Legalize a whole kernel. [env] maps active thread tags to vars. *)
and legalize env (s : Stmt.t) : Stmt.t =
  match s with
  | Stmt.For l -> (
      match is_threadidx l.Stmt.kind with
      | Some tag -> (
          match List.assoc_opt tag env with
          | Some outer_var ->
              (* re-binding: work distribution — run once at the
                 enclosing tag's value, if in range *)
              let guarded =
                Stmt.Let_stmt
                  (l.Stmt.loop_var, Expr.Var outer_var, legalize env l.Stmt.body)
              in
              Stmt.If_then_else
                (Expr.( < ) (Expr.Var outer_var) l.Stmt.extent, guarded, None)
          | None ->
              let env = (tag, l.Stmt.loop_var) :: env in
              distribute env [ l ] l.Stmt.body)
      | None -> Stmt.For { l with Stmt.body = legalize env l.Stmt.body })
  | Stmt.Seq items -> Stmt.seq (List.map (legalize env) items)
  | Stmt.Allocate (b, inner) -> Stmt.Allocate (b, legalize env inner)
  | Stmt.Let_stmt (v, e, inner) -> Stmt.Let_stmt (v, e, legalize env inner)
  | Stmt.If_then_else (c, t, e) ->
      Stmt.If_then_else (c, legalize env t, Option.map (legalize env) e)
  | Stmt.Barrier ->
      (* top-level barrier outside any thread loop: no-op *)
      Stmt.Skip
  | Stmt.Store _ | Stmt.Evaluate _ | Stmt.Call_intrin _ | Stmt.Dma_copy _
  | Stmt.Push_dep _ | Stmt.Pop_dep _ | Stmt.Skip ->
      s

(** Entry point used by the interpreter. *)
let legalize_for_interp (s : Stmt.t) : Stmt.t = legalize [] s
