lib/lower/spmd.ml: Expr Interval List Option Stmt String Tvm_tir Visit
