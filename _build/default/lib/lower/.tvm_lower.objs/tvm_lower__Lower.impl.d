lib/lower/lower.ml: Expr Hashtbl Interval List Printf Simplify Stmt String Tvm_schedule Tvm_te Tvm_tir Visit
