lib/lower/vthread_lower.ml: Array Expr Fun List Option Printf Stmt Tvm_tir Visit
