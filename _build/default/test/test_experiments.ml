(* Invariants of the baselines and the experiment harness: these encode
   the paper's qualitative claims as assertions, so a regression in the
   models or templates that would flip a figure's story fails the suite. *)

open Tvm_tir
module Vendor = Tvm_baselines.Vendor
module Framework = Tvm_baselines.Framework
module Machine = Tvm_sim.Machine
module Models = Tvm_models.Models
module Fm = Tvm_experiments.Fig_micro
module Fe = Tvm_experiments.Fig_e2e
module Des = Tvm_vdla.Des
module V = Tvm_vdla.Vdla_schedule
module Exp_util = Tvm_experiments.Exp_util
open Test_helpers

let gpu = Vendor.Gpu_m Machine.titan_x
let cpu = Vendor.Cpu_m Machine.arm_a53

let conv_time ?(lib = Vendor.Cudnn) ?(machine = gpu) ~ic ~oc ~hw ~kernel ~stride () =
  Vendor.op_time lib machine ~op:"conv2d"
    ~in_shapes:[ [ 1; ic; hw; hw ]; [ oc; ic; kernel; kernel ] ]
    ~out_shape:
      [ 1; oc; ((hw + kernel - 1) / stride) + 0; ((hw + kernel - 1) / stride) + 0 ]
    ~attrs:[ ("stride", Tvm_graph.Attrs.Int stride) ]
    ~dtype:Dtype.Float32

(* ------------------------------------------------------------------ *)
(* Vendor model invariants                                              *)
(* ------------------------------------------------------------------ *)

let test_cudnn_shape_sensitivity () =
  (* cuDNN is strong on 3x3 and weak on the unconventional 4x4 s2
     (DQN's operator, the paper's §6.1 explanation for the 3.8x). *)
  let t33 = conv_time ~ic:64 ~oc:64 ~hw:28 ~kernel:3 ~stride:1 () in
  let t44 = conv_time ~ic:64 ~oc:64 ~hw:28 ~kernel:4 ~stride:2 () in
  (* 4x4 s2 has ~same flops per output but runs at much lower eff *)
  checkb "4x4s2 disproportionately slow" (t44 > t33 /. 4.)

let test_vendor_dtype_scaling () =
  let t32 =
    Vendor.op_time Vendor.Arm_compute_lib (Vendor.Gpu_m Machine.mali_t860)
      ~op:"dense" ~in_shapes:[ [ 64; 512 ]; [ 512; 512 ] ] ~out_shape:[ 64; 512 ]
      ~attrs:[] ~dtype:Dtype.Float32
  in
  let t16 =
    Vendor.op_time Vendor.Arm_compute_lib (Vendor.Gpu_m Machine.mali_t860)
      ~op:"dense" ~in_shapes:[ [ 64; 512 ]; [ 512; 512 ] ] ~out_shape:[ 64; 512 ]
      ~attrs:[] ~dtype:Dtype.Float16
  in
  checkb "fp16 faster on Mali ACL" (t16 < t32)

let test_framework_dispatch_overhead () =
  (* More kernels, more dispatch: the unfused frameworks pay per-op. *)
  let g = Models.lstm_lm ~hidden:64 ~layers:1 ~vocab:100 () in
  let tf = Framework.run_time_s Framework.tensorflow gpu g in
  let xla = Framework.run_time_s Framework.tensorflow_xla gpu g in
  checkb "XLA fusion helps elementwise-heavy nets" (xla < tf)

let test_framework_conv_heavy_xla () =
  (* ...but XLA's generated convolutions lose to cuDNN-backed TF on a
     conv-dominated network (Fig 14's ResNet ordering). *)
  let g = Models.resnet18 () in
  let tf = Framework.run_time_s Framework.tensorflow gpu g in
  let xla = Framework.run_time_s Framework.tensorflow_xla gpu g in
  checkb "XLA slower on conv-heavy nets" (xla > tf)

let test_tflite_supports () =
  checkb "supports resnet" (Framework.supports Framework.tflite (Models.resnet18 ~input_hw:32 ~width:0.25 ()));
  checkb "rejects dcgan" (not (Framework.supports Framework.tflite (Models.dcgan ~code_dim:8 ~base:4 ())))

let test_mxnet_depthwise_weak () =
  (* depthwise has no vendor-tuned kernel: large TVM headroom (Fig 15) *)
  let dw =
    Vendor.op_time Vendor.Mxnet_kernels gpu ~op:"depthwise_conv2d"
      ~in_shapes:[ [ 1; 256; 28; 28 ]; [ 256; 1; 3; 3 ] ]
      ~out_shape:[ 1; 256; 28; 28 ] ~attrs:[] ~dtype:Dtype.Float32
  in
  let ideal =
    Vendor.roofline_s gpu
      ~flops:(2. *. 256. *. 28. *. 28. *. 9.)
      ~bytes:(Vendor.op_bytes ~in_shapes:[ [ 1; 256; 28; 28 ]; [ 256; 1; 3; 3 ] ] ~out_shape:[ 1; 256; 28; 28 ] ~dtype:Dtype.Float32)
      ~dtype:Dtype.Float32
  in
  checkb "mxnet depthwise far from roofline" (dw > 3. *. ideal)

(* ------------------------------------------------------------------ *)
(* Experiment harness smoke checks (fast figures only)                  *)
(* ------------------------------------------------------------------ *)

let test_fig10_hiding_improves () =
  (* run one mid-size layer rather than the full figure *)
  let run vt =
    let wl = V.gemm_workload ~name:(Printf.sprintf "texp_vt%d" vt) ~m:112 ~n:128 ~k:576 () in
    let _, stats = V.simulate ~vthreads:vt wl in
    stats.Des.compute_utilization
  in
  let u1 = run 1 and u2 = run 2 in
  checkb (Printf.sprintf "util %.2f -> %.2f" u1 u2) (u2 > u1)

let test_fig4_fusion_wins () =
  let rows = Fm.fig4 () in
  let all = List.concat_map snd rows in
  (* individual workloads carry search variance; the figure's claim is
     that fusion helps overall and substantially on elementwise chains *)
  List.iter (fun s -> checkb "no large fusion regression" (s > 0.7)) all;
  checkb "fusion wins on average" (Exp_util.geomean all > 1.3)

let test_fig21_amdahl () =
  let conv_speedup, e2e_speedup = Fe.fig21 () in
  checkb "conv offload order-of-magnitude" (conv_speedup > 5.);
  checkb "end-to-end bounded by Amdahl" (e2e_speedup < conv_speedup /. 2.);
  checkb "end-to-end still a win" (e2e_speedup > 1.5)

let suite =
  [
    Alcotest.test_case "cudnn shape sensitivity" `Quick test_cudnn_shape_sensitivity;
    Alcotest.test_case "vendor fp16 scaling" `Quick test_vendor_dtype_scaling;
    Alcotest.test_case "xla wins elementwise" `Quick test_framework_dispatch_overhead;
    Alcotest.test_case "xla loses conv-heavy" `Quick test_framework_conv_heavy_xla;
    Alcotest.test_case "tflite op support" `Quick test_tflite_supports;
    Alcotest.test_case "mxnet depthwise weak" `Quick test_mxnet_depthwise_weak;
    Alcotest.test_case "fig10: hiding improves util" `Slow test_fig10_hiding_improves;
    Alcotest.test_case "fig4: fusion wins" `Slow test_fig4_fusion_wins;
    Alcotest.test_case "fig21: amdahl structure" `Slow test_fig21_amdahl;
  ]
