(* Simulator tests: interpreter semantics, CPU/GPU timing-model
   behaviours the schedules rely on, and the device pool. *)

open Tvm_tir
module Interp = Tvm_sim.Interp
module Machine = Tvm_sim.Machine
module Cpu_model = Tvm_sim.Cpu_model
module Gpu_model = Tvm_sim.Gpu_model
module Pool = Tvm_rpc.Device_pool
module Nd = Tvm_nd.Ndarray
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
module Sched = Tvm_schedule.Sched
module Lower = Tvm_lower.Lower
open Test_helpers

(* ------------------------------------------------------------------ *)
(* Ndarray                                                              *)
(* ------------------------------------------------------------------ *)

let test_nd_basics () =
  let t = Nd.create [ 2; 3 ] in
  Nd.set t [ 1; 2 ] 5.;
  Alcotest.(check (float 0.)) "get/set" 5. (Nd.get t [ 1; 2 ]);
  Alcotest.(check int) "elems" 6 (Nd.num_elems t);
  (try
     ignore (Nd.get t [ 2; 0 ]);
     Alcotest.fail "oob must raise"
   with Invalid_argument _ -> ())

let test_nd_quantize () =
  let t = Nd.create ~dtype:Dtype.Int8 [ 1 ] in
  Nd.set t [ 0 ] 300.;
  Alcotest.(check (float 0.)) "int8 saturates" 127. (Nd.get t [ 0 ]);
  let u = Nd.create ~dtype:Dtype.UInt2 [ 1 ] in
  Nd.set u [ 0 ] 7.;
  Alcotest.(check (float 0.)) "uint2 saturates" 3. (Nd.get u [ 0 ])

let test_nd_random_deterministic () =
  let a = Nd.random ~seed:5 [ 4; 4 ] and b = Nd.random ~seed:5 [ 4; 4 ] in
  checkb "same seed same values" (Nd.to_list a = Nd.to_list b);
  let c = Nd.random ~seed:6 [ 4; 4 ] in
  checkb "different seed differs" (Nd.to_list a <> Nd.to_list c)

(* ------------------------------------------------------------------ *)
(* Interpreter                                                          *)
(* ------------------------------------------------------------------ *)

let test_interp_floor_divmod () =
  let b = Expr.Buffer.create ~dtype:Dtype.Int32 "o" [ Expr.int 2 ] in
  let s =
    Stmt.seq
      [ Stmt.Store (b, [ Expr.zero ], Expr.(int (-7) / int 2));
        Stmt.Store (b, [ Expr.one ], Expr.(int (-7) % int 2)) ]
  in
  let o = Nd.create ~dtype:Dtype.Int32 [ 2 ] in
  Interp.run s ~bindings:[ (b, o) ];
  Alcotest.(check (float 0.)) "floor div" (-4.) (Nd.get o [ 0 ]);
  Alcotest.(check (float 0.)) "floor mod" 1. (Nd.get o [ 1 ])

let test_interp_lazy_select () =
  (* The untaken branch would read out of bounds: must not be evaluated. *)
  let src = Expr.Buffer.create "src" [ Expr.int 2 ] in
  let dst = Expr.Buffer.create "dst" [ Expr.int 4 ] in
  let v = Expr.Var.fresh "i" in
  let body =
    Stmt.Store
      ( dst, [ Expr.Var v ],
        Expr.select Expr.(Var v < int 2) (Expr.load src [ Expr.Var v ]) (Expr.f32 0.) )
  in
  let s = Stmt.for_ v Expr.zero (Expr.int 4) body in
  let sv = Nd.of_list [ 2 ] [ 7.; 8. ] and dv = Nd.create [ 4 ] in
  Interp.run s ~bindings:[ (src, sv); (dst, dv) ];
  checkb "padding semantics" (Nd.to_list dv = [ 7.; 8.; 0.; 0. ])

let test_interp_unbound_fails () =
  let b = Expr.Buffer.create "nope" [ Expr.int 1 ] in
  try
    Interp.run (Stmt.Store (b, [ Expr.zero ], Expr.f32 1.)) ~bindings:[];
    Alcotest.fail "unbound buffer must fail"
  with Interp.Runtime_error _ -> ()

let test_interp_intrinsics () =
  let b = Expr.Buffer.create "o" [ Expr.int 2 ] in
  let s =
    Stmt.seq
      [ Stmt.Store (b, [ Expr.zero ], Expr.call "exp" [ Expr.f32 0. ]);
        Stmt.Store (b, [ Expr.one ], Expr.call "popcount" [ Expr.int 7 ]) ]
  in
  let o = Nd.create [ 2 ] in
  Interp.run s ~bindings:[ (b, o) ];
  Alcotest.(check (float 1e-9)) "exp 0" 1. (Nd.get o [ 0 ]);
  Alcotest.(check (float 0.)) "popcount 7" 3. (Nd.get o [ 1 ])

(* ------------------------------------------------------------------ *)
(* CPU / GPU timing models                                              *)
(* ------------------------------------------------------------------ *)

let lowered_dense ~schedule () =
  let a = Tensor.placeholder "tm_a" [ Expr.int 64; Expr.int 64 ] in
  let b = Tensor.placeholder "tm_b" [ Expr.int 64; Expr.int 64 ] in
  let c = Op.dense ~name:"tm_c" a b in
  let sched = Sched.create [ c ] in
  schedule sched c;
  Lower.lower sched

let test_cpu_vectorize_helps () =
  let scalar =
    lowered_dense ~schedule:(fun _ _ -> ()) ()
  in
  let vectorized =
    lowered_dense
      ~schedule:(fun sched c ->
        let st = Sched.find sched c in
        let _, xi = Sched.split st (Sched.axis st 1) ~factor:8 in
        let k = Sched.reduce_axis st 0 in
        Sched.reorder st [ k; xi ];
        Sched.vectorize st xi)
      ()
  in
  checkb "vectorized faster"
    (Cpu_model.time_s Machine.arm_a53 vectorized < Cpu_model.time_s Machine.arm_a53 scalar)

let test_cpu_parallel_helps () =
  let serial = lowered_dense ~schedule:(fun _ _ -> ()) () in
  let parallel =
    lowered_dense
      ~schedule:(fun sched c ->
        let st = Sched.find sched c in
        Sched.parallel st (Sched.axis st 0))
      ()
  in
  checkb "parallel faster"
    (Cpu_model.time_s Machine.arm_a53 parallel < Cpu_model.time_s Machine.arm_a53 serial)

let gpu_dense ~coop () =
  let a = Tensor.placeholder "gm_a" [ Expr.int 256; Expr.int 256 ] in
  let b = Tensor.placeholder "gm_b" [ Expr.int 256; Expr.int 256 ] in
  let c = Op.dense ~name:"gm_c" a b in
  let cfg =
    [ ("tile_y", 32); ("tile_x", 32); ("wy", 8); ("wx", 8); ("kf", 8);
      ("coop", (if coop then 1 else 0)); ("unroll", 1) ]
  in
  Tvm_autotune.Templates.gpu_matmul_instantiate c cfg

let test_gpu_coop_reduces_traffic () =
  let without = Gpu_model.estimate Machine.titan_x (gpu_dense ~coop:false ()) in
  let with_ = Gpu_model.estimate Machine.titan_x (gpu_dense ~coop:true ()) in
  checkb "coop cuts global bytes"
    (with_.Gpu_model.global_bytes < without.Gpu_model.global_bytes /. 2.);
  checkb "coop uses shared memory" (with_.Gpu_model.shared_bytes > 0.)

let test_gpu_invalid_configs () =
  (* thread oversubscription must be rejected as invalid *)
  let a = Tensor.placeholder "gi_a" [ Expr.int 4096; Expr.int 16 ] in
  let b = Tensor.placeholder "gi_b" [ Expr.int 16; Expr.int 16 ] in
  let c = Op.dense ~name:"gi_c" a b in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  let _, tx = Sched.split st (Sched.axis st 0) ~factor:2048 in
  Sched.bind st tx "threadIdx.x";
  let bd = Gpu_model.estimate Machine.titan_x (Lower.lower ~target:Lower.Gpu sched) in
  checkb "2048 threads/block invalid" (not bd.Gpu_model.valid)

let test_gpu_fp16_faster_on_mali () =
  let stmt = gpu_dense ~coop:true () in
  let f32 = Gpu_model.time_s ~force_dtype:Dtype.Float32 Machine.mali_t860 stmt in
  let f16 = Gpu_model.time_s ~force_dtype:Dtype.Float16 Machine.mali_t860 stmt in
  checkb "fp16 faster on Mali" (f16 < f32)

let test_machine_peaks () =
  checkb "titan ~6 TFLOPS" (abs_float (Machine.gpu_peak_gflops Machine.titan_x -. 6144.) < 200.);
  checkb "a53 peak" (Machine.cpu_peak_gflops Machine.arm_a53 > 30.);
  Alcotest.(check (float 1e-6)) "vdla peak GOPS" 102.4 (Machine.accel_peak_gops Machine.vdla)

(* ------------------------------------------------------------------ *)
(* Device pool                                                          *)
(* ------------------------------------------------------------------ *)

let test_pool_scheduling () =
  let pool = Pool.create ~overhead_s:1. [ Pool.Gpu_dev Machine.titan_x; Pool.Gpu_dev Machine.titan_x ] in
  let stmt = gpu_dense ~coop:true () in
  for i = 0 to 3 do
    ignore (Pool.measure ~key:i pool ~kind_pred:Pool.is_gpu stmt)
  done;
  let stats = Pool.stats pool in
  Alcotest.(check int) "two devices" 2 (List.length stats);
  List.iter (fun (_, jobs, _) -> Alcotest.(check int) "balanced" 2 jobs) stats;
  checkb "makespan positive" (Pool.makespan pool > 0.)

let test_pool_no_matching_device () =
  let pool = Pool.create [ Pool.Gpu_dev Machine.titan_x ] in
  try
    ignore (Pool.measure pool ~kind_pred:Pool.is_cpu (gpu_dense ~coop:true ()));
    Alcotest.fail "expected no matching device"
  with Pool.No_matching_device _ -> ()

let suite =
  [
    Alcotest.test_case "ndarray basics" `Quick test_nd_basics;
    Alcotest.test_case "ndarray quantize" `Quick test_nd_quantize;
    Alcotest.test_case "ndarray determinism" `Quick test_nd_random_deterministic;
    Alcotest.test_case "interp floor div/mod" `Quick test_interp_floor_divmod;
    Alcotest.test_case "interp lazy select" `Quick test_interp_lazy_select;
    Alcotest.test_case "interp unbound buffer" `Quick test_interp_unbound_fails;
    Alcotest.test_case "interp intrinsics" `Quick test_interp_intrinsics;
    Alcotest.test_case "cpu: vectorize helps" `Quick test_cpu_vectorize_helps;
    Alcotest.test_case "cpu: parallel helps" `Quick test_cpu_parallel_helps;
    Alcotest.test_case "gpu: coop cuts traffic" `Quick test_gpu_coop_reduces_traffic;
    Alcotest.test_case "gpu: invalid configs" `Quick test_gpu_invalid_configs;
    Alcotest.test_case "gpu: fp16 on Mali" `Quick test_gpu_fp16_faster_on_mali;
    Alcotest.test_case "machine peaks" `Quick test_machine_peaks;
    Alcotest.test_case "device pool scheduling" `Quick test_pool_scheduling;
    Alcotest.test_case "device pool matching" `Quick test_pool_no_matching_device;
  ]
