(* Tests for schedule construction and the primitives' bookkeeping. *)

open Tvm_tir
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
module Sched = Tvm_schedule.Sched
module Iter_var = Tvm_schedule.Iter_var
module Tensor_intrin = Tvm_schedule.Tensor_intrin
open Test_helpers

let mk_dense m n k =
  let a = Tensor.placeholder "sa" [ Expr.int m; Expr.int k ] in
  let b = Tensor.placeholder "sb" [ Expr.int n; Expr.int k ] in
  let c = Op.dense ~name:"sc" a b in
  (a, b, c)

let leaf_names st = List.map Iter_var.name st.Sched.s_leaf

let test_create () =
  let _, _, c = mk_dense 4 4 8 in
  let sched = Sched.create [ c ] in
  Alcotest.(check int) "one stage" 1 (List.length (Sched.stages sched));
  let st = Sched.find sched c in
  Alcotest.(check int) "2 data axes" 2 (List.length st.Sched.s_root_axes);
  Alcotest.(check int) "1 reduce axis" 1 (List.length st.Sched.s_reduce_axes);
  Alcotest.(check int) "3 leaves" 3 (List.length st.Sched.s_leaf)

let test_split () =
  let _, _, c = mk_dense 8 4 8 in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  let y = Sched.axis st 0 in
  let o, i = Sched.split st y ~factor:4 in
  Alcotest.(check int) "outer extent" 2 o.Iter_var.extent;
  Alcotest.(check int) "inner extent" 4 i.Iter_var.extent;
  Alcotest.(check int) "4 leaves" 4 (List.length st.Sched.s_leaf)

let test_split_nparts () =
  let _, _, c = mk_dense 12 4 8 in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  let o, i = Sched.split_nparts st (Sched.axis st 0) ~nparts:3 in
  Alcotest.(check int) "outer = nparts" 3 o.Iter_var.extent;
  Alcotest.(check int) "inner" 4 i.Iter_var.extent

let test_fuse_and_reorder () =
  let _, _, c = mk_dense 4 6 8 in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  let y = Sched.axis st 0 and x = Sched.axis st 1 in
  let f = Sched.fuse st y x in
  Alcotest.(check int) "fused extent" 24 f.Iter_var.extent;
  Alcotest.(check int) "2 leaves" 2 (List.length st.Sched.s_leaf);
  let k = List.nth st.Sched.s_leaf 1 in
  Sched.reorder st [ k; f ];
  checkb "reduce now first" (Iter_var.is_reduce (List.hd st.Sched.s_leaf))

let test_fuse_non_adjacent_rejected () =
  let _, _, c = mk_dense 4 6 8 in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  let y = Sched.axis st 0 in
  let k = List.nth st.Sched.s_leaf 2 in
  Alcotest.check_raises "non-adjacent fuse"
    (Invalid_argument
       (Printf.sprintf "fuse: %s and %s are not adjacent" (Iter_var.name y)
          (Iter_var.name k)))
    (fun () -> ignore (Sched.fuse st y k))

let test_annotation_validation () =
  let _, _, c = mk_dense 4 6 8 in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  let k = List.nth st.Sched.s_leaf 2 in
  checkb "k is reduce" (Iter_var.is_reduce k);
  (try
     Sched.parallel st k;
     Alcotest.fail "parallel on reduce should fail"
   with Invalid_argument _ -> ());
  (try
     Sched.bind st k "threadIdx.x";
     Alcotest.fail "bind on reduce should fail"
   with Invalid_argument _ -> ());
  (try
     Sched.bind st (Sched.axis st 0) "warpIdx.z";
     Alcotest.fail "bad tag should fail"
   with Invalid_argument _ -> ())

let test_tile () =
  let _, _, c = mk_dense 8 8 4 in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  let y = Sched.axis st 0 and x = Sched.axis st 1 in
  let yo, xo, yi, xi = Sched.tile st y x ~y_factor:2 ~x_factor:4 in
  ignore (yo, xo);
  Alcotest.(check int) "yi extent" 2 yi.Iter_var.extent;
  Alcotest.(check int) "xi extent" 4 xi.Iter_var.extent;
  (* order: yo xo yi xi k *)
  let names = leaf_names st in
  Alcotest.(check int) "5 leaves" 5 (List.length names)

let test_cache_write_structure () =
  let _, _, c = mk_dense 4 4 8 in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  let cl = Sched.cache_write sched st Expr.Local in
  Alcotest.(check int) "two stages" 2 (List.length (Sched.stages sched));
  checkb "cache scope" (cl.Sched.s_out.Expr.bscope = Expr.Local);
  checkb "reduce moved to cache" (cl.Sched.s_reduce_axes <> []);
  checkb "original became copy" (st.Sched.s_reduce_axes = []);
  (* cache stage precedes the copy stage *)
  match Sched.stages sched with
  | [ first; second ] ->
      checkb "order" (first == cl && second == st)
  | _ -> Alcotest.fail "expected two stages"

let test_cache_read_rewrites_reader () =
  let a, _, c = mk_dense 4 4 8 in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  let cache = Sched.cache_read sched (Tensor.buffer a) Expr.Shared [ st ] in
  checkb "reader no longer touches A"
    (not
       (List.exists
          (fun b -> Expr.Buffer.equal b (Tensor.buffer a))
          (Sched.read_buffers st)));
  checkb "reader reads cache"
    (List.exists (fun b -> Expr.Buffer.equal b cache.Sched.s_out) (Sched.read_buffers st))

let test_set_scope () =
  let d = Tensor.placeholder "sd" [ Expr.int 4 ] in
  let t1 = Tensor.compute "t1" [ Expr.int 4 ] (fun idx -> Tensor.read d idx) in
  let t2 =
    Tensor.compute "t2" [ Expr.int 4 ] (fun idx ->
        Expr.binop Expr.Add (Tensor.read t1 idx) (Expr.f32 1.))
  in
  let sched = Sched.create [ t2 ] in
  let st1 = Sched.find sched t1 and st2 = Sched.find sched t2 in
  Sched.set_scope sched st1 Expr.Shared;
  checkb "scope updated" (st1.Sched.s_out.Expr.bscope = Expr.Shared);
  checkb "consumer retargeted"
    (List.exists (fun b -> Expr.Buffer.equal b st1.Sched.s_out) (Sched.read_buffers st2))

let test_compute_inline_validation () =
  let _, _, c = mk_dense 4 4 8 in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  (try
     Sched.compute_inline st;
     Alcotest.fail "inlining a reduction must fail"
   with Invalid_argument _ -> ())

let test_vthread_and_pragma () =
  let _, _, c = mk_dense 4 4 8 in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  let y = Sched.axis st 0 in
  Sched.vthread st y;
  checkb "vthread recorded" (Sched.ann_of st y = Some Tvm_tir.Stmt.Vthread);
  Sched.pragma st "double_buffer" "1";
  checkb "pragma recorded" (List.mem_assoc "double_buffer" st.Sched.s_pragma)

let test_gemm_intrinsic_registry () =
  let i = Tensor_intrin.gemm 4 4 8 in
  checkb "registered" (Tensor_intrin.find i.Tensor_intrin.name == i);
  Alcotest.(check (float 1.)) "flops" (2. *. 4. *. 4. *. 8.) i.Tensor_intrin.flops;
  (* Execute the intrinsic semantics directly. *)
  let a = Array.make_matrix 4 8 1. and b = Array.make_matrix 4 8 2. in
  let out = Array.make_matrix 4 4 0. in
  i.Tensor_intrin.execute ~variant:"body"
    ~inputs:
      [ (fun idx -> match idx with [ r; c ] -> a.(r).(c) | _ -> 0.);
        (fun idx -> match idx with [ r; c ] -> b.(r).(c) | _ -> 0.) ]
    ~out_read:(fun idx -> match idx with [ r; c ] -> out.(r).(c) | _ -> 0.)
    ~out_write:(fun idx v -> match idx with [ r; c ] -> out.(r).(c) <- v | _ -> ());
  checkb "gemm result" (out.(0).(0) = 16.)

let test_iteration_count () =
  let _, _, c = mk_dense 4 6 8 in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  Alcotest.(check int) "iteration count" (4 * 6 * 8) (Sched.iteration_count st)

let suite =
  [
    Alcotest.test_case "create schedule" `Quick test_create;
    Alcotest.test_case "split" `Quick test_split;
    Alcotest.test_case "split nparts" `Quick test_split_nparts;
    Alcotest.test_case "fuse + reorder" `Quick test_fuse_and_reorder;
    Alcotest.test_case "fuse non-adjacent rejected" `Quick test_fuse_non_adjacent_rejected;
    Alcotest.test_case "annotation validation" `Quick test_annotation_validation;
    Alcotest.test_case "tile" `Quick test_tile;
    Alcotest.test_case "cache_write structure" `Quick test_cache_write_structure;
    Alcotest.test_case "cache_read rewrite" `Quick test_cache_read_rewrites_reader;
    Alcotest.test_case "set_scope" `Quick test_set_scope;
    Alcotest.test_case "inline validation" `Quick test_compute_inline_validation;
    Alcotest.test_case "vthread + pragma" `Quick test_vthread_and_pragma;
    Alcotest.test_case "gemm intrinsic" `Quick test_gemm_intrinsic_registry;
    Alcotest.test_case "iteration count" `Quick test_iteration_count;
  ]
