(* Lowering tests: loop-nest construction, guards for non-dividing
   splits, inlining, compute_at region inference, tensorize — plus the
   central property test: randomly-scheduled matmuls always compute the
   same values as the unscheduled reference ("schedule primitives
   preserve the program's logical equivalence", §4.1). *)

open Tvm_tir
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
module Sched = Tvm_schedule.Sched
module Iter_var = Tvm_schedule.Iter_var
module Tensor_intrin = Tvm_schedule.Tensor_intrin
module Lower = Tvm_lower.Lower
module Interp = Tvm_sim.Interp
module Nd = Tvm_nd.Ndarray
open Test_helpers

let mk_dense ?(m = 16) ?(n = 16) ?(k = 16) tag =
  let a = Tensor.placeholder ("A" ^ tag) [ Expr.int m; Expr.int k ] in
  let b = Tensor.placeholder ("B" ^ tag) [ Expr.int n; Expr.int k ] in
  let c = Op.dense ~name:("C" ^ tag) a b in
  (a, b, c)

let dense_io ?(m = 16) ?(n = 16) ?(k = 16) ~seed tag =
  let a, b, c = mk_dense ~m ~n ~k tag in
  let av = Nd.random ~seed [ m; k ] and bv = Nd.random ~seed:(seed + 1) [ n; k ] in
  let cv = Nd.create [ m; n ] in
  (a, b, c, av, bv, cv)

let test_guard_non_dividing_split () =
  let a, b, c, av, bv, cv = dense_io ~m:10 ~n:6 ~k:7 ~seed:31 "g" in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  let _, _ = Sched.split st (Sched.axis st 0) ~factor:3 in
  let _, _ = Sched.split st (Sched.reduce_axis st 0) ~factor:4 in
  ignore (run sched [ (a, av); (b, bv); (c, cv) ]);
  approx "guarded tail iterations" (ref_dense av bv) cv

let test_reorder_semantics () =
  let a, b, c, av, bv, cv = dense_io ~seed:33 "r" in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  let y = Sched.axis st 0 and x = Sched.axis st 1 in
  let k = Sched.reduce_axis st 0 in
  Sched.reorder st [ x; k; y ];
  ignore (run sched [ (a, av); (b, bv); (c, cv) ]);
  approx "reordered (reduction outside spatial)" (ref_dense av bv) cv

let test_inline_chain () =
  let d = Tensor.placeholder "ic_d" [ Expr.int 8 ] in
  let t1 = Tensor.compute "ic_1" [ Expr.int 8 ] (fun idx ->
      Expr.binop Expr.Add (Tensor.read d idx) (Expr.f32 1.)) in
  let t2 = Tensor.compute "ic_2" [ Expr.int 8 ] (fun idx ->
      Expr.binop Expr.Mul (Tensor.read t1 idx) (Expr.f32 2.)) in
  let t3 = Tensor.compute "ic_3" [ Expr.int 8 ] (fun idx ->
      Expr.binop Expr.Add (Tensor.read t2 idx) (Tensor.read t1 idx)) in
  let sched = Sched.create [ t3 ] in
  Sched.compute_inline (Sched.find sched t1);
  Sched.compute_inline (Sched.find sched t2);
  let stmt = Lower.lower sched in
  (* Only the output allocation should remain. *)
  Alcotest.(check int) "no intermediate allocs" 0 (List.length (Stmt.allocated_buffers stmt));
  let dv = Nd.random ~seed:40 [ 8 ] and ov = Nd.create [ 8 ] in
  Interp.run stmt ~bindings:[ (Tensor.buffer d, dv); (Tensor.buffer t3, ov) ];
  let expect = Nd.map (fun x -> ((x +. 1.) *. 2.) +. (x +. 1.)) dv in
  approx "inline chain values" expect ov

let test_compute_at_region () =
  (* Producer attached inside a tiled consumer: region allocation must
     shrink to the tile. *)
  let d = Tensor.placeholder "ca_d" [ Expr.int 16 ] in
  let p = Tensor.compute "ca_p" [ Expr.int 16 ] (fun idx ->
      Expr.binop Expr.Mul (Tensor.read d idx) (Expr.f32 3.)) in
  let o = Tensor.compute "ca_o" [ Expr.int 16 ] (fun idx ->
      Expr.binop Expr.Add (Tensor.read p idx) (Expr.f32 1.)) in
  let sched = Sched.create [ o ] in
  let so = Sched.find sched o and sp = Sched.find sched p in
  let oo, _oi = Sched.split so (Sched.axis so 0) ~factor:4 in
  Sched.compute_at sp ~target:so ~level:oo;
  let stmt = Lower.lower sched in
  let allocs = Stmt.allocated_buffers stmt in
  Alcotest.(check int) "one region alloc" 1 (List.length allocs);
  Alcotest.(check (list int)) "tile-sized" [ 4 ] (Expr.Buffer.const_shape (List.hd allocs));
  let dv = Nd.random ~seed:41 [ 16 ] and ov = Nd.create [ 16 ] in
  Interp.run stmt ~bindings:[ (Tensor.buffer d, dv); (Tensor.buffer o, ov) ];
  approx "compute_at values" (Nd.map (fun x -> (x *. 3.) +. 1.) dv) ov

let test_tensorize_matmul () =
  let a, b, c, av, bv, cv = dense_io ~m:8 ~n:8 ~k:32 ~seed:42 "tz" in
  let intrin = Tensor_intrin.gemm 8 8 8 in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  let cl = Sched.cache_write sched st Expr.Local in
  let oo, _ = Sched.split st (Sched.axis st 0) ~factor:8 in
  Sched.compute_at cl ~target:st ~level:oo;
  let ko, ki = Sched.split cl (Sched.reduce_axis cl 0) ~factor:8 in
  ignore ki;
  Sched.reorder cl ((ko :: cl.Sched.s_root_axes) @ [ ki ]);
  (match cl.Sched.s_root_axes with
  | first :: _ -> Sched.tensorize cl first intrin
  | [] -> assert false);
  let stmt = run sched [ (a, av); (b, bv); (c, cv) ] in
  (* the intrinsic must actually appear *)
  let calls = ref 0 in
  Stmt.iter (function Stmt.Call_intrin _ -> incr calls | _ -> ()) stmt;
  checkb "intrinsic calls present" (!calls > 0);
  approx "tensorized matmul" (ref_dense av bv) cv

let test_tensorize_shape_mismatch () =
  let _, _, c = mk_dense ~m:8 ~n:8 ~k:32 "tzbad" in
  let intrin = Tensor_intrin.gemm 4 4 8 in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  (* full 8x8 region does not match a 4x4 intrinsic *)
  let ko, ki = Sched.split st (Sched.reduce_axis st 0) ~factor:8 in
  ignore ko;
  ignore ki;
  Sched.reorder st ((ko :: st.Sched.s_root_axes) @ [ ki ]);
  (match st.Sched.s_root_axes with
  | first :: _ -> Sched.tensorize st first intrin
  | [] -> assert false);
  (try
     ignore (Lower.lower sched);
     Alcotest.fail "mismatched tensorize must fail"
   with Lower.Lower_error _ -> ())

let test_gpu_barrier_insertion () =
  let a, b, c, av, bv, cv = dense_io ~seed:44 "sh" in
  let sched = Sched.create [ c ] in
  let st = Sched.find sched c in
  let cl = Sched.cache_write sched st Expr.Local in
  let y = Sched.axis st 0 and x = Sched.axis st 1 in
  let yo, xo, _, _ = Sched.tile st y x ~y_factor:4 ~x_factor:4 in
  ignore yo;
  Sched.bind st yo "blockIdx.x";
  Sched.bind st xo "threadIdx.x";
  Sched.compute_at cl ~target:st ~level:xo;
  let ko, ki = Sched.split cl (Sched.reduce_axis cl 0) ~factor:4 in
  ignore ki;
  Sched.reorder cl ((ko :: cl.Sched.s_root_axes) @ [ ki ]);
  let cache = Sched.cache_read sched (Tensor.buffer a) Expr.Shared [ cl ] in
  Sched.compute_at cache ~target:cl ~level:ko;
  let stmt = run ~target:Lower.Gpu sched [ (a, av); (b, bv); (c, cv) ] in
  let barriers = ref 0 in
  Stmt.iter (function Stmt.Barrier -> incr barriers | _ -> ()) stmt;
  checkb "barrier after shared stage" (!barriers > 0);
  approx "shared-staged matmul" (ref_dense av bv) cv

(* ------------------------------------------------------------------ *)
(* Property: random schedules preserve semantics                        *)
(* ------------------------------------------------------------------ *)

let apply_random_schedule rng sched c =
  let st = Sched.find sched c in
  let divisors16 = [ 1; 2; 4; 8; 16 ] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let use_cache = Random.State.bool rng in
  if use_cache then begin
    (* Structured path (divisor splits only, caches + compute_at). *)
    let cl = Sched.cache_write sched st Expr.Local in
    let y = Sched.axis st 0 and x = Sched.axis st 1 in
    let yf = pick [ 2; 4; 8 ] and xf = pick [ 2; 4; 8 ] in
    let _yo, xo, _yi, xi = Sched.tile st y x ~y_factor:yf ~x_factor:xf in
    if Random.State.bool rng then Sched.unroll st xi;
    Sched.compute_at cl ~target:st ~level:xo;
    let kf = pick divisors16 in
    let ko, ki = Sched.split cl (Sched.reduce_axis cl 0) ~factor:kf in
    Sched.reorder cl ((ko :: cl.Sched.s_root_axes) @ [ ki ]);
    if Random.State.bool rng then Sched.unroll cl ki;
    if Random.State.bool rng then begin
      let cache = Sched.cache_read sched (Tensor.buffer (List.hd (Tensor.topo_order [ c ]))) Expr.Local [ cl ] in
      Sched.compute_at cache ~target:cl ~level:ko
    end
  end
  else begin
    (* Root-only path: arbitrary factors (guards), shuffles, annotations. *)
    let n_splits = Random.State.int rng 3 in
    for _ = 1 to n_splits do
      let leaves = st.Sched.s_leaf in
      let iv = pick leaves in
      let factor = 2 + Random.State.int rng 5 in
      if iv.Iter_var.extent > 1 then ignore (Sched.split st iv ~factor)
    done;
    (* random reorder: shuffle the current leaves *)
    let leaves = st.Sched.s_leaf in
    let arr = Array.of_list leaves in
    for i = Array.length arr - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    Sched.reorder st (Array.to_list arr);
    (* random annotation on a data-par leaf *)
    let data = List.filter (fun iv -> not (Iter_var.is_reduce iv)) st.Sched.s_leaf in
    if data <> [] && Random.State.bool rng then begin
      let iv = pick data in
      match Random.State.int rng 3 with
      | 0 -> Sched.unroll st iv
      | 1 -> Sched.vectorize st iv
      | _ -> Sched.parallel st iv
    end
  end

let random_schedule_preserves_semantics =
  QCheck.Test.make ~name:"random schedules preserve matmul semantics" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let a, b, c, av, bv, cv = dense_io ~seed "prop" in
      let sched = Sched.create [ c ] in
      apply_random_schedule rng sched c;
      ignore (run sched [ (a, av); (b, bv); (c, cv) ]);
      Nd.equal_approx ~tol:1e-3 (ref_dense av bv) cv)

let suite =
  [
    Alcotest.test_case "guards for non-dividing splits" `Quick test_guard_non_dividing_split;
    Alcotest.test_case "reorder semantics" `Quick test_reorder_semantics;
    Alcotest.test_case "inline chain" `Quick test_inline_chain;
    Alcotest.test_case "compute_at region" `Quick test_compute_at_region;
    Alcotest.test_case "tensorize matmul" `Quick test_tensorize_matmul;
    Alcotest.test_case "tensorize mismatch rejected" `Quick test_tensorize_shape_mismatch;
    Alcotest.test_case "shared staging + barrier" `Quick test_gpu_barrier_insertion;
    QCheck_alcotest.to_alcotest random_schedule_preserves_semantics;
  ]
