(* Shared helpers for the test suite: reference kernels, random
   tensors, and a lower+interpret harness. *)

open Tvm_tir
module Tensor = Tvm_te.Tensor
module Sched = Tvm_schedule.Sched
module Lower = Tvm_lower.Lower
module Interp = Tvm_sim.Interp
module Nd = Tvm_nd.Ndarray

let checkb name = Alcotest.(check bool) name true

(** Lower [sched] and execute with the given tensor bindings. *)
let run ?(target = Lower.Cpu) sched bindings =
  let stmt = Lower.lower ~target sched in
  Interp.run stmt ~bindings:(List.map (fun (t, v) -> (Tensor.buffer t, v)) bindings);
  stmt

(** Reference dense: C[y,x] = sum_k A[y,k] * B[x,k]. *)
let ref_dense a b =
  match (Nd.shape a, Nd.shape b) with
  | [ m; k ], [ n; _ ] ->
      Nd.init [ m; n ] (fun idx ->
          match idx with
          | [ y; x ] ->
              let acc = ref 0. in
              for kk = 0 to k - 1 do
                acc := !acc +. (Nd.get a [ y; kk ] *. Nd.get b [ x; kk ])
              done;
              !acc
          | _ -> assert false)
  | _ -> invalid_arg "ref_dense"

(** Reference direct conv2d, NCHW/OIHW, SAME-style explicit padding. *)
let ref_conv2d ?(stride = 1) ?(pad = 1) data weight =
  match (Nd.shape data, Nd.shape weight) with
  | [ n; c; h; w ], [ oc; _; kh; kw ] ->
      let oh = ((h + (2 * pad) - kh) / stride) + 1 in
      let ow = ((w + (2 * pad) - kw) / stride) + 1 in
      Nd.init [ n; oc; oh; ow ] (fun idx ->
          match idx with
          | [ bn; f; y; x ] ->
              let acc = ref 0. in
              for ic = 0 to c - 1 do
                for dy = 0 to kh - 1 do
                  for dx = 0 to kw - 1 do
                    let yy = (y * stride) + dy - pad and xx = (x * stride) + dx - pad in
                    if yy >= 0 && yy < h && xx >= 0 && xx < w then
                      acc :=
                        !acc
                        +. (Nd.get data [ bn; ic; yy; xx ] *. Nd.get weight [ f; ic; dy; dx ])
                  done
                done
              done;
              !acc
          | _ -> assert false)
  | _ -> invalid_arg "ref_conv2d"

(** Run a te output tensor with a default (untransformed) schedule. *)
let run_default output bindings =
  let sched = Sched.create [ output ] in
  run sched bindings

let approx ?(tol = 1e-4) name a b = checkb name (Nd.equal_approx ~tol a b)
