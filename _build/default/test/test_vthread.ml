(* Virtual-thread lowering (§4.4) and the VDLA pipeline: token
   discipline, interleaving, functional equivalence, and emergent
   latency hiding. *)

open Tvm_tir
module V = Tvm_vdla.Vdla_schedule
module Des = Tvm_vdla.Des
module Isa = Tvm_vdla.Isa
module Assemble = Tvm_vdla.Assemble
module Vthread_lower = Tvm_lower.Vthread_lower
module Machine = Tvm_sim.Machine
module Tensor = Tvm_te.Tensor
module Interp = Tvm_sim.Interp
module Nd = Tvm_nd.Ndarray
open Test_helpers

let gemm_io ~m ~n ~k ~seed tag =
  let wl = V.gemm_workload ~name:("vt_" ^ tag) ~m ~n ~k () in
  let av = Nd.random ~dtype:Dtype.Int8 ~seed ~lo:(-4.) ~hi:4. [ m; k ] in
  let wv = Nd.random ~dtype:Dtype.Int8 ~seed:(seed + 1) ~lo:(-4.) ~hi:4. [ n; k ] in
  (wl, av, wv)

let reference av wv m n k =
  Nd.init [ m; n ] (fun idx ->
      match idx with
      | [ y; x ] ->
          let acc = ref 0. in
          for kk = 0 to k - 1 do
            acc := !acc +. (Nd.get av [ y; kk ] *. Nd.get wv [ x; kk ])
          done;
          !acc
      | _ -> assert false)

let run_vdla wl ~vthreads ~kchunk av wv =
  let stmt = V.schedule ~vthreads ~kchunk wl in
  let cv = Nd.create ~dtype:Dtype.Int32 [ wl.V.wl_m; wl.V.wl_n ] in
  Interp.run stmt
    ~bindings:
      [ (Tensor.buffer wl.V.wl_a, av); (Tensor.buffer wl.V.wl_w, wv);
        (Tensor.buffer wl.V.wl_c, cv) ];
  cv

let test_functional_vthreads () =
  List.iter
    (fun vt ->
      let wl, av, wv = gemm_io ~m:32 ~n:32 ~k:64 ~seed:(50 + vt) (Printf.sprintf "f%d" vt) in
      let out = run_vdla wl ~vthreads:vt ~kchunk:32 av wv in
      approx
        (Printf.sprintf "vdla gemm vthreads=%d" vt)
        (reference av wv 32 32 64)
        out)
    [ 1; 2; 4 ]

let test_vthread_erased () =
  let wl, _, _ = gemm_io ~m:32 ~n:32 ~k:64 ~seed:60 "erase" in
  let stmt = V.schedule ~vthreads:2 wl in
  Alcotest.(check int) "no vthread loops remain" 0 (Vthread_lower.count_vthreads stmt)

let test_token_balance () =
  (* Every dependence edge must push exactly as often as it pops. *)
  let wl, _, _ = gemm_io ~m:48 ~n:32 ~k:128 ~seed:61 "bal" in
  let stream = Assemble.run (V.schedule ~vthreads:2 ~kchunk:32 wl) in
  let pushes = Hashtbl.create 4 and pops = Hashtbl.create 4 in
  List.iter
    (fun insn ->
      match insn with
      | Isa.Push { from_; to_ } ->
          Hashtbl.replace pushes (from_, to_)
            (1 + (try Hashtbl.find pushes (from_, to_) with Not_found -> 0))
      | Isa.Pop { from_; to_ } ->
          Hashtbl.replace pops (from_, to_)
            (1 + (try Hashtbl.find pops (from_, to_) with Not_found -> 0))
      | _ -> ())
    stream;
  Hashtbl.iter
    (fun edge n ->
      let m = try Hashtbl.find pops edge with Not_found -> 0 in
      Alcotest.(check int) "push/pop balance" n m)
    pushes

let test_des_no_deadlock_and_hiding () =
  let wl, _, _ = gemm_io ~m:64 ~n:64 ~k:512 ~seed:62 "des" in
  let run vt =
    let _, stats = V.simulate ~vthreads:vt ~kchunk:64 wl in
    stats
  in
  let s1 = run 1 and s2 = run 2 in
  checkb "vthreads reduce cycles" (s2.Des.total_cycles <= s1.Des.total_cycles);
  checkb "utilization improves"
    (s2.Des.compute_utilization >= s1.Des.compute_utilization);
  (* busy time never exceeds the makespan *)
  checkb "ld busy bounded" (s1.Des.ld_busy <= s1.Des.total_cycles);
  checkb "ex busy bounded" (s1.Des.ex_busy <= s1.Des.total_cycles)

let test_des_deadlock_detection () =
  (* A pop with no matching push must be reported, not hang. *)
  let stream = [ Isa.Pop { from_ = Isa.Ld; to_ = Isa.Ex } ] in
  try
    ignore (Des.run Machine.vdla stream);
    Alcotest.fail "expected deadlock"
  with Des.Deadlock _ -> ()

let test_assembler_collapses_dma () =
  let wl, _, _ = gemm_io ~m:32 ~n:32 ~k:64 ~seed:63 "dma" in
  let stream = Assemble.run (V.schedule ~vthreads:2 ~kchunk:32 wl) in
  let elementwise_stores =
    List.filter (function Isa.Dma_store { bytes } -> bytes < 64. | _ -> false) stream
  in
  Alcotest.(check int) "no elementwise DMA stores" 0 (List.length elementwise_stores)

let test_sram_checked () =
  (* A workload whose staged tiles exceed SRAM must be rejected. *)
  let wl = V.gemm_workload ~name:"vt_sram" ~m:16 ~n:16 ~k:65536 () in
  try
    ignore (V.simulate ~vthreads:2 ~kchunk:65536 wl);
    Alcotest.fail "expected SRAM overflow"
  with Invalid_argument _ -> ()

let test_roofline_point () =
  let wl, _, _ = gemm_io ~m:64 ~n:64 ~k:256 ~seed:64 "roof" in
  let stream, stats = V.simulate ~vthreads:2 ~kchunk:64 wl in
  let intensity, gops = Des.roofline_point Machine.vdla stream stats in
  checkb "positive intensity" (intensity > 0.);
  checkb "below peak" (gops <= Machine.accel_peak_gops Machine.vdla)

let test_conv_as_gemm_dims () =
  let m, n, k = V.conv_as_gemm ~h:14 ~w:14 ~ic:256 ~oc:512 ~kernel:3 ~stride:1 in
  checkb "m multiple of 16" (m mod 16 = 0);
  checkb "n = padded oc" (n = 512);
  checkb "k = padded ic*k*k" (k = ((256 * 9) + 15) / 16 * 16)

let suite =
  [
    Alcotest.test_case "functional across vthread counts" `Quick test_functional_vthreads;
    Alcotest.test_case "vthread loops erased" `Quick test_vthread_erased;
    Alcotest.test_case "token balance" `Quick test_token_balance;
    Alcotest.test_case "DES: hiding + no deadlock" `Quick test_des_no_deadlock_and_hiding;
    Alcotest.test_case "DES: deadlock detection" `Quick test_des_deadlock_detection;
    Alcotest.test_case "assembler collapses DMA" `Quick test_assembler_collapses_dma;
    Alcotest.test_case "SRAM capacity check" `Quick test_sram_checked;
    Alcotest.test_case "roofline point" `Quick test_roofline_point;
    Alcotest.test_case "conv-as-gemm dims" `Quick test_conv_as_gemm_dims;
  ]
