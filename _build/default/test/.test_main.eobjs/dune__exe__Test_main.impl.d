test/test_main.ml: Alcotest Test_autotune Test_e2e Test_experiments Test_graph Test_layout Test_lower Test_schedule Test_sim Test_te Test_tir Test_vthread Tvm_graph
