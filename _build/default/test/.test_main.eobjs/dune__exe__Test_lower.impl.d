test/test_lower.ml: Alcotest Array Expr List QCheck QCheck_alcotest Random Stmt Test_helpers Tvm_lower Tvm_nd Tvm_schedule Tvm_sim Tvm_te Tvm_tir
