test/test_vthread.ml: Alcotest Dtype Hashtbl List Printf Test_helpers Tvm_lower Tvm_nd Tvm_sim Tvm_te Tvm_tir Tvm_vdla
