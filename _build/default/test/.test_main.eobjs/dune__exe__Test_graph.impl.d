test/test_graph.ml: Alcotest Hashtbl List Test_helpers Tvm_graph Tvm_models Tvm_nd Tvm_runtime
