test/test_autotune.ml: Alcotest Array Expr Float Hashtbl List Printf QCheck QCheck_alcotest Random Test_helpers Tvm_autotune Tvm_rpc Tvm_sim Tvm_te Tvm_tir
