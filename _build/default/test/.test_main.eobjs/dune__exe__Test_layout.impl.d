test/test_layout.ml: Alcotest List Test_helpers Tvm_graph Tvm_models Tvm_nd
