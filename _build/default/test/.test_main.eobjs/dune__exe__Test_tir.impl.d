test/test_tir.ml: Alcotest Analysis Dtype Expr Fun Interval List Printer QCheck QCheck_alcotest Simplify Stmt Tvm_nd Tvm_tir Visit
