test/test_experiments.ml: Alcotest Dtype List Printf Test_helpers Tvm_baselines Tvm_experiments Tvm_graph Tvm_models Tvm_sim Tvm_tir Tvm_vdla
