test/test_sim.ml: Alcotest Dtype Expr List Stmt Test_helpers Tvm_autotune Tvm_lower Tvm_nd Tvm_rpc Tvm_schedule Tvm_sim Tvm_te Tvm_tir
