test/test_e2e.ml: Alcotest Float List String Test_helpers Tvm Tvm_baselines Tvm_graph Tvm_models Tvm_nd Tvm_runtime Tvm_sim Tvm_tir
