test/test_helpers.ml: Alcotest List Tvm_lower Tvm_nd Tvm_schedule Tvm_sim Tvm_te Tvm_tir
