test/test_te.ml: Alcotest Dtype Expr Float List Test_helpers Tvm_nd Tvm_te Tvm_tir
