test/test_schedule.ml: Alcotest Array Expr List Printf Test_helpers Tvm_schedule Tvm_te Tvm_tir
